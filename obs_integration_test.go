package dfg_test

// Integration tests for the observability layer threaded through the
// engine: span coverage of the pipeline stages, device events on their
// tracks, and the per-(fingerprint, strategy) latency histograms.

import (
	"strings"
	"testing"
	"time"

	"dfg"
	"dfg/internal/obs"
)

func instrumentedEngine(t *testing.T) (*dfg.Engine, *obs.Tracer, *obs.Registry) {
	t.Helper()
	eng, err := dfg.New(dfg.Config{Device: dfg.CPU, Strategy: "fusion"})
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTracer(16)
	reg := obs.NewRegistry()
	eng.Instrument(tr, reg)
	return eng, tr, reg
}

func evalInputs(n int) map[string][]float32 {
	u := make([]float32, n)
	v := make([]float32, n)
	w := make([]float32, n)
	for i := 0; i < n; i++ {
		u[i] = float32(i%7) * 0.5
		v[i] = float32(i % 5)
		w[i] = float32(i%3) - 1
	}
	return map[string][]float32{"u": u, "v": v, "w": w}
}

// TestEvalTraceCoversWallTime is the acceptance check: the pipeline
// stages of a request's span tree sum to within 5% of the request's
// measured wall time.
func TestEvalTraceCoversWallTime(t *testing.T) {
	eng, tr, _ := instrumentedEngine(t)
	// Large enough that execution dominates and scheduling noise in the
	// inter-span gaps stays well under the 5% budget.
	const n = 1 << 18
	inputs := evalInputs(n)

	for i := 0; i < 2; i++ { // second run: cache-hit trace
		wallStart := time.Now()
		if _, err := eng.Eval("m = sqrt(u*u + v*v + w*w)", n, inputs); err != nil {
			t.Fatal(err)
		}
		wall := time.Since(wallStart)

		traces := tr.Last(1)
		if len(traces) != 1 {
			t.Fatalf("want 1 trace, got %d", len(traces))
		}
		root := traces[0]
		if root.Name != "eval" {
			t.Fatalf("root span = %q", root.Name)
		}
		var stages time.Duration
		for _, c := range root.Children { // compile, bind, execute
			stages += c.Duration()
		}
		if stages > wall {
			t.Fatalf("stage sum %v exceeds wall %v", stages, wall)
		}
		if gap := wall - stages; gap > wall/20 {
			t.Fatalf("run %d: stages %v cover only %v of wall %v (gap %v > 5%%)",
				i, root.Children, stages, wall, gap)
		}
		for _, stage := range []string{"compile", "parse", "cache", "bind", "execute"} {
			if root.Find(stage) == nil {
				t.Fatalf("trace lacks %q span", stage)
			}
		}
	}
}

// TestEvalTraceDeviceEvents checks the device events ride along as
// fixed-time children on per-category tracks.
func TestEvalTraceDeviceEvents(t *testing.T) {
	eng, tr, _ := instrumentedEngine(t)
	res, err := eng.Eval("m = u + v", 1024, evalInputs(1024))
	if err != nil {
		t.Fatal(err)
	}
	root := tr.Last(1)[0]
	exec := root.Find("execute")
	if exec == nil {
		t.Fatal("no execute span")
	}
	tracks := map[string]int{}
	for _, c := range exec.Children {
		tracks[c.Track]++
	}
	if len(res.Events) == 0 {
		t.Fatal("run recorded no device events")
	}
	total := tracks["host-to-device"] + tracks["kernel"] + tracks["device-to-host"]
	if total != len(res.Events) {
		t.Fatalf("attached %d device-event spans for %d events (%v)", total, len(res.Events), tracks)
	}
	if tracks["kernel"] == 0 || tracks["host-to-device"] == 0 {
		t.Fatalf("missing device tracks: %v", tracks)
	}
	// Device-event spans live on the modeled timeline and must be
	// excluded from pipeline-stage accounting.
	if _, ok := root.StageDurations()["execute"]; !ok {
		t.Fatal("execute missing from stage durations")
	}
}

// TestEvalHistograms checks latency series are keyed by fingerprint and
// strategy and show up in the exposition.
func TestEvalHistograms(t *testing.T) {
	eng, _, reg := instrumentedEngine(t)
	inputs := evalInputs(512)
	for i := 0; i < 3; i++ {
		if _, err := eng.Eval("a = u + v", 512, inputs); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := eng.Eval("b = u * w", 512, inputs); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := obs.WritePrometheus(&sb, reg); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "# TYPE dfg_eval_seconds histogram") {
		t.Fatalf("no eval histogram family:\n%s", out)
	}
	if !strings.Contains(out, `strategy="fusion"`) {
		t.Fatalf("histogram not keyed by strategy:\n%s", out)
	}
	if n := strings.Count(out, "dfg_eval_seconds_count"); n != 2 {
		t.Fatalf("want 2 fingerprint series, got %d:\n%s", n, out)
	}
}

// TestUninstrumentedEngineUnchanged: a plain engine records nothing and
// still evaluates correctly (the nil-tracer no-op path).
func TestUninstrumentedEngineUnchanged(t *testing.T) {
	eng, err := dfg.New(dfg.Config{Device: dfg.CPU, Strategy: "fusion"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Eval("m = u + v", 64, evalInputs(64))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Data) != 64 {
		t.Fatalf("bad result length %d", len(res.Data))
	}
}
