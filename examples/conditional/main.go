// Conditional: the derived-field expression from the paper's
// introduction, run end to end:
//
//	a = if (norm(grad(b)) > threshold) then (c * c) else (-c * c)
//
// The expression language supports the conditional syntax the paper
// sketches — relational operators lower to comparison primitives, the
// if/then/else form lowers to a per-element select, and norm() takes the
// length of a vector-typed gradient — and the fusion strategy still
// compiles the whole thing into one generated kernel.
//
//	go run ./examples/conditional
package main

import (
	"fmt"
	"log"

	"dfg"
)

const introExpr = `a = if (norm(grad3d(b,dims,x,y,z)) > 5) then (c * c) else (-c * c)`

func main() {
	d := dfg.Dims{NX: 32, NY: 32, NZ: 32}
	m, err := dfg.NewUniformMesh(d, 1.0/32, 1.0/32, 1.0/32)
	if err != nil {
		log.Fatal(err)
	}
	field := dfg.GenerateRT(m, 12)

	eng, err := dfg.New(dfg.Config{Device: dfg.GPU, Strategy: "fusion", MemScale: 64})
	if err != nil {
		log.Fatal(err)
	}

	// b is the density-like field (we use u), c the conditioning field.
	res, err := eng.EvalOnMesh(introExpr, m, map[string][]float32{
		"b": field.U,
		"c": field.V,
	})
	if err != nil {
		log.Fatal(err)
	}

	pos, neg := 0, 0
	for _, v := range res.Data {
		if v >= 0 {
			pos++
		} else {
			neg++
		}
	}
	fmt.Printf("expression: %s\n\n", introExpr)
	fmt.Printf("cells taking the THEN branch (steep gradient): %d\n", pos)
	fmt.Printf("cells taking the ELSE branch:                  %d\n", neg)
	fmt.Printf("device events: %s\n\n", res.Profile)

	src, err := eng.FusedSource(introExpr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("the whole conditional fuses into one kernel:")
	fmt.Println(src)
}
