// Strategies: the paper's central trade-off, demonstrated. Runs the
// same Q-criterion dataflow network under all three execution strategies
// on both simulated devices, printing runtime, data movement and the
// device-memory high-water mark — then provokes the paper's GPU failure
// mode by shrinking device memory until only some strategies survive.
//
//	go run ./examples/strategies
package main

import (
	"errors"
	"fmt"
	"log"

	"dfg"
	"dfg/internal/ocl"
)

func main() {
	d := dfg.Dims{NX: 48, NY: 48, NZ: 64}
	m, err := dfg.NewUniformMesh(d, 1.0/48, 1.0/48, 1.0/64)
	if err != nil {
		log.Fatal(err)
	}
	field := dfg.GenerateRT(m, 3)

	fmt.Printf("Q-criterion on %v (%d cells)\n\n", d, d.Cells())
	fmt.Printf("%-7s  %-9s  %12s  %7s  %7s  %7s  %12s\n",
		"device", "strategy", "device time", "Dev-W", "Dev-R", "K-Exe", "peak memory")

	for _, dev := range []dfg.DeviceKind{dfg.CPU, dfg.GPU} {
		for _, strat := range dfg.Strategies() {
			eng, err := dfg.New(dfg.Config{Device: dev, Strategy: strat, MemScale: 64})
			if err != nil {
				log.Fatal(err)
			}
			res, err := eng.EvalOnMesh(dfg.QCriterionExpr, m, dfg.FieldInputs(field))
			if err != nil {
				log.Fatal(err)
			}
			p := res.Profile
			fmt.Printf("%-7s  %-9s  %12v  %7d  %7d  %7d  %9.2f MiB\n",
				dev, strat, p.DeviceTime().Round(1000), p.Writes, p.Reads, p.Kernels,
				float64(res.PeakDeviceBytes)/(1<<20))
		}
	}

	// The memory-constraint story: shrink the GPU until staged (the
	// hungriest strategy) no longer fits. Roundtrip, which keeps
	// intermediates in host memory, still runs — the paper's argument
	// for supporting multiple strategies.
	fmt.Println("\nshrinking GPU memory (scale 1/320 of the M2050's 3 GB -> ~9.6 MiB):")
	for _, strat := range dfg.Strategies() {
		eng, err := dfg.New(dfg.Config{Device: dfg.GPU, Strategy: strat, MemScale: 320})
		if err != nil {
			log.Fatal(err)
		}
		_, err = eng.EvalOnMesh(dfg.QCriterionExpr, m, dfg.FieldInputs(field))
		var ae *ocl.AllocError
		switch {
		case err == nil:
			fmt.Printf("  %-9s  ok\n", strat)
		case errors.As(err, &ae):
			fmt.Printf("  %-9s  FAILED: out of device global memory\n", strat)
		default:
			log.Fatal(err)
		}
	}
}
