// Expression database: visualization tools keep a list of named
// expressions users build on ("expression lists" in VisIt). The engine
// models this with Define: a definition expands inline wherever its name
// appears, with its own local namespace, and definitions compose.
//
//	go run ./examples/expressiondb
package main

import (
	"fmt"
	"log"

	"dfg"
)

func main() {
	d := dfg.Dims{NX: 24, NY: 24, NZ: 32}
	m, err := dfg.NewUniformMesh(d, 1.0/24, 1.0/24, 1.0/32)
	if err != nil {
		log.Fatal(err)
	}
	field := dfg.GenerateRT(m, 5)

	eng, err := dfg.New(dfg.Config{Device: dfg.GPU, Strategy: "fusion", MemScale: 64})
	if err != nil {
		log.Fatal(err)
	}

	// Build up a small analysis vocabulary. Definitions may use other
	// definitions; each keeps its own local temporaries (the du/dv/dw
	// inside vorticity_x/y/z never leak or collide).
	defs := map[string]string{
		"speed": "sqrt(u*u + v*v + w*w)",
		"vorticity_x": `dv = grad3d(v,dims,x,y,z)
dw = grad3d(w,dims,x,y,z)
dw[1] - dv[2]`,
		"vorticity_y": `du = grad3d(u,dims,x,y,z)
dw = grad3d(w,dims,x,y,z)
du[2] - dw[0]`,
		"vorticity_z": `du = grad3d(u,dims,x,y,z)
dv = grad3d(v,dims,x,y,z)
dv[0] - du[1]`,
		"enstrophy": "0.5 * (vorticity_x*vorticity_x + vorticity_y*vorticity_y + vorticity_z*vorticity_z)",
	}
	for name, text := range defs {
		if err := eng.Define(name, text); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("expression database:", eng.Definitions())

	// The analyst now composes one-liners over the vocabulary.
	res, err := eng.EvalOnMesh("intensity = enstrophy / (speed*speed + 0.01)",
		m, dfg.FieldInputs(field))
	if err != nil {
		log.Fatal(err)
	}

	var max float32
	for _, v := range res.Data {
		if v > max {
			max = v
		}
	}
	fmt.Printf("relative rotational intensity: %d cells, max %.3f\n", len(res.Data), max)
	fmt.Printf("still one fused kernel for the whole composition: K-Exe=%d (Dev-W=%d)\n",
		res.Profile.Kernels, res.Profile.Writes)
}
