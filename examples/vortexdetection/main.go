// Vortex detection: the paper's motivating application. Computes
// vorticity magnitude and Q-criterion on a synthetic Rayleigh–Taylor
// velocity field and reports the detected vortical structures, plus a
// coarse ASCII rendering of a Q-criterion slice.
//
//	go run ./examples/vortexdetection
package main

import (
	"fmt"
	"log"
	"sort"

	"dfg"
)

func main() {
	// A sub-grid of the RT instability simulation (Table I row 1 at
	// 1/4 linear scale).
	d := dfg.Dims{NX: 48, NY: 48, NZ: 64}
	m, err := dfg.NewUniformMesh(d, 1.0/48, 1.0/48, 1.0/64)
	if err != nil {
		log.Fatal(err)
	}
	field := dfg.GenerateRT(m, 7)

	eng, err := dfg.New(dfg.Config{Device: dfg.GPU, Strategy: "fusion", MemScale: 64})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("detecting vortices on %v (%d cells) using %s / %s\n\n",
		d, d.Cells(), eng.Device(), eng.Strategy())

	// Vorticity magnitude: local spin strength.
	vort, err := eng.EvalOnMesh(dfg.VorticityMagnitudeExpr, m, dfg.FieldInputs(field))
	if err != nil {
		log.Fatal(err)
	}
	// Q-criterion: rotation-dominated regions have Q > 0.
	q, err := eng.EvalOnMesh(dfg.QCriterionExpr, m, dfg.FieldInputs(field))
	if err != nil {
		log.Fatal(err)
	}

	// Threshold Q at a high quantile to pick out vortex cores, the way
	// an analyst would isosurface the derived field.
	sorted := append([]float32(nil), q.Data...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	threshold := sorted[len(sorted)*95/100]

	cores := 0
	var peakVort float32
	for i, qv := range q.Data {
		if qv > threshold {
			cores++
		}
		if vort.Data[i] > peakVort {
			peakVort = vort.Data[i]
		}
	}
	fmt.Printf("vorticity magnitude: peak %.3f\n", peakVort)
	fmt.Printf("Q-criterion: %d cells above the 95th-percentile threshold (Q > %.3f)\n\n", cores, threshold)

	// ASCII rendering of the mid-height Q slice ('#' = vortex core,
	// '+' = rotating, '.' = strain-dominated).
	k := d.NZ / 2
	fmt.Printf("Q-criterion slice at k=%d (every 2nd cell):\n", k)
	for j := 0; j < d.NY; j += 2 {
		row := make([]byte, 0, d.NX/2)
		for i := 0; i < d.NX; i += 2 {
			qv := q.Data[d.Index(i, j, k)]
			switch {
			case qv > threshold:
				row = append(row, '#')
			case qv > 0:
				row = append(row, '+')
			default:
				row = append(row, '.')
			}
		}
		fmt.Println(string(row))
	}

	fmt.Printf("\ndevice events for the Q-criterion run: %s\n", q.Profile)
	fmt.Printf("peak device memory: %.1f MiB\n", float64(q.PeakDeviceBytes)/(1<<20))
}
