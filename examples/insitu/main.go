// In situ: embed the framework in a host application's pipeline, the
// way the paper runs inside VisIt via a custom Python Expression. The
// host owns the simulation data and the render loop; the framework
// computes derived fields once per time step, and every subsequent
// rendering operation reuses the resulting mesh.
//
// Each expression is prepared once (host.App does this internally via
// dfg.Engine.Prepare) and evaluated per time step: the plan, the device
// buffers, and the unchanged mesh coordinate sources all carry over
// between steps, so only the new time step's velocity data moves to the
// device.
//
//	go run ./examples/insitu
package main

import (
	"fmt"
	"log"

	"dfg"
	"dfg/internal/host"
	"dfg/internal/mesh"
)

func main() {
	m := mesh.MustUniform(mesh.Dims{NX: 32, NY: 32, NZ: 48}, 1.0/32, 1.0/32, 1.0/48)
	eng, err := dfg.New(dfg.Config{Device: dfg.GPU, Strategy: "fusion", MemScale: 64})
	if err != nil {
		log.Fatal(err)
	}

	// The host application ("VisIt"): reads time steps, runs a pipeline
	// containing our Python-Expression-style stage, renders.
	app, err := host.NewApp(m, 100, eng)
	if err != nil {
		log.Fatal(err)
	}
	defer app.Close() // releases the prepared plans, draining the buffer arena
	if err := app.AddExpression(host.PythonExpression{Name: "q_crit", Text: dfg.QCriterionExpr}); err != nil {
		log.Fatal(err)
	}
	if err := app.AddExpression(host.PythonExpression{Name: "v_mag", Text: dfg.VelocityMagnitudeExpr}); err != nil {
		log.Fatal(err)
	}

	for step := 0; step < 3; step++ {
		app.LoadTimeStep(step)
		// The analyst orbits the camera: many renders, one pipeline
		// execution per time step.
		for _, view := range []string{"front", "side", "top", "zoom"} {
			fields, err := app.Render(view)
			if err != nil {
				log.Fatal(err)
			}
			q := fields["q_crit"]
			pos := 0
			for _, v := range q.Data {
				if v > 0 {
					pos++
				}
			}
			fmt.Printf("t=%d view=%-5s  q_crit ready (%d/%d vortical cells)  pipeline executions so far: %d\n",
				step, view, pos, len(q.Data), app.PipelineExecutions())
		}
	}

	fmt.Printf("\n%d renders, %d pipeline executions (one per time step — the paper's contract)\n",
		app.Renders(), app.PipelineExecutions())
	st := eng.ArenaStats()
	fmt.Printf("buffer arena: %d reused / %d allocated, %d source uploads skipped (mesh coordinates stayed device-resident)\n",
		st.Reused, st.Allocated, st.UploadsSkipped)
}
