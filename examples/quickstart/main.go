// Quickstart: evaluate a derived-field expression over plain arrays.
//
// This is the minimal use of the framework's host interface — hand it
// expression text and named input arrays, get the derived field back,
// exactly as the paper's host application does via NumPy arrays.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dfg"
)

func main() {
	// A host application's existing data arrays (velocity components).
	u := []float32{3, 1, 0, 2}
	v := []float32{4, 2, 0, 2}
	w := []float32{0, 2, 5, 1}

	// One engine = one device + one execution strategy.
	eng, err := dfg.New(dfg.Config{Device: dfg.CPU, Strategy: "fusion"})
	if err != nil {
		log.Fatal(err)
	}

	// The user's expression, in the framework's expression language.
	res, err := eng.Eval("v_mag = sqrt(u*u + v*v + w*w)",
		len(u), map[string][]float32{"u": u, "v": v, "w": w})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("derived field v_mag:", res.Data)
	fmt.Println("device profile:    ", res.Profile)
	fmt.Printf("the fusion strategy compiled the whole expression into %d kernel\n",
		res.Profile.Kernels)

	// Inspect what the dynamic kernel generator produced.
	src, err := eng.FusedSource("v_mag = sqrt(u*u + v*v + w*w)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ngenerated OpenCL kernel:")
	fmt.Println(src)
}
