package dfg_test

// Engine-level tests for the tiered execution model and the host
// bytecode VM: threshold routing through the public Config surface,
// WithStrategy derived views, and the VM's zero-allocation warm path
// through Prepared.Eval (the engine-level face of the strategy-package
// and vm-package gates).

import (
	"math"
	"testing"

	"dfg"
	"dfg/internal/vm"
)

// usedVM reports whether a result came from the host VM tier: a VM run
// touches the device for nothing, so its profile carries no events.
func usedVM(res *dfg.Result) bool {
	return res.Profile.Kernels == 0 && res.Profile.Writes == 0 && res.Profile.Reads == 0
}

// tierInputs builds n-element u/v/w arrays for the velocity-magnitude
// expression.
func tierInputs(n int) map[string][]float32 {
	u := make([]float32, n)
	v := make([]float32, n)
	w := make([]float32, n)
	for i := 0; i < n; i++ {
		u[i] = float32(i%13) - 6
		v[i] = 0.5 * float32(i%7)
		w[i] = float32(i%3) + 0.25
	}
	return map[string][]float32{"u": u, "v": v, "w": w}
}

// TestEngineTieredThreshold drives the tier boundary through the public
// Config: sizes strictly below VMThreshold run on the host VM, at or
// above on the device, stably across repeated Prepare calls, with
// identical results either side of the plan cache.
func TestEngineTieredThreshold(t *testing.T) {
	const th = 100
	eng, err := dfg.New(dfg.Config{Device: dfg.CPU, Strategy: "tiered", VMThreshold: th})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{th - 1, th, 1, 2 * th} {
		in := tierInputs(n)
		pr, err := eng.Prepare(dfg.VelocityMagnitudeExpr)
		if err != nil {
			t.Fatal(err)
		}
		res, err := pr.Eval(n, in)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		wantVM := n < th
		if usedVM(res) != wantVM {
			t.Fatalf("n=%d: usedVM=%v, want %v (profile %+v)", n, usedVM(res), wantVM, res.Profile)
		}
		// A second Prepare resolves the same cached plan and must route
		// identically, bit for bit.
		pr2, err := eng.Prepare(dfg.VelocityMagnitudeExpr)
		if err != nil {
			t.Fatal(err)
		}
		res2, err := pr2.Eval(n, in)
		if err != nil {
			t.Fatal(err)
		}
		if usedVM(res2) != wantVM {
			t.Fatalf("n=%d: re-prepared routing flipped", n)
		}
		for i := range res.Data {
			if math.Float32bits(res.Data[i]) != math.Float32bits(res2.Data[i]) {
				t.Fatalf("n=%d element %d: %v vs %v across Prepare calls", n, i, res.Data[i], res2.Data[i])
			}
		}
		pr2.Close()
		pr.Close()
	}
	if eng.LiveBuffers() != 0 {
		t.Fatalf("%d live buffers after closes", eng.LiveBuffers())
	}
}

// TestWithStrategyDerivedView: a WithStrategy view executes under the
// new strategy with bitwise-identical results, while the receiver keeps
// its own; same-strategy and empty names return the receiver unchanged
// and bad names fail.
func TestWithStrategyDerivedView(t *testing.T) {
	eng, err := dfg.New(dfg.Config{Device: dfg.CPU, Strategy: "fusion"})
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	in := tierInputs(n)
	base, err := eng.Eval(dfg.VelocityMagnitudeExpr, n, in)
	if err != nil {
		t.Fatal(err)
	}
	if usedVM(base) {
		t.Fatalf("fusion engine ran on the vm: %+v", base.Profile)
	}

	vmEng, err := eng.WithStrategy("vm")
	if err != nil {
		t.Fatal(err)
	}
	if vmEng == eng {
		t.Fatal("WithStrategy(vm) returned the fusion receiver")
	}
	if vmEng.Strategy() != "vm" {
		t.Fatalf("derived strategy = %q", vmEng.Strategy())
	}
	vres, err := vmEng.Eval(dfg.VelocityMagnitudeExpr, n, in)
	if err != nil {
		t.Fatal(err)
	}
	if !usedVM(vres) {
		t.Fatalf("vm view touched the device: %+v", vres.Profile)
	}
	for i := range base.Data {
		if math.Float32bits(base.Data[i]) != math.Float32bits(vres.Data[i]) {
			t.Fatalf("element %d: vm %v vs fusion %v", i, vres.Data[i], base.Data[i])
		}
	}
	// The receiver is untouched by the derived view.
	if eng.Strategy() != "fusion" {
		t.Fatalf("receiver strategy mutated to %q", eng.Strategy())
	}

	if same, err := eng.WithStrategy(""); err != nil || same != eng {
		t.Fatalf("WithStrategy(\"\") = %v, %v, want the receiver", same, err)
	}
	if same, err := eng.WithStrategy("fusion"); err != nil || same != eng {
		t.Fatalf("WithStrategy(fusion) on a fusion engine = %v, %v, want the receiver", same, err)
	}
	if _, err := eng.WithStrategy("warp"); err == nil {
		t.Fatal("WithStrategy(warp) must fail")
	}
}

// TestPreparedVMWarmPathZeroScratchAllocs is the warm-path allocation
// gate at the engine level: after the first Prepared eval on the VM,
// repeated evaluations draw every scratch slice from the VM's host
// pool — zero fresh pool allocations — and never touch device memory.
func TestPreparedVMWarmPathZeroScratchAllocs(t *testing.T) {
	eng, err := dfg.New(dfg.Config{Device: dfg.CPU, Strategy: "vm"})
	if err != nil {
		t.Fatal(err)
	}
	m, err := dfg.NewUniformMesh(dfg.Dims{NX: 8, NY: 8, NZ: 8}, 1.0/8, 1.0/8, 1.0/8)
	if err != nil {
		t.Fatal(err)
	}
	f := dfg.GenerateRT(m, 7)
	fields := dfg.FieldInputs(f)

	pr, err := eng.Prepare(dfg.QCriterionExpr)
	if err != nil {
		t.Fatal(err)
	}
	defer pr.Close()

	vm.DrainPool()
	before := vm.Stats()
	cold, err := pr.EvalMesh(m, fields)
	if err != nil {
		t.Fatal(err)
	}
	afterCold := vm.Stats()
	if afterCold.Allocs == before.Allocs {
		t.Fatal("cold eval allocated no scratch after a drain")
	}
	for i := 0; i < 5; i++ {
		warm, err := pr.EvalMesh(m, fields)
		if err != nil {
			t.Fatal(err)
		}
		for j := range cold.Data {
			if math.Float32bits(cold.Data[j]) != math.Float32bits(warm.Data[j]) {
				t.Fatalf("warm eval %d diverged at element %d", i, j)
			}
		}
	}
	afterWarm := vm.Stats()
	if got := afterWarm.Allocs - afterCold.Allocs; got != 0 {
		t.Fatalf("warm evals allocated %d fresh scratch slices, want 0", got)
	}
	if afterWarm.Reuses == afterCold.Reuses {
		t.Fatal("warm evals reused nothing from the pool")
	}
	if eng.LiveBuffers() != 0 {
		t.Fatalf("vm engine holds %d device buffers", eng.LiveBuffers())
	}
}
