package dfg

import (
	"math"
	"testing"

	"dfg/internal/passes"
)

// batchTestExprs is an overlapping batch: every member shares the
// u*u + v*v + w*w subtree, the second member IS that subtree, and the
// last member duplicates the first exactly (same fingerprint).
var batchTestExprs = []string{
	"r = sqrt(u*u + v*v + w*w)",
	"r = u*u + v*v + w*w",
	"r = sqrt(u*u + v*v + w*w) + 2.0 * w",
	"r = sqrt(u*u + v*v + w*w)",
}

func batchTestInputs(n int) map[string][]float32 {
	u := make([]float32, n)
	v := make([]float32, n)
	w := make([]float32, n)
	for i := 0; i < n; i++ {
		u[i] = float32(i%13) * 0.25
		v[i] = float32(i%7) - 3.0
		w[i] = float32(i%29) * 0.125
	}
	return map[string][]float32{"u": u, "v": v, "w": w}
}

// batchStrategies is the full execution matrix the batch differential
// covers: the three device strategies, the streaming variant, the host
// bytecode VM, and the size-routed tiered front.
var batchStrategies = []string{"roundtrip", "staged", "fusion", "streaming", "vm", "tiered"}

// TestBatchMatchesSoloZeroULP is the batch acceptance gate: evaluating N
// overlapping expressions as one merged super-network must be bitwise
// identical to N individual evaluations, under every strategy.
func TestBatchMatchesSoloZeroULP(t *testing.T) {
	const n = 4096
	inputs := batchTestInputs(n)
	for _, strat := range batchStrategies {
		eng, err := New(Config{Device: CPU, Strategy: strat})
		if err != nil {
			t.Fatal(err)
		}
		bres, err := eng.EvalBatch(batchTestExprs, n, inputs)
		if err != nil {
			t.Fatalf("%s: batch: %v", strat, err)
		}
		if got := len(bres.Results); got != len(batchTestExprs) {
			t.Fatalf("%s: %d results for %d members", strat, got, len(batchTestExprs))
		}
		for mi, text := range batchTestExprs {
			solo, err := eng.Eval(text, n, inputs)
			if err != nil {
				t.Fatalf("%s: solo member %d: %v", strat, mi, err)
			}
			got := bres.Results[mi].Data
			if len(got) != len(solo.Data) {
				t.Fatalf("%s: member %d: batch %d elements, solo %d", strat, mi, len(got), len(solo.Data))
			}
			for i := range solo.Data {
				if math.Float32bits(got[i]) != math.Float32bits(solo.Data[i]) {
					t.Fatalf("%s: member %d diverges at element %d: batch %v vs solo %v",
						strat, mi, i, got[i], solo.Data[i])
				}
			}
		}
	}
}

// TestBatchSharesSubtreeWork checks that the merge actually eliminates
// cross-expression duplicates: CSE reports shared nodes, and the single
// merged run dispatches strictly fewer kernels than the members would
// solo — the headline batching win.
func TestBatchSharesSubtreeWork(t *testing.T) {
	const n = 2048
	inputs := batchTestInputs(n)
	eng, err := New(Config{Device: CPU, Strategy: "fusion"})
	if err != nil {
		t.Fatal(err)
	}
	pb, err := eng.PrepareBatch(batchTestExprs)
	if err != nil {
		t.Fatal(err)
	}
	defer pb.Close()
	if pb.Solo() {
		t.Fatal("overlapping-but-distinct batch took the solo fast path")
	}
	if pb.Members() != 3 {
		t.Fatalf("distinct members = %d, want 3 (duplicate should dedup)", pb.Members())
	}
	if pb.Shared() == 0 {
		t.Fatal("merge reported zero shared nodes for overlapping expressions")
	}
	bres, err := pb.Eval(n, inputs)
	if err != nil {
		t.Fatal(err)
	}
	soloKernels := 0
	for _, text := range batchTestExprs {
		res, err := eng.Eval(text, n, inputs)
		if err != nil {
			t.Fatal(err)
		}
		soloKernels += res.Profile.Kernels
	}
	if bres.Results[0].Profile.Kernels >= soloKernels {
		t.Fatalf("batch dispatched %d kernels, solo members dispatch %d — batching saved nothing",
			bres.Results[0].Profile.Kernels, soloKernels)
	}
}

// TestBatchDuplicateMembersShareOutput: members that deduplicate to the
// same fingerprint must share one root and therefore one backing array.
func TestBatchDuplicateMembersShareOutput(t *testing.T) {
	const n = 512
	eng, err := New(Config{Device: CPU, Strategy: "fusion"})
	if err != nil {
		t.Fatal(err)
	}
	bres, err := eng.EvalBatch(batchTestExprs, n, batchTestInputs(n))
	if err != nil {
		t.Fatal(err)
	}
	// Members 0 and 3 are textually identical.
	if &bres.Results[0].Data[0] != &bres.Results[3].Data[0] {
		t.Fatal("duplicate members did not share a backing output array")
	}
	if &bres.Results[0].Data[0] == &bres.Results[1].Data[0] {
		t.Fatal("distinct members share a backing output array")
	}
}

// TestBatchOfOneSoloFastPath: a batch that deduplicates to one distinct
// expression must take the ordinary solo path — same plan, same result,
// recovery ladder and tiered routing intact — so batching never costs a
// lone request anything.
func TestBatchOfOneSoloFastPath(t *testing.T) {
	const n = 1024
	inputs := batchTestInputs(n)
	for _, strat := range batchStrategies {
		eng, err := New(Config{Device: CPU, Strategy: strat})
		if err != nil {
			t.Fatal(err)
		}
		texts := []string{batchTestExprs[0], batchTestExprs[0]}
		pb, err := eng.PrepareBatch(texts)
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		if !pb.Solo() {
			t.Fatalf("%s: duplicate-only batch did not take the solo fast path", strat)
		}
		if pb.Members() != 1 || pb.Shared() != 0 {
			t.Fatalf("%s: members=%d shared=%d, want 1/0", strat, pb.Members(), pb.Shared())
		}
		bres, err := pb.Eval(n, inputs)
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		pb.Close()
		solo, err := eng.Eval(texts[0], n, inputs)
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		for _, r := range bres.Results {
			for i := range solo.Data {
				if math.Float32bits(r.Data[i]) != math.Float32bits(solo.Data[i]) {
					t.Fatalf("%s: batch-of-one diverges at element %d: %v vs %v",
						strat, i, r.Data[i], solo.Data[i])
				}
			}
		}
	}
}

// TestBatchMemberCompileErrorFailsWhole: PrepareBatch is all-or-nothing;
// the error names the failing member so callers can drop it and re-batch.
func TestBatchMemberCompileErrorFailsWhole(t *testing.T) {
	eng, _ := New(Config{Device: CPU, Strategy: "fusion"})
	_, err := eng.PrepareBatch([]string{batchTestExprs[0], "r = sqrt("})
	if err == nil {
		t.Fatal("batch with a malformed member prepared without error")
	}
}

// TestBatchPlanCacheHit: preparing the same batch shape twice must hit
// the plan cache under the batch fingerprint — the serving layer leans
// on this for recurring batch shapes.
func TestBatchPlanCacheHit(t *testing.T) {
	eng, err := New(Config{Device: CPU, Strategy: "fusion"})
	if err != nil {
		t.Fatal(err)
	}
	pb1, err := eng.PrepareBatch(batchTestExprs)
	if err != nil {
		t.Fatal(err)
	}
	defer pb1.Close()
	before := eng.CacheStats().PlanHits
	pb2, err := eng.PrepareBatch(batchTestExprs)
	if err != nil {
		t.Fatal(err)
	}
	defer pb2.Close()
	if eng.CacheStats().PlanHits <= before {
		t.Fatal("re-preparing an identical batch missed the plan cache")
	}
	if pb1.Fingerprint() != pb2.Fingerprint() {
		t.Fatalf("batch fingerprint unstable: %s vs %s", pb1.Fingerprint(), pb2.Fingerprint())
	}
}

// FuzzBatchDifferential fuzzes the merge itself: any pair of programs
// the pipeline accepts must evaluate identically batched and solo. This
// is the harness the batch-smoke CI job drives.
func FuzzBatchDifferential(f *testing.F) {
	f.Add(batchTestExprs[0], batchTestExprs[1])
	f.Add(batchTestExprs[0], batchTestExprs[2])
	f.Add("r = u + v", "r = u - v")
	f.Add("s = min(u, v)\nr = if (s >= 0) then (sqrt(s)) else (-s)", "r = min(u, v) * w")
	f.Fuzz(func(t *testing.T, a, b string) {
		const n = 257 // odd size: exercises partial final workgroups
		inputs := batchTestInputs(n)
		eng, err := New(Config{Device: CPU, Strategy: "fusion"})
		if err != nil {
			t.Fatal(err)
		}
		// Pre-compile members solo; skip programs the pipeline rejects
		// (PrepareBatch is all-or-nothing, mirrored here).
		if _, err := eng.comp.CompileAt(a, passes.LevelO2); err != nil {
			t.Skip()
		}
		if _, err := eng.comp.CompileAt(b, passes.LevelO2); err != nil {
			t.Skip()
		}
		texts := []string{a, b}
		bres, err := eng.EvalBatch(texts, n, inputs)
		if err != nil {
			t.Skip() // members compile but need unbound sources — solo would too
		}
		for mi, text := range texts {
			solo, err := eng.Eval(text, n, inputs)
			if err != nil {
				t.Fatalf("batch ran but solo member %d failed: %v\n%s", mi, err, text)
			}
			got := bres.Results[mi].Data
			for i := range solo.Data {
				if math.Float32bits(got[i]) != math.Float32bits(solo.Data[i]) {
					t.Fatalf("member %d diverges at element %d: batch %v vs solo %v\n%s",
						mi, i, got[i], solo.Data[i], text)
				}
			}
		}
	})
}

// BenchmarkBatchOfOneWarm measures the warm batch-of-one path against
// the perf gate's no-regression criterion: the solo fast path should
// make a prepared batch of one indistinguishable from a plain Prepared.
func BenchmarkBatchOfOneWarm(b *testing.B) {
	const n = 4096
	inputs := batchTestInputs(n)
	eng, err := New(Config{Device: CPU, Strategy: "fusion"})
	if err != nil {
		b.Fatal(err)
	}
	pb, err := eng.PrepareBatch([]string{batchTestExprs[0]})
	if err != nil {
		b.Fatal(err)
	}
	defer pb.Close()
	if _, err := pb.Eval(n, inputs); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pb.Eval(n, inputs); err != nil {
			b.Fatal(err)
		}
	}
}
