package dfg

import (
	"errors"
	"math"
	"strings"
	"testing"

	"dfg/internal/compile"
	"dfg/internal/ocl"
	"dfg/internal/vortex"
)

func TestQuickstartEval(t *testing.T) {
	eng, err := New(Config{Device: CPU, Strategy: "fusion"})
	if err != nil {
		t.Fatal(err)
	}
	u := []float32{3, 1, 0}
	v := []float32{4, 2, 0}
	w := []float32{0, 2, 5}
	res, err := eng.Eval(VelocityMagnitudeExpr, 3, map[string][]float32{"u": u, "v": v, "w": w})
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{5, 3, 5} {
		if math.Abs(float64(res.Data[i])-want) > 1e-6 {
			t.Fatalf("v_mag[%d] = %v want %v", i, res.Data[i], want)
		}
	}
	if res.Profile.Kernels != 1 {
		t.Fatalf("fusion should dispatch 1 kernel, got %d", res.Profile.Kernels)
	}
}

func TestEvalOnMeshAllExpressionsAllStrategiesBothDevices(t *testing.T) {
	m, err := NewUniformMesh(Dims{NX: 12, NY: 10, NZ: 8}, 0.1, 0.1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	f := GenerateRT(m, 11)
	golden := map[string][]float32{
		VelocityMagnitudeExpr:  vortex.VelocityMagnitude(f.U, f.V, f.W),
		VorticityMagnitudeExpr: vortex.VorticityMagnitude(f.U, f.V, f.W, m),
		QCriterionExpr:         vortex.QCriterion(f.U, f.V, f.W, m),
	}
	tol := map[string]float64{
		VelocityMagnitudeExpr:  1e-5,
		VorticityMagnitudeExpr: 1e-2,
		QCriterionExpr:         0.5, // Q is O(100) on this mesh; float32 chains
	}
	for _, dev := range []DeviceKind{CPU, GPU} {
		for _, strat := range Strategies() {
			eng, err := New(Config{Device: dev, Strategy: strat})
			if err != nil {
				t.Fatal(err)
			}
			for text, want := range golden {
				res, err := eng.EvalOnMesh(text, m, FieldInputs(f))
				if err != nil {
					t.Fatalf("%v/%s: %v", dev, strat, err)
				}
				for i := range want {
					if d := math.Abs(float64(res.Data[i] - want[i])); d > tol[text] {
						t.Fatalf("%v/%s: cell %d: %v vs %v", dev, strat, i, res.Data[i], want[i])
					}
				}
			}
		}
	}
}

func TestEngineCachesCompiledNetworks(t *testing.T) {
	eng, _ := New(Config{})
	n1, err := eng.compile(VelocityMagnitudeExpr)
	if err != nil {
		t.Fatal(err)
	}
	n2, err := eng.compile(VelocityMagnitudeExpr)
	if err != nil {
		t.Fatal(err)
	}
	if n1 != n2 {
		t.Fatal("repeat compile must hit the cache")
	}
	if got := eng.comp.Stats().Compiles; got != 1 {
		t.Fatalf("repeat compile ran %d compilations, want 1", got)
	}
	if !n1.Sealed() {
		t.Fatal("compiled networks must be sealed")
	}
}

// TestEnginesShareCompiler: two engines built with NewWith on the same
// compiler share definitions and compile a hot expression exactly once.
func TestEnginesShareCompiler(t *testing.T) {
	comp := compile.NewCompiler()
	mk := func() *Engine {
		dev, err := NewDeviceFor(Config{})
		if err != nil {
			t.Fatal(err)
		}
		eng, err := NewWith(dev, "fusion", comp)
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}
	a, b := mk(), mk()
	if err := a.Define("speed", "sqrt(u*u + v*v + w*w)"); err != nil {
		t.Fatal(err)
	}
	if got := b.Definitions(); len(got) != 1 || got[0] != "speed" {
		t.Fatalf("definition not shared: %v", got)
	}
	in := map[string][]float32{
		"u": {3, 0}, "v": {4, 0}, "w": {0, 0},
	}
	for _, eng := range []*Engine{a, b} {
		res, err := eng.Eval("s = speed", 2, in)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(float64(res.Data[0]-5)) > 1e-6 {
			t.Fatalf("speed = %v, want 5", res.Data[0])
		}
	}
	if got := comp.Stats().Compiles; got != 1 {
		t.Fatalf("two engines compiled the shared expression %d times, want 1", got)
	}
}

func TestEngineErrors(t *testing.T) {
	if _, err := New(Config{Strategy: "warp"}); err == nil {
		t.Error("bad strategy must fail")
	}
	if _, err := New(Config{Device: DeviceKind(9)}); err == nil {
		t.Error("bad device must fail")
	}
	eng, _ := New(Config{})
	if _, err := eng.Eval("a = $", 4, nil); err == nil {
		t.Error("bad expression must fail")
	}
	if _, err := eng.Eval("a = u + v", 4, map[string][]float32{"u": make([]float32, 4)}); err == nil {
		t.Error("missing input must fail")
	}
}

func TestGPUMemoryFailureSurfaces(t *testing.T) {
	// A GPU scaled to 1/4096 of the M2050's memory cannot hold the
	// staged intermediates of Q-criterion on a big-enough grid.
	m, _ := NewUniformMesh(Dims{NX: 32, NY: 32, NZ: 32}, 1, 1, 1)
	f := GenerateRT(m, 1)
	eng, _ := New(Config{Device: GPU, Strategy: "staged", MemScale: 4096})
	_, err := eng.EvalOnMesh(QCriterionExpr, m, FieldInputs(f))
	if !errors.Is(err, ocl.ErrOutOfDeviceMemory) {
		t.Fatalf("want ErrOutOfDeviceMemory, got %v", err)
	}
}

func TestFusedSource(t *testing.T) {
	eng, _ := New(Config{})
	src, err := eng.FusedSource(QCriterionExpr)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"__kernel void kfused_expr", "dfg_grad3d", "0.5f"} {
		if !strings.Contains(src, frag) {
			t.Errorf("fused Q-criterion source missing %q", frag)
		}
	}
}

func TestNetworkScriptAndDot(t *testing.T) {
	s, err := NetworkScript(VelocityMagnitudeExpr)
	if err != nil || !strings.Contains(s, "net.add_source(\"u\")") {
		t.Fatalf("script: %v\n%s", err, s)
	}
	d, err := NetworkDot(VelocityMagnitudeExpr)
	if err != nil || !strings.Contains(d, "digraph dataflow") {
		t.Fatalf("dot: %v\n%s", err, d)
	}
	if _, err := NetworkScript("$"); err == nil {
		t.Error("bad expression must fail")
	}
	if _, err := NetworkDot("$"); err == nil {
		t.Error("bad expression must fail")
	}
}

func TestDeviceKindString(t *testing.T) {
	if CPU.String() != "CPU" || GPU.String() != "GPU" {
		t.Fatal("device kind names wrong")
	}
}

func TestNewOnSharesDevice(t *testing.T) {
	dev := ocl.NewDevice(ocl.TeslaM2050Spec(64))
	e1, err := NewOn(dev, "")
	if err != nil {
		t.Fatal(err)
	}
	if e1.Strategy() != "fusion" {
		t.Fatalf("default strategy should be fusion, got %q", e1.Strategy())
	}
	if e1.Device() != "NVIDIA Tesla M2050" {
		t.Fatalf("device name %q", e1.Device())
	}
	if _, err := NewOn(dev, "bogus"); err == nil {
		t.Fatal("bad strategy must fail")
	}
}

func TestEngineStreamingStrategy(t *testing.T) {
	// The future-work streaming strategy is selectable through the
	// public API and matches fusion bitwise.
	m, _ := NewUniformMesh(Dims{NX: 16, NY: 16, NZ: 24}, 1.0/16, 1.0/16, 1.0/24)
	f := GenerateRT(m, 8)

	fu, _ := New(Config{Device: GPU, Strategy: "fusion", MemScale: 64})
	st, err := New(Config{Device: GPU, Strategy: "streaming", MemScale: 64})
	if err != nil {
		t.Fatal(err)
	}
	want, err := fu.EvalOnMesh(QCriterionExpr, m, FieldInputs(f))
	if err != nil {
		t.Fatal(err)
	}
	got, err := st.EvalOnMesh(QCriterionExpr, m, FieldInputs(f))
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("streaming differs from fusion at %d", i)
		}
	}
	if got.Profile.Kernels <= want.Profile.Kernels {
		t.Fatal("streaming should dispatch one kernel per tile")
	}
	if got.PeakDeviceBytes >= want.PeakDeviceBytes {
		t.Fatal("streaming should reduce peak device memory")
	}
}

func TestEngineDefinitions(t *testing.T) {
	eng, _ := New(Config{})
	if err := eng.Define("speed", "sqrt(u*u + v*v + w*w)"); err != nil {
		t.Fatal(err)
	}
	if err := eng.Define("ke", "0.5 * rho * speed * speed"); err != nil {
		t.Fatal(err)
	}
	got := eng.Definitions()
	if len(got) != 2 || got[0] != "ke" || got[1] != "speed" {
		t.Fatalf("definitions: %v", got)
	}

	u := []float32{3, 0}
	v := []float32{4, 0}
	w := []float32{0, 2}
	rho := []float32{2, 10}
	res, err := eng.Eval("e = ke", 2, map[string][]float32{"u": u, "v": v, "w": w, "rho": rho})
	if err != nil {
		t.Fatal(err)
	}
	// ke = 0.5 * rho * |v|^2: 0.5*2*25 = 25; 0.5*10*4 = 20.
	if res.Data[0] != 25 || res.Data[1] != 20 {
		t.Fatalf("kinetic energy wrong: %v", res.Data)
	}

	if err := eng.Define("", "u"); err == nil {
		t.Error("empty definition name must fail")
	}
	if err := eng.Define("bad", "$"); err == nil {
		t.Error("unparseable definition must fail")
	}

	// Redefinition invalidates the cache and changes results.
	if err := eng.Define("ke", "rho * speed"); err != nil {
		t.Fatal(err)
	}
	res2, err := eng.Eval("e = ke", 2, map[string][]float32{"u": u, "v": v, "w": w, "rho": rho})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Data[0] != 10 || res2.Data[1] != 20 {
		t.Fatalf("redefinition not picked up: %v", res2.Data)
	}
}
