package dfg

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"time"

	"dfg/internal/obs"
	"dfg/internal/ocl"
	"dfg/internal/strategy"
)

// RetryPolicy configures an engine's fault recovery (SetRecovery).
// Errors from device execution are classified (ocl.Classify) and each
// class recovers differently:
//
//   - transient faults (a flaky transfer or kernel launch) retry the
//     same plan with exponential backoff plus jitter;
//   - capacity faults (device OOM, over-large buffer) walk the
//     degradation Ladder: the arena is drained and the expression is
//     re-planned on the next-cheaper strategy, with the streaming rung
//     escalating through progressively more (smaller) tiles;
//   - device-lost faults jump straight to the ladder's "vm" rung if it
//     has one — the host bytecode VM touches the device for nothing, so
//     it completes even on a latched-lost device — and surface
//     immediately otherwise; either way the device stays lost, and the
//     serving layer's circuit breaker sees that and schedules the
//     driver-reset probe (or replaces the device);
//   - permanent faults surface immediately — recovery at the engine
//     level cannot help.
//
// The zero value is not useful; start from DefaultRetryPolicy.
type RetryPolicy struct {
	// MaxRetries is the transient-retry budget per plan (default 3).
	MaxRetries int
	// BaseBackoff is the first retry's backoff (default 1ms); each
	// further retry doubles it up to MaxBackoff (default 50ms).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Jitter is the fraction of each backoff randomized symmetrically
	// around its nominal value, to decorrelate retry storms across
	// workers (default 0.5; 0 disables jitter).
	Jitter float64
	// Seed seeds the jitter generator; engines sharing a policy value
	// should perturb it per worker for decorrelation.
	Seed int64
	// Ladder is the capacity-degradation order by strategy name
	// (default fusion, staged, roundtrip, streaming, vm). A capacity
	// fault on a strategy moves to the rung after it; a strategy not on
	// the ladder degrades to the first rung. The terminal "vm" rung is
	// also the device-lost refuge: it runs entirely on the host, so a
	// lost device jumps directly to it.
	Ladder []string
	// StreamingTiles expands the ladder's "streaming" entry into one
	// rung per tile count, in order (default 4, 16, 64, 256): each
	// capacity fault under streaming halves the per-tile working set
	// again.
	StreamingTiles []int
	// Sleep replaces time.Sleep for backoff waits (tests); nil means
	// real sleeping.
	Sleep func(time.Duration)
}

// DefaultRetryPolicy returns the policy described on RetryPolicy.
func DefaultRetryPolicy() *RetryPolicy {
	return &RetryPolicy{
		MaxRetries:     3,
		BaseBackoff:    time.Millisecond,
		MaxBackoff:     50 * time.Millisecond,
		Jitter:         0.5,
		Ladder:         []string{"fusion", "staged", "roundtrip", "streaming", "vm"},
		StreamingTiles: []int{4, 16, 64, 256},
	}
}

// rung is one position on the expanded degradation ladder.
type rung struct {
	label string // e.g. "staged", "streaming@16"
	strat strategy.Strategy
}

// recovery is an engine's armed recovery state. Like the engine it is
// single-goroutine.
type recovery struct {
	pol   RetryPolicy
	rungs []rung
	rng   *rand.Rand
	sleep func(time.Duration)
}

// SetRecovery arms (or, with nil, disarms) fault recovery on the
// engine. The policy value is copied; defaults fill any zero field.
// Recovery is off by default: one-shot paper harnesses keep the exact
// fail-fast semantics of the original system, while the serving layer
// arms recovery on every worker engine.
func (e *Engine) SetRecovery(p *RetryPolicy) error {
	if p == nil {
		e.rec = nil
		return nil
	}
	def := DefaultRetryPolicy()
	pol := *p
	if pol.MaxRetries <= 0 {
		pol.MaxRetries = def.MaxRetries
	}
	if pol.BaseBackoff <= 0 {
		pol.BaseBackoff = def.BaseBackoff
	}
	if pol.MaxBackoff <= 0 {
		pol.MaxBackoff = def.MaxBackoff
	}
	if pol.Jitter < 0 || pol.Jitter > 1 {
		return fmt.Errorf("dfg: retry jitter %v outside [0,1]", pol.Jitter)
	}
	if pol.Jitter == 0 {
		pol.Jitter = def.Jitter
	}
	if len(pol.Ladder) == 0 {
		pol.Ladder = def.Ladder
	}
	if len(pol.StreamingTiles) == 0 {
		pol.StreamingTiles = def.StreamingTiles
	}
	var rungs []rung
	for _, name := range pol.Ladder {
		if name == "streaming" {
			for _, t := range pol.StreamingTiles {
				if t < 1 {
					return fmt.Errorf("dfg: streaming tile count %d must be positive", t)
				}
				s := strategy.Streaming{Tiles: t}
				rungs = append(rungs, rung{label: s.PlanVariant(), strat: s})
			}
			continue
		}
		s, err := strategy.ForName(name)
		if err != nil {
			return fmt.Errorf("dfg: ladder: %w", err)
		}
		rungs = append(rungs, rung{label: name, strat: s})
	}
	if len(rungs) == 0 {
		return fmt.Errorf("dfg: degradation ladder is empty")
	}
	sleep := pol.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	e.rec = &recovery{pol: pol, rungs: rungs, rng: rand.New(rand.NewSource(pol.Seed)), sleep: sleep}
	return nil
}

// Recovering reports whether fault recovery is armed.
func (e *Engine) Recovering() bool { return e.rec != nil }

// InjectFaults attaches a fault plan to the engine's device context —
// the chaos entry point used by dfg-serve -chaos and the recovery
// tests. A nil plan disables injection.
func (e *Engine) InjectFaults(p *ocl.FaultPlan) { e.env.Context().SetFaultPlan(p) }

// LiveBuffers returns the number of unreleased buffers on the engine's
// device, including buffers pooled or resident in the arena. Recovery
// and chaos harnesses use it to prove executions leak nothing.
func (e *Engine) LiveBuffers() int { return e.env.Context().LiveBuffers() }

// DeviceLost reports whether the engine's device is latched lost.
func (e *Engine) DeviceLost() bool { return e.env.Context().Lost() }

// Heal clears a latched device loss, simulating a driver reset. The
// serving layer's circuit breaker heals before each half-open health
// probe; a fault plan that keeps losing the device will simply re-trip
// the breaker until the worker replaces the device.
func (e *Engine) Heal() { e.env.Context().Heal() }

// backoff computes the nth (1-based) retry's jittered backoff.
func (r *recovery) backoff(attempt int) time.Duration {
	d := r.pol.BaseBackoff
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= r.pol.MaxBackoff {
			break
		}
	}
	if d > r.pol.MaxBackoff {
		d = r.pol.MaxBackoff
	}
	if r.pol.Jitter > 0 {
		d = time.Duration(float64(d) * (1 + r.pol.Jitter*(2*r.rng.Float64()-1)))
	}
	if d < 0 {
		d = 0
	}
	return d
}

// next finds the rung after the given label on the expanded ladder. A
// label not on the ladder (a custom strategy) degrades to the first
// rung; the last rung has nothing below it.
func (r *recovery) next(label string) (rung, bool) {
	idx := -1
	for i, ru := range r.rungs {
		if ru.label == label || strings.HasPrefix(ru.label, label+"@") {
			idx = i
			break
		}
	}
	if idx < 0 {
		if r.rungs[0].label != label {
			return r.rungs[0], true
		}
		return rung{}, false
	}
	if idx+1 >= len(r.rungs) {
		return rung{}, false
	}
	return r.rungs[idx+1], true
}

// vmRung finds the ladder's "vm" rung — the device-lost refuge.
func (r *recovery) vmRung() (rung, bool) {
	for _, ru := range r.rungs {
		if ru.label == "vm" {
			return ru, true
		}
	}
	return rung{}, false
}

// run is the recovery-wrapped execution loop around runPlanOnce. pr,
// when non-nil, remembers the rung a degraded run landed on, so
// subsequent warm evaluations start there instead of re-failing the
// primary plan.
func (r *recovery) run(e *Engine, text string, pr *Prepared, plan strategy.Plan, label string,
	bind strategy.Bindings, pool *ocl.Arena, sp *obs.Span, fp string, t0 time.Time, capt *evalCapture) (*Result, error) {
	retries := 0
	fell := false    // did this call move down the ladder at all?
	viaLost := false // was the final rung reached through a device loss?
	for {
		res, err := e.runPlanOnce(plan, label, bind, pool, sp, fp, t0, capt)
		if err == nil {
			if pr != nil && fell && plan != pr.plan {
				pr.fallback, pr.fallbackLabel, pr.fallbackLost = plan, label, viaLost
			}
			return res, nil
		}
		// A canceled request must not burn retries or rungs; surface the
		// error as-is (it already is, or wraps, the context's error).
		if bind.Ctx != nil && bind.Ctx.Err() != nil {
			return nil, err
		}
		switch ocl.Classify(err) {
		case ocl.ClassTransient:
			if retries >= r.pol.MaxRetries {
				return nil, fmt.Errorf("dfg: %d retries exhausted: %w", retries, err)
			}
			retries++
			capt.noteRetry()
			d := r.backoff(retries)
			if rs := sp.Child("retry"); rs != nil {
				rs.SetAttr("attempt", strconv.Itoa(retries)).
					SetAttr("strategy", label).
					SetAttr("backoff", d.String()).
					SetAttr("cause", err.Error())
				rs.Finish()
			}
			if e.reg != nil {
				e.reg.Counter("dfg_retries_total",
					"Transient-fault retries by execution strategy.",
					obs.Labels{"strategy": label}).Inc()
			}
			r.sleep(d)

		case ocl.ClassCapacity:
			nxt, ok := r.next(label)
			if !ok {
				return nil, fmt.Errorf("dfg: degradation ladder exhausted at %s: %w", label, err)
			}
			// Drain the arena so pooled and resident buffers do not count
			// against the smaller plan's capacity; re-planning goes through
			// the shared plan cache, so a rung already planned anywhere is
			// free here.
			e.env.Context().Pool().Drain()
			fs := sp.Child("fallback")
			if fs != nil {
				fs.SetAttr("from", label).SetAttr("to", nxt.label).SetAttr("cause", err.Error())
			}
			np, _, perr := e.comp.PlanTracedAt(text, e.lvl, nxt.strat, e.env.Device(), fs)
			fs.Finish()
			if perr != nil {
				return nil, fmt.Errorf("dfg: fallback re-plan %s -> %s: %w", label, nxt.label, perr)
			}
			if e.reg != nil {
				e.reg.Counter("dfg_fallback_total",
					"Strategy degradations by ladder edge.",
					obs.Labels{"from": label, "to": nxt.label}).Inc()
			}
			plan, label = np, nxt.label
			capt.noteFallback(nxt.label, false)
			fell = true
			retries = 0

		case ocl.ClassDeviceLost:
			// Nothing on the device can run again until the serving layer
			// heals or replaces it, but the ladder's host-VM rung (if any)
			// needs no device at all: jump straight there. Already on it,
			// or no vm rung? Surface the loss.
			vr, ok := r.vmRung()
			if !ok || label == vr.label {
				return nil, err
			}
			e.env.Context().Pool().Drain()
			fs := sp.Child("fallback")
			if fs != nil {
				fs.SetAttr("from", label).SetAttr("to", vr.label).SetAttr("cause", err.Error())
			}
			np, _, perr := e.comp.PlanTracedAt(text, e.lvl, vr.strat, e.env.Device(), fs)
			fs.Finish()
			if perr != nil {
				return nil, fmt.Errorf("dfg: fallback re-plan %s -> %s: %w", label, vr.label, perr)
			}
			if e.reg != nil {
				e.reg.Counter("dfg_fallback_total",
					"Strategy degradations by ladder edge.",
					obs.Labels{"from": label, "to": vr.label}).Inc()
			}
			plan, label = np, vr.label
			capt.noteFallback(vr.label, true)
			fell, viaLost = true, true
			retries = 0

		default: // permanent
			return nil, err
		}
	}
}
