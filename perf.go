package dfg

import (
	"time"

	"dfg/internal/compile"
	"dfg/internal/obs"
	"dfg/internal/ocl"
	"dfg/internal/perfdb"
)

// SetPerfRecorder attaches (or with nil detaches) a continuous-profiling
// recorder: every evaluation deposits one perfdb.EvalRecord — identity,
// stage timings, device-traffic counts, arena deltas, recovery flags —
// into it. The recorder is concurrency-safe and may be shared by a whole
// pool of engines; derived engine views (WithOptLevel, WithStrategy)
// inherit it. Like Instrument, call before the engine is used.
func (e *Engine) SetPerfRecorder(r *perfdb.Recorder) {
	e.perf = r
}

// PerfRecorder returns the attached recorder (nil if none).
func (e *Engine) PerfRecorder() *perfdb.Recorder { return e.perf }

// NoteQueueWait stamps the queue wait the *next* evaluation's perf
// record should carry — the serving layer measures how long a request
// sat in the queue before its worker picked it up, which the engine
// cannot see. The pending value is consumed (and reset) by the next
// recorded evaluation.
func (e *Engine) NoteQueueWait(d time.Duration) {
	if e.perf != nil {
		e.pendingWait = d
	}
}

// clock returns time.Now when the engine is observed (metrics registry
// or perf recorder attached) and the zero time otherwise, so the
// uninstrumented hot path takes no clock readings.
func (e *Engine) clock() time.Time {
	if e.reg != nil || e.perf != nil {
		return time.Now()
	}
	return time.Time{}
}

// evalCapture accumulates one evaluation's recovery trajectory across
// the retry/fallback loop, so the perf record is per-evaluation, not
// per-attempt. Allocated only when a recorder is attached. Methods are
// nil-safe so the recovery loop calls them unconditionally.
type evalCapture struct {
	entry      string // ladder label the evaluation entered with
	resolved   string // what actually executed (set by the final attempt)
	retries    int
	degraded   string // rung a fallback landed on ("" if none)
	deviceLost bool
}

func (c *evalCapture) setResolved(label string) {
	if c != nil {
		c.resolved = label
	}
}

func (c *evalCapture) noteRetry() {
	if c != nil {
		c.retries++
	}
}

func (c *evalCapture) noteFallback(to string, viaLost bool) {
	if c != nil {
		c.degraded = to
		if viaLost {
			c.deviceLost = true
		}
	}
}

// recordEval builds and deposits the evaluation's perf record.
// arenaBefore holds the engine's arena counters snapshotted at entry;
// res is nil on failure.
func (e *Engine) recordEval(c *evalCapture, res *Result, err error, n int, fp string,
	sp *obs.Span, t0 time.Time, arenaBefore ocl.ArenaStats) {
	after := e.ArenaStats()
	rec := perfdb.EvalRecord{
		UnixNS:         time.Now().UnixNano(),
		TraceID:        sp.ID(),
		Fingerprint:    shortFingerprint(fp),
		Strategy:       c.entry,
		Resolved:       c.resolved,
		Opt:            e.lvl.String(),
		Device:         e.env.Device().Name(),
		N:              n,
		Batch:          e.pendingBatch,
		QueueWaitNS:    int64(e.pendingWait),
		PlanNS:         int64(e.pendingPlan),
		TotalNS:        time.Since(t0).Nanoseconds(),
		Allocs:         after.Allocated - arenaBefore.Allocated,
		Reused:         after.Reused - arenaBefore.Reused,
		Uploads:        after.Uploads - arenaBefore.Uploads,
		UploadsSkipped: after.UploadsSkipped - arenaBefore.UploadsSkipped,
		Retries:        c.retries,
		Degraded:       c.degraded,
		DeviceLost:     c.deviceLost,
	}
	e.pendingWait, e.pendingPlan, e.pendingBatch = 0, 0, 0
	if res != nil {
		rec.UploadNS = res.Profile.WriteTime.Nanoseconds()
		rec.KernelNS = res.Profile.KernelTime.Nanoseconds()
		rec.DownloadNS = res.Profile.ReadTime.Nanoseconds()
		rec.Writes = res.Profile.Writes
		rec.Reads = res.Profile.Reads
		rec.Kernels = res.Profile.Kernels
		rec.WriteBytes = res.Profile.WriteBytes
		rec.ReadBytes = res.Profile.ReadBytes
		rec.PeakBytes = res.PeakDeviceBytes
	}
	if err != nil {
		rec.Err = err.Error()
	}
	e.perf.Record(rec)
}

// shortFingerprint is the compact fingerprint form records and metric
// labels share.
func shortFingerprint(fp string) string { return compile.ShortKey(fp) }
