package dfg

import (
	"context"
	"fmt"
	"strconv"

	"dfg/internal/compile"
	"dfg/internal/obs"
	"dfg/internal/ocl"
	"dfg/internal/strategy"
)

// Prepared is an expression prepared for repeated evaluation: the
// compile and planning work (parse, fingerprint, topological order,
// kernel resolution, fused-kernel generation) is done once at Prepare
// time, and every Eval attaches the engine's buffer arena so device
// buffers recycle across calls and unchanged sources stay
// device-resident. This is the in-situ pattern — one expression, many
// timesteps — made explicit in the API; one-shot Engine.Eval remains
// the exact paper semantics (per-run allocate/free, Table II event
// counts).
//
// A Prepared is bound to its engine and shares the engine's
// single-goroutine discipline: do not use one engine's prepared plans
// from multiple goroutines concurrently. The underlying plan itself is
// immutable and shared through the compiler's plan cache, so preparing
// the same expression on many engines costs one planning pass.
//
// Close releases the prepared handle; when an engine's last prepared
// handle closes, the engine drains its arena, returning the context's
// live-buffer count to the pre-Prepare level.
type Prepared struct {
	eng    *Engine
	plan   strategy.Plan
	fp     string
	text   string
	closed bool

	// fallback, when non-nil, is the degraded plan the engine's
	// recovery ladder landed on during an earlier evaluation, with
	// fallbackLabel naming its rung (e.g. "streaming@16"). Warm
	// evaluations start from it instead of re-failing the primary plan.
	// Capacity degradations are engine-recovery state cleared by
	// nothing short of a new Prepare; a device-lost degradation
	// (fallbackLost) clears itself once the device is healed, since the
	// primary plan was never the problem.
	fallback      strategy.Plan
	fallbackLabel string
	fallbackLost  bool
}

// refresh drops a device-lost fallback once the device has healed:
// the primary plan only failed because the device was gone, so a
// healthy device restores it. Capacity fallbacks stay parked.
func (p *Prepared) refresh() {
	if p.fallbackLost && !p.eng.DeviceLost() {
		p.fallback, p.fallbackLabel, p.fallbackLost = nil, "", false
	}
}

// active returns the plan a warm evaluation should start from and its
// ladder label: the parked fallback if a previous run degraded, else
// the primary plan.
func (p *Prepared) active() (strategy.Plan, string) {
	p.refresh()
	if p.fallback != nil {
		return p.fallback, p.fallbackLabel
	}
	return p.plan, strategy.PlanCacheName(p.eng.strat)
}

// Degraded names the degradation-ladder rung this prepared expression
// last landed on, or "" while the primary plan is still in use. A
// device-lost degradation reports "" again once Engine.Heal has
// restored the device.
func (p *Prepared) Degraded() string {
	p.refresh()
	return p.fallbackLabel
}

// Prepare compiles and plans an expression for repeated evaluation.
func (e *Engine) Prepare(text string) (*Prepared, error) {
	sp := e.tracer.Start("prepare")
	defer sp.Finish()
	return e.PrepareTraced(sp, text)
}

// PrepareTraced is Prepare recording its compile and plan spans under
// the caller-owned parent span.
func (e *Engine) PrepareTraced(parent *obs.Span, text string) (*Prepared, error) {
	plan, fp, err := e.comp.PlanTracedAt(text, e.lvl, e.strat, e.env.Device(), parent)
	if err != nil {
		return nil, err
	}
	e.prepCount++
	return &Prepared{eng: e, plan: plan, fp: fp, text: text}, nil
}

// Fingerprint returns the prepared expression's cache fingerprint (the
// compile-cache key at Prepare time).
func (p *Prepared) Fingerprint() string { return p.fp }

// Text returns the prepared expression text.
func (p *Prepared) Text() string { return p.text }

// Eval evaluates the prepared expression over n elements with the given
// named input arrays, drawing device buffers from the engine's arena.
func (p *Prepared) Eval(n int, inputs map[string][]float32) (*Result, error) {
	sp := p.eng.tracer.Start("eval")
	res, err := p.EvalTraced(sp, n, inputs)
	sp.Finish()
	return res, err
}

// EvalCtx is Eval observing a context: the run stops at the next
// kernel-launch boundary once ctx is done, and a done context also
// stops recovery retries and fallbacks.
func (p *Prepared) EvalCtx(ctx context.Context, n int, inputs map[string][]float32) (*Result, error) {
	sp := p.eng.tracer.Start("eval")
	res, err := p.evalTraced(ctx, sp, n, inputs)
	sp.Finish()
	return res, err
}

// EvalTraced is Eval recording its bind and execute spans as children
// of the caller-owned parent span.
func (p *Prepared) EvalTraced(parent *obs.Span, n int, inputs map[string][]float32) (*Result, error) {
	return p.evalTraced(nil, parent, n, inputs)
}

// EvalTracedCtx is EvalTraced observing a context (see EvalCtx); the
// serving layer threads each request's deadline through here.
func (p *Prepared) EvalTracedCtx(ctx context.Context, parent *obs.Span, n int, inputs map[string][]float32) (*Result, error) {
	return p.evalTraced(ctx, parent, n, inputs)
}

// evalTraced is the shared Eval core; ctx may be nil.
func (p *Prepared) evalTraced(ctx context.Context, parent *obs.Span, n int, inputs map[string][]float32) (*Result, error) {
	if p.closed {
		return nil, fmt.Errorf("dfg: prepared expression is closed")
	}
	e := p.eng
	if parent != nil {
		parent.SetAttr("strategy", e.strat.Name()).SetAttr("n", strconv.Itoa(n))
	}
	t0 := e.clock()
	bs := parent.Child("bind")
	bind := strategy.Bindings{N: n, Sources: make(map[string]strategy.Source, len(inputs)), Ctx: ctx}
	for name, data := range inputs {
		bind.Sources[name] = strategy.Source{Data: data, Width: 1}
	}
	bs.Finish()
	plan, label := p.active()
	return e.runPlan(p.text, p, plan, label, bind, e.env.Context().Pool(), parent, p.fp, t0)
}

// EvalMesh evaluates the prepared expression over cell-centered fields
// on a mesh, binding the mesh-derived sources (dims, x, y, z) the
// gradient primitive needs. The derived arrays are memoized per mesh,
// so repeated calls over one mesh rebind the same backing arrays — and
// the arena keeps them device-resident, skipping their re-upload.
func (p *Prepared) EvalMesh(m *Mesh, fields map[string][]float32) (*Result, error) {
	if p.closed {
		return nil, fmt.Errorf("dfg: prepared expression is closed")
	}
	e := p.eng
	sp := e.tracer.Start("eval")
	defer sp.Finish()
	if sp != nil {
		sp.SetAttr("strategy", e.strat.Name()).SetAttr("n", strconv.Itoa(m.Cells()))
	}
	t0 := e.clock()
	bs := sp.Child("bind")
	bind, err := strategy.BindMesh(m, fields)
	bs.Finish()
	if err != nil {
		return nil, err
	}
	plan, label := p.active()
	return e.runPlan(p.text, p, plan, label, bind, e.env.Context().Pool(), sp, p.fp, t0)
}

// Close releases the prepared handle. Closing the engine's last open
// handle drains the arena: every pooled and resident device buffer is
// freed, restoring the context's live-buffer count and used-byte
// accounting to the pre-Prepare level.
//
// Close is idempotent: a second (or hundredth) Close is a no-op — the
// handle's prepCount reference is surrendered exactly once, so
// double-Close can never drain an arena other handles still rely on.
// The arena's Drain is itself idempotent, so Close racing nothing can
// double-free either way.
func (p *Prepared) Close() {
	if p.closed {
		return
	}
	p.closed = true
	if p.eng.prepCount > 0 {
		p.eng.prepCount--
	}
	if p.eng.prepCount == 0 {
		p.eng.env.Context().Pool().Drain()
	}
}

// Fingerprint returns the compile-cache key Eval would use for text
// under the engine's current definitions and optimisation level.
func (e *Engine) Fingerprint(text string) string { return e.comp.FingerprintAt(text, e.lvl) }

// ArenaStats snapshots the engine's buffer-arena counters: buffers
// reused vs freshly allocated, resident-source uploads vs skips, and
// pooled/resident byte totals.
func (e *Engine) ArenaStats() ocl.ArenaStats {
	return e.env.Context().Pool().Stats()
}

// CacheStats snapshots the engine's (possibly shared) compile- and
// plan-cache counters.
func (e *Engine) CacheStats() compile.Stats { return e.comp.Stats() }
