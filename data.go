package dfg

import (
	"dfg/internal/rtsim"
	"dfg/internal/vortex"
)

// Field is one time step of cell-centered velocity data (u, v, w) on a
// mesh — the inputs the paper's evaluation feeds the framework.
type Field = rtsim.Field

// GenerateRT deterministically synthesizes a Rayleigh–Taylor-like
// velocity field on the mesh, standing in for the paper's (proprietary)
// 3072^3 LLNL RT DNS data set. Equal seeds give equal fields.
func GenerateRT(m *Mesh, seed int64) *Field {
	return rtsim.Generate(m, rtsim.Options{Seed: seed})
}

// The paper's three application expressions (Figure 3), ready to Eval.
const (
	// VelocityMagnitudeExpr computes |v| (Figure 3A).
	VelocityMagnitudeExpr = vortex.VelMagExpr
	// VorticityMagnitudeExpr computes |curl v| (Figure 3B).
	VorticityMagnitudeExpr = vortex.VortMagExpr
	// QCriterionExpr computes Hunt's Q-criterion (Figure 3C).
	QCriterionExpr = vortex.QCritExpr
	// GradientMagnitudeExpr (beyond the paper) computes |grad |v|| — the
	// canonical two-pass expression whose stencil consumes a computed
	// field, exercising the materialization split and temporal blocking.
	GradientMagnitudeExpr = vortex.GradMagExpr
)

// FieldInputs packs a velocity field's arrays for Engine.EvalOnMesh.
func FieldInputs(f *Field) map[string][]float32 {
	return map[string][]float32{"u": f.U, "v": f.V, "w": f.W}
}
