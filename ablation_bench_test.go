package dfg_test

// Ablation benchmarks for the design choices DESIGN.md calls out:
//
//   - common sub-expression elimination (the parser's "limited CSE"),
//   - reference-count-driven buffer frees in the staged strategy,
//   - the streaming tile count (future-work strategy),
//   - one device vs. the node's two GPUs (future-work strategy).
//
// Each reports the modeled device time and/or peak device memory so the
// effect of the design choice is visible next to the wall time.

import (
	"fmt"
	"testing"

	"dfg"
	"dfg/internal/codegen"
	"dfg/internal/expr"
	"dfg/internal/ocl"
	"dfg/internal/strategy"
	"dfg/internal/vortex"
)

// BenchmarkAblation_CSE compares the staged execution of Q-criterion
// with and without common sub-expression elimination. Without CSE every
// du[1]-style component is decomposed at every use, adding kernel
// dispatches and device traffic.
func BenchmarkAblation_CSE(b *testing.B) {
	m, f := benchGrid(b)
	bind := benchBindings(b, m, f)
	for _, cse := range []bool{true, false} {
		name := "with-cse"
		if !cse {
			name = "without-cse"
		}
		b.Run(name, func(b *testing.B) {
			p, err := expr.Parse(vortex.QCritExpr)
			if err != nil {
				b.Fatal(err)
			}
			net, err := expr.BuildNetwork(p)
			if err != nil {
				b.Fatal(err)
			}
			if cse {
				net.EliminateCommonSubexpressions()
			}
			s, _ := strategy.ForName("staged")
			var kernels, devNs float64
			for i := 0; i < b.N; i++ {
				env := ocl.NewEnv(ocl.NewDevice(ocl.XeonX5660Spec(64)))
				res, err := s.Execute(env, net, bind)
				if err != nil {
					b.Fatal(err)
				}
				kernels = float64(res.Profile.Kernels)
				devNs = float64(res.Profile.DeviceTime().Nanoseconds())
			}
			b.ReportMetric(kernels, "kernels/op")
			b.ReportMetric(devNs, "modeled-ns/op")
		})
	}
}

// BenchmarkAblation_Refcounting compares staged Q-criterion with eager
// reference-count-driven frees against hoarding every intermediate.
func BenchmarkAblation_Refcounting(b *testing.B) {
	m, f := benchGrid(b)
	bind := benchBindings(b, m, f)
	net, err := expr.Compile(vortex.QCritExpr)
	if err != nil {
		b.Fatal(err)
	}
	for _, keep := range []bool{false, true} {
		name := "eager-free"
		if keep {
			name = "keep-intermediates"
		}
		b.Run(name, func(b *testing.B) {
			s := strategy.Staged{KeepIntermediates: keep}
			var peak float64
			for i := 0; i < b.N; i++ {
				env := ocl.NewEnv(ocl.NewDevice(ocl.XeonX5660Spec(64)))
				res, err := s.Execute(env, net, bind)
				if err != nil {
					b.Fatal(err)
				}
				peak = float64(res.PeakBytes)
			}
			b.ReportMetric(peak, "peak-device-B")
		})
	}
}

// BenchmarkAblation_StreamingTiles sweeps the streaming strategy's tile
// count on Q-criterion: more tiles shrink peak memory but add kernel
// launches and halo re-uploads.
func BenchmarkAblation_StreamingTiles(b *testing.B) {
	m, f := benchGrid(b)
	bind := benchBindings(b, m, f)
	net, err := expr.Compile(vortex.QCritExpr)
	if err != nil {
		b.Fatal(err)
	}
	for _, tiles := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("tiles-%d", tiles), func(b *testing.B) {
			s := strategy.Streaming{Tiles: tiles}
			var peak, devNs float64
			for i := 0; i < b.N; i++ {
				env := ocl.NewEnv(ocl.NewDevice(ocl.TeslaM2050Spec(64)))
				res, err := s.Execute(env, net, bind)
				if err != nil {
					b.Fatal(err)
				}
				peak = float64(res.PeakBytes)
				devNs = float64(res.Profile.DeviceTime().Nanoseconds())
			}
			b.ReportMetric(peak, "peak-device-B")
			b.ReportMetric(devNs, "modeled-ns/op")
		})
	}
}

// BenchmarkAblation_MultiDevice compares Q-criterion fusion on one GPU
// against splitting the grid across the node's two GPUs.
func BenchmarkAblation_MultiDevice(b *testing.B) {
	m, f := benchGrid(b)
	bind := benchBindings(b, m, f)
	net, err := expr.Compile(vortex.QCritExpr)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("one-gpu", func(b *testing.B) {
		s, _ := strategy.ForName("fusion")
		var devNs float64
		for i := 0; i < b.N; i++ {
			env := ocl.NewEnv(ocl.NewDevice(ocl.TeslaM2050Spec(64)))
			res, err := s.Execute(env, net, bind)
			if err != nil {
				b.Fatal(err)
			}
			devNs = float64(res.Profile.DeviceTime().Nanoseconds())
		}
		b.ReportMetric(devNs, "modeled-ns/op")
	})
	b.Run("two-gpus", func(b *testing.B) {
		var devNs float64
		for i := 0; i < b.N; i++ {
			envs := []*ocl.Env{
				ocl.NewEnv(ocl.NewDevice(ocl.TeslaM2050Spec(64))),
				ocl.NewEnv(ocl.NewDevice(ocl.TeslaM2050Spec(64))),
			}
			res, err := strategy.ExecuteMultiDevice(envs, net, bind)
			if err != nil {
				b.Fatal(err)
			}
			// Devices run concurrently: the modeled makespan is the
			// slower device's timeline, not the sum.
			var makespan float64
			for _, env := range envs {
				if d := float64(env.Queue().Now().Nanoseconds()); d > makespan {
					makespan = d
				}
			}
			devNs = makespan
			_ = res
		}
		b.ReportMetric(devNs, "modeled-ns/op")
	})
}

// BenchmarkAblation_VMTier compares end-to-end warm Q-criterion
// evaluation on the host bytecode VM against the fusion strategy at
// small mesh sizes — the measurement behind the tiered planner's
// default threshold. At these sizes the device strategies' fixed
// per-run transfer and launch overhead dwarfs the arithmetic; the VM
// runs the same fused pipeline out of pooled host scratch with zero
// device traffic.
func BenchmarkAblation_VMTier(b *testing.B) {
	for _, side := range []int{4, 8, 16} {
		m, err := dfg.NewUniformMesh(dfg.Dims{NX: side, NY: side, NZ: side},
			1.0/float32(side), 1.0/float32(side), 1.0/float32(side))
		if err != nil {
			b.Fatal(err)
		}
		f := dfg.GenerateRT(m, 11)
		fields := dfg.FieldInputs(f)
		for _, strat := range []string{"vm", "fusion"} {
			b.Run(fmt.Sprintf("%s-%dcubed", strat, side), func(b *testing.B) {
				eng, err := dfg.New(dfg.Config{Device: dfg.CPU, Strategy: strat})
				if err != nil {
					b.Fatal(err)
				}
				pr, err := eng.Prepare(dfg.QCriterionExpr)
				if err != nil {
					b.Fatal(err)
				}
				defer pr.Close()
				if _, err := pr.EvalMesh(m, fields); err != nil { // cold run
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := pr.EvalMesh(m, fields); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkAblation_ExecutorMode compares the blocked (NumExpr-style)
// fused-plan executor against the per-element interpreter on the
// Q-criterion kernel. Results are bitwise identical; only host wall
// time differs.
func BenchmarkAblation_ExecutorMode(b *testing.B) {
	m, f := benchGrid(b)
	bind := benchBindings(b, m, f)
	net, err := expr.Compile(vortex.QCritExpr)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []codegen.Mode{codegen.ModeBlocked, codegen.ModeElementwise} {
		b.Run(mode.String(), func(b *testing.B) {
			prog, err := codegen.FuseWithMode(net, "qcrit", mode)
			if err != nil {
				b.Fatal(err)
			}
			env := ocl.NewEnv(ocl.NewDevice(ocl.XeonX5660Spec(64)))
			bufs := make([]*ocl.Buffer, len(prog.Args))
			for i, a := range prog.Args {
				switch a.Kind {
				case codegen.ArgSource:
					src := bind.Sources[a.Name]
					buf, err := env.Upload(a.Name, src.Data, src.Width)
					if err != nil {
						b.Fatal(err)
					}
					bufs[i] = buf
				default:
					bufs[i] = env.Context().MustBuffer(a.Name, bind.N, a.Width)
				}
			}
			b.SetBytes(int64(bind.N) * 4)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := env.Run(prog.Kernel, bind.N, bufs, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
