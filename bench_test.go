package dfg_test

// One benchmark per table and figure of the paper's evaluation section.
// `go test -bench=. -benchmem` exercises all of them at laptop scale;
// cmd/dfg-bench regenerates the full tables. Each Figure 5/6 benchmark
// reports the modeled device time (the quantity the paper plots) and
// the device-memory high-water mark as custom metrics alongside the
// real Go wall time.

import (
	"fmt"
	"testing"

	"dfg"
	"dfg/internal/dataflow"
	"dfg/internal/expr"
	"dfg/internal/mesh"
	"dfg/internal/metrics"
	"dfg/internal/obs"
	"dfg/internal/ocl"
	"dfg/internal/par"
	"dfg/internal/passes"
	"dfg/internal/rtsim"
	"dfg/internal/strategy"
	"dfg/internal/vortex"
)

// benchGrid is Table I row 1 at 1/4 linear scale (147,456 cells), the
// sweet spot between realism and bench runtime.
func benchGrid(b *testing.B) (*mesh.Mesh, *rtsim.Field) {
	b.Helper()
	g := rtsim.TableIGrids(4)[0]
	m, err := mesh.NewUniform(g.Dims, 1.0/float32(g.Dims.NX), 1.0/float32(g.Dims.NY), 1.0/float32(g.Dims.NZ))
	if err != nil {
		b.Fatal(err)
	}
	return m, rtsim.Generate(m, rtsim.Options{Seed: 42})
}

func benchBindings(b *testing.B, m *mesh.Mesh, f *rtsim.Field) strategy.Bindings {
	b.Helper()
	bind, err := strategy.BindMesh(m, map[string][]float32{"u": f.U, "v": f.V, "w": f.W})
	if err != nil {
		b.Fatal(err)
	}
	return bind
}

// BenchmarkTableI_Generate measures synthetic RT data generation for the
// first Table I sub-grid (the "read the data set" step of every run).
func BenchmarkTableI_Generate(b *testing.B) {
	g := rtsim.TableIGrids(4)[0]
	m, err := mesh.NewUniform(g.Dims, 1, 1, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(g.Cells) * 3 * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rtsim.Generate(m, rtsim.Options{Seed: int64(i)})
	}
}

// BenchmarkTableII_Counts measures the front end plus counting runs that
// regenerate Table II (parse -> network -> all strategies on a small
// grid).
func BenchmarkTableII_Counts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := metrics.TableII(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2_Schematic measures the analytical strategy memory model
// on the paper's example network.
func BenchmarkFig2_Schematic(b *testing.B) {
	nodes := metrics.Fig2Network()
	for i := 0; i < b.N; i++ {
		for _, s := range []string{"roundtrip", "staged", "fusion"} {
			if _, err := metrics.SchematicMemory(nodes, s); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig3_Parse measures the expression front end on the paper's
// three expressions (Figure 3): lex + LALR parse + network emission +
// CSE.
func BenchmarkFig3_Parse(b *testing.B) {
	for _, e := range vortex.Expressions() {
		b.Run(e.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := expr.Compile(e.Text); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig4_FusionCodegen measures the dynamic kernel generator on
// the Q-criterion network (Figure 4): the cost of generating the fused
// kernel source and executable plan.
func BenchmarkFig4_FusionCodegen(b *testing.B) {
	net, err := expr.Compile(vortex.QCritExpr)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := strategy.GeneratedSource(net, "qcrit"); err != nil {
			b.Fatal(err)
		}
	}
}

// fig5Case runs one (expression, executor, device) cell of Figure 5,
// reporting the modeled device time and peak device memory the paper
// plots in Figures 5 and 6.
func fig5Case(b *testing.B, exprName string, exec metrics.Executor, spec ocl.DeviceSpec, net *dataflow.Network, bind strategy.Bindings) {
	b.Helper()
	var devNs, peak float64
	for i := 0; i < b.N; i++ {
		env := ocl.NewEnv(ocl.NewDevice(spec))
		res, err := exec.Run(env, net, bind, exprName)
		if err != nil {
			b.Fatal(err)
		}
		devNs = float64(res.Profile.DeviceTime().Nanoseconds())
		peak = float64(res.PeakBytes)
	}
	b.ReportMetric(devNs, "modeled-ns/op")
	b.ReportMetric(peak, "peak-device-B")
}

// BenchmarkFig5 runs the full runtime-study matrix on the first Table I
// sub-grid: 3 expressions x 4 executors x 2 devices.
func BenchmarkFig5(b *testing.B) {
	m, f := benchGrid(b)
	bind := benchBindings(b, m, f)
	nets := map[string]*dataflow.Network{}
	for _, e := range vortex.Expressions() {
		net, err := expr.Compile(e.Text)
		if err != nil {
			b.Fatal(err)
		}
		nets[e.Name] = net
	}
	for _, e := range vortex.Expressions() {
		for _, spec := range []ocl.DeviceSpec{ocl.XeonX5660Spec(64), ocl.TeslaM2050Spec(64)} {
			for _, exec := range metrics.Executors() {
				name := fmt.Sprintf("%s/%s/%s", e.Name, spec.Type, exec.Name)
				b.Run(name, func(b *testing.B) {
					fig5Case(b, e.Name, exec, spec, nets[e.Name], bind)
				})
			}
		}
	}
}

// BenchmarkFig6_MemorySweep runs the memory study's hungriest case
// (staged Q-criterion) and reports the high-water mark that determines
// the paper's GPU failures.
func BenchmarkFig6_MemorySweep(b *testing.B) {
	m, f := benchGrid(b)
	bind := benchBindings(b, m, f)
	net, err := expr.Compile(vortex.QCritExpr)
	if err != nil {
		b.Fatal(err)
	}
	s, _ := strategy.ForName("staged")
	var peak float64
	for i := 0; i < b.N; i++ {
		env := ocl.NewEnv(ocl.NewDevice(ocl.XeonX5660Spec(64)))
		res, err := s.Execute(env, net, bind)
		if err != nil {
			b.Fatal(err)
		}
		peak = float64(res.PeakBytes)
	}
	b.ReportMetric(peak, "peak-device-B")
}

// BenchmarkAblation_OptLevel is the optimisation-level ablation: the
// Q-criterion expression compiled at the Paper level versus O2, run
// over the first Table I sub-grids, reporting the kernel launches,
// host-to-device transfers and modeled device time each level pays.
// The kernel and transfer counts are size-independent, so the per-grid
// series shows how the O2 savings (67 -> 55 staged launches from
// gradient-axis forwarding and commuted CSE) scale with cell count.
func BenchmarkAblation_OptLevel(b *testing.B) {
	levels := []passes.Level{passes.LevelPaper, passes.LevelO2}
	nets := map[passes.Level]*dataflow.Network{}
	for _, lvl := range levels {
		net, _, err := expr.CompileWithPipeline(vortex.QCritExpr, nil, passes.ForLevel(lvl), passes.RunOptions{})
		if err != nil {
			b.Fatal(err)
		}
		nets[lvl] = net
	}
	grids := rtsim.TableIGrids(4)[:2]
	for _, lvl := range levels {
		for _, g := range grids {
			m, err := mesh.NewUniform(g.Dims, 1.0/float32(g.Dims.NX), 1.0/float32(g.Dims.NY), 1.0/float32(g.Dims.NZ))
			if err != nil {
				b.Fatal(err)
			}
			f := rtsim.Generate(m, rtsim.Options{Seed: 42})
			bind := benchBindings(b, m, f)
			for _, sname := range []string{"staged", "fusion"} {
				s, _ := strategy.ForName(sname)
				b.Run(fmt.Sprintf("%s/%s/%s", lvl, g.Dims, sname), func(b *testing.B) {
					var prof ocl.Profile
					for i := 0; i < b.N; i++ {
						env := ocl.NewEnv(ocl.NewDevice(ocl.XeonX5660Spec(64)))
						res, err := s.Execute(env, nets[lvl], bind)
						if err != nil {
							b.Fatal(err)
						}
						prof = res.Profile
					}
					b.ReportMetric(float64(prof.Kernels), "kernels/op")
					b.ReportMetric(float64(prof.Writes), "dev-writes/op")
					b.ReportMetric(float64(prof.DeviceTime().Nanoseconds()), "modeled-ns/op")
				})
			}
		}
	}
}

// BenchmarkFig7_Distributed runs a reduced version of the paper's
// 3072-block distributed Q-criterion evaluation (64 blocks, 8 ranks,
// 2 GPUs per node, ghost exchange, fusion).
func BenchmarkFig7_Distributed(b *testing.B) {
	cfg := par.Config{
		Domain:      mesh.Dims{NX: 32, NY: 32, NZ: 32},
		Parts:       [3]int{4, 4, 4},
		Ranks:       8,
		GPUsPerNode: 2,
		Ghost:       1,
		Seed:        42,
		MemScale:    4096,
	}
	b.SetBytes(int64(cfg.Domain.Cells()) * 3 * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := par.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineEval measures the engine hot path with and without
// observability attached. The uninstrumented variant is the overhead
// acceptance check for the nil-tracer no-op path: every span call sites
// still executes, but with a nil tracer no clock is read and nothing
// allocates, so it should be within noise (<2%) of the pre-tracing
// engine. The instrumented variant prices full span trees + histogram
// observation per eval.
func BenchmarkEngineEval(b *testing.B) {
	m, f := benchGrid(b)
	inputs := dfg.FieldInputs(f)
	n := m.Cells()
	run := func(b *testing.B, instrument bool) {
		eng, err := dfg.New(dfg.Config{Device: dfg.CPU, Strategy: "fusion", MemScale: 64})
		if err != nil {
			b.Fatal(err)
		}
		if instrument {
			eng.Instrument(obs.NewTracer(obs.DefaultKeep), obs.NewRegistry())
		}
		b.SetBytes(int64(n) * 3 * 4)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Eval("q = sqrt(u*u + v*v + w*w)", n, inputs); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("uninstrumented", func(b *testing.B) { run(b, false) })
	b.Run("instrumented", func(b *testing.B) { run(b, true) })
}

// BenchmarkHostInterface measures the public API end to end (what a
// host application pays per time step): expression cache hit, binding,
// fusion execution, result copy-back.
func BenchmarkHostInterface(b *testing.B) {
	m, f := benchGrid(b)
	eng, err := dfg.New(dfg.Config{Device: dfg.GPU, Strategy: "fusion", MemScale: 64})
	if err != nil {
		b.Fatal(err)
	}
	inputs := dfg.FieldInputs(f)
	b.SetBytes(int64(m.Cells()) * 3 * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.EvalOnMesh(dfg.QCriterionExpr, m, inputs); err != nil {
			b.Fatal(err)
		}
	}
}
