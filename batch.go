package dfg

import (
	"context"
	"fmt"
	"strconv"
	"time"

	"dfg/internal/obs"
	"dfg/internal/ocl"
	"dfg/internal/passes"
	"dfg/internal/strategy"
)

// This file is the engine's batch front: several expressions sharing one
// mesh evaluate as a single merged super-network — compiled members are
// merged with cross-expression CSE (internal/passes.MergeNetworks),
// planned once through the shared plan cache under the batch fingerprint,
// executed in one run, and the per-root outputs demultiplexed back to one
// Result per member. Shared subtrees across members execute exactly once.
//
// A batch that deduplicates to a single distinct expression takes the
// ordinary solo path (tiered VM routing included), so batching never
// regresses batch-of-one latency. Batch executions run OUTSIDE the
// engine's recovery ladder: the ladder re-plans from expression text,
// which a merged super-network does not have. Callers degrade a failed
// batch by splitting it back to solo evaluations, which re-enter the
// ladder individually — internal/serve does exactly that.

// BatchResult is the outcome of evaluating a batch of expressions as one
// merged super-network.
type BatchResult struct {
	// Results holds one result per input expression, in input order.
	// Members that deduplicated to the same fingerprint share one root
	// and therefore the same backing output array. Each result's
	// Profile, Events and PeakDeviceBytes describe the whole batch run —
	// the batch executed once, so per-member attribution of device
	// traffic does not exist.
	Results []*Result
	// Fingerprint is the batch fingerprint: a digest over the sorted,
	// de-duplicated member fingerprints.
	Fingerprint string
	// Shared counts the network nodes cross-expression CSE eliminated
	// when merging — work that would have run once per duplicated
	// subtree had the members evaluated individually.
	Shared int
	// Members is the number of distinct member expressions merged
	// (after fingerprint deduplication).
	Members int
}

// PreparedBatch is a batch of expressions prepared for repeated merged
// evaluation, the batch analogue of Prepared: member compilation, the
// merge, and planning happen once at PrepareBatch time; every Eval runs
// the merged plan with the engine's buffer arena attached and
// demultiplexes the roots. It shares the engine's single-goroutine
// discipline and counts as one Prepared handle for arena draining.
type PreparedBatch struct {
	eng   *Engine
	texts []string
	fps   []string // per input text, in input order
	bfp   string

	// solo is the single-distinct-member fast path: the batch is an
	// ordinary prepared expression, evaluated solo (plan, recovery
	// ladder and tiered routing all intact). nil for real merges.
	solo *Prepared

	plan    strategy.Plan
	rootIdx []int // per input text -> index into the run's root outputs
	shared  int
	members int
	closed  bool
}

// PrepareBatch compiles, merges and plans a batch of expressions for
// repeated evaluation. Any member failing to compile fails the whole
// batch — callers wanting per-member error isolation compile members
// individually first (the shared cache makes the re-compile here free)
// and batch only the survivors.
func (e *Engine) PrepareBatch(texts []string) (*PreparedBatch, error) {
	sp := e.tracer.Start("prepare-batch")
	defer sp.Finish()
	return e.PrepareBatchTraced(sp, texts)
}

// PrepareBatchTraced is PrepareBatch recording its member-compile,
// merge and plan spans under the caller-owned parent span.
func (e *Engine) PrepareBatchTraced(parent *obs.Span, texts []string) (*PreparedBatch, error) {
	if len(texts) == 0 {
		return nil, fmt.Errorf("dfg: batch needs at least one expression")
	}
	members := make([]passes.MergeMember, 0, len(texts))
	fps := make([]string, len(texts))
	seen := make(map[string]bool, len(texts))
	for i, text := range texts {
		net, fp, err := e.comp.CompileTracedAt(text, e.lvl, parent)
		if err != nil {
			return nil, fmt.Errorf("dfg: batch member %d: %w", i, err)
		}
		fps[i] = fp
		if !seen[fp] {
			seen[fp] = true
			members = append(members, passes.MergeMember{Fp: fp, Net: net})
		}
	}
	if len(members) == 1 {
		// Batch of one (possibly N requests for one expression): the
		// solo fast path, byte-identical to an ordinary Prepare.
		solo, err := e.PrepareTraced(parent, texts[0])
		if err != nil {
			return nil, err
		}
		return &PreparedBatch{eng: e, texts: texts, fps: fps, bfp: solo.fp, solo: solo, members: 1}, nil
	}
	merged, bfp, err := e.comp.MergeTraced(members, e.lvl, parent)
	if err != nil {
		return nil, err
	}
	plan, err := e.comp.PlanNetTraced(merged.Net, bfp, e.strat, e.env.Device(), parent)
	if err != nil {
		return nil, err
	}
	// Map each input text to its root's position in the execution's
	// root order. Distinct fingerprints can still CSE to one root (e.g.
	// commuted operands at O2), so the index goes through the merged
	// network's de-duplicated root list.
	idxOf := make(map[string]int, len(merged.Net.Roots()))
	for i, id := range merged.Net.Roots() {
		idxOf[id] = i
	}
	rootIdx := make([]int, len(texts))
	for i, fp := range fps {
		id, ok := merged.Root(fp)
		if !ok {
			return nil, fmt.Errorf("dfg: batch member %d: root lost in merge", i)
		}
		rootIdx[i] = idxOf[id]
	}
	e.prepCount++
	return &PreparedBatch{
		eng: e, texts: texts, fps: fps, bfp: bfp,
		plan: plan, rootIdx: rootIdx, shared: merged.Shared, members: len(members),
	}, nil
}

// Fingerprint returns the batch fingerprint (the member fingerprint for
// a batch that deduplicated to one expression).
func (pb *PreparedBatch) Fingerprint() string { return pb.bfp }

// Shared counts the network nodes cross-expression CSE eliminated at
// merge time (0 for the solo fast path).
func (pb *PreparedBatch) Shared() int { return pb.shared }

// Members is the number of distinct member expressions merged.
func (pb *PreparedBatch) Members() int { return pb.members }

// Solo reports whether the batch took the single-expression fast path.
func (pb *PreparedBatch) Solo() bool { return pb.solo != nil }

// Eval evaluates the batch over n elements with the given named input
// arrays (all members share the binding — that is what makes them a
// batch), drawing device buffers from the engine's arena.
func (pb *PreparedBatch) Eval(n int, inputs map[string][]float32) (*BatchResult, error) {
	sp := pb.eng.tracer.Start("eval-batch")
	res, err := pb.EvalTracedCtx(nil, sp, n, inputs)
	sp.Finish()
	return res, err
}

// EvalTracedCtx is Eval recording its bind and execute spans under the
// caller-owned parent span and observing a context (the run stops at
// the next kernel-launch boundary once ctx is done).
func (pb *PreparedBatch) EvalTracedCtx(ctx context.Context, parent *obs.Span, n int, inputs map[string][]float32) (*BatchResult, error) {
	if pb.closed {
		return nil, fmt.Errorf("dfg: prepared batch is closed")
	}
	e := pb.eng
	if pb.solo != nil {
		res, err := pb.solo.evalTraced(ctx, parent, n, inputs)
		if err != nil {
			return nil, err
		}
		out := &BatchResult{Results: make([]*Result, len(pb.texts)), Fingerprint: pb.bfp, Members: 1}
		for i := range out.Results {
			out.Results[i] = res
		}
		return out, nil
	}
	if parent != nil {
		parent.SetAttr("strategy", e.strat.Name()).SetAttr("n", strconv.Itoa(n)).
			SetAttr("batch", strconv.Itoa(pb.members))
	}
	t0 := e.clock()
	bs := parent.Child("bind")
	bind := strategy.Bindings{N: n, Sources: make(map[string]strategy.Source, len(inputs)), Ctx: ctx}
	for name, data := range inputs {
		bind.Sources[name] = strategy.Source{Data: data, Width: 1}
	}
	bs.Finish()
	res, err := e.runBatchPlan(pb.plan, strategy.PlanCacheName(e.strat), bind,
		e.env.Context().Pool(), parent, pb.bfp, t0, pb.members)
	if err != nil {
		return nil, err
	}
	return pb.demux(res), nil
}

// EvalMesh is Eval over cell-centered fields on a mesh, binding the
// mesh-derived sources (dims, x, y, z) stencil members need.
func (pb *PreparedBatch) EvalMesh(m *Mesh, fields map[string][]float32) (*BatchResult, error) {
	if pb.closed {
		return nil, fmt.Errorf("dfg: prepared batch is closed")
	}
	e := pb.eng
	sp := e.tracer.Start("eval-batch")
	defer sp.Finish()
	if pb.solo != nil {
		res, err := pb.solo.EvalMesh(m, fields)
		if err != nil {
			return nil, err
		}
		out := &BatchResult{Results: make([]*Result, len(pb.texts)), Fingerprint: pb.bfp, Members: 1}
		for i := range out.Results {
			out.Results[i] = res
		}
		return out, nil
	}
	if sp != nil {
		sp.SetAttr("strategy", e.strat.Name()).SetAttr("n", strconv.Itoa(m.Cells())).
			SetAttr("batch", strconv.Itoa(pb.members))
	}
	t0 := e.clock()
	bs := sp.Child("bind")
	bind, err := strategy.BindMesh(m, fields)
	bs.Finish()
	if err != nil {
		return nil, err
	}
	res, err := e.runBatchPlan(pb.plan, strategy.PlanCacheName(e.strat), bind,
		e.env.Context().Pool(), sp, pb.bfp, t0, pb.members)
	if err != nil {
		return nil, err
	}
	return pb.demux(res), nil
}

// demux fans the merged run's roots back out to one Result per input
// text. A single-root run (every member CSE'd to one node) carries its
// output in Data; multi-root runs carry theirs in Roots.
func (pb *PreparedBatch) demux(res *Result) *BatchResult {
	roots := res.Roots
	if roots == nil {
		roots = []RootField{{Data: res.Data, Width: res.Width}}
	}
	out := &BatchResult{
		Results:     make([]*Result, len(pb.texts)),
		Fingerprint: pb.bfp,
		Shared:      pb.shared,
		Members:     pb.members,
	}
	for i, ri := range pb.rootIdx {
		f := roots[ri]
		out.Results[i] = &Result{
			Data:            f.Data,
			Width:           f.Width,
			Profile:         res.Profile,
			PeakDeviceBytes: res.PeakDeviceBytes,
			Events:          res.Events,
		}
	}
	return out
}

// Close releases the prepared batch (idempotent); like Prepared.Close,
// closing the engine's last open handle drains the buffer arena.
func (pb *PreparedBatch) Close() {
	if pb.closed {
		return
	}
	pb.closed = true
	if pb.solo != nil {
		pb.solo.Close()
		return
	}
	if pb.eng.prepCount > 0 {
		pb.eng.prepCount--
	}
	if pb.eng.prepCount == 0 {
		pb.eng.env.Context().Pool().Drain()
	}
}

// EvalBatch evaluates a batch of expressions over n elements in one
// merged run — PrepareBatch followed by a single Eval. Like prepared
// evaluation (and unlike one-shot Eval) the run is arena-backed; the
// compile, merge and plan caches make repeated EvalBatch calls for a
// recurring batch shape cheap, but callers evaluating the same batch
// every timestep should hold a PrepareBatch handle instead.
func (e *Engine) EvalBatch(texts []string, n int, inputs map[string][]float32) (*BatchResult, error) {
	sp := e.tracer.Start("eval-batch")
	defer sp.Finish()
	return e.EvalBatchTracedCtx(nil, sp, texts, n, inputs)
}

// EvalBatchTracedCtx is EvalBatch recording its spans under the
// caller-owned parent span and observing a context.
func (e *Engine) EvalBatchTracedCtx(ctx context.Context, parent *obs.Span, texts []string, n int, inputs map[string][]float32) (*BatchResult, error) {
	pb, err := e.PrepareBatchTraced(parent, texts)
	if err != nil {
		return nil, err
	}
	defer pb.Close()
	return pb.EvalTracedCtx(ctx, parent, n, inputs)
}

// runBatchPlan executes a merged batch plan once, outside the recovery
// ladder (see the file comment), stamping the batch size onto the
// evaluation's perf record.
func (e *Engine) runBatchPlan(plan strategy.Plan, label string, bind strategy.Bindings,
	pool *ocl.Arena, sp *obs.Span, bfp string, t0 time.Time, size int) (*Result, error) {
	var capt *evalCapture
	var arenaBefore ocl.ArenaStats
	if e.perf != nil {
		capt = &evalCapture{entry: label}
		arenaBefore = e.ArenaStats()
		e.pendingBatch = size
	}
	res, err := e.runPlanOnce(plan, label, bind, pool, sp, bfp, t0, capt)
	if capt != nil {
		e.recordEval(capt, res, err, bind.N, bfp, sp, t0, arenaBefore)
	}
	return res, err
}
