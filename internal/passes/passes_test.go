package passes_test

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dfg/internal/dataflow"
	"dfg/internal/expr"
	"dfg/internal/passes"
	"dfg/internal/vortex"
)

// goldenName maps a paper expression to its testdata file.
var goldenName = map[string]string{
	"VelMag":  "velmag",
	"VortMag": "vortmag",
	"Q-Crit":  "qcrit",
}

// marshal renders a network exactly as the golden files were captured:
// compact JSON plus a trailing newline.
func marshal(t *testing.T, nw *dataflow.Network) []byte {
	t.Helper()
	b, err := json.Marshal(nw)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return append(b, '\n')
}

// TestPaperPipelineGoldenNetworks is the byte-identity acceptance test:
// the Paper pipeline must produce, for each paper expression, exactly
// the network the pre-pipeline front end produced (captured in testdata
// before the refactor).
func TestPaperPipelineGoldenNetworks(t *testing.T) {
	for _, e := range vortex.Expressions() {
		net, _, err := expr.CompileWithPipeline(e.Text, nil, passes.Paper, passes.RunOptions{Verify: true})
		if err != nil {
			t.Fatalf("%s: compile: %v", e.Name, err)
		}
		got := marshal(t, net)
		path := filepath.Join("testdata", goldenName[e.Name]+".golden.json")
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: Paper pipeline network differs from golden %s:\ngot:  %s\nwant: %s",
				e.Name, path, got, want)
		}
	}
}

// TestPaperPipelineMatchesLegacyCSE proves the extraction faithful on
// arbitrary programs: pooling+CSE as passes produce the same bytes as
// the historical in-place EliminateCommonSubexpressions.
func TestPaperPipelineMatchesLegacyCSE(t *testing.T) {
	programs := []string{
		vortex.VelMagExpr,
		vortex.VortMagExpr,
		vortex.QCritExpr,
		`a = if (norm(grad3d(b,dims,x,y,z)) > 5) then (c * c) else (-c * c)`,
		`s = 2*u + 2*u + 2*v
		 r = s / (s + 1)`,
		`r = min(max(u, 0), max(u, 0)) + 1 + 1`,
	}
	for _, text := range programs {
		p, err := expr.Parse(text)
		if err != nil {
			t.Fatalf("parse %q: %v", text, err)
		}
		legacy, err := expr.BuildNetwork(p)
		if err != nil {
			t.Fatalf("build %q: %v", text, err)
		}
		legacy.EliminateCommonSubexpressions()
		legacy.Seal()

		piped, _, err := expr.CompileWithPipeline(text, nil, passes.Paper, passes.RunOptions{Verify: true})
		if err != nil {
			t.Fatalf("pipeline %q: %v", text, err)
		}
		if got, want := marshal(t, piped), marshal(t, legacy); !bytes.Equal(got, want) {
			t.Errorf("%q: pipeline network differs from legacy CSE:\ngot:  %s\nwant: %s", text, got, want)
		}
	}
}

// TestO2ForwardsGradients checks the headline O2 rewrite on the paper's
// Q-criterion: every decompose-of-grad3d becomes a single-axis stencil,
// the wide gradients die, and the network shrinks.
func TestO2ForwardsGradients(t *testing.T) {
	paper, _, err := expr.CompileWithPipeline(vortex.QCritExpr, nil, passes.Paper, passes.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	o2, res, err := expr.CompileWithPipeline(vortex.QCritExpr, nil, passes.O2, passes.RunOptions{Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if o2.Len() >= paper.Len() {
		t.Errorf("O2 did not shrink Q-Crit: %d nodes vs %d at Paper level", o2.Len(), paper.Len())
	}
	if res.NodesRemoved() == 0 {
		t.Error("O2 result records no removed nodes")
	}
	for _, n := range o2.Nodes() {
		if n.Filter == "grad3d" {
			t.Errorf("node %s: full grad3d survived decompose-forwarding", n.ID)
		}
		if n.Filter == "decompose" {
			t.Errorf("node %s: decompose survived on Q-Crit (all decomposes take gradients)", n.ID)
		}
	}
	got := map[string]bool{}
	for _, rec := range res.Records {
		got[rec.Pass] = true
	}
	for _, want := range []string{"constpool", "cse", "constfold", "algebraic", "cse-commute", "decompose-forward", "dce"} {
		if !got[want] {
			t.Errorf("O2 run has no record for pass %q", want)
		}
	}
}

// TestConstFoldAndAlgebraic exercises the scalar rewrites end to end.
func TestConstFoldAndAlgebraic(t *testing.T) {
	net, _, err := expr.CompileWithPipeline(`r = (1+2)*u + 0`, nil, passes.O2, passes.RunOptions{Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	out := net.OutputNode()
	if out.Filter != "mul" {
		t.Fatalf("output filter = %q, want mul (x+0 should fold away)", out.Filter)
	}
	if net.Len() != 3 { // const 3, source u, mul
		t.Errorf("network has %d nodes, want 3: %v", net.Len(), names(net))
	}
	c := net.NodeByID(out.Inputs[0])
	if c.Filter != "const" || c.Value != 3 {
		t.Errorf("lhs = %s %q %v, want folded const 3", c.ID, c.Filter, c.Value)
	}

	net, _, err = expr.CompileWithPipeline(`r = u * 1`, nil, passes.O2, passes.RunOptions{Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if out := net.OutputNode(); out.Filter != "source" || out.ID != "u" {
		t.Errorf("u*1 output = %s %q, want the source u itself", out.ID, out.Filter)
	}

	net, _, err = expr.CompileWithPipeline(`r = 0 * exp(u)`, nil, passes.O2, passes.RunOptions{Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if out := net.OutputNode(); out.Filter != "const" || out.Value != 0 {
		t.Errorf("0*exp(u) output = %q %v, want const 0", out.Filter, out.Value)
	}
}

// TestCommuteCSE checks that only the commutative variant merges
// swapped operands, and that min/max stay excluded.
func TestCommuteCSE(t *testing.T) {
	const text = `r = u*v + v*u`
	paper, _, err := expr.CompileWithPipeline(text, nil, passes.Paper, passes.RunOptions{Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	o2, _, err := expr.CompileWithPipeline(text, nil, passes.O2, passes.RunOptions{Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if paper.Len() != 5 { // u, v, u*v, v*u, add
		t.Errorf("Paper kept %d nodes, want 5 (order-sensitive CSE must not merge u*v with v*u): %v", paper.Len(), names(paper))
	}
	if o2.Len() != 4 { // u, v, mul, add
		t.Errorf("O2 kept %d nodes, want 4 (commute-CSE merges u*v with v*u): %v", o2.Len(), names(o2))
	}

	minNet, _, err := expr.CompileWithPipeline(`r = min(u,v) + min(v,u)`, nil, passes.O2, passes.RunOptions{Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if minNet.Len() != 5 {
		t.Errorf("min kept %d nodes, want 5 (fmin is not bitwise commutative, must not merge): %v", minNet.Len(), names(minNet))
	}
}

// TestDecomposeForwardLane3 checks the padding lane becomes an exact
// constant zero.
func TestDecomposeForwardLane3(t *testing.T) {
	nw := dataflow.NewNetwork()
	for _, s := range []string{"f", "dims", "x", "y", "z"} {
		if _, err := nw.AddSource(s); err != nil {
			t.Fatal(err)
		}
	}
	g, err := nw.AddFilter("grad3d", "f", "dims", "x", "y", "z")
	if err != nil {
		t.Fatal(err)
	}
	d, err := nw.AddDecompose(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.SetOutput(d); err != nil {
		t.Fatal(err)
	}
	if _, err := passes.O2.RunWith(nw, passes.RunOptions{Verify: true}); err != nil {
		t.Fatal(err)
	}
	out := nw.OutputNode()
	if out.Filter != "const" || out.Value != 0 {
		t.Fatalf("lane-3 decompose became %q %v, want const 0", out.Filter, out.Value)
	}
	for _, n := range nw.Nodes() {
		if n.Filter == "grad3d" {
			t.Errorf("dead grad3d %s survived DCE", n.ID)
		}
	}
}

// TestPipelineRefusesSealed pins the mutability contract.
func TestPipelineRefusesSealed(t *testing.T) {
	net, err := expr.Compile(vortex.VelMagExpr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := passes.O2.Run(net); err == nil || !strings.Contains(err.Error(), "sealed") {
		t.Fatalf("running a pipeline on a sealed network: err = %v, want sealed error", err)
	}
}

// TestLevels pins the level parsing and cache tags the compile cache
// keys are built from.
func TestLevels(t *testing.T) {
	cases := []struct {
		in   string
		want passes.Level
		err  bool
	}{
		{"", passes.LevelPaper, false},
		{"paper", passes.LevelPaper, false},
		{"Paper", passes.LevelPaper, false},
		{"o2", passes.LevelO2, false},
		{"O2", passes.LevelO2, false},
		{"O3", 0, true},
	}
	for _, c := range cases {
		got, err := passes.ParseLevel(c.in)
		if c.err != (err != nil) || (!c.err && got != c.want) {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v (err=%v)", c.in, got, err, c.want, c.err)
		}
	}
	if tag := passes.LevelPaper.CacheTag(); tag != "" {
		t.Errorf("Paper cache tag = %q, want empty (Paper keys must stay byte-identical)", tag)
	}
	if tag := passes.LevelO2.CacheTag(); tag == "" {
		t.Error("O2 cache tag is empty; O2 plans would collide with Paper plans")
	}
	if passes.ForLevel(passes.LevelPaper) != passes.Paper || passes.ForLevel(passes.LevelO2) != passes.O2 {
		t.Error("ForLevel does not select the predefined pipelines")
	}
	if names := passes.Names(); len(names) != 7 {
		t.Errorf("Names() = %v, want the 7 distinct pass names", names)
	}
}

// names lists node IDs and filters for failure messages.
func names(nw *dataflow.Network) []string {
	var out []string
	for _, n := range nw.Nodes() {
		out = append(out, n.ID+":"+n.Filter)
	}
	return out
}
