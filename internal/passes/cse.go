package passes

import (
	"strconv"

	"dfg/internal/dataflow"
)

// ConstPool returns the constant-pooling pass: equal-valued scalar
// constants collapse to the first occurrence, exactly as the paper's
// parser pools them. (CSE would merge them too; pooling first keeps the
// pass observable on its own and mirrors the paper's description.)
func ConstPool() Pass { return constPool{} }

type constPool struct{}

func (constPool) Name() string { return "constpool" }

func (constPool) Run(nw *dataflow.Network, st *Stats) error {
	canon := make(map[string]string)
	remap := make(map[string]string)
	var dead []string
	for _, n := range nw.Nodes() {
		if n.Filter != "const" {
			continue
		}
		key := strconv.FormatFloat(n.Value, 'g', -1, 64)
		if id, ok := canon[key]; ok {
			remap[n.ID] = id
			dead = append(dead, n.ID)
			continue
		}
		canon[key] = n.ID
	}
	return applyMerge(nw, st, remap, dead)
}

// CSE returns the paper's "limited" common sub-expression elimination:
// structurally identical invocations (same primitive, same parameters,
// same inputs in the same order) are computed once. Order sensitivity —
// add(a, b) and add(b, a) stay distinct — is what keeps the Table II
// event counts intact, so the Paper pipeline must use exactly this.
func CSE() Pass { return cse{commute: false} }

// CSECommute returns the commutativity-normalised variant: for add,
// mul, eq and ne the two inputs are sorted in the structural key, so
// add(a, b) and add(b, a) merge. Only bitwise-commutative primitives
// participate (fmin/fmax are excluded: their NaN and signed-zero
// behaviour is argument-order dependent).
func CSECommute() Pass { return cse{commute: true} }

type cse struct{ commute bool }

func (c cse) Name() string {
	if c.commute {
		return "cse-commute"
	}
	return "cse"
}

func (c cse) Run(nw *dataflow.Network, st *Stats) error {
	canon := make(map[string]string, nw.Len())
	remap := make(map[string]string)
	var dead []string
	for _, n := range nw.Nodes() {
		// Inputs are remapped in construction order, so by the time a
		// node is keyed all of its inputs are already canonical and one
		// forward pass reaches the fixpoint.
		for i, in := range n.Inputs {
			if r, ok := remap[in]; ok {
				n.Inputs[i] = r
			}
		}
		key := CanonicalKey(n, c.commute)
		if id, ok := canon[key]; ok {
			remap[n.ID] = id
			dead = append(dead, n.ID)
			continue
		}
		canon[key] = n.ID
	}
	return applyMerge(nw, st, remap, dead)
}

// applyMerge commits a merge-style pass: redirect every reference
// through remap, drop the duplicates, and record them.
func applyMerge(nw *dataflow.Network, st *Stats, remap map[string]string, dead []string) error {
	if len(dead) == 0 {
		return nil
	}
	nw.ApplyRemap(remap)
	if err := nw.RemoveNodes(dead); err != nil {
		return err
	}
	st.Removed = append(st.Removed, dead...)
	return nil
}
