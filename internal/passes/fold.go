package passes

import (
	"dfg/internal/dataflow"
	"dfg/internal/kernels"
	"dfg/internal/ocl"
)

// ConstFold returns the constant-folding pass: every elementwise node
// whose inputs are all constants is rewritten in place into a constant.
// The fold evaluates the node's own staged kernel on a one-element
// buffer, so the folded value is bit-identical to what the device would
// have produced in float32 — including the fmin/fmax NaN conventions
// and comparison-to-1.0/0.0 encodings.
func ConstFold() Pass { return constFold{} }

type constFold struct{}

func (constFold) Name() string { return "constfold" }

func (constFold) Run(nw *dataflow.Network, st *Stats) error {
	for _, n := range nw.Nodes() {
		fi, ok := dataflow.Lookup(n.Filter)
		if !ok || fi.Class != dataflow.ClassElementwise || len(n.Inputs) == 0 {
			continue
		}
		vals := make([]float64, len(n.Inputs))
		allConst := true
		for i, in := range n.Inputs {
			inNode := nw.NodeByID(in)
			if inNode == nil || inNode.Filter != "const" {
				allConst = false
				break
			}
			vals[i] = inNode.Value
		}
		if !allConst {
			continue
		}
		v, ok := foldKernel(n.Filter, vals)
		if !ok {
			continue
		}
		// Rewriting in place (rather than merging into an existing
		// const) keeps this pass purely local; the following CSE or
		// constpool round merges equal constants, and DCE collects the
		// operand constants that just lost their last consumer.
		if err := nw.RewriteToConst(n.ID, v); err != nil {
			return err
		}
		st.Rewritten++
	}
	return nil
}

// foldKernel evaluates one elementwise primitive on scalar constants by
// running its staged kernel over single-element views. The stored value
// is the float32 result widened to float64, so a staged constant fill
// of the folded node reproduces the exact bits the eliminated kernel
// would have written.
func foldKernel(filter string, in []float64) (float64, bool) {
	k, err := kernels.ForFilter(filter)
	if err != nil || k.Fn == nil || k.NumBufs != len(in)+1 {
		return 0, false
	}
	bufs := make([]ocl.View, len(in)+1)
	for i, v := range in {
		bufs[i] = ocl.View{Data: []float32{float32(v)}, Elems: 1, Width: 1}
	}
	out := []float32{0}
	bufs[len(in)] = ocl.View{Data: out, Elems: 1, Width: 1}
	k.Fn(0, 1, bufs, nil)
	return float64(out[0]), true
}

// Algebraic returns the identity-simplification pass: x*1, 1*x, x+0,
// 0+x, x-0, x/1 forward to x, and 0*x / x*0 forward to the zero
// constant. Constants are matched on their float32 value (the precision
// every kernel computes in), so 1.0000000001 does not match.
//
// The zero rewrites assume finite data: 0*x is exactly 0 for finite x
// but NaN for infinite x. The engine's data model (float32 mesh fields)
// makes non-finite intermediates an error condition already, and the
// differential tests skip elements where the Paper-level reference is
// non-finite.
func Algebraic() Pass { return algebraic{} }

type algebraic struct{}

func (algebraic) Name() string { return "algebraic" }

func (algebraic) Run(nw *dataflow.Network, st *Stats) error {
	remap := make(map[string]string)
	var dead []string
	resolve := func(id string) string {
		for {
			r, ok := remap[id]
			if !ok {
				return id
			}
			id = r
		}
	}
	isConst := func(id string, v float32) bool {
		n := nw.NodeByID(id)
		return n != nil && n.Filter == "const" && float32(n.Value) == v
	}
	for _, n := range nw.Nodes() {
		// Forward substitution in construction order, like CSE: inputs
		// are canonical before the node itself is inspected.
		for i, in := range n.Inputs {
			n.Inputs[i] = resolve(in)
		}
		if len(n.Inputs) != 2 {
			continue
		}
		a, b := n.Inputs[0], n.Inputs[1]
		target := ""
		switch n.Filter {
		case "mul":
			switch {
			case isConst(a, 1):
				target = b
			case isConst(b, 1):
				target = a
			case isConst(a, 0):
				target = a
			case isConst(b, 0):
				target = b
			}
		case "add":
			switch {
			case isConst(a, 0):
				target = b
			case isConst(b, 0):
				target = a
			}
		case "sub":
			if isConst(b, 0) {
				target = a
			}
		case "div":
			if isConst(b, 1) {
				target = a
			}
		}
		if target == "" {
			continue
		}
		remap[n.ID] = target
		dead = append(dead, n.ID)
	}
	return applyMerge(nw, st, remap, dead)
}
