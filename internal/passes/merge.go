package passes

import (
	"fmt"
	"sort"
	"strconv"

	"dfg/internal/dataflow"
)

// This file is the batch scheduler's middle-end: MergeNetworks folds the
// sealed networks of several concurrently-requested expressions into one
// multi-root super-network and runs cross-expression CSE over it, so a
// subtree shared between members (the velocity magnitude inside two
// users' criteria) is planned and executed exactly once per batch.

// MergeMember is one expression entering a merge: its compile-cache
// fingerprint (the batch identity and demux key) and its sealed,
// already-optimised network.
type MergeMember struct {
	Fp  string
	Net *dataflow.Network
}

// Merged is a super-network produced by MergeNetworks. Fps holds the
// distinct member fingerprints in sorted order and Roots the matching
// sink node IDs — Roots[i] is where Fps[i]'s output lives after
// cross-expression CSE (two members whose outputs unified share a root).
// Shared counts the nodes the merge eliminated: duplicates that existed
// in more than one member and now execute once.
type Merged struct {
	Net    *dataflow.Network
	Fps    []string
	Roots  []string
	Shared int
}

// Root returns the super-network sink carrying the given member
// fingerprint's output.
func (m *Merged) Root(fp string) (string, bool) {
	for i, f := range m.Fps {
		if f == fp {
			return m.Roots[i], true
		}
	}
	return "", false
}

// rootAlias names the provenance alias for the i-th sorted member. The
// NUL prefix keeps it out of the identifier space, so it can never
// collide with a source name or user alias from any expression.
func rootAlias(i int) string { return "\x00batch-root:" + strconv.Itoa(i) }

// MergeNetworks clones every member's live nodes into one fresh network
// (sources unify by name — batch members bind the same mesh, so equal
// names mean equal arrays), declares one root per member, and runs the
// cross-expression elimination passes: constant pooling plus the
// order-sensitive CSE, with the commutativity-normalised CSE round added
// at LevelO2. Both are bitwise-safe, so the super-network's per-root
// outputs are zero-ULP identical to the members evaluated individually.
//
// Members are deduplicated and ordered by fingerprint before cloning, so
// one batch membership set always produces one deterministic
// super-network — the property the batch plan cache keys on.
func MergeNetworks(members []MergeMember, lvl Level, opt RunOptions) (*Merged, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("passes: merge needs at least one member")
	}
	distinct := make(map[string]*dataflow.Network, len(members))
	for _, m := range members {
		if m.Net == nil {
			return nil, fmt.Errorf("passes: merge member %q has no network", m.Fp)
		}
		if m.Net.Output() == "" {
			return nil, fmt.Errorf("passes: merge member %q has no output", m.Fp)
		}
		distinct[m.Fp] = m.Net
	}
	fps := make([]string, 0, len(distinct))
	for fp := range distinct {
		fps = append(fps, fp)
	}
	sort.Strings(fps)

	nw := dataflow.NewNetwork()
	roots := make([]string, len(fps))
	for i, fp := range fps {
		root, err := cloneInto(nw, distinct[fp])
		if err != nil {
			return nil, fmt.Errorf("passes: merge member %q: %w", fp, err)
		}
		roots[i] = root
		if err := nw.Alias(rootAlias(i), root); err != nil {
			return nil, fmt.Errorf("passes: merge member %q: %w", fp, err)
		}
	}
	if err := nw.SetRoots(roots...); err != nil {
		return nil, err
	}

	pipe := mergePipeline(lvl)
	res, err := pipe.RunWith(nw, opt)
	if err != nil {
		return nil, err
	}

	// The passes remapped the provenance aliases along with everything
	// else; read each member's final root back out before sealing.
	for i := range fps {
		n := nw.Node(rootAlias(i))
		if n == nil {
			return nil, fmt.Errorf("passes: merge lost root for member %q", fps[i])
		}
		roots[i] = n.ID
	}
	nw.Seal()
	return &Merged{Net: nw, Fps: fps, Roots: roots, Shared: res.NodesRemoved()}, nil
}

// mergePaper and mergeO2 are the cross-expression pipelines, built from
// the exact same ElimPasses list the solo pipelines canonicalise with —
// a node that unifies solo unifies identically in a batch. Members
// arrive individually optimised, so any node these eliminate was
// duplicated across members — exactly what Merged.Shared reports.
var (
	mergePaper = New("merge", ElimPasses(LevelPaper)...)
	mergeO2    = New("merge-O2", ElimPasses(LevelO2)...)
)

func mergePipeline(lvl Level) *Pipeline {
	if lvl == LevelO2 {
		return mergeO2
	}
	return mergePaper
}

// cloneInto copies src's live nodes (in topological order) into dst
// through the builder API, unifying sources by name, and returns the ID
// dst assigned to src's output node.
func cloneInto(dst, src *dataflow.Network) (string, error) {
	order, err := src.TopoOrder()
	if err != nil {
		return "", err
	}
	remap := make(map[string]string, len(order))
	for _, n := range order {
		var id string
		switch n.Filter {
		case "source":
			if dst.NodeByID(n.ID) != nil {
				id = n.ID // shared with an earlier member
			} else if id, err = dst.AddSource(n.ID); err != nil {
				return "", err
			}
		case "const":
			id = dst.AddConst(n.Value)
		case "decompose":
			if id, err = dst.AddDecompose(remap[n.Inputs[0]], n.Comp); err != nil {
				return "", err
			}
		default:
			ins := make([]string, len(n.Inputs))
			for i, in := range n.Inputs {
				ins[i] = remap[in]
			}
			if id, err = dst.AddFilter(n.Filter, ins...); err != nil {
				return "", err
			}
		}
		remap[n.ID] = id
	}
	return remap[src.Output()], nil
}
