package passes

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"dfg/internal/dataflow"
)

// This file is the schedule stage of the pass pipeline: after the graph
// rewrites have fixed *what* the network computes, a ScheduleSpec fixes
// *how* the generated kernel iterates — work-group tiling with
// local-memory staging for the grad3d stencils, register blocking,
// float4 vectorized loads on contiguous axes, and temporal blocking that
// fuses across the stencil chains decompose-forwarding exposes.
// ComputeSchedule lowers a spec against a sealed network into a Schedule
// annotation set that internal/codegen consumes; the annotations never
// change the computed values (every scheduled kernel is bitwise
// identical to the flat one), only the emitted source shape and the cost
// model's traffic accounting.

// ScheduleSpec is the user-facing schedule choice for a fused kernel.
// The zero value is the flat schedule — the paper's single elementwise
// body — so every existing call site keeps its behaviour.
type ScheduleSpec struct {
	// TileX, TileY give the 2.5D work-group tile shape. Both zero means
	// untiled; otherwise both must be set and the stencil field inputs
	// are staged through __local memory with a one-cell halo.
	TileX, TileY int
	// Register is the register-blocking factor: each work-item carries
	// Register elements through the body. 0 and 1 both mean no blocking.
	Register int
	// Vector is the vector width for contiguous loads/stores (float4 at
	// Vector=4). 0 and 1 both mean scalar access.
	Vector int
	// Temporal requests temporal blocking: when the pass split forced by
	// a stencil-on-computed-field allows it, the producer pass is fused
	// into the consumer pass per tile (recomputing the halo) instead of
	// round-tripping the intermediate through global memory.
	Temporal bool
}

// DefaultSchedule is the tuned all-transformations schedule the "tiled"
// shorthand selects: 16x16 tiles, 2-way register blocking, float4 loads,
// temporal blocking where the network's pass structure allows it.
func DefaultSchedule() ScheduleSpec {
	return ScheduleSpec{TileX: 16, TileY: 16, Register: 2, Vector: 4, Temporal: true}
}

// IsFlat reports whether the spec requests no transformation at all.
func (s ScheduleSpec) IsFlat() bool {
	return s.TileX == 0 && s.TileY == 0 && s.Register <= 1 && s.Vector <= 1 && !s.Temporal
}

// Tiled reports whether the spec requests work-group tiling.
func (s ScheduleSpec) Tiled() bool { return s.TileX > 0 }

// Validate checks the spec's parameter ranges.
func (s ScheduleSpec) Validate() error {
	if (s.TileX == 0) != (s.TileY == 0) {
		return fmt.Errorf("passes: schedule tile shape needs both extents (got %dx%d)", s.TileX, s.TileY)
	}
	if s.TileX != 0 && (s.TileX < 4 || s.TileX > 64 || s.TileY < 4 || s.TileY > 64) {
		return fmt.Errorf("passes: schedule tile %dx%d out of range (want 4..64 per axis)", s.TileX, s.TileY)
	}
	if s.Register < 0 || s.Register > 8 {
		return fmt.Errorf("passes: schedule register blocking factor %d out of range (want 0..8)", s.Register)
	}
	switch s.Vector {
	case 0, 1, 2, 4, 8, 16:
	default:
		return fmt.Errorf("passes: schedule vector width %d invalid (want 2, 4, 8 or 16)", s.Vector)
	}
	if s.Temporal && !s.Tiled() {
		return fmt.Errorf("passes: temporal blocking requires a tile shape")
	}
	return nil
}

// String renders the spec canonically: comma-joined transformation
// terms ("tile=16x16,reg=2,vec=4,temporal"), or "flat" for the zero
// spec. The rendering round-trips through ParseScheduleSpec.
func (s ScheduleSpec) String() string {
	if s.IsFlat() {
		return "flat"
	}
	var terms []string
	if s.Tiled() {
		terms = append(terms, fmt.Sprintf("tile=%dx%d", s.TileX, s.TileY))
	}
	if s.Register > 1 {
		terms = append(terms, "reg="+strconv.Itoa(s.Register))
	}
	if s.Vector > 1 {
		terms = append(terms, "vec="+strconv.Itoa(s.Vector))
	}
	if s.Temporal {
		terms = append(terms, "temporal")
	}
	return strings.Join(terms, ",")
}

// CacheTag returns the spec's cache-key suffix. Plan-cache keys are
// NUL-joined, so the canonical comma form is safe to embed directly.
func (s ScheduleSpec) CacheTag() string { return s.String() }

// ParseScheduleSpec parses a user-facing schedule string: "" and "flat"
// give the zero spec, "tiled" gives DefaultSchedule, and otherwise a
// comma-separated term list (tile=NxM, reg=N, vec=N, temporal,
// notemporal) is folded over the zero spec. String() output parses back
// to the same spec.
func ParseScheduleSpec(text string) (ScheduleSpec, error) {
	switch text {
	case "", "flat":
		return ScheduleSpec{}, nil
	case "tiled":
		return DefaultSchedule(), nil
	}
	var s ScheduleSpec
	for _, term := range strings.Split(text, ",") {
		term = strings.TrimSpace(term)
		switch {
		case term == "tiled":
			// The default-schedule shorthand also works as a term, so
			// "tiled,notemporal" selects the default minus one knob.
			s = DefaultSchedule()
		case term == "temporal":
			s.Temporal = true
		case term == "notemporal":
			s.Temporal = false
		case strings.HasPrefix(term, "tile="):
			tx, ty, ok := strings.Cut(strings.TrimPrefix(term, "tile="), "x")
			if !ok {
				return s, fmt.Errorf("passes: schedule term %q: want tile=NxM", term)
			}
			var err error
			if s.TileX, err = strconv.Atoi(tx); err != nil {
				return s, fmt.Errorf("passes: schedule term %q: %v", term, err)
			}
			if s.TileY, err = strconv.Atoi(ty); err != nil {
				return s, fmt.Errorf("passes: schedule term %q: %v", term, err)
			}
		case strings.HasPrefix(term, "reg="):
			v, err := strconv.Atoi(strings.TrimPrefix(term, "reg="))
			if err != nil {
				return s, fmt.Errorf("passes: schedule term %q: %v", term, err)
			}
			s.Register = v
		case strings.HasPrefix(term, "vec="):
			v, err := strconv.Atoi(strings.TrimPrefix(term, "vec="))
			if err != nil {
				return s, fmt.Errorf("passes: schedule term %q: %v", term, err)
			}
			s.Vector = v
		default:
			return s, fmt.Errorf("passes: unknown schedule term %q (want tile=NxM, reg=N, vec=N, temporal, notemporal, or the shorthands \"flat\"/\"tiled\")", term)
		}
	}
	if err := s.Validate(); err != nil {
		return s, err
	}
	return s, nil
}

// StagedField is one kernel input array staged through __local memory:
// every stencil reading Field fetches its neighbours from the Local tile
// (with halo) instead of global memory.
type StagedField struct {
	// Field is the staged array's argument name: a source name or the
	// scratch label of a materialized intermediate.
	Field string
	// Local is the __local tile array's name in the emitted source.
	Local string
	// Stencils counts the stencil nodes reading this field — each one's
	// neighbour traffic moves from global to local memory.
	Stencils int
}

// Schedule is the annotation set ComputeSchedule lowers a spec into for
// one specific network: which arrays are staged, which loads vectorize,
// and whether the network's pass split is temporally fused. codegen
// consumes it verbatim; Verify re-checks it against the network.
type Schedule struct {
	// Spec is the validated spec this schedule was lowered from.
	Spec ScheduleSpec
	// Passes is the flat generator's pass count for this network (the
	// count before any temporal fusion).
	Passes int
	// Staged lists the arrays tiling stages through local memory, in
	// kernel argument order.
	Staged []StagedField
	// VectorLoads lists the width-1 source arrays read with vloadN in a
	// fully elementwise network (empty when the network has stencils).
	VectorLoads []string
	// VectorStage marks vectorized local-memory staging copies: the
	// stencil tile stage-in runs at the spec's vector width even though
	// the stencil body itself stays scalar.
	VectorStage bool
	// Temporal marks the pass split as temporally fused: the producer
	// pass recomputes per tile (halo included) into local scratch and
	// the global round-trip of the intermediates disappears.
	Temporal bool
	// FusedScratch lists the materialized node IDs whose global scratch
	// round-trip temporal fusion eliminates, in topological order.
	FusedScratch []string
}

// scheduleScratchName mirrors codegen's scratch label for a
// materialized node; the two packages agree on this spelling so the
// Schedule's Staged fields name real kernel arguments.
func scheduleScratchName(id string) string { return "scratch_" + id }

// localName names the __local tile array staged for a kernel argument.
func localName(field string) string { return "l_" + field }

// ComputeSchedule lowers a spec against a sealed, validated network. It
// replays the fusion generator's pass assignment (stencil-on-computed
// forces a pass split and materialization; cross-pass consumption
// materializes) from the dataflow graph alone, then decides per
// transformation whether the network shape supports it:
//
//   - tiling stages every distinct stencil field input;
//   - vectorized loads apply to fully elementwise width-1 networks, and
//     degrade to vectorized staging copies on tiled stencil networks;
//   - temporal blocking applies to exactly-two-pass tiled networks, and
//     is silently dropped otherwise (the spec's other terms survive).
//
// A flat spec returns (nil, nil): the caller falls through to the flat
// generator.
func ComputeSchedule(nw *dataflow.Network, spec ScheduleSpec) (*Schedule, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.IsFlat() {
		return nil, nil
	}
	if err := nw.Validate(); err != nil {
		return nil, err
	}
	order, err := nw.TopoOrder()
	if err != nil {
		return nil, err
	}
	byID := make(map[string]*dataflow.Node, len(order))
	for _, n := range order {
		byID[n.ID] = n
	}

	// Replay the generator's pass assignment.
	pass := make(map[string]int, len(order))
	materialize := make(map[string]bool)
	for _, n := range order {
		p := 0
		for _, in := range n.Inputs {
			if ip := pass[in]; ip > p {
				p = ip
			}
		}
		if n.Info().Class == dataflow.ClassStencil {
			field := byID[n.Inputs[0]]
			if field.Filter != "source" {
				materialize[field.ID] = true
				if fp := pass[field.ID]; fp+1 > p {
					p = fp + 1
				}
			}
		}
		pass[n.ID] = p
	}
	for _, n := range order {
		for _, in := range n.Inputs {
			src := byID[in]
			if src.Filter == "source" || src.Filter == "const" {
				continue
			}
			if pass[in] < pass[n.ID] {
				materialize[in] = true
			}
		}
	}
	numPasses := 0
	roots := nw.Roots()
	for _, r := range roots {
		if p := pass[r] + 1; p > numPasses {
			numPasses = p
		}
	}
	for _, r := range roots {
		n := byID[r]
		if n.Filter == "source" || n.Filter == "const" {
			continue
		}
		if pass[r] < numPasses-1 {
			materialize[r] = true
		}
	}

	sched := &Schedule{Spec: spec, Passes: numPasses}

	// Tiling: stage each distinct stencil field input through local
	// memory, in first-stencil order.
	if spec.Tiled() {
		idx := make(map[string]int)
		for _, n := range order {
			if n.Info().Class != dataflow.ClassStencil {
				continue
			}
			field := byID[n.Inputs[0]]
			name := field.ID
			if field.Filter != "source" {
				name = scheduleScratchName(field.ID)
			}
			if i, ok := idx[name]; ok {
				sched.Staged[i].Stencils++
				continue
			}
			idx[name] = len(sched.Staged)
			sched.Staged = append(sched.Staged, StagedField{Field: name, Local: localName(name), Stencils: 1})
		}
	}

	// Vectorization: whole-kernel vector loads need every node to be a
	// width-1 elementwise primitive from the vectorizable set; stencil
	// networks instead vectorize the staging copies when tiled.
	if spec.Vector > 1 {
		if fields := vectorizableSources(order); fields != nil {
			sched.VectorLoads = fields
		} else if spec.Tiled() && len(sched.Staged) > 0 {
			sched.VectorStage = true
		}
	}

	// Temporal blocking fuses exactly one pass split: the producer pass
	// re-runs per tile over the halo and the intermediates live in local
	// scratch. Deeper pipelines (3+ passes) would compound the halo
	// recompute quadratically, so the transformation declines them.
	if spec.Temporal && spec.Tiled() && numPasses == 2 {
		sched.Temporal = true
		for _, n := range order {
			if materialize[n.ID] {
				sched.FusedScratch = append(sched.FusedScratch, n.ID)
			}
		}
	}

	return sched, nil
}

// vectorizable lists the elementwise primitives whose vloadN form is
// emitted lane-exact: plain arithmetic and the libm calls OpenCL defines
// componentwise on vector types.
var vectorizable = map[string]bool{
	"add": true, "sub": true, "mul": true, "div": true,
	"min": true, "max": true, "sqrt": true, "neg": true, "abs": true,
	"exp": true, "log": true, "sin": true, "cos": true, "pow": true,
}

// vectorizableSources returns the live width-1 source names (in topo
// first-use order) when every computing node in the network is a
// vectorizable width-1 elementwise primitive, and nil otherwise.
func vectorizableSources(order []*dataflow.Node) []string {
	var fields []string
	for _, n := range order {
		switch n.Filter {
		case "source":
			if n.Width != 1 {
				return nil
			}
			fields = append(fields, n.ID)
		case "const":
		default:
			if !vectorizable[n.Filter] || n.Width != 1 {
				return nil
			}
		}
	}
	if len(fields) == 0 {
		return nil
	}
	return fields
}

// Verify checks a Schedule against the network it was computed for; the
// pipeline's debug/verify mode runs it after every lowering, and codegen
// runs it before consuming the annotations.
func (s *Schedule) Verify(nw *dataflow.Network) error {
	if err := s.Spec.Validate(); err != nil {
		return err
	}
	if s.Spec.IsFlat() {
		return fmt.Errorf("passes: schedule verify: flat spec carries no annotations")
	}
	if s.Passes < 1 {
		return fmt.Errorf("passes: schedule verify: pass count %d", s.Passes)
	}

	// Collect the stencil field argument names the network really has.
	order, err := nw.TopoOrder()
	if err != nil {
		return err
	}
	byID := make(map[string]*dataflow.Node, len(order))
	for _, n := range order {
		byID[n.ID] = n
	}
	stencilFields := make(map[string]bool)
	sources := make(map[string]bool)
	for _, n := range order {
		if n.Filter == "source" {
			sources[n.ID] = true
		}
		if n.Info().Class == dataflow.ClassStencil {
			field := byID[n.Inputs[0]]
			name := field.ID
			if field.Filter != "source" {
				name = scheduleScratchName(field.ID)
			}
			stencilFields[name] = true
		}
	}

	if len(s.Staged) > 0 && !s.Spec.Tiled() {
		return fmt.Errorf("passes: schedule verify: staged fields without a tile shape")
	}
	for _, st := range s.Staged {
		if !stencilFields[st.Field] {
			return fmt.Errorf("passes: schedule verify: staged array %q is not a stencil field input", st.Field)
		}
		if st.Local != localName(st.Field) {
			return fmt.Errorf("passes: schedule verify: staged array %q local name %q (want %q)", st.Field, st.Local, localName(st.Field))
		}
		if st.Stencils < 1 {
			return fmt.Errorf("passes: schedule verify: staged array %q serves no stencils", st.Field)
		}
	}
	if len(s.VectorLoads) > 0 {
		if s.Spec.Vector <= 1 {
			return fmt.Errorf("passes: schedule verify: vector loads without a vector width")
		}
		for _, f := range s.VectorLoads {
			if !sources[f] {
				return fmt.Errorf("passes: schedule verify: vector load of %q, which is not a source", f)
			}
		}
	}
	if s.VectorStage && (s.Spec.Vector <= 1 || len(s.Staged) == 0) {
		return fmt.Errorf("passes: schedule verify: vectorized staging without vector width and staged fields")
	}
	if s.Temporal {
		if s.Passes != 2 {
			return fmt.Errorf("passes: schedule verify: temporal fusion over %d passes (want exactly 2)", s.Passes)
		}
		if !s.Spec.Tiled() {
			return fmt.Errorf("passes: schedule verify: temporal fusion without a tile shape")
		}
		if len(s.FusedScratch) == 0 {
			return fmt.Errorf("passes: schedule verify: temporal fusion with no fused intermediates")
		}
		for _, id := range s.FusedScratch {
			n := byID[id]
			if n == nil {
				return fmt.Errorf("passes: schedule verify: fused intermediate %q is not in the network", id)
			}
			if n.Filter == "source" || n.Filter == "const" {
				return fmt.Errorf("passes: schedule verify: fused intermediate %q is a %s", id, n.Filter)
			}
		}
	}
	return nil
}

// Describe renders the schedule for humans (dfg-fuse -dump-passes).
func (s *Schedule) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "schedule %s (%d flat pass(es))\n", s.Spec, s.Passes)
	for _, st := range s.Staged {
		fmt.Fprintf(&b, "  stage %s -> __local %s (%d stencil(s), halo 1)\n", st.Field, st.Local, st.Stencils)
	}
	if len(s.VectorLoads) > 0 {
		fmt.Fprintf(&b, "  vload%d: %s\n", s.Spec.Vector, strings.Join(s.VectorLoads, ", "))
	}
	if s.VectorStage {
		fmt.Fprintf(&b, "  vectorized staging copies (float%d)\n", s.Spec.Vector)
	}
	if s.Temporal {
		fused := append([]string(nil), s.FusedScratch...)
		sort.Strings(fused)
		fmt.Fprintf(&b, "  temporal: pass 0 fused into pass 1 per tile; local scratch for %s\n", strings.Join(fused, ", "))
	}
	if s.Spec.Register > 1 {
		fmt.Fprintf(&b, "  register blocking x%d\n", s.Spec.Register)
	}
	return b.String()
}
