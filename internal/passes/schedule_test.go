package passes

import (
	"strings"
	"testing"

	"dfg/internal/dataflow"
)

func TestScheduleSpecParseRoundTrip(t *testing.T) {
	cases := []struct {
		in   string
		want string // canonical String() form
	}{
		{"", "flat"},
		{"flat", "flat"},
		{"tiled", "tile=16x16,reg=2,vec=4,temporal"},
		{"tile=8x8", "tile=8x8"},
		{"tile=16x16,reg=2,vec=4", "tile=16x16,reg=2,vec=4"},
		{"tile=16x16,temporal", "tile=16x16,temporal"},
		{"vec=4", "vec=4"},
		{"reg=4", "reg=4"},
		{"tiled,notemporal", "tile=16x16,reg=2,vec=4"},
		{"vec=4,reg=2", "reg=2,vec=4"}, // canonical term order
	}
	for _, c := range cases {
		spec, err := ParseScheduleSpec(c.in)
		if err != nil {
			t.Fatalf("parse %q: %v", c.in, err)
		}
		if got := spec.String(); got != c.want {
			t.Errorf("parse %q -> %q want %q", c.in, got, c.want)
		}
		// Canonical form parses back to the identical spec.
		back, err := ParseScheduleSpec(spec.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", spec.String(), err)
		}
		if back != spec {
			t.Errorf("round trip %q -> %+v -> %+v", c.in, spec, back)
		}
		if spec.CacheTag() != spec.String() {
			t.Errorf("CacheTag must be the canonical string for %q", c.in)
		}
	}
}

func TestScheduleSpecParseRejects(t *testing.T) {
	for _, bad := range []string{
		"tile=16",       // missing second extent
		"tile=2x2",      // below minimum
		"tile=128x128",  // above maximum
		"vec=3",         // not a vector width
		"reg=99",        // out of range
		"temporal",      // temporal without tiling
		"vec=4,bogus=1", // unknown term
		"tile=axb",      // non-numeric
	} {
		if _, err := ParseScheduleSpec(bad); err == nil {
			t.Errorf("ParseScheduleSpec(%q) must fail", bad)
		}
	}
}

func TestScheduleSpecFlatness(t *testing.T) {
	if !(ScheduleSpec{}).IsFlat() {
		t.Fatal("zero spec must be flat")
	}
	if (ScheduleSpec{Register: 1, Vector: 1}).IsFlat() == false {
		t.Fatal("reg=1,vec=1 are no-ops and must count as flat")
	}
	if DefaultSchedule().IsFlat() {
		t.Fatal("default schedule is not flat")
	}
}

// stencilNet builds out = norm(grad3d(f)) — a single-pass stencil
// network with f a source.
func stencilNet(t *testing.T) *dataflow.Network {
	t.Helper()
	nw := dataflow.NewNetwork()
	for _, s := range []string{"f", "dims", "x", "y", "z"} {
		nw.AddSource(s)
	}
	g, err := nw.AddFilter("grad3d", "f", "dims", "x", "y", "z")
	if err != nil {
		t.Fatal(err)
	}
	n, err := nw.AddFilter("norm", g)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.SetOutput(n); err != nil {
		t.Fatal(err)
	}
	return nw
}

// twoPassNet builds out = norm(grad3d(f*f)) — the stencil consumes a
// computed value, forcing materialization and a pass split.
func twoPassNet(t *testing.T) *dataflow.Network {
	t.Helper()
	nw := dataflow.NewNetwork()
	for _, s := range []string{"f", "dims", "x", "y", "z"} {
		nw.AddSource(s)
	}
	sq, err := nw.AddFilter("mul", "f", "f")
	if err != nil {
		t.Fatal(err)
	}
	g, err := nw.AddFilter("grad3d", sq, "dims", "x", "y", "z")
	if err != nil {
		t.Fatal(err)
	}
	n, err := nw.AddFilter("norm", g)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.SetOutput(n); err != nil {
		t.Fatal(err)
	}
	return nw
}

// elementwiseNet builds out = sqrt(u*u + v*v) — no stencils at all.
func elementwiseNet(t *testing.T) *dataflow.Network {
	t.Helper()
	nw := dataflow.NewNetwork()
	nw.AddSource("u")
	nw.AddSource("v")
	uu, _ := nw.AddFilter("mul", "u", "u")
	vv, _ := nw.AddFilter("mul", "v", "v")
	s, _ := nw.AddFilter("add", uu, vv)
	r, _ := nw.AddFilter("sqrt", s)
	if err := nw.SetOutput(r); err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestComputeScheduleFlatIsNil(t *testing.T) {
	sched, err := ComputeSchedule(stencilNet(t), ScheduleSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if sched != nil {
		t.Fatal("flat spec must lower to a nil schedule")
	}
}

func TestComputeScheduleStagesStencilFields(t *testing.T) {
	nw := stencilNet(t)
	sched, err := ComputeSchedule(nw, ScheduleSpec{TileX: 16, TileY: 16})
	if err != nil {
		t.Fatal(err)
	}
	if sched.Passes != 1 {
		t.Fatalf("single-pass net, got %d passes", sched.Passes)
	}
	if len(sched.Staged) != 1 || sched.Staged[0].Field != "f" {
		t.Fatalf("grad3d field f must be staged, got %+v", sched.Staged)
	}
	if sched.Staged[0].Local != "l_f" || sched.Staged[0].Stencils != 1 {
		t.Fatalf("staged entry = %+v", sched.Staged[0])
	}
	if sched.Temporal || len(sched.FusedScratch) != 0 {
		t.Fatal("single-pass net cannot be temporally blocked")
	}
	if err := sched.Verify(nw); err != nil {
		t.Fatal(err)
	}
}

func TestComputeScheduleVectorizesElementwise(t *testing.T) {
	nw := elementwiseNet(t)
	sched, err := ComputeSchedule(nw, ScheduleSpec{Vector: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.VectorLoads) != 2 {
		t.Fatalf("want vload of u and v, got %v", sched.VectorLoads)
	}
	if sched.VectorStage {
		t.Fatal("whole-net vectorization must not also request staged copies")
	}
	if err := sched.Verify(nw); err != nil {
		t.Fatal(err)
	}
}

func TestComputeScheduleStencilDegradesToVectorStage(t *testing.T) {
	// A stencil network cannot vectorize its whole body (grad3d is not
	// elementwise): with a tile the vector width degrades to the staging
	// copies, without one it is dropped.
	nw := stencilNet(t)
	tiled, err := ComputeSchedule(nw, ScheduleSpec{TileX: 16, TileY: 16, Vector: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(tiled.VectorLoads) != 0 || !tiled.VectorStage {
		t.Fatalf("tiled stencil net must degrade vec to staging: %+v", tiled)
	}
	bare, err := ComputeSchedule(nw, ScheduleSpec{Vector: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(bare.VectorLoads) != 0 || bare.VectorStage {
		t.Fatalf("untiled stencil net has nothing to vectorize: %+v", bare)
	}
}

func TestComputeScheduleTemporal(t *testing.T) {
	nw := twoPassNet(t)
	sched, err := ComputeSchedule(nw, DefaultSchedule())
	if err != nil {
		t.Fatal(err)
	}
	if sched.Passes != 2 {
		t.Fatalf("stencil-on-computed forces 2 passes, got %d", sched.Passes)
	}
	if !sched.Temporal || len(sched.FusedScratch) != 1 {
		t.Fatalf("temporal blocking must fuse the materialized intermediate: %+v", sched)
	}
	if err := sched.Verify(nw); err != nil {
		t.Fatal(err)
	}
	// Temporal on a single-pass net silently degrades (nothing to fuse).
	one, err := ComputeSchedule(stencilNet(t), DefaultSchedule())
	if err != nil {
		t.Fatal(err)
	}
	if one.Temporal {
		t.Fatal("single-pass net must not claim temporal blocking")
	}
}

func TestScheduleVerifyCatchesMismatch(t *testing.T) {
	nw := stencilNet(t)
	sched, err := ComputeSchedule(nw, ScheduleSpec{TileX: 16, TileY: 16})
	if err != nil {
		t.Fatal(err)
	}
	// A schedule computed for one network must not verify against a
	// different one.
	if err := sched.Verify(elementwiseNet(t)); err == nil {
		t.Fatal("Verify must reject a schedule for a different network")
	}
	// Corrupt the annotations and expect rejection.
	bad := *sched
	bad.Staged = append([]StagedField(nil), sched.Staged...)
	bad.Staged[0].Local = "wrong"
	if err := bad.Verify(nw); err == nil {
		t.Fatal("Verify must reject a bad local name")
	}
}

func TestComputeScheduleRejectsInvalidSpec(t *testing.T) {
	if _, err := ComputeSchedule(stencilNet(t), ScheduleSpec{TileX: 16}); err == nil {
		t.Fatal("lopsided tile must be rejected")
	}
}

func TestScheduleDescribe(t *testing.T) {
	sched, err := ComputeSchedule(twoPassNet(t), DefaultSchedule())
	if err != nil {
		t.Fatal(err)
	}
	d := sched.Describe()
	for _, frag := range []string{"schedule tile=16x16,reg=2,vec=4,temporal", "stage ", "temporal:"} {
		if !strings.Contains(d, frag) {
			t.Errorf("Describe missing %q:\n%s", frag, d)
		}
	}
}
