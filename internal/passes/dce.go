package passes

import "dfg/internal/dataflow"

// DCE returns the dead-node elimination pass: every node that cannot
// reach the network output is removed. Rewrite passes only redirect
// references, so they strand their leftovers (a forwarded gradient, a
// folded constant's operands) for this pass to collect. Aliases bound
// to a dead node are dropped with it.
//
// The Paper pipeline deliberately omits DCE: the paper's parser never
// creates unreachable nodes, and keeping the pipeline to exactly its
// two optimisations is what the byte-identity guarantee rests on.
func DCE() Pass { return dce{} }

type dce struct{}

func (dce) Name() string { return "dce" }

func (dce) Run(nw *dataflow.Network, st *Stats) error {
	live := make(map[string]bool, nw.Len())
	var visit func(id string)
	visit = func(id string) {
		if live[id] {
			return
		}
		live[id] = true
		n := nw.NodeByID(id)
		if n == nil {
			return
		}
		for _, in := range n.Inputs {
			visit(in)
		}
	}
	for _, r := range nw.Roots() {
		visit(r)
	}
	var dead []string
	for _, n := range nw.Nodes() {
		if !live[n.ID] {
			dead = append(dead, n.ID)
		}
	}
	if len(dead) == 0 {
		return nil
	}
	if err := nw.RemoveNodes(dead); err != nil {
		return err
	}
	st.Removed = append(st.Removed, dead...)
	return nil
}
