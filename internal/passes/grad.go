package passes

import "dfg/internal/dataflow"

// ForwardDecompose returns the gradient-forwarding pass: every
// decompose(grad3d(...), axis) is rewritten in place into the
// single-axis stencil grad3dx/y/z over the gradient's own inputs, and
// the unused fourth lane (grad3d pads its float4 with exactly 0.0f)
// becomes a constant zero. The wide grad3d node itself is left behind
// for DCE, which removes it when no consumer still needs the full
// vector.
//
// The per-axis kernels run the identical difference arithmetic as the
// corresponding lane of grad3d (internal/kernels shares the helper), so
// the rewrite is bit-exact — and it is what lets the fusion strategy
// keep a lone gradient component in registers instead of materialising
// a float4 buffer.
func ForwardDecompose() Pass { return forwardDecompose{} }

type forwardDecompose struct{}

func (forwardDecompose) Name() string { return "decompose-forward" }

// axisFilter maps a gradient component to its single-axis stencil.
var axisFilter = [3]string{"grad3dx", "grad3dy", "grad3dz"}

func (forwardDecompose) Run(nw *dataflow.Network, st *Stats) error {
	for _, n := range nw.Nodes() {
		if n.Filter != "decompose" {
			continue
		}
		in := nw.NodeByID(n.Inputs[0])
		if in == nil || in.Filter != "grad3d" {
			continue
		}
		var err error
		if n.Comp >= 0 && n.Comp < 3 {
			err = nw.RewriteToFilter(n.ID, axisFilter[n.Comp], in.Inputs, 0)
		} else {
			// Lane 3 of the float4 gradient is the 0.0f pad.
			err = nw.RewriteToConst(n.ID, 0)
		}
		if err != nil {
			return err
		}
		st.Rewritten++
	}
	return nil
}
