package passes

import (
	"fmt"

	"dfg/internal/dataflow"
)

// VerifyInvariants checks everything the later layers assume about a
// network between (and after) passes:
//
//   - the output is set and resolves to a live node;
//   - every input reference resolves, and points strictly backwards in
//     construction order (construction order is a topological order —
//     strategies and codegen schedule straight off it);
//   - every alias resolves to a node;
//   - filters, arities, widths and acyclicity hold (dataflow.Validate,
//     which also proves the output reachable via TopoOrder);
//   - reference counts conserve: the consumer counts strategies use for
//     buffer release sum to exactly edges + 1 (the output's sink ref).
//
// It runs after every pass when RunOptions.Verify is set or the
// DFG_PASS_VERIFY environment variable is non-empty, turning a subtly
// wrong rewrite into an immediate, attributed failure instead of a
// miscounted Table II three layers later.
func VerifyInvariants(nw *dataflow.Network) error {
	out := nw.Output()
	if out == "" {
		return fmt.Errorf("network has no output")
	}
	if nw.NodeByID(out) == nil {
		return fmt.Errorf("output %q is not a node", out)
	}
	pos := make(map[string]int, nw.Len())
	for i, n := range nw.Nodes() {
		pos[n.ID] = i
	}
	edges := 0
	for i, n := range nw.Nodes() {
		for _, in := range n.Inputs {
			j, ok := pos[in]
			if !ok {
				return fmt.Errorf("node %q reads missing node %q", n.ID, in)
			}
			if j >= i {
				return fmt.Errorf("node %q (index %d) reads %q (index %d): construction order is not topological", n.ID, i, in, j)
			}
			edges++
		}
	}
	for _, a := range nw.Aliases() {
		if nw.NodeByID(a[1]) == nil {
			return fmt.Errorf("alias %q points at missing node %q", a[0], a[1])
		}
	}
	roots := nw.Roots()
	for _, r := range roots {
		if nw.NodeByID(r) == nil {
			return fmt.Errorf("root %q is not a node", r)
		}
	}
	if err := nw.Validate(); err != nil {
		return err
	}
	total := 0
	for _, c := range nw.Consumers() {
		total += c
	}
	if total != edges+len(roots) {
		return fmt.Errorf("reference counts not conserved: %d consumer refs for %d edges (+%d roots)", total, edges, len(roots))
	}
	return nil
}
