package passes_test

import (
	"bytes"
	"testing"

	"dfg/internal/dataflow"
	"dfg/internal/expr"
	"dfg/internal/passes"
)

// compileMember compiles one expression at the given level and wraps it
// as a merge member.
func compileMember(t *testing.T, text string, lvl passes.Level) passes.MergeMember {
	t.Helper()
	pipe := passes.Paper
	if lvl == passes.LevelO2 {
		pipe = passes.O2
	}
	net, _, err := expr.CompileWithPipeline(text, nil, pipe, passes.RunOptions{Verify: true})
	if err != nil {
		t.Fatalf("compile %q: %v", text, err)
	}
	// The fingerprint is an opaque dedup/demux key at this layer; the
	// source text serves.
	return passes.MergeMember{Fp: text, Net: net}
}

func liveNodes(t *testing.T, nw *dataflow.Network) int {
	t.Helper()
	order, err := nw.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	return len(order)
}

// TestMergeNetworksBatchSharesSubtrees: merging expressions with a
// common subtree eliminates the duplicated nodes — the super-network is
// strictly smaller than its members combined, members keep distinct
// roots, and Shared reports the elimination.
func TestMergeNetworksBatchSharesSubtrees(t *testing.T) {
	a := compileMember(t, "r = sqrt(u*u + v*v + w*w)", passes.LevelO2)
	b := compileMember(t, "r = u*u + v*v + w*w", passes.LevelO2)
	m, err := passes.MergeNetworks([]passes.MergeMember{a, b}, passes.LevelO2, passes.RunOptions{Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Fps) != 2 || len(m.Roots) != 2 {
		t.Fatalf("fps=%d roots=%d, want 2/2", len(m.Fps), len(m.Roots))
	}
	if m.Roots[0] == m.Roots[1] {
		t.Fatal("distinct members unified to one root")
	}
	if m.Shared == 0 {
		t.Fatal("no nodes shared between members with a common subtree")
	}
	if got, limit := liveNodes(t, m.Net), liveNodes(t, a.Net)+liveNodes(t, b.Net); got >= limit {
		t.Fatalf("super-network has %d nodes, members total %d — merge eliminated nothing", got, limit)
	}
	for _, fp := range m.Fps {
		root, ok := m.Root(fp)
		if !ok || m.Net.NodeByID(root) == nil {
			t.Fatalf("member %q root %q missing from super-network", fp, root)
		}
	}
}

// TestMergeNetworksBatchDeterministic: member order must not matter —
// one membership set, one super-network, byte for byte. The batch plan
// cache keys on this.
func TestMergeNetworksBatchDeterministic(t *testing.T) {
	a := compileMember(t, "r = sqrt(u*u + v*v)", passes.LevelO2)
	b := compileMember(t, "r = (u*u + v*v) * 0.5", passes.LevelO2)
	fwd, err := passes.MergeNetworks([]passes.MergeMember{a, b}, passes.LevelO2, passes.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rev, err := passes.MergeNetworks([]passes.MergeMember{b, a}, passes.LevelO2, passes.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(marshal(t, fwd.Net), marshal(t, rev.Net)) {
		t.Fatal("merge is order-sensitive: same members, different super-networks")
	}
}

// TestMergeNetworksBatchDedupsMembers: the same member submitted twice
// merges once — one fingerprint, one root.
func TestMergeNetworksBatchDedupsMembers(t *testing.T) {
	a := compileMember(t, "r = u + v", passes.LevelO2)
	b := compileMember(t, "r = u - v", passes.LevelO2)
	m, err := passes.MergeNetworks([]passes.MergeMember{a, b, a}, passes.LevelO2, passes.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Fps) != 2 {
		t.Fatalf("fps=%d, want 2 (duplicate member must dedup)", len(m.Fps))
	}
}

// TestMergeNetworksBatchUnifiesEquivalentRoots: members with distinct
// fingerprints whose outputs normalise to the same node (commuted
// operands at O2) share one root — the demux map must tolerate this.
func TestMergeNetworksBatchUnifiesEquivalentRoots(t *testing.T) {
	a := compileMember(t, "r = u * v", passes.LevelO2)
	b := compileMember(t, "r = v * u", passes.LevelO2)
	m, err := passes.MergeNetworks([]passes.MergeMember{a, b}, passes.LevelO2, passes.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ra, _ := m.Root(a.Fp)
	rb, _ := m.Root(b.Fp)
	if ra != rb {
		t.Fatalf("commuted members kept distinct roots %q vs %q", ra, rb)
	}
}
