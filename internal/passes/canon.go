package passes

import "dfg/internal/dataflow"

// This file holds the one canonicalisation helper every elimination
// path shares. The solo pipelines (Paper/O2 via CSE/CSECommute) and the
// batch merge pipelines (MergeNetworks) all key nodes through
// CanonicalKey and build their front ends from ElimPasses, so a node
// that unifies on the solo path unifies identically on the batch path —
// schedule-aware plan keys derived from either can never drift.

// commutative lists the primitives whose results are bitwise identical
// under argument swap for every input, including NaNs and signed zeros.
// fmin/fmax are excluded: their NaN and signed-zero behaviour is
// argument-order dependent.
var commutative = map[string]bool{"add": true, "mul": true, "eq": true, "ne": true}

// CanonicalKey returns a node's structural identity for elimination
// passes: its Key() — filter, parameters and inputs in order — with two
// normalisations layered on top. Sources are pinned to their names (two
// sources never merge across names, whatever their structure), and when
// commute is set the argument order of bitwise-commutative two-input
// primitives is sorted, so add(a, b) and add(b, a) share one key.
func CanonicalKey(n *dataflow.Node, commute bool) string {
	if n.Filter == "source" {
		return "source:" + n.ID
	}
	if commute && commutative[n.Filter] && len(n.Inputs) == 2 && n.Inputs[1] < n.Inputs[0] {
		return n.Filter + "|" + n.Inputs[1] + "|" + n.Inputs[0]
	}
	return n.Key()
}

// ElimPasses returns the canonicalisation pass list a level runs before
// any rewriting: constant pooling plus the order-sensitive CSE, with the
// commutativity-normalised round added at LevelO2. The front of the solo
// pipelines and the whole of the merge pipelines are built from this one
// list.
func ElimPasses(lvl Level) []Pass {
	if lvl == LevelO2 {
		return []Pass{ConstPool(), CSE(), CSECommute()}
	}
	return []Pass{ConstPool(), CSE()}
}
