// Package passes is the middle-end between expression lowering and
// strategy planning: first-class, composable network optimisations over
// the dataflow IR. The expression front end builds a raw network, a
// Pipeline rewrites it, and only then is it sealed and handed to the
// planners — so every strategy and code generator consumes optimised
// networks without knowing any pass exists.
//
// Two pipelines are predefined. Paper applies exactly the paper's two
// hard-wired optimisations (constant pooling and order-sensitive CSE)
// and produces byte-identical networks to the original front end — it
// is the default everywhere a table or figure of the paper is
// reproduced. O2 layers on constant folding, algebraic identity
// simplification, commutativity-normalised CSE, decompose-forwarding of
// gradients, and dead-node elimination; its output is ulp-identical to
// Paper's under every execution strategy but needs fewer kernels.
package passes

import (
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"dfg/internal/dataflow"
	"dfg/internal/obs"
)

// Stats is what a single pass reports back to the pipeline: the IDs of
// nodes it removed and how many nodes it rewrote in place.
type Stats struct {
	// Removed lists the IDs of nodes the pass deleted, in construction
	// order.
	Removed []string
	// Rewritten counts nodes mutated in place (folded to constants,
	// forwarded to fused filters, ...).
	Rewritten int
}

// Pass is one network transformation. Run mutates the (unsealed)
// network in place; it must leave construction order a valid
// topological order and every reference resolvable.
type Pass interface {
	Name() string
	Run(nw *dataflow.Network, st *Stats) error
}

// Record is the pipeline's account of one pass execution.
type Record struct {
	Pass                    string
	NodesBefore, NodesAfter int
	EdgesBefore, EdgesAfter int
	Removed                 []string
	Rewritten               int
	Duration                time.Duration
}

// Result accumulates the records of one pipeline run.
type Result struct {
	Pipeline string
	Records  []Record
}

// NodesRemoved totals the nodes eliminated across all passes.
func (r *Result) NodesRemoved() int {
	if r == nil {
		return 0
	}
	n := 0
	for _, rec := range r.Records {
		n += len(rec.Removed)
	}
	return n
}

// Pipeline is an immutable, named sequence of passes.
type Pipeline struct {
	name   string
	passes []Pass
}

// New builds a pipeline from passes, run in the given order.
func New(name string, ps ...Pass) *Pipeline {
	return &Pipeline{name: name, passes: append([]Pass(nil), ps...)}
}

// Name returns the pipeline's name ("paper", "O2").
func (p *Pipeline) Name() string { return p.name }

// Passes returns the pass sequence (do not mutate).
func (p *Pipeline) Passes() []Pass { return p.passes }

// RunOptions tunes one pipeline run.
type RunOptions struct {
	// Parent, when non-nil, receives one "pass:<name>" child span per
	// pass, annotated with the node delta.
	Parent *obs.Span
	// Debug, when non-nil, receives a line per pass with node counts
	// and eliminated IDs (the dfg-fuse -dump-passes output).
	Debug io.Writer
	// Verify forces the invariant checks after every pass. They also
	// run when the DFG_PASS_VERIFY environment variable is non-empty.
	Verify bool
}

// verifyByDefault enables the per-pass invariant checks process-wide —
// the "debug build" switch. Tests set RunOptions.Verify instead.
var verifyByDefault = os.Getenv("DFG_PASS_VERIFY") != ""

// Run optimises the network with default options.
func (p *Pipeline) Run(nw *dataflow.Network) (*Result, error) {
	return p.RunWith(nw, RunOptions{})
}

// RunWith optimises the network. The network must be unsealed and have
// its output set; the caller seals it afterwards. On error the network
// may be partially rewritten and must be discarded.
func (p *Pipeline) RunWith(nw *dataflow.Network, opt RunOptions) (*Result, error) {
	if nw.Sealed() {
		return nil, fmt.Errorf("passes: pipeline %q cannot rewrite a sealed network", p.name)
	}
	if nw.Output() == "" {
		return nil, fmt.Errorf("passes: pipeline %q needs a network with an output", p.name)
	}
	verify := opt.Verify || verifyByDefault
	res := &Result{Pipeline: p.name}
	if opt.Debug != nil {
		fmt.Fprintf(opt.Debug, "pipeline %s: %d nodes, %d edges in\n", p.name, nw.Len(), countEdges(nw))
	}
	for _, pass := range p.passes {
		nb, eb := nw.Len(), countEdges(nw)
		var st Stats
		sp := opt.Parent.Child("pass:" + pass.Name())
		start := time.Now()
		err := pass.Run(nw, &st)
		d := time.Since(start)
		if sp != nil {
			sp.SetAttr("nodes_removed", fmt.Sprint(len(st.Removed)))
			sp.SetAttr("nodes_rewritten", fmt.Sprint(st.Rewritten))
			sp.Finish()
		}
		if err != nil {
			return res, fmt.Errorf("passes: %s/%s: %w", p.name, pass.Name(), err)
		}
		rec := Record{
			Pass:        pass.Name(),
			NodesBefore: nb, NodesAfter: nw.Len(),
			EdgesBefore: eb, EdgesAfter: countEdges(nw),
			Removed:   st.Removed,
			Rewritten: st.Rewritten,
			Duration:  d,
		}
		res.Records = append(res.Records, rec)
		if opt.Debug != nil {
			line := fmt.Sprintf("  pass %-18s %3d -> %3d nodes, %3d -> %3d edges, %d rewritten",
				rec.Pass, rec.NodesBefore, rec.NodesAfter, rec.EdgesBefore, rec.EdgesAfter, rec.Rewritten)
			if len(rec.Removed) > 0 {
				line += "  (removed " + strings.Join(rec.Removed, ", ") + ")"
			}
			fmt.Fprintln(opt.Debug, line)
		}
		if verify {
			if err := VerifyInvariants(nw); err != nil {
				return res, fmt.Errorf("passes: %s/%s broke network invariants: %w", p.name, pass.Name(), err)
			}
		}
	}
	if opt.Debug != nil {
		fmt.Fprintf(opt.Debug, "pipeline %s: %d nodes, %d edges out\n", p.name, nw.Len(), countEdges(nw))
	}
	return res, nil
}

// countEdges totals the input connections across all nodes.
func countEdges(nw *dataflow.Network) int {
	edges := 0
	for _, n := range nw.Nodes() {
		edges += len(n.Inputs)
	}
	return edges
}
