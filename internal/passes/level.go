package passes

import "fmt"

// Level selects an optimisation pipeline by name. The zero value is the
// Paper level — the exact reproduction of the paper's front end — so
// every existing call site keeps its behaviour.
type Level int

const (
	// LevelPaper runs only the paper's own optimisations: constant
	// pooling and order-sensitive CSE. All table and figure harnesses
	// pin this level.
	LevelPaper Level = iota
	// LevelO2 adds constant folding, algebraic identity simplification,
	// commutativity-normalised CSE, decompose-forwarding and dead-node
	// elimination. Output is ulp-identical to LevelPaper for finite
	// data under every strategy, with fewer kernel executions.
	LevelO2
)

// String names the level as accepted by ParseLevel.
func (l Level) String() string {
	switch l {
	case LevelPaper:
		return "paper"
	case LevelO2:
		return "O2"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// CacheTag returns the level's fingerprint suffix: empty for the Paper
// level (keeping Paper cache keys identical to the pre-pipeline
// fingerprints) and a short tag otherwise.
func (l Level) CacheTag() string {
	if l == LevelPaper {
		return ""
	}
	return "o2"
}

// ParseLevel maps a user-facing level name to a Level. The empty string
// means the Paper level.
func ParseLevel(s string) (Level, error) {
	switch s {
	case "", "paper", "Paper":
		return LevelPaper, nil
	case "o2", "O2":
		return LevelO2, nil
	default:
		return LevelPaper, fmt.Errorf("passes: unknown optimisation level %q (want \"paper\" or \"O2\")", s)
	}
}

// ForLevel returns the pipeline a level selects.
func ForLevel(l Level) *Pipeline {
	if l == LevelO2 {
		return O2
	}
	return Paper
}

// Paper reproduces the paper's front end exactly: constant pooling then
// the order-sensitive CSE, nothing else. Networks it produces are
// byte-identical (in JSON form) to the historical expr.Compile output.
var Paper = New("paper", ElimPasses(LevelPaper)...)

// O2 is the full optimising pipeline. The shared canonicalisation front
// (ConstPool+CSE) first, then folding and identity rewrites, a
// commutativity-aware CSE round to merge what normalisation exposed,
// decompose-forwarding of gradients into single-axis stencils, and
// finally dead-node elimination to drop everything orphaned by the
// rewrites.
var O2 = New("O2", append(ElimPasses(LevelPaper),
	ConstFold(),
	Algebraic(),
	CSECommute(),
	ForwardDecompose(),
	DCE(),
)...)

// Names lists every distinct pass name across the predefined pipelines,
// in pipeline order — the label set for per-pass metrics.
func Names() []string {
	var out []string
	seen := map[string]bool{}
	for _, p := range []*Pipeline{Paper, O2} {
		for _, pass := range p.Passes() {
			if !seen[pass.Name()] {
				seen[pass.Name()] = true
				out = append(out, pass.Name())
			}
		}
	}
	return out
}
