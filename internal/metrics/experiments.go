package metrics

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"dfg/internal/dataflow"
	"dfg/internal/expr"
	"dfg/internal/mesh"
	"dfg/internal/ocl"
	"dfg/internal/passes"
	"dfg/internal/rtsim"
	"dfg/internal/strategy"
	"dfg/internal/vortex"
)

// Config scopes an evaluation sweep.
type Config struct {
	// LinScale divides every grid dimension (device memory is divided
	// by LinScale^3 to preserve the failure pattern). Default 4.
	LinScale int
	// MaxGrids limits the sweep to the first N Table I sub-grids
	// (0 = all twelve).
	MaxGrids int
	// Repeats runs each case this many times; like the paper, the
	// fastest and slowest results are dropped and the rest averaged
	// (needs Repeats >= 3 for trimming; default 1, paper used 7).
	Repeats int
	// Seed generates the synthetic RT data.
	Seed int64
	// IncludeStreaming adds the future-work streaming strategy to the
	// executor set (the paper's §VI proposal, evaluated here).
	IncludeStreaming bool
	// Opt selects the optimisation level expressions compile at: ""
	// or "paper" for the paper's exact front end (the default every
	// reproduction table uses), "O2" for the optimising pass pipeline.
	Opt string
	// Schedule, when non-empty (and non-"flat"), runs the fusion
	// executor on scheduled kernels — a spec like
	// "tile=16x16,reg=2,vec=4" or the "tiled" shorthand. The other
	// executors are unaffected; the paper tables leave this empty.
	Schedule string
}

func (c *Config) defaults() {
	if c.LinScale < 1 {
		c.LinScale = 4
	}
	if c.Repeats < 1 {
		c.Repeats = 1
	}
	if c.MaxGrids < 0 {
		c.MaxGrids = 0
	}
}

// memScale derives the device-memory divisor paired with the grid scale.
func (c Config) memScale() int64 {
	s := int64(c.LinScale)
	return s * s * s
}

// Executor is one way to run an expression on a device: the three
// strategies plus the paper's hand-written reference kernel.
type Executor struct {
	Name string
	run  func(env *ocl.Env, net *dataflow.Network, bind strategy.Bindings, exprName string) (*strategy.Result, error)
}

// Run executes one case on the environment. exprName selects the
// reference kernel when the executor is "reference"; the strategies use
// the compiled network.
func (e Executor) Run(env *ocl.Env, net *dataflow.Network, bind strategy.Bindings, exprName string) (*strategy.Result, error) {
	return e.run(env, net, bind, exprName)
}

// Executors returns the four executors in the paper's order.
func Executors() []Executor {
	out := make([]Executor, 0, 4)
	for _, name := range strategy.Names() {
		s, _ := strategy.ForName(name)
		out = append(out, Executor{
			Name: name,
			run: func(env *ocl.Env, net *dataflow.Network, bind strategy.Bindings, _ string) (*strategy.Result, error) {
				return s.Execute(env, net, bind)
			},
		})
	}
	out = append(out, Executor{Name: "reference", run: runReference})
	return out
}

// ExtendedExecutors adds the future-work streaming strategy (§VI of the
// paper) to the sweep — the "streaming context" study the authors
// propose. Streaming tiles the mesh so even the cases that fail on the
// GPU under every paper strategy complete.
func ExtendedExecutors() []Executor {
	s := strategy.Streaming{Tiles: 8}
	return append(Executors(), Executor{
		Name: "streaming",
		run: func(env *ocl.Env, net *dataflow.Network, bind strategy.Bindings, _ string) (*strategy.Result, error) {
			return s.Execute(env, net, bind)
		},
	})
}

// runReference executes the hand-written kernel for the expression.
func runReference(env *ocl.Env, _ *dataflow.Network, bind strategy.Bindings, exprName string) (*strategy.Result, error) {
	k, argNames, err := vortex.ReferenceKernel(exprName)
	if err != nil {
		return nil, err
	}
	env.Reset()
	bufs := make([]*ocl.Buffer, 0, len(argNames)+1)
	defer func() {
		for _, b := range bufs {
			b.Release()
		}
	}()
	for _, name := range argNames {
		src, ok := bind.Sources[name]
		if !ok {
			return nil, fmt.Errorf("metrics: reference kernel needs source %q", name)
		}
		b, err := env.Upload(name, src.Data, src.Width)
		if err != nil {
			return nil, err
		}
		bufs = append(bufs, b)
	}
	out, err := env.NewBuffer("out", bind.N, 1)
	if err != nil {
		return nil, err
	}
	bufs = append(bufs, out)
	if err := env.Run(k, bind.N, bufs, nil); err != nil {
		return nil, err
	}
	data, err := env.Download(out)
	if err != nil {
		return nil, err
	}
	return &strategy.Result{
		Data: data, Width: 1,
		Profile:   env.Profile(),
		PeakBytes: env.PeakBytes(),
		Events:    env.Queue().Events(),
	}, nil
}

// CaseResult is one (expression, executor, device, grid) measurement.
type CaseResult struct {
	Expr     string
	Opt      string // optimisation level the expression compiled at
	Exec     string
	Schedule string // kernel schedule the fusion executor ran under ("" = flat)
	Device   ocl.DeviceType
	Grid     rtsim.Grid
	Failed   bool
	Reason   string
	Device1  string
	Profile  ocl.Profile
	DevTime  time.Duration // modeled device time (trimmed mean)
	Wall     time.Duration // host wall time (trimmed mean)
	PeakMem  int64
	GPULimit int64 // the GPU's global memory at this scale
}

// Key renders a compact case identity.
func (c CaseResult) Key() string {
	return fmt.Sprintf("%s/%s/%v/%s", c.Expr, c.Exec, c.Device, c.Grid.Dims)
}

// RunCases performs the full single-device sweep behind Figures 5 and 6:
// every Table I sub-grid x three expressions x four executors x two
// devices. GPU cases whose buffers exceed the (scaled) 3 GB fail and are
// recorded as the paper's gray series.
func RunCases(cfg Config) ([]CaseResult, error) {
	cfg.defaults()
	lvl, err := passes.ParseLevel(cfg.Opt)
	if err != nil {
		return nil, fmt.Errorf("metrics: %w", err)
	}
	cfg.Opt = lvl.String()
	grids := rtsim.TableIGrids(cfg.LinScale)
	if cfg.MaxGrids > 0 && cfg.MaxGrids < len(grids) {
		grids = grids[:cfg.MaxGrids]
	}

	nets := make(map[string]*dataflow.Network)
	for _, e := range vortex.Expressions() {
		net, _, err := expr.CompileWithPipeline(e.Text, nil, passes.ForLevel(lvl), passes.RunOptions{})
		if err != nil {
			return nil, fmt.Errorf("metrics: compile %s: %w", e.Name, err)
		}
		nets[e.Name] = net
	}

	specs := []ocl.DeviceSpec{ocl.XeonX5660Spec(cfg.memScale()), ocl.TeslaM2050Spec(cfg.memScale())}
	gpuLimit := specs[1].GlobalMemSize
	execs := Executors()
	if cfg.IncludeStreaming {
		execs = ExtendedExecutors()
	}
	sspec, err := passes.ParseScheduleSpec(cfg.Schedule)
	if err != nil {
		return nil, fmt.Errorf("metrics: %w", err)
	}
	if sspec.IsFlat() {
		cfg.Schedule = ""
	} else {
		cfg.Schedule = sspec.CacheTag()
		sf := strategy.Fusion{Sched: sspec}
		for i := range execs {
			if execs[i].Name == "fusion" {
				execs[i].run = func(env *ocl.Env, net *dataflow.Network, bind strategy.Bindings, _ string) (*strategy.Result, error) {
					return sf.Execute(env, net, bind)
				}
			}
		}
	}

	var results []CaseResult
	for _, g := range grids {
		m, err := mesh.NewUniform(g.Dims, 1.0/float32(g.Dims.NX), 1.0/float32(g.Dims.NY), 1.0/float32(g.Dims.NZ))
		if err != nil {
			return nil, err
		}
		f := rtsim.Generate(m, rtsim.Options{Seed: cfg.Seed})
		bind, err := strategy.BindMesh(m, map[string][]float32{"u": f.U, "v": f.V, "w": f.W})
		if err != nil {
			return nil, err
		}
		for _, e := range vortex.Expressions() {
			for _, spec := range specs {
				for _, ex := range execs {
					res := runCase(cfg, spec, ex, e.Name, nets[e.Name], bind, g)
					res.GPULimit = gpuLimit
					results = append(results, res)
				}
			}
		}
	}
	return results, nil
}

// runCase measures one case with the paper's repeat-and-trim protocol.
func runCase(cfg Config, spec ocl.DeviceSpec, ex Executor, exprName string, net *dataflow.Network, bind strategy.Bindings, g rtsim.Grid) CaseResult {
	out := CaseResult{Expr: exprName, Opt: cfg.Opt, Exec: ex.Name, Device: spec.Type, Grid: g, Device1: spec.Name}
	if ex.Name == "fusion" {
		out.Schedule = cfg.Schedule
	}
	var devTimes, walls []time.Duration
	var last *strategy.Result
	for r := 0; r < cfg.Repeats; r++ {
		env := ocl.NewEnv(ocl.NewDevice(spec))
		res, err := ex.run(env, net, bind, exprName)
		if err != nil {
			out.Failed = true
			var ae *ocl.AllocError
			if errors.As(err, &ae) {
				out.Reason = fmt.Sprintf("out of device memory (%d B needed with %d B in use of %d B)",
					ae.Requested, ae.InUse, ae.Capacity)
			} else {
				out.Reason = err.Error()
			}
			return out
		}
		devTimes = append(devTimes, res.Profile.DeviceTime())
		walls = append(walls, res.Profile.Wall)
		last = res
	}
	out.Profile = last.Profile
	out.PeakMem = last.PeakBytes
	out.DevTime = trimmedMean(devTimes)
	out.Wall = trimmedMean(walls)
	return out
}

// trimmedMean drops the fastest and slowest measurements (when there are
// at least three) and averages the rest — the paper's protocol.
func trimmedMean(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	if len(ds) >= 3 {
		ds = ds[1 : len(ds)-1]
	}
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return sum / time.Duration(len(ds))
}
