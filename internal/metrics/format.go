// Package metrics is the evaluation harness: it re-runs every table and
// figure of the paper's evaluation section against the framework and
// formats the results as aligned text and CSV. cmd/dfg-bench and the
// repository's benchmarks are thin wrappers over this package.
package metrics

import (
	"fmt"
	"strings"
)

// Table is a simple rectangular result table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable creates a titled table with the given column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// Add appends one row; missing cells render empty, extra cells are an
// error in tests (kept, so mistakes are visible).
func (t *Table) Add(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Addf appends one row of formatted values.
func (t *Table) Addf(format string, args ...any) {
	t.Add(strings.Split(fmt.Sprintf(format, args...), "|")...)
}

// Text renders the table with aligned columns.
func (t *Table) Text() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteString("\n")
	}
	writeRow := func(cells []string) {
		for i := range t.Columns {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values with a header row.
// Cells containing commas or quotes are quoted.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString(",")
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			b.WriteString(c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}
