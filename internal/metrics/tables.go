package metrics

import (
	"fmt"
	"strings"
	"time"

	"dfg/internal/expr"
	"dfg/internal/mesh"
	"dfg/internal/ocl"
	"dfg/internal/passes"
	"dfg/internal/rtsim"
	"dfg/internal/strategy"
	"dfg/internal/vortex"
)

// TableI renders the paper's Table I: the evaluation sub-grids.
func TableI(linScale int) *Table {
	t := NewTable(fmt.Sprintf("Table I: RT sub-grids (linear scale 1/%d)", linScale),
		"Sub-grid Dimensions", "# of Cells", "Data Size")
	for _, g := range rtsim.TableIGrids(linScale) {
		t.Add(g.Dims.String(), groupDigits(g.Cells), g.DataSize())
	}
	return t
}

// groupDigits formats 9437184 as "9,437,184" (Table I's style).
func groupDigits(n int) string {
	s := fmt.Sprintf("%d", n)
	var parts []string
	for len(s) > 3 {
		parts = append([]string{s[len(s)-3:]}, parts...)
		s = s[:len(s)-3]
	}
	parts = append([]string{s}, parts...)
	return strings.Join(parts, ",")
}

// TableII runs the three expressions under the three strategies on a
// small grid and renders the device-event counts — the paper's Table II.
// The counts are size-independent, so a small grid suffices.
func TableII() (*Table, error) { return TableIIAt("") }

// TableIIAt is TableII with the expressions compiled at an explicit
// optimisation level ("", "paper" or "O2"). The Paper-level table is
// the reproduction; the O2 table shows how many device events the
// optimising pipeline saves on the same expressions.
func TableIIAt(opt string) (*Table, error) {
	lvl, err := passes.ParseLevel(opt)
	if err != nil {
		return nil, fmt.Errorf("metrics: %w", err)
	}
	m, err := mesh.NewUniform(mesh.Dims{NX: 8, NY: 8, NZ: 8}, 1, 1, 1)
	if err != nil {
		return nil, err
	}
	f := rtsim.Generate(m, rtsim.Options{Seed: 1})
	bind, err := strategy.BindMesh(m, map[string][]float32{"u": f.U, "v": f.V, "w": f.W})
	if err != nil {
		return nil, err
	}

	title := "Table II: device events per expression and strategy"
	if lvl != passes.LevelPaper {
		title += " (opt=" + lvl.String() + ")"
	}
	t := NewTable(title,
		"Expression", "Strategy", "Dev-W", "Dev-R", "K-Exe")
	for _, e := range vortex.Expressions() {
		net, _, err := expr.CompileWithPipeline(e.Text, nil, passes.ForLevel(lvl), passes.RunOptions{})
		if err != nil {
			return nil, err
		}
		for _, sname := range strategy.Names() {
			s, _ := strategy.ForName(sname)
			env := ocl.NewEnv(ocl.NewDevice(ocl.XeonX5660Spec(64)))
			res, err := s.Execute(env, net, bind)
			if err != nil {
				return nil, fmt.Errorf("metrics: %s/%s: %w", e.Name, sname, err)
			}
			p := res.Profile
			t.Add(e.Name, sname, fmt.Sprintf("%d", p.Writes), fmt.Sprintf("%d", p.Reads), fmt.Sprintf("%d", p.Kernels))
		}
	}
	return t, nil
}

// PaperTableII returns the published Table II values, keyed by
// expression then strategy, for verification against TableII().
func PaperTableII() map[string]map[string][3]int {
	return map[string]map[string][3]int{
		"VelMag":  {"roundtrip": {11, 6, 6}, "staged": {3, 1, 6}, "fusion": {3, 1, 1}},
		"VortMag": {"roundtrip": {32, 12, 12}, "staged": {7, 1, 18}, "fusion": {7, 1, 1}},
		"Q-Crit":  {"roundtrip": {123, 57, 57}, "staged": {7, 1, 67}, "fusion": {7, 1, 1}},
	}
}

// Fig5Table renders the runtime study: modeled device time per case,
// with failed GPU cases marked like the paper's gray series.
func Fig5Table(results []CaseResult) *Table {
	t := NewTable("Figure 5: single-device runtime (modeled device time)",
		"Expression", "Grid", "Cells", "Device", "Executor", "Runtime", "Status")
	for _, r := range results {
		status := "ok"
		runtime := fmtDuration(r.DevTime)
		if r.Failed {
			status = "FAILED"
			runtime = "-"
		}
		t.Add(r.Expr, r.Grid.Dims.String(), groupDigits(r.Grid.Cells), r.Device.String(), r.Exec, runtime, status)
	}
	return t
}

// Fig6Table renders the memory study: the device-buffer high-water mark
// per case, with the GPU's memory limit (the paper's green line).
func Fig6Table(results []CaseResult) *Table {
	t := NewTable("Figure 6: device global memory high-water mark",
		"Expression", "Grid", "Device", "Executor", "Peak Memory", "GPU Limit", "Status")
	for _, r := range results {
		status := "ok"
		peak := fmtBytes(r.PeakMem)
		if r.Failed {
			status = "FAILED"
			peak = "> " + fmtBytes(r.GPULimit)
		}
		t.Add(r.Expr, r.Grid.Dims.String(), r.Device.String(), r.Exec, peak, fmtBytes(r.GPULimit), status)
	}
	return t
}

// fmtDuration renders a modeled time compactly.
func fmtDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.1fus", float64(d)/float64(time.Microsecond))
	}
}

// fmtBytes renders byte counts in binary units.
func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(b)/float64(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(b)/float64(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(b)/float64(1<<10))
	default:
		return fmt.Sprintf("%d B", b)
	}
}

// Summary reports the paper's headline findings against the sweep's
// results, one line per claim, each marked HOLDS or VIOLATED.
func Summary(results []CaseResult) string {
	byKey := make(map[string]CaseResult, len(results))
	for _, r := range results {
		byKey[r.Key()] = r
	}
	get := func(exprName, exec string, dev ocl.DeviceType, g rtsim.Grid) (CaseResult, bool) {
		r, ok := byKey[fmt.Sprintf("%s/%s/%v/%s", exprName, exec, dev, g.Dims)]
		return r, ok
	}

	var grids []rtsim.Grid
	seen := map[string]bool{}
	for _, r := range results {
		k := r.Grid.Dims.String()
		if !seen[k] {
			seen[k] = true
			grids = append(grids, r.Grid)
		}
	}

	var b strings.Builder
	claim := func(name string, holds, applicable bool) {
		status := "HOLDS"
		if !applicable {
			status = "N/A (no applicable cases in sweep)"
		} else if !holds {
			status = "VIOLATED"
		}
		fmt.Fprintf(&b, "  [%s] %s\n", status, name)
	}

	// Claim 1: fusion <= staged <= roundtrip runtimes per case.
	ordered, cases := true, false
	// Claim 2: GPU faster or on-par with CPU for all successful GPU cases.
	gpuFaster, gpuCases := true, false
	// Claim 3: fusion is competitive with the reference kernel (within 2x).
	competitive, refCases := true, false
	// Claim 4: CPU completes all test cases.
	cpuAll := true
	// Claim 5: the strategy-crossover from the discussion — some case
	// where GPU staged failed while CPU staged beat GPU roundtrip.
	crossover, crossApplicable := false, false

	for _, exprName := range []string{"VelMag", "VortMag", "Q-Crit"} {
		for _, g := range grids {
			for _, dev := range []ocl.DeviceType{ocl.CPUDevice, ocl.GPUDevice} {
				rt, ok1 := get(exprName, "roundtrip", dev, g)
				st, ok2 := get(exprName, "staged", dev, g)
				fu, ok3 := get(exprName, "fusion", dev, g)
				ref, ok4 := get(exprName, "reference", dev, g)
				if ok1 && ok2 && ok3 && !rt.Failed && !st.Failed && !fu.Failed {
					cases = true
					if !(fu.DevTime <= st.DevTime && st.DevTime <= rt.DevTime) {
						ordered = false
					}
				}
				if ok3 && ok4 && !fu.Failed && !ref.Failed {
					refCases = true
					if fu.DevTime > 2*ref.DevTime {
						competitive = false
					}
				}
				if dev == ocl.CPUDevice && ((ok1 && rt.Failed) || (ok2 && st.Failed) || (ok3 && fu.Failed)) {
					cpuAll = false
				}
			}
			for _, exec := range []string{"roundtrip", "staged", "fusion", "reference"} {
				cg, okG := get(exprName, exec, ocl.GPUDevice, g)
				cc, okC := get(exprName, exec, ocl.CPUDevice, g)
				if okG && okC && !cg.Failed && !cc.Failed {
					gpuCases = true
					if cg.DevTime > cc.DevTime {
						gpuFaster = false
					}
				}
			}
			gs, ok1 := get(exprName, "staged", ocl.GPUDevice, g)
			cs, ok2 := get(exprName, "staged", ocl.CPUDevice, g)
			gr, ok3 := get(exprName, "roundtrip", ocl.GPUDevice, g)
			if ok1 && ok2 && ok3 && gs.Failed && !cs.Failed && !gr.Failed {
				crossApplicable = true
				if cs.DevTime < gr.DevTime {
					crossover = true
				}
			}
		}
	}

	b.WriteString("Discussion claims vs sweep results:\n")
	claim("fusion <= staged <= roundtrip runtime on every successful case", ordered, cases)
	claim("GPU faster or on-par with CPU on every case the GPU completed", gpuFaster, gpuCases)
	claim("fusion within 2x of the hand-written reference kernel", competitive, refCases)
	claim("the CPU completed all test cases", cpuAll, true)
	claim("where GPU staged failed, CPU staged beat GPU roundtrip", crossover, crossApplicable)

	completed, failed := 0, 0
	for _, r := range results {
		if r.Device == ocl.GPUDevice {
			if r.Failed {
				failed++
			} else {
				completed++
			}
		}
	}
	fmt.Fprintf(&b, "GPU completed %d of %d test cases (%d failed on device memory).\n",
		completed, completed+failed, failed)
	return b.String()
}
