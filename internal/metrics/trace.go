package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"dfg/internal/obs"
	"dfg/internal/ocl"
)

// traceEvent is one Chrome-trace "complete" event (the chrome://tracing
// and Perfetto JSON array format).
type traceEvent struct {
	Name  string            `json:"name"`
	Cat   string            `json:"cat"`
	Phase string            `json:"ph"`
	TS    float64           `json:"ts"`  // microseconds
	Dur   float64           `json:"dur"` // microseconds
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	Args  map[string]string `json:"args,omitempty"`
}

// WriteTrace renders a queue's device event log as Chrome-trace JSON, so
// a run's modeled timeline (transfers vs kernels) can be inspected in
// chrome://tracing or Perfetto. Each event category gets its own track:
// tid 0 = host-to-device, tid 1 = kernels, tid 2 = device-to-host.
func WriteTrace(w io.Writer, deviceName string, events []ocl.Event) error {
	out := make([]traceEvent, 0, len(events))
	for _, e := range events {
		var cat string
		var tid int
		switch e.Kind {
		case ocl.WriteEvent:
			cat, tid = "host-to-device", 0
		case ocl.KernelEvent:
			cat, tid = "kernel", 1
		case ocl.ReadEvent:
			cat, tid = "device-to-host", 2
		}
		args := map[string]string{"device": deviceName}
		if e.Bytes > 0 {
			args["bytes"] = fmt.Sprintf("%d", e.Bytes)
		}
		if e.GlobalSize > 0 {
			args["global_size"] = fmt.Sprintf("%d", e.GlobalSize)
		}
		out = append(out, traceEvent{
			Name:  e.Name,
			Cat:   cat,
			Phase: "X",
			TS:    float64(e.Start.Nanoseconds()) / 1e3,
			Dur:   float64(e.Duration().Nanoseconds()) / 1e3,
			PID:   1,
			TID:   tid,
			Args:  args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// Track layout for pipeline span traces: the request's pipeline stages
// render on track 0, the simulated device events (which live on the
// modeled device timeline, not host wall time) on one track per
// category — the same three categories WriteTrace uses.
var spanTracks = []struct {
	name string
	tid  int
}{
	{"pipeline", 0},
	{"host-to-device", 1},
	{"kernel", 2},
	{"device-to-host", 3},
}

// spanTrackID maps a span's Track label to its timeline track.
func spanTrackID(track string) int {
	for _, t := range spanTracks {
		if t.name == track {
			return t.tid
		}
	}
	return 0 // unknown tracks fold into the pipeline track
}

// WriteSpanTraces generalizes WriteTrace to whole pipeline traces: it
// renders request span trees (obs.Span) as multi-track Chrome-trace
// JSON for chrome://tracing or Perfetto. Each request becomes one
// process (pid = position in roots, 1-based) named after its root span
// and fingerprint; within a process, pipeline stages occupy track 0 and
// attached device events their per-category tracks. Timestamps are
// microseconds relative to the earliest root, so concurrent requests
// line up on one timeline. Nil roots are skipped.
func WriteSpanTraces(w io.Writer, roots []*obs.Span) error {
	var base time.Time
	for _, r := range roots {
		if r != nil && (base.IsZero() || r.Start.Before(base)) {
			base = r.Start
		}
	}
	out := make([]traceEvent, 0, 16*len(roots))
	for i, root := range roots {
		if root == nil {
			continue
		}
		pid := i + 1
		procName := root.Name
		if fp := root.Find("compile").Attr("fingerprint"); fp != "" {
			procName = fmt.Sprintf("%s %s", root.Name, fp)
		}
		out = append(out, traceEvent{
			Name: "process_name", Phase: "M", PID: pid,
			Args: map[string]string{"name": procName},
		})
		for _, t := range spanTracks {
			out = append(out, traceEvent{
				Name: "thread_name", Phase: "M", PID: pid, TID: t.tid,
				Args: map[string]string{"name": t.name},
			})
		}
		out = appendSpanEvents(out, root, pid, base, true)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// appendSpanEvents emits one span and its subtree as complete events.
func appendSpanEvents(out []traceEvent, s *obs.Span, pid int, base time.Time, isRoot bool) []traceEvent {
	cat := "stage"
	if isRoot {
		cat = "request"
	} else if s.Track != "" {
		cat = s.Track
	}
	var args map[string]string
	if len(s.Attrs) > 0 {
		args = make(map[string]string, len(s.Attrs))
		for _, a := range s.Attrs {
			args[a.Key] = a.Value
		}
	}
	end := s.End
	if end.IsZero() { // unfinished spans render as instants
		end = s.Start
	}
	out = append(out, traceEvent{
		Name:  s.Name,
		Cat:   cat,
		Phase: "X",
		TS:    float64(s.Start.Sub(base).Nanoseconds()) / 1e3,
		Dur:   float64(end.Sub(s.Start).Nanoseconds()) / 1e3,
		PID:   pid,
		TID:   spanTrackID(s.Track),
		Args:  args,
	})
	for _, c := range s.Children {
		out = appendSpanEvents(out, c, pid, base, false)
	}
	return out
}
