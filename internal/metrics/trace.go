package metrics

import (
	"encoding/json"
	"fmt"
	"io"

	"dfg/internal/ocl"
)

// traceEvent is one Chrome-trace "complete" event (the chrome://tracing
// and Perfetto JSON array format).
type traceEvent struct {
	Name  string            `json:"name"`
	Cat   string            `json:"cat"`
	Phase string            `json:"ph"`
	TS    float64           `json:"ts"`  // microseconds
	Dur   float64           `json:"dur"` // microseconds
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	Args  map[string]string `json:"args,omitempty"`
}

// WriteTrace renders a queue's device event log as Chrome-trace JSON, so
// a run's modeled timeline (transfers vs kernels) can be inspected in
// chrome://tracing or Perfetto. Each event category gets its own track:
// tid 0 = host-to-device, tid 1 = kernels, tid 2 = device-to-host.
func WriteTrace(w io.Writer, deviceName string, events []ocl.Event) error {
	out := make([]traceEvent, 0, len(events))
	for _, e := range events {
		var cat string
		var tid int
		switch e.Kind {
		case ocl.WriteEvent:
			cat, tid = "host-to-device", 0
		case ocl.KernelEvent:
			cat, tid = "kernel", 1
		case ocl.ReadEvent:
			cat, tid = "device-to-host", 2
		}
		args := map[string]string{"device": deviceName}
		if e.Bytes > 0 {
			args["bytes"] = fmt.Sprintf("%d", e.Bytes)
		}
		if e.GlobalSize > 0 {
			args["global_size"] = fmt.Sprintf("%d", e.GlobalSize)
		}
		out = append(out, traceEvent{
			Name:  e.Name,
			Cat:   cat,
			Phase: "X",
			TS:    float64(e.Start.Nanoseconds()) / 1e3,
			Dur:   float64(e.Duration().Nanoseconds()) / 1e3,
			PID:   1,
			TID:   tid,
			Args:  args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
