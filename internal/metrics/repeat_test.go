package metrics

import "testing"

// TestRunRepeatWarmPath is the warm-vs-cold smoke check CI runs through
// cmd/dfg-bench -repeat: for every strategy, warm prepared evaluations
// must allocate zero fresh device buffers, reproduce the cold output
// bitwise, and (for the resident-source strategies) skip re-uploads of
// unchanged inputs.
func TestRunRepeatWarmPath(t *testing.T) {
	cases, err := RunRepeat(3)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(RepeatNames()); len(cases) != want {
		t.Fatalf("want %d cases, got %d", want, len(cases))
	}
	for _, c := range cases {
		t.Logf("%-10s cold_allocs=%d warm_allocs=%d cold_writes=%d warm_writes=%d reused=%d skipped=%d scratch_cold=%d scratch_warm=%d identical=%v",
			c.Strategy, c.ColdAllocs, c.WarmAllocs, c.ColdWrites, c.WarmWrites, c.Reused, c.UploadsSkipped,
			c.ScratchColdAllocs, c.ScratchWarmAllocs, c.Identical)
		if !c.Reduced() {
			t.Errorf("%s: warm path did not beat cold (allocs cold=%d warm=%d scratch cold=%d warm=%d identical=%v)",
				c.Strategy, c.ColdAllocs, c.WarmAllocs, c.ScratchColdAllocs, c.ScratchWarmAllocs, c.Identical)
		}
		if c.Strategy == "vm" {
			// The host VM touches no device memory in any phase; its warm
			// gate is the scratch pool, already folded into Reduced above.
			if c.ColdWrites != 0 || c.WarmWrites != 0 {
				t.Errorf("vm: recorded device transfers (cold=%d warm=%d), want 0", c.ColdWrites, c.WarmWrites)
			}
			continue
		}
		if c.Strategy != "roundtrip" {
			// staged, fusion and streaming keep sources device-resident:
			// warm evals over unchanged inputs skip every source upload.
			if c.WarmWrites != 0 {
				t.Errorf("%s: warm evals recorded %d uploads, want 0", c.Strategy, c.WarmWrites)
			}
			if c.UploadsSkipped == 0 {
				t.Errorf("%s: no uploads skipped on the warm path", c.Strategy)
			}
		}
	}
	// The batch-of-one case must be indistinguishable from plain fusion —
	// the solo fast path means PrepareBatch of a single expression costs
	// exactly what Prepare does.
	byName := map[string]RepeatCase{}
	for _, c := range cases {
		byName[c.Strategy] = c
	}
	fusion, batch1 := byName["fusion"], byName[BatchOfOneName]
	if fusion.ColdAllocs != batch1.ColdAllocs || fusion.WarmAllocs != batch1.WarmAllocs ||
		fusion.ColdWrites != batch1.ColdWrites || fusion.WarmWrites != batch1.WarmWrites {
		t.Errorf("batch-of-one diverges from fusion: fusion %+v vs batch1 %+v", fusion, batch1)
	}
}
