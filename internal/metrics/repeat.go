package metrics

import (
	"fmt"

	"dfg"
	"dfg/internal/codegen"
	"dfg/internal/expr"
	"dfg/internal/mesh"
	"dfg/internal/passes"
	"dfg/internal/rtsim"
	"dfg/internal/strategy"
	"dfg/internal/vm"
	"dfg/internal/vortex"
)

// RepeatCase is one (strategy) warm-vs-cold comparison: the expression
// is prepared once, evaluated cold (first call, empty arena), then
// evaluated warm repeatedly over the same inputs. Cold pays the full
// allocation and upload bill; warm evals should recycle every device
// buffer from the arena and skip every unchanged source upload.
type RepeatCase struct {
	Expr      string `json:"expr"`
	Strategy  string `json:"strategy"`
	Cells     int    `json:"cells"`
	WarmEvals int    `json:"warm_evals"`
	// ColdAllocs / WarmAllocs count fresh device-buffer allocations
	// during the cold eval and across all warm evals combined.
	ColdAllocs int64 `json:"cold_allocs"`
	WarmAllocs int64 `json:"warm_allocs"`
	// ColdWrites / WarmWrites count host-to-device transfer events
	// (cold eval vs all warm evals combined).
	ColdWrites int `json:"cold_device_writes"`
	WarmWrites int `json:"warm_device_writes"`
	// Reused counts arena free-list hits and UploadsSkipped the source
	// uploads avoided by content hash, both across the warm evals.
	Reused         int64 `json:"buffers_reused"`
	UploadsSkipped int64 `json:"uploads_skipped"`
	// ScratchColdAllocs / ScratchWarmAllocs count fresh host-scratch
	// slices the VM's pool allocated (cold eval vs all warm evals
	// combined). Zero for device strategies; for the "vm" row they are
	// the warm-path gate, since the VM touches no device memory at all.
	ScratchColdAllocs int64 `json:"scratch_cold_allocs,omitempty"`
	ScratchWarmAllocs int64 `json:"scratch_warm_allocs,omitempty"`
	// Identical reports whether every warm output was bitwise equal to
	// the cold output.
	Identical bool `json:"warm_output_identical"`
	// SchedGlobalBytes / FlatGlobalBytes are the cost model's per-element
	// global-memory traffic for the scheduled and flat fused kernels, and
	// MatchesFlat whether the scheduled output was bitwise equal to a
	// flat fusion run. Set only for the "sched" pseudo-strategy row —
	// its gate: strictly fewer modeled global bytes, identical bits.
	SchedGlobalBytes float64 `json:"sched_global_bytes,omitempty"`
	FlatGlobalBytes  float64 `json:"flat_global_bytes,omitempty"`
	MatchesFlat      bool    `json:"matches_flat,omitempty"`
}

// Reduced reports whether the warm path actually beat the cold path:
// no fresh allocations and bitwise-identical output. Device strategies
// are judged on device-buffer allocations; the host VM holds no device
// buffers (all its counters must stay zero) and is judged on its host
// scratch pool instead. This is the CI smoke gate for the prepared-plan
// machinery.
func (c RepeatCase) Reduced() bool {
	if c.Strategy == "vm" {
		return c.Identical &&
			c.ColdAllocs == 0 && c.WarmAllocs == 0 &&
			c.ColdWrites == 0 && c.WarmWrites == 0 &&
			c.ScratchColdAllocs > 0 && c.ScratchWarmAllocs == 0
	}
	if c.Strategy == ScheduledName {
		// The scheduled row additionally gates the schedule contract:
		// bitwise identity with the flat kernel AND strictly fewer
		// modeled global-memory bytes.
		return c.Identical && c.MatchesFlat &&
			c.WarmAllocs == 0 && c.ColdAllocs > 0 &&
			c.SchedGlobalBytes > 0 && c.SchedGlobalBytes < c.FlatGlobalBytes
	}
	return c.Identical && c.WarmAllocs == 0 && c.ColdAllocs > 0
}

// BatchOfOneName is the pseudo-strategy naming the batch-of-one repeat
// case: the Q-criterion expression prepared through PrepareBatch (one
// member) on a fusion engine. The batch front's solo fast path makes
// this indistinguishable from the plain fusion row — the case is the
// perf gate pinning that batching never taxes a lone request.
const BatchOfOneName = "batch1"

// ScheduledName is the pseudo-strategy naming the scheduled-fusion
// repeat case: the Q-criterion prepared on a fusion engine whose
// kernels are generated under the default schedule (tiling, register
// blocking, vectorized staging). Its Reduced gate pins the schedule
// layer's contract — bitwise identity with the flat kernel at strictly
// fewer modeled global-memory bytes — into the perf baseline.
const ScheduledName = "sched"

// RepeatNames is the full warm-vs-cold case list: every strategy plus
// the batch-of-one and scheduled-fusion pseudo-strategies.
func RepeatNames() []string {
	return append(strategy.ExtendedNames(), BatchOfOneName, ScheduledName)
}

// RunRepeat runs the warm-vs-cold comparison for the paper's Q-criterion
// expression (the most buffer-hungry of the Figure 3 expressions) under
// every strategy plus the batch-of-one case, with warm repeated
// evaluations per case. The grid is fixed and small — the point is
// allocation and transfer counting, not runtime.
func RunRepeat(warm int) ([]RepeatCase, error) {
	return RunRepeatFor(warm, RepeatNames())
}

// RunRepeatFor is RunRepeat restricted to the named strategies — the
// hook behind dfg-bench's -strategy filter.
func RunRepeatFor(warm int, names []string) ([]RepeatCase, error) {
	if warm < 1 {
		warm = 3
	}
	d := mesh.Dims{NX: 24, NY: 24, NZ: 24}
	m, err := mesh.NewUniform(d, 1.0/float32(d.NX), 1.0/float32(d.NY), 1.0/float32(d.NZ))
	if err != nil {
		return nil, err
	}
	f := rtsim.Generate(m, rtsim.Options{Seed: 42})
	fields := map[string][]float32{"u": f.U, "v": f.V, "w": f.W}

	out := make([]RepeatCase, 0, len(names))
	for _, name := range names {
		c, err := repeatCase(name, m, fields, warm)
		if err != nil {
			return nil, fmt.Errorf("repeat %s: %w", name, err)
		}
		out = append(out, c)
	}
	return out, nil
}

// repeatCase measures one strategy's cold and warm behavior through the
// public Prepare/Eval API (or, for the batch-of-one pseudo-strategy,
// the PrepareBatch front over a fusion engine).
func repeatCase(strat string, m *mesh.Mesh, fields map[string][]float32, warm int) (RepeatCase, error) {
	if strat == "vm" {
		// The VM's pooling is process-global host scratch: start the case
		// from an empty pool so the cold/warm split is attributable.
		vm.DrainPool()
	}
	engStrat := strat
	if strat == BatchOfOneName {
		engStrat = "fusion"
	}
	if strat == ScheduledName {
		engStrat = "fusion+" + passes.DefaultSchedule().CacheTag()
	}
	eng, err := dfg.New(dfg.Config{Device: dfg.CPU, Strategy: engStrat})
	if err != nil {
		return RepeatCase{}, err
	}
	var eval func() (*dfg.Result, error)
	if strat == BatchOfOneName {
		pb, err := eng.PrepareBatch([]string{vortex.QCritExpr})
		if err != nil {
			return RepeatCase{}, err
		}
		defer pb.Close()
		if !pb.Solo() {
			return RepeatCase{}, fmt.Errorf("batch of one missed the solo fast path")
		}
		eval = func() (*dfg.Result, error) {
			bres, err := pb.EvalMesh(m, fields)
			if err != nil {
				return nil, err
			}
			return bres.Results[0], nil
		}
	} else {
		pr, err := eng.Prepare(vortex.QCritExpr)
		if err != nil {
			return RepeatCase{}, err
		}
		defer pr.Close()
		eval = func() (*dfg.Result, error) { return pr.EvalMesh(m, fields) }
	}

	c := RepeatCase{Expr: "Q-Crit", Strategy: strat, Cells: m.Cells(), WarmEvals: warm}

	before := eng.ArenaStats()
	scratchBefore := vm.Stats()
	cold, err := eval()
	if err != nil {
		return c, err
	}
	afterCold := eng.ArenaStats()
	scratchCold := vm.Stats()
	c.ColdAllocs = afterCold.Allocated - before.Allocated
	c.ColdWrites = cold.Profile.Writes
	c.ScratchColdAllocs = scratchCold.Allocs - scratchBefore.Allocs

	c.Identical = true
	for i := 0; i < warm; i++ {
		res, err := eval()
		if err != nil {
			return c, err
		}
		c.WarmWrites += res.Profile.Writes
		if !bitwiseEqual(cold.Data, res.Data) {
			c.Identical = false
		}
	}
	afterWarm := eng.ArenaStats()
	scratchWarm := vm.Stats()
	c.WarmAllocs = afterWarm.Allocated - afterCold.Allocated
	c.Reused = afterWarm.Reused - afterCold.Reused
	c.UploadsSkipped = afterWarm.UploadsSkipped - afterCold.UploadsSkipped
	c.ScratchWarmAllocs = scratchWarm.Allocs - scratchCold.Allocs
	if strat == ScheduledName {
		if err := c.fillScheduleGate(cold, m, fields); err != nil {
			return c, err
		}
	}
	return c, nil
}

// fillScheduleGate computes the scheduled row's extra gate inputs: the
// cost model's per-element global traffic for the scheduled and flat
// Q-criterion kernels, and a bitwise comparison of the scheduled cold
// output against a fresh flat fusion run.
func (c *RepeatCase) fillScheduleGate(cold *dfg.Result, m *mesh.Mesh, fields map[string][]float32) error {
	net, err := expr.Compile(vortex.QCritExpr)
	if err != nil {
		return err
	}
	flatProg, err := codegen.Fuse(net, "expr")
	if err != nil {
		return err
	}
	sched, err := passes.ComputeSchedule(net, passes.DefaultSchedule())
	if err != nil {
		return err
	}
	schedProg, err := codegen.FuseScheduled(net, "expr", sched)
	if err != nil {
		return err
	}
	c.FlatGlobalBytes = flatProg.Kernel.Cost.LoadBytes + flatProg.Kernel.Cost.StoreBytes
	c.SchedGlobalBytes = schedProg.Kernel.Cost.LoadBytes + schedProg.Kernel.Cost.StoreBytes

	feng, err := dfg.New(dfg.Config{Device: dfg.CPU, Strategy: "fusion"})
	if err != nil {
		return err
	}
	fres, err := feng.EvalOnMesh(vortex.QCritExpr, m, fields)
	if err != nil {
		return err
	}
	c.MatchesFlat = bitwiseEqual(cold.Data, fres.Data)
	return nil
}

// bitwiseEqual compares two float32 slices exactly (NaN-safe: the
// comparison is on the stored bits via ==, and the synthetic RT fields
// produce no NaNs).
func bitwiseEqual(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// RepeatTable renders the warm-vs-cold comparison as an aligned table.
func RepeatTable(cases []RepeatCase) *Table {
	t := NewTable("Warm vs cold prepared evaluation (Q-criterion)",
		"Strategy", "Cold allocs", "Warm allocs", "Cold Dev-W", "Warm Dev-W", "Reused", "Skipped", "Scr cold", "Scr warm", "Identical")
	for _, c := range cases {
		t.Addf("%s|%d|%d|%d|%d|%d|%d|%d|%d|%v", c.Strategy,
			c.ColdAllocs, c.WarmAllocs, c.ColdWrites, c.WarmWrites,
			c.Reused, c.UploadsSkipped, c.ScratchColdAllocs, c.ScratchWarmAllocs, c.Identical)
	}
	return t
}
