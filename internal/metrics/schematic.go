package metrics

import "fmt"

// This file reproduces the paper's Figure 2: an analytical illustration
// of the device-memory constraints each execution strategy needs to run
// the same example dataflow network. The figure's network is schematic —
// two filters, problem-sized arrays only — so the reproduction applies
// the strategies' memory-accounting rules symbolically rather than
// executing kernels.

// SchemNode is one node of a schematic network. Sources have no inputs.
type SchemNode struct {
	ID     string
	Inputs []string
	// Stencil marks a filter with complex memory requirements (like
	// grad3d): it must read its first input from device global memory.
	Stencil bool
}

// SchematicMemory applies one strategy's memory rules to a schematic
// network whose last node is the output, and returns the peak number of
// problem-sized arrays resident on the device.
//
//   - roundtrip: one kernel per filter; peak = max over filters of
//     inputs + output (intermediates live on the host).
//   - staged: all sources upload up front; every filter output is a
//     device array; arrays free when their last consumer has run.
//   - fusion: sources + final output; plus a global scratch array for
//     every value a stencil consumes that is not a source (the
//     generator's materialization rule).
func SchematicMemory(nodes []SchemNode, strategyName string) (int, error) {
	if len(nodes) == 0 {
		return 0, fmt.Errorf("metrics: empty schematic network")
	}
	byID := make(map[string]*SchemNode, len(nodes))
	for i := range nodes {
		byID[nodes[i].ID] = &nodes[i]
		for _, in := range nodes[i].Inputs {
			if byID[in] == nil {
				return 0, fmt.Errorf("metrics: node %q references unknown input %q", nodes[i].ID, in)
			}
		}
	}
	isSource := func(n *SchemNode) bool { return len(n.Inputs) == 0 }
	out := nodes[len(nodes)-1].ID

	switch strategyName {
	case "roundtrip":
		peak := 0
		for i := range nodes {
			n := &nodes[i]
			if isSource(n) {
				continue
			}
			if need := len(n.Inputs) + 1; need > peak {
				peak = need
			}
		}
		return peak, nil

	case "staged":
		// Reference counts: one per consuming connection, +1 for the sink.
		refs := make(map[string]int)
		for i := range nodes {
			for _, in := range nodes[i].Inputs {
				refs[in]++
			}
		}
		refs[out]++
		live := 0
		peak := 0
		for i := range nodes {
			if isSource(&nodes[i]) {
				live++ // uploaded up front
			}
		}
		if live > peak {
			peak = live
		}
		for i := range nodes {
			n := &nodes[i]
			if isSource(n) {
				continue
			}
			live++ // allocate the filter's output
			if live > peak {
				peak = live
			}
			for _, in := range n.Inputs {
				refs[in]--
				if refs[in] == 0 {
					live--
				}
			}
		}
		return peak, nil

	case "fusion":
		arrays := 1 // the output
		for i := range nodes {
			n := &nodes[i]
			if isSource(n) {
				arrays++
				continue
			}
			if n.Stencil && !isSource(byID[n.Inputs[0]]) {
				arrays++ // materialized scratch for the stencil's input
			}
		}
		return arrays, nil

	default:
		return 0, fmt.Errorf("metrics: unknown strategy %q", strategyName)
	}
}

// Fig2Network is the paper's Figure 2 example: an elementwise filter
// combining two inputs, feeding a stencil filter that also reads a third
// input.
func Fig2Network() []SchemNode {
	return []SchemNode{
		{ID: "A"},
		{ID: "B"},
		{ID: "C"},
		{ID: "T", Inputs: []string{"A", "B"}},
		{ID: "OUT", Inputs: []string{"T", "C"}, Stencil: true},
	}
}

// Fig2 renders the Figure 2 comparison: problem-sized device arrays
// needed by each strategy on the example network.
func Fig2() (*Table, error) {
	t := NewTable("Figure 2: device memory constraints on the example network (problem-sized arrays)",
		"Strategy", "Arrays", "Why")
	why := map[string]string{
		"roundtrip": "intermediates stored in host memory; peak is one kernel's working set",
		"staged":    "intermediate T held in device memory while the second filter executes",
		"fusion":    "all inputs + output resident, plus global scratch for the stencil's computed input",
	}
	for _, s := range []string{"roundtrip", "staged", "fusion"} {
		n, err := SchematicMemory(Fig2Network(), s)
		if err != nil {
			return nil, err
		}
		t.Add(s, fmt.Sprintf("%d", n), why[s])
	}
	return t, nil
}
