package metrics

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"dfg/internal/obs"
	"dfg/internal/ocl"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenEvents is a deterministic device-event log: two uploads, one
// fused kernel, one readback, on the modeled in-order timeline.
func goldenEvents() []ocl.Event {
	us := func(n int64) time.Duration { return time.Duration(n) * time.Microsecond }
	return []ocl.Event{
		{Kind: ocl.WriteEvent, Name: "u", Bytes: 4096, Queued: 0, Start: 0, End: us(10), Wall: us(1)},
		{Kind: ocl.WriteEvent, Name: "v", Bytes: 4096, Queued: us(10), Start: us(10), End: us(20), Wall: us(1)},
		{Kind: ocl.KernelEvent, Name: "expr", GlobalSize: 1024, Queued: us(20), Start: us(20), End: us(120), Wall: us(40)},
		{Kind: ocl.ReadEvent, Name: "out", Bytes: 4096, Queued: us(120), Start: us(120), End: us(130), Wall: us(1)},
	}
}

// TestWriteTraceGolden pins the exact Chrome-trace JSON WriteTrace
// emits — event ordering, per-category track assignment, and the
// bytes/global_size args — against a golden file. Regenerate with
// `go test ./internal/metrics -run TestWriteTraceGolden -update`.
func TestWriteTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, "NVIDIA Tesla M2050", goldenEvents()); err != nil {
		t.Fatal(err)
	}
	got := buf.Bytes()

	path := filepath.Join("testdata", "write_trace.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("trace JSON drifted from golden:\n got: %s\nwant: %s", got, want)
	}

	// Belt and braces: the golden itself must stay structurally sound.
	var events []map[string]any
	if err := json.Unmarshal(got, &events); err != nil {
		t.Fatalf("emitted trace is not valid JSON: %v", err)
	}
	if len(events) != 4 {
		t.Fatalf("want 4 events, got %d", len(events))
	}
	wantTID := []float64{0, 0, 1, 2} // write, write, kernel, read
	wantCat := []string{"host-to-device", "host-to-device", "kernel", "device-to-host"}
	for i, e := range events {
		if e["tid"] != wantTID[i] || e["cat"] != wantCat[i] {
			t.Fatalf("event %d on track %v cat %v, want %v/%v", i, e["tid"], e["cat"], wantTID[i], wantCat[i])
		}
	}
	if args := events[2]["args"].(map[string]any); args["global_size"] != "1024" {
		t.Fatalf("kernel args = %v", args)
	}
	if args := events[0]["args"].(map[string]any); args["bytes"] != "4096" {
		t.Fatalf("write args = %v", args)
	}
}

// TestWriteSpanTraces exercises the multi-track pipeline export: one
// process per request, stages on the pipeline track, device events on
// their category tracks, timestamps relative to the earliest root.
func TestWriteSpanTraces(t *testing.T) {
	base := time.Unix(1700000000, 0)
	at := func(us int64) time.Time { return base.Add(time.Duration(us) * time.Microsecond) }
	mkTrace := func(offset int64) *obs.Span {
		root := &obs.Span{Name: "request", Start: at(offset), End: at(offset + 500)}
		compile := &obs.Span{Name: "compile", Start: at(offset + 10), End: at(offset + 60),
			Attrs: []obs.Attr{{Key: "fingerprint", Value: "abcdef123456"}}}
		compile.Children = []*obs.Span{
			{Name: "parse", Start: at(offset + 11), End: at(offset + 30)},
			{Name: "cache", Start: at(offset + 31), End: at(offset + 59),
				Attrs: []obs.Attr{{Key: "outcome", Value: "hit"}}},
		}
		exec := &obs.Span{Name: "execute", Start: at(offset + 70), End: at(offset + 490)}
		exec.Children = []*obs.Span{
			{Name: "u", Track: "host-to-device", Start: at(offset + 70), End: at(offset + 90),
				Attrs: []obs.Attr{{Key: "bytes", Value: "4096"}}},
			{Name: "expr", Track: "kernel", Start: at(offset + 90), End: at(offset + 400),
				Attrs: []obs.Attr{{Key: "global_size", Value: "1024"}}},
			{Name: "out", Track: "device-to-host", Start: at(offset + 400), End: at(offset + 420)},
		}
		root.Children = []*obs.Span{compile, exec}
		return root
	}

	var buf bytes.Buffer
	if err := WriteSpanTraces(&buf, []*obs.Span{mkTrace(0), nil, mkTrace(1000)}); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("span trace is not valid JSON: %v", err)
	}

	byName := func(pid float64, name string) map[string]any {
		for _, e := range events {
			if e["pid"] == pid && e["name"] == name && e["ph"] == "X" {
				return e
			}
		}
		return nil
	}

	// Two requests -> pids 1 and 3 (position in roots, nil skipped).
	for _, pid := range []float64{1, 3} {
		root := byName(pid, "request")
		if root == nil || root["cat"] != "request" {
			t.Fatalf("pid %v missing request event: %v", pid, root)
		}
		if k := byName(pid, "expr"); k == nil || k["tid"] != float64(2) || k["cat"] != "kernel" {
			t.Fatalf("pid %v kernel event wrong: %v", pid, k)
		}
		if p := byName(pid, "parse"); p == nil || p["tid"] != float64(0) || p["cat"] != "stage" {
			t.Fatalf("pid %v parse event wrong: %v", pid, p)
		}
	}
	// Relative timebase: first root starts at ts 0, second at +1000µs.
	if ts := byName(1, "request")["ts"].(float64); ts != 0 {
		t.Fatalf("first request ts = %v, want 0", ts)
	}
	if ts := byName(3, "request")["ts"].(float64); ts != 1000 {
		t.Fatalf("second request ts = %v, want 1000", ts)
	}
	// Metadata: process named with the fingerprint, tracks named.
	var sawProc, sawThread bool
	for _, e := range events {
		if e["ph"] != "M" {
			continue
		}
		args := e["args"].(map[string]any)
		if e["name"] == "process_name" && args["name"] == "request abcdef123456" {
			sawProc = true
		}
		if e["name"] == "thread_name" && args["name"] == "host-to-device" {
			sawThread = true
		}
	}
	if !sawProc || !sawThread {
		t.Fatalf("metadata events missing (proc=%v thread=%v)", sawProc, sawThread)
	}
	// Cache-outcome annotation survives into args.
	if c := byName(1, "cache"); c["args"].(map[string]any)["outcome"] != "hit" {
		t.Fatalf("cache args = %v", c["args"])
	}
}
