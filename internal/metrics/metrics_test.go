package metrics

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"testing"
	"time"

	"dfg/internal/ocl"
)

func TestTableFormatting(t *testing.T) {
	tb := NewTable("Title", "A", "BBB")
	tb.Add("x", "1")
	tb.Add("longer", "2")
	txt := tb.Text()
	if !strings.HasPrefix(txt, "Title\n") {
		t.Fatal("missing title")
	}
	lines := strings.Split(strings.TrimSpace(txt), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("want 5 lines, got %d:\n%s", len(lines), txt)
	}
	if !strings.Contains(lines[1], "A") || !strings.Contains(lines[1], "BBB") {
		t.Fatal("header missing columns")
	}
	// Columns align: every data line has the same prefix width.
	if len(lines[3]) < len("longer") {
		t.Fatal("column alignment broken")
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.Add("x,y", `has "quote"`)
	csv := tb.CSV()
	want := "a,b\n\"x,y\",\"has \"\"quote\"\"\"\n"
	if csv != want {
		t.Fatalf("csv:\n%q\nwant\n%q", csv, want)
	}
}

func TestTableAddf(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.Addf("%d|%s", 7, "x")
	if tb.Rows[0][0] != "7" || tb.Rows[0][1] != "x" {
		t.Fatalf("Addf row: %v", tb.Rows[0])
	}
}

func TestFig2SchematicMatchesPaper(t *testing.T) {
	// The paper's Figure 2: roundtrip 3, staged 4, fusion 5.
	want := map[string]int{"roundtrip": 3, "staged": 4, "fusion": 5}
	for s, w := range want {
		got, err := SchematicMemory(Fig2Network(), s)
		if err != nil {
			t.Fatal(err)
		}
		if got != w {
			t.Errorf("Figure 2 %s = %d arrays, paper says %d", s, got, w)
		}
	}
	tbl, err := Fig2()
	if err != nil {
		t.Fatal(err)
	}
	txt := tbl.Text()
	for _, frag := range []string{"roundtrip", "3", "4", "5"} {
		if !strings.Contains(txt, frag) {
			t.Errorf("Fig2 table missing %q:\n%s", frag, txt)
		}
	}
}

func TestSchematicMemoryVelMagShape(t *testing.T) {
	// Velocity magnitude as a schematic: roundtrip 3, staged 4, fusion 4
	// — matching the measured peaks in the strategy tests.
	nodes := []SchemNode{
		{ID: "u"}, {ID: "v"}, {ID: "w"},
		{ID: "uu", Inputs: []string{"u", "u"}},
		{ID: "vv", Inputs: []string{"v", "v"}},
		{ID: "ww", Inputs: []string{"w", "w"}},
		{ID: "s1", Inputs: []string{"uu", "vv"}},
		{ID: "s2", Inputs: []string{"s1", "ww"}},
		{ID: "out", Inputs: []string{"s2"}},
	}
	want := map[string]int{"roundtrip": 3, "staged": 4, "fusion": 4}
	for s, w := range want {
		got, err := SchematicMemory(nodes, s)
		if err != nil {
			t.Fatal(err)
		}
		if got != w {
			t.Errorf("velmag schematic %s = %d, want %d", s, got, w)
		}
	}
}

func TestSchematicMemoryErrors(t *testing.T) {
	if _, err := SchematicMemory(nil, "fusion"); err == nil {
		t.Error("empty network must fail")
	}
	if _, err := SchematicMemory(Fig2Network(), "warp"); err == nil {
		t.Error("unknown strategy must fail")
	}
	bad := []SchemNode{{ID: "a", Inputs: []string{"missing"}}}
	if _, err := SchematicMemory(bad, "fusion"); err == nil {
		t.Error("dangling input must fail")
	}
}

func TestTableIMatchesPaper(t *testing.T) {
	tbl := TableI(1)
	if len(tbl.Rows) != 12 {
		t.Fatalf("Table I has 12 rows, got %d", len(tbl.Rows))
	}
	if tbl.Rows[0][0] != "192 x 192 x 0256" || tbl.Rows[0][1] != "9,437,184" {
		t.Fatalf("row 1: %v", tbl.Rows[0])
	}
	if tbl.Rows[11][1] != "113,246,208" {
		t.Fatalf("row 12 cells: %v", tbl.Rows[11])
	}
}

func TestTableIIMatchesPaperExactly(t *testing.T) {
	tbl, err := TableII()
	if err != nil {
		t.Fatal(err)
	}
	paper := PaperTableII()
	if len(tbl.Rows) != 9 {
		t.Fatalf("Table II has 9 rows, got %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		want := paper[row[0]][row[1]]
		for i := 0; i < 3; i++ {
			got, _ := strconv.Atoi(row[2+i])
			if got != want[i] {
				t.Errorf("%s/%s column %d: got %d want %d", row[0], row[1], i, got, want[i])
			}
		}
	}
}

func TestGroupDigits(t *testing.T) {
	cases := map[int]string{0: "0", 12: "12", 1234: "1,234", 113246208: "113,246,208"}
	for in, want := range cases {
		if got := groupDigits(in); got != want {
			t.Errorf("groupDigits(%d) = %q want %q", in, got, want)
		}
	}
}

func TestFmtHelpers(t *testing.T) {
	if fmtBytes(3<<30) != "3.00 GiB" || fmtBytes(48<<20) != "48.00 MiB" || fmtBytes(100) != "100 B" {
		t.Fatal("fmtBytes wrong")
	}
	if !strings.HasSuffix(fmtDuration(1500000000), "s") {
		t.Fatal("fmtDuration seconds wrong")
	}
}

// TestRunCasesSmallSweep runs a reduced sweep (3 grids at 1/16 scale)
// and checks the headline shapes of Figures 5 and 6.
func TestRunCasesSmallSweep(t *testing.T) {
	results, err := RunCases(Config{LinScale: 16, MaxGrids: 3, Repeats: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// 3 grids x 3 expressions x 2 devices x 4 executors.
	if len(results) != 72 {
		t.Fatalf("want 72 cases, got %d", len(results))
	}

	byKey := map[string]CaseResult{}
	for _, r := range results {
		byKey[r.Key()] = r
	}
	for _, r := range results {
		if r.Device == ocl.CPUDevice && r.Failed {
			t.Fatalf("CPU case failed: %s (%s)", r.Key(), r.Reason)
		}
		if r.Failed {
			continue
		}
		if r.DevTime <= 0 || r.PeakMem <= 0 {
			t.Fatalf("case %s has empty measurements", r.Key())
		}
	}
	// Strategy runtime ordering on the largest CPU grid for Q-Crit.
	big := results[len(results)-1].Grid
	get := func(exec string, dev ocl.DeviceType) CaseResult {
		r, ok := byKey["Q-Crit/"+exec+"/"+dev.String()+"/"+big.Dims.String()]
		if !ok {
			t.Fatalf("missing case %s", exec)
		}
		return r
	}
	fu, st, rt := get("fusion", ocl.CPUDevice), get("staged", ocl.CPUDevice), get("roundtrip", ocl.CPUDevice)
	if !(fu.DevTime < st.DevTime && st.DevTime < rt.DevTime) {
		t.Fatalf("runtime ordering wrong: fusion=%v staged=%v roundtrip=%v", fu.DevTime, st.DevTime, rt.DevTime)
	}
	if !(st.PeakMem > rt.PeakMem && rt.PeakMem > fu.PeakMem) {
		t.Fatalf("memory ordering wrong: staged=%d roundtrip=%d fusion=%d", st.PeakMem, rt.PeakMem, fu.PeakMem)
	}
	// GPU at least as fast as CPU where it ran.
	gfu := get("fusion", ocl.GPUDevice)
	if !gfu.Failed && gfu.DevTime > fu.DevTime {
		t.Fatalf("GPU fusion (%v) slower than CPU fusion (%v)", gfu.DevTime, fu.DevTime)
	}

	// Tables render every case.
	if rows := len(Fig5Table(results).Rows); rows != 72 {
		t.Fatalf("Fig5 rows %d", rows)
	}
	if rows := len(Fig6Table(results).Rows); rows != 72 {
		t.Fatalf("Fig6 rows %d", rows)
	}
	sum := Summary(results)
	if !strings.Contains(sum, "GPU completed") {
		t.Fatalf("summary missing completion stats:\n%s", sum)
	}
	if strings.Contains(sum, "VIOLATED") {
		t.Fatalf("a paper claim is violated on the small sweep:\n%s", sum)
	}
}

func TestTrimmedMean(t *testing.T) {
	if trimmedMean(nil) != 0 {
		t.Fatal("empty mean")
	}
	// 100, 1, 3, 2, 4 -> sorted 1..100, drop 1 and 100 -> mean(2,3,4) = 3.
	got := trimmedMean([]time.Duration{100, 1, 3, 2, 4})
	if got != 3 {
		t.Fatalf("trimmed mean = %v, want 3", got)
	}
	// Fewer than three measurements: plain mean.
	if trimmedMean([]time.Duration{2, 4}) != 3 {
		t.Fatal("short mean wrong")
	}
}

func TestWriteTrace(t *testing.T) {
	env := ocl.NewEnv(ocl.NewDevice(ocl.TeslaM2050Spec(64)))
	b, err := env.Upload("u", make([]float32, 256), 1)
	if err != nil {
		t.Fatal(err)
	}
	env.Download(b)

	var buf strings.Builder
	if err := WriteTrace(&buf, "NVIDIA Tesla M2050", env.Queue().Events()); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal([]byte(buf.String()), &events); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(events) != 2 {
		t.Fatalf("want 2 trace events, got %d", len(events))
	}
	if events[0]["cat"] != "host-to-device" || events[1]["cat"] != "device-to-host" {
		t.Fatalf("trace categories wrong: %v", events)
	}
	if events[0]["ph"] != "X" {
		t.Fatal("trace events must be complete ('X') events")
	}
	// The second event starts after the first ends (in-order queue).
	ts0, _ := events[0]["ts"].(float64)
	dur0, _ := events[0]["dur"].(float64)
	ts1, _ := events[1]["ts"].(float64)
	if ts1 < ts0+dur0 {
		t.Fatal("trace timeline must be in order")
	}
}

func TestSpeedupTable(t *testing.T) {
	results, err := RunCases(Config{LinScale: 16, MaxGrids: 2, Repeats: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tbl := SpeedupTable(results)
	// 2 grids x 3 expressions x 2 devices with fusion completing = 12 rows.
	if len(tbl.Rows) != 12 {
		t.Fatalf("want 12 rows, got %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		for _, cell := range row[3:] {
			if cell == "-" {
				continue
			}
			var v float64
			if _, err := fmt.Sscanf(cell, "%fx", &v); err != nil {
				t.Fatalf("bad ratio cell %q", cell)
			}
			if v < 0.5 {
				t.Fatalf("fusion should not be slower than half of anything: %q in %v", cell, row)
			}
		}
	}
	c, f := GPUCompletion(results)
	if c+f != 24 {
		t.Fatalf("GPU cases %d + %d != 24", c, f)
	}
}
