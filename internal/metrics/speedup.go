package metrics

import (
	"fmt"

	"dfg/internal/ocl"
)

// SpeedupTable derives the headline ratios of the runtime study from a
// sweep's results: per (expression, device, grid), the speedup of fusion
// over roundtrip and over staged, and fusion's overhead relative to the
// hand-written reference kernel. These are the numbers the paper's §V-D
// discussion talks through.
func SpeedupTable(results []CaseResult) *Table {
	byKey := make(map[string]CaseResult, len(results))
	for _, r := range results {
		byKey[r.Key()] = r
	}
	t := NewTable("Figure 5 (derived): fusion speedups",
		"Expression", "Grid", "Device", "vs roundtrip", "vs staged", "vs reference")
	seen := map[string]bool{}
	for _, r := range results {
		base := fmt.Sprintf("%s/%v/%s", r.Expr, r.Device, r.Grid.Dims)
		if seen[base] {
			continue
		}
		seen[base] = true
		get := func(exec string) (CaseResult, bool) {
			c, ok := byKey[fmt.Sprintf("%s/%s/%v/%s", r.Expr, exec, r.Device, r.Grid.Dims)]
			return c, ok && !c.Failed
		}
		fu, okF := get("fusion")
		if !okF {
			continue
		}
		ratio := func(exec string) string {
			c, ok := get(exec)
			if !ok {
				return "-"
			}
			return fmt.Sprintf("%.2fx", float64(c.DevTime)/float64(fu.DevTime))
		}
		t.Add(r.Expr, r.Grid.Dims.String(), r.Device.String(),
			ratio("roundtrip"), ratio("staged"), ratio("reference"))
	}
	return t
}

// GPUCompletion summarizes the sweep's GPU completion statistics (the
// paper's "106 of 144" sentence).
func GPUCompletion(results []CaseResult) (completed, failed int) {
	for _, r := range results {
		if r.Device != ocl.GPUDevice {
			continue
		}
		if r.Failed {
			failed++
		} else {
			completed++
		}
	}
	return
}
