package metrics

import (
	"strings"
	"testing"

	"dfg/internal/ocl"
)

// TestFig6GPUFailurePattern locks the sweep's GPU failure pattern, the
// reproduction of the paper's gray series. Because grids and device
// memory scale together, the pattern is scale-invariant; 1/16 scale
// keeps the test fast.
//
// Expected shape (matching the paper's Figure 6 narrative):
//   - the CPU completes every test case;
//   - velocity magnitude never fails (all buffers fit);
//   - fusion and the reference kernel complete every case (inputs +
//     output only);
//   - staged is the most constrained: Q-criterion staged fails first
//     (from sub-grid 5 up), vorticity staged from sub-grid 6 up;
//   - roundtrip on gradient expressions fails from sub-grid 6 up (its
//     per-kernel working set holds the float4 gradient plus the
//     coordinate arrays, more than fusion needs — the paper's "roundtrip
//     used more memory than fusion" for these cases).
func TestFig6GPUFailurePattern(t *testing.T) {
	results, err := RunCases(Config{LinScale: 16, Repeats: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 288 { // 12 grids x 3 expressions x 2 devices x 4 executors
		t.Fatalf("want 288 cases, got %d", len(results))
	}

	// Table I row numbers (1-based) from distinct grid sizes in order.
	row := 0
	seen := map[int]int{}
	for _, r := range results {
		if _, ok := seen[r.Grid.Cells]; !ok {
			row++
			seen[r.Grid.Cells] = row
		}
	}

	failures := 0
	for _, r := range results {
		rowNum := seen[r.Grid.Cells]
		if r.Device == ocl.CPUDevice {
			if r.Failed {
				t.Errorf("CPU must complete all cases; %s failed: %s", r.Key(), r.Reason)
			}
			continue
		}
		var wantFail bool
		switch {
		case r.Expr == "VelMag":
			wantFail = false
		case r.Exec == "fusion" || r.Exec == "reference":
			wantFail = false
		case r.Exec == "staged" && r.Expr == "Q-Crit":
			wantFail = rowNum >= 5
		case r.Exec == "staged": // VortMag
			wantFail = rowNum >= 6
		case r.Exec == "roundtrip":
			wantFail = rowNum >= 6
		}
		if r.Failed != wantFail {
			t.Errorf("%s (row %d): failed=%v, want %v (%s)", r.Key(), rowNum, r.Failed, wantFail, r.Reason)
		}
		if r.Failed {
			failures++
		}
	}
	// 29 failed GPU cases of 144 (the paper reports 38 of 144; the
	// ordering — which strategies fail first, and that fusion and the
	// CPU never fail — is what the reproduction preserves).
	if failures != 29 {
		t.Errorf("GPU failures = %d, want 29", failures)
	}

	sum := Summary(results)
	if strings.Contains(sum, "VIOLATED") {
		t.Errorf("paper claims must hold on the full sweep:\n%s", sum)
	}
	if !strings.Contains(sum, "115 of 144") {
		t.Errorf("summary should report 115/144 GPU completions:\n%s", sum)
	}
}

// TestStreamingCompletesEveryGPUCase evaluates the paper's future-work
// proposal: under the streaming strategy, every one of the 144 GPU test
// cases completes — including all 29 that fail under the paper's three
// strategies — because only a tile's working set occupies the device.
func TestStreamingCompletesEveryGPUCase(t *testing.T) {
	results, err := RunCases(Config{LinScale: 16, Repeats: 1, Seed: 1, IncludeStreaming: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 360 { // 12 grids x 3 expressions x 2 devices x 5 executors
		t.Fatalf("want 360 cases, got %d", len(results))
	}
	streamCases := 0
	for _, r := range results {
		if r.Exec != "streaming" {
			continue
		}
		streamCases++
		if r.Failed {
			t.Errorf("streaming case failed: %s (%s)", r.Key(), r.Reason)
		}
	}
	if streamCases != 72 {
		t.Fatalf("want 72 streaming cases, got %d", streamCases)
	}
}
