package rtsim

import (
	"math"
	"testing"

	"dfg/internal/mesh"
	"dfg/internal/vortex"
)

func testMesh() *mesh.Mesh {
	return mesh.MustUniform(mesh.Dims{NX: 24, NY: 24, NZ: 32}, 1.0/24, 1.0/24, 1.0/32)
}

func TestGenerateDeterministic(t *testing.T) {
	m := testMesh()
	a := Generate(m, Options{Seed: 11})
	b := Generate(m, Options{Seed: 11})
	for i := range a.U {
		if a.U[i] != b.U[i] || a.V[i] != b.V[i] || a.W[i] != b.W[i] {
			t.Fatalf("same seed must generate identical fields (cell %d)", i)
		}
	}
	c := Generate(m, Options{Seed: 12})
	same := true
	for i := range a.W {
		if a.W[i] != c.W[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should generate different fields")
	}
}

func TestGenerateFiniteAndStructured(t *testing.T) {
	m := testMesh()
	f := Generate(m, Options{Seed: 3})
	var min, max float32 = math.MaxFloat32, -math.MaxFloat32
	for _, arr := range [][]float32{f.U, f.V, f.W} {
		for _, v := range arr {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				t.Fatal("generated field contains non-finite values")
			}
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
	}
	if max-min < 0.1 {
		t.Fatalf("field should have structure, range [%v, %v]", min, max)
	}
}

func TestGeneratedFieldHasVorticalFeatures(t *testing.T) {
	// The whole point of the synthetic RT field is that the paper's
	// vortex-detection expressions find something: vorticity magnitude
	// must be substantially non-zero and Q must change sign.
	m := testMesh()
	f := Generate(m, Options{Seed: 5})
	vm := vortex.VorticityMagnitude(f.U, f.V, f.W, m)
	q := vortex.QCriterion(f.U, f.V, f.W, m)
	var maxVort float64
	pos, neg := 0, 0
	for i := range vm {
		if d := float64(vm[i]); d > maxVort {
			maxVort = d
		}
		if q[i] > 0 {
			pos++
		}
		if q[i] < 0 {
			neg++
		}
	}
	if maxVort < 1 {
		t.Fatalf("max |vorticity| = %v, expected strong local spin", maxVort)
	}
	if pos == 0 || neg == 0 {
		t.Fatalf("Q-criterion should mark both vortical (Q>0) and strained (Q<0) regions: pos=%d neg=%d", pos, neg)
	}
}

func TestSubField(t *testing.T) {
	m := testMesh()
	f := Generate(m, Options{Seed: 9})
	e := mesh.Extent{Lo: [3]int{4, 6, 8}, Hi: [3]int{12, 14, 20}}
	sub, err := f.SubField(e)
	if err != nil {
		t.Fatal(err)
	}
	ld := e.Dims()
	if sub.Mesh.Dims != ld {
		t.Fatalf("subfield dims %v want %v", sub.Mesh.Dims, ld)
	}
	for k := 0; k < ld.NZ; k++ {
		for j := 0; j < ld.NY; j++ {
			for i := 0; i < ld.NX; i++ {
				g := m.Dims.Index(i+4, j+6, k+8)
				l := ld.Index(i, j, k)
				if sub.U[l] != f.U[g] || sub.V[l] != f.V[g] || sub.W[l] != f.W[g] {
					t.Fatalf("subfield mismatch at (%d,%d,%d)", i, j, k)
				}
			}
		}
	}
	if _, err := f.SubField(mesh.Extent{Lo: [3]int{0, 0, 0}, Hi: [3]int{100, 1, 1}}); err == nil {
		t.Error("out-of-range extent must fail")
	}
}

func TestTableIGridsPaperScale(t *testing.T) {
	grids := TableIGrids(1)
	if len(grids) != 12 {
		t.Fatalf("Table I has 12 sub-grids, got %d", len(grids))
	}
	// Row 1: 192 x 192 x 0256, 9,437,184 cells.
	if grids[0].Dims != (mesh.Dims{NX: 192, NY: 192, NZ: 256}) || grids[0].Cells != 9437184 {
		t.Fatalf("row 1 wrong: %+v", grids[0])
	}
	// Row 12: 192 x 192 x 3072, 113,246,208 cells.
	if grids[11].Dims != (mesh.Dims{NX: 192, NY: 192, NZ: 3072}) || grids[11].Cells != 113246208 {
		t.Fatalf("row 12 wrong: %+v", grids[11])
	}
	// Data sizes track Table I (3 x float64 per cell): row 1 ~218 MB,
	// row 12 ~2.6 GB, within a few percent of the published numbers.
	if mb := float64(grids[0].DataBytes) / (1 << 20); math.Abs(mb-218) > 10 {
		t.Fatalf("row 1 data size %.0f MB, Table I says 218 MB", mb)
	}
	if gb := float64(grids[11].DataBytes) / (1 << 30); math.Abs(gb-2.6) > 0.15 {
		t.Fatalf("row 12 data size %.2f GB, Table I says 2.6 GB", gb)
	}
	// Sizes are strictly increasing.
	for i := 1; i < 12; i++ {
		if grids[i].Cells <= grids[i-1].Cells {
			t.Fatal("grid sizes must increase")
		}
	}
}

func TestTableIGridsScaled(t *testing.T) {
	grids := TableIGrids(4)
	if grids[0].Dims != (mesh.Dims{NX: 48, NY: 48, NZ: 64}) {
		t.Fatalf("scaled row 1: %v", grids[0].Dims)
	}
	if grids[11].Dims != (mesh.Dims{NX: 48, NY: 48, NZ: 768}) {
		t.Fatalf("scaled row 12: %v", grids[11].Dims)
	}
	// Cell counts scale by exactly linScale^3 = 64.
	paper := TableIGrids(1)
	for i := range grids {
		if grids[i].Cells*64 != paper[i].Cells {
			t.Fatalf("row %d: scaled cells %d x64 != paper %d", i, grids[i].Cells, paper[i].Cells)
		}
	}
	if TableIGrids(0)[0].Dims != paper[0].Dims {
		t.Error("linScale < 1 should clamp to 1")
	}
}

func TestGridDataSizeFormat(t *testing.T) {
	g := Grid{DataBytes: 218 << 20}
	if got := g.DataSize(); got != "218 MB" {
		t.Fatalf("MB format: %q", got)
	}
	g = Grid{DataBytes: 2792402821} // ~2.6 GiB
	if got := g.DataSize(); got != "2.6 GB" {
		t.Fatalf("GB format: %q", got)
	}
}

func TestFullTimeStep(t *testing.T) {
	domain, parts := FullTimeStep(1)
	if domain != (mesh.Dims{NX: 3072, NY: 3072, NZ: 3072}) {
		t.Fatalf("full domain: %v", domain)
	}
	boxes, err := mesh.Decompose(domain, parts)
	if err != nil {
		t.Fatal(err)
	}
	if len(boxes) != 3072 {
		t.Fatalf("paper decomposition has 3072 sub-grids, got %d", len(boxes))
	}
	if boxes[0].Dims() != (mesh.Dims{NX: 192, NY: 192, NZ: 256}) {
		t.Fatalf("sub-grid dims: %v", boxes[0].Dims())
	}
	sd, sp := FullTimeStep(4)
	sb, err := mesh.Decompose(sd, sp)
	if err != nil {
		t.Fatal(err)
	}
	if len(sb) != 3072 || sb[0].Dims() != (mesh.Dims{NX: 48, NY: 48, NZ: 64}) {
		t.Fatalf("scaled decomposition: %d blocks of %v", len(sb), sb[0].Dims())
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	o.defaults()
	if o.Modes != 8 || o.VortexStrength != 1 || o.PlumeStrength != 1 || o.ShearStrength != 0.5 {
		t.Fatalf("defaults wrong: %+v", o)
	}
}
