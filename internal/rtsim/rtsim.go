// Package rtsim generates deterministic synthetic velocity fields that
// stand in for the paper's 3072^3 DNS Rayleigh–Taylor instability data
// set (Cabot & Cook, LLNL), which is not publicly available.
//
// The generated field mixes three ingredients so the vortex-detection
// expressions have realistic structure to find:
//
//   - a Taylor–Green-style cellular vortex component (local spin, so
//     vorticity magnitude and Q-criterion light up),
//   - a Rayleigh–Taylor bubble/spike plume component centred on the
//     mixing layer at mid-height, built from seeded random interface
//     modes, and
//   - a shear profile across the mixing layer.
//
// The runtime and memory results of the paper depend only on array
// sizes, never on values; the synthetic field preserves the sizes
// (Table I sub-grids) and gives the physics something real to measure.
package rtsim

import (
	"fmt"
	"math"
	"math/rand"

	"dfg/internal/mesh"
)

// Field is one time step's cell-centered velocity data on a mesh — the
// inputs the host application hands the framework (u, v, w plus the
// mesh's coordinate arrays).
type Field struct {
	Mesh    *mesh.Mesh
	U, V, W []float32
}

// mode is one seeded perturbation mode of the RT interface.
type mode struct {
	kx, ky float64 // horizontal wavenumbers
	amp    float64 // amplitude
	phase  float64
}

// Options control field generation.
type Options struct {
	// Seed selects the random interface modes; equal seeds give equal
	// fields for equal meshes.
	Seed int64
	// Modes is the number of RT interface perturbation modes (default 8).
	Modes int
	// VortexStrength scales the Taylor–Green component (default 1).
	VortexStrength float64
	// PlumeStrength scales the RT plume component (default 1).
	PlumeStrength float64
	// ShearStrength scales the shear across the mixing layer (default 0.5).
	ShearStrength float64
}

func (o *Options) defaults() {
	if o.Modes <= 0 {
		o.Modes = 8
	}
	if o.VortexStrength == 0 {
		o.VortexStrength = 1
	}
	if o.PlumeStrength == 0 {
		o.PlumeStrength = 1
	}
	if o.ShearStrength == 0 {
		o.ShearStrength = 0.5
	}
}

// Generate builds the synthetic velocity field on the mesh.
func Generate(m *mesh.Mesh, opts Options) *Field {
	opts.defaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	modes := make([]mode, opts.Modes)
	for i := range modes {
		modes[i] = mode{
			kx:    float64(1 + rng.Intn(4)),
			ky:    float64(1 + rng.Intn(4)),
			amp:   (0.5 + 0.5*rng.Float64()) / float64(opts.Modes),
			phase: 2 * math.Pi * rng.Float64(),
		}
	}

	d := m.Dims
	n := d.Cells()
	f := &Field{
		Mesh: m,
		U:    make([]float32, n),
		V:    make([]float32, n),
		W:    make([]float32, n),
	}

	cx, cy, cz := m.CellCenters()
	// Normalize cell centers to [0, 2*pi) per axis so the field's
	// structure is resolution- and extent-independent.
	tx := normalize(cx, m.X[0], m.X[len(m.X)-1])
	ty := normalize(cy, m.Y[0], m.Y[len(m.Y)-1])
	tz := normalize(cz, m.Z[0], m.Z[len(m.Z)-1])

	vs := opts.VortexStrength
	ps := opts.PlumeStrength
	ss := opts.ShearStrength

	for k := 0; k < d.NZ; k++ {
		z := tz[k]
		zc := z - math.Pi           // distance from the mixing layer at mid-height
		layer := math.Exp(-zc * zc) // plume envelope around the interface
		shear := ss * math.Tanh(2*zc)
		for j := 0; j < d.NY; j++ {
			y := ty[j]
			for i := 0; i < d.NX; i++ {
				x := tx[i]

				// Taylor–Green vortex component (divergence-free).
				u := vs * math.Sin(x) * math.Cos(y) * math.Cos(z)
				v := -vs * math.Cos(x) * math.Sin(y) * math.Cos(z)
				w := 0.0

				// RT plumes: vertical velocity from the interface modes,
				// with compensating horizontal flow.
				for _, md := range modes {
					s := md.amp * math.Sin(md.kx*x+md.phase) * math.Sin(md.ky*y+md.phase)
					w += ps * s * layer
					u += 0.25 * ps * md.amp * math.Cos(md.kx*x+md.phase) * layer
					v += 0.25 * ps * md.amp * math.Cos(md.ky*y+md.phase) * layer
				}

				u += shear

				idx := d.Index(i, j, k)
				f.U[idx] = float32(u)
				f.V[idx] = float32(v)
				f.W[idx] = float32(w)
			}
		}
	}
	return f
}

// normalize maps coordinates in [lo, hi] to [0, 2*pi].
func normalize(c []float32, lo, hi float32) []float64 {
	out := make([]float64, len(c))
	span := float64(hi - lo)
	if span <= 0 {
		span = 1
	}
	for i, v := range c {
		out[i] = 2 * math.Pi * float64(v-lo) / span
	}
	return out
}

// SubField extracts the portion of the field covered by the (possibly
// ghost-grown) extent, with a submesh carrying the matching coordinates.
func (f *Field) SubField(e mesh.Extent) (*Field, error) {
	sm, err := mesh.Submesh(f.Mesh, e)
	if err != nil {
		return nil, err
	}
	u, err := mesh.ExtractField(f.U, f.Mesh.Dims, e)
	if err != nil {
		return nil, err
	}
	v, err := mesh.ExtractField(f.V, f.Mesh.Dims, e)
	if err != nil {
		return nil, err
	}
	w, err := mesh.ExtractField(f.W, f.Mesh.Dims, e)
	if err != nil {
		return nil, err
	}
	return &Field{Mesh: sm, U: u, V: v, W: w}, nil
}

// Grid is one row of the paper's Table I: a sub-grid of the RT time step
// used for the single-device evaluation.
type Grid struct {
	Dims mesh.Dims
	// Cells is the cell count (Table I column 2).
	Cells int
	// DataBytes is the on-disk size of the velocity data (three
	// double-precision components per cell, which reproduces Table I's
	// "Data Size" column to within rounding).
	DataBytes int64
}

// DataSize formats DataBytes the way Table I prints it (MB below 1 GB).
func (g Grid) DataSize() string {
	const mb = 1 << 20
	const gb = 1 << 30
	if g.DataBytes >= gb {
		return fmt.Sprintf("%.1f GB", float64(g.DataBytes)/float64(gb))
	}
	return fmt.Sprintf("%.0f MB", float64(g.DataBytes)/float64(mb))
}

// TableIGrids returns the paper's twelve evaluation sub-grids,
// 192 x 192 x (256k) for k = 1..12, with every linear extent divided by
// linScale (device memory in the experiments is divided by linScale^3,
// preserving exactly which cases fit on the GPU). linScale 1 is the
// paper's scale; experiments default to 4.
func TableIGrids(linScale int) []Grid {
	if linScale < 1 {
		linScale = 1
	}
	out := make([]Grid, 0, 12)
	for k := 1; k <= 12; k++ {
		d := mesh.Dims{NX: 192 / linScale, NY: 192 / linScale, NZ: 256 * k / linScale}
		out = append(out, Grid{
			Dims:      d,
			Cells:     d.Cells(),
			DataBytes: int64(d.Cells()) * 3 * 8,
		})
	}
	return out
}

// FullTimeStep describes the distributed-memory evaluation data set: the
// complete 3072^3 (27 billion cell) time step and its original
// decomposition into 3072 sub-grids of 192 x 192 x 256, scaled by
// linScale as in TableIGrids.
func FullTimeStep(linScale int) (domain mesh.Dims, parts [3]int) {
	if linScale < 1 {
		linScale = 1
	}
	return mesh.Dims{NX: 3072 / linScale, NY: 3072 / linScale, NZ: 3072 / linScale}, [3]int{16, 16, 12}
}
