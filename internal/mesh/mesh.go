// Package mesh provides the 3-D rectilinear mesh substrate used by the
// derived-field framework: cell-centered field layout, point coordinate
// arrays, cell-center geometry, and the gradient stencil that the grad3d
// primitive and the reference kernels are built on. It also models ghost
// (halo) cell regions for the distributed-memory evaluation.
package mesh

import (
	"fmt"
)

// Dims is the cell extent of a rectilinear mesh. Fields are cell-centered
// (one value per cell) and coordinate arrays are point-centered (Nx+1
// points along X, and so on), matching the paper's RT data layout.
type Dims struct {
	NX, NY, NZ int
}

// Cells returns the total number of cells.
func (d Dims) Cells() int { return d.NX * d.NY * d.NZ }

// Index linearizes cell coordinates in X-fastest order, the layout VTK
// and the paper's NumPy arrays use.
func (d Dims) Index(i, j, k int) int { return i + d.NX*(j+d.NY*k) }

// Coords inverts Index.
func (d Dims) Coords(idx int) (i, j, k int) {
	i = idx % d.NX
	idx /= d.NX
	j = idx % d.NY
	k = idx / d.NY
	return
}

// Contains reports whether the cell coordinates are inside the extent.
func (d Dims) Contains(i, j, k int) bool {
	return i >= 0 && i < d.NX && j >= 0 && j < d.NY && k >= 0 && k < d.NZ
}

// String formats the dims as in the paper's Table I ("192 x 192 x 0256").
func (d Dims) String() string { return fmt.Sprintf("%d x %d x %04d", d.NX, d.NY, d.NZ) }

// Validate reports an error for non-positive extents.
func (d Dims) Validate() error {
	if d.NX <= 0 || d.NY <= 0 || d.NZ <= 0 {
		return fmt.Errorf("mesh: invalid dims %dx%dx%d", d.NX, d.NY, d.NZ)
	}
	return nil
}

// Mesh is a 3-D rectilinear mesh: cell extents plus per-axis point
// coordinate arrays (len NX+1, NY+1, NZ+1). Spacing may be non-uniform.
type Mesh struct {
	Dims    Dims
	X, Y, Z []float32 // point coordinates along each axis
}

// NewUniform builds a mesh with uniform spacing dx, dy, dz and origin 0.
func NewUniform(d Dims, dx, dy, dz float32) (*Mesh, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if dx <= 0 || dy <= 0 || dz <= 0 {
		return nil, fmt.Errorf("mesh: spacing must be positive, got %g %g %g", dx, dy, dz)
	}
	m := &Mesh{
		Dims: d,
		X:    make([]float32, d.NX+1),
		Y:    make([]float32, d.NY+1),
		Z:    make([]float32, d.NZ+1),
	}
	for i := range m.X {
		m.X[i] = float32(i) * dx
	}
	for j := range m.Y {
		m.Y[j] = float32(j) * dy
	}
	for k := range m.Z {
		m.Z[k] = float32(k) * dz
	}
	return m, nil
}

// NewRectilinear builds a mesh from explicit point coordinate arrays,
// which must be strictly increasing and sized to the extents.
func NewRectilinear(x, y, z []float32) (*Mesh, error) {
	d := Dims{NX: len(x) - 1, NY: len(y) - 1, NZ: len(z) - 1}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	for name, c := range map[string][]float32{"x": x, "y": y, "z": z} {
		for i := 1; i < len(c); i++ {
			if c[i] <= c[i-1] {
				return nil, fmt.Errorf("mesh: %s coordinates not strictly increasing at %d", name, i)
			}
		}
	}
	return &Mesh{Dims: d, X: x, Y: y, Z: z}, nil
}

// MustUniform is NewUniform for tests and examples; it panics on error.
func MustUniform(d Dims, dx, dy, dz float32) *Mesh {
	m, err := NewUniform(d, dx, dy, dz)
	if err != nil {
		panic(err)
	}
	return m
}

// Cells returns the total number of cells.
func (m *Mesh) Cells() int { return m.Dims.Cells() }

// CellCenters returns per-axis cell-center coordinate arrays (len NX, NY,
// NZ): the midpoints of consecutive points. Gradients of cell-centered
// fields difference across cell centers.
func (m *Mesh) CellCenters() (cx, cy, cz []float32) {
	cx = centers(m.X)
	cy = centers(m.Y)
	cz = centers(m.Z)
	return
}

func centers(pts []float32) []float32 {
	c := make([]float32, len(pts)-1)
	for i := range c {
		c[i] = 0.5 * (pts[i] + pts[i+1])
	}
	return c
}

// CellCenterFields expands the per-axis cell-center coordinates into
// three problem-sized per-cell arrays — the "x, y, z input field arrays"
// the framework's grad3d primitive consumes. This is the form a host
// application like VisIt hands coordinate data to a Python expression
// (one value per cell), and it is what makes the vorticity-magnitude and
// Q-criterion runs carry 6 problem-sized inputs in the paper's memory
// study.
func (m *Mesh) CellCenterFields() (x, y, z []float32) {
	cx, cy, cz := m.CellCenters()
	d := m.Dims
	n := d.Cells()
	x = make([]float32, n)
	y = make([]float32, n)
	z = make([]float32, n)
	idx := 0
	for k := 0; k < d.NZ; k++ {
		for j := 0; j < d.NY; j++ {
			for i := 0; i < d.NX; i++ {
				x[idx] = cx[i]
				y[idx] = cy[j]
				z[idx] = cz[k]
				idx++
			}
		}
	}
	return
}

// FieldBytes returns the size in bytes of one scalar cell-centered
// float32 field on the mesh.
func (m *Mesh) FieldBytes() int64 { return int64(m.Cells()) * 4 }

// Validate checks extents and coordinate array lengths.
func (m *Mesh) Validate() error {
	if err := m.Dims.Validate(); err != nil {
		return err
	}
	if len(m.X) != m.Dims.NX+1 || len(m.Y) != m.Dims.NY+1 || len(m.Z) != m.Dims.NZ+1 {
		return fmt.Errorf("mesh: coordinate arrays sized %d/%d/%d do not match dims %v",
			len(m.X), len(m.Y), len(m.Z), m.Dims)
	}
	return nil
}
