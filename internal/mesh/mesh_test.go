package mesh

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDimsIndexCoordsRoundTrip(t *testing.T) {
	d := Dims{NX: 7, NY: 5, NZ: 3}
	seen := make(map[int]bool)
	for k := 0; k < d.NZ; k++ {
		for j := 0; j < d.NY; j++ {
			for i := 0; i < d.NX; i++ {
				idx := d.Index(i, j, k)
				if idx < 0 || idx >= d.Cells() {
					t.Fatalf("index out of range: %d", idx)
				}
				if seen[idx] {
					t.Fatalf("index collision at %d", idx)
				}
				seen[idx] = true
				gi, gj, gk := d.Coords(idx)
				if gi != i || gj != j || gk != k {
					t.Fatalf("coords(%d) = %d,%d,%d want %d,%d,%d", idx, gi, gj, gk, i, j, k)
				}
			}
		}
	}
	if len(seen) != d.Cells() {
		t.Fatalf("index did not cover all %d cells", d.Cells())
	}
}

func TestDimsIndexCoordsProperty(t *testing.T) {
	f := func(a, b, c uint8, pick uint16) bool {
		d := Dims{NX: int(a%13) + 1, NY: int(b%13) + 1, NZ: int(c%13) + 1}
		idx := int(pick) % d.Cells()
		i, j, k := d.Coords(idx)
		return d.Contains(i, j, k) && d.Index(i, j, k) == idx
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDimsStringMatchesTableI(t *testing.T) {
	d := Dims{NX: 192, NY: 192, NZ: 256}
	if got := d.String(); got != "192 x 192 x 0256" {
		t.Fatalf("dims string %q does not match Table I format", got)
	}
	if d.Cells() != 9437184 {
		t.Fatalf("192x192x256 should be 9,437,184 cells (Table I row 1), got %d", d.Cells())
	}
}

func TestDimsValidate(t *testing.T) {
	if err := (Dims{1, 1, 1}).Validate(); err != nil {
		t.Fatal(err)
	}
	for _, d := range []Dims{{0, 1, 1}, {1, -1, 1}, {1, 1, 0}} {
		if err := d.Validate(); err == nil {
			t.Errorf("dims %v should be invalid", d)
		}
	}
}

func TestNewUniform(t *testing.T) {
	m, err := NewUniform(Dims{4, 3, 2}, 0.5, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(m.X) != 5 || len(m.Y) != 4 || len(m.Z) != 3 {
		t.Fatalf("coordinate lengths: %d %d %d", len(m.X), len(m.Y), len(m.Z))
	}
	if m.X[4] != 2.0 || m.Y[3] != 3.0 || m.Z[2] != 4.0 {
		t.Fatalf("coordinate values wrong: %v %v %v", m.X, m.Y, m.Z)
	}
	if m.FieldBytes() != 4*3*2*4 {
		t.Fatalf("field bytes: %d", m.FieldBytes())
	}
	if _, err := NewUniform(Dims{0, 1, 1}, 1, 1, 1); err == nil {
		t.Error("invalid dims must fail")
	}
	if _, err := NewUniform(Dims{1, 1, 1}, 0, 1, 1); err == nil {
		t.Error("zero spacing must fail")
	}
}

func TestNewRectilinear(t *testing.T) {
	m, err := NewRectilinear([]float32{0, 1, 3}, []float32{0, 2}, []float32{0, 1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if m.Dims != (Dims{2, 1, 3}) {
		t.Fatalf("dims: %v", m.Dims)
	}
	if _, err := NewRectilinear([]float32{0, 1, 1}, []float32{0, 1}, []float32{0, 1}); err == nil {
		t.Error("non-increasing coordinates must fail")
	}
	if _, err := NewRectilinear([]float32{0}, []float32{0, 1}, []float32{0, 1}); err == nil {
		t.Error("single-point axis must fail")
	}
}

func TestCellCenters(t *testing.T) {
	m := MustUniform(Dims{3, 2, 2}, 2, 2, 2)
	cx, cy, cz := m.CellCenters()
	want := []float32{1, 3, 5}
	for i, w := range want {
		if cx[i] != w {
			t.Fatalf("cx[%d] = %v want %v", i, cx[i], w)
		}
	}
	if len(cy) != 2 || len(cz) != 2 || cy[1] != 3 || cz[0] != 1 {
		t.Fatalf("cy=%v cz=%v", cy, cz)
	}
}

// fillLinear sets f = a*x + b*y + c*z at cell centers.
func fillLinear(m *Mesh, a, b, c float32) []float32 {
	cx, cy, cz := m.CellCenters()
	f := make([]float32, m.Cells())
	d := m.Dims
	for k := 0; k < d.NZ; k++ {
		for j := 0; j < d.NY; j++ {
			for i := 0; i < d.NX; i++ {
				f[d.Index(i, j, k)] = a*cx[i] + b*cy[j] + c*cz[k]
			}
		}
	}
	return f
}

func TestGradientExactOnLinearField(t *testing.T) {
	// Central and one-sided differences are exact for linear fields, so
	// every cell — including boundaries — must recover (a, b, c).
	for _, tc := range []struct {
		name string
		m    *Mesh
	}{
		{"uniform", MustUniform(Dims{6, 5, 4}, 0.7, 1.1, 0.4)},
		{"nonuniform", func() *Mesh {
			x := []float32{0, 0.5, 1.7, 2.0, 4.1, 4.5, 6.0}
			y := []float32{-1, 0, 2, 2.5, 5}
			z := []float32{0, 3, 3.5, 7}
			m, _ := NewRectilinear(x, y, z)
			return m
		}()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const a, b, c = 2.5, -1.25, 0.75
			f := fillLinear(tc.m, a, b, c)
			g := Gradient3D(f, tc.m)
			for idx := 0; idx < tc.m.Cells(); idx++ {
				gx, gy, gz, pad := g[4*idx], g[4*idx+1], g[4*idx+2], g[4*idx+3]
				if !close32(gx, a, 1e-4) || !close32(gy, b, 1e-4) || !close32(gz, c, 1e-4) {
					i, j, k := tc.m.Dims.Coords(idx)
					t.Fatalf("cell (%d,%d,%d): grad = (%v,%v,%v) want (%v,%v,%v)", i, j, k, gx, gy, gz, a, b, c)
				}
				if pad != 0 {
					t.Fatal("float4 pad component must be zero")
				}
			}
		})
	}
}

func TestGradientQuadraticInterior(t *testing.T) {
	// Central differencing is exact for quadratics on a uniform mesh at
	// interior cells: d/dx (x^2) = 2x.
	m := MustUniform(Dims{8, 4, 4}, 0.5, 0.5, 0.5)
	cx, _, _ := m.CellCenters()
	d := m.Dims
	f := make([]float32, m.Cells())
	for k := 0; k < d.NZ; k++ {
		for j := 0; j < d.NY; j++ {
			for i := 0; i < d.NX; i++ {
				f[d.Index(i, j, k)] = cx[i] * cx[i]
			}
		}
	}
	g := Gradient3D(f, m)
	for i := 1; i < d.NX-1; i++ {
		idx := d.Index(i, 2, 2)
		if want := 2 * cx[i]; !close32(g[4*idx], want, 1e-3) {
			t.Fatalf("interior d/dx x^2 at i=%d: got %v want %v", i, g[4*idx], want)
		}
	}
}

func TestGradientDegenerateAxis(t *testing.T) {
	// A single-cell axis has no neighbours; the gradient component must
	// be zero rather than dividing by a zero spacing.
	m := MustUniform(Dims{4, 1, 1}, 1, 1, 1)
	f := []float32{1, 2, 4, 8}
	g := Gradient3D(f, m)
	for idx := 0; idx < 4; idx++ {
		if g[4*idx+1] != 0 || g[4*idx+2] != 0 {
			t.Fatalf("degenerate axes must have zero gradient, got %v %v", g[4*idx+1], g[4*idx+2])
		}
	}
	// X still differences: one-sided at ends, central inside.
	if !close32(g[0], 1, 1e-6) { // (2-1)/1
		t.Fatalf("left one-sided: %v", g[0])
	}
	if !close32(g[4], 1.5, 1e-6) { // (4-1)/2
		t.Fatalf("central at i=1: %v", g[4])
	}
	if !close32(g[12], 4, 1e-6) { // (8-4)/1
		t.Fatalf("right one-sided: %v", g[12])
	}
}

func close32(got, want, tol float32) bool {
	return float32(math.Abs(float64(got-want))) <= tol
}

func TestDecomposeCoversDomainDisjointly(t *testing.T) {
	f := func(a, b, c, pa, pb, pc uint8) bool {
		d := Dims{NX: int(a%17) + 1, NY: int(b%17) + 1, NZ: int(c%17) + 1}
		parts := [3]int{int(pa)%d.NX + 1, int(pb)%d.NY + 1, int(pc)%d.NZ + 1}
		boxes, err := Decompose(d, parts)
		if err != nil {
			return false
		}
		if len(boxes) != parts[0]*parts[1]*parts[2] {
			return false
		}
		count := make([]int, d.Cells())
		for _, e := range boxes {
			for k := e.Lo[2]; k < e.Hi[2]; k++ {
				for j := e.Lo[1]; j < e.Hi[1]; j++ {
					for i := e.Lo[0]; i < e.Hi[0]; i++ {
						count[d.Index(i, j, k)]++
					}
				}
			}
		}
		for _, n := range count {
			if n != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDecomposePaperLayout(t *testing.T) {
	// The paper's 3072^3 mesh decomposes into 3072 sub-grids of
	// 192x192x256: a 16 x 16 x 12 block layout.
	d := Dims{3072, 3072, 3072}
	boxes, err := Decompose(d, [3]int{16, 16, 12})
	if err != nil {
		t.Fatal(err)
	}
	if len(boxes) != 3072 {
		t.Fatalf("want 3072 sub-grids, got %d", len(boxes))
	}
	for _, e := range boxes {
		if e.Dims() != (Dims{192, 192, 256}) {
			t.Fatalf("sub-grid dims %v, want 192x192x256", e.Dims())
		}
	}
}

func TestDecomposeErrors(t *testing.T) {
	if _, err := Decompose(Dims{4, 4, 4}, [3]int{5, 1, 1}); err == nil {
		t.Error("more parts than cells must fail")
	}
	if _, err := Decompose(Dims{4, 4, 4}, [3]int{0, 1, 1}); err == nil {
		t.Error("zero parts must fail")
	}
}

func TestExtentGrowClipsAtDomain(t *testing.T) {
	domain := Dims{10, 10, 10}
	e := Extent{Lo: [3]int{0, 4, 8}, Hi: [3]int{2, 6, 10}}
	g := e.Grow(1, domain)
	want := Extent{Lo: [3]int{0, 3, 7}, Hi: [3]int{3, 7, 10}}
	if g != want {
		t.Fatalf("grow: got %v want %v", g, want)
	}
	// Growing by zero is the identity.
	if e.Grow(0, domain) != e {
		t.Fatal("grow(0) must be identity")
	}
}

func TestExtentLocalTo(t *testing.T) {
	outer := Extent{Lo: [3]int{2, 3, 4}, Hi: [3]int{8, 9, 10}}
	inner := Extent{Lo: [3]int{3, 4, 5}, Hi: [3]int{7, 8, 9}}
	l := inner.LocalTo(outer)
	want := Extent{Lo: [3]int{1, 1, 1}, Hi: [3]int{5, 5, 5}}
	if l != want {
		t.Fatalf("localTo: got %v want %v", l, want)
	}
}

func TestExtentContains(t *testing.T) {
	e := Extent{Lo: [3]int{1, 1, 1}, Hi: [3]int{3, 3, 3}}
	if !e.Contains(1, 2, 2) || e.Contains(3, 2, 2) || e.Contains(0, 1, 1) {
		t.Fatal("extent containment wrong")
	}
	if e.Cells() != 8 {
		t.Fatalf("extent cells: %d", e.Cells())
	}
}

func TestExtractField(t *testing.T) {
	gd := Dims{4, 3, 2}
	global := make([]float32, gd.Cells())
	for i := range global {
		global[i] = float32(i)
	}
	e := Extent{Lo: [3]int{1, 1, 0}, Hi: [3]int{3, 3, 2}}
	got, err := ExtractField(global, gd, e)
	if err != nil {
		t.Fatal(err)
	}
	ld := e.Dims()
	for k := 0; k < ld.NZ; k++ {
		for j := 0; j < ld.NY; j++ {
			for i := 0; i < ld.NX; i++ {
				want := global[gd.Index(i+1, j+1, k)]
				if got[ld.Index(i, j, k)] != want {
					t.Fatalf("extract mismatch at (%d,%d,%d)", i, j, k)
				}
			}
		}
	}
	if _, err := ExtractField(global[:5], gd, e); err == nil {
		t.Error("short global field must fail")
	}
}

func TestSubmesh(t *testing.T) {
	m := MustUniform(Dims{8, 6, 4}, 1, 2, 3)
	e := Extent{Lo: [3]int{2, 1, 0}, Hi: [3]int{5, 4, 2}}
	sm, err := Submesh(m, e)
	if err != nil {
		t.Fatal(err)
	}
	if sm.Dims != (Dims{3, 3, 2}) {
		t.Fatalf("submesh dims %v", sm.Dims)
	}
	if err := sm.Validate(); err != nil {
		t.Fatal(err)
	}
	if sm.X[0] != 2 || sm.X[3] != 5 || sm.Y[0] != 2 || sm.Z[2] != 6 {
		t.Fatalf("submesh coords wrong: X=%v Y=%v Z=%v", sm.X, sm.Y, sm.Z)
	}
	if _, err := Submesh(m, Extent{Lo: [3]int{0, 0, 0}, Hi: [3]int{9, 1, 1}}); err == nil {
		t.Error("out-of-range extent must fail")
	}
}

// TestGhostGradientMatchesGlobal is the core distributed-memory
// invariant: gradients computed on a ghost-grown block agree with the
// global gradient on the block's interior.
func TestGhostGradientMatchesGlobal(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	gd := Dims{12, 10, 8}
	m := MustUniform(gd, 0.5, 0.5, 0.5)
	f := make([]float32, gd.Cells())
	for i := range f {
		f[i] = rng.Float32()
	}
	want := Gradient3D(f, m)

	boxes, err := Decompose(gd, [3]int{3, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, box := range boxes {
		grown := box.Grow(1, gd)
		sub, err := Submesh(m, grown)
		if err != nil {
			t.Fatal(err)
		}
		sf, err := ExtractField(f, gd, grown)
		if err != nil {
			t.Fatal(err)
		}
		g := Gradient3D(sf, sub)
		local := box.LocalTo(grown)
		ld := grown.Dims()
		for k := local.Lo[2]; k < local.Hi[2]; k++ {
			for j := local.Lo[1]; j < local.Hi[1]; j++ {
				for i := local.Lo[0]; i < local.Hi[0]; i++ {
					lidx := ld.Index(i, j, k)
					gidx := gd.Index(i+grown.Lo[0], j+grown.Lo[1], k+grown.Lo[2])
					for c := 0; c < 3; c++ {
						if !close32(g[4*lidx+c], want[4*gidx+c], 1e-5) {
							t.Fatalf("block %v interior gradient mismatch at local (%d,%d,%d) comp %d: %v vs %v",
								box, i, j, k, c, g[4*lidx+c], want[4*gidx+c])
						}
					}
				}
			}
		}
	}
}

// TestGradientConvergenceOrder verifies the stencil's order of accuracy:
// on a smooth field, halving the spacing must shrink the interior error
// roughly 4x (second-order central differences) and the boundary error
// roughly 2x (first-order one-sided differences).
func TestGradientConvergenceOrder(t *testing.T) {
	errAt := func(n int) (interior, boundary float64) {
		m := MustUniform(Dims{NX: n, NY: 4, NZ: 4}, 2.0/float32(n), 0.5, 0.5)
		cx, _, _ := m.CellCenters()
		d := m.Dims
		f := make([]float32, m.Cells())
		for k := 0; k < d.NZ; k++ {
			for j := 0; j < d.NY; j++ {
				for i := 0; i < d.NX; i++ {
					x := float64(cx[i])
					f[d.Index(i, j, k)] = float32(math.Sin(3 * x))
				}
			}
		}
		g := Gradient3D(f, m)
		for i := 0; i < d.NX; i++ {
			idx := d.Index(i, 2, 2)
			want := 3 * math.Cos(3*float64(cx[i]))
			e := math.Abs(float64(g[4*idx]) - want)
			if i == 0 || i == d.NX-1 {
				if e > boundary {
					boundary = e
				}
			} else if e > interior {
				interior = e
			}
		}
		return
	}

	i32, b32 := errAt(32)
	i64, b64 := errAt(64)
	if ratio := i32 / i64; ratio < 3.2 || ratio > 4.8 {
		t.Errorf("interior error ratio %.2f, want ~4 (second order): %g -> %g", ratio, i32, i64)
	}
	if ratio := b32 / b64; ratio < 1.6 || ratio > 2.6 {
		t.Errorf("boundary error ratio %.2f, want ~2 (first order): %g -> %g", ratio, b32, b64)
	}
}

func TestCellCenterFields(t *testing.T) {
	m := MustUniform(Dims{NX: 3, NY: 2, NZ: 2}, 2, 4, 6)
	x, y, z := m.CellCenterFields()
	d := m.Dims
	if len(x) != d.Cells() || len(y) != d.Cells() || len(z) != d.Cells() {
		t.Fatal("coordinate fields must be problem sized")
	}
	cx, cy, cz := m.CellCenters()
	for k := 0; k < d.NZ; k++ {
		for j := 0; j < d.NY; j++ {
			for i := 0; i < d.NX; i++ {
				idx := d.Index(i, j, k)
				if x[idx] != cx[i] || y[idx] != cy[j] || z[idx] != cz[k] {
					t.Fatalf("coordinate field wrong at (%d,%d,%d)", i, j, k)
				}
			}
		}
	}
}

func TestMeshValidateBranches(t *testing.T) {
	m := MustUniform(Dims{NX: 2, NY: 2, NZ: 2}, 1, 1, 1)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := *m
	bad.X = bad.X[:2] // wrong length
	if err := bad.Validate(); err == nil {
		t.Error("short coordinate array must fail validation")
	}
	bad2 := *m
	bad2.Dims.NX = 0
	if err := bad2.Validate(); err == nil {
		t.Error("invalid dims must fail validation")
	}
}

func TestMustUniformPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustUniform must panic on bad input")
		}
	}()
	MustUniform(Dims{NX: 0, NY: 1, NZ: 1}, 1, 1, 1)
}
