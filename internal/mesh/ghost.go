package mesh

import "fmt"

// Extent is a half-open box of cells [Lo, Hi) in the global cell index
// space of a larger mesh. The distributed-memory evaluation decomposes
// the paper's 3072^3 mesh into 3072 such sub-grids and grows each by a
// ghost stencil so gradients are correct at block boundaries.
type Extent struct {
	Lo, Hi [3]int
}

// Dims returns the cell extent of the box.
func (e Extent) Dims() Dims {
	return Dims{NX: e.Hi[0] - e.Lo[0], NY: e.Hi[1] - e.Lo[1], NZ: e.Hi[2] - e.Lo[2]}
}

// Cells returns the number of cells in the box.
func (e Extent) Cells() int { return e.Dims().Cells() }

// Contains reports whether the global cell (i, j, k) lies in the box.
func (e Extent) Contains(i, j, k int) bool {
	return i >= e.Lo[0] && i < e.Hi[0] &&
		j >= e.Lo[1] && j < e.Hi[1] &&
		k >= e.Lo[2] && k < e.Hi[2]
}

// Grow expands the box by g ghost layers on every face, clipped to the
// global domain — exactly what VisIt's ghost-data generation hands the
// framework: interior cells plus a stencil of duplicated neighbour cells.
func (e Extent) Grow(g int, domain Dims) Extent {
	max := [3]int{domain.NX, domain.NY, domain.NZ}
	out := e
	for a := 0; a < 3; a++ {
		out.Lo[a] -= g
		if out.Lo[a] < 0 {
			out.Lo[a] = 0
		}
		out.Hi[a] += g
		if out.Hi[a] > max[a] {
			out.Hi[a] = max[a]
		}
	}
	return out
}

// LocalTo translates the box into the local cell index space of an
// enclosing box (typically the ghost-grown block), so a rank can find its
// interior region inside its haloed arrays.
func (e Extent) LocalTo(outer Extent) Extent {
	var out Extent
	for a := 0; a < 3; a++ {
		out.Lo[a] = e.Lo[a] - outer.Lo[a]
		out.Hi[a] = e.Hi[a] - outer.Lo[a]
	}
	return out
}

// Decompose splits the domain into parts[0] x parts[1] x parts[2] boxes.
// Extents need not divide evenly; earlier boxes get the extra cells.
// Boxes are returned in X-fastest order.
func Decompose(domain Dims, parts [3]int) ([]Extent, error) {
	n := [3]int{domain.NX, domain.NY, domain.NZ}
	for a := 0; a < 3; a++ {
		if parts[a] < 1 || parts[a] > n[a] {
			return nil, fmt.Errorf("mesh: cannot split extent %d into %d parts (axis %d)", n[a], parts[a], a)
		}
	}
	cuts := func(extent, p int) []int {
		c := make([]int, p+1)
		base, rem := extent/p, extent%p
		for i := 1; i <= p; i++ {
			c[i] = c[i-1] + base
			if i <= rem {
				c[i]++
			}
		}
		return c
	}
	cx, cy, cz := cuts(n[0], parts[0]), cuts(n[1], parts[1]), cuts(n[2], parts[2])
	out := make([]Extent, 0, parts[0]*parts[1]*parts[2])
	for k := 0; k < parts[2]; k++ {
		for j := 0; j < parts[1]; j++ {
			for i := 0; i < parts[0]; i++ {
				out = append(out, Extent{
					Lo: [3]int{cx[i], cy[j], cz[k]},
					Hi: [3]int{cx[i+1], cy[j+1], cz[k+1]},
				})
			}
		}
	}
	return out, nil
}

// ExtractField copies the cells of box e out of a global cell-centered
// field with extent gd into a new dense array in the box's local layout.
// This is the "ghost data exchange": a rank's haloed input arrays are
// extracted from the global arrays (in a real MPI run, the duplicated
// cells come from neighbour ranks; the data is identical).
func ExtractField(global []float32, gd Dims, e Extent) ([]float32, error) {
	if len(global) != gd.Cells() {
		return nil, fmt.Errorf("mesh: global field has %d cells, extent %v needs %d", len(global), gd, gd.Cells())
	}
	ld := e.Dims()
	if err := ld.Validate(); err != nil {
		return nil, err
	}
	out := make([]float32, ld.Cells())
	for k := 0; k < ld.NZ; k++ {
		for j := 0; j < ld.NY; j++ {
			srcRow := gd.Index(e.Lo[0], e.Lo[1]+j, e.Lo[2]+k)
			dstRow := ld.Index(0, j, k)
			copy(out[dstRow:dstRow+ld.NX], global[srcRow:srcRow+ld.NX])
		}
	}
	return out, nil
}

// Submesh slices a mesh down to box e: the sub-grid's coordinate arrays
// are the corresponding windows of the parent's point coordinates.
func Submesh(m *Mesh, e Extent) (*Mesh, error) {
	d := m.Dims
	for a, n := range [3]int{d.NX, d.NY, d.NZ} {
		if e.Lo[a] < 0 || e.Hi[a] > n || e.Lo[a] >= e.Hi[a] {
			return nil, fmt.Errorf("mesh: extent %v out of range of mesh %v (axis %d)", e, d, a)
		}
	}
	return &Mesh{
		Dims: e.Dims(),
		X:    m.X[e.Lo[0] : e.Hi[0]+1],
		Y:    m.Y[e.Lo[1] : e.Hi[1]+1],
		Z:    m.Z[e.Lo[2] : e.Hi[2]+1],
	}, nil
}
