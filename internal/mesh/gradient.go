package mesh

// Gradient3DRange computes the gradient of a cell-centered scalar field
// on a rectilinear mesh for the linear cell range [lo, hi), writing one
// float4 per cell into out (components .s0=d/dx, .s1=d/dy, .s2=d/dz,
// .s3=0 — OpenCL aligns float3 like float4, which is how the paper's
// grad3d kernel returns multiple values per element).
//
// Interior cells use a central difference across neighbouring cell
// centers; boundary cells fall back to a one-sided difference. cx, cy, cz
// are the per-axis cell-center coordinates (see Mesh.CellCenters).
//
// This is the stencil the grad3d primitive, the fused kernels and the
// reference kernels all implement; internal/vortex carries an independent
// golden formulation used to cross-check it.
func Gradient3DRange(out, field []float32, d Dims, cx, cy, cz []float32, lo, hi int) {
	nx, ny := d.NX, d.NY
	for idx := lo; idx < hi; idx++ {
		i := idx % nx
		rest := idx / nx
		j := rest % ny
		k := rest / ny

		out[4*idx+0] = axisDiff(field, cx, idx, i, nx, 1)
		out[4*idx+1] = axisDiff(field, cy, idx, j, ny, nx)
		out[4*idx+2] = axisDiff(field, cz, idx, k, d.NZ, nx*ny)
		out[4*idx+3] = 0
	}
}

// axisDiff differences the field along one axis at position p (0..n-1)
// with linear stride between consecutive cells along that axis.
func axisDiff(field, centers []float32, idx, p, n, stride int) float32 {
	switch {
	case n == 1:
		return 0
	case p == 0:
		return (field[idx+stride] - field[idx]) / (centers[1] - centers[0])
	case p == n-1:
		return (field[idx] - field[idx-stride]) / (centers[n-1] - centers[n-2])
	default:
		return (field[idx+stride] - field[idx-stride]) / (centers[p+1] - centers[p-1])
	}
}

// Gradient3D computes the full-mesh gradient of a cell-centered field,
// returning a freshly allocated float4-per-cell array.
func Gradient3D(field []float32, m *Mesh) []float32 {
	out := make([]float32, 4*m.Cells())
	cx, cy, cz := m.CellCenters()
	Gradient3DRange(out, field, m.Dims, cx, cy, cz, 0, m.Cells())
	return out
}
