package vortex

import (
	"math"

	"dfg/internal/mesh"
)

// Extension expressions beyond the paper's three, built from the same
// primitive library — the kind of quantities an analyst composes next
// once the framework exists.
const (
	// EnstrophyExpr computes pointwise enstrophy 0.5*|curl v|^2, the
	// standard measure of rotational energy density.
	EnstrophyExpr = `du = grad3d(u,dims,x,y,z)
dv = grad3d(v,dims,x,y,z)
dw = grad3d(w,dims,x,y,z)
w_x = dw[1] - dv[2]
w_y = du[2] - dw[0]
w_z = dv[0] - du[1]
ens = 0.5 * (w_x*w_x + w_y*w_y + w_z*w_z)`

	// DivergenceExpr computes div v = trace of the velocity gradient —
	// near zero for incompressible flow, a standard sanity field.
	DivergenceExpr = `du = grad3d(u,dims,x,y,z)
dv = grad3d(v,dims,x,y,z)
dw = grad3d(w,dims,x,y,z)
div = du[0] + dv[1] + dw[2]`

	// HelicityExpr computes pointwise helicity density v . curl(v),
	// which distinguishes corkscrew motion from planar rotation.
	HelicityExpr = `du = grad3d(u,dims,x,y,z)
dv = grad3d(v,dims,x,y,z)
dw = grad3d(w,dims,x,y,z)
w_x = dw[1] - dv[2]
w_y = du[2] - dw[0]
w_z = dv[0] - du[1]
hel = u*w_x + v*w_y + w*w_z`
)

// Enstrophy is the golden host implementation of 0.5*|curl v|^2.
func Enstrophy(u, v, w []float32, m *mesh.Mesh) []float32 {
	ox, oy, oz := Vorticity(u, v, w, m)
	out := make([]float32, len(ox))
	for i := range out {
		out[i] = float32(0.5 * (float64(ox[i])*float64(ox[i]) +
			float64(oy[i])*float64(oy[i]) + float64(oz[i])*float64(oz[i])))
	}
	return out
}

// Divergence is the golden host implementation of div v.
func Divergence(u, v, w []float32, m *mesh.Mesh) []float32 {
	n := m.Cells()
	out := make([]float32, n)
	cx, cy, cz := m.CellCenters()
	for idx := 0; idx < n; idx++ {
		J := jacobian(u, v, w, m.Dims, cx, cy, cz, idx)
		out[idx] = float32(J[0][0] + J[1][1] + J[2][2])
	}
	return out
}

// Helicity is the golden host implementation of v . curl(v).
func Helicity(u, v, w []float32, m *mesh.Mesh) []float32 {
	ox, oy, oz := Vorticity(u, v, w, m)
	out := make([]float32, len(ox))
	for i := range out {
		out[i] = float32(float64(u[i])*float64(ox[i]) +
			float64(v[i])*float64(oy[i]) + float64(w[i])*float64(oz[i]))
	}
	return out
}

// MaxAbs returns the largest magnitude in a field (test helper for
// near-zero assertions like divergence-free checks).
func MaxAbs(f []float32) float64 {
	var m float64
	for _, v := range f {
		if a := math.Abs(float64(v)); a > m {
			m = a
		}
	}
	return m
}
