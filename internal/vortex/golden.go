// Package vortex implements the paper's three vortex-detection derived
// quantities two independent ways:
//
//   - golden host implementations (this file), computed directly from
//     the velocity field with an independently written stencil, used to
//     validate every execution strategy's numeric output; and
//   - the hand-written reference OpenCL kernels (reference.go) that the
//     paper benchmarks its strategies against.
package vortex

import (
	"math"

	"dfg/internal/mesh"
)

// VelocityMagnitude computes sqrt(u^2 + v^2 + w^2) per cell
// (the paper's expression A).
func VelocityMagnitude(u, v, w []float32) []float32 {
	out := make([]float32, len(u))
	for i := range u {
		out[i] = float32(math.Sqrt(float64(u[i])*float64(u[i]) +
			float64(v[i])*float64(v[i]) + float64(w[i])*float64(w[i])))
	}
	return out
}

// jacobian computes the 3x3 velocity gradient tensor J = grad(v) at cell
// idx. Row r of J is the gradient of component r: J[r][c] = d v_r / d x_c.
//
// This stencil is written independently of mesh.Gradient3D (it indexes
// neighbours and differences cell centers directly) so the two
// implementations cross-check each other.
func jacobian(u, v, w []float32, d mesh.Dims, cx, cy, cz []float32, idx int) (J [3][3]float64) {
	i, j, k := d.Coords(idx)
	for c, axis := range [3]struct {
		p, n, stride int
		centers      []float32
	}{
		{i, d.NX, 1, cx},
		{j, d.NY, d.NX, cy},
		{k, d.NZ, d.NX * d.NY, cz},
	} {
		lo, hi := idx, idx
		var dx float64
		switch {
		case axis.n == 1:
			// Degenerate axis: no variation.
			J[0][c], J[1][c], J[2][c] = 0, 0, 0
			continue
		case axis.p == 0:
			hi = idx + axis.stride
			dx = float64(axis.centers[1] - axis.centers[0])
		case axis.p == axis.n-1:
			lo = idx - axis.stride
			dx = float64(axis.centers[axis.n-1] - axis.centers[axis.n-2])
		default:
			lo, hi = idx-axis.stride, idx+axis.stride
			dx = float64(axis.centers[axis.p+1] - axis.centers[axis.p-1])
		}
		J[0][c] = (float64(u[hi]) - float64(u[lo])) / dx
		J[1][c] = (float64(v[hi]) - float64(v[lo])) / dx
		J[2][c] = (float64(w[hi]) - float64(w[lo])) / dx
	}
	return J
}

// Vorticity computes the curl of the velocity field per cell, returned as
// three component arrays: omega = (dw/dy - dv/dz, du/dz - dw/dx,
// dv/dx - du/dy) — the paper's equation (1).
func Vorticity(u, v, w []float32, m *mesh.Mesh) (ox, oy, oz []float32) {
	n := m.Cells()
	ox = make([]float32, n)
	oy = make([]float32, n)
	oz = make([]float32, n)
	cx, cy, cz := m.CellCenters()
	for idx := 0; idx < n; idx++ {
		J := jacobian(u, v, w, m.Dims, cx, cy, cz, idx)
		ox[idx] = float32(J[2][1] - J[1][2])
		oy[idx] = float32(J[0][2] - J[2][0])
		oz[idx] = float32(J[1][0] - J[0][1])
	}
	return
}

// VorticityMagnitude computes |curl(v)| per cell (the paper's
// expression B).
func VorticityMagnitude(u, v, w []float32, m *mesh.Mesh) []float32 {
	ox, oy, oz := Vorticity(u, v, w, m)
	return VelocityMagnitude(ox, oy, oz)
}

// QCriterion computes Hunt's Q = 0.5*(||Omega||^2 - ||S||^2) per cell
// (the paper's expression C), where S and Omega are the symmetric and
// antisymmetric parts of the velocity gradient tensor and ||.|| is the
// Frobenius norm. Q > 0 marks rotation-dominated regions.
func QCriterion(u, v, w []float32, m *mesh.Mesh) []float32 {
	n := m.Cells()
	out := make([]float32, n)
	cx, cy, cz := m.CellCenters()
	for idx := 0; idx < n; idx++ {
		J := jacobian(u, v, w, m.Dims, cx, cy, cz, idx)
		var sNorm, wNorm float64
		for r := 0; r < 3; r++ {
			for c := 0; c < 3; c++ {
				s := 0.5 * (J[r][c] + J[c][r])
				om := 0.5 * (J[r][c] - J[c][r])
				sNorm += s * s
				wNorm += om * om
			}
		}
		out[idx] = float32(0.5 * (wNorm - sNorm))
	}
	return out
}
