package vortex

// The paper's three application expressions (Figure 3), written in the
// framework's expression language. They span the evaluated range of
// computational complexity: the near-trivial vector magnitude, the
// gradient-based vorticity magnitude, and the expensive Q-criterion.
//
// Two lines of Figure 3C are completed from the mathematics (the
// figure's text is garbled at w_3 and truncates before the final
// assignment): w_3 = 0.5*(dv[0] - du[1]) is the antisymmetric tensor
// entry, and q = 0.5*(w_norm - s_norm) is Hunt's criterion itself.
// With those lines, the dataflow network contains exactly the operation
// counts of the paper's Table II (57 kernels for roundtrip Q-criterion,
// and so on), which is how the reconstruction was validated.
const (
	// VelMagExpr is Figure 3A: velocity magnitude.
	VelMagExpr = `v_mag = sqrt(u*u + v*v + w*w)`

	// VortMagExpr is Figure 3B: vorticity magnitude (|curl(v)|).
	VortMagExpr = `du = grad3d(u,dims,x,y,z)
dv = grad3d(v,dims,x,y,z)
dw = grad3d(w,dims,x,y,z)
w_x = dw[1] - dv[2]
w_y = du[2] - dw[0]
w_z = dv[0] - du[1]
w_mag = sqrt(w_x*w_x + w_y*w_y + w_z*w_z)`

	// QCritExpr is Figure 3C: Hunt's Q-criterion.
	QCritExpr = `du = grad3d(u, dims, x, y, z)
dv = grad3d(v, dims, x, y, z)
dw = grad3d(w, dims, x, y, z)
s_1 = 0.5 * (du[1] + dv[0])
s_2 = 0.5 * (du[2] + dw[0])
s_3 = 0.5 * (dv[0] + du[1])
s_5 = 0.5 * (dv[2] + dw[1])
s_6 = 0.5 * (dw[0] + du[2])
s_7 = 0.5 * (dw[1] + dv[2])
w_1 = 0.5 * (du[1] - dv[0])
w_2 = 0.5 * (du[2] - dw[0])
w_3 = 0.5 * (dv[0] - du[1])
w_5 = 0.5 * (dv[2] - dw[1])
w_6 = 0.5 * (dw[0] - du[2])
w_7 = 0.5 * (dw[1] - dv[2])
s_norm = du[0]*du[0] + s_1*s_1 + s_2*s_2 + s_3*s_3 + dv[1]*dv[1] + s_5*s_5 + s_6*s_6 + s_7*s_7 + dw[2]*dw[2]
w_norm = w_1*w_1 + w_2*w_2 + w_3*w_3 + w_5*w_5 + w_6*w_6 + w_7*w_7
q = 0.5 * (w_norm - s_norm)`

	// GradMagExpr is not a paper figure: the gradient magnitude of the
	// velocity magnitude. Its stencil consumes a computed field, so it is
	// the canonical expression exercising the fusion generator's
	// materialization pass split (Figure 2's fusion scratch array) and —
	// under a temporal schedule — the pass-fusing transformation that
	// deletes that scratch round-trip.
	GradMagExpr = `m = sqrt(u*u + v*v + w*w)
g = grad3d(m, dims, x, y, z)
r = norm(g)`
)

// Expressions maps the paper's short names (Table II) to the expression
// text, in the paper's order.
func Expressions() []struct{ Name, Text string } {
	return []struct{ Name, Text string }{
		{"VelMag", VelMagExpr},
		{"VortMag", VortMagExpr},
		{"Q-Crit", QCritExpr},
	}
}
