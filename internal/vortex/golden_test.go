package vortex

import (
	"math"
	"math/rand"
	"testing"

	"dfg/internal/mesh"
)

// analytic fills u, v, w from closures of the cell-center coordinates.
func analytic(m *mesh.Mesh, fu, fv, fw func(x, y, z float64) float64) (u, v, w []float32) {
	cx, cy, cz := m.CellCenters()
	d := m.Dims
	u = make([]float32, d.Cells())
	v = make([]float32, d.Cells())
	w = make([]float32, d.Cells())
	for k := 0; k < d.NZ; k++ {
		for j := 0; j < d.NY; j++ {
			for i := 0; i < d.NX; i++ {
				idx := d.Index(i, j, k)
				x, y, z := float64(cx[i]), float64(cy[j]), float64(cz[k])
				u[idx] = float32(fu(x, y, z))
				v[idx] = float32(fv(x, y, z))
				w[idx] = float32(fw(x, y, z))
			}
		}
	}
	return
}

func approx(got, want, tol float64) bool { return math.Abs(got-want) <= tol }

func TestVelocityMagnitude(t *testing.T) {
	u := []float32{3, 0, 1}
	v := []float32{4, 0, 2}
	w := []float32{0, 0, 2}
	got := VelocityMagnitude(u, v, w)
	for i, want := range []float64{5, 0, 3} {
		if !approx(float64(got[i]), want, 1e-6) {
			t.Fatalf("velmag[%d] = %v want %v", i, got[i], want)
		}
	}
}

func TestRigidBodyRotation(t *testing.T) {
	// Rigid rotation about the z axis with angular velocity omega:
	// u = -omega*(y - y0), v = omega*(x - x0), w = 0.
	// Analytically: vorticity = (0, 0, 2*omega) and Q = omega^2,
	// everywhere, and the field is linear so the stencil is exact.
	const omega = 1.5
	m := mesh.MustUniform(mesh.Dims{NX: 8, NY: 8, NZ: 4}, 0.25, 0.25, 0.25)
	u, v, w := analytic(m,
		func(x, y, z float64) float64 { return -omega * (y - 1.0) },
		func(x, y, z float64) float64 { return omega * (x - 1.0) },
		func(x, y, z float64) float64 { return 0 },
	)
	ox, oy, oz := Vorticity(u, v, w, m)
	vm := VorticityMagnitude(u, v, w, m)
	q := QCriterion(u, v, w, m)
	for idx := 0; idx < m.Cells(); idx++ {
		if !approx(float64(ox[idx]), 0, 1e-4) || !approx(float64(oy[idx]), 0, 1e-4) {
			t.Fatalf("cell %d: horizontal vorticity should vanish: %v %v", idx, ox[idx], oy[idx])
		}
		if !approx(float64(oz[idx]), 2*omega, 1e-4) {
			t.Fatalf("cell %d: omega_z = %v want %v", idx, oz[idx], 2*omega)
		}
		if !approx(float64(vm[idx]), 2*omega, 1e-4) {
			t.Fatalf("cell %d: |omega| = %v want %v", idx, vm[idx], 2*omega)
		}
		if !approx(float64(q[idx]), omega*omega, 1e-4) {
			t.Fatalf("cell %d: Q = %v want %v (rotation must have Q > 0)", idx, q[idx], omega*omega)
		}
	}
}

func TestPureStrain(t *testing.T) {
	// Irrotational strain u = g*x, v = -g*y: vorticity = 0 and
	// Q = -g^2 < 0 (strain exceeds rotation).
	const g = 2.0
	m := mesh.MustUniform(mesh.Dims{NX: 6, NY: 6, NZ: 3}, 0.5, 0.5, 0.5)
	u, v, w := analytic(m,
		func(x, y, z float64) float64 { return g * x },
		func(x, y, z float64) float64 { return -g * y },
		func(x, y, z float64) float64 { return 0 },
	)
	vm := VorticityMagnitude(u, v, w, m)
	q := QCriterion(u, v, w, m)
	for idx := 0; idx < m.Cells(); idx++ {
		if !approx(float64(vm[idx]), 0, 1e-4) {
			t.Fatalf("cell %d: strain field must be irrotational, |omega| = %v", idx, vm[idx])
		}
		if !approx(float64(q[idx]), -g*g, 1e-4) {
			t.Fatalf("cell %d: Q = %v want %v (strain must have Q < 0)", idx, q[idx], -g*g)
		}
	}
}

func TestPureShear(t *testing.T) {
	// Simple shear u = g*y: |omega| = g and Q = 0 exactly (rotation and
	// strain balance), the textbook boundary case for Q-criterion.
	const g = 3.0
	m := mesh.MustUniform(mesh.Dims{NX: 5, NY: 5, NZ: 5}, 0.2, 0.2, 0.2)
	u, v, w := analytic(m,
		func(x, y, z float64) float64 { return g * y },
		func(x, y, z float64) float64 { return 0 },
		func(x, y, z float64) float64 { return 0 },
	)
	vm := VorticityMagnitude(u, v, w, m)
	q := QCriterion(u, v, w, m)
	for idx := 0; idx < m.Cells(); idx++ {
		if !approx(float64(vm[idx]), g, 1e-4) {
			t.Fatalf("cell %d: shear |omega| = %v want %v", idx, vm[idx], g)
		}
		if !approx(float64(q[idx]), 0, 1e-4) {
			t.Fatalf("cell %d: shear Q = %v want 0", idx, q[idx])
		}
	}
}

// TestJacobianAgreesWithMeshGradient cross-checks the two independently
// written stencils: row r of the golden Jacobian must equal
// mesh.Gradient3D of component r.
func TestJacobianAgreesWithMeshGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := []float32{0, 0.4, 1.0, 1.3, 2.4, 3.0}
	y := []float32{0, 1, 1.5, 3}
	z := []float32{-1, 0, 0.7, 1.1, 2}
	m, err := mesh.NewRectilinear(x, y, z)
	if err != nil {
		t.Fatal(err)
	}
	n := m.Cells()
	u := make([]float32, n)
	v := make([]float32, n)
	w := make([]float32, n)
	for i := 0; i < n; i++ {
		u[i] = rng.Float32()
		v[i] = rng.Float32()
		w[i] = rng.Float32()
	}
	gu := mesh.Gradient3D(u, m)
	gv := mesh.Gradient3D(v, m)
	gw := mesh.Gradient3D(w, m)
	cx, cy, cz := m.CellCenters()
	for idx := 0; idx < n; idx++ {
		J := jacobian(u, v, w, m.Dims, cx, cy, cz, idx)
		for c := 0; c < 3; c++ {
			if !approx(J[0][c], float64(gu[4*idx+c]), 1e-4) ||
				!approx(J[1][c], float64(gv[4*idx+c]), 1e-4) ||
				!approx(J[2][c], float64(gw[4*idx+c]), 1e-4) {
				t.Fatalf("cell %d axis %d: jacobian %v/%v/%v vs gradient %v/%v/%v",
					idx, c, J[0][c], J[1][c], J[2][c], gu[4*idx+c], gv[4*idx+c], gw[4*idx+c])
			}
		}
	}
}

func TestDegenerateAxisJacobian(t *testing.T) {
	m := mesh.MustUniform(mesh.Dims{NX: 4, NY: 4, NZ: 1}, 1, 1, 1)
	u, v, w := analytic(m,
		func(x, y, z float64) float64 { return x + y },
		func(x, y, z float64) float64 { return x - y },
		func(x, y, z float64) float64 { return 1 },
	)
	q := QCriterion(u, v, w, m)
	// J = [[1,1,0],[1,-1,0],[0,0,0]]: symmetric, so Q = -||S||^2/2 = -2.
	for idx := 0; idx < m.Cells(); idx++ {
		if !approx(float64(q[idx]), -2, 1e-4) {
			t.Fatalf("cell %d: Q = %v want -2", idx, q[idx])
		}
	}
}

func TestExtensionQuantitiesOnRigidRotation(t *testing.T) {
	// Rigid rotation about z (omega_z = 2w): enstrophy = 0.5*(2w)^2,
	// divergence = 0, helicity = v . omega = 0 (planar flow).
	const w0 = 1.25
	m := mesh.MustUniform(mesh.Dims{NX: 6, NY: 6, NZ: 4}, 0.25, 0.25, 0.25)
	u, v, w := analytic(m,
		func(x, y, z float64) float64 { return -w0 * (y - 0.75) },
		func(x, y, z float64) float64 { return w0 * (x - 0.75) },
		func(x, y, z float64) float64 { return 0 },
	)
	ens := Enstrophy(u, v, w, m)
	div := Divergence(u, v, w, m)
	hel := Helicity(u, v, w, m)
	wantEns := 0.5 * (2 * w0) * (2 * w0)
	for i := range ens {
		if !approx(float64(ens[i]), wantEns, 1e-4) {
			t.Fatalf("enstrophy[%d] = %v want %v", i, ens[i], wantEns)
		}
		if !approx(float64(div[i]), 0, 1e-4) {
			t.Fatalf("divergence[%d] = %v want 0", i, div[i])
		}
		if !approx(float64(hel[i]), 0, 1e-4) {
			t.Fatalf("helicity[%d] = %v want 0 (planar rotation)", i, hel[i])
		}
	}
	if MaxAbs(div) > 1e-4 {
		t.Fatal("MaxAbs should report the tiny divergence bound")
	}
	if MaxAbs([]float32{-3, 2}) != 3 {
		t.Fatal("MaxAbs wrong")
	}
}

func TestHelicityOfBeltramiLikeFlow(t *testing.T) {
	// u = sin(z), v = cos(z), w = 0 has curl = (-sin z, -cos z... ) —
	// actually curl = (dw/dy - dv/dz, du/dz - dw/dx, dv/dx - du/dy)
	//              = (sin z, cos z, 0), so v . curl = sin^2 + cos^2 = 1.
	m := mesh.MustUniform(mesh.Dims{NX: 4, NY: 4, NZ: 64}, 0.5, 0.5, float32(2*math.Pi/64))
	u, v, w := analytic(m,
		func(x, y, z float64) float64 { return math.Sin(z) },
		func(x, y, z float64) float64 { return math.Cos(z) },
		func(x, y, z float64) float64 { return 0 },
	)
	hel := Helicity(u, v, w, m)
	d := m.Dims
	// Interior along z (boundary one-sided stencils are first order).
	for k := 2; k < d.NZ-2; k++ {
		idx := d.Index(2, 2, k)
		if !approx(float64(hel[idx]), 1, 5e-3) {
			t.Fatalf("helicity at k=%d: %v want 1", k, hel[idx])
		}
	}
}
