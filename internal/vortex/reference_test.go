package vortex

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"dfg/internal/mesh"
	"dfg/internal/ocl"
)

// runReference executes a reference kernel on a CPU device environment.
func runReference(t *testing.T, name string, m *mesh.Mesh, u, v, w []float32) ([]float32, ocl.Profile) {
	t.Helper()
	k, argNames, err := ReferenceKernel(name)
	if err != nil {
		t.Fatal(err)
	}
	env := ocl.NewEnv(ocl.NewDevice(ocl.XeonX5660Spec(64)))
	cx, cy, cz := m.CellCenterFields()
	arrays := map[string][]float32{
		"u": u, "v": v, "w": w,
		"dims": {float32(m.Dims.NX), float32(m.Dims.NY), float32(m.Dims.NZ), 0},
		"x":    cx, "y": cy, "z": cz,
	}
	n := m.Cells()
	var bufs []*ocl.Buffer
	for _, an := range argNames {
		b, err := env.Upload(an, arrays[an], 1)
		if err != nil {
			t.Fatal(err)
		}
		bufs = append(bufs, b)
	}
	out := env.Context().MustBuffer("out", n, 1)
	bufs = append(bufs, out)
	if err := env.Run(k, n, bufs, nil); err != nil {
		t.Fatal(err)
	}
	got, err := env.Download(out)
	if err != nil {
		t.Fatal(err)
	}
	return got, env.Profile()
}

func randomVel(n int, seed int64) (u, v, w []float32) {
	rng := rand.New(rand.NewSource(seed))
	u = make([]float32, n)
	v = make([]float32, n)
	w = make([]float32, n)
	for i := 0; i < n; i++ {
		u[i] = rng.Float32()*2 - 1
		v[i] = rng.Float32()*2 - 1
		w[i] = rng.Float32()*2 - 1
	}
	return
}

func TestReferenceKernelsMatchGolden(t *testing.T) {
	m := mesh.MustUniform(mesh.Dims{NX: 14, NY: 10, NZ: 6}, 0.3, 0.5, 0.7)
	u, v, w := randomVel(m.Cells(), 21)

	golden := map[string][]float32{
		"VelMag":  VelocityMagnitude(u, v, w),
		"VortMag": VorticityMagnitude(u, v, w, m),
		"Q-Crit":  QCriterion(u, v, w, m),
	}
	for name, want := range golden {
		got, prof := runReference(t, name, m, u, v, w)
		for i := range want {
			if math.Abs(float64(got[i]-want[i])) > 2e-4 {
				t.Fatalf("%s: cell %d: reference %v vs golden %v", name, i, got[i], want[i])
			}
		}
		// Reference kernels have fusion's transfer profile: one upload
		// per input, one kernel, one read.
		if prof.Kernels != 1 || prof.Reads != 1 {
			t.Fatalf("%s: profile %+v, want 1 kernel / 1 read", name, prof)
		}
	}
}

func TestReferenceKernelTransferCounts(t *testing.T) {
	m := mesh.MustUniform(mesh.Dims{NX: 8, NY: 8, NZ: 8}, 1, 1, 1)
	u, v, w := randomVel(m.Cells(), 5)
	// VelMag: 3 uploads; VortMag and Q-Crit: 7 uploads — identical to
	// the fusion rows of Table II.
	wantWrites := map[string]int{"VelMag": 3, "VortMag": 7, "Q-Crit": 7}
	for name, ww := range wantWrites {
		_, prof := runReference(t, name, m, u, v, w)
		if prof.Writes != ww {
			t.Fatalf("%s: Dev-W = %d, want %d", name, prof.Writes, ww)
		}
	}
}

func TestReferenceKernelUnknown(t *testing.T) {
	if _, _, err := ReferenceKernel("Enstrophy"); err == nil {
		t.Fatal("unknown reference kernel must fail")
	}
}

func TestReferenceKernelSources(t *testing.T) {
	for _, name := range []string{"VelMag", "VortMag", "Q-Crit"} {
		k, args, err := ReferenceKernel(name)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(k.Source, "__kernel void "+k.Name) {
			t.Errorf("%s: source missing entry point", name)
		}
		if k.NumBufs != len(args)+1 {
			t.Errorf("%s: NumBufs %d != %d args + out", name, k.NumBufs, len(args))
		}
	}
}

func TestExpressionsList(t *testing.T) {
	ex := Expressions()
	if len(ex) != 3 {
		t.Fatalf("want 3 expressions, got %d", len(ex))
	}
	names := []string{"VelMag", "VortMag", "Q-Crit"}
	for i, e := range ex {
		if e.Name != names[i] || e.Text == "" {
			t.Fatalf("expression %d: %+v", i, e)
		}
	}
}
