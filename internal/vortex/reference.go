package vortex

import (
	"fmt"
	"math"

	"dfg/internal/ocl"
)

// This file implements the paper's reference OpenCL kernels: hand-written
// single kernels for each of the three vortex-detection expressions. They
// have the same input and output global-memory constraints as the fusion
// strategy, but compute the desired expression directly, with fewer
// memory fetches and floating-point operations than the composed
// primitives — the "custom or one-off solution" the fusion strategy is
// shown to approach.
//
// The stencil code here is written independently of internal/kernels and
// internal/mesh (a third formulation), so agreement among all three is a
// meaningful cross-check.

// refDiff differences field f along one axis at linear index idx, where
// coord is the per-cell center coordinate array for that axis, p is the
// position along the axis, n the axis extent and stride the linear step.
func refDiff(f, coord []float32, idx, p, n, stride int) float32 {
	if n == 1 {
		return 0
	}
	lo, hi := idx, idx
	if p > 0 {
		lo = idx - stride
	}
	if p < n-1 {
		hi = idx + stride
	}
	return (f[hi] - f[lo]) / (coord[hi] - coord[lo])
}

// refVelMagSrc is the hand-written velocity-magnitude kernel source.
const refVelMagSrc = `// reference kernel: velocity magnitude (hand-written)
__kernel void kref_velmag(__global const float *u,
                          __global const float *v,
                          __global const float *w,
                          __global float *out)
{
    int gid = get_global_id(0);
    float a = u[gid], b = v[gid], c = w[gid];
    out[gid] = sqrt(a*a + b*b + c*c);
}
`

// refVortMagSrc is the hand-written vorticity-magnitude kernel source.
const refVortMagSrc = `// reference kernel: vorticity magnitude (hand-written)
// Computes only the six directional derivatives the curl needs.
inline float ref_diff(__global const float *f, __global const float *c,
                      int idx, int p, int n, int stride)
{
    int lo = (p > 0)     ? idx - stride : idx;
    int hi = (p < n - 1) ? idx + stride : idx;
    if (n == 1) return 0.0f;
    return (f[hi] - f[lo]) / (c[hi] - c[lo]);
}

__kernel void kref_vortmag(__global const float *u,
                           __global const float *v,
                           __global const float *w,
                           __global const float *dims,
                           __global const float *x,
                           __global const float *y,
                           __global const float *z,
                           __global float *out)
{
    int gid = get_global_id(0);
    int nx = (int)dims[0], ny = (int)dims[1], nz = (int)dims[2];
    int i = gid % nx, r = gid / nx, j = r % ny, k = r / ny;

    float dw_dy = ref_diff(w, y, gid, j, ny, nx);
    float dv_dz = ref_diff(v, z, gid, k, nz, nx*ny);
    float du_dz = ref_diff(u, z, gid, k, nz, nx*ny);
    float dw_dx = ref_diff(w, x, gid, i, nx, 1);
    float dv_dx = ref_diff(v, x, gid, i, nx, 1);
    float du_dy = ref_diff(u, y, gid, j, ny, nx);

    float wx = dw_dy - dv_dz;
    float wy = du_dz - dw_dx;
    float wz = dv_dx - du_dy;
    out[gid] = sqrt(wx*wx + wy*wy + wz*wz);
}
`

// refQCritSrc is the hand-written Q-criterion kernel source.
const refQCritSrc = `// reference kernel: Q-criterion (hand-written)
// Builds the full velocity gradient tensor once and evaluates
// Q = 0.5*(||Omega||^2 - ||S||^2) directly.
inline float ref_diff(__global const float *f, __global const float *c,
                      int idx, int p, int n, int stride)
{
    int lo = (p > 0)     ? idx - stride : idx;
    int hi = (p < n - 1) ? idx + stride : idx;
    if (n == 1) return 0.0f;
    return (f[hi] - f[lo]) / (c[hi] - c[lo]);
}

__kernel void kref_qcrit(__global const float *u,
                         __global const float *v,
                         __global const float *w,
                         __global const float *dims,
                         __global const float *x,
                         __global const float *y,
                         __global const float *z,
                         __global float *out)
{
    int gid = get_global_id(0);
    int nx = (int)dims[0], ny = (int)dims[1], nz = (int)dims[2];
    int i = gid % nx, r = gid / nx, j = r % ny, k = r / ny;

    float J[3][3];
    J[0][0] = ref_diff(u, x, gid, i, nx, 1);
    J[0][1] = ref_diff(u, y, gid, j, ny, nx);
    J[0][2] = ref_diff(u, z, gid, k, nz, nx*ny);
    J[1][0] = ref_diff(v, x, gid, i, nx, 1);
    J[1][1] = ref_diff(v, y, gid, j, ny, nx);
    J[1][2] = ref_diff(v, z, gid, k, nz, nx*ny);
    J[2][0] = ref_diff(w, x, gid, i, nx, 1);
    J[2][1] = ref_diff(w, y, gid, j, ny, nx);
    J[2][2] = ref_diff(w, z, gid, k, nz, nx*ny);

    float snorm = 0.0f, wnorm = 0.0f;
    for (int a = 0; a < 3; a++) {
        for (int b = 0; b < 3; b++) {
            float s  = 0.5f * (J[a][b] + J[b][a]);
            float om = 0.5f * (J[a][b] - J[b][a]);
            snorm += s * s;
            wnorm += om * om;
        }
    }
    out[gid] = 0.5f * (wnorm - snorm);
}
`

// ReferenceKernel returns the hand-written kernel for one of the
// paper's expressions ("VelMag", "VortMag" or "Q-Crit") together with
// the ordered source-array names to bind before the output buffer.
func ReferenceKernel(name string) (*ocl.Kernel, []string, error) {
	switch name {
	case "VelMag":
		return &ocl.Kernel{
			Name:    "kref_velmag",
			Source:  refVelMagSrc,
			NumBufs: 4,
			Cost:    ocl.Cost{Flops: 6, LoadBytes: 12, StoreBytes: 4},
			Fn: func(lo, hi int, bufs []ocl.View, _ []float64) {
				u, v, w, out := bufs[0].Data, bufs[1].Data, bufs[2].Data, bufs[3].Data
				for i := lo; i < hi; i++ {
					a, b, c := float64(u[i]), float64(v[i]), float64(w[i])
					out[i] = float32(math.Sqrt(a*a + b*b + c*c))
				}
			},
		}, []string{"u", "v", "w"}, nil

	case "VortMag":
		return &ocl.Kernel{
			Name:    "kref_vortmag",
			Source:  refVortMagSrc,
			NumBufs: 8,
			Cost:    ocl.Cost{Flops: 30, LoadBytes: 76, StoreBytes: 4},
			Fn: func(lo, hi int, bufs []ocl.View, _ []float64) {
				u, v, w := bufs[0].Data, bufs[1].Data, bufs[2].Data
				dims := bufs[3].Data
				x, y, z := bufs[4].Data, bufs[5].Data, bufs[6].Data
				out := bufs[7].Data
				nx, ny, nz := int(dims[0]), int(dims[1]), int(dims[2])
				for gid := lo; gid < hi; gid++ {
					i := gid % nx
					r := gid / nx
					j := r % ny
					k := r / ny
					wx := refDiff(w, y, gid, j, ny, nx) - refDiff(v, z, gid, k, nz, nx*ny)
					wy := refDiff(u, z, gid, k, nz, nx*ny) - refDiff(w, x, gid, i, nx, 1)
					wz := refDiff(v, x, gid, i, nx, 1) - refDiff(u, y, gid, j, ny, nx)
					out[gid] = float32(math.Sqrt(float64(wx)*float64(wx) +
						float64(wy)*float64(wy) + float64(wz)*float64(wz)))
				}
			},
		}, []string{"u", "v", "w", "dims", "x", "y", "z"}, nil

	case "Q-Crit":
		return &ocl.Kernel{
			Name:    "kref_qcrit",
			Source:  refQCritSrc,
			NumBufs: 8,
			Cost:    ocl.Cost{Flops: 70, LoadBytes: 100, StoreBytes: 4},
			Fn: func(lo, hi int, bufs []ocl.View, _ []float64) {
				u, v, w := bufs[0].Data, bufs[1].Data, bufs[2].Data
				dims := bufs[3].Data
				x, y, z := bufs[4].Data, bufs[5].Data, bufs[6].Data
				out := bufs[7].Data
				nx, ny, nz := int(dims[0]), int(dims[1]), int(dims[2])
				for gid := lo; gid < hi; gid++ {
					i := gid % nx
					r := gid / nx
					j := r % ny
					k := r / ny
					var J [3][3]float32
					J[0][0] = refDiff(u, x, gid, i, nx, 1)
					J[0][1] = refDiff(u, y, gid, j, ny, nx)
					J[0][2] = refDiff(u, z, gid, k, nz, nx*ny)
					J[1][0] = refDiff(v, x, gid, i, nx, 1)
					J[1][1] = refDiff(v, y, gid, j, ny, nx)
					J[1][2] = refDiff(v, z, gid, k, nz, nx*ny)
					J[2][0] = refDiff(w, x, gid, i, nx, 1)
					J[2][1] = refDiff(w, y, gid, j, ny, nx)
					J[2][2] = refDiff(w, z, gid, k, nz, nx*ny)
					var snorm, wnorm float64
					for a := 0; a < 3; a++ {
						for b := 0; b < 3; b++ {
							s := 0.5 * float64(J[a][b]+J[b][a])
							om := 0.5 * float64(J[a][b]-J[b][a])
							snorm += s * s
							wnorm += om * om
						}
					}
					out[gid] = float32(0.5 * (wnorm - snorm))
				}
			},
		}, []string{"u", "v", "w", "dims", "x", "y", "z"}, nil

	default:
		return nil, nil, fmt.Errorf("vortex: no reference kernel for %q (want VelMag, VortMag or Q-Crit)", name)
	}
}
