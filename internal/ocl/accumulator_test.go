package ocl

import (
	"sync"
	"testing"
	"time"
)

// TestAccumulatorSnapshotAtomic hammers Add from many workers while a
// reader snapshots continuously. Every Add folds the same profile shape,
// so any snapshot must satisfy exact cross-field invariants — a torn
// read (profile and run count from different moments, or a half-applied
// profile) breaks them. Run under -race this also proves the
// synchronization itself.
func TestAccumulatorSnapshotAtomic(t *testing.T) {
	const (
		workers = 8
		adds    = 500
	)
	unit := Profile{
		Writes:     3,
		Reads:      1,
		Kernels:    2,
		WriteBytes: 4096,
		ReadBytes:  1024,
		WriteTime:  3 * time.Microsecond,
		ReadTime:   time.Microsecond,
		KernelTime: 2 * time.Microsecond,
		Wall:       time.Microsecond,
	}

	var acc Accumulator
	stop := make(chan struct{})
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			p, runs, peak := acc.Snapshot()
			// Consistency invariants: every field must reflect the same
			// number of folded runs.
			if p.Writes != 3*runs || p.Reads != runs || p.Kernels != 2*runs {
				t.Errorf("torn snapshot: runs=%d but counts W=%d R=%d K=%d",
					runs, p.Writes, p.Reads, p.Kernels)
				return
			}
			if p.WriteBytes != int64(runs)*4096 || p.ReadBytes != int64(runs)*1024 {
				t.Errorf("torn snapshot: runs=%d bytes W=%d R=%d", runs, p.WriteBytes, p.ReadBytes)
				return
			}
			if p.KernelTime != time.Duration(runs)*2*time.Microsecond {
				t.Errorf("torn snapshot: runs=%d kernel time %v", runs, p.KernelTime)
				return
			}
			if runs > 0 && peak <= 0 {
				t.Errorf("runs=%d but peak=%d", runs, peak)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < adds; i++ {
				acc.Add(unit, int64(1000+w)) // distinct peaks per worker
			}
		}()
	}
	wg.Wait()
	close(stop)
	readerWG.Wait()

	p, runs, peak := acc.Snapshot()
	if runs != workers*adds {
		t.Fatalf("runs = %d, want %d", runs, workers*adds)
	}
	if p.Writes != 3*workers*adds || p.Wall != time.Duration(workers*adds)*time.Microsecond {
		t.Fatalf("final profile inconsistent: %+v", p)
	}
	if peak != 1000+workers-1 {
		t.Fatalf("peak = %d, want %d (max across workers)", peak, 1000+workers-1)
	}
}
