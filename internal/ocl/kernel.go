package ocl

// Cost is the per-element cost metadata of a kernel, used by the device
// cost model to produce profiled timings. Primitive kernels declare their
// cost once; the fusion code generator sums the costs of the primitives
// it fuses (minus the global loads/stores that fusion keeps in
// registers).
type Cost struct {
	// Flops is floating-point operations per output element.
	Flops float64
	// LoadBytes is bytes read from device global memory per element.
	LoadBytes float64
	// StoreBytes is bytes written to device global memory per element.
	StoreBytes float64
	// LocalBytes is bytes moved through work-group local memory per
	// element (tiled schedules stage stencil neighbourhoods there).
	// Zero for every flat kernel, so the classic roofline is unchanged.
	LocalBytes float64
	// VectorWidth is the widest vectorized global access the kernel
	// performs (4 for float4 loads). Zero or one means scalar access;
	// wider access earns the device's vector-gain effective bandwidth.
	VectorWidth int
}

// Add returns the combined cost of running both: byte and flop terms
// sum, and the vector width is the maximum (a kernel is as vectorized
// as its widest access path).
func (c Cost) Add(o Cost) Cost {
	w := c.VectorWidth
	if o.VectorWidth > w {
		w = o.VectorWidth
	}
	return Cost{
		Flops:       c.Flops + o.Flops,
		LoadBytes:   c.LoadBytes + o.LoadBytes,
		StoreBytes:  c.StoreBytes + o.StoreBytes,
		LocalBytes:  c.LocalBytes + o.LocalBytes,
		VectorWidth: w,
	}
}

// View is a kernel's window onto a device buffer: the raw component data
// plus the element/width shape needed to index vector-typed arrays.
type View struct {
	Data  []float32
	Elems int
	Width int
}

// KernelFunc is the executable body of a kernel. It is invoked
// concurrently on disjoint sub-ranges [lo, hi) of the global work size;
// bufs follow the argument order of the launch, and scalars carry the
// kernel's non-buffer arguments (compile-time constants in the fusion
// strategy arrive through source instead and are absent here).
type KernelFunc func(lo, hi int, bufs []View, scalars []float64)

// Kernel pairs an OpenCL C source string with the executable equivalent
// that the simulated device runs. The source is what a real OpenCL
// runtime would JIT-compile; golden tests pin the generated source of
// fused kernels, and the closure is what produces real results.
type Kernel struct {
	// Name is the kernel's entry-point name, e.g. "kadd" or the
	// generated "kfused_qcrit".
	Name string
	// Source is the OpenCL C source of the kernel.
	Source string
	// NumBufs is the number of buffer arguments the kernel expects; a
	// launch with a different count fails. Zero means "unchecked".
	NumBufs int
	// Cost is the per-element cost used for modeled timings.
	Cost Cost
	// Fn is the executable kernel body.
	Fn KernelFunc
	// Passes optionally splits the body into ordered phases with a
	// device-wide barrier between them, all within ONE kernel dispatch.
	// The fusion generator uses this when a stencil primitive (grad3d)
	// consumes a computed value: the fused kernel first materializes
	// that value to a global scratch buffer, synchronizes, then runs the
	// stencil — the single-kernel, extra-array case of the paper's
	// Figure 2. When Passes is non-empty it replaces Fn.
	Passes []KernelFunc
}
