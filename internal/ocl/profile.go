package ocl

import (
	"fmt"
	"sync"
	"time"
)

// Profile aggregates a queue's device events by category. Counts feed
// Table II; modeled times feed Figure 5; Wall is the real host time spent
// actually executing the simulated operations.
type Profile struct {
	Writes  int
	Reads   int
	Kernels int

	WriteBytes int64
	ReadBytes  int64

	WriteTime  time.Duration // modeled host-to-device time
	ReadTime   time.Duration // modeled device-to-host time
	KernelTime time.Duration // modeled kernel execution time

	Wall time.Duration // real host time across all events
}

// add folds one event into the profile.
func (p *Profile) add(e Event) {
	switch e.Kind {
	case WriteEvent:
		p.Writes++
		p.WriteBytes += e.Bytes
		p.WriteTime += e.Duration()
	case ReadEvent:
		p.Reads++
		p.ReadBytes += e.Bytes
		p.ReadTime += e.Duration()
	case KernelEvent:
		p.Kernels++
		p.KernelTime += e.Duration()
	}
	p.Wall += e.Wall
}

// DeviceTime returns the total modeled device time: all transfers plus
// all kernel executions — the quantity on the y-axes of Figure 5.
func (p Profile) DeviceTime() time.Duration {
	return p.WriteTime + p.ReadTime + p.KernelTime
}

// Events returns the total number of device events.
func (p Profile) Events() int { return p.Writes + p.Reads + p.Kernels }

// Add returns the component-wise sum of two profiles.
func (p Profile) Add(o Profile) Profile {
	return Profile{
		Writes:     p.Writes + o.Writes,
		Reads:      p.Reads + o.Reads,
		Kernels:    p.Kernels + o.Kernels,
		WriteBytes: p.WriteBytes + o.WriteBytes,
		ReadBytes:  p.ReadBytes + o.ReadBytes,
		WriteTime:  p.WriteTime + o.WriteTime,
		ReadTime:   p.ReadTime + o.ReadTime,
		KernelTime: p.KernelTime + o.KernelTime,
		Wall:       p.Wall + o.Wall,
	}
}

// Accumulator aggregates run profiles from concurrent workers — the
// pool-level view of device activity that each Env's queue reports per
// run. All methods are safe for concurrent use.
type Accumulator struct {
	mu   sync.Mutex
	p    Profile
	runs int
	peak int64 // max per-run device-memory high-water mark seen
}

// Add folds one run's profile (and its device-memory high-water mark)
// into the aggregate.
func (a *Accumulator) Add(p Profile, peakBytes int64) {
	a.mu.Lock()
	a.p = a.p.Add(p)
	a.runs++
	if peakBytes > a.peak {
		a.peak = peakBytes
	}
	a.mu.Unlock()
}

// Snapshot returns the summed profile, the number of runs folded in, and
// the largest single-run peak-memory value.
func (a *Accumulator) Snapshot() (p Profile, runs int, peakBytes int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.p, a.runs, a.peak
}

// String summarizes the profile on one line.
func (p Profile) String() string {
	return fmt.Sprintf("Dev-W=%d (%d B, %v)  Dev-R=%d (%d B, %v)  K-Exe=%d (%v)  device=%v wall=%v",
		p.Writes, p.WriteBytes, p.WriteTime,
		p.Reads, p.ReadBytes, p.ReadTime,
		p.Kernels, p.KernelTime,
		p.DeviceTime(), p.Wall)
}
