package ocl

import (
	"fmt"
	"math/rand"
	"sync"
)

// FaultOp names an operation stream a fault rule can target. Each
// simulated device operation passes through exactly one stream, and a
// rule targeting FaultAny observes the merged stream of all of them.
type FaultOp uint8

const (
	// FaultAlloc is a device buffer allocation (Context.NewBuffer).
	FaultAlloc FaultOp = iota
	// FaultWrite is a host-to-device transfer (Queue.WriteBuffer).
	FaultWrite
	// FaultRead is a device-to-host transfer (Queue.ReadBuffer).
	FaultRead
	// FaultKernel is a kernel launch (Queue.Run).
	FaultKernel
	// FaultAny matches every operation stream. It is valid only as a
	// rule target, not as an operation passed to fire.
	FaultAny

	numFaultStreams = int(FaultAny) + 1
)

// String names the operation stream.
func (op FaultOp) String() string {
	switch op {
	case FaultAlloc:
		return "alloc"
	case FaultWrite:
		return "write"
	case FaultRead:
		return "read"
	case FaultKernel:
		return "kernel"
	case FaultAny:
		return "any"
	default:
		return fmt.Sprintf("FaultOp(%d)", int(op))
	}
}

// FaultEffect is what happens when a fault rule fires.
type FaultEffect uint8

const (
	// EffectError fails the single operation with a typed error (the
	// rule's Err, or the stream's default sentinel: ErrOutOfDeviceMemory
	// for allocations, ErrTransferFailed for transfers, ErrKernelFailed
	// for kernel launches). The device stays healthy.
	EffectError FaultEffect = iota
	// EffectDeviceLost latches the whole device as lost: the triggering
	// operation and every subsequent one fail with ErrDeviceLost until
	// Context.Heal is called. Buffer releases still succeed — cleanup
	// must never fail.
	EffectDeviceLost
	// EffectPanic panics from inside the operation, simulating a driver
	// crash taking down the calling goroutine. Used to exercise worker
	// panic recovery; strategy cleanup defers still run during unwind.
	EffectPanic
)

// String names the effect.
func (e FaultEffect) String() string {
	switch e {
	case EffectError:
		return "error"
	case EffectDeviceLost:
		return "device-lost"
	case EffectPanic:
		return "panic"
	default:
		return fmt.Sprintf("FaultEffect(%d)", int(e))
	}
}

// FaultRule is one entry in a FaultPlan's schedule.
//
// A rule is deterministic when Nth >= 0: it fires on every matching
// operation whose zero-based index in the rule's stream is >= Nth,
// while the fire budget lasts. A rule with Nth < 0 is probabilistic: it
// fires on each matching operation with probability Prob, drawn from
// the plan's seeded generator.
//
// Times bounds how many times the rule may fire. Times <= 0 means the
// default: once for deterministic rules, unlimited for probabilistic
// ones.
type FaultRule struct {
	Op     FaultOp     // stream to watch; FaultAny matches all streams
	Nth    int         // deterministic trigger index (0-based); < 0 = probabilistic
	Prob   float64     // per-operation fire probability when Nth < 0
	Times  int         // fire budget; <= 0 = default (1 for Nth rules, unlimited for Prob rules)
	Effect FaultEffect // what firing does
	Err    error       // EffectError override; nil = stream's default sentinel
}

type faultRule struct {
	FaultRule
	remaining int // fires left; -1 = unlimited
}

// FaultPlan is a seeded, schedule-driven fault injector attached to a
// Context with SetFaultPlan. Every device operation (allocation,
// transfer, kernel launch) consults the plan; matching rules decide
// whether the operation fails, the device is lost, or the goroutine
// panics. The same seed and rule set replay the same fault schedule,
// so chaos runs are reproducible. A FaultPlan is safe for concurrent
// use, though each injected schedule is only deterministic for a
// deterministic operation order.
type FaultPlan struct {
	mu       sync.Mutex
	rng      *rand.Rand
	rules    []faultRule
	seen     [numFaultStreams]int64 // operations observed per stream; seen[FaultAny] is the total
	injected int64
}

// NewFaultPlan creates an empty fault plan whose probabilistic rules
// draw from a generator seeded with seed.
func NewFaultPlan(seed int64) *FaultPlan {
	return &FaultPlan{rng: rand.New(rand.NewSource(seed))}
}

// Add appends a rule to the schedule and returns the plan for chaining.
func (p *FaultPlan) Add(r FaultRule) *FaultPlan {
	rem := r.Times
	if rem <= 0 {
		if r.Nth >= 0 {
			rem = 1
		} else {
			rem = -1
		}
	}
	p.mu.Lock()
	p.rules = append(p.rules, faultRule{FaultRule: r, remaining: rem})
	p.mu.Unlock()
	return p
}

// FailNth arms a one-shot deterministic failure of the n-th (0-based)
// operation on the stream, using the stream's default error sentinel.
func (p *FaultPlan) FailNth(op FaultOp, n int) *FaultPlan {
	return p.Add(FaultRule{Op: op, Nth: n})
}

// FailNthWith is FailNth with an explicit injected error.
func (p *FaultPlan) FailNthWith(op FaultOp, n int, err error) *FaultPlan {
	return p.Add(FaultRule{Op: op, Nth: n, Err: err})
}

// FailEvery arms an unlimited probabilistic failure: each operation on
// the stream fails with probability prob.
func (p *FaultPlan) FailEvery(op FaultOp, prob float64) *FaultPlan {
	return p.Add(FaultRule{Op: op, Nth: -1, Prob: prob})
}

// LoseDeviceAt latches the device lost on the n-th (0-based) operation
// of any kind.
func (p *FaultPlan) LoseDeviceAt(n int) *FaultPlan {
	return p.Add(FaultRule{Op: FaultAny, Nth: n, Effect: EffectDeviceLost})
}

// LoseDeviceEvery latches the device lost with probability prob per
// operation of any kind. The latch fires at most once (further losses
// are moot while the device is down).
func (p *FaultPlan) LoseDeviceEvery(prob float64) *FaultPlan {
	return p.Add(FaultRule{Op: FaultAny, Nth: -1, Prob: prob, Times: 1, Effect: EffectDeviceLost})
}

// PanicAt panics from inside the n-th (0-based) operation on the
// stream, simulating a driver crash in the calling goroutine.
func (p *FaultPlan) PanicAt(op FaultOp, n int) *FaultPlan {
	return p.Add(FaultRule{Op: op, Nth: n, Effect: EffectPanic})
}

// Injected returns how many faults the plan has fired.
func (p *FaultPlan) Injected() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.injected
}

// Observed returns how many operations the plan has seen on the stream
// (FaultAny: across all streams).
func (p *FaultPlan) Observed(op FaultOp) int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if int(op) >= numFaultStreams {
		return 0
	}
	return p.seen[op]
}

// fire records one operation on op's stream and reports whether a rule
// fired for it, with the effect and injected error (nil for non-error
// effects or when the stream default should apply).
func (p *FaultPlan) fire(op FaultOp) (FaultEffect, error, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	idx := p.seen[op]
	anyIdx := p.seen[FaultAny]
	p.seen[op]++
	p.seen[FaultAny]++
	for i := range p.rules {
		r := &p.rules[i]
		if r.remaining == 0 {
			continue
		}
		if r.Op != FaultAny && r.Op != op {
			continue
		}
		matchIdx := idx
		if r.Op == FaultAny {
			matchIdx = anyIdx
		}
		var hit bool
		if r.Nth >= 0 {
			hit = matchIdx >= int64(r.Nth)
		} else if r.Prob > 0 {
			hit = p.rng.Float64() < r.Prob
		}
		if !hit {
			continue
		}
		if r.remaining > 0 {
			r.remaining--
		}
		p.injected++
		return r.Effect, r.Err, true
	}
	return EffectError, nil, false
}

// faultSentinel is the default injected error for a stream.
func faultSentinel(op FaultOp) error {
	switch op {
	case FaultAlloc:
		return ErrOutOfDeviceMemory
	case FaultWrite, FaultRead:
		return ErrTransferFailed
	case FaultKernel:
		return ErrKernelFailed
	default:
		return ErrKernelFailed
	}
}
