package ocl

import (
	"errors"
	"fmt"
	"sync"
)

// Context owns device buffer allocations, mirroring cl_context. It
// enforces the device's global memory capacity and tracks the
// high-water mark of allocated bytes — the quantity plotted in the
// paper's Figure 6.
type Context struct {
	dev *Device

	mu    sync.Mutex
	used  int64
	peak  int64
	live  int
	alloc int // total successful allocations (monotone)
	// fplan is the attached fault injector (nil = no injection) and lost
	// the device-lost latch it can set. See SetFaultPlan and Heal.
	fplan *FaultPlan
	lost  bool
	// pool is the context's lazily created buffer arena (see Pool).
	pool *Arena
}

// NewContext creates a context on the device.
func NewContext(dev *Device) *Context {
	return &Context{dev: dev}
}

// SetFaultPlan attaches a fault injector to the context; every
// subsequent allocation, transfer and kernel launch consults it. A nil
// plan disables injection. Replacing the plan does not clear a latched
// device loss — use Heal for that.
func (c *Context) SetFaultPlan(p *FaultPlan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.fplan = p
}

// FaultPlan returns the attached fault injector, or nil.
func (c *Context) FaultPlan() *FaultPlan {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fplan
}

// Lost reports whether the device is latched lost: every operation
// fails with ErrDeviceLost until Heal.
func (c *Context) Lost() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lost
}

// Heal clears a latched device loss, simulating a driver reset that
// brought the device back. Buffer contents survive in the simulation
// (accounting was never touched), but callers should treat the device
// as fresh.
func (c *Context) Heal() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lost = false
}

// InjectAllocFailure arms a one-shot fault: after n more buffer
// allocation attempts, the next allocation fails with
// ErrOutOfDeviceMemory regardless of capacity. Real devices fail
// allocations for reasons beyond raw capacity (fragmentation, runtime
// reserves), and strategies must clean up wherever the failure lands;
// the fault-injection tests sweep n across whole executions. It is
// shorthand for attaching a fresh FaultPlan with a single
// FailNth(FaultAlloc, n) rule — and like SetFaultPlan it replaces any
// plan already attached.
func (c *Context) InjectAllocFailure(n int) {
	c.SetFaultPlan(NewFaultPlan(0).FailNth(FaultAlloc, n))
}

// faultPoint runs the fault check for one device operation: a latched
// device loss fails everything, and otherwise the attached plan (if
// any) decides. Injected errors are typed *FaultError; an EffectPanic
// rule panics from here, inside the operation.
func (c *Context) faultPoint(op FaultOp, name string) error {
	c.mu.Lock()
	lost, plan := c.lost, c.fplan
	c.mu.Unlock()
	if lost {
		return &FaultError{Op: op, Device: c.dev.spec.Name, Name: name, Err: ErrDeviceLost}
	}
	if plan == nil {
		return nil
	}
	effect, inj, fired := plan.fire(op)
	if !fired {
		return nil
	}
	switch effect {
	case EffectPanic:
		panic(fmt.Sprintf("ocl: injected panic: device %q: %s %q", c.dev.spec.Name, op, name))
	case EffectDeviceLost:
		c.mu.Lock()
		c.lost = true
		c.mu.Unlock()
		return &FaultError{Op: op, Device: c.dev.spec.Name, Name: name, Err: ErrDeviceLost}
	}
	if inj == nil {
		inj = faultSentinel(op)
	}
	return &FaultError{Op: op, Device: c.dev.spec.Name, Name: name, Err: inj}
}

// Device returns the context's device.
func (c *Context) Device() *Device { return c.dev }

// Used returns the bytes currently allocated to live buffers.
func (c *Context) Used() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

// Peak returns the high-water mark of allocated bytes since the context
// was created or ResetPeak was last called.
func (c *Context) Peak() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.peak
}

// LiveBuffers returns the number of unreleased buffers.
func (c *Context) LiveBuffers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.live
}

// Allocations returns the total number of successful buffer allocations.
func (c *Context) Allocations() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.alloc
}

// ResetPeak sets the high-water mark to the current usage, so a fresh
// experiment can be measured on a long-lived context.
func (c *Context) ResetPeak() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.peak = c.used
}

// Buffer is a device global-memory allocation, mirroring cl_mem. Elements
// may be scalar (Width 1) or OpenCL vector typed (Width 2 or 4, as the
// fusion code generator uses float2/float4).
type Buffer struct {
	ctx   *Context
	label string
	data  []float32
	elems int
	width int
	bytes int64

	mu       sync.Mutex
	released bool
	// pool, pooled and resident implement arena-backed buffers: a buffer
	// with a pool recycles into it on Release instead of freeing; pooled
	// marks it idle in a free list; resident marks it owned by the
	// arena's device-resident source cache, where Release only drops the
	// slot's in-use reference (resKey names the slot) — the buffer stays
	// on the device until the arena drains or evicts it under memory
	// pressure.
	pool     *Arena
	pooled   bool
	resident bool
	resKey   string
}

// NewBuffer allocates a device buffer of elems elements, each width
// float32 components wide. The label is used in diagnostics and event
// records. Allocation fails with an *AllocError if the buffer alone
// exceeds the device's max allocation size or if it would push total
// usage past global memory capacity.
func (c *Context) NewBuffer(label string, elems, width int) (*Buffer, error) {
	if elems < 0 || width < 1 {
		return nil, fmt.Errorf("ocl: buffer %q: invalid shape %d x %d", label, elems, width)
	}
	bytes := int64(elems) * int64(width) * 4
	spec := c.dev.spec

	if ferr := c.faultPoint(FaultAlloc, label); ferr != nil {
		// Capacity-class injections keep the *AllocError shape real
		// capacity failures have always had, so callers classify both
		// paths identically.
		if errors.Is(ferr, ErrOutOfDeviceMemory) || errors.Is(ferr, ErrAllocTooLarge) {
			var fe *FaultError
			cause := ferr
			if errors.As(ferr, &fe) {
				cause = fe.Err
			}
			c.mu.Lock()
			used := c.used
			c.mu.Unlock()
			return nil, &AllocError{Device: spec.Name, Buffer: label, Requested: bytes, InUse: used, Capacity: spec.GlobalMemSize, Err: cause}
		}
		return nil, ferr
	}

	c.mu.Lock()
	if bytes > spec.MaxAllocSize {
		err := &AllocError{Device: spec.Name, Buffer: label, Requested: bytes, InUse: c.used, Capacity: spec.GlobalMemSize, Err: ErrAllocTooLarge}
		c.mu.Unlock()
		return nil, err
	}
	if c.used+bytes > spec.GlobalMemSize {
		err := &AllocError{Device: spec.Name, Buffer: label, Requested: bytes, InUse: c.used, Capacity: spec.GlobalMemSize, Err: ErrOutOfDeviceMemory}
		c.mu.Unlock()
		return nil, err
	}
	c.used += bytes
	if c.used > c.peak {
		c.peak = c.used
	}
	c.live++
	c.alloc++
	c.mu.Unlock()

	return &Buffer{
		ctx:   c,
		label: label,
		data:  make([]float32, elems*width),
		elems: elems,
		width: width,
		bytes: bytes,
	}, nil
}

// MustBuffer is NewBuffer for tests and examples where allocation cannot
// fail; it panics on error.
func (c *Context) MustBuffer(label string, elems, width int) *Buffer {
	b, err := c.NewBuffer(label, elems, width)
	if err != nil {
		panic(err)
	}
	return b
}

// Release frees the buffer's device memory. Releasing twice is a no-op,
// matching clReleaseMemObject reference semantics for a single owner.
// Arena-backed buffers do not free: a pooled buffer recycles into its
// arena's free lists (still allocated on the device, ready for reuse),
// and a resident source buffer only returns its hand-out reference to
// the arena — the buffer stays on the device until Drain, a shape
// change, or memory-pressure eviction retires it.
func (b *Buffer) Release() {
	b.mu.Lock()
	if b.released || b.pooled {
		b.mu.Unlock()
		return
	}
	if b.resident {
		pool, key := b.pool, b.resKey
		b.mu.Unlock()
		if pool != nil && key != "" {
			pool.residentReleased(key, b)
		}
		return
	}
	if b.pool != nil {
		pool := b.pool
		b.pooled = true
		b.mu.Unlock()
		pool.recycle(b)
		return
	}
	b.released = true
	b.mu.Unlock()

	b.ctx.mu.Lock()
	b.ctx.used -= b.bytes
	b.ctx.live--
	b.ctx.mu.Unlock()
}

// adopt reshapes a recycled pooled buffer for its next checkout. The
// requested shape's byte size equals the buffer's allocation (free
// lists are keyed by byte size), so only the logical view changes.
func (b *Buffer) adopt(label string, elems, width int) {
	b.mu.Lock()
	b.label = label
	b.elems = elems
	b.width = width
	b.pooled = false
	b.mu.Unlock()
}

// Released reports whether the buffer has been released.
func (b *Buffer) Released() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.released
}

// Label returns the diagnostic label given at allocation.
func (b *Buffer) Label() string { return b.label }

// Elems returns the number of elements in the buffer.
func (b *Buffer) Elems() int { return b.elems }

// Width returns the number of float32 components per element.
func (b *Buffer) Width() int { return b.width }

// Bytes returns the buffer's size in bytes.
func (b *Buffer) Bytes() int64 { return b.bytes }

// Data exposes the backing storage for kernel execution. It is the
// simulated device memory; host code outside kernels should use the
// queue's ReadBuffer/WriteBuffer so transfers are counted and costed.
func (b *Buffer) Data() []float32 { return b.data }
