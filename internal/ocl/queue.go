package ocl

import (
	"fmt"
	"sync"
	"time"
)

// EventKind categorizes a device event, matching the three categories the
// paper's environment interface records and Table II counts.
type EventKind int

const (
	// WriteEvent is a host-to-device transfer (Dev-W in Table II).
	WriteEvent EventKind = iota
	// ReadEvent is a device-to-host transfer (Dev-R in Table II).
	ReadEvent
	// KernelEvent is a kernel execution (K-Exe in Table II).
	KernelEvent
)

// String names the event kind as in the paper's tables.
func (k EventKind) String() string {
	switch k {
	case WriteEvent:
		return "Dev-W"
	case ReadEvent:
		return "Dev-R"
	case KernelEvent:
		return "K-Exe"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one profiled device operation, mirroring the OpenCL device
// profiling API (CL_PROFILING_COMMAND_QUEUED/START/END). Queued, Start
// and End are offsets on the queue's simulated in-order timeline; Wall is
// the real host time the simulated operation took to execute.
type Event struct {
	Kind       EventKind
	Name       string // buffer label or kernel name
	Bytes      int64  // bytes transferred (transfers only)
	GlobalSize int    // ND-range size (kernels only)
	Queued     time.Duration
	Start      time.Duration
	End        time.Duration
	Wall       time.Duration
}

// Duration returns the modeled device time of the event.
func (e Event) Duration() time.Duration { return e.End - e.Start }

// Queue is a simulated in-order command queue with profiling enabled,
// mirroring cl_command_queue. Every enqueue executes synchronously on the
// host (the simulated device) and advances the queue's modeled timeline
// by the cost model's duration for the operation.
type Queue struct {
	ctx *Context

	mu     sync.Mutex
	now    time.Duration
	events []Event
	prof   Profile
}

// NewQueue creates a profiling command queue on the context.
func NewQueue(ctx *Context) *Queue {
	return &Queue{ctx: ctx}
}

// Context returns the queue's context.
func (q *Queue) Context() *Context { return q.ctx }

// record appends the event and folds it into the running profile.
func (q *Queue) record(kind EventKind, name string, bytes int64, n int, modeled, wall time.Duration) Event {
	q.mu.Lock()
	defer q.mu.Unlock()
	e := Event{
		Kind:       kind,
		Name:       name,
		Bytes:      bytes,
		GlobalSize: n,
		Queued:     q.now,
		Start:      q.now,
		End:        q.now + modeled,
		Wall:       wall,
	}
	q.now = e.End
	q.events = append(q.events, e)
	q.prof.add(e)
	return e
}

// WriteBuffer copies src into the device buffer (clEnqueueWriteBuffer)
// and records a host-to-device event. src must not exceed the buffer.
func (q *Queue) WriteBuffer(dst *Buffer, src []float32) (Event, error) {
	if dst.Released() {
		return Event{}, fmt.Errorf("%w: write to %q", ErrReleasedBuffer, dst.label)
	}
	if len(src) > len(dst.data) {
		return Event{}, fmt.Errorf("ocl: write to %q: %d floats exceed buffer size %d", dst.label, len(src), len(dst.data))
	}
	if err := q.ctx.faultPoint(FaultWrite, dst.label); err != nil {
		return Event{}, err
	}
	start := time.Now()
	copy(dst.data, src)
	wall := time.Since(start)
	bytes := int64(len(src)) * 4
	return q.record(WriteEvent, dst.label, bytes, 0, q.ctx.dev.transferTime(bytes), wall), nil
}

// ReadBuffer copies the device buffer into dst (clEnqueueReadBuffer) and
// records a device-to-host event. dst must not exceed the buffer.
func (q *Queue) ReadBuffer(dst []float32, src *Buffer) (Event, error) {
	if src.Released() {
		return Event{}, fmt.Errorf("%w: read from %q", ErrReleasedBuffer, src.label)
	}
	if len(dst) > len(src.data) {
		return Event{}, fmt.Errorf("ocl: read from %q: %d floats exceed buffer size %d", src.label, len(dst), len(src.data))
	}
	if err := q.ctx.faultPoint(FaultRead, src.label); err != nil {
		return Event{}, err
	}
	start := time.Now()
	copy(dst, src.data)
	wall := time.Since(start)
	bytes := int64(len(dst)) * 4
	return q.record(ReadEvent, src.label, bytes, 0, q.ctx.dev.transferTime(bytes), wall), nil
}

// Run enqueues the kernel over a global work size of n elements
// (clEnqueueNDRangeKernel with a 1-D range). The kernel body executes in
// parallel on the simulated device; the recorded event carries the
// modeled duration from the device cost model.
func (q *Queue) Run(k *Kernel, n int, bufs []*Buffer, scalars []float64) (Event, error) {
	passes := k.Passes
	if len(passes) == 0 {
		if k.Fn == nil {
			return Event{}, &ArgError{Kernel: k.Name, Index: -1, Reason: "kernel has no executable body"}
		}
		passes = []KernelFunc{k.Fn}
	}
	if k.NumBufs > 0 && len(bufs) != k.NumBufs {
		return Event{}, &ArgError{Kernel: k.Name, Index: -1,
			Reason: fmt.Sprintf("got %d buffer arguments, want %d", len(bufs), k.NumBufs)}
	}
	if n < 0 {
		return Event{}, &ArgError{Kernel: k.Name, Index: -1, Reason: fmt.Sprintf("negative global size %d", n)}
	}
	views := make([]View, len(bufs))
	for i, b := range bufs {
		if b == nil {
			return Event{}, &ArgError{Kernel: k.Name, Index: i, Reason: "nil buffer"}
		}
		if b.Released() {
			return Event{}, &ArgError{Kernel: k.Name, Index: i, Reason: fmt.Sprintf("released buffer %q", b.label)}
		}
		views[i] = View{Data: b.data, Elems: b.elems, Width: b.width}
	}
	if err := q.ctx.faultPoint(FaultKernel, k.Name); err != nil {
		return Event{}, err
	}
	var wall time.Duration
	for _, pass := range passes {
		pass := pass
		wall += q.ctx.dev.execute(n, func(lo, hi int) { pass(lo, hi, views, scalars) })
	}
	return q.record(KernelEvent, k.Name, 0, n, q.ctx.dev.kernelTime(n, k.Cost), wall), nil
}

// Finish blocks until all enqueued work completes. The simulated queue is
// synchronous, so Finish is a no-op kept for API fidelity.
func (q *Queue) Finish() {}

// Now returns the queue's simulated elapsed device time.
func (q *Queue) Now() time.Duration {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.now
}

// Events returns a copy of all recorded events in enqueue order.
func (q *Queue) Events() []Event {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]Event, len(q.events))
	copy(out, q.events)
	return out
}

// Profile returns a snapshot of the aggregated event profile.
func (q *Queue) Profile() Profile {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.prof
}

// Reset clears the event log, profile and simulated timeline.
func (q *Queue) Reset() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.now = 0
	q.events = nil
	q.prof = Profile{}
}
