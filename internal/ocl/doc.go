// Package ocl is a simulated OpenCL runtime used as the device substrate
// for the derived-field-generation framework.
//
// The original system (Harrison et al., SC 2012) dispatches OpenCL kernels
// through PyOpenCL onto an Intel CPU platform and an NVIDIA Tesla M2050
// GPU. This package reproduces the subset of the OpenCL 1.1 host API the
// framework needs — platforms, devices, contexts, buffers, command queues,
// kernels and profiling events — with two properties:
//
//  1. Kernels really execute. Enqueued kernels run data-parallel across a
//     goroutine worker pool on the host, so every result is numerically
//     real and can be validated against golden implementations.
//
//  2. Device behaviour is modeled. Each device carries a finite global
//     memory size (allocations beyond it fail, as on the 3 GB M2050) and
//     a calibrated cost model (kernel launch overhead, arithmetic
//     throughput, device memory bandwidth, host-device transfer bandwidth
//     and latency). Profiling events report both the modeled device time
//     and the real wall time, so experiments reproduce the shape of the
//     paper's runtime and memory figures deterministically.
//
// The Env type mirrors the paper's "OpenCL environment interface": it
// wraps a context and an in-order profiling queue, categorizes every
// device event (host-to-device write, device-to-host read, kernel
// execution) and tracks the global-memory high-water mark.
package ocl
