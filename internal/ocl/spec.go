package ocl

import (
	"fmt"
	"time"
)

// DeviceType distinguishes the two target architectures evaluated in the
// paper: a multi-core CPU exposed as an OpenCL device, and a discrete GPU.
type DeviceType int

const (
	// CPUDevice models an OpenCL CPU platform (the paper's dual-socket
	// Intel X5660 "Westmere" under the Intel OpenCL runtime).
	CPUDevice DeviceType = iota
	// GPUDevice models a discrete accelerator (the paper's NVIDIA Tesla
	// M2050 under the NVIDIA OpenCL runtime).
	GPUDevice
)

// String returns the OpenCL-style name of the device type.
func (t DeviceType) String() string {
	switch t {
	case CPUDevice:
		return "CPU"
	case GPUDevice:
		return "GPU"
	default:
		return fmt.Sprintf("DeviceType(%d)", int(t))
	}
}

// DeviceSpec is the static description of a simulated OpenCL device: its
// identity, capacity limits, and the parameters of its cost model.
//
// The cost model is intentionally simple — a roofline over arithmetic
// throughput and memory bandwidth plus fixed per-request overheads — but
// it is sufficient to reproduce the orderings the paper reports: fusion <
// staged < roundtrip, GPU faster than CPU whenever the data fits, and
// transfer-dominated runtimes for the roundtrip strategy.
type DeviceSpec struct {
	Name   string
	Vendor string
	Type   DeviceType

	// ComputeUnits is CL_DEVICE_MAX_COMPUTE_UNITS: cores for a CPU
	// device, streaming multiprocessors for a GPU.
	ComputeUnits int
	// ClockMHz is CL_DEVICE_MAX_CLOCK_FREQUENCY.
	ClockMHz int
	// GlobalMemSize is CL_DEVICE_GLOBAL_MEM_SIZE in bytes. Buffer
	// allocations that would exceed it fail, reproducing the paper's
	// failed GPU test cases.
	GlobalMemSize int64
	// MaxAllocSize is CL_DEVICE_MAX_MEM_ALLOC_SIZE in bytes (OpenCL
	// guarantees at least a quarter of global memory).
	MaxAllocSize int64

	// GFLOPS is peak single-precision arithmetic throughput in Gflop/s.
	GFLOPS float64
	// MemBandwidth is device global-memory bandwidth in bytes/s.
	MemBandwidth float64
	// TransferBandwidth is host<->device bandwidth in bytes/s (PCIe for
	// a GPU; effective copy bandwidth for a CPU device).
	TransferBandwidth float64
	// TransferLatency is the fixed overhead of one host<->device
	// transfer request.
	TransferLatency time.Duration
	// KernelLaunch is the fixed overhead of one kernel dispatch.
	KernelLaunch time.Duration

	// LocalMemBandwidth is aggregate work-group local-memory bandwidth
	// in bytes/s, pricing the staged stencil tiles of scheduled kernels.
	// Zero selects the default ratio over MemBandwidth, so specs predating
	// the schedule layer stay valid.
	LocalMemBandwidth float64
	// VectorGain is the effective-bandwidth multiplier a kernel earns
	// when its global access is vectorized (float4 loads saturate wide
	// load units that scalar access leaves idle). Values <= 1 mean no
	// gain; zero keeps old specs valid.
	VectorGain float64
}

// defaultLocalBandwidthRatio is the LocalMemBandwidth/MemBandwidth ratio
// assumed when a spec leaves LocalMemBandwidth zero: on-chip SRAM runs
// roughly an order of magnitude ahead of DRAM on both paper devices.
const defaultLocalBandwidthRatio = 8

// Validate reports a descriptive error if the spec is not usable.
func (s *DeviceSpec) Validate() error {
	switch {
	case s.Name == "":
		return fmt.Errorf("ocl: device spec missing name")
	case s.ComputeUnits <= 0:
		return fmt.Errorf("ocl: device %q: compute units must be positive, got %d", s.Name, s.ComputeUnits)
	case s.GlobalMemSize <= 0:
		return fmt.Errorf("ocl: device %q: global memory must be positive, got %d", s.Name, s.GlobalMemSize)
	case s.MaxAllocSize <= 0 || s.MaxAllocSize > s.GlobalMemSize:
		return fmt.Errorf("ocl: device %q: max alloc size %d out of range (0, %d]", s.Name, s.MaxAllocSize, s.GlobalMemSize)
	case s.GFLOPS <= 0 || s.MemBandwidth <= 0 || s.TransferBandwidth <= 0:
		return fmt.Errorf("ocl: device %q: throughputs must be positive", s.Name)
	}
	return nil
}

// Platform is a named collection of devices, mirroring cl_platform_id.
// The test cluster in the paper (LLNL's Edge) exposes both an Intel and
// an NVIDIA platform on every batch node.
type Platform struct {
	Name    string
	Vendor  string
	Version string
	Devices []*Device
}

const (
	kib = int64(1) << 10
	mib = int64(1) << 20
	gib = int64(1) << 30
)

// XeonX5660Spec describes the paper's dual-socket 2.8 GHz six-core Intel
// X5660 node as a single OpenCL CPU device with 96 GB of host RAM.
//
// memScale divides the device's memory sizes; pass 1 for the paper's
// scale. Experiments in this repository default to memScale 64 together
// with grids scaled by the same factor, which preserves exactly which
// test cases fit (memory formulas are linear in cell count).
func XeonX5660Spec(memScale int64) DeviceSpec {
	if memScale < 1 {
		memScale = 1
	}
	return DeviceSpec{
		Name:          "Intel Xeon X5660",
		Vendor:        "Intel(R) Corporation",
		Type:          CPUDevice,
		ComputeUnits:  12,
		ClockMHz:      2800,
		GlobalMemSize: 96 * gib / memScale,
		MaxAllocSize:  24 * gib / memScale,
		GFLOPS:        134, // 12 cores x 2.8 GHz x 4-wide SP SSE
		MemBandwidth:  30e9,
		// In-host clEnqueueWriteBuffer copies run at roughly one core's
		// memcpy speed — comparable to pinned PCIe gen2, which is why
		// the paper sees the GPU "faster or on-par" even for the
		// transfer-dominated roundtrip strategy.
		TransferBandwidth: 5.5e9,
		TransferLatency:   25 * time.Microsecond,
		KernelLaunch:      40 * time.Microsecond,
		// Schedule-layer terms: "local memory" on a CPU OpenCL device is
		// the L1/L2 working set, and float4 loads map onto the same SSE
		// units the GFLOPS figure assumes.
		LocalMemBandwidth: 240e9,
		VectorGain:        1.15,
	}
}

// TeslaM2050Spec describes the paper's NVIDIA Tesla M2050 GPU: 3 GB of
// GDDR5, 14 SMs, on a dedicated x16 PCIe gen-2 slot.
//
// memScale divides the device's memory sizes (see XeonX5660Spec).
func TeslaM2050Spec(memScale int64) DeviceSpec {
	if memScale < 1 {
		memScale = 1
	}
	return DeviceSpec{
		Name:              "NVIDIA Tesla M2050",
		Vendor:            "NVIDIA Corporation",
		Type:              GPUDevice,
		ComputeUnits:      14,
		ClockMHz:          1150,
		GlobalMemSize:     3 * gib / memScale,
		MaxAllocSize:      3 * gib / 4 / memScale,
		GFLOPS:            1030,
		MemBandwidth:      148e9,
		TransferBandwidth: 5.8e9, // PCIe gen2 x16 effective
		TransferLatency:   15 * time.Microsecond,
		KernelLaunch:      10 * time.Microsecond,
		// Schedule-layer terms: Fermi shared memory (14 SMs x 64 B/clk)
		// and the coalescer's preference for 128-bit accesses.
		LocalMemBandwidth: 1000e9,
		VectorGain:        1.3,
	}
}

// EdgeNodePlatforms returns the two OpenCL platforms of one batch node of
// LLNL's Edge cluster as used in the paper: an Intel platform with one
// CPU device and an NVIDIA platform with two Tesla M2050 GPUs.
func EdgeNodePlatforms(memScale int64) []*Platform {
	cpu := NewDevice(XeonX5660Spec(memScale))
	gpu0 := NewDevice(TeslaM2050Spec(memScale))
	gpu1 := NewDevice(TeslaM2050Spec(memScale))
	return []*Platform{
		{
			Name:    "Intel(R) OpenCL",
			Vendor:  "Intel(R) Corporation",
			Version: "OpenCL 1.1",
			Devices: []*Device{cpu},
		},
		{
			Name:    "NVIDIA CUDA",
			Vendor:  "NVIDIA Corporation",
			Version: "OpenCL 1.1 CUDA 4.2",
			Devices: []*Device{gpu0, gpu1},
		},
	}
}
