package ocl

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

// testDevice returns a small GPU-like device for tests: 1 MiB of global
// memory so allocation failures are easy to provoke.
func testDevice() *Device {
	return NewDevice(DeviceSpec{
		Name:              "test-gpu",
		Vendor:            "test",
		Type:              GPUDevice,
		ComputeUnits:      4,
		ClockMHz:          1000,
		GlobalMemSize:     1 << 20,
		MaxAllocSize:      1 << 19,
		GFLOPS:            100,
		MemBandwidth:      50e9,
		TransferBandwidth: 5e9,
		TransferLatency:   10 * time.Microsecond,
		KernelLaunch:      5 * time.Microsecond,
	})
}

func TestDeviceTypeString(t *testing.T) {
	if CPUDevice.String() != "CPU" || GPUDevice.String() != "GPU" {
		t.Fatalf("device type names wrong: %v %v", CPUDevice, GPUDevice)
	}
	if got := DeviceType(7).String(); !strings.Contains(got, "7") {
		t.Fatalf("unknown device type should embed the value, got %q", got)
	}
}

func TestSpecValidate(t *testing.T) {
	good := XeonX5660Spec(1)
	if err := good.Validate(); err != nil {
		t.Fatalf("paper CPU spec should validate: %v", err)
	}
	cases := []func(*DeviceSpec){
		func(s *DeviceSpec) { s.Name = "" },
		func(s *DeviceSpec) { s.ComputeUnits = 0 },
		func(s *DeviceSpec) { s.GlobalMemSize = 0 },
		func(s *DeviceSpec) { s.MaxAllocSize = 0 },
		func(s *DeviceSpec) { s.MaxAllocSize = s.GlobalMemSize + 1 },
		func(s *DeviceSpec) { s.GFLOPS = 0 },
		func(s *DeviceSpec) { s.MemBandwidth = -1 },
		func(s *DeviceSpec) { s.TransferBandwidth = 0 },
	}
	for i, mutate := range cases {
		s := XeonX5660Spec(1)
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: invalid spec passed validation", i)
		}
	}
}

func TestNewDevicePanicsOnInvalidSpec(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewDevice should panic on an invalid spec")
		}
	}()
	NewDevice(DeviceSpec{})
}

func TestPaperSpecs(t *testing.T) {
	cpu := XeonX5660Spec(1)
	if cpu.Type != CPUDevice || cpu.ComputeUnits != 12 {
		t.Errorf("X5660: want CPU with 12 compute units, got %v/%d", cpu.Type, cpu.ComputeUnits)
	}
	if cpu.GlobalMemSize != 96*gib {
		t.Errorf("X5660: want 96 GiB, got %d", cpu.GlobalMemSize)
	}
	gpu := TeslaM2050Spec(1)
	if gpu.Type != GPUDevice || gpu.GlobalMemSize != 3*gib {
		t.Errorf("M2050: want GPU with 3 GiB, got %v/%d", gpu.Type, gpu.GlobalMemSize)
	}
	// Scaling divides memory but leaves throughputs alone.
	scaled := TeslaM2050Spec(64)
	if scaled.GlobalMemSize != 3*gib/64 {
		t.Errorf("scaled M2050: want %d, got %d", 3*gib/64, scaled.GlobalMemSize)
	}
	if scaled.GFLOPS != gpu.GFLOPS || scaled.TransferBandwidth != gpu.TransferBandwidth {
		t.Error("memory scaling must not change throughput parameters")
	}
	// A nonsense scale clamps to 1.
	if TeslaM2050Spec(0).GlobalMemSize != 3*gib {
		t.Error("memScale < 1 should clamp to 1")
	}
}

func TestEdgeNodePlatforms(t *testing.T) {
	plats := EdgeNodePlatforms(64)
	if len(plats) != 2 {
		t.Fatalf("want 2 platforms (Intel, NVIDIA), got %d", len(plats))
	}
	if n := len(plats[0].Devices); n != 1 || plats[0].Devices[0].Type() != CPUDevice {
		t.Errorf("Intel platform: want 1 CPU device, got %d devices", n)
	}
	if n := len(plats[1].Devices); n != 2 || plats[1].Devices[0].Type() != GPUDevice {
		t.Errorf("NVIDIA platform: want 2 GPU devices, got %d devices", n)
	}
	if plats[1].Devices[0] == plats[1].Devices[1] {
		t.Error("the two GPUs must be independent devices")
	}
}

func TestBufferAllocationAccounting(t *testing.T) {
	ctx := NewContext(testDevice())
	b1, err := ctx.NewBuffer("a", 1024, 1) // 4 KiB
	if err != nil {
		t.Fatal(err)
	}
	if ctx.Used() != 4096 || ctx.Peak() != 4096 || ctx.LiveBuffers() != 1 {
		t.Fatalf("after one alloc: used=%d peak=%d live=%d", ctx.Used(), ctx.Peak(), ctx.LiveBuffers())
	}
	b2, err := ctx.NewBuffer("b", 1024, 4) // 16 KiB (float4)
	if err != nil {
		t.Fatal(err)
	}
	if b2.Bytes() != 16384 {
		t.Fatalf("float4 buffer of 1024 elems should be 16384 B, got %d", b2.Bytes())
	}
	if ctx.Used() != 20480 || ctx.Peak() != 20480 {
		t.Fatalf("after two allocs: used=%d peak=%d", ctx.Used(), ctx.Peak())
	}
	b1.Release()
	if ctx.Used() != 16384 {
		t.Fatalf("release must return memory: used=%d", ctx.Used())
	}
	if ctx.Peak() != 20480 {
		t.Fatalf("peak must be a high-water mark: peak=%d", ctx.Peak())
	}
	b1.Release() // double release is a no-op
	if ctx.Used() != 16384 || ctx.LiveBuffers() != 1 {
		t.Fatal("double release must not under-count")
	}
	ctx.ResetPeak()
	if ctx.Peak() != ctx.Used() {
		t.Fatal("ResetPeak should set peak to current usage")
	}
	if ctx.Allocations() != 2 {
		t.Fatalf("want 2 total allocations, got %d", ctx.Allocations())
	}
}

func TestBufferAllocationFailures(t *testing.T) {
	ctx := NewContext(testDevice()) // 1 MiB global, 512 KiB max alloc

	// A single buffer above MaxAllocSize fails with ErrAllocTooLarge.
	_, err := ctx.NewBuffer("huge", 1<<18, 1) // 1 MiB > 512 KiB max alloc
	if !errors.Is(err, ErrAllocTooLarge) {
		t.Fatalf("want ErrAllocTooLarge, got %v", err)
	}

	// Filling the device then allocating fails with ErrOutOfDeviceMemory.
	var live []*Buffer
	for i := 0; i < 2; i++ {
		b, err := ctx.NewBuffer("fill", 1<<17, 1) // 512 KiB each
		if err != nil {
			t.Fatal(err)
		}
		live = append(live, b)
	}
	_, err = ctx.NewBuffer("one-more", 1024, 1)
	if !errors.Is(err, ErrOutOfDeviceMemory) {
		t.Fatalf("want ErrOutOfDeviceMemory, got %v", err)
	}
	var ae *AllocError
	if !errors.As(err, &ae) {
		t.Fatalf("want *AllocError, got %T", err)
	}
	if ae.InUse != 1<<20 || ae.Capacity != 1<<20 || ae.Buffer != "one-more" {
		t.Fatalf("alloc error details wrong: %+v", ae)
	}
	if msg := ae.Error(); !strings.Contains(msg, "one-more") || !strings.Contains(msg, "test-gpu") {
		t.Fatalf("alloc error message should name buffer and device: %q", msg)
	}

	// Releasing makes room again.
	live[0].Release()
	if _, err := ctx.NewBuffer("fits-now", 1024, 1); err != nil {
		t.Fatalf("allocation after release should succeed: %v", err)
	}

	// Invalid shapes are rejected.
	if _, err := ctx.NewBuffer("bad", -1, 1); err == nil {
		t.Error("negative elems must fail")
	}
	if _, err := ctx.NewBuffer("bad", 1, 0); err == nil {
		t.Error("zero width must fail")
	}
}

func TestQueueWriteReadRoundTrip(t *testing.T) {
	env := NewEnv(testDevice())
	src := make([]float32, 1000)
	for i := range src {
		src[i] = float32(i) * 0.5
	}
	buf, err := env.Upload("field", src, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := env.Download(buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if got[i] != src[i] {
			t.Fatalf("round trip mismatch at %d: %v != %v", i, got[i], src[i])
		}
	}
	p := env.Profile()
	if p.Writes != 1 || p.Reads != 1 || p.Kernels != 0 {
		t.Fatalf("profile counts wrong: %+v", p)
	}
	if p.WriteBytes != 4000 || p.ReadBytes != 4000 {
		t.Fatalf("profile bytes wrong: %+v", p)
	}
	if p.WriteTime <= 0 || p.ReadTime <= 0 {
		t.Fatal("modeled transfer times must be positive")
	}
}

func TestQueueTransferValidation(t *testing.T) {
	env := NewEnv(testDevice())
	buf := env.Context().MustBuffer("b", 10, 1)
	if _, err := env.Queue().WriteBuffer(buf, make([]float32, 11)); err == nil {
		t.Error("oversized write must fail")
	}
	if _, err := env.Queue().ReadBuffer(make([]float32, 11), buf); err == nil {
		t.Error("oversized read must fail")
	}
	buf.Release()
	if _, err := env.Queue().WriteBuffer(buf, make([]float32, 1)); !errors.Is(err, ErrReleasedBuffer) {
		t.Errorf("write to released buffer: want ErrReleasedBuffer, got %v", err)
	}
	if _, err := env.Queue().ReadBuffer(make([]float32, 1), buf); !errors.Is(err, ErrReleasedBuffer) {
		t.Errorf("read from released buffer: want ErrReleasedBuffer, got %v", err)
	}
}

// addKernel builds a c = a + b element-wise kernel for tests.
func addKernel() *Kernel {
	return &Kernel{
		Name:    "kadd",
		Source:  "__kernel void kadd(__global const float *a, __global const float *b, __global float *c) { int i = get_global_id(0); c[i] = a[i] + b[i]; }",
		NumBufs: 3,
		Cost:    Cost{Flops: 1, LoadBytes: 8, StoreBytes: 4},
		Fn: func(lo, hi int, bufs []View, _ []float64) {
			a, b, c := bufs[0].Data, bufs[1].Data, bufs[2].Data
			for i := lo; i < hi; i++ {
				c[i] = a[i] + b[i]
			}
		},
	}
}

func TestKernelExecution(t *testing.T) {
	env := NewEnv(testDevice())
	const n = 50000
	a := make([]float32, n)
	b := make([]float32, n)
	for i := 0; i < n; i++ {
		a[i] = float32(i)
		b[i] = float32(2 * i)
	}
	ba, _ := env.Upload("a", a, 1)
	bb, _ := env.Upload("b", b, 1)
	bc := env.Context().MustBuffer("c", n, 1)
	if err := env.Run(addKernel(), n, []*Buffer{ba, bb, bc}, nil); err != nil {
		t.Fatal(err)
	}
	got, _ := env.Download(bc)
	for i := 0; i < n; i++ {
		if got[i] != float32(3*i) {
			t.Fatalf("add kernel wrong at %d: got %v want %v", i, got[i], float32(3*i))
		}
	}
	p := env.Profile()
	if p.Kernels != 1 {
		t.Fatalf("want 1 kernel event, got %d", p.Kernels)
	}
	if p.KernelTime <= 0 {
		t.Fatal("modeled kernel time must be positive")
	}
}

func TestKernelLaunchValidation(t *testing.T) {
	env := NewEnv(testDevice())
	k := addKernel()
	b := env.Context().MustBuffer("x", 8, 1)

	if err := env.Run(k, 8, []*Buffer{b}, nil); err == nil {
		t.Error("wrong buffer count must fail")
	}
	if err := env.Run(k, -1, []*Buffer{b, b, b}, nil); err == nil {
		t.Error("negative global size must fail")
	}
	if err := env.Run(k, 8, []*Buffer{b, nil, b}, nil); err == nil {
		t.Error("nil buffer must fail")
	}
	rb := env.Context().MustBuffer("y", 8, 1)
	rb.Release()
	if err := env.Run(k, 8, []*Buffer{b, rb, b}, nil); err == nil {
		t.Error("released buffer must fail")
	}
	var ae *ArgError
	err := env.Run(&Kernel{Name: "nofn"}, 8, nil, nil)
	if !errors.As(err, &ae) {
		t.Fatalf("kernel without body: want *ArgError, got %v", err)
	}
	if !strings.Contains(ae.Error(), "nofn") {
		t.Errorf("ArgError should name the kernel: %q", ae.Error())
	}
}

func TestKernelZeroGlobalSize(t *testing.T) {
	env := NewEnv(testDevice())
	b := env.Context().MustBuffer("x", 8, 1)
	if err := env.Run(addKernel(), 0, []*Buffer{b, b, b}, nil); err != nil {
		t.Fatalf("zero-size launch should succeed as a no-op: %v", err)
	}
	if env.Profile().Kernels != 1 {
		t.Fatal("zero-size launch still records a kernel event")
	}
}

func TestSimulatedTimelineIsInOrder(t *testing.T) {
	env := NewEnv(testDevice())
	b := env.Context().MustBuffer("x", 1024, 1)
	env.Queue().WriteBuffer(b, make([]float32, 1024))
	env.Run(addKernel(), 1024, []*Buffer{b, b, b}, nil)
	env.Queue().ReadBuffer(make([]float32, 1024), b)

	evs := env.Queue().Events()
	if len(evs) != 3 {
		t.Fatalf("want 3 events, got %d", len(evs))
	}
	var prevEnd time.Duration
	for i, e := range evs {
		if e.Start != prevEnd {
			t.Errorf("event %d: in-order queue must start when the previous ends (start=%v prevEnd=%v)", i, e.Start, prevEnd)
		}
		if e.End <= e.Start {
			t.Errorf("event %d: modeled duration must be positive", i)
		}
		prevEnd = e.End
	}
	if env.Queue().Now() != prevEnd {
		t.Error("queue Now() must equal the last event's end")
	}
	kinds := []EventKind{WriteEvent, KernelEvent, ReadEvent}
	for i, e := range evs {
		if e.Kind != kinds[i] {
			t.Errorf("event %d kind: got %v want %v", i, e.Kind, kinds[i])
		}
	}
}

func TestCostModelOrdering(t *testing.T) {
	// Given identical work, the modeled GPU kernel is clearly faster
	// than the CPU kernel, while per-byte transfer costs are comparable
	// (pinned PCIe gen2 vs in-host copies) — the regime in which the
	// paper's GPU is "faster or on-par" for every case it completes.
	cpu := NewDevice(XeonX5660Spec(64))
	gpu := NewDevice(TeslaM2050Spec(64))
	cost := Cost{Flops: 20, LoadBytes: 16, StoreBytes: 4}
	n := 10_000_000
	gt, ct := gpu.kernelTime(n, cost), cpu.kernelTime(n, cost)
	if gt >= ct {
		t.Errorf("GPU kernel should be modeled faster: gpu=%v cpu=%v", gt, ct)
	}
	bytes := int64(400 << 20)
	gtr, ctr := gpu.transferTime(bytes), cpu.transferTime(bytes)
	ratio := float64(gtr) / float64(ctr)
	if ratio < 0.5 || ratio > 1.0 {
		t.Errorf("transfer costs should be comparable with the GPU never slower: gpu=%v cpu=%v", gtr, ctr)
	}
}

func TestCostModelScalesWithWork(t *testing.T) {
	dev := testDevice()
	cost := Cost{Flops: 10, LoadBytes: 12, StoreBytes: 4}
	small := dev.kernelTime(1000, cost)
	big := dev.kernelTime(1_000_000, cost)
	if big <= small {
		t.Errorf("kernel time must grow with global size: %v vs %v", small, big)
	}
	if dev.transferTime(1<<26) <= dev.transferTime(1<<10) {
		t.Error("transfer time must grow with bytes")
	}
}

func TestCostAdd(t *testing.T) {
	a := Cost{Flops: 1, LoadBytes: 2, StoreBytes: 3}
	b := Cost{Flops: 10, LoadBytes: 20, StoreBytes: 30}
	got := a.Add(b)
	if got != (Cost{Flops: 11, LoadBytes: 22, StoreBytes: 33}) {
		t.Fatalf("Cost.Add wrong: %+v", got)
	}
}

func TestProfileAddAndString(t *testing.T) {
	env := NewEnv(testDevice())
	b := env.Context().MustBuffer("x", 64, 1)
	env.Queue().WriteBuffer(b, make([]float32, 64))
	env.Run(addKernel(), 64, []*Buffer{b, b, b}, nil)
	p := env.Profile()

	sum := p.Add(p)
	if sum.Writes != 2*p.Writes || sum.Kernels != 2*p.Kernels || sum.WriteBytes != 2*p.WriteBytes {
		t.Fatalf("Profile.Add wrong: %+v", sum)
	}
	if sum.DeviceTime() != 2*p.DeviceTime() {
		t.Fatal("Profile.Add must sum modeled times")
	}
	if p.Events() != 2 {
		t.Fatalf("want 2 events, got %d", p.Events())
	}
	s := p.String()
	for _, want := range []string{"Dev-W=1", "Dev-R=0", "K-Exe=1"} {
		if !strings.Contains(s, want) {
			t.Errorf("Profile.String() missing %q: %s", want, s)
		}
	}
}

func TestQueueReset(t *testing.T) {
	env := NewEnv(testDevice())
	b := env.Context().MustBuffer("x", 64, 1)
	env.Queue().WriteBuffer(b, make([]float32, 64))
	env.Reset()
	if p := env.Profile(); p.Events() != 0 {
		t.Fatalf("reset queue should have no events: %+v", p)
	}
	if env.Queue().Now() != 0 {
		t.Fatal("reset queue timeline should be zero")
	}
	if env.PeakBytes() != env.Context().Used() {
		t.Fatal("Env.Reset should reset the high-water mark to current usage")
	}
}

func TestEnvUploadFailureRecordsNoEvent(t *testing.T) {
	env := NewEnv(testDevice())
	_, err := env.Upload("too-big", make([]float32, 1<<18), 1)
	if !errors.Is(err, ErrAllocTooLarge) {
		t.Fatalf("want ErrAllocTooLarge, got %v", err)
	}
	if env.Profile().Events() != 0 {
		t.Fatal("failed upload must not record events")
	}
}

// TestExecuteCoversRangeExactlyOnce drives the worker-pool splitter with
// random sizes and checks every index is visited exactly once.
func TestExecuteCoversRangeExactlyOnce(t *testing.T) {
	dev := testDevice()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200_000)
		marks := make([]int32, n)
		dev.execute(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				marks[i]++
			}
		})
		for _, m := range marks {
			if m != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestAllocReleaseConservation is a property test: any interleaving of
// allocations and releases conserves the context's byte accounting.
func TestAllocReleaseConservation(t *testing.T) {
	f := func(ops []uint16) bool {
		dev := NewDevice(XeonX5660Spec(1))
		ctx := NewContext(dev)
		var live []*Buffer
		var want int64
		for _, op := range ops {
			if op%3 == 0 && len(live) > 0 {
				i := int(op) % len(live)
				want -= live[i].Bytes()
				live[i].Release()
				live = append(live[:i], live[i+1:]...)
			} else {
				elems := int(op%1024) + 1
				b, err := ctx.NewBuffer("p", elems, 1)
				if err != nil {
					return false
				}
				want += b.Bytes()
				live = append(live, b)
			}
			if ctx.Used() != want {
				return false
			}
			if ctx.Peak() < ctx.Used() {
				return false
			}
		}
		for _, b := range live {
			b.Release()
		}
		return ctx.Used() == 0 && ctx.LiveBuffers() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestKernelWallTimeRecorded(t *testing.T) {
	env := NewEnv(testDevice())
	const n = 1 << 16
	b := env.Context().MustBuffer("x", n, 1)
	env.Run(addKernel(), n, []*Buffer{b, b, b}, nil)
	evs := env.Queue().Events()
	if evs[0].Wall < 0 {
		t.Fatal("wall time must be non-negative")
	}
	if evs[0].GlobalSize != n {
		t.Fatalf("kernel event should record global size: got %d", evs[0].GlobalSize)
	}
}

func TestEventKindString(t *testing.T) {
	if WriteEvent.String() != "Dev-W" || ReadEvent.String() != "Dev-R" || KernelEvent.String() != "K-Exe" {
		t.Fatal("event kind names must match the paper's Table II headers")
	}
	if got := EventKind(9).String(); !strings.Contains(got, "9") {
		t.Fatalf("unknown event kind should embed the value, got %q", got)
	}
}

func TestMultiPassKernel(t *testing.T) {
	// A two-pass kernel: pass 1 fills a scratch buffer, pass 2 consumes
	// values written by OTHER work items (a barrier-dependent pattern).
	// Both passes run inside one kernel dispatch -> one KernelEvent.
	env := NewEnv(testDevice())
	const n = 10000
	in := make([]float32, n)
	for i := range in {
		in[i] = float32(i)
	}
	bin, _ := env.Upload("in", in, 1)
	scratch := env.Context().MustBuffer("scratch", n, 1)
	out := env.Context().MustBuffer("out", n, 1)
	k := &Kernel{
		Name: "ktwopass",
		Cost: Cost{Flops: 2, LoadBytes: 8, StoreBytes: 8},
		Passes: []KernelFunc{
			func(lo, hi int, bufs []View, _ []float64) {
				a, s := bufs[0].Data, bufs[1].Data
				for i := lo; i < hi; i++ {
					s[i] = 2 * a[i]
				}
			},
			func(lo, hi int, bufs []View, _ []float64) {
				s, o := bufs[1].Data, bufs[2].Data
				for i := lo; i < hi; i++ {
					// Reads a neighbour's pass-1 result: requires the
					// inter-pass barrier the queue provides.
					j := (i + 1) % n
					o[i] = s[i] + s[j]
				}
			},
		},
	}
	if err := env.Run(k, n, []*Buffer{bin, scratch, out}, nil); err != nil {
		t.Fatal(err)
	}
	got, _ := env.Download(out)
	for i := 0; i < n; i++ {
		want := float32(2*i + 2*((i+1)%n))
		if got[i] != want {
			t.Fatalf("two-pass kernel wrong at %d: got %v want %v", i, got[i], want)
		}
	}
	if p := env.Profile(); p.Kernels != 1 {
		t.Fatalf("multi-pass kernel must record exactly one kernel event, got %d", p.Kernels)
	}
}

// TestConcurrentEnvsAreIndependent runs several environments (one per
// simulated device, as the distributed evaluation does) concurrently and
// checks accounting never bleeds across them.
func TestConcurrentEnvsAreIndependent(t *testing.T) {
	const workers = 8
	const rounds = 20
	errs := make(chan error, workers)
	for wi := 0; wi < workers; wi++ {
		go func(wi int) {
			env := NewEnv(NewDevice(TeslaM2050Spec(64)))
			k := addKernel()
			for r := 0; r < rounds; r++ {
				n := 1000 + 100*wi
				a := make([]float32, n)
				for i := range a {
					a[i] = float32(wi)
				}
				ba, err := env.Upload("a", a, 1)
				if err != nil {
					errs <- err
					return
				}
				out := env.Context().MustBuffer("out", n, 1)
				if err := env.Run(k, n, []*Buffer{ba, ba, out}, nil); err != nil {
					errs <- err
					return
				}
				got, err := env.Download(out)
				if err != nil {
					errs <- err
					return
				}
				for i := range got {
					if got[i] != float32(2*wi) {
						errs <- fmt.Errorf("worker %d round %d: cross-talk value %v", wi, r, got[i])
						return
					}
				}
				ba.Release()
				out.Release()
			}
			p := env.Profile()
			if p.Writes != rounds || p.Kernels != rounds || p.Reads != rounds {
				errs <- fmt.Errorf("worker %d: profile %+v", wi, p)
				return
			}
			if env.Context().LiveBuffers() != 0 {
				errs <- fmt.Errorf("worker %d: leaked buffers", wi)
				return
			}
			errs <- nil
		}(wi)
	}
	for wi := 0; wi < workers; wi++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestInjectAllocFailure(t *testing.T) {
	ctx := NewContext(testDevice())
	ctx.InjectAllocFailure(2)
	if _, err := ctx.NewBuffer("a", 8, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.NewBuffer("b", 8, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.NewBuffer("c", 8, 1); !errors.Is(err, ErrOutOfDeviceMemory) {
		t.Fatalf("third allocation must fail with the injected fault, got %v", err)
	}
	// The fault is one-shot.
	if _, err := ctx.NewBuffer("d", 8, 1); err != nil {
		t.Fatalf("fault must disarm after firing: %v", err)
	}
	if ctx.Allocations() != 3 {
		t.Fatalf("injected failure must not count as an allocation: %d", ctx.Allocations())
	}
}

func TestAccessors(t *testing.T) {
	dev := testDevice()
	if dev.Name() != "test-gpu" || dev.Type() != GPUDevice || dev.GlobalMemSize() != 1<<20 {
		t.Fatal("device accessors wrong")
	}
	if dev.Spec().ComputeUnits != 4 {
		t.Fatal("spec accessor wrong")
	}
	env := NewEnv(dev)
	if env.Device() != dev || env.Context().Device() != dev || env.Queue().Context() != env.Context() {
		t.Fatal("env accessors wrong")
	}
	b, err := env.NewBuffer("x", 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if b.Label() != "x" || len(b.Data()) != 4 {
		t.Fatal("buffer accessors wrong")
	}
	env.Queue().Finish() // no-op, kept for API fidelity
}

func TestMustBufferPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustBuffer must panic when allocation fails")
		}
	}()
	ctx := NewContext(testDevice())
	ctx.MustBuffer("too-big", 1<<22, 1)
}

func TestEnvDownloadOfReleasedBufferFails(t *testing.T) {
	env := NewEnv(testDevice())
	b := env.Context().MustBuffer("x", 4, 1)
	b.Release()
	if _, err := env.Download(b); err == nil {
		t.Fatal("download of released buffer must fail")
	}
	if _, err := env.Upload("y", make([]float32, 4), 0); err != nil {
		t.Fatal("width < 1 should clamp to 1:", err)
	}
}

// TestAccumulatorConcurrentAdds: profiles folded in from many goroutines
// sum exactly, and the peak keeps the maximum.
func TestAccumulatorConcurrentAdds(t *testing.T) {
	var acc Accumulator
	const workers, each = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				acc.Add(Profile{Writes: 1, Kernels: 2, WriteBytes: 16}, int64(w*1000+i))
			}
		}()
	}
	wg.Wait()
	p, runs, peak := acc.Snapshot()
	if runs != workers*each {
		t.Fatalf("runs = %d, want %d", runs, workers*each)
	}
	if p.Writes != workers*each || p.Kernels != 2*workers*each || p.WriteBytes != 16*int64(workers*each) {
		t.Fatalf("aggregate profile off: %+v", p)
	}
	if peak != int64((workers-1)*1000+each-1) {
		t.Fatalf("peak = %d", peak)
	}
}
