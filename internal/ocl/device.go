package ocl

import (
	"runtime"
	"sync"
	"time"
)

// Device is a simulated OpenCL device. Kernels enqueued on the device
// really execute, data-parallel across a host goroutine pool; the
// device's spec supplies the cost model used for profiled (modeled)
// timings and the memory capacity used for allocation failures.
type Device struct {
	spec DeviceSpec

	// workers is the number of host goroutines used to execute kernels.
	// It is a host execution detail; modeled timings use spec fields.
	workers int
}

// NewDevice constructs a device from its spec. It panics if the spec is
// invalid: specs are compiled-in constants, so an invalid one is a
// programming error, not a runtime condition.
func NewDevice(spec DeviceSpec) *Device {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	w := runtime.GOMAXPROCS(0)
	if w > spec.ComputeUnits {
		// A device never runs wider than its compute units; this keeps
		// CPU-vs-GPU wall-time comparisons honest on large hosts.
		w = spec.ComputeUnits
	}
	if w < 1 {
		w = 1
	}
	return &Device{spec: spec, workers: w}
}

// Spec returns a copy of the device description.
func (d *Device) Spec() DeviceSpec { return d.spec }

// Name returns the device name, e.g. "NVIDIA Tesla M2050".
func (d *Device) Name() string { return d.spec.Name }

// Type returns whether the device is a CPU or GPU device.
func (d *Device) Type() DeviceType { return d.spec.Type }

// GlobalMemSize returns the device's global memory capacity in bytes.
func (d *Device) GlobalMemSize() int64 { return d.spec.GlobalMemSize }

// minParallelGrain is the smallest per-worker slice of an ND-range worth
// spawning a goroutine for; below it, fan-out overhead dominates.
const minParallelGrain = 4096

// execute runs fn over the global work range [0, n), split into
// contiguous chunks across the device's worker pool, and returns the real
// wall time taken. fn must be safe for concurrent invocation on disjoint
// ranges.
func (d *Device) execute(n int, fn func(lo, hi int)) time.Duration {
	start := time.Now()
	if n <= 0 {
		return time.Since(start)
	}
	workers := d.workers
	if max := (n + minParallelGrain - 1) / minParallelGrain; workers > max {
		workers = max
	}
	if workers <= 1 {
		fn(0, n)
		return time.Since(start)
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return time.Since(start)
}

// transferTime models one host<->device transfer of the given size.
func (d *Device) transferTime(bytes int64) time.Duration {
	s := float64(bytes) / d.spec.TransferBandwidth
	return d.spec.TransferLatency + time.Duration(s*float64(time.Second))
}

// kernelTime models one kernel dispatch over n elements with the given
// per-element cost: launch overhead plus a roofline over arithmetic
// throughput and memory bandwidth. Scheduled kernels extend the memory
// term: vectorized global access earns the spec's VectorGain effective
// bandwidth, and local-memory traffic (staged stencil tiles, temporal
// scratch) is priced at the much higher local bandwidth. Flat kernels
// (LocalBytes 0, VectorWidth 0) take exactly the classic path, so every
// pre-schedule timing is byte-identical.
func (d *Device) kernelTime(n int, cost Cost) time.Duration {
	flops := cost.Flops * float64(n)
	bytes := (cost.LoadBytes + cost.StoreBytes) * float64(n)
	tArith := flops / (d.spec.GFLOPS * 1e9)
	bw := d.spec.MemBandwidth
	if cost.VectorWidth >= 2 && d.spec.VectorGain > 1 {
		bw *= d.spec.VectorGain
	}
	tMem := bytes / bw
	if cost.LocalBytes > 0 {
		lbw := d.spec.LocalMemBandwidth
		if lbw <= 0 {
			lbw = defaultLocalBandwidthRatio * d.spec.MemBandwidth
		}
		tMem += cost.LocalBytes * float64(n) / lbw
	}
	t := tArith
	if tMem > t {
		t = tMem
	}
	return d.spec.KernelLaunch + time.Duration(t*float64(time.Second))
}
