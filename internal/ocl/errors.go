package ocl

import (
	"errors"
	"fmt"
)

// ErrOutOfDeviceMemory is returned (wrapped in an *AllocError) when a
// buffer allocation would exceed the device's global memory. It mirrors
// OpenCL's CL_MEM_OBJECT_ALLOCATION_FAILURE, which is what terminated the
// paper's failed GPU test cases.
var ErrOutOfDeviceMemory = errors.New("ocl: out of device global memory")

// ErrAllocTooLarge is returned (wrapped in an *AllocError) when a single
// buffer exceeds the device's CL_DEVICE_MAX_MEM_ALLOC_SIZE. It mirrors
// OpenCL's CL_INVALID_BUFFER_SIZE.
var ErrAllocTooLarge = errors.New("ocl: buffer exceeds max allocation size")

// AllocError describes a failed device buffer allocation.
type AllocError struct {
	Device    string // device name
	Buffer    string // buffer label
	Requested int64  // bytes requested
	InUse     int64  // bytes already allocated on the device
	Capacity  int64  // device global memory size
	Err       error  // ErrOutOfDeviceMemory or ErrAllocTooLarge
}

// Error implements the error interface.
func (e *AllocError) Error() string {
	return fmt.Sprintf("%v: device %q: buffer %q needs %d B with %d B in use of %d B capacity",
		e.Err, e.Device, e.Buffer, e.Requested, e.InUse, e.Capacity)
}

// Unwrap returns the sentinel cause so callers can use errors.Is.
func (e *AllocError) Unwrap() error { return e.Err }

// ErrReleasedBuffer is returned when a released buffer is used in a
// transfer or kernel launch.
var ErrReleasedBuffer = errors.New("ocl: use of released buffer")

// ArgError describes a kernel launch with mismatched arguments.
type ArgError struct {
	Kernel string
	Index  int
	Reason string
}

// Error implements the error interface.
func (e *ArgError) Error() string {
	return fmt.Sprintf("ocl: kernel %q argument %d: %s", e.Kernel, e.Index, e.Reason)
}
