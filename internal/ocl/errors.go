package ocl

import (
	"errors"
	"fmt"
)

// ErrOutOfDeviceMemory is returned (wrapped in an *AllocError) when a
// buffer allocation would exceed the device's global memory. It mirrors
// OpenCL's CL_MEM_OBJECT_ALLOCATION_FAILURE, which is what terminated the
// paper's failed GPU test cases.
var ErrOutOfDeviceMemory = errors.New("ocl: out of device global memory")

// ErrAllocTooLarge is returned (wrapped in an *AllocError) when a single
// buffer exceeds the device's CL_DEVICE_MAX_MEM_ALLOC_SIZE. It mirrors
// OpenCL's CL_INVALID_BUFFER_SIZE.
var ErrAllocTooLarge = errors.New("ocl: buffer exceeds max allocation size")

// AllocError describes a failed device buffer allocation.
type AllocError struct {
	Device    string // device name
	Buffer    string // buffer label
	Requested int64  // bytes requested
	InUse     int64  // bytes already allocated on the device
	Capacity  int64  // device global memory size
	Err       error  // ErrOutOfDeviceMemory or ErrAllocTooLarge
}

// Error implements the error interface.
func (e *AllocError) Error() string {
	return fmt.Sprintf("%v: device %q: buffer %q needs %d B with %d B in use of %d B capacity",
		e.Err, e.Device, e.Buffer, e.Requested, e.InUse, e.Capacity)
}

// Unwrap returns the sentinel cause so callers can use errors.Is.
func (e *AllocError) Unwrap() error { return e.Err }

// ErrReleasedBuffer is returned when a released buffer is used in a
// transfer or kernel launch.
var ErrReleasedBuffer = errors.New("ocl: use of released buffer")

// ErrDeviceLost is returned (wrapped in a *FaultError) for every
// operation on a device that has been latched lost by a fault plan,
// until Context.Heal is called. It mirrors OpenCL 2.x's
// CL_DEVICE_NOT_AVAILABLE / a reset driver: nothing on the device can
// be trusted, and callers must move the work elsewhere.
var ErrDeviceLost = errors.New("ocl: device lost")

// ErrTransferFailed is the default injected error for faulted
// host<->device transfers (a flaky bus or DMA engine): the single
// transfer failed but the device is otherwise healthy, so the
// operation is retryable.
var ErrTransferFailed = errors.New("ocl: transfer failed")

// ErrKernelFailed is the default injected error for faulted kernel
// launches (a transient launch failure): retryable, device healthy.
var ErrKernelFailed = errors.New("ocl: kernel launch failed")

// FaultError describes an injected (or device-lost) failure of one
// device operation. The wrapped Err carries the failure class.
type FaultError struct {
	Op     FaultOp // operation stream the fault fired on
	Device string  // device name
	Name   string  // buffer label or kernel name
	Err    error   // ErrDeviceLost, ErrTransferFailed, ErrKernelFailed, ...
}

// Error implements the error interface.
func (e *FaultError) Error() string {
	return fmt.Sprintf("%v: device %q: %s %q", e.Err, e.Device, e.Op, e.Name)
}

// Unwrap returns the sentinel cause so callers can use errors.Is.
func (e *FaultError) Unwrap() error { return e.Err }

// FaultClass partitions device errors by the recovery they admit. The
// classes drive the engine's recovery policy: Transient faults are
// retried in place with backoff, Capacity faults walk the strategy
// degradation ladder, DeviceLost faults are rerouted off the device by
// the serving pool's circuit breaker, and Permanent faults (compile
// errors, bad bindings, canceled contexts) surface immediately.
type FaultClass int

const (
	// ClassNone is the class of a nil error.
	ClassNone FaultClass = iota
	// ClassTransient marks a one-off operation failure on a healthy
	// device: retrying the same plan may succeed.
	ClassTransient
	// ClassCapacity marks a memory-capacity failure: the same plan will
	// keep failing, but a strategy with a smaller footprint can succeed.
	ClassCapacity
	// ClassDeviceLost marks a lost device: nothing on this device will
	// succeed until it heals or is replaced.
	ClassDeviceLost
	// ClassPermanent marks everything else — retrying cannot help.
	ClassPermanent
)

// String names the class.
func (c FaultClass) String() string {
	switch c {
	case ClassNone:
		return "none"
	case ClassTransient:
		return "transient"
	case ClassCapacity:
		return "capacity"
	case ClassDeviceLost:
		return "device-lost"
	case ClassPermanent:
		return "permanent"
	default:
		return fmt.Sprintf("FaultClass(%d)", int(c))
	}
}

// Classify maps an error from any device operation to its recovery
// class.
func Classify(err error) FaultClass {
	switch {
	case err == nil:
		return ClassNone
	case errors.Is(err, ErrDeviceLost):
		return ClassDeviceLost
	case errors.Is(err, ErrOutOfDeviceMemory), errors.Is(err, ErrAllocTooLarge):
		return ClassCapacity
	case errors.Is(err, ErrTransferFailed), errors.Is(err, ErrKernelFailed):
		return ClassTransient
	default:
		return ClassPermanent
	}
}

// ArgError describes a kernel launch with mismatched arguments.
type ArgError struct {
	Kernel string
	Index  int
	Reason string
}

// Error implements the error interface.
func (e *ArgError) Error() string {
	return fmt.Sprintf("ocl: kernel %q argument %d: %s", e.Kernel, e.Index, e.Reason)
}
