package ocl

// Env is the paper's "OpenCL environment interface": a device with one
// context and one profiling in-order queue, categorizing every timing
// event and managing buffer requests so the global-memory high-water mark
// can be reported. Execution strategies run entirely through an Env.
type Env struct {
	dev *Device
	ctx *Context
	q   *Queue
	// pool, when attached, routes buffer allocation through the
	// context's arena: NewBuffer and Upload draw from (and recycle
	// into) the size-class free lists, and UploadResident keeps
	// unchanged sources device-resident. Nil for one-shot execution,
	// where per-run allocate/free keeps the paper's memory-profile
	// semantics exact.
	pool *Arena
}

// NewEnv builds an environment on the device.
func NewEnv(dev *Device) *Env {
	ctx := NewContext(dev)
	return &Env{dev: dev, ctx: ctx, q: NewQueue(ctx)}
}

// Device returns the target device.
func (e *Env) Device() *Device { return e.dev }

// Context returns the environment's context.
func (e *Env) Context() *Context { return e.ctx }

// Queue returns the environment's profiling queue.
func (e *Env) Queue() *Queue { return e.q }

// SetPool attaches (or, with nil, detaches) a buffer arena. While a
// pool is attached, NewBuffer and Upload acquire from it instead of
// allocating fresh device memory, so released buffers are reused across
// kernels and executions.
func (e *Env) SetPool(a *Arena) { e.pool = a }

// Pool returns the attached arena (nil when unpooled).
func (e *Env) Pool() *Arena { return e.pool }

// NewBuffer allocates a device buffer (see Context.NewBuffer), drawing
// from the attached arena when one is set.
func (e *Env) NewBuffer(label string, elems, width int) (*Buffer, error) {
	if e.pool != nil {
		return e.pool.Acquire(label, elems, width)
	}
	return e.ctx.NewBuffer(label, elems, width)
}

// Upload allocates a device buffer and writes src into it, recording the
// host-to-device event. On allocation failure no event is recorded. With
// an arena attached the buffer comes from the pool, so strategies that
// re-upload per kernel (roundtrip) stop churning fresh allocations.
func (e *Env) Upload(label string, src []float32, width int) (*Buffer, error) {
	if width < 1 {
		width = 1
	}
	b, err := e.NewBuffer(label, len(src)/width, width)
	if err != nil {
		return nil, err
	}
	// Release on any failed hand-off — including a panic out of the
	// write (injected faults can panic), where the caller never sees b
	// and could not release it.
	handed := false
	defer func() {
		if !handed {
			b.Release()
		}
	}()
	if _, err := e.q.WriteBuffer(b, src); err != nil {
		return nil, err
	}
	handed = true
	return b, nil
}

// UploadResident uploads a source that should stay device-resident
// across executions. key identifies the resident slot (label is the
// buffer/event label; they differ for tiled windows). Without a pool
// this is a plain Upload; with one, an unchanged source skips the
// transfer entirely and skipped reports true.
func (e *Env) UploadResident(key, label string, src []float32, width int) (*Buffer, bool, error) {
	if e.pool == nil {
		b, err := e.Upload(label, src, width)
		return b, false, err
	}
	return e.pool.UploadResident(e.q, key, label, src, width)
}

// Download reads the whole buffer back to a fresh host slice, recording
// the device-to-host event.
func (e *Env) Download(src *Buffer) ([]float32, error) {
	dst := make([]float32, src.Elems()*src.Width())
	if _, err := e.q.ReadBuffer(dst, src); err != nil {
		return nil, err
	}
	return dst, nil
}

// Run launches the kernel over n elements (see Queue.Run).
func (e *Env) Run(k *Kernel, n int, bufs []*Buffer, scalars []float64) error {
	_, err := e.q.Run(k, n, bufs, scalars)
	return err
}

// Profile returns the queue's aggregated profile.
func (e *Env) Profile() Profile { return e.q.Profile() }

// PeakBytes returns the context's global-memory high-water mark.
func (e *Env) PeakBytes() int64 { return e.ctx.Peak() }

// Reset clears profiling state and the memory high-water mark. Live
// buffers are unaffected.
func (e *Env) Reset() {
	e.q.Reset()
	e.ctx.ResetPeak()
}
