package ocl

import (
	"errors"
	"fmt"
	"math"
	"sync"
)

// Arena is a size-class device-buffer pool bound to one context — the
// allocator behind prepared-plan execution. Two reuse mechanisms back
// the warm path:
//
//   - pooled buffers: a released arena buffer returns to a free list
//     keyed by its byte size instead of freeing device memory, so a
//     plan's intermediates and outputs are recycled across executions
//     (and, for the roundtrip strategy, across kernels within one
//     execution) with zero new allocations;
//   - resident sources: UploadResident keeps source buffers on the
//     device keyed by name, remembering a content hash of the last
//     upload. When the same bytes are bound again the upload (and its
//     host-to-device event) is skipped entirely — the paper's in-situ
//     workload re-evaluates one expression over many timesteps where
//     the mesh coordinate arrays never change.
//
// Pooled and resident buffers remain allocated in the context (they
// really occupy device memory), so Used/Peak accounting reflects the
// pool's footprint. Drain releases everything back to the context.
//
// An Arena is safe for concurrent use; in practice each engine's
// single-goroutine environment owns one (Context.Pool).
type Arena struct {
	ctx *Context

	mu       sync.Mutex
	free     map[int64][]*Buffer // byte size class -> idle buffers
	resident map[string]*residentBuf

	reused        int64 // acquisitions served from a free list
	allocated     int64 // acquisitions that hit Context.NewBuffer
	uploads       int64 // resident uploads that moved data
	uploadSkips   int64 // resident uploads skipped (content unchanged)
	evictions     int64 // buffers evicted under memory pressure
	pooledBytes   int64 // bytes idle in free lists
	residentBytes int64 // bytes held by resident source buffers
}

// residentBuf is one device-resident source: its buffer, the content
// hash of the data it holds, and how many hand-outs are still in use.
type residentBuf struct {
	buf  *Buffer
	hash uint64
	// refs counts UploadResident hand-outs not yet Released. Only a
	// slot with refs == 0 may be evicted under memory pressure: a
	// positive count means some execution still has the buffer bound as
	// a kernel argument.
	refs int
}

// newArena builds an arena on the context (see Context.Pool).
func newArena(ctx *Context) *Arena {
	return &Arena{
		ctx:      ctx,
		free:     make(map[int64][]*Buffer),
		resident: make(map[string]*residentBuf),
	}
}

// Pool returns the context's buffer arena, creating it on first use.
// All environments on the context share one pool.
func (c *Context) Pool() *Arena {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.pool == nil {
		c.pool = newArena(c)
	}
	return c.pool
}

// Acquire returns a buffer of the requested shape, reusing an idle
// pooled buffer of the same byte size when one exists and allocating
// from the context otherwise. The returned buffer's Release returns it
// to the arena rather than freeing device memory.
func (a *Arena) Acquire(label string, elems, width int) (*Buffer, error) {
	if elems < 0 || width < 1 {
		return nil, fmt.Errorf("ocl: arena buffer %q: invalid shape %d x %d", label, elems, width)
	}
	bytes := int64(elems) * int64(width) * 4
	a.mu.Lock()
	if lst := a.free[bytes]; len(lst) > 0 {
		b := lst[len(lst)-1]
		a.free[bytes] = lst[:len(lst)-1]
		a.pooledBytes -= bytes
		a.reused++
		a.mu.Unlock()
		b.adopt(label, elems, width)
		return b, nil
	}
	a.mu.Unlock()

	b, err := a.ctx.NewBuffer(label, elems, width)
	if err != nil {
		// Genuine accounting pressure (the pool's own idle and stale
		// buffers are crowding out the request) is relieved by evicting
		// and retrying: first the free lists, then any resident source
		// whose hand-outs have all been released. Failures that are NOT
		// real pressure — injected faults on a device with room to spare —
		// surface unchanged, so fault-injection sweeps observe every
		// scheduled error.
		if !memoryPressure(err) {
			return nil, err
		}
		if a.evictFree() {
			b, err = a.ctx.NewBuffer(label, elems, width)
		}
		if err != nil {
			if !memoryPressure(err) {
				return nil, err
			}
			if !a.evictIdleResidents() {
				return nil, err
			}
			if b, err = a.ctx.NewBuffer(label, elems, width); err != nil {
				return nil, err
			}
		}
	}
	b.mu.Lock()
	b.pool = a
	b.mu.Unlock()
	a.mu.Lock()
	a.allocated++
	a.mu.Unlock()
	return b, nil
}

// memoryPressure reports whether an allocation error reflects genuine
// capacity accounting — the request plus live bytes really exceeding
// the device's global memory — as opposed to an injected fault on a
// device with room to spare. Only real pressure justifies evicting
// pooled buffers: eviction cannot cure an injected error, and hiding
// one would break the fault-sweep invariant that every scheduled fault
// is observed.
func memoryPressure(err error) bool {
	var ae *AllocError
	if !errors.As(err, &ae) {
		return false
	}
	return errors.Is(ae.Err, ErrOutOfDeviceMemory) && ae.Requested+ae.InUse > ae.Capacity
}

// evictFree flushes every idle free-list buffer back to the context,
// reporting whether any memory was reclaimed.
func (a *Arena) evictFree() bool {
	a.mu.Lock()
	var victims []*Buffer
	for _, lst := range a.free {
		victims = append(victims, lst...)
	}
	a.free = make(map[int64][]*Buffer)
	a.pooledBytes = 0
	a.evictions += int64(len(victims))
	a.mu.Unlock()
	for _, b := range victims {
		b.mu.Lock()
		b.pool = nil
		b.pooled = false
		b.mu.Unlock()
		b.Release()
	}
	return len(victims) > 0
}

// evictIdleResidents retires every resident source slot with no
// outstanding hand-outs (refs == 0) back to the context, reporting
// whether any memory was reclaimed. Slots still referenced by a running
// execution are never touched: their buffers are bound as kernel
// arguments.
func (a *Arena) evictIdleResidents() bool {
	a.mu.Lock()
	var victims []*Buffer
	for key, r := range a.resident {
		if r.refs > 0 {
			continue
		}
		delete(a.resident, key)
		a.residentBytes -= r.buf.bytes
		victims = append(victims, r.buf)
	}
	a.evictions += int64(len(victims))
	a.mu.Unlock()
	for _, b := range victims {
		b.mu.Lock()
		b.pool = nil
		b.pooled = false
		b.resident = false
		b.resKey = ""
		b.mu.Unlock()
		b.Release()
	}
	return len(victims) > 0
}

// residentReleased returns one hand-out reference for the slot; called
// by Buffer.Release on resident buffers. The buffer argument guards
// against a slot that was already retired and re-keyed.
func (a *Arena) residentReleased(key string, b *Buffer) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if r := a.resident[key]; r != nil && r.buf == b && r.refs > 0 {
		r.refs--
	}
}

// recycle returns a released pooled buffer to its free list. The caller
// (Buffer.Release) has already marked the buffer pooled.
func (a *Arena) recycle(b *Buffer) {
	a.mu.Lock()
	a.free[b.bytes] = append(a.free[b.bytes], b)
	a.pooledBytes += b.bytes
	a.mu.Unlock()
}

// UploadResident binds data to a device-resident source buffer. key
// identifies the source slot (usually the source name; tiled strategies
// add a window suffix), label is the buffer's diagnostic/event label.
// If the slot already holds a buffer of the right shape whose content
// hash matches, the upload is skipped — no transfer, no event — and
// skipped is true. Resident buffers ignore Release; they stay on the
// device until the arena drains or the slot's content changes shape.
func (a *Arena) UploadResident(q *Queue, key, label string, src []float32, width int) (b *Buffer, skipped bool, err error) {
	if width < 1 {
		width = 1
	}
	elems := len(src) / width
	h := hashFloats(src)

	a.mu.Lock()
	r := a.resident[key]
	if r != nil && r.buf.elems == elems && r.buf.width == width {
		if r.hash == h {
			a.uploadSkips++
			r.refs++
			a.mu.Unlock()
			return r.buf, true, nil
		}
	} else if r != nil {
		// Shape changed: retire the old buffer to the free lists.
		delete(a.resident, key)
		a.residentBytes -= r.buf.bytes
		a.mu.Unlock()
		r.buf.mu.Lock()
		r.buf.resident = false
		r.buf.resKey = ""
		r.buf.mu.Unlock()
		r.buf.Release()
		r = nil
		a.mu.Lock()
	}
	a.mu.Unlock()

	if r == nil {
		nb, err := a.Acquire(label, elems, width)
		if err != nil {
			return nil, false, err
		}
		nb.mu.Lock()
		nb.resident = true
		nb.resKey = key
		nb.mu.Unlock()
		r = &residentBuf{buf: nb}
		a.mu.Lock()
		a.resident[key] = r
		a.residentBytes += nb.bytes
		a.mu.Unlock()
	}

	if _, err := q.WriteBuffer(r.buf, src); err != nil {
		return nil, false, err
	}
	a.mu.Lock()
	r.hash = h
	a.uploads++
	r.refs++
	a.mu.Unlock()
	return r.buf, false, nil
}

// Drain releases every idle pooled buffer and every resident source
// back to the context, returning Used and LiveBuffers to what they were
// before the arena was populated. Buffers currently checked out are
// unaffected (they recycle normally when released). The arena remains
// usable after a drain, and Drain is idempotent: draining an
// already-empty arena is a no-op, so recovery paths may drain
// defensively without double-releasing anything.
func (a *Arena) Drain() {
	a.mu.Lock()
	var victims []*Buffer
	for _, lst := range a.free {
		victims = append(victims, lst...)
	}
	for _, r := range a.resident {
		victims = append(victims, r.buf)
	}
	a.free = make(map[int64][]*Buffer)
	a.resident = make(map[string]*residentBuf)
	a.pooledBytes = 0
	a.residentBytes = 0
	a.mu.Unlock()

	for _, b := range victims {
		b.mu.Lock()
		b.pool = nil
		b.pooled = false
		b.resident = false
		b.resKey = ""
		b.mu.Unlock()
		b.Release()
	}
}

// ArenaStats is a snapshot of an arena's reuse counters.
type ArenaStats struct {
	// Reused counts buffer acquisitions served from a free list;
	// Allocated counts acquisitions that allocated fresh device memory.
	Reused, Allocated int64
	// Uploads counts resident-source uploads that moved data;
	// UploadsSkipped counts uploads avoided because the source content
	// was unchanged.
	Uploads, UploadsSkipped int64
	// Evictions counts pooled or resident buffers freed under genuine
	// memory pressure so a new allocation could fit.
	Evictions int64
	// PooledBytes is the device memory idle in free lists;
	// ResidentBytes the memory pinned by resident source buffers.
	PooledBytes, ResidentBytes int64
	// Resident is the number of resident source slots.
	Resident int
}

// Stats returns a consistent snapshot of the counters.
func (a *Arena) Stats() ArenaStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return ArenaStats{
		Reused:         a.reused,
		Allocated:      a.allocated,
		Uploads:        a.uploads,
		UploadsSkipped: a.uploadSkips,
		Evictions:      a.evictions,
		PooledBytes:    a.pooledBytes,
		ResidentBytes:  a.residentBytes,
		Resident:       len(a.resident),
	}
}

// hashFloats is FNV-1a over the bit patterns of the values plus the
// length — the content fingerprint behind resident-source upload
// skipping. 64 bits make accidental collisions negligible for the
// simulation's purposes (a collision would silently reuse stale source
// data; cryptographic strength is not required here).
func hashFloats(v []float32) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for _, f := range v {
		h ^= uint64(math.Float32bits(f))
		h *= prime
	}
	h ^= uint64(len(v))
	h *= prime
	return h
}
