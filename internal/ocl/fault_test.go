package ocl

import (
	"errors"
	"strings"
	"testing"
)

func faultEnv(t *testing.T) (*Context, *Queue) {
	t.Helper()
	ctx := NewContext(NewDevice(XeonX5660Spec(4)))
	return ctx, NewQueue(ctx)
}

func TestFaultPlanFailNthAlloc(t *testing.T) {
	ctx, _ := faultEnv(t)
	ctx.SetFaultPlan(NewFaultPlan(1).FailNth(FaultAlloc, 2))

	for i := 0; i < 2; i++ {
		b, err := ctx.NewBuffer("ok", 8, 1)
		if err != nil {
			t.Fatalf("alloc %d: unexpected error %v", i, err)
		}
		defer b.Release()
	}
	_, err := ctx.NewBuffer("boom", 8, 1)
	if !errors.Is(err, ErrOutOfDeviceMemory) {
		t.Fatalf("third alloc: got %v, want ErrOutOfDeviceMemory", err)
	}
	var ae *AllocError
	if !errors.As(err, &ae) {
		t.Fatalf("injected alloc fault should be an *AllocError, got %T", err)
	}
	// One-shot: the schedule is spent.
	b, err := ctx.NewBuffer("after", 8, 1)
	if err != nil {
		t.Fatalf("alloc after one-shot fault: %v", err)
	}
	b.Release()
}

func TestInjectAllocFailureCompat(t *testing.T) {
	// InjectAllocFailure(n) must fail the (n+1)-th allocation attempt,
	// exactly as the pre-FaultPlan implementation did.
	ctx, _ := faultEnv(t)
	ctx.InjectAllocFailure(1)
	b, err := ctx.NewBuffer("a", 4, 1)
	if err != nil {
		t.Fatalf("first alloc: %v", err)
	}
	b.Release()
	if _, err := ctx.NewBuffer("b", 4, 1); !errors.Is(err, ErrOutOfDeviceMemory) {
		t.Fatalf("second alloc: got %v, want ErrOutOfDeviceMemory", err)
	}
	if b2, err := ctx.NewBuffer("c", 4, 1); err != nil {
		t.Fatalf("third alloc after one-shot: %v", err)
	} else {
		b2.Release()
	}
}

func TestFaultPlanTransferAndKernel(t *testing.T) {
	ctx, q := faultEnv(t)
	ctx.SetFaultPlan(NewFaultPlan(1).
		FailNth(FaultWrite, 0).
		FailNth(FaultRead, 0).
		FailNth(FaultKernel, 0))

	b := ctx.MustBuffer("buf", 4, 1)
	defer b.Release()
	src := make([]float32, 4)

	_, err := q.WriteBuffer(b, src)
	if !errors.Is(err, ErrTransferFailed) {
		t.Fatalf("write: got %v, want ErrTransferFailed", err)
	}
	var fe *FaultError
	if !errors.As(err, &fe) || fe.Op != FaultWrite {
		t.Fatalf("write fault: got %#v, want *FaultError{Op: FaultWrite}", err)
	}
	if Classify(err) != ClassTransient {
		t.Fatalf("write fault classified %v, want transient", Classify(err))
	}
	if _, err := q.WriteBuffer(b, src); err != nil {
		t.Fatalf("second write should pass: %v", err)
	}

	if _, err := q.ReadBuffer(src, b); !errors.Is(err, ErrTransferFailed) {
		t.Fatalf("read: got %v, want ErrTransferFailed", err)
	}

	k := &Kernel{Name: "nop", NumBufs: 1, Fn: func(lo, hi int, bufs []View, scalars []float64) {}}
	if _, err := q.Run(k, 4, []*Buffer{b}, nil); !errors.Is(err, ErrKernelFailed) {
		t.Fatalf("kernel: got %v, want ErrKernelFailed", err)
	}
	if _, err := q.Run(k, 4, []*Buffer{b}, nil); err != nil {
		t.Fatalf("second kernel should pass: %v", err)
	}
}

func TestFaultPlanDeviceLostLatch(t *testing.T) {
	ctx, q := faultEnv(t)
	ctx.SetFaultPlan(NewFaultPlan(1).LoseDeviceAt(1))

	b := ctx.MustBuffer("buf", 4, 1) // op 0: alloc passes
	src := make([]float32, 4)
	_, err := q.WriteBuffer(b, src) // op 1: trips the latch
	if !errors.Is(err, ErrDeviceLost) {
		t.Fatalf("write at loss point: got %v, want ErrDeviceLost", err)
	}
	if !ctx.Lost() {
		t.Fatal("context should be latched lost")
	}
	if Classify(err) != ClassDeviceLost {
		t.Fatalf("classified %v, want device-lost", Classify(err))
	}
	// Everything fails while lost, including allocations...
	if _, err := ctx.NewBuffer("x", 4, 1); !errors.Is(err, ErrDeviceLost) {
		t.Fatalf("alloc on lost device: got %v, want ErrDeviceLost", err)
	}
	if _, err := q.ReadBuffer(src, b); !errors.Is(err, ErrDeviceLost) {
		t.Fatalf("read on lost device: got %v, want ErrDeviceLost", err)
	}
	// ...except cleanup: Release still works and fixes accounting.
	b.Release()
	if ctx.LiveBuffers() != 0 || ctx.Used() != 0 {
		t.Fatalf("release on lost device must still free: live=%d used=%d", ctx.LiveBuffers(), ctx.Used())
	}
	// Heal clears the latch.
	ctx.Heal()
	if b2, err := ctx.NewBuffer("y", 4, 1); err != nil {
		t.Fatalf("alloc after heal: %v", err)
	} else {
		b2.Release()
	}
}

func TestFaultPlanPanicEffect(t *testing.T) {
	ctx, q := faultEnv(t)
	ctx.SetFaultPlan(NewFaultPlan(1).PanicAt(FaultKernel, 0))
	b := ctx.MustBuffer("buf", 4, 1)
	defer b.Release()
	k := &Kernel{Name: "nop", NumBufs: 1, Fn: func(lo, hi int, bufs []View, scalars []float64) {}}

	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected injected panic")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "injected panic") {
			t.Fatalf("unexpected panic payload: %v", r)
		}
	}()
	q.Run(k, 4, []*Buffer{b}, nil)
}

func TestFaultPlanProbabilisticDeterministicReplay(t *testing.T) {
	// Same seed + same operation sequence => identical fault schedule.
	run := func(seed int64) []bool {
		ctx, _ := faultEnv(t)
		ctx.SetFaultPlan(NewFaultPlan(seed).FailEvery(FaultAlloc, 0.3))
		var hits []bool
		for i := 0; i < 64; i++ {
			b, err := ctx.NewBuffer("p", 2, 1)
			hits = append(hits, err != nil)
			if err == nil {
				b.Release()
			}
		}
		return hits
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at op %d with equal seeds", i)
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical 64-op schedules (suspicious)")
	}
	var fired bool
	for _, h := range a {
		fired = fired || h
	}
	if !fired {
		t.Fatal("p=0.3 over 64 ops fired nothing")
	}
}

func TestFaultPlanTimesBudget(t *testing.T) {
	ctx, _ := faultEnv(t)
	// Deterministic rule with a budget of 3: fails attempts 1,2,3 then
	// stays quiet.
	ctx.SetFaultPlan(NewFaultPlan(1).Add(FaultRule{Op: FaultAlloc, Nth: 1, Times: 3}))
	var fails int
	for i := 0; i < 8; i++ {
		b, err := ctx.NewBuffer("t", 2, 1)
		if err != nil {
			fails++
			if i < 1 || i > 3 {
				t.Fatalf("fault fired at attempt %d, want window [1,3]", i)
			}
			continue
		}
		b.Release()
	}
	if fails != 3 {
		t.Fatalf("got %d injected failures, want 3", fails)
	}
}

func TestClassifyPermanent(t *testing.T) {
	if got := Classify(errors.New("parse error")); got != ClassPermanent {
		t.Fatalf("arbitrary error classified %v, want permanent", got)
	}
	if got := Classify(nil); got != ClassNone {
		t.Fatalf("nil classified %v, want none", got)
	}
	if got := Classify(&AllocError{Err: ErrAllocTooLarge}); got != ClassCapacity {
		t.Fatalf("alloc-too-large classified %v, want capacity", got)
	}
}
