package expr

import (
	"errors"
	"strings"
	"testing"

	"dfg/internal/dataflow"
	"dfg/internal/vortex"
)

// netCounts classifies a network's live nodes the way Table II counts
// device work: ops are elementwise + stencil filter invocations.
type netCounts struct {
	sources, consts, decomposes, ops int
}

func countNetwork(t *testing.T, net *dataflow.Network) netCounts {
	t.Helper()
	order, err := net.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	var c netCounts
	for _, n := range order {
		switch n.Info().Class {
		case dataflow.ClassSource:
			c.sources++
		case dataflow.ClassConst:
			c.consts++
		case dataflow.ClassDecompose:
			c.decomposes++
		default:
			c.ops++
		}
	}
	return c
}

func TestParseSimpleAssignment(t *testing.T) {
	p, err := Parse("a = b + 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Stmts) != 1 || p.Stmts[0].Name != "a" {
		t.Fatalf("program: %+v", p)
	}
	if got := p.String(); got != "a = (b + 1)" {
		t.Fatalf("normalized text: %q", got)
	}
}

func TestParsePrecedenceAndAssociativity(t *testing.T) {
	cases := map[string]string{
		"a + b * c":            "((a * b) + c)", // placeholder replaced below
		"a - b - c":            "((a - b) - c)",
		"a / b / c":            "((a / b) / c)",
		"(a + b) * c":          "((a + b) * c)",
		"-a * b":               "((-a) * b)",
		"a * -b":               "(a * (-b))",
		"sqrt(a)[2]":           "sqrt(a)[2]",
		"grad3d(u,d,x,y,z)[1]": "grad3d(u,d,x,y,z)[1]",
	}
	cases["a + b * c"] = "(a + (b * c))"
	for in, want := range cases {
		p, err := Parse(in)
		if err != nil {
			t.Fatalf("%q: %v", in, err)
		}
		if got := p.Stmts[0].X.String(); got != want {
			t.Errorf("%q parsed as %q, want %q", in, got, want)
		}
	}
}

func TestParseMultiStatement(t *testing.T) {
	p, err := Parse("a = b\n\n\nc = a * 2; d = c - b\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Stmts) != 3 {
		t.Fatalf("want 3 statements, got %d", len(p.Stmts))
	}
	names := []string{"a", "c", "d"}
	for i, s := range p.Stmts {
		if s.Name != names[i] {
			t.Fatalf("stmt %d name %q want %q", i, s.Name, names[i])
		}
	}
}

func TestParseComments(t *testing.T) {
	p, err := Parse("# vortex detection\na = b + c # trailing\n# done")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Stmts) != 1 {
		t.Fatalf("comments must be ignored: %+v", p)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",           // empty
		"a = ",       // dangling assignment
		"a = b +",    // dangling operator
		"a = (b",     // unbalanced paren
		"a = b[",     // unbalanced bracket
		"a = b[x]",   // non-numeric component
		"a = b[9]",   // component out of range
		"a = b[1.5]", // fractional component
		"a = $b",     // bad character
		"a = f(,)",   // bad args
		"= b",        // missing target
		"a = 1e",     // bad number tail parses as 1 then e -> juxtaposition error
	}
	for _, in := range cases {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) should fail", in)
		}
	}
}

func TestLexerLocations(t *testing.T) {
	_, err := Parse("a = b\nc = $")
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("lex error should carry line 2: %v", err)
	}
}

func TestCompileVelMag(t *testing.T) {
	net, err := Compile(vortex.VelMagExpr)
	if err != nil {
		t.Fatal(err)
	}
	c := countNetwork(t, net)
	if c != (netCounts{sources: 3, consts: 0, decomposes: 0, ops: 6}) {
		t.Fatalf("VelMag network counts %+v, want 3 sources / 6 ops", c)
	}
	if net.OutputNode().Filter != "sqrt" {
		t.Fatalf("output filter %q", net.OutputNode().Filter)
	}
	if net.Node("v_mag") != net.OutputNode() {
		t.Fatal("v_mag must alias the output")
	}
	// Source upload order for staged/fusion: u, v, w.
	var names []string
	for _, s := range net.Sources() {
		names = append(names, s.ID)
	}
	if strings.Join(names, ",") != "u,v,w" {
		t.Fatalf("source order %v", names)
	}
}

func TestCompileVortMag(t *testing.T) {
	net, err := Compile(vortex.VortMagExpr)
	if err != nil {
		t.Fatal(err)
	}
	c := countNetwork(t, net)
	// Table II: 12 op kernels (3 grad + 3 sub + 3 mul + 2 add + 1 sqrt),
	// 6 distinct decomposed components, 7 sources, no constants.
	want := netCounts{sources: 7, consts: 0, decomposes: 6, ops: 12}
	if c != want {
		t.Fatalf("VortMag network counts %+v, want %+v", c, want)
	}
	var names []string
	for _, s := range net.Sources() {
		names = append(names, s.ID)
	}
	if strings.Join(names, ",") != "u,dims,x,y,z,v,w" {
		t.Fatalf("source order %v", names)
	}
}

func TestCompileQCriterion(t *testing.T) {
	net, err := Compile(vortex.QCritExpr)
	if err != nil {
		t.Fatal(err)
	}
	c := countNetwork(t, net)
	// Table II derivation: 57 op kernels, 9 decomposed components after
	// CSE, one pooled constant (0.5), 7 sources.
	want := netCounts{sources: 7, consts: 1, decomposes: 9, ops: 57}
	if c != want {
		t.Fatalf("Q-criterion network counts %+v, want %+v", c, want)
	}
	if net.Node("q") != net.OutputNode() {
		t.Fatal("q must be the output")
	}
}

// TestFig4QCritNetworkShape checks the structure the paper's Figure 4
// illustrates: three gradient filters fan out of the velocity sources,
// every decompose hangs off a gradient, and everything funnels into the
// final 0.5*(w_norm - s_norm) multiply.
func TestFig4QCritNetworkShape(t *testing.T) {
	net, err := Compile(vortex.QCritExpr)
	if err != nil {
		t.Fatal(err)
	}
	order, _ := net.TopoOrder()
	grads := 0
	for _, n := range order {
		switch n.Filter {
		case "grad3d":
			grads++
			if first := net.Node(n.Inputs[0]); first.Filter != "source" {
				t.Fatal("gradients must consume velocity sources directly")
			}
		case "decompose":
			if in := net.Node(n.Inputs[0]); in.Filter != "grad3d" {
				t.Fatalf("decompose must select from a gradient, got %q", in.Filter)
			}
		}
	}
	if grads != 3 {
		t.Fatalf("Figure 4 has 3 gradient filters, got %d", grads)
	}
	out := net.OutputNode()
	if out.Filter != "mul" {
		t.Fatalf("output is 0.5 * (...): want mul, got %q", out.Filter)
	}
	if c := net.Node(out.Inputs[0]); c.Filter != "const" || c.Value != 0.5 {
		t.Fatal("output's first operand must be the pooled 0.5 constant")
	}
	if s := net.Node(out.Inputs[1]); s.Filter != "sub" {
		t.Fatal("output's second operand must be (w_norm - s_norm)")
	}
}

func TestConstantPooling(t *testing.T) {
	net, err := Compile("a = 0.5*u + 0.5*v + 2.0*w")
	if err != nil {
		t.Fatal(err)
	}
	c := countNetwork(t, net)
	if c.consts != 2 {
		t.Fatalf("common constants must pool: want 2 const nodes (0.5, 2.0), got %d", c.consts)
	}
}

func TestCSEOnDecomposes(t *testing.T) {
	net, err := Compile("g = grad3d(u,dims,x,y,z)\na = g[0] + g[0]\nb = g[0] * a")
	if err != nil {
		t.Fatal(err)
	}
	if c := countNetwork(t, net); c.decomposes != 1 {
		t.Fatalf("g[0] must be decomposed once, got %d", c.decomposes)
	}
}

func TestBuildErrors(t *testing.T) {
	cases := []string{
		"a = nosuchfun(b)", // unknown function
		"a = sqrt(b, c)",   // wrong arity
		"a = grad3d(u)",    // wrong arity
		"a = u[1]",         // decompose of scalar source
		"a = (u + v)[0]",   // decompose of scalar value
		"u = v\nw2 = u[0]", // decompose of scalar alias
	}
	for _, in := range cases {
		if _, err := Compile(in); err == nil {
			t.Errorf("Compile(%q) should fail", in)
		}
	}
}

func TestReassignmentUsesLatestBinding(t *testing.T) {
	net, err := Compile("a = u + v\na = a * a\nout = a + w")
	if err != nil {
		t.Fatal(err)
	}
	out := net.OutputNode()
	if out.Filter != "add" {
		t.Fatalf("output filter %q", out.Filter)
	}
	mul := net.Node(out.Inputs[0])
	if mul.Filter != "mul" {
		t.Fatalf("a must refer to the re-bound mul node, got %q", mul.Filter)
	}
}

func TestBareExpressionStatement(t *testing.T) {
	net, err := Compile("sqrt(u*u + v*v)")
	if err != nil {
		t.Fatal(err)
	}
	if net.OutputNode().Filter != "sqrt" {
		t.Fatal("bare expression must become the output")
	}
}

func TestUnaryMinusBecomesNeg(t *testing.T) {
	net, err := Compile("a = -u * v")
	if err != nil {
		t.Fatal(err)
	}
	order, _ := net.TopoOrder()
	found := false
	for _, n := range order {
		if n.Filter == "neg" {
			found = true
		}
	}
	if !found {
		t.Fatal("unary minus must lower to the neg primitive")
	}
}

func TestIntroExampleStyleExpression(t *testing.T) {
	// A nested composition in the spirit of the paper's intro example
	// (without conditionals, which the primitive set doesn't include):
	// a = sqrt(grad3d(b,dims,x,y,z)[0]) * (c - -c).
	net, err := Compile("a = sqrt(grad3d(b,dims,x,y,z)[0]) * (c - -c)")
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	c := countNetwork(t, net)
	if c.sources != 6 { // b, dims, x, y, z, c
		t.Fatalf("sources = %d, want 6", c.sources)
	}
}

// TestParseStringRoundTrip re-parses each normalized program and checks
// the normalization is a fixpoint.
func TestParseStringRoundTrip(t *testing.T) {
	for _, e := range vortex.Expressions() {
		p1, err := Parse(e.Text)
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		p2, err := Parse(p1.String())
		if err != nil {
			t.Fatalf("%s reparse: %v", e.Name, err)
		}
		if p1.String() != p2.String() {
			t.Fatalf("%s: normalization is not a fixpoint:\n%s\nvs\n%s", e.Name, p1, p2)
		}
	}
}

func TestNetworkScriptForPaperExpressions(t *testing.T) {
	// The optional network-definition script must rebuild-describe every
	// paper expression (smoke: mentions grad3d and the output).
	net, err := Compile(vortex.VortMagExpr)
	if err != nil {
		t.Fatal(err)
	}
	s := net.Script()
	for _, frag := range []string{"add_source(\"u\")", "grad3d", "set_output", "alias(\"w_mag\""} {
		if !strings.Contains(s, frag) {
			t.Errorf("network script missing %q", frag)
		}
	}
}

func TestConditionalParsing(t *testing.T) {
	p, err := Parse("a = if (u > 0.5) then (v) else (-v)")
	if err != nil {
		t.Fatal(err)
	}
	want := "a = if ((u > 0.5)) then (v) else ((-v))"
	if got := p.String(); got != want {
		t.Fatalf("conditional rendered %q, want %q", got, want)
	}
	// Round trip.
	p2, err := Parse(p.String())
	if err != nil || p2.String() != p.String() {
		t.Fatalf("conditional round trip: %v", err)
	}
}

func TestConditionalNetwork(t *testing.T) {
	net, err := Compile("a = if (u >= v) then (u) else (v)")
	if err != nil {
		t.Fatal(err)
	}
	out := net.OutputNode()
	if out.Filter != "select" {
		t.Fatalf("if/then/else must lower to select, got %q", out.Filter)
	}
	if cond := net.Node(out.Inputs[0]); cond.Filter != "ge" {
		t.Fatalf("condition must lower to ge, got %q", cond.Filter)
	}
}

func TestNormParsing(t *testing.T) {
	net, err := Compile("n = norm(grad3d(u,dims,x,y,z))")
	if err != nil {
		t.Fatal(err)
	}
	if net.OutputNode().Filter != "norm" {
		t.Fatalf("output filter %q", net.OutputNode().Filter)
	}
	// norm of a scalar must fail validation.
	if _, err := Compile("n = norm(u)"); err == nil {
		t.Fatal("norm of a scalar must fail")
	}
}

func TestRelationalErrors(t *testing.T) {
	cases := []string{
		"a = u > v > w",       // chained comparisons
		"a = if (u) then (v)", // missing else
		"a = u ! v",           // lone bang
		"a = if > 2",          // keyword misuse
	}
	for _, in := range cases {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) should fail", in)
		}
	}
}

func TestComparisonChainsInNetworks(t *testing.T) {
	net, err := Compile("mask = (u > 0.1) * (v < 0.9)\nout = mask * w")
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSyntaxErrorCaret(t *testing.T) {
	_, err := Parse("a = u + v\nb = u * )")
	if err == nil {
		t.Fatal("expected syntax error")
	}
	var se *SyntaxError
	if !errorsAs(err, &se) {
		t.Fatalf("want *SyntaxError, got %T: %v", err, err)
	}
	msg := err.Error()
	if !strings.Contains(msg, "line 2") {
		t.Errorf("message should carry the line: %q", msg)
	}
	if !strings.Contains(msg, "b = u * )") {
		t.Errorf("message should carry the source excerpt: %q", msg)
	}
	if !strings.Contains(msg, "^") {
		t.Errorf("message should carry a caret: %q", msg)
	}
	// Caret lands under the offending token.
	lines := strings.Split(msg, "\n")
	caretLine := lines[len(lines)-1]
	if got := strings.Index(caretLine, "^"); got != 4+8 { // 4-space indent + col 9
		t.Errorf("caret at offset %d: %q", got, caretLine)
	}
}

func TestSyntaxErrorAtEOF(t *testing.T) {
	_, err := Parse("a = u +")
	if err == nil {
		t.Fatal("expected syntax error")
	}
	msg := err.Error()
	if !strings.Contains(msg, "end of input") || !strings.Contains(msg, "a = u +") {
		t.Errorf("EOF error should show the trailing line: %q", msg)
	}
}

// errorsAs avoids importing errors twice in this test file.
func errorsAs(err error, target any) bool {
	return errors.As(err, target)
}
