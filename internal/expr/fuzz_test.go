package expr

import (
	"testing"

	"dfg/internal/vortex"
)

// FuzzParse drives the lexer, the LALR driver, and the network builder
// with arbitrary input: nothing may panic, and every accepted program
// must compile into a valid network. `go test` exercises the seed
// corpus; `go test -fuzz=FuzzParse ./internal/expr` explores further.
func FuzzParse(f *testing.F) {
	seeds := []string{
		vortex.VelMagExpr,
		vortex.VortMagExpr,
		vortex.QCritExpr,
		vortex.EnstrophyExpr,
		"a = if (norm(grad3d(b,dims,x,y,z)) > 5) then (c*c) else (-c*c)",
		"a = 1e10 + .5 * u[0]",
		"a=b;c=d\n\n#comment\ne=f",
		"a = pow(u, 2) >= exp(v)",
		"((((((((((",
		"= = = =",
		"a = u u u",
		"\x00\xff",
		"a = -----u",
		"t0 = u\nb = t0",
		// Definition-shaped programs: these exercise the same grammar
		// paths FuzzCompileWithDefinitions expands through the database.
		"speed = sqrt(u*u + v*v + w*w)\nke = 0.5 * rho * speed * speed",
		"d1 = d2 + 1\nd2 = d1 * 2\nr = d1",
		"vmag2 = u*u + v*v + w*w\nr = sqrt(vmag2) + vmag2",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		p, err := Parse(input)
		if err != nil {
			return // rejection is fine; panics are not
		}
		net, err := BuildNetwork(p)
		if err != nil {
			return
		}
		net.EliminateCommonSubexpressions()
		if err := net.Validate(); err != nil {
			t.Fatalf("accepted program failed validation: %v\ninput: %q", err, input)
		}
		if _, err := net.TopoOrder(); err != nil {
			t.Fatalf("accepted program failed scheduling: %v\ninput: %q", err, input)
		}
	})
}

// FuzzCompileWithDefinitions drives the definition-expansion machinery:
// the main program plus two named definitions that may reference each
// other (or themselves). Nothing may panic; cycles must be rejected as
// errors; every accepted program must yield a valid, sealed, schedulable
// network.
func FuzzCompileWithDefinitions(f *testing.F) {
	seeds := [][3]string{
		// Plain expansion and re-expansion.
		{"r = sqrt(d1)", "u*u + v*v + w*w", "sqrt(abs(u))"},
		// Chained definitions: d2 references d1.
		{"r = d2 + d1", "u * 2", "d1 + 1"},
		// Direct and mutual recursion — must be rejected, never loop.
		{"r = d1", "d1 + 1", "u"},
		{"r = d1", "d2 + 1", "d1 * 2"},
		{"r = d2", "d2", "d1"},
		// Shadowing: a local assignment hides the definition name.
		{"d1 = u\nr = d1 + 1", "v * 9", "w"},
		// Definitions with their own multi-statement local namespaces.
		{"r = d1 * d2", "t = u + 1\nt * t", "t = v - 1\nt / 2"},
		// Definition bodies that fail to parse or to build.
		{"r = d1", "((((", "u"},
		{"r = d1", "norm(u)", "u"},
		// Definitions feeding stencil arguments.
		{"r = norm(grad3d(d1, dims, x, y, z))", "u + v", "w"},
	}
	for _, s := range seeds {
		f.Add(s[0], s[1], s[2])
	}
	f.Fuzz(func(t *testing.T, text, def1, def2 string) {
		defs := map[string]string{"d1": def1, "d2": def2}
		net, err := CompileWithDefinitions(text, defs)
		if err != nil {
			return // rejection (including cycles) is fine; panics are not
		}
		if !net.Sealed() {
			t.Fatalf("compiled network is not sealed\ninput: %q defs: %q", text, defs)
		}
		if err := net.Validate(); err != nil {
			t.Fatalf("accepted program failed validation: %v\ninput: %q defs: %q", err, text, defs)
		}
		if _, err := net.TopoOrder(); err != nil {
			t.Fatalf("accepted program failed scheduling: %v\ninput: %q defs: %q", err, text, defs)
		}
	})
}
