package expr

import (
	"testing"

	"dfg/internal/vortex"
)

// FuzzParse drives the lexer, the LALR driver, and the network builder
// with arbitrary input: nothing may panic, and every accepted program
// must compile into a valid network. `go test` exercises the seed
// corpus; `go test -fuzz=FuzzParse ./internal/expr` explores further.
func FuzzParse(f *testing.F) {
	seeds := []string{
		vortex.VelMagExpr,
		vortex.VortMagExpr,
		vortex.QCritExpr,
		vortex.EnstrophyExpr,
		"a = if (norm(grad3d(b,dims,x,y,z)) > 5) then (c*c) else (-c*c)",
		"a = 1e10 + .5 * u[0]",
		"a=b;c=d\n\n#comment\ne=f",
		"a = pow(u, 2) >= exp(v)",
		"((((((((((",
		"= = = =",
		"a = u u u",
		"\x00\xff",
		"a = -----u",
		"t0 = u\nb = t0",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		p, err := Parse(input)
		if err != nil {
			return // rejection is fine; panics are not
		}
		net, err := BuildNetwork(p)
		if err != nil {
			return
		}
		net.EliminateCommonSubexpressions()
		if err := net.Validate(); err != nil {
			t.Fatalf("accepted program failed validation: %v\ninput: %q", err, input)
		}
		if _, err := net.TopoOrder(); err != nil {
			t.Fatalf("accepted program failed scheduling: %v\ninput: %q", err, input)
		}
	})
}
