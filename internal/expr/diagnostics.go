package expr

import (
	"errors"
	"fmt"
	"strings"

	"dfg/internal/lalr"
)

// SyntaxError decorates a parse error with the offending source line and
// a caret, so host-application users see where their expression broke:
//
//	syntax error at line 2, column 14: unexpected ")" (expected ...)
//	    w_x = dw[1] - )
//	                  ^
type SyntaxError struct {
	Line, Col int
	Excerpt   string // the offending source line
	Inner     error  // the underlying *lalr.ParseError
}

// Error implements the error interface.
func (e *SyntaxError) Error() string {
	var b strings.Builder
	b.WriteString(e.Inner.Error())
	if e.Excerpt != "" {
		fmt.Fprintf(&b, "\n    %s\n", e.Excerpt)
		col := e.Col
		if col < 1 {
			col = 1
		}
		if col > len(e.Excerpt)+1 {
			col = len(e.Excerpt) + 1
		}
		b.WriteString("    " + strings.Repeat(" ", col-1) + "^")
	}
	return b.String()
}

// Unwrap exposes the underlying parse error for errors.As.
func (e *SyntaxError) Unwrap() error { return e.Inner }

// decorate wraps parser errors with source context. Non-parse errors
// pass through unchanged.
func decorate(input string, err error) error {
	var pe *lalr.ParseError
	if !errors.As(err, &pe) {
		return err
	}
	line := pe.Token.Line
	col := pe.Token.Col
	if pe.Token.Sym == lalr.EOF {
		// Point one past the end of the last non-empty line.
		lines := strings.Split(input, "\n")
		for i := len(lines) - 1; i >= 0; i-- {
			if strings.TrimSpace(lines[i]) != "" {
				line = i + 1
				col = len(lines[i]) + 1
				break
			}
		}
	}
	excerpt := ""
	if lines := strings.Split(input, "\n"); line >= 1 && line <= len(lines) {
		excerpt = lines[line-1]
	}
	return &SyntaxError{Line: line, Col: col, Excerpt: excerpt, Inner: pe}
}
