package expr

import (
	"fmt"
	"strconv"
	"strings"

	"dfg/internal/lalr"
)

// Token symbol names used by the grammar.
const (
	symIdent  = "IDENT"
	symNumber = "NUMBER"
	symSep    = "SEP" // statement separator (newline or ';')
)

// keywords reserves the conditional syntax of the paper's introduction
// example: a = if (cond) then (x) else (y).
var keywords = map[string]string{
	"if":   "IF",
	"then": "THEN",
	"else": "ELSE",
}

// LexError is a tokenization error with location.
type LexError struct {
	Line, Col int
	Msg       string
}

// Error implements the error interface.
func (e *LexError) Error() string {
	return fmt.Sprintf("lex error at line %d, column %d: %s", e.Line, e.Col, e.Msg)
}

// lex tokenizes expression text. Comment lines start with '#'.
// Runs of newlines/semicolons collapse into single SEP tokens, with
// leading and trailing separators dropped, so the grammar only ever sees
// separators between statements.
func lex(input string) ([]lalr.Token, error) {
	var toks []lalr.Token
	line, col := 1, 0
	i := 0
	n := len(input)

	push := func(sym, text string, val any) {
		toks = append(toks, lalr.Token{Sym: sym, Text: text, Pos: i, Line: line, Col: col, Val: val})
	}

	for i < n {
		ch := input[i]
		col++
		switch {
		case ch == '\n' || ch == ';':
			push(symSep, string(ch), nil)
			if ch == '\n' {
				line++
				col = 0
			}
			i++
		case ch == ' ' || ch == '\t' || ch == '\r':
			i++
		case ch == '#': // comment to end of line
			for i < n && input[i] != '\n' {
				i++
			}
		case isIdentStart(ch):
			start := i
			for i < n && isIdentPart(input[i]) {
				i++
			}
			word := input[start:i]
			if kw, ok := keywords[word]; ok {
				push(kw, word, nil)
			} else {
				push(symIdent, word, word)
			}
			col += len(word) - 1
		case ch >= '0' && ch <= '9' || ch == '.':
			start := i
			for i < n && (input[i] >= '0' && input[i] <= '9' || input[i] == '.') {
				i++
			}
			// Exponent part.
			if i < n && (input[i] == 'e' || input[i] == 'E') {
				j := i + 1
				if j < n && (input[j] == '+' || input[j] == '-') {
					j++
				}
				if j < n && input[j] >= '0' && input[j] <= '9' {
					i = j
					for i < n && input[i] >= '0' && input[i] <= '9' {
						i++
					}
				}
			}
			text := input[start:i]
			v, err := strconv.ParseFloat(text, 64)
			if err != nil {
				return nil, &LexError{Line: line, Col: col, Msg: fmt.Sprintf("bad number %q", text)}
			}
			push(symNumber, text, v)
			col += len(text) - 1
		case ch == '>' || ch == '<' || ch == '=' || ch == '!':
			// Relational operators and assignment; two-character forms
			// (>=, <=, ==, !=) win over their one-character prefixes.
			if i+1 < n && input[i+1] == '=' {
				op := input[i : i+2]
				push(string(op), string(op), nil)
				i += 2
				col++
				break
			}
			if ch == '!' {
				return nil, &LexError{Line: line, Col: col, Msg: "unexpected character '!' (did you mean !=?)"}
			}
			push(string(ch), string(ch), nil)
			i++
		case strings.ContainsRune("+-*/()[],", rune(ch)):
			push(string(ch), string(ch), nil)
			i++
		default:
			return nil, &LexError{Line: line, Col: col, Msg: fmt.Sprintf("unexpected character %q", ch)}
		}
	}

	return normalizeSeps(toks), nil
}

// normalizeSeps drops leading/trailing separators and collapses runs.
func normalizeSeps(toks []lalr.Token) []lalr.Token {
	out := toks[:0]
	for _, t := range toks {
		if t.Sym == symSep {
			if len(out) == 0 || out[len(out)-1].Sym == symSep {
				continue
			}
		}
		out = append(out, t)
	}
	for len(out) > 0 && out[len(out)-1].Sym == symSep {
		out = out[:len(out)-1]
	}
	return out
}

func isIdentStart(ch byte) bool {
	return ch >= 'a' && ch <= 'z' || ch >= 'A' && ch <= 'Z' || ch == '_'
}

func isIdentPart(ch byte) bool {
	return isIdentStart(ch) || ch >= '0' && ch <= '9'
}
