package expr

import (
	"fmt"

	"dfg/internal/dataflow"
	"dfg/internal/passes"
)

// BuildNetwork traverses a parse tree and emits the dataflow network
// specification, as the paper's parser does: filter invocations get
// generic names, assignment statements alias them to the user's names,
// and names never assigned become host-provided source arrays. The last
// statement's value is the network output.
func BuildNetwork(p *Program) (*dataflow.Network, error) {
	return BuildNetworkWithDefinitions(p, nil)
}

// BuildNetworkWithDefinitions is BuildNetwork with a database of named
// expression definitions — the expression-list facility visualization
// tools provide. A reference to a defined name expands its program
// inline (once; repeated references reuse the expansion). Definition
// programs have their own local namespace: their assignments do not leak
// into, or read from, the caller's names, but both share host sources.
func BuildNetworkWithDefinitions(p *Program, defs map[string]*Program) (*dataflow.Network, error) {
	if len(p.Stmts) == 0 {
		return nil, fmt.Errorf("expr: program has no statements")
	}
	b := &builder{
		net:       dataflow.NewNetwork(),
		defs:      defs,
		memo:      make(map[string]string),
		expanding: make(map[string]bool),
		locals:    make(map[string]string),
	}
	last, err := b.emitProgram(p)
	if err != nil {
		return nil, err
	}
	if err := b.net.SetOutput(last); err != nil {
		return nil, err
	}
	if err := b.net.Validate(); err != nil {
		return nil, err
	}
	return b.net, nil
}

// Compile parses expression text and produces the optimized dataflow
// network: parse tree -> network specification -> the Paper pass
// pipeline (constant pooling and limited common sub-expression
// elimination).
func Compile(input string) (*dataflow.Network, error) {
	return CompileWithDefinitions(input, nil)
}

// CompileWithDefinitions is Compile against a database of named
// expression definitions (name -> expression program text). It runs the
// passes.Paper pipeline, reproducing the paper's front end exactly.
func CompileWithDefinitions(input string, defs map[string]string) (*dataflow.Network, error) {
	net, _, err := CompileWithPipeline(input, defs, passes.Paper, passes.RunOptions{})
	return net, err
}

// CompileWithPipeline compiles expression text through an explicit
// optimisation pipeline: parse tree -> network specification -> the
// pipeline's passes -> sealed network. The returned Result carries the
// per-pass records (node deltas, removed IDs, timings) for metrics and
// tracing; it is valid even though the network is sealed afterwards.
func CompileWithPipeline(input string, defs map[string]string, pipe *passes.Pipeline, opt passes.RunOptions) (*dataflow.Network, *passes.Result, error) {
	p, err := Parse(input)
	if err != nil {
		return nil, nil, err
	}
	parsedDefs := make(map[string]*Program, len(defs))
	for name, text := range defs {
		dp, err := Parse(text)
		if err != nil {
			return nil, nil, fmt.Errorf("expr: definition %q: %w", name, err)
		}
		parsedDefs[name] = dp
	}
	net, err := BuildNetworkWithDefinitions(p, parsedDefs)
	if err != nil {
		return nil, nil, err
	}
	res, err := pipe.RunWith(net, opt)
	if err != nil {
		return nil, nil, err
	}
	// Compiled networks are sealed: strategies, engines and the shared
	// compile cache may read them concurrently, so no further mutation is
	// permitted.
	net.Seal()
	return net, res, nil
}

// builder carries network-emission state.
type builder struct {
	net  *dataflow.Network
	defs map[string]*Program
	// memo maps an expanded definition name to its result node.
	memo map[string]string
	// expanding guards against recursive definitions.
	expanding map[string]bool
	// locals maps the current scope's assigned names directly to node
	// IDs — resolution is eager, so later shadowing (a definition
	// introducing a source with a caller's name, or vice versa) cannot
	// rebind earlier references. Aliases are still registered on the
	// network ("name" at top level, "def::name" inside expansions) for
	// external lookup.
	locals map[string]string
	prefix string
}

// emitProgram realizes a statement list in the current scope and
// returns the last statement's value.
func (b *builder) emitProgram(p *Program) (string, error) {
	var last string
	for _, s := range p.Stmts {
		id, err := b.emit(s.X)
		if err != nil {
			return "", err
		}
		if s.Name != "" {
			key := s.Name
			if b.prefix != "" {
				key = b.prefix + "::" + s.Name
			}
			if err := b.net.Alias(key, id); err != nil {
				return "", err
			}
			node := b.net.Node(id)
			if node == nil {
				return "", fmt.Errorf("expr: internal error: assignment %q lost its node", s.Name)
			}
			b.locals[s.Name] = node.ID
		}
		last = id
	}
	return last, nil
}

// expandDefinition inlines a named definition once and memoizes its
// result node.
func (b *builder) expandDefinition(name string) (string, error) {
	if id, ok := b.memo[name]; ok {
		return id, nil
	}
	if b.expanding[name] {
		return "", fmt.Errorf("expr: definition %q is recursive", name)
	}
	b.expanding[name] = true
	defer delete(b.expanding, name)

	savedLocals, savedPrefix := b.locals, b.prefix
	b.locals = make(map[string]string)
	b.prefix = name
	last, err := b.emitProgram(b.defs[name])
	b.locals, b.prefix = savedLocals, savedPrefix
	if err != nil {
		return "", fmt.Errorf("expr: definition %q: %w", name, err)
	}
	node := b.net.Node(last)
	if node == nil {
		return "", fmt.Errorf("expr: definition %q produced no value", name)
	}
	b.memo[name] = node.ID
	return node.ID, nil
}

// binaryFilter maps operator tokens to primitive names.
var binaryFilter = map[string]string{
	"+":  "add",
	"-":  "sub",
	"*":  "mul",
	"/":  "div",
	">":  "gt",
	"<":  "lt",
	">=": "ge",
	"<=": "le",
	"==": "eq",
	"!=": "ne",
}

// emit recursively realizes a parse-tree node in the network and
// returns its node ID or alias key.
func (b *builder) emit(n Node) (string, error) {
	switch t := n.(type) {
	case *Num:
		return b.net.AddConst(t.Value), nil

	case *Ref:
		// Resolution order: the current scope's assignments, then the
		// definition database, then existing nodes (sources), then a
		// fresh host source.
		if id, ok := b.locals[t.Name]; ok {
			return id, nil
		}
		if b.defs != nil {
			if _, ok := b.defs[t.Name]; ok {
				return b.expandDefinition(t.Name)
			}
		}
		if n := b.net.NodeByID(t.Name); n != nil {
			if n.Filter != "source" {
				return "", fmt.Errorf("expr: name %q collides with an internal node", t.Name)
			}
			return t.Name, nil
		}
		return b.net.AddSource(t.Name)

	case *Unary:
		if t.Op != "-" {
			return "", fmt.Errorf("expr: unsupported unary operator %q", t.Op)
		}
		x, err := b.emit(t.X)
		if err != nil {
			return "", err
		}
		return b.net.AddFilter("neg", x)

	case *Binary:
		filter, ok := binaryFilter[t.Op]
		if !ok {
			return "", fmt.Errorf("expr: unsupported operator %q", t.Op)
		}
		l, err := b.emit(t.L)
		if err != nil {
			return "", err
		}
		r, err := b.emit(t.R)
		if err != nil {
			return "", err
		}
		return b.net.AddFilter(filter, l, r)

	case *Index:
		base, err := b.emit(t.Base)
		if err != nil {
			return "", err
		}
		return b.net.AddDecompose(base, t.Comp)

	case *If:
		// Array semantics: both branches are evaluated everywhere and
		// the condition selects per element.
		cond, err := b.emit(t.Cond)
		if err != nil {
			return "", err
		}
		then, err := b.emit(t.Then)
		if err != nil {
			return "", err
		}
		els, err := b.emit(t.Else)
		if err != nil {
			return "", err
		}
		return b.net.AddFilter("select", cond, then, els)

	case *Call:
		if !dataflow.IsCallable(t.Fun) {
			return "", fmt.Errorf("expr: unknown function %q", t.Fun)
		}
		fi, _ := dataflow.Lookup(t.Fun)
		if len(t.Args) != fi.Arity {
			return "", fmt.Errorf("expr: %s takes %d argument(s), got %d", t.Fun, fi.Arity, len(t.Args))
		}
		args := make([]string, len(t.Args))
		for i, a := range t.Args {
			id, err := b.emit(a)
			if err != nil {
				return "", err
			}
			args[i] = id
		}
		return b.net.AddFilter(t.Fun, args...)

	default:
		return "", fmt.Errorf("expr: unhandled node type %T", n)
	}
}
