package expr

import (
	"fmt"
	"math"
	"sync"

	"dfg/internal/lalr"
)

// grammar builds the expression language's LALR(1) grammar. The grammar
// is written unambiguously (expr/term/factor layering), matching the
// limited grammar the paper describes: binary arithmetic, unary minus,
// function-style filter invocation, bracket component selection,
// parenthesized sub-expressions, and newline/semicolon-separated
// assignment statements.
func grammar() *lalr.Grammar {
	g := lalr.NewGrammar("program")

	g.Rule("program : stmts", func(v []any) any {
		return &Program{Stmts: v[0].([]*Stmt)}
	})
	g.Rule("stmts : stmts SEP stmt", func(v []any) any {
		return append(v[0].([]*Stmt), v[2].(*Stmt))
	})
	g.Rule("stmts : stmt", func(v []any) any {
		return []*Stmt{v[0].(*Stmt)}
	})

	g.Rule("stmt : IDENT = rel", func(v []any) any {
		return &Stmt{Name: v[0].(lalr.Token).Val.(string), X: v[2].(Node)}
	})
	g.Rule("stmt : rel", func(v []any) any {
		return &Stmt{X: v[0].(Node)}
	})

	bin := func(op string) func([]any) any {
		return func(v []any) any { return &Binary{Op: op, L: v[0].(Node), R: v[2].(Node)} }
	}
	// Relational operators bind loosest and do not chain (a < b < c is
	// a syntax error, as in most expression languages).
	for _, op := range []string{">", "<", ">=", "<=", "==", "!="} {
		g.Rule("rel : expr "+op+" expr", bin(op))
	}
	g.Rule("rel : expr", nil)

	g.Rule("expr : expr + term", bin("+"))
	g.Rule("expr : expr - term", bin("-"))
	g.Rule("expr : term", nil)
	g.Rule("term : term * factor", bin("*"))
	g.Rule("term : term / factor", bin("/"))
	g.Rule("term : factor", nil)

	g.Rule("factor : - factor", func(v []any) any {
		return &Unary{Op: "-", X: v[1].(Node)}
	})
	g.Rule("factor : postfix", nil)

	g.Rule("postfix : postfix [ NUMBER ]", func(v []any) any {
		f := v[2].(lalr.Token).Val.(float64)
		comp := int(f)
		if f != math.Trunc(f) {
			comp = -1 // validate() rejects out-of-range components
		}
		return &Index{Base: v[0].(Node), Comp: comp}
	})
	g.Rule("postfix : primary", nil)

	g.Rule("primary : NUMBER", func(v []any) any {
		return &Num{Value: v[0].(lalr.Token).Val.(float64)}
	})
	g.Rule("primary : IDENT", func(v []any) any {
		return &Ref{Name: v[0].(lalr.Token).Val.(string)}
	})
	g.Rule("primary : IDENT ( args )", func(v []any) any {
		return &Call{Fun: v[0].(lalr.Token).Val.(string), Args: v[2].([]Node)}
	})
	g.Rule("primary : ( rel )", func(v []any) any { return v[1] })

	// The paper's introduction sketches conditional expressions:
	// a = if (cond) then (x) else (y). Both branches are primaries, so
	// the usual written form parenthesizes them.
	g.Rule("primary : IF ( rel ) THEN primary ELSE primary", func(v []any) any {
		return &If{Cond: v[2].(Node), Then: v[5].(Node), Else: v[7].(Node)}
	})

	g.Rule("args : args , rel", func(v []any) any {
		return append(v[0].([]Node), v[2].(Node))
	})
	g.Rule("args : rel", func(v []any) any {
		return []Node{v[0].(Node)}
	})

	return g
}

var (
	tableOnce sync.Once
	table     *lalr.Table
	tableErr  error
)

// parseTable builds (once) the language's LALR(1) parse table.
func parseTable() (*lalr.Table, error) {
	tableOnce.Do(func() {
		table, tableErr = lalr.Build(grammar())
		if tableErr == nil && len(table.Conflicts) > 0 {
			tableErr = fmt.Errorf("expr: grammar has %d conflicts", len(table.Conflicts))
		}
	})
	return table, tableErr
}

// GrammarReport renders the expression language's LALR(1) grammar and
// parse table in yacc's y.output style (states, items, actions) — the
// debugging view PLY writes to parser.out. Exposed via dfg-fuse -grammar.
func GrammarReport() (string, error) {
	tbl, err := parseTable()
	if err != nil {
		return "", err
	}
	return tbl.Report(), nil
}

// Parse tokenizes and parses expression text into its parse tree.
func Parse(input string) (*Program, error) {
	tbl, err := parseTable()
	if err != nil {
		return nil, err
	}
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	if len(toks) == 0 {
		return nil, fmt.Errorf("expr: empty expression")
	}
	v, err := tbl.Parse(&lalr.SliceLexer{Tokens: toks})
	if err != nil {
		return nil, decorate(input, err)
	}
	p := v.(*Program)
	if err := validate(p); err != nil {
		return nil, err
	}
	return p, nil
}

// validate applies post-parse checks that the grammar alone cannot
// express (component indices must be small non-negative integers).
func validate(p *Program) error {
	var check func(n Node) error
	check = func(n Node) error {
		switch t := n.(type) {
		case *Index:
			if f := t.Comp; f < 0 || f > 3 {
				return fmt.Errorf("expr: component index %d out of range [0, 3]", t.Comp)
			}
			return check(t.Base)
		case *Unary:
			return check(t.X)
		case *Binary:
			if err := check(t.L); err != nil {
				return err
			}
			return check(t.R)
		case *Call:
			for _, a := range t.Args {
				if err := check(a); err != nil {
					return err
				}
			}
		case *If:
			for _, sub := range []Node{t.Cond, t.Then, t.Else} {
				if err := check(sub); err != nil {
					return err
				}
			}
		case *Num:
			if math.IsNaN(t.Value) || math.IsInf(t.Value, 0) {
				return fmt.Errorf("expr: non-finite constant")
			}
		}
		return nil
	}
	for _, s := range p.Stmts {
		if err := check(s.X); err != nil {
			return err
		}
	}
	return nil
}
