package expr

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomNode builds a random well-formed expression tree over the given
// source names, with grad3d/decompose chains included.
func randomNode(rng *rand.Rand, depth int, sources []string) Node {
	if depth <= 0 {
		switch rng.Intn(3) {
		case 0:
			return &Num{Value: float64(rng.Intn(20)) / 4}
		default:
			return &Ref{Name: sources[rng.Intn(len(sources))]}
		}
	}
	switch rng.Intn(8) {
	case 0:
		return &Unary{Op: "-", X: randomNode(rng, depth-1, sources)}
	case 1:
		return &Call{Fun: "sqrt", Args: []Node{&Call{Fun: "abs", Args: []Node{randomNode(rng, depth-1, sources)}}}}
	case 2:
		// A gradient + component selection chain.
		return &Index{
			Base: &Call{Fun: "grad3d", Args: []Node{
				&Ref{Name: sources[rng.Intn(len(sources))]},
				&Ref{Name: "dims"}, &Ref{Name: "x"}, &Ref{Name: "y"}, &Ref{Name: "z"},
			}},
			Comp: rng.Intn(3),
		}
	case 3:
		return &Call{Fun: []string{"min", "max"}[rng.Intn(2)], Args: []Node{
			randomNode(rng, depth-1, sources), randomNode(rng, depth-1, sources),
		}}
	default:
		op := []string{"+", "-", "*", "/"}[rng.Intn(4)]
		return &Binary{Op: op, L: randomNode(rng, depth-1, sources), R: randomNode(rng, depth-1, sources)}
	}
}

// TestRandomProgramsRoundTrip: for random well-formed ASTs, rendering to
// text and re-parsing yields the identical normalized text, and the
// resulting network validates. This exercises the lexer, the LALR
// grammar, precedence/associativity and the network builder together.
func TestRandomProgramsRoundTrip(t *testing.T) {
	sources := []string{"u", "v", "w"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		prog := &Program{}
		n := 1 + rng.Intn(4)
		for i := 0; i < n; i++ {
			name := fmt.Sprintf("s%d", i)
			prog.Stmts = append(prog.Stmts, &Stmt{Name: name, X: randomNode(rng, 3, sources)})
		}
		text := prog.String()
		parsed, err := Parse(text)
		if err != nil {
			t.Logf("seed %d: parse of rendered program failed: %v\n%s", seed, err, text)
			return false
		}
		if parsed.String() != text {
			t.Logf("seed %d: round trip drifted:\n%s\nvs\n%s", seed, text, parsed.String())
			return false
		}
		net, err := BuildNetwork(parsed)
		if err != nil {
			t.Logf("seed %d: build failed: %v", seed, err)
			return false
		}
		net.EliminateCommonSubexpressions()
		if err := net.Validate(); err != nil {
			t.Logf("seed %d: post-CSE validation failed: %v", seed, err)
			return false
		}
		if _, err := net.TopoOrder(); err != nil {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestCSEIsIdempotent: a second elimination pass never finds anything.
func TestCSEIsIdempotent(t *testing.T) {
	sources := []string{"u", "v", "w"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		prog := &Program{Stmts: []*Stmt{{Name: "out", X: randomNode(rng, 4, sources)}}}
		net, err := BuildNetwork(prog)
		if err != nil {
			return false
		}
		net.EliminateCommonSubexpressions()
		return net.EliminateCommonSubexpressions() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
