// Package expr implements the framework's expression language front end:
// a hand-written lexer and an LALR(1) grammar (built with internal/lalr,
// our PLY equivalent) that turn user expression text like
//
//	du = grad3d(u, dims, x, y, z)
//	w_x = dw[1] - dv[2]
//	v_mag = sqrt(u*u + v*v + w*w)
//
// into a parse tree and then a dataflow network specification, applying
// the paper's constant pooling and limited common sub-expression
// elimination. Statements are either simple (a constant, a variable, or
// one filter invocation) or nested (filter invocations with
// sub-expressions as arguments); assignment statements name the value of
// their right side, and the last statement is the network output.
package expr

import (
	"fmt"
	"strings"
)

// Node is an expression parse-tree node.
type Node interface {
	// String renders the node as normalized expression text.
	String() string
}

// Num is a numeric literal.
type Num struct {
	Value float64
}

// String renders the literal.
func (n *Num) String() string { return trimFloat(n.Value) }

// Ref is a reference to an assigned name or a host-provided source array.
type Ref struct {
	Name string
}

// String renders the reference.
func (r *Ref) String() string { return r.Name }

// Call is a filter invocation, e.g. grad3d(u, dims, x, y, z).
type Call struct {
	Fun  string
	Args []Node
}

// String renders the invocation.
func (c *Call) String() string {
	args := make([]string, len(c.Args))
	for i, a := range c.Args {
		args[i] = a.String()
	}
	return c.Fun + "(" + strings.Join(args, ",") + ")"
}

// Index is the bracket syntax selecting a component of a
// multi-dimensional value, e.g. du[1].
type Index struct {
	Base Node
	Comp int
}

// String renders the selection.
func (i *Index) String() string { return fmt.Sprintf("%s[%d]", i.Base.String(), i.Comp) }

// Unary is a unary operation (only negation in the paper's grammar).
type Unary struct {
	Op string // "-"
	X  Node
}

// String renders the operation.
func (u *Unary) String() string { return "(" + u.Op + u.X.String() + ")" }

// Binary is a binary arithmetic operation.
type Binary struct {
	Op   string // "+", "-", "*", "/"
	L, R Node
}

// String renders the operation.
func (b *Binary) String() string {
	return "(" + b.L.String() + " " + b.Op + " " + b.R.String() + ")"
}

// If is a conditional expression: if (Cond) then (Then) else (Else),
// evaluated per element (the framework's expression language is a
// whole-array calculus, so both branches are computed and selected).
type If struct {
	Cond, Then, Else Node
}

// String renders the conditional in the paper's intro style.
func (f *If) String() string {
	return fmt.Sprintf("if (%s) then (%s) else (%s)", f.Cond.String(), f.Then.String(), f.Else.String())
}

// Stmt is one statement: an expression, optionally assigned to a name.
type Stmt struct {
	// Name is the assignment target ("" for a bare expression).
	Name string
	X    Node
}

// String renders the statement.
func (s *Stmt) String() string {
	if s.Name == "" {
		return s.X.String()
	}
	return s.Name + " = " + s.X.String()
}

// Program is a parsed expression program.
type Program struct {
	Stmts []*Stmt
}

// String renders the program, one statement per line.
func (p *Program) String() string {
	lines := make([]string, len(p.Stmts))
	for i, s := range p.Stmts {
		lines[i] = s.String()
	}
	return strings.Join(lines, "\n")
}

// trimFloat renders a float without superfluous digits.
func trimFloat(v float64) string {
	s := fmt.Sprintf("%g", v)
	return s
}
