package expr

import (
	"strings"
	"testing"

	"dfg/internal/dataflow"
	"dfg/internal/vortex"
)

func TestDefinitionsExpand(t *testing.T) {
	defs := map[string]string{
		"speed": "sqrt(u*u + v*v + w*w)",
	}
	net, err := CompileWithDefinitions("a = speed * 2", defs)
	if err != nil {
		t.Fatal(err)
	}
	// The expansion pulls in u, v, w as sources and ends in mul.
	if len(net.Sources()) != 3 {
		t.Fatalf("want 3 sources from the definition, got %d", len(net.Sources()))
	}
	if net.OutputNode().Filter != "mul" {
		t.Fatalf("output filter %q", net.OutputNode().Filter)
	}
}

func TestDefinitionsMemoized(t *testing.T) {
	defs := map[string]string{"vort": vortex.VortMagExpr}
	// Two references to the same definition expand once: still exactly
	// 3 gradient filters.
	net, err := CompileWithDefinitions("e = vort * vort", defs)
	if err != nil {
		t.Fatal(err)
	}
	order, _ := net.TopoOrder()
	grads := 0
	for _, n := range order {
		if n.Filter == "grad3d" {
			grads++
		}
	}
	if grads != 3 {
		t.Fatalf("definition must expand once: %d gradients", grads)
	}
}

func TestDefinitionLocalsDoNotLeak(t *testing.T) {
	defs := map[string]string{"vort": vortex.VortMagExpr}
	// The definition assigns du internally; referencing du outside must
	// create a fresh SOURCE, not reach the definition's local.
	net, err := CompileWithDefinitions("a = vort + 1\nb = a * du", defs)
	if err != nil {
		t.Fatal(err)
	}
	duNode := net.Node("du")
	if duNode == nil || duNode.Filter != "source" {
		t.Fatalf("du outside the definition must be a source, got %+v", duNode)
	}
}

func TestDefinitionDoesNotReadCallerLocals(t *testing.T) {
	// The definition references "base", which the caller also assigns.
	// The definition's "base" must resolve to a host source, not the
	// caller's local.
	defs := map[string]string{"shifted": "base + 100"}
	net, err := CompileWithDefinitions("base = u * u\nout = shifted + base", defs)
	if err != nil {
		t.Fatal(err)
	}
	// "base" must exist as a source (used by the definition)...
	if n := net.Node("base"); n == nil || n.Filter != "source" {
		t.Fatalf("definition's base must be a host source, got %+v", n)
	}
	// ...while the caller's final add reads the local mul through its
	// alias, which survives un-clobbered.
	out := net.OutputNode()
	second := net.Node(out.Inputs[1])
	if second.Filter != "mul" {
		t.Fatalf("caller's base must stay bound to the local mul, got %q", second.Filter)
	}
}

func TestUserLocalShadowsDefinition(t *testing.T) {
	defs := map[string]string{"speed": "sqrt(u*u)"}
	net, err := CompileWithDefinitions("speed = 3\na = speed * v", defs)
	if err != nil {
		t.Fatal(err)
	}
	// The local assignment wins: no sqrt in the network.
	for _, n := range net.Nodes() {
		if n.Filter == "sqrt" {
			t.Fatal("local name must shadow the definition")
		}
	}
}

func TestRecursiveDefinitionsRejected(t *testing.T) {
	defs := map[string]string{
		"a": "b + 1",
		"b": "a + 1",
	}
	if _, err := CompileWithDefinitions("x = a", defs); err == nil || !strings.Contains(err.Error(), "recursive") {
		t.Fatalf("recursive definitions must fail, got %v", err)
	}
	// Direct self-recursion too.
	if _, err := CompileWithDefinitions("x = me", map[string]string{"me": "me + 1"}); err == nil {
		t.Fatal("self-recursive definition must fail")
	}
}

func TestNestedDefinitions(t *testing.T) {
	defs := map[string]string{
		"speed2": "u*u + v*v + w*w",
		"speed":  "sqrt(speed2)",
		"mach":   "speed / c_sound",
	}
	net, err := CompileWithDefinitions("m2 = mach * mach", defs)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, s := range net.Sources() {
		names[s.ID] = true
	}
	for _, want := range []string{"u", "v", "w", "c_sound"} {
		if !names[want] {
			t.Fatalf("missing source %q from nested expansion: %v", want, names)
		}
	}
}

func TestDefinitionErrors(t *testing.T) {
	// A definition with a syntax error surfaces with its name.
	_, err := CompileWithDefinitions("x = bad", map[string]string{"bad": "1 +"})
	if err == nil || !strings.Contains(err.Error(), `"bad"`) {
		t.Fatalf("definition parse errors must name the definition: %v", err)
	}
	// Unreferenced broken definitions still fail fast (they are parsed
	// up front, like a visualization tool validating its expression list).
	_, err = CompileWithDefinitions("x = u", map[string]string{"broken": "$"})
	if err == nil {
		t.Fatal("broken definitions must be rejected even if unused")
	}
}

func TestDefinitionsComposeWithCSE(t *testing.T) {
	defs := map[string]string{"e": "u * u"}
	net, err := CompileWithDefinitions("a = e + e\nb = a + u*u", defs)
	if err != nil {
		t.Fatal(err)
	}
	// After CSE the definition's u*u and the caller's u*u collapse.
	muls := 0
	order, _ := net.TopoOrder()
	for _, n := range order {
		if n.Filter == "mul" {
			muls++
		}
	}
	if muls != 1 {
		t.Fatalf("CSE should collapse duplicate muls across the expansion boundary: %d", muls)
	}
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	_ = dataflow.ClassElementwise // keep the import honest if counts change
}
