package compile

import (
	"sync"
	"testing"

	"dfg/internal/passes"
	"dfg/internal/strategy"
	"dfg/internal/vortex"
)

// TestPlanCacheScheduleKeys: the same expression fingerprint planned
// under flat fusion and under a scheduled fusion variant must occupy
// distinct plan-cache slots — same fingerprint, different plans, two
// builds. Concurrent planning from both variants must stay race-free
// (run with -race) and converge on exactly one plan per variant.
func TestPlanCacheScheduleKeys(t *testing.T) {
	c := NewCompiler()
	dev := cpuDev()
	flat, err := strategy.ForName("fusion")
	if err != nil {
		t.Fatal(err)
	}
	tiled, err := strategy.ForName("fusion+" + passes.DefaultSchedule().CacheTag())
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	plans := make([]strategy.Plan, 2*workers)
	fps := make([]string, 2*workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		for j, strat := range []strategy.Strategy{flat, tiled} {
			wg.Add(1)
			go func(slot int, s strategy.Strategy) {
				defer wg.Done()
				p, fp, err := c.Plan(vortex.QCritExpr, s, dev)
				if err != nil {
					t.Error(err)
					return
				}
				plans[slot], fps[slot] = p, fp
			}(2*i+j, strat)
		}
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	for i := 1; i < len(fps); i++ {
		if fps[i] != fps[0] {
			t.Fatal("schedule must not change the network fingerprint")
		}
	}
	for i := 2; i < len(plans); i += 2 {
		if plans[i] != plans[0] || plans[i+1] != plans[1] {
			t.Fatal("plans for one variant must be shared")
		}
	}
	if plans[0] == plans[1] {
		t.Fatal("flat and scheduled plans alias in the cache")
	}
	if got := c.Stats().PlanBuilds; got != 2 {
		t.Fatalf("want exactly 2 plan builds (one per schedule variant), got %d", got)
	}

	// A second scheduled variant is a third slot.
	vec, err := strategy.ForName("fusion+vec=4")
	if err != nil {
		t.Fatal(err)
	}
	p3, fp3, err := c.Plan(vortex.QCritExpr, vec, dev)
	if err != nil {
		t.Fatal(err)
	}
	if fp3 != fps[0] || p3 == plans[0] || p3 == plans[1] {
		t.Fatal("fusion+vec=4 must be its own plan under the same fingerprint")
	}
	if got := c.Stats().PlanBuilds; got != 3 {
		t.Fatalf("want 3 plan builds after the third variant, got %d", got)
	}
}
