package compile

import (
	"sync"
	"testing"

	"dfg/internal/obs"
)

// TestCompileTracedSpans checks the span tree and cache-outcome
// annotations for a miss followed by a hit.
func TestCompileTracedSpans(t *testing.T) {
	c := NewCompiler()
	tr := obs.NewTracer(4)

	root := tr.Start("eval")
	net, key, err := c.CompileTraced("a = u + v", root)
	root.Finish()
	if err != nil || net == nil {
		t.Fatalf("compile failed: %v", err)
	}
	if key != c.Fingerprint("a = u + v") {
		t.Fatal("CompileTraced key must match Fingerprint")
	}
	cs := root.Find("compile")
	if cs == nil {
		t.Fatal("no compile span")
	}
	if cs.Attr("fingerprint") != ShortKey(key) {
		t.Fatalf("fingerprint attr = %q", cs.Attr("fingerprint"))
	}
	for _, stage := range []string{"parse", "fingerprint", "cache", "build"} {
		if cs.Find(stage) == nil {
			t.Fatalf("miss trace lacks %q span", stage)
		}
	}
	if got := cs.Find("cache").Attr("outcome"); got != "miss" {
		t.Fatalf("first compile outcome = %q, want miss", got)
	}

	root2 := tr.Start("eval")
	_, _, err = c.CompileTraced("a = u + v", root2)
	root2.Finish()
	if err != nil {
		t.Fatal(err)
	}
	cs2 := root2.Find("compile")
	if got := cs2.Find("cache").Attr("outcome"); got != "hit" {
		t.Fatalf("second compile outcome = %q, want hit", got)
	}
	if cs2.Find("build") != nil {
		t.Fatal("cache hit must not record a build span")
	}
}

// TestCompileTracedNilSpan is the no-op path: identical behavior, no
// trace.
func TestCompileTracedNilSpan(t *testing.T) {
	c := NewCompiler()
	net, key, err := c.CompileTraced("a = u * u", nil)
	if err != nil || net == nil || key == "" {
		t.Fatalf("nil-span compile: net=%v key=%q err=%v", net, key, err)
	}
	if _, _, err := c.CompileTraced("a = (", nil); err == nil {
		t.Fatal("parse error must still surface on the nil-span path")
	}
}

// TestCompileTracedConcurrentOutcomes hammers one cold key from many
// goroutines: exactly one build runs, every outcome annotation is one of
// the three legal values, and inflight returns to zero.
func TestCompileTracedConcurrentOutcomes(t *testing.T) {
	c := NewCompiler()
	tr := obs.NewTracer(64)
	const goroutines = 16
	var wg sync.WaitGroup
	roots := make([]*obs.Span, goroutines)
	for i := 0; i < goroutines; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			root := tr.Start("eval")
			if _, _, err := c.CompileTraced("q = sqrt(u*u + v*v + w*w)", root); err != nil {
				t.Error(err)
			}
			root.Finish()
			roots[i] = root
		}()
	}
	wg.Wait()

	counts := map[string]int{}
	for _, root := range roots {
		outcome := root.Find("cache").Attr("outcome")
		counts[outcome]++
	}
	if counts["miss"] != 1 {
		t.Fatalf("want exactly 1 miss build, got outcomes %v", counts)
	}
	if counts["miss"]+counts["hit"]+counts["singleflight-wait"] != goroutines {
		t.Fatalf("illegal outcome in %v", counts)
	}
	st := c.Stats()
	if st.Compiles != 1 {
		t.Fatalf("compiles = %d, want 1", st.Compiles)
	}
	if st.Inflight != 0 {
		t.Fatalf("inflight = %d after quiesce, want 0", st.Inflight)
	}
}
