package compile

import "testing"

// FuzzDigestInjective fuzzes the cache-key fingerprint with pairs of
// definition sets over the same expression text: two different
// definition sets must never produce the same key. The length-prefixed
// encoding underneath Digest makes the preimages injective, so any
// collision this fuzzer could find would be a real bug (or a SHA-256
// collision).
func FuzzDigestInjective(f *testing.F) {
	f.Add("r = d1 + d2", "d1", "u*2", "d1", "u*3")
	f.Add("r = d1", "d1", "u", "d2", "u")
	// Concatenation boundaries: name/text splits that concatenate to the
	// same bytes must still digest differently.
	f.Add("r = x", "ab", "cd", "a", "bcd")
	f.Add("r = x", "a", "", "", "a")
	f.Add("", "", "", "", "")
	f.Add("r = d1", "d1", "u\nv", "d1\nu", "v")
	f.Fuzz(func(t *testing.T, text, nameA, textA, nameB, textB string) {
		defsA := map[string]string{nameA: textA}
		defsB := map[string]string{nameB: textB}
		da := Digest(text, defsA)
		db := Digest(text, defsB)
		same := nameA == nameB && textA == textB
		if same && da != db {
			t.Fatalf("equal inputs digested differently: %q vs %q", da, db)
		}
		if !same && da == db {
			t.Fatalf("different definition sets collided: {%q:%q} vs {%q:%q} -> %s",
				nameA, textA, nameB, textB, da)
		}
		// A two-entry set must differ from both singletons unless it
		// semantically equals one of them.
		defsAB := map[string]string{nameA: textA, nameB: textB}
		dab := Digest(text, defsAB)
		if len(defsAB) == 2 && (dab == da || dab == db) {
			t.Fatalf("two-definition set collided with a singleton")
		}
		// And the text itself is part of the key.
		if Digest(text+"x", defsA) == da {
			t.Fatalf("text change did not change the digest")
		}
	})
}
