// Package compile is the framework's shared compile layer: a
// concurrency-safe compiler that turns expression text plus a named
// definition database into sealed dataflow networks, memoized in a
// shared cache keyed by a content fingerprint.
//
// The paper's framework compiles per instance (one instance per MPI
// task), so a hot expression is compiled once per task. Serving many
// concurrent workers from one process makes that wasteful: this package
// moves cache ownership out of the engine so any number of engines can
// front the same cache. Cache keys fingerprint the expression text
// together with exactly the definitions the expression (transitively)
// references, so redefining a name invalidates the entries that depend
// on it — and only those.
//
// Concurrency: a sync.RWMutex guards the cache map (reads take the read
// lock), and each entry carries a sync.Once so a missing network is
// compiled exactly once no matter how many goroutines request it
// simultaneously (singleflight-style deduplication).
package compile

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"dfg/internal/dataflow"
	"dfg/internal/expr"
	"dfg/internal/obs"
	"dfg/internal/ocl"
	"dfg/internal/passes"
	"dfg/internal/strategy"
)

// DefaultMaxEntries bounds the cache when the caller does not: old
// entries (including those orphaned by redefinitions) are evicted in
// approximate-LRU order once the cache exceeds this size.
const DefaultMaxEntries = 512

// Compiler owns a definition database and a fingerprint-keyed network
// cache. All methods are safe for concurrent use by any number of
// goroutines; the networks it returns are sealed and likewise shareable.
type Compiler struct {
	mu         sync.RWMutex
	defs       map[string]string // copy-on-write: replaced wholesale, never mutated
	entries    map[string]*entry
	plans      map[string]*planEntry  // keyed (fingerprint, strategy, device class)
	merges     map[string]*mergeEntry // keyed by batch fingerprint
	maxEntries int

	clock    atomic.Int64 // advances on every cache touch, for LRU eviction
	compiles atomic.Int64 // networks actually built (cache misses that ran)
	hits     atomic.Int64
	misses   atomic.Int64
	inflight atomic.Int64 // builds currently running (singleflight leaders)

	planBuilds atomic.Int64 // plans actually constructed
	planHits   atomic.Int64
	planMisses atomic.Int64

	mergeBuilds atomic.Int64 // super-networks actually merged
	mergeHits   atomic.Int64
	mergeMisses atomic.Int64

	passMu    sync.Mutex
	passStats map[string]*passAgg // pass name -> cumulative counters
}

// passAgg accumulates one optimisation pass's counters across every
// network this compiler built (at any level).
type passAgg struct {
	runs         int64
	nodesRemoved int64
	seconds      float64
}

// entry is one cache slot. once guarantees the compile runs exactly one
// time even when many goroutines miss on the same key concurrently; done
// flips after the build completes, letting latecomers distinguish a pure
// cache hit from a singleflight wait on a build still in flight.
type entry struct {
	once    sync.Once
	done    atomic.Bool
	net     *dataflow.Network
	err     error
	lastUse atomic.Int64
}

// planEntry is one plan-cache slot, with the same singleflight shape as
// entry: the plan is built exactly once per (fingerprint, strategy,
// device class) no matter how many engines request it concurrently.
type planEntry struct {
	once    sync.Once
	done    atomic.Bool
	plan    strategy.Plan
	err     error
	lastUse atomic.Int64
}

// NewCompiler returns an empty compiler with the default cache bound.
func NewCompiler() *Compiler {
	return &Compiler{
		defs:       map[string]string{},
		entries:    make(map[string]*entry),
		plans:      make(map[string]*planEntry),
		merges:     make(map[string]*mergeEntry),
		maxEntries: DefaultMaxEntries,
		passStats:  make(map[string]*passAgg),
	}
}

// SetMaxEntries adjusts the cache bound (minimum 1).
func (c *Compiler) SetMaxEntries(n int) {
	if n < 1 {
		n = 1
	}
	c.mu.Lock()
	c.maxEntries = n
	c.mu.Unlock()
}

// Define registers (or replaces) a named expression definition. The text
// must parse. Cached networks whose expressions reference name become
// unreachable (their fingerprints no longer match) and age out of the
// cache; entries for unrelated expressions are untouched.
func (c *Compiler) Define(name, text string) error {
	if name == "" {
		return fmt.Errorf("compile: definition needs a name")
	}
	if _, err := expr.Parse(text); err != nil {
		return fmt.Errorf("compile: definition %q: %w", name, err)
	}
	c.mu.Lock()
	next := make(map[string]string, len(c.defs)+1)
	for k, v := range c.defs {
		next[k] = v
	}
	next[name] = text
	c.defs = next
	c.mu.Unlock()
	return nil
}

// Definitions lists the defined names, sorted.
func (c *Compiler) Definitions() []string {
	defs := c.snapshot()
	out := make([]string, 0, len(defs))
	for name := range defs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// snapshot returns the current definition map. The map is copy-on-write:
// callers must treat it as read-only.
func (c *Compiler) snapshot() map[string]string {
	c.mu.RLock()
	defs := c.defs
	c.mu.RUnlock()
	return defs
}

// Compile returns the sealed network for text against the current
// definitions, compiling on first use. Concurrent calls for the same
// (text, referenced definitions) pair share one compilation.
func (c *Compiler) Compile(text string) (*dataflow.Network, error) {
	net, _, err := c.CompileTraced(text, nil)
	return net, err
}

// CompileAt is Compile at an explicit optimisation level. Networks at
// different levels cache under different fingerprints, so a compiler
// serves mixed-level traffic without cross-talk.
func (c *Compiler) CompileAt(text string, lvl passes.Level) (*dataflow.Network, error) {
	net, _, err := c.CompileTracedAt(text, lvl, nil)
	return net, err
}

// CompileTraced is Compile with pipeline tracing: it opens a "compile"
// span under parent covering the front-end stages — "parse" (lex + LALR
// parse to the AST), "fingerprint" (definition resolution + digest), the
// "cache" lookup annotated with its outcome (hit, miss, or
// singleflight-wait when another goroutine is mid-build on the same
// key), and, on a miss, the "build" stage (AST -> network construction,
// the optimisation pass pipeline with one "pass:<name>" child span per
// pass, seal). It also returns the cache fingerprint, which metrics use
// to key latency histograms. A nil parent span is the no-op path —
// exactly Compile plus the fingerprint return.
func (c *Compiler) CompileTraced(text string, parent *obs.Span) (*dataflow.Network, string, error) {
	return c.CompileTracedAt(text, passes.LevelPaper, parent)
}

// CompileTracedAt is CompileTraced at an explicit optimisation level.
// The Paper level's cache keys are exactly the pre-pipeline Digest
// fingerprints; other levels append the level's cache tag, so the same
// expression compiled at two levels occupies two cache slots.
func (c *Compiler) CompileTracedAt(text string, lvl passes.Level, parent *obs.Span) (*dataflow.Network, string, error) {
	cs := parent.Child("compile")
	defer cs.Finish()

	defs := c.snapshot()
	ps := cs.Child("parse")
	p, err := expr.Parse(text)
	ps.Finish()
	if err != nil {
		// Parse failures are cheap to rediscover; don't cache them.
		if cs != nil {
			cs.SetAttr("error", err.Error())
		}
		return nil, levelKey(Digest(text, nil), lvl), err
	}
	fs := cs.Child("fingerprint")
	relevant := referencedDefs(p, defs)
	key := levelKey(Digest(text, relevant), lvl)
	fs.Finish()
	if cs != nil {
		cs.SetAttr("fingerprint", ShortKey(key))
		cs.SetAttr("opt", lvl.String())
	}

	ls := cs.Child("cache")
	e, _ := c.lookup(key)
	wasDone := e.done.Load()
	ran := false
	e.once.Do(func() {
		ran = true
		c.inflight.Add(1)
		defer c.inflight.Add(-1)
		c.compiles.Add(1)
		bs := cs.Child("build")
		var res *passes.Result
		e.net, res, e.err = expr.CompileWithPipeline(text, relevant, passes.ForLevel(lvl), passes.RunOptions{Parent: bs})
		e.done.Store(true)
		bs.Finish()
		c.recordPasses(res)
	})
	switch {
	case ran:
		ls.SetAttr("outcome", "miss")
	case wasDone:
		ls.SetAttr("outcome", "hit")
	default:
		// The entry existed but its build was still running: once.Do
		// blocked until the leader finished.
		ls.SetAttr("outcome", "singleflight-wait")
	}
	ls.Finish()
	return e.net, key, e.err
}

// levelKey appends a non-Paper level's cache tag to a digest. Digests
// are hex and the tag separator is not a hex character, so keys at
// different levels never collide; the Paper level's keys are the bare
// digests, byte-identical to the pre-pipeline fingerprints.
func levelKey(digest string, lvl passes.Level) string {
	if tag := lvl.CacheTag(); tag != "" {
		return digest + "-" + tag
	}
	return digest
}

// recordPasses folds one pipeline run into the per-pass counters behind
// the dfg_pass_* metrics.
func (c *Compiler) recordPasses(res *passes.Result) {
	if res == nil || len(res.Records) == 0 {
		return
	}
	c.passMu.Lock()
	for _, rec := range res.Records {
		agg := c.passStats[rec.Pass]
		if agg == nil {
			agg = &passAgg{}
			c.passStats[rec.Pass] = agg
		}
		agg.runs++
		agg.nodesRemoved += int64(len(rec.Removed))
		agg.seconds += rec.Duration.Seconds()
	}
	c.passMu.Unlock()
}

// PassStat is the cumulative account of one optimisation pass across
// every network the compiler built.
type PassStat struct {
	Name         string
	Runs         int64
	NodesRemoved int64
	Seconds      float64
}

// PassStat returns the counters for one pass name (zero-valued if the
// pass never ran).
func (c *Compiler) PassStat(name string) PassStat {
	c.passMu.Lock()
	defer c.passMu.Unlock()
	st := PassStat{Name: name}
	if agg := c.passStats[name]; agg != nil {
		st.Runs, st.NodesRemoved, st.Seconds = agg.runs, agg.nodesRemoved, agg.seconds
	}
	return st
}

// PassStats returns the counters for every pass that has run, sorted by
// name.
func (c *Compiler) PassStats() []PassStat {
	c.passMu.Lock()
	out := make([]PassStat, 0, len(c.passStats))
	for name, agg := range c.passStats {
		out = append(out, PassStat{Name: name, Runs: agg.runs, NodesRemoved: agg.nodesRemoved, Seconds: agg.seconds})
	}
	c.passMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// PlanKey builds the plan-cache key for a network fingerprint executed
// under a strategy on a device class. The strategy component should be
// strategy.PlanCacheName's result so configured variants (e.g.
// streaming tile counts) occupy distinct slots. Components are
// NUL-separated; fingerprints are hex and names never contain NUL, so
// the encoding is injective.
func PlanKey(fingerprint, strategyName, deviceClass string) string {
	return fingerprint + "\x00" + strategyName + "\x00" + deviceClass
}

// Plan returns the cached execution plan for text under strat on dev,
// compiling and planning on first use.
func (c *Compiler) Plan(text string, strat strategy.Strategy, dev *ocl.Device) (strategy.Plan, string, error) {
	return c.PlanTraced(text, strat, dev, nil)
}

// PlanTraced is PlanTracedAt at the Paper level.
func (c *Compiler) PlanTraced(text string, strat strategy.Strategy, dev *ocl.Device, parent *obs.Span) (strategy.Plan, string, error) {
	return c.PlanTracedAt(text, passes.LevelPaper, strat, dev, parent)
}

// PlanTraced is the prepared-execution front door: it compiles text via
// CompileTraced, then resolves the strategy's execution plan from a
// second cache keyed by (network fingerprint, strategy name, device
// class). Plans precompute everything that depends only on the network
// and the device — topological order, kernel resolution, fused program
// generation — so engines sharing this compiler also share one plan per
// hot expression. The "plan" child span annotates its cache outcome
// like the network cache does. Returns the plan, the network
// fingerprint, and any compile or planning error.
//
// The level folds into the network fingerprint (levelKey), so plans for
// the same expression at different levels occupy different plan-cache
// slots automatically.
func (c *Compiler) PlanTracedAt(text string, lvl passes.Level, strat strategy.Strategy, dev *ocl.Device, parent *obs.Span) (strategy.Plan, string, error) {
	net, fp, err := c.CompileTracedAt(text, lvl, parent)
	if err != nil {
		return nil, fp, err
	}
	plan, err := c.PlanNetTraced(net, fp, strat, dev, parent)
	return plan, fp, err
}

// PlanNetTraced resolves (or builds) the execution plan for an
// already-compiled network under an explicit fingerprint — the shared
// back half of PlanTracedAt, and the front door for merged batch
// super-networks, whose fingerprint is a BatchFingerprint rather than
// an expression digest. The fingerprint must uniquely identify the
// network's content (both digest families guarantee this), since it
// keys the shared plan cache.
func (c *Compiler) PlanNetTraced(net *dataflow.Network, fp string, strat strategy.Strategy, dev *ocl.Device, parent *obs.Span) (strategy.Plan, error) {
	key := PlanKey(fp, strategy.PlanCacheName(strat), dev.Name())

	ps := parent.Child("plan")
	defer ps.Finish()
	pe := c.planLookup(key)
	wasDone := pe.done.Load()
	ran := false
	pe.once.Do(func() {
		ran = true
		c.planBuilds.Add(1)
		pe.plan, pe.err = strat.Plan(net, dev)
		pe.done.Store(true)
	})
	switch {
	case ran:
		ps.SetAttr("outcome", "miss")
	case wasDone:
		ps.SetAttr("outcome", "hit")
	default:
		ps.SetAttr("outcome", "singleflight-wait")
	}
	return pe.plan, pe.err
}

// planLookup returns the plan entry for key, creating (and bounding the
// plan cache) as needed.
func (c *Compiler) planLookup(key string) *planEntry {
	now := c.clock.Add(1)
	c.mu.RLock()
	pe := c.plans[key]
	c.mu.RUnlock()
	if pe != nil {
		c.planHits.Add(1)
		pe.lastUse.Store(now)
		return pe
	}
	c.mu.Lock()
	if pe = c.plans[key]; pe == nil {
		c.planMisses.Add(1)
		pe = &planEntry{}
		pe.lastUse.Store(now)
		c.plans[key] = pe
		c.evictPlansLocked()
	} else {
		c.planHits.Add(1)
		pe.lastUse.Store(now)
	}
	c.mu.Unlock()
	return pe
}

// evictPlansLocked drops least-recently-used plans until the plan cache
// fits the shared bound. Plans are immutable, so a goroutine holding an
// evicted plan keeps executing it safely.
func (c *Compiler) evictPlansLocked() {
	for len(c.plans) > c.maxEntries {
		var oldestKey string
		oldest := int64(1<<63 - 1)
		for k, pe := range c.plans {
			if u := pe.lastUse.Load(); u < oldest {
				oldest, oldestKey = u, k
			}
		}
		delete(c.plans, oldestKey)
	}
}

// ShortKey abbreviates a cache fingerprint for use as a label or span
// attribute (12 hex chars ~ 48 bits, ample for a bounded cache).
func ShortKey(key string) string {
	if len(key) > 12 {
		return key[:12]
	}
	return key
}

// Fingerprint returns the cache key Compile would use for text under the
// current definitions: a digest of the text plus exactly the referenced
// definitions. Unparseable text digests with no definitions.
func (c *Compiler) Fingerprint(text string) string {
	return c.FingerprintAt(text, passes.LevelPaper)
}

// FingerprintAt is Fingerprint at an explicit optimisation level: the
// Paper key is the bare digest; other levels carry their cache tag.
func (c *Compiler) FingerprintAt(text string, lvl passes.Level) string {
	defs := c.snapshot()
	p, err := expr.Parse(text)
	if err != nil {
		return levelKey(Digest(text, nil), lvl)
	}
	return levelKey(Digest(text, referencedDefs(p, defs)), lvl)
}

// lookup returns the entry for key, creating (and bounding the cache) as
// needed, and reports whether the entry already existed. The fast path
// is a read-locked map hit.
func (c *Compiler) lookup(key string) (*entry, bool) {
	now := c.clock.Add(1)
	c.mu.RLock()
	e := c.entries[key]
	c.mu.RUnlock()
	if e != nil {
		c.hits.Add(1)
		e.lastUse.Store(now)
		return e, true
	}
	hit := false
	c.mu.Lock()
	if e = c.entries[key]; e == nil {
		c.misses.Add(1)
		e = &entry{}
		e.lastUse.Store(now)
		c.entries[key] = e
		c.evictLocked()
	} else {
		hit = true
		c.hits.Add(1)
		e.lastUse.Store(now)
	}
	c.mu.Unlock()
	return e, hit
}

// evictLocked drops least-recently-used entries until the cache fits.
// Goroutines already holding an evicted entry still complete normally —
// the result simply isn't cached anymore.
func (c *Compiler) evictLocked() {
	for len(c.entries) > c.maxEntries {
		var oldestKey string
		oldest := int64(1<<63 - 1)
		for k, e := range c.entries {
			if u := e.lastUse.Load(); u < oldest {
				oldest, oldestKey = u, k
			}
		}
		delete(c.entries, oldestKey)
	}
}

// Stats is a snapshot of the compiler's counters.
type Stats struct {
	// Compiles is how many networks were actually built.
	Compiles int64
	// Hits and Misses count cache lookups.
	Hits, Misses int64
	// Inflight is the number of builds running right now (singleflight
	// leaders mid-compile).
	Inflight int64
	// Entries is the current number of cached networks.
	Entries int
	// Definitions is the current number of named definitions.
	Definitions int
	// PlanBuilds is how many execution plans were actually constructed.
	PlanBuilds int64
	// PlanHits and PlanMisses count plan-cache lookups.
	PlanHits, PlanMisses int64
	// PlanEntries is the current number of cached plans.
	PlanEntries int
	// MergeBuilds is how many batch super-networks were actually merged.
	MergeBuilds int64
	// MergeHits and MergeMisses count merge-cache lookups.
	MergeHits, MergeMisses int64
	// MergeEntries is the current number of cached merged networks.
	MergeEntries int
}

// Stats returns a consistent snapshot of the counters.
func (c *Compiler) Stats() Stats {
	c.mu.RLock()
	entries, ndefs, plans, merges := len(c.entries), len(c.defs), len(c.plans), len(c.merges)
	c.mu.RUnlock()
	return Stats{
		Compiles:     c.compiles.Load(),
		Hits:         c.hits.Load(),
		Misses:       c.misses.Load(),
		Inflight:     c.inflight.Load(),
		Entries:      entries,
		Definitions:  ndefs,
		PlanBuilds:   c.planBuilds.Load(),
		PlanHits:     c.planHits.Load(),
		PlanMisses:   c.planMisses.Load(),
		PlanEntries:  plans,
		MergeBuilds:  c.mergeBuilds.Load(),
		MergeHits:    c.mergeHits.Load(),
		MergeMisses:  c.mergeMisses.Load(),
		MergeEntries: merges,
	}
}

// Digest computes the cache fingerprint for expression text against a
// definition set. The encoding is injective — every component is length-
// prefixed, definitions are sorted by name — so two different (text,
// defs) pairs never encode identically; SHA-256 then makes key collisions
// cryptographically negligible.
func Digest(text string, defs map[string]string) string {
	h := sha256.New()
	var lenBuf [8]byte
	put := func(s string) {
		binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(s)))
		h.Write(lenBuf[:])
		h.Write([]byte(s))
	}
	put(text)
	names := make([]string, 0, len(defs))
	for name := range defs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		put(name)
		put(defs[name])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// referencedDefs returns the subset of defs the program transitively
// references, mirroring the network builder's name resolution: a
// reference resolves to a definition only if it was not assigned earlier
// in its own scope, and each definition body is scanned in its own local
// scope. Definition bodies that fail to parse contribute nothing (the
// compile will report the error); reference cycles terminate the walk
// (the builder rejects them).
func referencedDefs(p *expr.Program, defs map[string]string) map[string]string {
	if len(defs) == 0 {
		return nil
	}
	used := make(map[string]string)
	visiting := make(map[string]bool)
	var scanProgram func(prog *expr.Program)
	var scanNode func(n expr.Node, locals map[string]bool)

	scanNode = func(n expr.Node, locals map[string]bool) {
		switch t := n.(type) {
		case *expr.Ref:
			if locals[t.Name] {
				return
			}
			text, ok := defs[t.Name]
			if !ok {
				return
			}
			if _, done := used[t.Name]; done || visiting[t.Name] {
				return
			}
			used[t.Name] = text
			visiting[t.Name] = true
			if dp, err := expr.Parse(text); err == nil {
				scanProgram(dp)
			}
			delete(visiting, t.Name)
		case *expr.Unary:
			scanNode(t.X, locals)
		case *expr.Binary:
			scanNode(t.L, locals)
			scanNode(t.R, locals)
		case *expr.Index:
			scanNode(t.Base, locals)
		case *expr.If:
			scanNode(t.Cond, locals)
			scanNode(t.Then, locals)
			scanNode(t.Else, locals)
		case *expr.Call:
			for _, a := range t.Args {
				scanNode(a, locals)
			}
		}
	}
	scanProgram = func(prog *expr.Program) {
		locals := make(map[string]bool)
		for _, s := range prog.Stmts {
			scanNode(s.X, locals)
			if s.Name != "" {
				locals[s.Name] = true
			}
		}
	}
	scanProgram(p)
	if len(used) == 0 {
		return nil
	}
	return used
}
