package compile

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"dfg/internal/obs"
	"dfg/internal/passes"
)

// This file is the compile layer's batch front door: it fingerprints a
// set of already-compiled member networks, merges them into one
// multi-root super-network (passes.MergeNetworks) with cross-expression
// CSE, and caches the merged result under the batch fingerprint with
// the same singleflight + LRU discipline as the single-expression
// caches. Batch plans then flow through the ordinary plan cache via
// PlanNetTraced, keyed PlanKey(batch fingerprint, strategy, device
// class), so a recurring batch shape pays merge and plan costs once.

// BatchFingerprint returns the cache fingerprint of a batch: a digest
// over the sorted, de-duplicated member fingerprints. Member order and
// multiplicity do not matter — the same expression set always merges to
// the same super-network. The "batch:" prefix keeps batch keys disjoint
// from single-expression keys (which are hex, optionally "-tag"ged).
// Optimisation level needs no extra tagging: member fingerprints
// already carry their level's cache tag.
func BatchFingerprint(fps []string) string {
	sorted := append([]string(nil), fps...)
	sort.Strings(sorted)
	h := sha256.New()
	var lenBuf [8]byte
	prev := ""
	for i, fp := range sorted {
		if i > 0 && fp == prev {
			continue
		}
		prev = fp
		binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(fp)))
		h.Write(lenBuf[:])
		h.Write([]byte(fp))
	}
	return "batch:" + hex.EncodeToString(h.Sum(nil))
}

// mergeEntry is one merged-network cache slot, with the same
// singleflight shape as entry/planEntry.
type mergeEntry struct {
	once    sync.Once
	done    atomic.Bool
	merged  *passes.Merged
	err     error
	lastUse atomic.Int64
}

// MergeTraced returns the merged super-network for a set of compiled
// members, merging on first use. Members must already be sealed
// networks from this compiler (Fp is their CompileTracedAt
// fingerprint). Returns the merged result, the batch fingerprint, and
// any merge error. The "merge" child span annotates its cache outcome
// and member count like the network cache does.
func (c *Compiler) MergeTraced(members []passes.MergeMember, lvl passes.Level, parent *obs.Span) (*passes.Merged, string, error) {
	if len(members) == 0 {
		return nil, "", fmt.Errorf("compile: merge needs at least one member")
	}
	fps := make([]string, len(members))
	for i, m := range members {
		fps[i] = m.Fp
	}
	bfp := BatchFingerprint(fps)

	ms := parent.Child("merge")
	defer ms.Finish()
	if ms != nil {
		ms.SetAttr("fingerprint", ShortKey(bfp))
		ms.SetAttr("members", strconv.Itoa(len(members)))
	}

	me := c.mergeLookup(bfp)
	wasDone := me.done.Load()
	ran := false
	me.once.Do(func() {
		ran = true
		c.mergeBuilds.Add(1)
		me.merged, me.err = passes.MergeNetworks(members, lvl, passes.RunOptions{Parent: ms})
		me.done.Store(true)
	})
	switch {
	case ran:
		ms.SetAttr("outcome", "miss")
	case wasDone:
		ms.SetAttr("outcome", "hit")
	default:
		ms.SetAttr("outcome", "singleflight-wait")
	}
	if me.merged != nil && ms != nil {
		ms.SetAttr("shared", strconv.Itoa(me.merged.Shared))
	}
	return me.merged, bfp, me.err
}

// mergeLookup returns the merge entry for key, creating (and bounding
// the merge cache) as needed.
func (c *Compiler) mergeLookup(key string) *mergeEntry {
	now := c.clock.Add(1)
	c.mu.RLock()
	me := c.merges[key]
	c.mu.RUnlock()
	if me != nil {
		c.mergeHits.Add(1)
		me.lastUse.Store(now)
		return me
	}
	c.mu.Lock()
	if me = c.merges[key]; me == nil {
		c.mergeMisses.Add(1)
		me = &mergeEntry{}
		me.lastUse.Store(now)
		c.merges[key] = me
		c.evictMergesLocked()
	} else {
		c.mergeHits.Add(1)
		me.lastUse.Store(now)
	}
	c.mu.Unlock()
	return me
}

// evictMergesLocked drops least-recently-used merged networks until the
// merge cache fits the shared bound. Merged networks are sealed and
// immutable, so holders of an evicted entry keep executing it safely.
func (c *Compiler) evictMergesLocked() {
	for len(c.merges) > c.maxEntries {
		var oldestKey string
		oldest := int64(1<<63 - 1)
		for k, me := range c.merges {
			if u := me.lastUse.Load(); u < oldest {
				oldest, oldestKey = u, k
			}
		}
		delete(c.merges, oldestKey)
	}
}
