package compile

import (
	"testing"

	"dfg/internal/obs"
	"dfg/internal/passes"
)

// TestLevelKeysDistinct pins the cache-key contract: the Paper-level
// key is the bare digest (so every pre-pipeline fingerprint equality
// holds unchanged) while the O2 key carries a non-hex tag, so the two
// levels' networks and plans never collide in the shared caches.
func TestLevelKeysDistinct(t *testing.T) {
	c := NewCompiler()
	const text = "r = u*u + v*v"
	paper := c.FingerprintAt(text, passes.LevelPaper)
	o2 := c.FingerprintAt(text, passes.LevelO2)
	if paper == o2 {
		t.Fatalf("levels share fingerprint %q", paper)
	}
	if got := c.Fingerprint(text); got != paper {
		t.Fatalf("Fingerprint = %q, want the Paper-level key %q", got, paper)
	}

	pnet, err := c.CompileAt(text, passes.LevelPaper)
	if err != nil {
		t.Fatal(err)
	}
	onet, err := c.CompileAt(text, passes.LevelO2)
	if err != nil {
		t.Fatal(err)
	}
	if pnet == onet {
		t.Fatal("both levels returned the same cached network")
	}
	if st := c.Stats(); st.Entries != 2 {
		t.Fatalf("cache holds %d entries, want 2 (one per level)", st.Entries)
	}
}

// TestPassStatsAccumulate checks the per-pass aggregates behind the
// dfg_pass_* metrics: every pipeline pass that ran is recorded with its
// run count, removed-node total and time.
func TestPassStatsAccumulate(t *testing.T) {
	c := NewCompiler()
	if _, err := c.CompileAt("r = 1 + 1 + u*v + v*u", passes.LevelO2); err != nil {
		t.Fatal(err)
	}
	byName := map[string]PassStat{}
	for _, st := range c.PassStats() {
		byName[st.Name] = st
	}
	for _, name := range passes.Names() {
		st, ok := byName[name]
		if !ok {
			t.Errorf("no aggregate for pass %q", name)
			continue
		}
		if st.Runs != 1 {
			t.Errorf("%s: %d runs, want 1", name, st.Runs)
		}
		if st.Seconds <= 0 {
			t.Errorf("%s: no time accumulated", name)
		}
	}
	if byName["constpool"].NodesRemoved == 0 {
		t.Error("constpool removed no nodes on a duplicate-constant program")
	}
	if got := c.PassStat("nonesuch"); got.Runs != 0 || got.Name != "nonesuch" {
		t.Errorf("unknown pass stat = %+v", got)
	}
}

// TestPassSpans checks the tracing contract: a cache-miss compile hangs
// one "pass:<name>" child span per pipeline pass under the compile
// span's "build" stage, and a cache hit (which runs no passes) does
// not.
func TestPassSpans(t *testing.T) {
	c := NewCompiler()
	tr := obs.NewTracer(obs.DefaultKeep)

	root := tr.Start("eval")
	if _, _, err := c.CompileTracedAt("r = u*v + v*u", passes.LevelO2, root); err != nil {
		t.Fatal(err)
	}
	root.Finish()
	build := root.Find("build")
	if build == nil {
		t.Fatal("no build span under the compile span")
	}
	for _, name := range passes.Names() {
		sp := build.Find("pass:" + name)
		if sp == nil {
			t.Errorf("no pass:%s span under build", name)
			continue
		}
		if sp.Duration() <= 0 {
			t.Errorf("pass:%s span has no duration", name)
		}
	}

	hit := tr.Start("eval")
	if _, _, err := c.CompileTracedAt("r = u*v + v*u", passes.LevelO2, hit); err != nil {
		t.Fatal(err)
	}
	hit.Finish()
	cs := hit.Find("cache")
	if cs == nil || cs.Attr("outcome") != "hit" {
		t.Fatalf("second compile was not a cache hit: %+v", cs)
	}
	if sp := hit.Find("pass:cse"); sp != nil {
		t.Error("cache hit still produced pass spans")
	}
}
