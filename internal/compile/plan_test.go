package compile

import (
	"sync"
	"testing"

	"dfg/internal/ocl"
	"dfg/internal/strategy"
)

func cpuDev() *ocl.Device { return ocl.NewDevice(ocl.XeonX5660Spec(64)) }

// TestPlanCacheSharesPlans: the same (text, strategy, device class)
// resolves to the same plan pointer, a different strategy or device
// class to a different one, and the counters record it all.
func TestPlanCacheSharesPlans(t *testing.T) {
	c := NewCompiler()
	fusion, _ := strategy.ForName("fusion")
	staged, _ := strategy.ForName("staged")
	dev := cpuDev()

	p1, fp1, err := c.Plan("m = u + v", fusion, dev)
	if err != nil {
		t.Fatal(err)
	}
	p2, fp2, err := c.Plan("m = u + v", fusion, cpuDev()) // same class, other device
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("same (text, strategy, device class) produced different plans")
	}
	if fp1 != fp2 {
		t.Fatal("fingerprints diverged for identical text")
	}

	p3, _, err := c.Plan("m = u + v", staged, dev)
	if err != nil {
		t.Fatal(err)
	}
	if p3 == p1 {
		t.Fatal("different strategies shared one plan")
	}
	gpu := ocl.NewDevice(ocl.TeslaM2050Spec(64))
	p4, _, err := c.Plan("m = u + v", fusion, gpu)
	if err != nil {
		t.Fatal(err)
	}
	if p4 == p1 {
		t.Fatal("different device classes shared one plan")
	}

	st := c.Stats()
	if st.PlanBuilds != 3 {
		t.Fatalf("PlanBuilds = %d, want 3", st.PlanBuilds)
	}
	if st.PlanEntries != 3 {
		t.Fatalf("PlanEntries = %d, want 3", st.PlanEntries)
	}
	if st.PlanHits != 1 || st.PlanMisses != 3 {
		t.Fatalf("plan hits/misses = %d/%d, want 1/3", st.PlanHits, st.PlanMisses)
	}
}

// TestPlanCacheSingleflight: concurrent requests for the same key build
// the plan exactly once.
func TestPlanCacheSingleflight(t *testing.T) {
	c := NewCompiler()
	fusion, _ := strategy.ForName("fusion")
	const workers = 8
	plans := make([]strategy.Plan, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			plans[i], _, errs[i] = c.Plan("q = sqrt(u*u + v*v)", fusion, cpuDev())
		}(i)
	}
	wg.Wait()
	for i := 0; i < workers; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if plans[i] != plans[0] {
			t.Fatal("concurrent requests received different plans")
		}
	}
	if st := c.Stats(); st.PlanBuilds != 1 {
		t.Fatalf("PlanBuilds = %d, want 1", st.PlanBuilds)
	}
}

// TestPlanCacheRedefineInvalidates: redefining a referenced name moves
// the fingerprint, so the next Plan call builds a fresh plan against
// the new definition; unrelated entries stay cached.
func TestPlanCacheRedefineInvalidates(t *testing.T) {
	c := NewCompiler()
	fusion, _ := strategy.ForName("fusion")
	dev := cpuDev()
	if err := c.Define("speed", "sqrt(u*u + v*v)"); err != nil {
		t.Fatal(err)
	}
	p1, fp1, err := c.Plan("m = speed", fusion, dev)
	if err != nil {
		t.Fatal(err)
	}
	other, _, err := c.Plan("m = u * v", fusion, dev)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Define("speed", "u + v"); err != nil {
		t.Fatal(err)
	}
	p2, fp2, err := c.Plan("m = speed", fusion, dev)
	if err != nil {
		t.Fatal(err)
	}
	if fp1 == fp2 {
		t.Fatal("redefinition did not change the fingerprint")
	}
	if p1 == p2 {
		t.Fatal("redefinition did not invalidate the plan")
	}
	again, _, err := c.Plan("m = u * v", fusion, dev)
	if err != nil {
		t.Fatal(err)
	}
	if again != other {
		t.Fatal("unrelated plan was invalidated by the redefinition")
	}
}

// TestPlanCacheEviction: the plan cache honors the shared entry bound.
func TestPlanCacheEviction(t *testing.T) {
	c := NewCompiler()
	c.SetMaxEntries(2)
	fusion, _ := strategy.ForName("fusion")
	dev := cpuDev()
	exprs := []string{"a = u + v", "b = u - v", "c = u * v"}
	for _, e := range exprs {
		if _, _, err := c.Plan(e, fusion, dev); err != nil {
			t.Fatal(err)
		}
	}
	if st := c.Stats(); st.PlanEntries > 2 {
		t.Fatalf("PlanEntries = %d exceeds bound 2", st.PlanEntries)
	}
}
