package compile

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestCompileCachesRepeatedExpressions(t *testing.T) {
	c := NewCompiler()
	const text = "v = sqrt(u*u + w*w)"
	n1, err := c.Compile(text)
	if err != nil {
		t.Fatal(err)
	}
	n2, err := c.Compile(text)
	if err != nil {
		t.Fatal(err)
	}
	if n1 != n2 {
		t.Fatal("repeat compile must return the cached network")
	}
	if !n1.Sealed() {
		t.Fatal("cached networks must be sealed")
	}
	st := c.Stats()
	if st.Compiles != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want exactly one compile and one entry", st)
	}
}

// TestRedefinitionInvalidatesExactlyAffectedEntries is the cache-
// correctness core: redefining a name forces recompilation of exactly
// the expressions that (transitively) reference it.
func TestRedefinitionInvalidatesExactlyAffectedEntries(t *testing.T) {
	c := NewCompiler()
	if err := c.Define("d1", "u * 2"); err != nil {
		t.Fatal(err)
	}
	if err := c.Define("d2", "d1 + 1"); err != nil { // chains to d1
		t.Fatal(err)
	}
	if err := c.Define("d3", "w - 1"); err != nil {
		t.Fatal(err)
	}
	exprs := []string{
		"a = d1",     // directly references d1
		"b = d2",     // references d1 through d2
		"c = d3",     // unrelated definition
		"e = u + w",  // no definitions at all
		"d1 = u\nd1", // shadows d1 with a local assignment: not a reference
	}
	for _, text := range exprs {
		if _, err := c.Compile(text); err != nil {
			t.Fatalf("%q: %v", text, err)
		}
	}
	base := c.Stats().Compiles
	if base != int64(len(exprs)) {
		t.Fatalf("expected %d initial compiles, got %d", len(exprs), base)
	}

	if err := c.Define("d1", "u * 3"); err != nil {
		t.Fatal(err)
	}
	for _, text := range exprs {
		if _, err := c.Compile(text); err != nil {
			t.Fatalf("%q after redefine: %v", text, err)
		}
	}
	// Exactly the two d1-dependent expressions recompile; the unrelated
	// ones (including the shadowed-name program) hit the cache.
	if got := c.Stats().Compiles; got != base+2 {
		t.Fatalf("redefinition caused %d recompiles, want exactly 2", got-base)
	}

	// And the recompiled network reflects the new definition.
	net, err := c.Compile("a = d1")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range net.Nodes() {
		if n.Filter == "const" && n.Value == 3 {
			found = true
		}
	}
	if !found {
		t.Fatal("recompiled network still uses the old definition body")
	}
}

// TestCompileSingleflight: many goroutines racing on a cold key share
// one compilation.
func TestCompileSingleflight(t *testing.T) {
	c := NewCompiler()
	// A deliberately chunky expression so the compile has real width.
	var sb strings.Builder
	sb.WriteString("acc = u")
	for i := 0; i < 40; i++ {
		fmt.Fprintf(&sb, "\nacc = sqrt(acc*acc + %d.0) + v*%d", i, i)
	}
	text := sb.String()

	const goroutines = 32
	start := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if _, err := c.Compile(text); err != nil {
				t.Error(err)
			}
		}()
	}
	close(start)
	wg.Wait()
	if got := c.Stats().Compiles; got != 1 {
		t.Fatalf("%d goroutines caused %d compiles, want 1", goroutines, got)
	}
}

func TestCompileErrorsAreCachedPerFingerprint(t *testing.T) {
	c := NewCompiler()
	if err := c.Define("d1", "d2 + 1"); err != nil {
		t.Fatal(err)
	}
	if err := c.Define("d2", "d1 + 1"); err != nil {
		t.Fatal(err)
	}
	_, err1 := c.Compile("r = d1") // recursive definitions: rejected
	if err1 == nil {
		t.Fatal("recursive definitions must fail to compile")
	}
	_, err2 := c.Compile("r = d1")
	if err2 == nil || c.Stats().Compiles != 1 {
		t.Fatalf("failed compile must be cached too (compiles=%d)", c.Stats().Compiles)
	}
	// Breaking the cycle changes the fingerprint and recovers.
	if err := c.Define("d2", "u"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Compile("r = d1"); err != nil {
		t.Fatalf("after breaking the cycle: %v", err)
	}
}

func TestParseErrorsAreNotCached(t *testing.T) {
	c := NewCompiler()
	if _, err := c.Compile("= = ="); err == nil {
		t.Fatal("garbage must fail")
	}
	if st := c.Stats(); st.Entries != 0 || st.Compiles != 0 {
		t.Fatalf("parse failures must not occupy cache slots: %+v", st)
	}
}

func TestDefineValidates(t *testing.T) {
	c := NewCompiler()
	if err := c.Define("", "u"); err == nil {
		t.Error("empty definition name must fail")
	}
	if err := c.Define("bad", "$"); err == nil {
		t.Error("unparseable definition must fail")
	}
	if got := c.Definitions(); len(got) != 0 {
		t.Errorf("failed defines must not register: %v", got)
	}
}

func TestEvictionBoundsCache(t *testing.T) {
	c := NewCompiler()
	c.SetMaxEntries(2)
	for i := 0; i < 8; i++ {
		if _, err := c.Compile(fmt.Sprintf("r = u + %d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if st := c.Stats(); st.Entries > 2 {
		t.Fatalf("cache exceeded bound: %+v", st)
	}
	// Most-recently-used entry survives eviction.
	before := c.Stats().Compiles
	if _, err := c.Compile("r = u + 7"); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().Compiles; got != before {
		t.Fatal("most recent entry should have survived eviction")
	}
}

func TestFingerprintRelevance(t *testing.T) {
	c := NewCompiler()
	if err := c.Define("rel", "u * 2"); err != nil {
		t.Fatal(err)
	}
	if err := c.Define("other", "w * 2"); err != nil {
		t.Fatal(err)
	}
	text := "r = rel + 1"
	fp := c.Fingerprint(text)
	if err := c.Define("other", "w * 9"); err != nil {
		t.Fatal(err)
	}
	if c.Fingerprint(text) != fp {
		t.Fatal("redefining an unreferenced name must not change the fingerprint")
	}
	if err := c.Define("rel", "u * 5"); err != nil {
		t.Fatal(err)
	}
	if c.Fingerprint(text) == fp {
		t.Fatal("redefining a referenced name must change the fingerprint")
	}
}
