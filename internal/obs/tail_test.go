package obs

import (
	"strings"
	"testing"
	"time"
)

// TestTraceIDs: every root gets a unique ID, and ByID resolves it from
// the recent ring.
func TestTraceIDs(t *testing.T) {
	tr := NewTracer(8)
	a := tr.Start("request")
	b := tr.Start("request")
	if a.ID() == "" || b.ID() == "" || a.ID() == b.ID() {
		t.Fatalf("trace ids: %q vs %q", a.ID(), b.ID())
	}
	a.Finish()
	b.Finish()
	if got := tr.ByID(a.ID()); got != a {
		t.Fatalf("ByID(%q) = %v, want the finished root", a.ID(), got)
	}
	if tr.ByID("no-such-id") != nil {
		t.Fatal("ByID on unknown id must return nil")
	}
	var nilSpan *Span
	if nilSpan.ID() != "" {
		t.Fatal("nil span ID must be empty")
	}
	var nilTr *Tracer
	if nilTr.ByID("x") != nil || nilTr.Retained(0) != nil {
		t.Fatal("nil tracer tail accessors must be no-ops")
	}
	nilTr.SetTail(5) // must not panic
}

// TestTailRetainsInteresting: with duration-based retention disabled
// (negative pct), errored and rerouted roots are still retained while
// healthy ones age out of the retained ring entirely.
func TestTailRetainsInteresting(t *testing.T) {
	tr := NewTracer(8)
	tr.SetTail(-1)

	ok := tr.Start("request")
	ok.Finish()
	bad := tr.Start("request")
	bad.SetAttr("error", "boom")
	bad.Finish()
	moved := tr.Start("request")
	moved.SetAttr("rerouted", "2")
	moved.Finish()

	kept := tr.Retained(0)
	if len(kept) != 2 {
		t.Fatalf("retained %d traces, want 2 (error + rerouted)", len(kept))
	}
	for _, sp := range kept {
		if sp == ok {
			t.Fatal("healthy trace retained under negative tail percent")
		}
	}
	if tr.ByID(bad.ID()) != bad {
		t.Fatal("errored trace not resolvable by ID")
	}
}

// TestTailRetainsSlowest: with a percentage configured, a root far above
// the running duration distribution is retained once the estimator has
// enough samples; the fast majority is not.
func TestTailRetainsSlowest(t *testing.T) {
	tr := NewTracer(64)
	tr.SetTail(5)
	// Feed the estimator past tailMinSamples with fast requests.
	for i := 0; i < tailMinSamples+8; i++ {
		sp := tr.Start("request")
		sp.Finish() // ~0 duration
	}
	fastRetained := len(tr.Retained(0))

	slow := tr.Start("request")
	slow.Start = time.Now().Add(-time.Second) // backdate: 1s duration
	slow.Finish()

	kept := tr.Retained(0)
	if len(kept) != fastRetained+1 {
		t.Fatalf("retained %d traces after slow root, want %d", len(kept), fastRetained+1)
	}
	if got := tr.ByID(slow.ID()); got != slow {
		t.Fatal("slow root not retained / resolvable by ID")
	}
}

// TestExemplars: ObserveEx tracks both the most recent and the slowest
// observation, and the registry lists them per series.
func TestExemplars(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("dfg_eval_seconds", "Evaluation latency.", Labels{"strategy": "vm"})
	h.ObserveEx(5*time.Millisecond, "t-1")
	h.ObserveEx(10*time.Millisecond, "t-2")
	h.ObserveEx(time.Millisecond, "t-3")

	if last := h.LastExemplar(); last == nil || last.TraceID != "t-3" {
		t.Fatalf("LastExemplar = %+v, want t-3", last)
	}
	if max := h.MaxExemplar(); max == nil || max.TraceID != "t-2" {
		t.Fatalf("MaxExemplar = %+v, want t-2", max)
	}
	if h.Count() != 3 {
		t.Fatalf("ObserveEx must still observe: count = %d", h.Count())
	}

	ex := r.Exemplars()
	if len(ex) != 1 {
		t.Fatalf("Exemplars listed %d series, want 1", len(ex))
	}
	if ex[0].Name != "dfg_eval_seconds" || !strings.Contains(ex[0].Labels, `strategy="vm"`) {
		t.Fatalf("series identity: %+v", ex[0])
	}
	if ex[0].Last.TraceID != "t-3" || ex[0].Slowest.TraceID != "t-2" {
		t.Fatalf("series exemplars: %+v", ex[0])
	}

	// Empty trace IDs observe without storing an exemplar.
	h2 := r.Histogram("dfg_other_seconds", "Other.", nil)
	h2.ObserveEx(time.Millisecond, "")
	for _, s := range r.Exemplars() {
		if s.Name == "dfg_other_seconds" {
			t.Fatal("empty trace id must not create an exemplar")
		}
	}
}

// TestRuntimeMetrics: the self-metrics register and expose plausible
// values through the Prometheus text writer.
func TestRuntimeMetrics(t *testing.T) {
	r := NewRegistry()
	RegisterRuntimeMetrics(r)
	var b strings.Builder
	if err := WritePrometheus(&b, r); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, name := range []string{"go_goroutines", "go_heap_inuse_bytes", "go_gc_pause_seconds_total", "go_gc_runs_total"} {
		if !strings.Contains(out, name) {
			t.Fatalf("exposition missing %s:\n%s", name, out)
		}
	}
	if strings.Contains(out, "go_goroutines 0") {
		t.Fatal("go_goroutines reported 0")
	}
}
