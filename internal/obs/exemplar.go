package obs

import (
	"sync/atomic"
	"time"
)

// Exemplar links one concrete observation to its retained trace — the
// Prometheus exemplar idea, carried out-of-band: the 0.0.4 text format
// has no exemplar syntax, so the serve layer exposes these on a
// dedicated /exemplars endpoint instead of inline in /metrics, keyed by
// the same family name and label signature.
type Exemplar struct {
	TraceID string `json:"trace_id"`
	DurNS   int64  `json:"dur_ns"`
	UnixNS  int64  `json:"t"`
}

// ObserveEx records one duration and, when traceID is non-empty,
// remembers it as the histogram's most recent exemplar (and as the
// slowest, if it is). The exemplar stores are single atomic pointer
// swaps, so the hot path stays allocation-light and lock-free.
func (h *Histogram) ObserveEx(d time.Duration, traceID string) {
	h.Observe(d)
	if h == nil || traceID == "" {
		return
	}
	e := &Exemplar{TraceID: traceID, DurNS: int64(d), UnixNS: time.Now().UnixNano()}
	h.exLast.Store(e)
	for {
		cur := h.exMax.Load()
		if cur != nil && cur.DurNS >= e.DurNS {
			return
		}
		if h.exMax.CompareAndSwap(cur, e) {
			return
		}
	}
}

// LastExemplar returns the most recent exemplar (nil if none yet).
func (h *Histogram) LastExemplar() *Exemplar {
	if h == nil {
		return nil
	}
	return h.exLast.Load()
}

// MaxExemplar returns the slowest exemplar seen (nil if none yet).
func (h *Histogram) MaxExemplar() *Exemplar {
	if h == nil {
		return nil
	}
	return h.exMax.Load()
}

// SeriesExemplars is one histogram series' exemplar pair, identified
// the same way /metrics identifies the series.
type SeriesExemplars struct {
	Name    string    `json:"name"`
	Labels  string    `json:"labels,omitempty"` // rendered {k="v",...} signature
	Last    *Exemplar `json:"last,omitempty"`
	Slowest *Exemplar `json:"slowest,omitempty"`
}

// Exemplars lists every histogram series that currently has an
// exemplar, in registration order — the /exemplars endpoint's payload.
func (r *Registry) Exemplars() []SeriesExemplars {
	if r == nil {
		return nil
	}
	type histRef struct {
		name, labels string
		hist         *Histogram
	}
	var hists []histRef
	r.mu.Lock()
	for _, name := range r.order {
		f := r.families[name]
		if f.kind != kindHistogram {
			continue
		}
		for _, sig := range f.order {
			hists = append(hists, histRef{name: name, labels: sig, hist: f.series[sig].hist})
		}
	}
	r.mu.Unlock()
	var out []SeriesExemplars
	for _, h := range hists {
		last, max := h.hist.LastExemplar(), h.hist.MaxExemplar()
		if last == nil && max == nil {
			continue
		}
		out = append(out, SeriesExemplars{Name: h.name, Labels: h.labels, Last: last, Slowest: max})
	}
	return out
}

// exStore is the pair of atomic exemplar slots embedded in Histogram.
type exStore struct {
	exLast atomic.Pointer[Exemplar]
	exMax  atomic.Pointer[Exemplar]
}
