package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Labels names a metric series within its family. Label sets should be
// low-cardinality: the registry keeps one series alive per distinct set.
type Labels map[string]string

// Counter is a monotonically increasing int64. The nil *Counter is a
// valid no-op.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds delta (negative deltas are ignored: counters are monotone).
func (c *Counter) Add(delta int64) {
	if c == nil || delta < 0 {
		return
	}
	c.v.Add(delta)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable int64. The nil *Gauge is a valid no-op.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the value by delta (either sign).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a log-bucketed latency histogram: bucket i counts
// observations <= 1µs * 2^i, covering 1µs..~64s in 27 buckets plus an
// overflow bucket. Observation is a couple of atomic adds; quantiles are
// estimated by linear interpolation within the selected bucket (the
// standard Prometheus-style estimate, good to one bucket width).
// The nil *Histogram is a valid no-op.
type Histogram struct {
	buckets [histBuckets + 1]atomic.Int64 // last slot is +Inf
	count   atomic.Int64
	sumNS   atomic.Int64
	maxNS   atomic.Int64 // largest single observation, for overflow-bucket quantiles
	exStore              // last/slowest exemplars (see ObserveEx)
}

const (
	histBuckets = 27
	histBaseNS  = int64(time.Microsecond)
)

// histBound returns the upper bound (inclusive) of bucket i in
// nanoseconds; the final slot is unbounded.
func histBound(i int) int64 { return histBaseNS << uint(i) }

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.buckets[bucketFor(ns)].Add(1)
	h.count.Add(1)
	h.sumNS.Add(ns)
	for {
		max := h.maxNS.Load()
		if ns <= max || h.maxNS.CompareAndSwap(max, ns) {
			break
		}
	}
}

// bucketFor maps a duration in ns to its bucket index.
func bucketFor(ns int64) int {
	for i := 0; i < histBuckets; i++ {
		if ns <= histBound(i) {
			return i
		}
	}
	return histBuckets
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total observed time.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sumNS.Load())
}

// Quantile estimates the q-quantile (0 < q <= 1), e.g. 0.5, 0.9, 0.99.
// Returns 0 with no observations. Quantiles that land in the overflow
// bucket (observations above ~67s, the top bounded bucket) return the
// largest single observation seen, so tail estimates saturate at the
// true maximum rather than the bucket's lower bound.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 || math.IsNaN(q) {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum int64
	for i := 0; i <= histBuckets; i++ {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		if float64(cum+n) >= rank {
			lo := int64(0)
			if i > 0 {
				lo = histBound(i - 1)
			}
			hi := histBound(i)
			if i == histBuckets {
				// Overflow bucket: no upper bound to interpolate
				// against, so report the largest value actually seen
				// (always >= lo when this bucket is non-empty).
				return time.Duration(h.maxNS.Load())
			}
			frac := (rank - float64(cum)) / float64(n)
			return time.Duration(float64(lo) + frac*float64(hi-lo))
		}
		cum += n
	}
	return time.Duration(histBound(histBuckets - 1))
}

// snapshotBuckets returns cumulative bucket counts (Prometheus "le"
// semantics) plus count and sum. Reads are atomic per bucket — the
// snapshot is consistent enough for exposition (scrapes race with
// observations by design).
func (h *Histogram) snapshotBuckets() (cum []int64, count int64, sumNS int64) {
	cum = make([]int64, histBuckets+1)
	var c int64
	for i := 0; i <= histBuckets; i++ {
		c += h.buckets[i].Load()
		cum[i] = c
	}
	return cum, h.count.Load(), h.sumNS.Load()
}

// metricKind discriminates the series types a family can hold.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
)

func (k metricKind) promType() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// series is one (name, labels) instance.
type series struct {
	labels string // rendered {k="v",...} signature, possibly ""
	ctr    *Counter
	gauge  *Gauge
	hist   *Histogram
	fn     func() float64
}

// family groups all series of one metric name.
type family struct {
	name   string
	help   string
	kind   metricKind
	series map[string]*series
	order  []string // label signatures in creation order
}

// Registry holds metric families and hands out series, memoized by
// (name, labels): asking twice returns the same instance, so callers may
// resolve series on the hot path or cache them, whichever is cheaper.
// All methods are safe for concurrent use. The nil *Registry is a valid
// no-op: every constructor returns the nil series of the right type.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string // family names in creation order
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// labelSignature renders labels sorted by key: `{a="x",b="y"}` or "".
func labelSignature(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

// lookup finds or creates the series for (name, labels) of a kind.
// Registering the same name with a different kind panics: that is a
// programming error, not a runtime condition.
func (r *Registry) lookup(name, help string, kind metricKind, labels Labels) *series {
	sig := labelSignature(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lookupLocked(name, help, kind, sig)
}

// lookupLocked is lookup with r.mu already held.
func (r *Registry) lookupLocked(name, help string, kind metricKind, sig string) *series {
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
		r.families[name] = f
		r.order = append(r.order, name)
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)",
			name, kind.promType(), f.kind.promType()))
	}
	s := f.series[sig]
	if s == nil {
		s = &series{labels: sig}
		switch kind {
		case kindCounter:
			s.ctr = &Counter{}
		case kindGauge:
			s.gauge = &Gauge{}
		case kindHistogram:
			s.hist = &Histogram{}
		}
		f.series[sig] = s
		f.order = append(f.order, sig)
	}
	return s
}

// Counter returns the counter series for (name, labels), creating it on
// first use.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindCounter, labels).ctr
}

// Gauge returns the gauge series for (name, labels).
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindGauge, labels).gauge
}

// Histogram returns the latency-histogram series for (name, labels).
func (r *Registry) Histogram(name, help string, labels Labels) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindHistogram, labels).hist
}

// CounterFunc registers a callback-backed counter — for counters whose
// source of truth already lives elsewhere (pool atomics, compiler
// stats). fn is called at exposition time and must be concurrency-safe
// and monotone.
func (r *Registry) CounterFunc(name, help string, labels Labels, fn func() float64) {
	r.setFunc(name, help, kindCounterFunc, labels, fn)
}

// GaugeFunc registers a callback-backed gauge, evaluated at exposition
// time.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	r.setFunc(name, help, kindGaugeFunc, labels, fn)
}

// setFunc installs a callback under r.mu: exposition snapshots series
// (including fn) while holding the lock, so the assignment must not
// happen after lookup unlocks.
func (r *Registry) setFunc(name, help string, kind metricKind, labels Labels, fn func() float64) {
	if r == nil {
		return
	}
	sig := labelSignature(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.lookupLocked(name, help, kind, sig).fn = fn
}
