package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// WritePrometheus renders every family in the registry in the Prometheus
// text exposition format (version 0.0.4): a # HELP and # TYPE header per
// family, then one line per series, families sorted by name and series
// by label signature, so output is deterministic for a given state.
// Callback-backed series are evaluated at write time. Durations are
// exposed in seconds, per Prometheus convention. A nil registry writes
// nothing.
func WritePrometheus(w io.Writer, r *Registry) error {
	if r == nil {
		return nil
	}
	// Snapshot every family's series list while holding r.mu: lookup
	// appends to family.order and family.series when a new label set
	// appears (the engine creates eval-histogram series lazily per
	// fingerprint), so touching them after unlocking would race with live
	// traffic. The series copies carry only pointers to atomic state and
	// the immutable label signature, which are safe to render unlocked.
	type famSnapshot struct {
		name, help string
		kind       metricKind
		series     []series
	}
	r.mu.Lock()
	names := make([]string, len(r.order))
	copy(names, r.order)
	sort.Strings(names)
	fams := make([]famSnapshot, 0, len(names))
	for _, name := range names {
		f := r.families[name]
		sigs := make([]string, len(f.order))
		copy(sigs, f.order)
		sort.Strings(sigs)
		snap := famSnapshot{name: f.name, help: f.help, kind: f.kind,
			series: make([]series, 0, len(sigs))}
		for _, sig := range sigs {
			snap.series = append(snap.series, *f.series[sig])
		}
		fams = append(fams, snap)
	}
	r.mu.Unlock()

	for _, f := range fams {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind.promType()); err != nil {
			return err
		}
		for i := range f.series {
			if err := writeSeries(w, f.name, f.kind, &f.series[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeSeries renders one series' sample lines.
func writeSeries(w io.Writer, name string, kind metricKind, s *series) error {
	switch kind {
	case kindCounter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", name, s.labels, s.ctr.Value())
		return err
	case kindGauge:
		_, err := fmt.Fprintf(w, "%s%s %d\n", name, s.labels, s.gauge.Value())
		return err
	case kindCounterFunc, kindGaugeFunc:
		v := 0.0
		if s.fn != nil {
			v = s.fn()
		}
		_, err := fmt.Fprintf(w, "%s%s %s\n", name, s.labels, formatFloat(v))
		return err
	case kindHistogram:
		return writeHistogram(w, name, s)
	}
	return nil
}

// writeHistogram renders the cumulative _bucket / _sum / _count triple
// for one histogram series, with "le" bounds in seconds.
func writeHistogram(w io.Writer, name string, s *series) error {
	cum, count, sumNS := s.hist.snapshotBuckets()
	for i, c := range cum {
		le := "+Inf"
		if i < histBuckets {
			le = formatFloat(float64(histBound(i)) / float64(time.Second))
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			name, withLabel(s.labels, "le", le), c); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n",
		name, s.labels, formatFloat(float64(sumNS)/float64(time.Second))); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, s.labels, count)
	return err
}

// withLabel splices one more label into a rendered signature.
func withLabel(sig, key, value string) string {
	extra := fmt.Sprintf("%s=%q", key, value)
	if sig == "" {
		return "{" + extra + "}"
	}
	return strings.TrimSuffix(sig, "}") + "," + extra + "}"
}

// formatFloat renders a float compactly ("0.004096", "1", "12.5").
func formatFloat(v float64) string {
	s := fmt.Sprintf("%g", v)
	// %g may produce exponent notation for small bounds; Prometheus
	// accepts it, but fixed notation is easier on human readers for the
	// magnitudes we emit.
	if strings.ContainsAny(s, "eE") {
		s = strings.TrimRight(fmt.Sprintf("%.9f", v), "0")
		s = strings.TrimSuffix(s, ".")
	}
	return s
}
