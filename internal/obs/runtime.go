package obs

import (
	"runtime"
	"sync"
	"time"
)

// memStatsReader memoizes runtime.ReadMemStats: the call stops the
// world briefly, and callback-backed gauges are read once per series
// per scrape, so several gauges sharing one scrape should also share
// one read.
type memStatsReader struct {
	mu   sync.Mutex
	at   time.Time
	ms   runtime.MemStats
	once time.Duration
}

func (m *memStatsReader) read() runtime.MemStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	if now := time.Now(); m.at.IsZero() || now.Sub(m.at) >= m.once {
		runtime.ReadMemStats(&m.ms)
		m.at = now
	}
	return m.ms
}

// RegisterRuntimeMetrics adds Go runtime self-metrics to the registry —
// goroutine count, GC pause total, GC cycle count and in-use heap — so
// fleet dashboards scraping /metrics need no sidecar exporter. Safe to
// call once per registry; calling again replaces the callbacks.
func RegisterRuntimeMetrics(r *Registry) {
	if r == nil {
		return
	}
	mem := &memStatsReader{once: 500 * time.Millisecond}
	r.GaugeFunc("go_goroutines",
		"Number of goroutines that currently exist.", nil,
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("go_heap_inuse_bytes",
		"Bytes in in-use heap spans.", nil,
		func() float64 { return float64(mem.read().HeapInuse) })
	r.CounterFunc("go_gc_pause_seconds_total",
		"Total stop-the-world GC pause time in seconds.", nil,
		func() float64 { return float64(mem.read().PauseTotalNs) / 1e9 })
	r.CounterFunc("go_gc_runs_total",
		"Completed GC cycles.", nil,
		func() float64 { return float64(mem.read().NumGC) })
}
