package obs

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Trace IDs are assigned to every root span a tracer starts, so a
// histogram exemplar, a /slow log line, a perf-database record and a
// flight-recorder entry can all point at the same retained trace. The
// ID is process-unique and cheap: a start-time prefix plus a sequence
// number — no randomness needed, collisions across restarts are made
// unlikely by the millisecond prefix.
var (
	traceSeq  atomic.Uint64
	traceBase = uint64(time.Now().UnixMilli()) & 0xffffffff
)

func nextTraceID() string {
	return fmt.Sprintf("%08x-%x", traceBase, traceSeq.Add(1))
}

// ID returns the span's trace ID ("" on non-roots and nil spans).
func (s *Span) ID() string {
	if s == nil {
		return ""
	}
	return s.id
}

// DefaultTailPercent is the slow-tail retention fraction SetTail(0)
// configures: the slowest 5% of requests keep their full span trees.
const DefaultTailPercent = 5.0

// SetTail configures tail-based trace retention: finished roots in the
// slowest pct percent of all requests (estimated against a running
// duration histogram, once enough samples exist), plus every root that
// errored, degraded, retried or was rerouted, are retained in a
// dedicated ring queryable by ByID/Retained. pct 0 applies
// DefaultTailPercent; negative pct disables duration-based retention
// (error/degraded/rerouted roots are still kept).
func (t *Tracer) SetTail(pct float64) {
	if t == nil {
		return
	}
	if pct == 0 {
		pct = DefaultTailPercent
	}
	t.mu.Lock()
	t.tailPct = pct
	if t.retained.buf == nil {
		t.retained = newRing(len(t.recent.buf))
	}
	t.mu.Unlock()
}

// tailMinSamples is how many durations the tail estimator needs before
// quantile-based retention kicks in — below it, every request would be
// "the slowest 5%" of a near-empty histogram.
const tailMinSamples = 32

// retainTail decides, with t.mu held, whether a finished root belongs
// in the retained ring.
func (t *Tracer) retainTail(root *Span) bool {
	if t.retained.buf == nil {
		return false
	}
	if interesting(root) {
		return true
	}
	if t.tailPct <= 0 {
		return false
	}
	t.tailHist.Observe(root.Duration())
	if t.tailHist.Count() < tailMinSamples {
		return false
	}
	return root.Duration() >= t.tailHist.Quantile(1-t.tailPct/100)
}

// interesting reports whether a trace is unconditionally worth keeping:
// it errored, degraded down the fallback ladder, burned a retry, or was
// rerouted off a tripped worker.
func interesting(root *Span) bool {
	if root.Attr("error") != "" || root.Attr("rerouted") != "" {
		return true
	}
	return root.Find("fallback") != nil || root.Find("retry") != nil
}

// Retained returns up to n retained (tail-sampled) traces, oldest
// first. n <= 0 means all.
func (t *Tracer) Retained(n int) []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.retained.buf == nil {
		return nil
	}
	return t.retained.last(n)
}

// ByID returns the retained, slow or recent trace with the given ID
// (nil if it has aged out of all three rings).
func (t *Tracer) ByID(id string) *Span {
	if t == nil || id == "" {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, r := range []*ring{&t.retained, &t.slow, &t.recent} {
		if r.buf == nil {
			continue
		}
		spans := r.last(0)
		for i := len(spans) - 1; i >= 0; i-- {
			if spans[i].id == id {
				return spans[i]
			}
		}
	}
	return nil
}
