// Package obs is the framework's zero-dependency observability layer:
// pipeline tracing and a metrics registry, built on the standard library
// only, threaded through the engine (dfg), the shared compile layer
// (internal/compile) and the evaluation service (internal/serve).
//
// Tracing. A Tracer hands out request-scoped Spans that form explicit
// parent/child trees covering the whole derived-field pipeline: parse ->
// AST build -> network construction/CSE -> compile-cache lookup
// (hit/miss/singleflight-wait) -> strategy execution, with the run's
// simulated device events (ocl.Event) attached as fixed-time child spans
// on their own tracks. Finished root spans are immutable; the tracer
// keeps a bounded ring of recent traces (for the service's /trace
// endpoint) and a second ring of "slow" traces whose duration exceeded a
// configurable threshold, optionally invoking a slow-request log
// callback with the full span tree. internal/metrics renders span trees
// as multi-track Chrome-trace JSON for chrome://tracing or Perfetto.
//
// Metrics. A Registry holds named, labeled series — monotone Counters,
// Gauges, callback-backed CounterFunc/GaugeFunc collectors, and
// log-bucketed latency Histograms with p50/p90/p99 estimation — and
// writes them in the Prometheus text exposition format (WritePrometheus,
// the service's /metrics endpoint).
//
// Cost discipline: instrumentation is optional everywhere. The nil
// *Tracer and nil *Registry are valid no-op implementations — every
// method on Span, Tracer, Counter, Gauge and Histogram is nil-safe and
// allocation-free on the nil path — so the uninstrumented hot path pays
// (near) zero overhead; see BenchmarkEngineEval.
package obs
