package obs

import (
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("eval")
	if sp != nil {
		t.Fatal("nil tracer must hand out nil spans")
	}
	// Every span method must absorb the nil receiver.
	c := sp.Child("parse")
	if c != nil {
		t.Fatal("nil span Child must return nil")
	}
	sp.SetAttr("k", "v")
	sp.Event("w", "kernel", time.Now(), time.Now())
	sp.Finish()
	if sp.Duration() != 0 || sp.Attr("k") != "" || sp.Find("x") != nil {
		t.Fatal("nil span accessors must return zero values")
	}
	if got := tr.Last(10); got != nil {
		t.Fatal("nil tracer Last must be nil")
	}
	tr.SetSlow(time.Second, nil)
}

func TestSpanTree(t *testing.T) {
	tr := NewTracer(8)
	root := tr.Start("eval").SetAttr("strategy", "fusion")
	compile := root.Child("compile")
	parse := compile.Child("parse")
	parse.Finish()
	compile.SetAttr("outcome", "miss")
	compile.Finish()
	exec := root.Child("execute")
	exec.Event("u", "host-to-device", root.Start, root.Start.Add(time.Millisecond),
		Attr{Key: "bytes", Value: "4096"})
	exec.Finish()
	root.Finish()

	if root.Duration() <= 0 {
		t.Fatal("finished root must have positive duration")
	}
	if root.Find("parse") != parse || root.Find("nope") != nil {
		t.Fatal("Find walked the tree wrong")
	}
	if got := root.Attr("strategy"); got != "fusion" {
		t.Fatalf("Attr = %q", got)
	}
	stages := root.StageDurations()
	if _, ok := stages["parse"]; !ok {
		t.Fatal("StageDurations missing parse")
	}
	if _, ok := stages["u"]; ok {
		t.Fatal("StageDurations must skip device-track spans")
	}

	got := tr.Last(1)
	if len(got) != 1 || got[0] != root {
		t.Fatalf("Last(1) = %v", got)
	}

	var sb strings.Builder
	root.WriteText(&sb)
	text := sb.String()
	for _, want := range []string{"eval", "  compile", "    parse", "[host-to-device]", "bytes=4096"} {
		if !strings.Contains(text, want) {
			t.Fatalf("WriteText output missing %q:\n%s", want, text)
		}
	}
}

func TestSpanFinishIdempotent(t *testing.T) {
	tr := NewTracer(4)
	root := tr.Start("eval")
	root.Finish()
	end := root.End
	root.Finish()
	if root.End != end {
		t.Fatal("second Finish must not restamp End")
	}
	if got := tr.Last(0); len(got) != 1 {
		t.Fatalf("double Finish published %d traces", len(got))
	}
}

func TestTracerRingOverwrites(t *testing.T) {
	tr := NewTracer(3)
	for i := 0; i < 5; i++ {
		sp := tr.Start("r")
		sp.SetAttr("i", string(rune('0'+i)))
		sp.Finish()
	}
	got := tr.Last(0)
	if len(got) != 3 {
		t.Fatalf("ring kept %d, want 3", len(got))
	}
	// Oldest first: traces 2, 3, 4 survive.
	for i, sp := range got {
		if want := string(rune('2' + i)); sp.Attr("i") != want {
			t.Fatalf("ring[%d] = %q, want %q", i, sp.Attr("i"), want)
		}
	}
	if got := tr.Last(2); len(got) != 2 || got[1].Attr("i") != "4" {
		t.Fatalf("Last(2) wrong: %v", got)
	}
}

func TestSlowCapture(t *testing.T) {
	tr := NewTracer(8)
	var mu sync.Mutex
	var logged []*Span
	tr.SetSlow(10*time.Millisecond, func(sp *Span) {
		mu.Lock()
		logged = append(logged, sp)
		mu.Unlock()
	})

	fast := tr.Start("fast")
	fast.Finish()
	slow := tr.Start("slow")
	slow.Start = slow.Start.Add(-20 * time.Millisecond) // backdate instead of sleeping
	slow.Finish()

	if got := tr.Slow(0); len(got) != 1 || got[0] != slow {
		t.Fatalf("Slow ring = %v", got)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(logged) != 1 || logged[0] != slow {
		t.Fatalf("slow hook saw %v", logged)
	}
}

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "requests", Labels{"outcome": "ok"})
	c.Inc()
	c.Add(2)
	c.Add(-5) // ignored: monotone
	if c.Value() != 3 {
		t.Fatalf("counter = %d", c.Value())
	}
	if again := r.Counter("reqs_total", "requests", Labels{"outcome": "ok"}); again != c {
		t.Fatal("series must be memoized")
	}
	other := r.Counter("reqs_total", "requests", Labels{"outcome": "err"})
	if other == c || other.Value() != 0 {
		t.Fatal("distinct labels must get distinct series")
	}

	g := r.Gauge("depth", "queue depth", nil)
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Fatalf("gauge = %d", g.Value())
	}

	// Nil registry: everything is a no-op but never panics.
	var nr *Registry
	nr.Counter("x", "", nil).Inc()
	nr.Gauge("y", "", nil).Set(1)
	nr.Histogram("z", "", nil).Observe(time.Second)
	nr.GaugeFunc("w", "", nil, func() float64 { return 1 })
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("m", "", nil)
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "latency", nil)
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile must be 0")
	}
	// 100 observations of ~1ms, 10 of ~100ms.
	for i := 0; i < 100; i++ {
		h.Observe(time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100 * time.Millisecond)
	}
	if h.Count() != 110 {
		t.Fatalf("count = %d", h.Count())
	}
	if want := 100*time.Millisecond + time.Second; h.Sum() != want {
		t.Fatalf("sum = %v, want %v", h.Sum(), want)
	}
	p50 := h.Quantile(0.5)
	if p50 < 512*time.Microsecond || p50 > 2*time.Millisecond {
		t.Fatalf("p50 = %v, want ~1ms (one log2 bucket of slack)", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 64*time.Millisecond || p99 > 256*time.Millisecond {
		t.Fatalf("p99 = %v, want ~100ms", p99)
	}
	if h.Quantile(1) < p99 {
		t.Fatal("quantiles must be monotone")
	}
	// Overflow bucket: huge values neither panic nor vanish.
	h.Observe(time.Hour)
	if h.Quantile(1) < time.Second {
		t.Fatalf("max quantile after 1h observation = %v", h.Quantile(1))
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("dfg_requests_total", "Requests by outcome.", Labels{"outcome": "served"}).Add(12)
	r.Counter("dfg_requests_total", "Requests by outcome.", Labels{"outcome": "failed"}).Add(3)
	r.Gauge("dfg_queue_depth", "Queued requests.", nil).Set(4)
	r.GaugeFunc("dfg_uptime_seconds", "Uptime.", nil, func() float64 { return 1.5 })
	r.CounterFunc("dfg_cache_hits_total", "Cache hits.", nil, func() float64 { return 9 })
	h := r.Histogram("dfg_eval_seconds", "Eval latency.", Labels{"strategy": "fusion"})
	h.Observe(3 * time.Millisecond)

	var sb strings.Builder
	if err := WritePrometheus(&sb, r); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE dfg_requests_total counter",
		`dfg_requests_total{outcome="served"} 12`,
		`dfg_requests_total{outcome="failed"} 3`,
		"# TYPE dfg_queue_depth gauge",
		"dfg_queue_depth 4",
		"dfg_uptime_seconds 1.5",
		"# TYPE dfg_cache_hits_total counter",
		"dfg_cache_hits_total 9",
		"# TYPE dfg_eval_seconds histogram",
		`dfg_eval_seconds_bucket{strategy="fusion",le="+Inf"} 1`,
		`dfg_eval_seconds_count{strategy="fusion"} 1`,
		`dfg_eval_seconds_sum{strategy="fusion"} 0.003`,
		"# HELP dfg_requests_total Requests by outcome.",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Cumulative buckets: the 4.096ms bound already includes the 3ms obs.
	if !strings.Contains(out, `dfg_eval_seconds_bucket{strategy="fusion",le="0.004096"} 1`) {
		t.Fatalf("bucket bounds wrong:\n%s", out)
	}
	// Deterministic: a second render is byte-identical.
	var sb2 strings.Builder
	if err := WritePrometheus(&sb2, r); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != out {
		t.Fatal("exposition must be deterministic")
	}
	if err := WritePrometheus(&sb, nil); err != nil {
		t.Fatal("nil registry must write nothing, not fail")
	}
}

// TestConcurrency exercises publish/scrape/observe under the race
// detector.
func TestConcurrency(t *testing.T) {
	tr := NewTracer(16)
	tr.SetSlow(time.Nanosecond, func(sp *Span) { _ = sp.Duration() })
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sp := tr.Start("eval")
				sp.Child("parse").Finish()
				sp.Finish()
				r.Counter("c", "", Labels{"g": "x"}).Inc()
				r.Histogram("h", "", nil).Observe(time.Microsecond)
				// New label sets append to family state mid-scrape —
				// the engine does this per fingerprint at eval time, so
				// exposition must tolerate concurrent series creation.
				r.Histogram("h", "", Labels{"fp": strconv.Itoa(i)}).Observe(time.Microsecond)
				r.GaugeFunc("gf", "", Labels{"fp": strconv.Itoa(i)}, func() float64 { return 1 })
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			_ = tr.Last(8)
			_ = tr.Slow(8)
			var sb strings.Builder
			if err := WritePrometheus(&sb, r); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if got := r.Counter("c", "", Labels{"g": "x"}).Value(); got != 800 {
		t.Fatalf("counter = %d, want 800", got)
	}
}
