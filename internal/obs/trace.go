package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span. Attrs are a slice, not a
// map, to keep spans cheap and their rendering deterministic.
type Attr struct {
	Key, Value string
}

// Span is one timed stage of a pipeline trace. A span tree is built by
// exactly one goroutine (the engine evaluating the request) and becomes
// immutable once its root is finished — only finished roots are
// published to the tracer, so readers never race with writers.
//
// All methods are nil-safe: a nil *Span (what a nil Tracer hands out)
// absorbs every call, so instrumented code needs no "is tracing on"
// branches.
type Span struct {
	// Name identifies the stage ("eval", "parse", "build", ...).
	Name string
	// Track assigns the span to a timeline track for trace export.
	// Empty means the pipeline track; device events use the ocl event
	// category names ("host-to-device", "kernel", "device-to-host").
	Track string
	// Start and End bound the span in real host time.
	Start, End time.Time
	// Attrs annotates the span (fingerprint, strategy, outcome, bytes...).
	Attrs []Attr
	// Children are the sub-stages, in creation order.
	Children []*Span

	tracer *Tracer // non-nil on roots only; Finish publishes there
	id     string  // trace ID, assigned to roots by Tracer.Start (see ID)
}

// Child opens a sub-span starting now. The caller must Finish it (or a
// later FinishAt) before finishing the parent for durations to nest
// sensibly; nothing enforces this.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{Name: name, Start: time.Now()}
	s.Children = append(s.Children, c)
	return c
}

// Event appends a fixed-interval child span — how simulated device
// events, whose modeled timelines are not host wall time, are attached
// to the execute stage on their own tracks.
func (s *Span) Event(name, track string, start, end time.Time, attrs ...Attr) {
	if s == nil {
		return
	}
	s.Children = append(s.Children, &Span{
		Name:  name,
		Track: track,
		Start: start,
		End:   end,
		Attrs: attrs,
	})
}

// SetAttr annotates the span, returning it for chaining.
func (s *Span) SetAttr(key, value string) *Span {
	if s == nil {
		return nil
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: value})
	return s
}

// Attr returns the value of the named attribute ("" if absent).
func (s *Span) Attr(key string) string {
	if s == nil {
		return ""
	}
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// Finish stamps the end time. Finishing a root publishes the (now
// immutable) tree to its tracer; finishing twice publishes once.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	if !s.End.IsZero() {
		return
	}
	s.End = time.Now()
	if s.tracer != nil {
		s.tracer.publish(s)
	}
}

// Duration is the span's elapsed time (zero until finished).
func (s *Span) Duration() time.Duration {
	if s == nil || s.End.IsZero() {
		return 0
	}
	return s.End.Sub(s.Start)
}

// Find returns the first span named name in a depth-first walk of the
// tree rooted at s (including s itself), or nil.
func (s *Span) Find(name string) *Span {
	if s == nil {
		return nil
	}
	if s.Name == name {
		return s
	}
	for _, c := range s.Children {
		if m := c.Find(name); m != nil {
			return m
		}
	}
	return nil
}

// StageDurations sums the duration of every pipeline-track span (Track
// == "") with the given name across the tree — e.g. total "build" time
// within an "eval" trace.
func (s *Span) StageDurations() map[string]time.Duration {
	out := make(map[string]time.Duration)
	var walk func(sp *Span)
	walk = func(sp *Span) {
		if sp == nil {
			return
		}
		if sp.Track == "" {
			out[sp.Name] += sp.Duration()
		}
		for _, c := range sp.Children {
			walk(c)
		}
	}
	walk(s)
	return out
}

// WriteText renders the span tree as an indented text outline — the
// slow-request log format.
func (s *Span) WriteText(w io.Writer) {
	if s == nil {
		return
	}
	var walk func(sp *Span, depth int)
	walk = func(sp *Span, depth int) {
		var attrs strings.Builder
		for _, a := range sp.Attrs {
			fmt.Fprintf(&attrs, " %s=%s", a.Key, a.Value)
		}
		track := ""
		if sp.Track != "" {
			track = " [" + sp.Track + "]"
		}
		fmt.Fprintf(w, "%s%-12s %12v%s%s\n",
			strings.Repeat("  ", depth), sp.Name, sp.End.Sub(sp.Start), track, attrs.String())
		for _, c := range sp.Children {
			walk(c, depth+1)
		}
	}
	walk(s, 0)
}

// Tracer collects finished request traces. Starting spans is lock-free
// (each request's tree is private to its goroutine); publishing and
// reading the rings takes a mutex. The zero Tracer pointer (nil) is a
// valid no-op tracer: Start returns a nil span and nothing is recorded.
type Tracer struct {
	mu       sync.Mutex
	recent   ring
	slow     ring
	retained ring // tail-sampled traces (see SetTail); nil buf = disabled

	slowThreshold time.Duration
	onSlow        func(*Span)

	tailPct  float64   // slowest-percent retention fraction
	tailHist Histogram // running duration distribution for the tail cut
}

// DefaultKeep is the recent-trace ring capacity NewTracer(0) uses.
const DefaultKeep = 64

// NewTracer builds a tracer retaining the last keep finished traces
// (DefaultKeep if keep <= 0). The slow ring has the same capacity.
func NewTracer(keep int) *Tracer {
	if keep <= 0 {
		keep = DefaultKeep
	}
	return &Tracer{recent: newRing(keep), slow: newRing(keep)}
}

// SetSlow configures the slow-request log: finished roots whose duration
// is >= threshold are retained in a separate ring and passed to fn (if
// non-nil), which must be safe for concurrent use. A zero threshold
// disables slow capture.
func (t *Tracer) SetSlow(threshold time.Duration, fn func(*Span)) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.slowThreshold = threshold
	t.onSlow = fn
	t.mu.Unlock()
}

// Start opens a root span. On a nil tracer it returns nil — the no-op
// span — without touching the clock.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{Name: name, Start: time.Now(), tracer: t, id: nextTraceID()}
}

// publish files a finished root into the rings and fires the slow hook.
func (t *Tracer) publish(root *Span) {
	var slowFn func(*Span)
	t.mu.Lock()
	t.recent.add(root)
	if t.slowThreshold > 0 && root.Duration() >= t.slowThreshold {
		t.slow.add(root)
		slowFn = t.onSlow
	}
	if t.retainTail(root) {
		t.retained.add(root)
	}
	t.mu.Unlock()
	if slowFn != nil {
		slowFn(root) // outside the lock: the hook may be slow (it logs)
	}
}

// Last returns up to n of the most recent finished traces, oldest
// first. n <= 0 means all retained.
func (t *Tracer) Last(n int) []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.recent.last(n)
}

// Slow returns up to n of the most recent slow traces, oldest first.
func (t *Tracer) Slow(n int) []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.slow.last(n)
}

// ring is a fixed-capacity overwrite-oldest buffer of trace roots.
type ring struct {
	buf  []*Span
	next int
	full bool
}

func newRing(capacity int) ring { return ring{buf: make([]*Span, capacity)} }

func (r *ring) add(s *Span) {
	r.buf[r.next] = s
	r.next++
	if r.next == len(r.buf) {
		r.next, r.full = 0, true
	}
}

// last returns up to n entries, oldest first.
func (r *ring) last(n int) []*Span {
	size := r.next
	if r.full {
		size = len(r.buf)
	}
	if n <= 0 || n > size {
		n = size
	}
	out := make([]*Span, 0, n)
	for i := size - n; i < size; i++ {
		idx := i
		if r.full {
			idx = (r.next + i) % len(r.buf)
		}
		out = append(out, r.buf[idx])
	}
	return out
}

// SortAttrs orders a span's attributes by key, in place — export paths
// use it for deterministic rendering of attrs gathered in any order.
func SortAttrs(attrs []Attr) {
	sort.Slice(attrs, func(i, j int) bool { return attrs[i].Key < attrs[j].Key })
}
