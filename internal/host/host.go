// Package host simulates the host application side of the paper's
// evaluation — VisIt. The host application owns the data (it "reads the
// data sets from disk"; here, it generates the synthetic RT field),
// passes expression definitions and mesh data fields to the framework
// through the host interface, and renders the derived field the
// framework returns.
//
// Two contracts from the paper's Section III-D are modelled and tested:
//
//   - the pipeline executes once per time step: every subsequent
//     rendering operation (changing the viewpoint, etc.) reuses the
//     resulting mesh, and the pipeline executes again only when the
//     data set changes (a different time step is loaded);
//   - the framework may explicitly request ghost data generation, and
//     the host responds by duplicating a stencil of cells around each
//     sub-grid.
package host

import (
	"fmt"
	"io"

	"dfg"
	"dfg/internal/mesh"
	"dfg/internal/render"
	"dfg/internal/rtsim"
)

// PythonExpression is the paper's custom VisIt Python Expression: a
// named derived-field definition evaluated by the framework.
type PythonExpression struct {
	// Name is the derived field's name in the pipeline ("q_crit").
	Name string
	// Text is the expression program.
	Text string
}

// App is a simulated visualization host application bound to one
// framework engine (one per MPI task, in the paper's runs).
type App struct {
	engine *dfg.Engine
	mesh   *mesh.Mesh
	seed   int64

	timeStep int
	field    *rtsim.Field

	exprs []PythonExpression
	// prepared caches each expression's prepared plan (compile + plan
	// once; the arena then keeps buffers and unchanged sources — the
	// mesh coordinates — device-resident across time steps).
	prepared map[string]*dfg.Prepared
	// derived caches each expression's result for the current time step.
	derived map[string]*dfg.Result
	dirty   bool

	pipelineExecutions int
	renders            int
}

// NewApp creates a host application over a mesh; time step t's data is
// generated deterministically from seed+t.
func NewApp(m *mesh.Mesh, seed int64, engine *dfg.Engine) (*App, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if engine == nil {
		return nil, fmt.Errorf("host: nil engine")
	}
	a := &App{
		engine:   engine,
		mesh:     m,
		seed:     seed,
		prepared: make(map[string]*dfg.Prepared),
		derived:  make(map[string]*dfg.Result),
	}
	a.LoadTimeStep(0)
	return a, nil
}

// AddExpression registers a Python Expression in the pipeline and marks
// the pipeline dirty.
func (a *App) AddExpression(e PythonExpression) error {
	if e.Name == "" || e.Text == "" {
		return fmt.Errorf("host: expression needs a name and text")
	}
	a.exprs = append(a.exprs, e)
	a.dirty = true
	return nil
}

// LoadTimeStep switches the data set to another time step ("reads it
// from disk"), invalidating every cached derived field.
func (a *App) LoadTimeStep(t int) {
	a.timeStep = t
	a.field = rtsim.Generate(a.mesh, rtsim.Options{Seed: a.seed + int64(t)})
	a.derived = make(map[string]*dfg.Result)
	a.dirty = true
}

// TimeStep returns the loaded time step.
func (a *App) TimeStep() int { return a.timeStep }

// Field exposes the current time step's velocity data.
func (a *App) Field() *rtsim.Field { return a.field }

// execute runs the pipeline: every registered expression is evaluated by
// the framework against the current time step's arrays. Expressions are
// prepared on their first execution and the plans reused across time
// steps — the framework recompiles nothing when only the data changes,
// and the unchanged mesh-derived sources stay device-resident.
func (a *App) execute() error {
	for _, e := range a.exprs {
		pr, ok := a.prepared[e.Name]
		if !ok || pr.Text() != e.Text {
			if ok {
				pr.Close()
			}
			var err error
			pr, err = a.engine.Prepare(e.Text)
			if err != nil {
				return fmt.Errorf("host: expression %q: %w", e.Name, err)
			}
			a.prepared[e.Name] = pr
		}
		res, err := pr.EvalMesh(a.mesh, map[string][]float32{
			"u": a.field.U, "v": a.field.V, "w": a.field.W,
		})
		if err != nil {
			return fmt.Errorf("host: expression %q: %w", e.Name, err)
		}
		a.derived[e.Name] = res
	}
	a.pipelineExecutions++
	a.dirty = false
	return nil
}

// Close releases every prepared plan; the engine's buffer arena drains
// with the last one, freeing all pooled and device-resident buffers.
func (a *App) Close() {
	for name, pr := range a.prepared {
		pr.Close()
		delete(a.prepared, name)
	}
}

// Render draws the scene from a viewpoint. The first render after a
// data or pipeline change executes the pipeline; subsequent renders
// reuse the computed meshes, matching the paper's execution contract.
// It returns the derived fields available to the renderer.
func (a *App) Render(viewpoint string) (map[string]*dfg.Result, error) {
	if a.dirty {
		if err := a.execute(); err != nil {
			return nil, err
		}
	}
	a.renders++
	return a.derived, nil
}

// Derived returns a cached derived field by name (nil before the first
// render of the current time step).
func (a *App) Derived(name string) *dfg.Result { return a.derived[name] }

// PipelineExecutions counts how many times the pipeline actually ran.
func (a *App) PipelineExecutions() int { return a.pipelineExecutions }

// Renders counts rendering operations.
func (a *App) Renders() int { return a.renders }

// RenderImage writes a pseudo-color PPM of an axis-aligned slice through
// a derived field — the host application's actual "rendering operation".
// The pipeline contract applies: if the pipeline is dirty, it executes
// first (once), and repeated image renders reuse the computed mesh.
func (a *App) RenderImage(w io.Writer, fieldName string, axis render.Axis, index int) error {
	fields, err := a.Render(fmt.Sprintf("image-%s-%v-%d", fieldName, axis, index))
	if err != nil {
		return err
	}
	res, ok := fields[fieldName]
	if !ok {
		return fmt.Errorf("host: no derived field %q in the pipeline", fieldName)
	}
	if res.Width != 1 {
		return fmt.Errorf("host: cannot render vector field %q", fieldName)
	}
	plane, pw, ph, err := render.Slice(res.Data, a.mesh.Dims, axis, index)
	if err != nil {
		return err
	}
	return render.WritePPM(w, plane, pw, ph)
}

// GhostRequest is the framework's explicit request for ghost data
// generation around each sub-grid of a decomposition.
type GhostRequest struct {
	Parts  [3]int // block layout
	Layers int    // stencil width (1 for the gradient primitive)
}

// GhostBlock is one sub-grid with its ghost stencil: the grown extent,
// the field data over the grown region, and where the interior sits.
type GhostBlock struct {
	// Box is the block's interior extent in global cell coordinates.
	Box mesh.Extent
	// Grown is the ghost-grown extent actually carried by the arrays.
	Grown mesh.Extent
	// Field holds u, v, w over the grown extent with a matching submesh.
	Field *rtsim.Field
}

// GenerateGhostData fulfills a ghost request: it decomposes the current
// time step and returns every sub-grid with duplicated neighbour cells,
// exactly what VisIt hands the framework so gradients are correct at
// block boundaries.
func (a *App) GenerateGhostData(req GhostRequest) ([]GhostBlock, error) {
	if req.Layers < 0 {
		return nil, fmt.Errorf("host: negative ghost layers")
	}
	boxes, err := mesh.Decompose(a.mesh.Dims, req.Parts)
	if err != nil {
		return nil, err
	}
	out := make([]GhostBlock, 0, len(boxes))
	for _, box := range boxes {
		grown := box.Grow(req.Layers, a.mesh.Dims)
		sub, err := a.field.SubField(grown)
		if err != nil {
			return nil, err
		}
		out = append(out, GhostBlock{Box: box, Grown: grown, Field: sub})
	}
	return out, nil
}
