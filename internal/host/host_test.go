package host

import (
	"bytes"
	"strings"
	"testing"

	"dfg"
	"dfg/internal/mesh"
	"dfg/internal/render"
)

func newTestApp(t *testing.T) *App {
	t.Helper()
	m := mesh.MustUniform(mesh.Dims{NX: 12, NY: 12, NZ: 8}, 0.1, 0.1, 0.1)
	eng, err := dfg.New(dfg.Config{Device: dfg.CPU, Strategy: "fusion"})
	if err != nil {
		t.Fatal(err)
	}
	app, err := NewApp(m, 42, eng)
	if err != nil {
		t.Fatal(err)
	}
	return app
}

func TestPipelineExecutesOncePerTimeStep(t *testing.T) {
	app := newTestApp(t)
	if err := app.AddExpression(PythonExpression{Name: "v_mag", Text: dfg.VelocityMagnitudeExpr}); err != nil {
		t.Fatal(err)
	}

	// Many renders, one pipeline execution — the paper's contract.
	for i := 0; i < 5; i++ {
		fields, err := app.Render("view-" + string(rune('a'+i)))
		if err != nil {
			t.Fatal(err)
		}
		if fields["v_mag"] == nil {
			t.Fatal("render must see the derived field")
		}
	}
	if app.PipelineExecutions() != 1 {
		t.Fatalf("pipeline executed %d times for 5 renders, want 1", app.PipelineExecutions())
	}
	if app.Renders() != 5 {
		t.Fatalf("renders = %d", app.Renders())
	}

	// Loading a different time step re-executes exactly once more.
	app.LoadTimeStep(1)
	if app.Derived("v_mag") != nil {
		t.Fatal("time step change must invalidate cached derived fields")
	}
	for i := 0; i < 3; i++ {
		if _, err := app.Render("v"); err != nil {
			t.Fatal(err)
		}
	}
	if app.PipelineExecutions() != 2 {
		t.Fatalf("pipeline executed %d times after time step change, want 2", app.PipelineExecutions())
	}
}

func TestAddingExpressionDirtiesPipeline(t *testing.T) {
	app := newTestApp(t)
	app.AddExpression(PythonExpression{Name: "v_mag", Text: dfg.VelocityMagnitudeExpr})
	if _, err := app.Render("a"); err != nil {
		t.Fatal(err)
	}
	app.AddExpression(PythonExpression{Name: "w_mag", Text: dfg.VorticityMagnitudeExpr})
	if _, err := app.Render("a"); err != nil {
		t.Fatal(err)
	}
	if app.PipelineExecutions() != 2 {
		t.Fatalf("adding an expression must re-execute: %d", app.PipelineExecutions())
	}
	if app.Derived("w_mag") == nil {
		t.Fatal("new expression must be computed")
	}
}

func TestTimeStepsDiffer(t *testing.T) {
	app := newTestApp(t)
	u0 := append([]float32(nil), app.Field().U...)
	app.LoadTimeStep(3)
	if app.TimeStep() != 3 {
		t.Fatal("time step not recorded")
	}
	same := true
	for i, v := range app.Field().U {
		if v != u0[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different time steps must have different data")
	}
}

func TestExpressionErrorsSurface(t *testing.T) {
	app := newTestApp(t)
	if err := app.AddExpression(PythonExpression{}); err == nil {
		t.Fatal("empty expression must be rejected")
	}
	app.AddExpression(PythonExpression{Name: "bad", Text: "a = nosuch(u)"})
	if _, err := app.Render("a"); err == nil {
		t.Fatal("pipeline error must surface through Render")
	}
}

func TestGenerateGhostData(t *testing.T) {
	app := newTestApp(t)
	blocks, err := app.GenerateGhostData(GhostRequest{Parts: [3]int{3, 2, 2}, Layers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 12 {
		t.Fatalf("want 12 blocks, got %d", len(blocks))
	}
	gd := app.Field().Mesh.Dims
	for _, b := range blocks {
		// Grown extent contains the interior and is clipped to the domain.
		for a := 0; a < 3; a++ {
			if b.Grown.Lo[a] > b.Box.Lo[a] || b.Grown.Hi[a] < b.Box.Hi[a] {
				t.Fatalf("grown extent %v does not contain box %v", b.Grown, b.Box)
			}
		}
		// Ghost data duplicates the global arrays exactly.
		ld := b.Grown.Dims()
		if b.Field.Mesh.Dims != ld {
			t.Fatalf("ghost field dims %v != grown %v", b.Field.Mesh.Dims, ld)
		}
		for k := 0; k < ld.NZ; k++ {
			for j := 0; j < ld.NY; j++ {
				for i := 0; i < ld.NX; i++ {
					g := gd.Index(i+b.Grown.Lo[0], j+b.Grown.Lo[1], k+b.Grown.Lo[2])
					l := ld.Index(i, j, k)
					if b.Field.U[l] != app.Field().U[g] {
						t.Fatalf("ghost data mismatch at block %v local (%d,%d,%d)", b.Box, i, j, k)
					}
				}
			}
		}
	}
	if _, err := app.GenerateGhostData(GhostRequest{Parts: [3]int{0, 1, 1}}); err == nil {
		t.Fatal("bad decomposition must fail")
	}
	if _, err := app.GenerateGhostData(GhostRequest{Parts: [3]int{2, 2, 2}, Layers: -1}); err == nil {
		t.Fatal("negative ghost layers must fail")
	}
}

func TestNewAppValidation(t *testing.T) {
	m := mesh.MustUniform(mesh.Dims{NX: 4, NY: 4, NZ: 4}, 1, 1, 1)
	if _, err := NewApp(m, 0, nil); err == nil {
		t.Fatal("nil engine must fail")
	}
}

func TestRenderImage(t *testing.T) {
	app := newTestApp(t)
	app.AddExpression(PythonExpression{Name: "q", Text: dfg.QCriterionExpr})

	var buf bytes.Buffer
	if err := app.RenderImage(&buf, "q", render.Z, 4); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "P6\n12 12\n255\n") {
		t.Fatalf("PPM header wrong: %q", buf.String()[:20])
	}
	if app.PipelineExecutions() != 1 {
		t.Fatal("first image render executes the pipeline once")
	}
	// A second image reuses the computed mesh.
	if err := app.RenderImage(&buf, "q", render.X, 0); err != nil {
		t.Fatal(err)
	}
	if app.PipelineExecutions() != 1 {
		t.Fatal("second image render must reuse the pipeline result")
	}
	if err := app.RenderImage(&buf, "nope", render.Z, 0); err == nil {
		t.Fatal("unknown field must fail")
	}
	if err := app.RenderImage(&buf, "q", render.Z, 99); err == nil {
		t.Fatal("bad slice index must fail")
	}
}
