package dataflow

// EliminateCommonSubexpressions reduces the network the way the paper's
// parser does: common constants collapse to single source filters, and
// structurally identical filter invocations (same primitive, same
// parameters, same inputs in the same order) are computed once. The
// elimination is "limited" — it does not exploit commutativity, so
// add(a, b) and add(b, a) stay distinct, matching the paper's Table II
// event counts.
//
// Nodes are kept in construction (topological) order, so one forward
// pass reaches the fixpoint: by the time a node is examined, all of its
// inputs are already canonical. The network output and user aliases are
// remapped. The number of eliminated nodes is returned.
func (nw *Network) EliminateCommonSubexpressions() int {
	nw.mustMutable("EliminateCommonSubexpressions")
	canon := make(map[string]string, len(nw.nodes)) // structural key -> node ID
	remap := make(map[string]string)                // duplicate ID -> canonical ID
	kept := nw.nodes[:0]
	eliminated := 0

	for _, n := range nw.nodes {
		for i, in := range n.Inputs {
			if r, ok := remap[in]; ok {
				n.Inputs[i] = r
			}
		}
		key := n.key()
		if n.Filter == "source" {
			// Sources are identified by name, never merged across names.
			key = "source:" + n.ID
		}
		if id, ok := canon[key]; ok {
			remap[n.ID] = id
			delete(nw.byID, n.ID)
			eliminated++
			continue
		}
		canon[key] = n.ID
		kept = append(kept, n)
	}
	nw.nodes = kept

	if r, ok := remap[nw.output]; ok {
		nw.output = r
	}
	for name, id := range nw.aliases {
		if r, ok := remap[id]; ok {
			nw.aliases[name] = r
		}
	}
	return eliminated
}
