package dataflow

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// buildVelMag constructs the velocity-magnitude network by hand:
// v_mag = sqrt(u*u + v*v + w*w).
func buildVelMag(t *testing.T) *Network {
	t.Helper()
	nw := NewNetwork()
	for _, s := range []string{"u", "v", "w"} {
		if _, err := nw.AddSource(s); err != nil {
			t.Fatal(err)
		}
	}
	uu, err := nw.AddFilter("mul", "u", "u")
	if err != nil {
		t.Fatal(err)
	}
	vv, _ := nw.AddFilter("mul", "v", "v")
	ww, _ := nw.AddFilter("mul", "w", "w")
	s1, _ := nw.AddFilter("add", uu, vv)
	s2, _ := nw.AddFilter("add", s1, ww)
	out, _ := nw.AddFilter("sqrt", s2)
	if err := nw.Alias("v_mag", out); err != nil {
		t.Fatal(err)
	}
	if err := nw.SetOutput("v_mag"); err != nil {
		t.Fatal(err)
	}
	if err := nw.Validate(); err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestBuildVelMagNetwork(t *testing.T) {
	nw := buildVelMag(t)
	if nw.Len() != 9 {
		t.Fatalf("velmag network should have 9 nodes (3 sources + 6 ops), got %d", nw.Len())
	}
	if len(nw.Sources()) != 3 {
		t.Fatalf("want 3 sources, got %d", len(nw.Sources()))
	}
	if nw.OutputNode().Filter != "sqrt" {
		t.Fatalf("output should be the sqrt node, got %q", nw.OutputNode().Filter)
	}
	// Alias resolves to the same node.
	if nw.Node("v_mag") != nw.OutputNode() {
		t.Fatal("alias v_mag should resolve to the output node")
	}
}

func TestTopoOrderRespectsDependencies(t *testing.T) {
	nw := buildVelMag(t)
	order, err := nw.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[string]int)
	for i, n := range order {
		pos[n.ID] = i
	}
	for _, n := range order {
		for _, in := range n.Inputs {
			if pos[in] >= pos[n.ID] {
				t.Fatalf("node %q scheduled before its input %q", n.ID, in)
			}
		}
	}
	if len(order) != 9 {
		t.Fatalf("all 9 nodes are live, got %d", len(order))
	}
}

func TestTopoOrderPrunesDeadNodes(t *testing.T) {
	nw := buildVelMag(t)
	// A dangling computation that does not reach the output.
	dead, _ := nw.AddFilter("mul", "u", "v")
	_ = dead
	order, err := nw.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range order {
		if n.ID == dead {
			t.Fatal("dead node must not be scheduled")
		}
	}
	if len(order) != 9 {
		t.Fatalf("want 9 live nodes, got %d", len(order))
	}
}

func TestTopoOrderRequiresOutput(t *testing.T) {
	nw := NewNetwork()
	nw.AddSource("u")
	if _, err := nw.TopoOrder(); err == nil {
		t.Fatal("topo order without an output must fail")
	}
}

func TestTopoOrderDetectsCycle(t *testing.T) {
	nw := buildVelMag(t)
	// Hand-corrupt the spec into a cycle (impossible via the API).
	out := nw.OutputNode()
	sq := nw.Node(out.Inputs[0])
	sq.Inputs[0] = out.ID
	if _, err := nw.TopoOrder(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("want cycle error, got %v", err)
	}
}

func TestConsumersRefcounts(t *testing.T) {
	nw := buildVelMag(t)
	c := nw.Consumers()
	if c["u"] != 2 {
		t.Fatalf("u feeds mul(u,u) twice: want 2 consumers, got %d", c["u"])
	}
	if c[nw.Output()] != 1 {
		t.Fatalf("output node should count its sink: got %d", c[nw.Output()])
	}
	// Total connections: each op node contributes len(Inputs).
	total := 0
	for _, n := range nw.Nodes() {
		total += len(n.Inputs)
	}
	sum := 0
	for _, v := range c {
		sum += v
	}
	if sum != total+1 { // +1 for the sink
		t.Fatalf("consumer conservation: %d vs %d", sum, total+1)
	}
}

func TestBuilderErrors(t *testing.T) {
	nw := NewNetwork()
	if _, err := nw.AddSource(""); err == nil {
		t.Error("empty source name must fail")
	}
	nw.AddSource("u")
	if _, err := nw.AddSource("u"); err == nil {
		t.Error("duplicate source must fail")
	}
	if _, err := nw.AddFilter("bogus", "u"); err == nil {
		t.Error("unknown filter must fail")
	}
	if _, err := nw.AddFilter("add", "u"); err == nil {
		t.Error("wrong arity must fail")
	}
	if _, err := nw.AddFilter("add", "u", "nope"); err == nil {
		t.Error("missing input must fail")
	}
	if _, err := nw.AddFilter("source"); err == nil {
		t.Error("AddFilter(source) must fail")
	}
	if _, err := nw.AddFilter("const"); err == nil {
		t.Error("AddFilter(const) must fail")
	}
	if _, err := nw.AddFilter("decompose", "u"); err == nil {
		t.Error("AddFilter(decompose) must redirect to AddDecompose")
	}
	if _, err := nw.AddDecompose("u", 0); err == nil {
		t.Error("decomposing a scalar must fail")
	}
	if err := nw.Alias("a", "missing"); err == nil {
		t.Error("alias to missing node must fail")
	}
	if err := nw.Alias("u", "u"); err == nil {
		t.Error("alias colliding with node id must fail")
	}
	if err := nw.SetOutput("missing"); err == nil {
		t.Error("output to missing node must fail")
	}
}

func TestDecompose(t *testing.T) {
	nw := NewNetwork()
	for _, s := range []string{"u", "dims", "x", "y", "z"} {
		nw.AddSource(s)
	}
	g, err := nw.AddFilter("grad3d", "u", "dims", "x", "y", "z")
	if err != nil {
		t.Fatal(err)
	}
	if nw.Node(g).Width != 4 {
		t.Fatalf("grad3d output width = %d, want 4 (OpenCL float4)", nw.Node(g).Width)
	}
	d, err := nw.AddDecompose(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if nw.Node(d).Width != 1 || nw.Node(d).Comp != 2 {
		t.Fatalf("decompose node wrong: %+v", nw.Node(d))
	}
	if _, err := nw.AddDecompose(g, 4); err == nil {
		t.Error("component out of range must fail")
	}
	if _, err := nw.AddDecompose(g, -1); err == nil {
		t.Error("negative component must fail")
	}
	nw.SetOutput(d)
	if err := nw.Validate(); err != nil {
		t.Fatal(err)
	}
	// Vector values must not flow into elementwise math directly.
	if _, err := nw.AddFilter("sqrt", g); err == nil {
		// AddFilter doesn't width-check; Validate must catch it.
		if err := nw.Validate(); err == nil {
			t.Error("vector input to sqrt must fail validation")
		}
	}
}

func TestCSEDeduplicatesConstantsAndDecomposes(t *testing.T) {
	nw := NewNetwork()
	for _, s := range []string{"u", "dims", "x", "y", "z"} {
		nw.AddSource(s)
	}
	g1, _ := nw.AddFilter("grad3d", "u", "dims", "x", "y", "z")
	g2, _ := nw.AddFilter("grad3d", "u", "dims", "x", "y", "z") // duplicate
	c1 := nw.AddConst(0.5)
	c2 := nw.AddConst(0.5) // duplicate constant
	c3 := nw.AddConst(2.0) // distinct constant survives
	d1, _ := nw.AddDecompose(g1, 1)
	d2, _ := nw.AddDecompose(g2, 1) // duplicate after g2 -> g1
	d3, _ := nw.AddDecompose(g1, 2) // distinct component survives
	m1, _ := nw.AddFilter("mul", c1, d1)
	m2, _ := nw.AddFilter("mul", c2, d2) // duplicate after remaps
	a, _ := nw.AddFilter("add", m1, m2)
	b, _ := nw.AddFilter("mul", c3, d3)
	out, _ := nw.AddFilter("add", a, b)
	nw.SetOutput(out)

	n := nw.EliminateCommonSubexpressions()
	// Eliminated: g2, c2, d2, m2 = 4 nodes.
	if n != 4 {
		t.Fatalf("want 4 eliminated nodes, got %d", n)
	}
	if err := nw.Validate(); err != nil {
		t.Fatal(err)
	}
	// add(m1, m2) must now read m1 twice.
	addNode := nw.Node(a)
	if addNode.Inputs[0] != addNode.Inputs[1] {
		t.Fatalf("duplicate mul should collapse: %v", addNode.Inputs)
	}
	order, err := nw.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	grads, consts, decs := 0, 0, 0
	for _, nd := range order {
		switch nd.Filter {
		case "grad3d":
			grads++
		case "const":
			consts++
		case "decompose":
			decs++
		}
	}
	if grads != 1 || consts != 2 || decs != 2 {
		t.Fatalf("after CSE: grads=%d consts=%d decs=%d, want 1/2/2", grads, consts, decs)
	}
}

func TestCSEIsOrderSensitive(t *testing.T) {
	// The paper's "limited" CSE must NOT merge add(a, b) with add(b, a):
	// Q-criterion's s_1 and s_3 stay distinct kernels in Table II.
	nw := NewNetwork()
	nw.AddSource("a")
	nw.AddSource("b")
	x, _ := nw.AddFilter("add", "a", "b")
	y, _ := nw.AddFilter("add", "b", "a")
	out, _ := nw.AddFilter("mul", x, y)
	nw.SetOutput(out)
	if n := nw.EliminateCommonSubexpressions(); n != 0 {
		t.Fatalf("commuted adds must not merge, eliminated %d", n)
	}
}

func TestCSERemapsOutputAndAliases(t *testing.T) {
	nw := NewNetwork()
	nw.AddSource("a")
	x, _ := nw.AddFilter("sqrt", "a")
	y, _ := nw.AddFilter("sqrt", "a")
	nw.Alias("first", x)
	nw.Alias("second", y)
	nw.SetOutput(y)
	if n := nw.EliminateCommonSubexpressions(); n != 1 {
		t.Fatalf("want 1 eliminated, got %d", n)
	}
	if nw.Output() != x {
		t.Fatalf("output should remap to %q, got %q", x, nw.Output())
	}
	if nw.Node("second") != nw.Node("first") {
		t.Fatal("alias should remap to the surviving node")
	}
}

func TestScriptGolden(t *testing.T) {
	nw := NewNetwork()
	nw.AddSource("u")
	c := nw.AddConst(0.5)
	m, _ := nw.AddFilter("mul", c, "u")
	nw.Alias("half_u", m)
	nw.SetOutput(m)
	want := `# dataflow network specification (generated)
net = dfg.Network()
net.add_source("u")
t0 = net.add_const(0.5)
t1 = net.add_filter("mul", "t0", "u")
net.alias("half_u", "t1")
net.set_output("t1")
`
	if got := nw.Script(); got != want {
		t.Fatalf("script mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestScriptRoundTripMentionsEveryNode(t *testing.T) {
	nw := buildVelMag(t)
	s := nw.Script()
	for _, n := range nw.Nodes() {
		if !strings.Contains(s, n.ID) {
			t.Errorf("script missing node %q", n.ID)
		}
	}
}

func TestDot(t *testing.T) {
	nw := buildVelMag(t)
	dot := nw.Dot()
	if !strings.HasPrefix(dot, "digraph dataflow {") {
		t.Fatal("dot output must be a digraph")
	}
	for _, frag := range []string{`"u"`, `"v"`, `"w"`, "sqrt", "peripheries=2", "v_mag"} {
		if !strings.Contains(dot, frag) {
			t.Errorf("dot output missing %q", frag)
		}
	}
	// Edge count equals total input connections among live nodes.
	if got, want := strings.Count(dot, "->"), 11; got != want {
		t.Errorf("dot edges = %d, want %d", got, want)
	}
}

func TestRegistry(t *testing.T) {
	if len(Filters()) < 10 {
		t.Fatalf("registry too small: %v", Filters())
	}
	fi, ok := Lookup("grad3d")
	if !ok || fi.Class != ClassStencil || fi.Arity != 5 || fi.OutWidth != 4 {
		t.Fatalf("grad3d info wrong: %+v", fi)
	}
	if _, ok := Lookup("nonsense"); ok {
		t.Fatal("unknown filter must not resolve")
	}
	if !IsCallable("sqrt") || IsCallable("source") || IsCallable("const") || IsCallable("decompose") {
		t.Fatal("callability classification wrong")
	}
	for _, c := range []Class{ClassSource, ClassConst, ClassElementwise, ClassDecompose, ClassStencil} {
		if c.String() == "" || strings.HasPrefix(c.String(), "Class(") {
			t.Errorf("class %d must have a name", c)
		}
	}
	if !strings.Contains(Class(42).String(), "42") {
		t.Error("unknown class should embed the value")
	}
}

// TestRandomNetworksScheduleValidly is a property test: randomly built
// networks always topo-sort into an order where inputs precede users,
// and CSE never invalidates the network.
func TestRandomNetworksScheduleValidly(t *testing.T) {
	elementwise := []string{"add", "sub", "mul", "div", "min", "max"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nw := NewNetwork()
		ids := []string{}
		for i := 0; i < 3; i++ {
			id, _ := nw.AddSource(string(rune('a' + i)))
			ids = append(ids, id)
		}
		for i := 0; i < 5+rng.Intn(25); i++ {
			switch rng.Intn(4) {
			case 0:
				ids = append(ids, nw.AddConst(float64(rng.Intn(4))))
			case 1:
				id, err := nw.AddFilter("sqrt", ids[rng.Intn(len(ids))])
				if err != nil {
					return false
				}
				ids = append(ids, id)
			default:
				op := elementwise[rng.Intn(len(elementwise))]
				id, err := nw.AddFilter(op, ids[rng.Intn(len(ids))], ids[rng.Intn(len(ids))])
				if err != nil {
					return false
				}
				ids = append(ids, id)
			}
		}
		nw.SetOutput(ids[len(ids)-1])
		if err := nw.Validate(); err != nil {
			return false
		}
		nw.EliminateCommonSubexpressions()
		if err := nw.Validate(); err != nil {
			return false
		}
		order, err := nw.TopoOrder()
		if err != nil {
			return false
		}
		pos := map[string]int{}
		for i, n := range order {
			pos[n.ID] = i
		}
		for _, n := range order {
			for _, in := range n.Inputs {
				if pos[in] >= pos[n.ID] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestSealFreezesNetwork: every mutator panics on a sealed network,
// while read-side methods keep working — the immutability contract that
// lets compiled networks be shared across engines.
func TestSealFreezesNetwork(t *testing.T) {
	nw := NewNetwork()
	nw.AddSource("u")
	id, _ := nw.AddFilter("sqrt", "u")
	if err := nw.SetOutput(id); err != nil {
		t.Fatal(err)
	}
	if nw.Sealed() {
		t.Fatal("fresh network must not be sealed")
	}
	nw.Seal()
	nw.Seal() // idempotent
	if !nw.Sealed() {
		t.Fatal("Seal must stick")
	}

	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s on a sealed network must panic", name)
			}
		}()
		fn()
	}
	mustPanic("AddSource", func() { nw.AddSource("v") })
	mustPanic("AddConst", func() { nw.AddConst(1) })
	mustPanic("AddFilter", func() { nw.AddFilter("sqrt", "u") })
	mustPanic("AddDecompose", func() { nw.AddDecompose("u", 0) })
	mustPanic("Alias", func() { nw.Alias("a", id) })
	mustPanic("SetOutput", func() { nw.SetOutput(id) })
	mustPanic("CSE", func() { nw.EliminateCommonSubexpressions() })

	// Read-side still works.
	if err := nw.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.TopoOrder(); err != nil {
		t.Fatal(err)
	}
	if nw.Node(id) == nil || len(nw.Sources()) != 1 {
		t.Fatal("sealed network must stay readable")
	}
}
