package dataflow

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestNetworkJSONRoundTrip(t *testing.T) {
	nw := buildVelMag(t)
	data, err := json.Marshal(nw)
	if err != nil {
		t.Fatal(err)
	}
	back, err := NetworkFromJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	// Same script means same structure, aliases and output.
	if back.Script() != nw.Script() {
		t.Fatalf("round trip drifted:\n%s\nvs\n%s", back.Script(), nw.Script())
	}
	// The loaded network keeps working as a builder: new generic names
	// must not collide with loaded ones.
	id, err := back.AddFilter("mul", "u", "v")
	if err != nil {
		t.Fatal(err)
	}
	if back.Node(id) == nil || nw.Node(id) != nil && id == "" {
		t.Fatal("post-load build broken")
	}
	for _, n := range back.Nodes() {
		count := 0
		for _, m := range back.Nodes() {
			if m.ID == n.ID {
				count++
			}
		}
		if count != 1 {
			t.Fatalf("duplicate id %q after post-load build", n.ID)
		}
	}
}

func TestNetworkJSONRoundTripWithVectors(t *testing.T) {
	nw := NewNetwork()
	for _, s := range []string{"u", "dims", "x", "y", "z"} {
		nw.AddSource(s)
	}
	g, _ := nw.AddFilter("grad3d", "u", "dims", "x", "y", "z")
	d, _ := nw.AddDecompose(g, 2)
	c := nw.AddConst(0.5)
	m, _ := nw.AddFilter("mul", c, d)
	nw.Alias("halfgz", m)
	nw.SetOutput(m)

	data, err := json.Marshal(nw)
	if err != nil {
		t.Fatal(err)
	}
	back, err := NetworkFromJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Node(g).Width != 4 {
		t.Fatal("vector width lost in round trip")
	}
	if back.Node(d).Comp != 2 {
		t.Fatal("decompose component lost in round trip")
	}
	if back.Node(c).Value != 0.5 {
		t.Fatal("constant value lost in round trip")
	}
	if back.Node("halfgz") != back.Node(m) {
		t.Fatal("alias lost in round trip")
	}
}

func TestNetworkFromJSONErrors(t *testing.T) {
	cases := []string{
		"{",
		`{"nodes":[{"filter":"add"}]}`,          // missing id
		`{"nodes":[{"id":"a","filter":"wat"}]}`, // unknown filter
		`{"nodes":[{"id":"a","filter":"source"},{"id":"a","filter":"source"}]}`,     // duplicate
		`{"nodes":[{"id":"a","filter":"source"}],"aliases":{"x":"nope"}}`,           // dangling alias
		`{"nodes":[{"id":"a","filter":"source"}],"output":"nope"}`,                  // dangling output
		`{"nodes":[{"id":"t0","filter":"add","inputs":["t0","t0"]}],"output":"t0"}`, // self-cycle
	}
	for i, in := range cases {
		if _, err := NetworkFromJSON([]byte(in)); err == nil {
			t.Errorf("case %d: malformed spec must fail:\n%s", i, in)
		}
	}
}

func TestNetworkJSONShape(t *testing.T) {
	nw := NewNetwork()
	nw.AddSource("u")
	c := nw.AddConst(2)
	m, _ := nw.AddFilter("mul", c, "u")
	nw.SetOutput(m)
	data, err := json.Marshal(nw)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, frag := range []string{`"filter":"source"`, `"filter":"const"`, `"value":2`, `"output":"t1"`} {
		if !strings.Contains(s, frag) {
			t.Errorf("JSON missing %q:\n%s", frag, s)
		}
	}
}
