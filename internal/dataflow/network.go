package dataflow

import (
	"fmt"
	"sort"
	"strconv"
)

// Node is one module of a dataflow network: a source, a constant, or a
// filter invocation with named inputs.
type Node struct {
	// ID is the node's generic name ("t0", "t1", ...) or, for sources,
	// the host-provided array name ("u", "dims", ...).
	ID string
	// Filter names the primitive ("source", "const", "add", "grad3d", ...).
	Filter string
	// Inputs are the IDs of this node's input nodes, in argument order.
	Inputs []string
	// Value is the scalar for const nodes.
	Value float64
	// Comp is the selected component for decompose nodes.
	Comp int
	// Width is the node's output width in float32 components.
	Width int
}

// Info returns the node's filter metadata.
func (n *Node) Info() FilterInfo {
	fi, ok := Lookup(n.Filter)
	if !ok {
		panic(fmt.Sprintf("dataflow: node %q has unknown filter %q", n.ID, n.Filter))
	}
	return fi
}

// key returns the node's structural identity used by common
// sub-expression elimination: filter, parameters and exact input order.
// Input order matters — the paper's CSE is "limited" and does not exploit
// commutativity, which is what keeps the Table II counts intact.
func (n *Node) key() string {
	k := n.Filter
	if n.Filter == "const" {
		k += ":" + strconv.FormatFloat(n.Value, 'g', -1, 64)
	}
	if n.Filter == "decompose" {
		k += ":" + strconv.Itoa(n.Comp)
	}
	for _, in := range n.Inputs {
		k += "|" + in
	}
	return k
}

// Network is a dataflow network specification: an ordered list of nodes
// with exactly one designated output. Construction is "create and
// connect": every input named when a node is added must already exist,
// so a network is acyclic by construction (Validate re-checks anyway).
//
// A network has two phases: a single-goroutine construction phase, and —
// once Seal is called — an immutable execution phase. Sealed networks are
// safe to share across goroutines and engines; the expression front end
// seals every network it compiles.
type Network struct {
	nodes   []*Node
	byID    map[string]*Node
	aliases map[string]string // user name -> node ID (assignment statements)
	output  string
	// roots, when non-empty, designates multiple sinks (a super-network
	// merged from several expressions). roots[0] is always the primary
	// output, so every single-root consumer keeps working unchanged.
	roots  []string
	nextID int
	sealed bool
}

// NewNetwork creates an empty network.
func NewNetwork() *Network {
	return &Network{
		byID:    make(map[string]*Node),
		aliases: make(map[string]string),
	}
}

// Seal freezes the network: any subsequent mutation (adding nodes,
// aliasing, changing the output, or running CSE) panics. Sealing is what
// makes a compiled network shareable — engines, strategies and the
// shared compile cache all read sealed networks concurrently without
// locking. Sealing twice is a no-op.
func (nw *Network) Seal() { nw.sealed = true }

// Sealed reports whether the network has been frozen.
func (nw *Network) Sealed() bool { return nw.sealed }

// mustMutable panics if the network is sealed. Mutating a sealed network
// is a programming error (it would race with concurrent readers), not a
// recoverable condition.
func (nw *Network) mustMutable(op string) {
	if nw.sealed {
		panic("dataflow: " + op + " on a sealed network")
	}
}

// genID mints the next generic node name.
func (nw *Network) genID() string {
	id := "t" + strconv.Itoa(nw.nextID)
	nw.nextID++
	return id
}

// AddSource declares a named host-provided input array and returns its
// node ID (the source's own name).
func (nw *Network) AddSource(name string) (string, error) {
	nw.mustMutable("AddSource")
	if name == "" {
		return "", fmt.Errorf("dataflow: source needs a name")
	}
	if _, dup := nw.byID[name]; dup {
		return "", fmt.Errorf("dataflow: duplicate node id %q", name)
	}
	n := &Node{ID: name, Filter: "source", Width: 1}
	nw.nodes = append(nw.nodes, n)
	nw.byID[name] = n
	return name, nil
}

// AddConst adds a scalar constant source and returns its node ID.
func (nw *Network) AddConst(v float64) string {
	nw.mustMutable("AddConst")
	n := &Node{ID: nw.genID(), Filter: "const", Value: v, Width: 1}
	nw.nodes = append(nw.nodes, n)
	nw.byID[n.ID] = n
	return n.ID
}

// AddFilter adds a filter invocation on existing nodes and returns the
// new node's generic ID. Input names may be user aliases; they are
// resolved to node IDs.
func (nw *Network) AddFilter(filter string, inputs ...string) (string, error) {
	nw.mustMutable("AddFilter")
	fi, ok := Lookup(filter)
	if !ok {
		return "", fmt.Errorf("dataflow: unknown filter %q", filter)
	}
	if fi.Class == ClassSource || fi.Class == ClassConst {
		return "", fmt.Errorf("dataflow: use AddSource/AddConst for %q", filter)
	}
	if filter == "decompose" {
		return "", fmt.Errorf("dataflow: use AddDecompose for component selection")
	}
	if len(inputs) != fi.Arity {
		return "", fmt.Errorf("dataflow: filter %q takes %d inputs, got %d", filter, fi.Arity, len(inputs))
	}
	resolved, err := nw.resolveAll(filter, inputs)
	if err != nil {
		return "", err
	}
	n := &Node{ID: nw.genID(), Filter: filter, Inputs: resolved, Width: fi.OutWidth}
	nw.nodes = append(nw.nodes, n)
	nw.byID[n.ID] = n
	return n.ID, nil
}

// AddDecompose adds a component selection of a vector-valued node
// (the parser's translation of the bracket syntax, e.g. du[1]).
func (nw *Network) AddDecompose(input string, comp int) (string, error) {
	nw.mustMutable("AddDecompose")
	resolved, err := nw.resolve(input)
	if err != nil {
		return "", err
	}
	in := nw.byID[resolved]
	if in.Width < 2 {
		return "", fmt.Errorf("dataflow: cannot decompose scalar node %q", input)
	}
	if comp < 0 || comp >= in.Width {
		return "", fmt.Errorf("dataflow: component %d out of range for %q (width %d)", comp, input, in.Width)
	}
	n := &Node{ID: nw.genID(), Filter: "decompose", Inputs: []string{resolved}, Comp: comp, Width: 1}
	nw.nodes = append(nw.nodes, n)
	nw.byID[n.ID] = n
	return n.ID, nil
}

// Alias binds a user-provided name (the left side of an assignment
// statement) to a node. Re-binding an existing alias is allowed, as in
// sequential assignment semantics.
func (nw *Network) Alias(name, id string) error {
	nw.mustMutable("Alias")
	resolved, err := nw.resolve(id)
	if err != nil {
		return err
	}
	if _, isNode := nw.byID[name]; isNode {
		return fmt.Errorf("dataflow: alias %q collides with a node id", name)
	}
	nw.aliases[name] = resolved
	return nil
}

// SetOutput designates the network's sink. It resets any multi-root
// set: a network is either single-output (SetOutput) or multi-root
// (SetRoots), never an inconsistent mix.
func (nw *Network) SetOutput(name string) error {
	nw.mustMutable("SetOutput")
	resolved, err := nw.resolve(name)
	if err != nil {
		return err
	}
	nw.output = resolved
	nw.roots = nil
	return nil
}

// SetRoots designates multiple sinks at once — the super-network form a
// batch merge produces. The first root becomes the primary output, so
// Output() and every single-root code path stay meaningful. Names may be
// node IDs or aliases; duplicates are collapsed (two merged expressions
// whose outputs CSE'd into one node share a root).
func (nw *Network) SetRoots(names ...string) error {
	nw.mustMutable("SetRoots")
	if len(names) == 0 {
		return fmt.Errorf("dataflow: SetRoots needs at least one root")
	}
	resolved := make([]string, 0, len(names))
	seen := make(map[string]bool, len(names))
	for _, nm := range names {
		id, err := nw.resolve(nm)
		if err != nil {
			return err
		}
		if seen[id] {
			continue
		}
		seen[id] = true
		resolved = append(resolved, id)
	}
	nw.roots = resolved
	nw.output = resolved[0]
	return nil
}

// Roots returns the network's sinks: the explicit multi-root set when
// one was declared via SetRoots, else the single output (or nil when no
// output is set). The returned slice must not be mutated.
func (nw *Network) Roots() []string {
	if len(nw.roots) > 0 {
		return nw.roots
	}
	if nw.output == "" {
		return nil
	}
	return []string{nw.output}
}

// MultiRoot reports whether the network carries more than one sink.
func (nw *Network) MultiRoot() bool { return len(nw.roots) > 1 }

// Output returns the node ID of the designated sink ("" if unset).
func (nw *Network) Output() string { return nw.output }

// OutputNode returns the sink node, or nil if unset.
func (nw *Network) OutputNode() *Node {
	if nw.output == "" {
		return nil
	}
	return nw.byID[nw.output]
}

// resolve maps a name (node ID or user alias) to a node ID.
func (nw *Network) resolve(name string) (string, error) {
	if _, ok := nw.byID[name]; ok {
		return name, nil
	}
	if id, ok := nw.aliases[name]; ok {
		return id, nil
	}
	return "", fmt.Errorf("dataflow: unknown node or alias %q", name)
}

func (nw *Network) resolveAll(filter string, names []string) ([]string, error) {
	out := make([]string, len(names))
	for i, nm := range names {
		id, err := nw.resolve(nm)
		if err != nil {
			return nil, fmt.Errorf("%w (input %d of %q)", err, i, filter)
		}
		out[i] = id
	}
	return out, nil
}

// Node returns the node with the given ID or alias, or nil.
func (nw *Network) Node(name string) *Node {
	id, err := nw.resolve(name)
	if err != nil {
		return nil
	}
	return nw.byID[id]
}

// NodeByID returns the node with exactly the given ID (no alias
// fallback), or nil.
func (nw *Network) NodeByID(id string) *Node { return nw.byID[id] }

// Nodes returns the nodes in construction order (a valid topological
// order, since inputs must exist when a node is added).
func (nw *Network) Nodes() []*Node { return nw.nodes }

// Len returns the number of nodes.
func (nw *Network) Len() int { return len(nw.nodes) }

// Sources returns the source nodes in construction order.
func (nw *Network) Sources() []*Node {
	var out []*Node
	for _, n := range nw.nodes {
		if n.Filter == "source" {
			out = append(out, n)
		}
	}
	return out
}

// Aliases returns a copy of the user-name bindings, sorted by name.
func (nw *Network) Aliases() [][2]string {
	out := make([][2]string, 0, len(nw.aliases))
	for name, id := range nw.aliases {
		out = append(out, [2]string{name, id})
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// Consumers returns, for every node ID, how many input connections read
// it, with the network output counted as one extra consumer of the sink.
// Strategies use these counts to release intermediate device buffers as
// soon as they drain — the paper's reference-counting design.
func (nw *Network) Consumers() map[string]int {
	counts := make(map[string]int, len(nw.nodes))
	for _, n := range nw.nodes {
		for _, in := range n.Inputs {
			counts[in]++
		}
	}
	for _, r := range nw.Roots() {
		counts[r]++
	}
	return counts
}

// TopoOrder returns the live nodes (those that reach the output) in a
// valid execution order, using Kahn's algorithm over the dependency
// graph. The order is stable with respect to construction order. An
// error is reported if the output is unset or a cycle is detected
// (impossible through the builder API, but specs may be hand-built).
func (nw *Network) TopoOrder() ([]*Node, error) {
	if nw.output == "" {
		return nil, fmt.Errorf("dataflow: network has no output")
	}
	live := nw.liveSet()

	// Build edge lists in construction order so the schedule — and
	// everything derived from it, like generated kernel source — is
	// deterministic.
	indeg := make(map[string]int, len(live))
	dependents := make(map[string][]string, len(live))
	for _, n := range nw.nodes {
		if !live[n.ID] {
			continue
		}
		for _, in := range n.Inputs {
			if live[in] {
				indeg[n.ID]++
				dependents[in] = append(dependents[in], n.ID)
			}
		}
	}
	var order []*Node
	// Ready queue in construction order for stability.
	for _, n := range nw.nodes {
		if live[n.ID] && indeg[n.ID] == 0 {
			order = append(order, n)
		}
	}
	for i := 0; i < len(order); i++ {
		for _, dep := range dependents[order[i].ID] {
			indeg[dep]--
			if indeg[dep] == 0 {
				order = append(order, nw.byID[dep])
			}
		}
	}
	liveCount := len(live)
	if len(order) != liveCount {
		return nil, fmt.Errorf("dataflow: cycle detected (%d of %d nodes schedulable)", len(order), liveCount)
	}
	return order, nil
}

// liveSet marks every node reachable backwards from any root (the
// single output, or every sink of a multi-root super-network).
func (nw *Network) liveSet() map[string]bool {
	live := make(map[string]bool)
	var visit func(id string)
	visit = func(id string) {
		if live[id] {
			return
		}
		live[id] = true
		n := nw.byID[id]
		if n == nil {
			return
		}
		for _, in := range n.Inputs {
			visit(in)
		}
	}
	for _, r := range nw.Roots() {
		visit(r)
	}
	return live
}

// Validate checks structural integrity: known filters, existing inputs,
// correct arities, width agreement, and an acyclic live graph.
func (nw *Network) Validate() error {
	for _, n := range nw.nodes {
		fi, ok := Lookup(n.Filter)
		if !ok {
			return fmt.Errorf("dataflow: node %q: unknown filter %q", n.ID, n.Filter)
		}
		if len(n.Inputs) != fi.Arity {
			return fmt.Errorf("dataflow: node %q: filter %q takes %d inputs, got %d", n.ID, n.Filter, fi.Arity, len(n.Inputs))
		}
		for _, in := range n.Inputs {
			inNode, ok := nw.byID[in]
			if !ok {
				return fmt.Errorf("dataflow: node %q: missing input %q", n.ID, in)
			}
			// Vector-typed values flow only into decompose and vector
			// ops; elementwise math and stencil inputs (field, dims,
			// coords) are scalar.
			switch fi.Class {
			case ClassElementwise, ClassStencil:
				if inNode.Width != 1 {
					return fmt.Errorf("dataflow: node %q: input %q has width %d, want 1", n.ID, in, inNode.Width)
				}
			case ClassVectorOp:
				if inNode.Width < 2 {
					return fmt.Errorf("dataflow: node %q: %s needs a vector-typed input, %q has width %d", n.ID, n.Filter, in, inNode.Width)
				}
			}
		}
		if n.Filter == "decompose" {
			in := nw.byID[n.Inputs[0]]
			if n.Comp < 0 || n.Comp >= in.Width {
				return fmt.Errorf("dataflow: node %q: component %d out of range (width %d)", n.ID, n.Comp, in.Width)
			}
		}
	}
	if nw.output != "" {
		if _, err := nw.TopoOrder(); err != nil {
			return err
		}
	}
	return nil
}
