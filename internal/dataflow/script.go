package dataflow

import (
	"fmt"
	"strings"
)

// Script renders the network as the sequence of network-definition API
// calls that would rebuild it — the paper's optional "Python script that
// outlines all API calls, which can be inspected by the user". The
// emitted text mirrors the original framework's Python flavour.
func (nw *Network) Script() string {
	var b strings.Builder
	b.WriteString("# dataflow network specification (generated)\n")
	b.WriteString("net = dfg.Network()\n")
	for _, n := range nw.nodes {
		switch n.Filter {
		case "source":
			fmt.Fprintf(&b, "net.add_source(%q)\n", n.ID)
		case "const":
			fmt.Fprintf(&b, "%s = net.add_const(%g)\n", n.ID, n.Value)
		case "decompose":
			fmt.Fprintf(&b, "%s = net.add_decompose(%q, %d)\n", n.ID, n.Inputs[0], n.Comp)
		default:
			args := make([]string, 0, len(n.Inputs)+1)
			args = append(args, fmt.Sprintf("%q", n.Filter))
			for _, in := range n.Inputs {
				args = append(args, fmt.Sprintf("%q", in))
			}
			fmt.Fprintf(&b, "%s = net.add_filter(%s)\n", n.ID, strings.Join(args, ", "))
		}
	}
	for _, a := range nw.Aliases() {
		fmt.Fprintf(&b, "net.alias(%q, %q)\n", a[0], a[1])
	}
	if nw.output != "" {
		fmt.Fprintf(&b, "net.set_output(%q)\n", nw.output)
	}
	return b.String()
}

// Dot renders the live network in Graphviz DOT form — the layout behind
// the paper's Figure 4 illustration of the Q-criterion network. Sources
// are boxes, filters are ellipses, the output node is doubled.
func (nw *Network) Dot() string {
	var b strings.Builder
	b.WriteString("digraph dataflow {\n  rankdir=TB;\n")
	order, err := nw.TopoOrder()
	if err != nil {
		// Fall back to every node if no output is set.
		order = nw.nodes
	}
	names := make(map[string]string, len(nw.aliases))
	for _, a := range nw.Aliases() {
		names[a[1]] = a[0]
	}
	for _, n := range order {
		label := n.Filter
		switch n.Filter {
		case "source":
			label = n.ID
		case "const":
			label = fmt.Sprintf("%g", n.Value)
		case "decompose":
			label = fmt.Sprintf("[%d]", n.Comp)
		}
		if user, ok := names[n.ID]; ok {
			label += "\\n" + user
		}
		shape := "ellipse"
		if n.Filter == "source" || n.Filter == "const" {
			shape = "box"
		}
		peripheries := 1
		if n.ID == nw.output {
			peripheries = 2
		}
		fmt.Fprintf(&b, "  %q [label=%q, shape=%s, peripheries=%d];\n", n.ID, label, shape, peripheries)
		for _, in := range n.Inputs {
			fmt.Fprintf(&b, "  %q -> %q;\n", in, n.ID)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
