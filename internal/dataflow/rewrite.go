package dataflow

import "fmt"

// This file is the network's rewrite surface: the primitive mutations an
// optimisation pass (internal/passes) composes into whole-network
// transformations. Everything here obeys the same mutability discipline
// as the builder API — rewriting a sealed network panics — and leaves
// the network in a state where construction order is still a valid
// topological order, which every later layer (strategies, codegen)
// relies on.

// Key returns the node's structural identity: filter, parameters and
// exact input order. Two nodes with equal keys compute identical values,
// which is the equivalence CSE-style passes merge on.
func (n *Node) Key() string { return n.key() }

// ApplyRemap redirects every reference — node inputs, the output, and
// user aliases — through subst, chasing chains (a->b, b->c) to their
// final target. Nodes themselves are not removed; pair with RemoveNodes.
// A cyclic substitution panics (it is a programming error in the pass).
func (nw *Network) ApplyRemap(subst map[string]string) {
	nw.mustMutable("ApplyRemap")
	if len(subst) == 0 {
		return
	}
	resolve := func(id string) string {
		for hops := 0; ; hops++ {
			r, ok := subst[id]
			if !ok {
				return id
			}
			if hops > len(subst) {
				panic("dataflow: ApplyRemap substitution cycle at " + id)
			}
			id = r
		}
	}
	for _, n := range nw.nodes {
		for i, in := range n.Inputs {
			n.Inputs[i] = resolve(in)
		}
	}
	if nw.output != "" {
		nw.output = resolve(nw.output)
	}
	if len(nw.roots) > 0 {
		// Remap the root set, collapsing roots a rewrite merged into one
		// node (cross-expression CSE can unify two members' outputs).
		kept := nw.roots[:0]
		seen := make(map[string]bool, len(nw.roots))
		for _, r := range nw.roots {
			r = resolve(r)
			if !seen[r] {
				seen[r] = true
				kept = append(kept, r)
			}
		}
		nw.roots = kept
		nw.output = kept[0]
	}
	for name, id := range nw.aliases {
		nw.aliases[name] = resolve(id)
	}
}

// RemoveNodes deletes the identified nodes, preserving the construction
// order of the survivors. References to a removed node must have been
// redirected first (ApplyRemap) — except aliases, which are dropped when
// they still point at a removed node. Removing the output is an error.
func (nw *Network) RemoveNodes(ids []string) error {
	nw.mustMutable("RemoveNodes")
	if len(ids) == 0 {
		return nil
	}
	dead := make(map[string]bool, len(ids))
	for _, id := range ids {
		dead[id] = true
	}
	if dead[nw.output] {
		return fmt.Errorf("dataflow: cannot remove output node %q", nw.output)
	}
	for _, r := range nw.roots {
		if dead[r] {
			return fmt.Errorf("dataflow: cannot remove root node %q", r)
		}
	}
	kept := nw.nodes[:0]
	for _, n := range nw.nodes {
		if dead[n.ID] {
			delete(nw.byID, n.ID)
			continue
		}
		kept = append(kept, n)
	}
	nw.nodes = kept
	for name, id := range nw.aliases {
		if dead[id] {
			delete(nw.aliases, name)
		}
	}
	return nil
}

// RewriteToConst mutates the identified node in place into a scalar
// constant, keeping its ID and position (and therefore the topological
// order of everything downstream).
func (nw *Network) RewriteToConst(id string, v float64) error {
	nw.mustMutable("RewriteToConst")
	n := nw.byID[id]
	if n == nil {
		return fmt.Errorf("dataflow: RewriteToConst: unknown node %q", id)
	}
	n.Filter = "const"
	n.Value = v
	n.Inputs = nil
	n.Comp = 0
	n.Width = 1
	return nil
}

// RewriteToFilter mutates the identified node in place into an
// invocation of filter over inputs (node IDs, not aliases), keeping its
// ID and position. The caller must ensure every input node precedes the
// rewritten node in construction order — in-place rewrites may only
// point backwards, or the order stops being topological (the debug
// invariant checks in internal/passes catch violations).
func (nw *Network) RewriteToFilter(id, filter string, inputs []string, comp int) error {
	nw.mustMutable("RewriteToFilter")
	n := nw.byID[id]
	if n == nil {
		return fmt.Errorf("dataflow: RewriteToFilter: unknown node %q", id)
	}
	fi, ok := Lookup(filter)
	if !ok {
		return fmt.Errorf("dataflow: RewriteToFilter: unknown filter %q", filter)
	}
	if len(inputs) != fi.Arity {
		return fmt.Errorf("dataflow: RewriteToFilter: filter %q takes %d inputs, got %d", filter, fi.Arity, len(inputs))
	}
	for _, in := range inputs {
		if _, ok := nw.byID[in]; !ok {
			return fmt.Errorf("dataflow: RewriteToFilter: missing input %q", in)
		}
	}
	n.Filter = filter
	n.Inputs = append([]string(nil), inputs...)
	n.Value = 0
	n.Comp = comp
	n.Width = fi.OutWidth
	return nil
}
