// Package dataflow implements the framework's dataflow network: the
// specification produced by the expression parser and consumed by the
// execution strategies. Networks are "create and connect" pipelines of
// sources, filters and one sink, with topological scheduling, reference
// counting of intermediates, constant pooling and limited common
// sub-expression elimination — the design described in Section III-B of
// the paper.
package dataflow

import "fmt"

// Class partitions filters by the execution machinery they need. The
// distinction drives Table II's event counts: decompose is free on the
// host (roundtrip) but needs a kernel on the device (staged); constants
// are host-filled buffers (roundtrip), device fill kernels (staged) or
// source literals (fusion); stencil filters need whole global arrays.
type Class int

const (
	// ClassSource is a named input array provided by the host
	// application (a mesh field, coordinate array, or dims descriptor).
	ClassSource Class = iota
	// ClassConst is a scalar constant source.
	ClassConst
	// ClassElementwise is a pure per-element function of its inputs.
	ClassElementwise
	// ClassDecompose selects one component of a vector-typed value.
	ClassDecompose
	// ClassStencil reads neighbouring elements of a global array
	// (grad3d); its array input must live in device global memory.
	ClassStencil
	// ClassVectorOp is a per-element function of one vector-typed value
	// (norm); like decompose, it bridges vector results back to scalars.
	ClassVectorOp
)

// String names the class for diagnostics.
func (c Class) String() string {
	switch c {
	case ClassSource:
		return "source"
	case ClassConst:
		return "const"
	case ClassElementwise:
		return "elementwise"
	case ClassDecompose:
		return "decompose"
	case ClassStencil:
		return "stencil"
	case ClassVectorOp:
		return "vectorop"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// FilterInfo describes one primitive in the building-block library.
type FilterInfo struct {
	Name     string
	Class    Class
	Arity    int // number of input connections
	OutWidth int // float32 components per output element (1, 2 or 4)
}

// registry is the library of supported primitives — the paper's "subset
// of operations necessary to support the expressions explored": basic
// math, square root, vector decomposition and the 3-D rectilinear mesh
// field gradient, plus a few cheap extensions (neg, div, min, max, abs).
var registry = map[string]FilterInfo{
	"source":    {Name: "source", Class: ClassSource, Arity: 0, OutWidth: 1},
	"const":     {Name: "const", Class: ClassConst, Arity: 0, OutWidth: 1},
	"add":       {Name: "add", Class: ClassElementwise, Arity: 2, OutWidth: 1},
	"sub":       {Name: "sub", Class: ClassElementwise, Arity: 2, OutWidth: 1},
	"mul":       {Name: "mul", Class: ClassElementwise, Arity: 2, OutWidth: 1},
	"div":       {Name: "div", Class: ClassElementwise, Arity: 2, OutWidth: 1},
	"min":       {Name: "min", Class: ClassElementwise, Arity: 2, OutWidth: 1},
	"max":       {Name: "max", Class: ClassElementwise, Arity: 2, OutWidth: 1},
	"sqrt":      {Name: "sqrt", Class: ClassElementwise, Arity: 1, OutWidth: 1},
	"neg":       {Name: "neg", Class: ClassElementwise, Arity: 1, OutWidth: 1},
	"abs":       {Name: "abs", Class: ClassElementwise, Arity: 1, OutWidth: 1},
	"decompose": {Name: "decompose", Class: ClassDecompose, Arity: 1, OutWidth: 1},
	// grad3d(field, dims, x, y, z) -> float4 gradient per cell.
	"grad3d": {Name: "grad3d", Class: ClassStencil, Arity: 5, OutWidth: 4},
	// Single-axis gradients: the same stencil restricted to one lane of
	// the float4 result. The optimiser's decompose-forwarding pass
	// rewrites decompose(grad3d(...), axis) into these; the parser never
	// creates them directly, so Paper-level networks are unaffected.
	"grad3dx": {Name: "grad3dx", Class: ClassStencil, Arity: 5, OutWidth: 1},
	"grad3dy": {Name: "grad3dy", Class: ClassStencil, Arity: 5, OutWidth: 1},
	"grad3dz": {Name: "grad3dz", Class: ClassStencil, Arity: 5, OutWidth: 1},
	// Comparisons produce 1.0 or 0.0, feeding select — the conditional
	// support the paper's introduction example sketches.
	"gt": {Name: "gt", Class: ClassElementwise, Arity: 2, OutWidth: 1},
	"lt": {Name: "lt", Class: ClassElementwise, Arity: 2, OutWidth: 1},
	"ge": {Name: "ge", Class: ClassElementwise, Arity: 2, OutWidth: 1},
	"le": {Name: "le", Class: ClassElementwise, Arity: 2, OutWidth: 1},
	"eq": {Name: "eq", Class: ClassElementwise, Arity: 2, OutWidth: 1},
	"ne": {Name: "ne", Class: ClassElementwise, Arity: 2, OutWidth: 1},
	// select(cond, a, b) = cond != 0 ? a : b.
	"select": {Name: "select", Class: ClassElementwise, Arity: 3, OutWidth: 1},
	// Transcendental functions, rounding out the calculator set users
	// of VisIt-style expression languages expect.
	"exp": {Name: "exp", Class: ClassElementwise, Arity: 1, OutWidth: 1},
	"log": {Name: "log", Class: ClassElementwise, Arity: 1, OutWidth: 1},
	"sin": {Name: "sin", Class: ClassElementwise, Arity: 1, OutWidth: 1},
	"cos": {Name: "cos", Class: ClassElementwise, Arity: 1, OutWidth: 1},
	"pow": {Name: "pow", Class: ClassElementwise, Arity: 2, OutWidth: 1},
	// norm(v) = length of a vector-typed value's leading 3 lanes.
	"norm": {Name: "norm", Class: ClassVectorOp, Arity: 1, OutWidth: 1},
}

// Lookup returns the filter info for a primitive name.
func Lookup(name string) (FilterInfo, bool) {
	fi, ok := registry[name]
	return fi, ok
}

// Filters returns the names of all registered primitives (unordered).
func Filters() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	return out
}

// IsCallable reports whether name is a primitive users may invoke as a
// function in expressions (sources and consts are created by the parser,
// not called).
func IsCallable(name string) bool {
	fi, ok := registry[name]
	return ok && fi.Class != ClassSource && fi.Class != ClassConst && fi.Class != ClassDecompose
}
