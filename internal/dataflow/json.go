package dataflow

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// jsonSpec is the on-wire form of a network specification: the parser's
// output can be saved, shipped between processes (the original system
// passed specifications from the Python front end to the execution
// layer), and reloaded.
type jsonSpec struct {
	Nodes   []jsonNode        `json:"nodes"`
	Aliases map[string]string `json:"aliases,omitempty"`
	Output  string            `json:"output,omitempty"`
}

// jsonNode mirrors Node with omit-empty encoding.
type jsonNode struct {
	ID     string   `json:"id"`
	Filter string   `json:"filter"`
	Inputs []string `json:"inputs,omitempty"`
	Value  float64  `json:"value,omitempty"`
	Comp   int      `json:"comp,omitempty"`
	Width  int      `json:"width"`
}

// MarshalJSON encodes the network specification.
func (nw *Network) MarshalJSON() ([]byte, error) {
	spec := jsonSpec{Output: nw.output}
	for _, n := range nw.nodes {
		spec.Nodes = append(spec.Nodes, jsonNode{
			ID: n.ID, Filter: n.Filter, Inputs: n.Inputs,
			Value: n.Value, Comp: n.Comp, Width: n.Width,
		})
	}
	if len(nw.aliases) > 0 {
		spec.Aliases = make(map[string]string, len(nw.aliases))
		for name, id := range nw.aliases {
			spec.Aliases[name] = id
		}
	}
	return json.Marshal(spec)
}

// NetworkFromJSON decodes and validates a network specification. The
// returned network is fully usable, including further building (the
// generic-name counter resumes past the highest loaded t<N> id).
func NetworkFromJSON(data []byte) (*Network, error) {
	var spec jsonSpec
	if err := json.Unmarshal(data, &spec); err != nil {
		return nil, fmt.Errorf("dataflow: bad network JSON: %w", err)
	}
	nw := NewNetwork()
	for _, jn := range spec.Nodes {
		if jn.ID == "" {
			return nil, fmt.Errorf("dataflow: node without id in JSON spec")
		}
		if _, dup := nw.byID[jn.ID]; dup {
			return nil, fmt.Errorf("dataflow: duplicate node id %q in JSON spec", jn.ID)
		}
		fi, ok := Lookup(jn.Filter)
		if !ok {
			return nil, fmt.Errorf("dataflow: node %q: unknown filter %q", jn.ID, jn.Filter)
		}
		width := jn.Width
		if width == 0 {
			width = fi.OutWidth
		}
		n := &Node{
			ID: jn.ID, Filter: jn.Filter, Inputs: jn.Inputs,
			Value: jn.Value, Comp: jn.Comp, Width: width,
		}
		nw.nodes = append(nw.nodes, n)
		nw.byID[n.ID] = n
		// Resume the generic-name counter beyond loaded t<N> ids.
		if rest, found := strings.CutPrefix(jn.ID, "t"); found {
			if num, err := strconv.Atoi(rest); err == nil && num >= nw.nextID {
				nw.nextID = num + 1
			}
		}
	}
	for name, id := range spec.Aliases {
		if _, ok := nw.byID[id]; !ok {
			return nil, fmt.Errorf("dataflow: alias %q points at unknown node %q", name, id)
		}
		nw.aliases[name] = id
	}
	if spec.Output != "" {
		if err := nw.SetOutput(spec.Output); err != nil {
			return nil, err
		}
	}
	if err := nw.Validate(); err != nil {
		return nil, err
	}
	return nw, nil
}
