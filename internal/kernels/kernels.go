// Package kernels is the framework's library of derived-field primitive
// building blocks. Each primitive is written once — as a small OpenCL C
// source function plus the equivalent executable body for the simulated
// device — and shared by all execution strategies, exactly as in the
// paper: roundtrip and staged dispatch the standalone kernels below,
// while the fusion code generator composes the same primitives into a
// single generated kernel (see internal/codegen).
package kernels

import (
	"fmt"
	"math"

	"dfg/internal/ocl"
)

// Costs per element for the simulated device's timing model.
var (
	costBinary    = ocl.Cost{Flops: 1, LoadBytes: 8, StoreBytes: 4}
	costUnary     = ocl.Cost{Flops: 2, LoadBytes: 4, StoreBytes: 4}
	costDecompose = ocl.Cost{Flops: 0, LoadBytes: 16, StoreBytes: 4}
	costConstFill = ocl.Cost{Flops: 0, LoadBytes: 0, StoreBytes: 4}
	// grad3d: three axes of neighbour loads plus coordinate lookups and
	// a float4 store.
	costGrad3D = ocl.Cost{Flops: 15, LoadBytes: 40, StoreBytes: 16}
)

// GradCost exposes the gradient's per-element cost to the fusion
// generator, which sums primitive costs when composing kernels.
func GradCost() ocl.Cost { return costGrad3D }

// BinaryCost, UnaryCost, DecomposeCost and ConstFillCost likewise expose
// the element costs of the simple primitives.
func BinaryCost() ocl.Cost    { return costBinary }
func UnaryCost() ocl.Cost     { return costUnary }
func DecomposeCost() ocl.Cost { return costDecompose }
func ConstFillCost() ocl.Cost { return costConstFill }

// binarySrc renders the OpenCL C source of a two-input elementwise
// kernel whose body is the given C expression over a[i] and b[i].
func binarySrc(name, expr string) string {
	return fmt.Sprintf(`// dfg primitive: %[1]s
__kernel void k%[1]s(__global const float *a,
                     __global const float *b,
                     __global float *out)
{
    int gid = get_global_id(0);
    out[gid] = %[2]s;
}
`, name, expr)
}

// unarySrc renders the OpenCL C source of a one-input elementwise kernel.
func unarySrc(name, expr string) string {
	return fmt.Sprintf(`// dfg primitive: %[1]s
__kernel void k%[1]s(__global const float *a,
                     __global float *out)
{
    int gid = get_global_id(0);
    out[gid] = %[2]s;
}
`, name, expr)
}

// binary builds a standalone two-input elementwise kernel.
// Buffers: a, b, out.
func binary(name, srcExpr string, f func(a, b float32) float32) *ocl.Kernel {
	return &ocl.Kernel{
		Name:    "k" + name,
		Source:  binarySrc(name, srcExpr),
		NumBufs: 3,
		Cost:    costBinary,
		Fn: func(lo, hi int, bufs []ocl.View, _ []float64) {
			a, b, out := bufs[0].Data, bufs[1].Data, bufs[2].Data
			for i := lo; i < hi; i++ {
				out[i] = f(a[i], b[i])
			}
		},
	}
}

// unary builds a standalone one-input elementwise kernel.
// Buffers: a, out.
func unary(name, srcExpr string, f func(a float32) float32) *ocl.Kernel {
	return &ocl.Kernel{
		Name:    "k" + name,
		Source:  unarySrc(name, srcExpr),
		NumBufs: 2,
		Cost:    costUnary,
		Fn: func(lo, hi int, bufs []ocl.View, _ []float64) {
			a, out := bufs[0].Data, bufs[1].Data
			for i := lo; i < hi; i++ {
				out[i] = f(a[i])
			}
		},
	}
}

// Decompose builds the component-selection kernel used by the staged
// strategy to move one lane of a vector-typed intermediate into a scalar
// array on the device. Buffers: in (vector-typed), out (scalar).
// Scalars: [0] = component index.
func Decompose() *ocl.Kernel {
	return &ocl.Kernel{
		Name: "kdecompose",
		Source: `// dfg primitive: decompose (vector component selection)
__kernel void kdecompose(__global const float4 *a,
                         __global float *out,
                         const int comp)
{
    int gid = get_global_id(0);
    float4 v = a[gid];
    switch (comp) {
    case 0: out[gid] = v.s0; break;
    case 1: out[gid] = v.s1; break;
    case 2: out[gid] = v.s2; break;
    default: out[gid] = v.s3; break;
    }
}
`,
		NumBufs: 2,
		Cost:    costDecompose,
		Fn: func(lo, hi int, bufs []ocl.View, scalars []float64) {
			in, out := bufs[0], bufs[1].Data
			comp := int(scalars[0])
			w := in.Width
			for i := lo; i < hi; i++ {
				out[i] = in.Data[i*w+comp]
			}
		},
	}
}

// ConstFill builds the device fill kernel the staged strategy uses to
// realize a constant source without a host transfer. Buffers: out.
// Scalars: [0] = the constant.
func ConstFill() *ocl.Kernel {
	return &ocl.Kernel{
		Name: "kconst_fill",
		Source: `// dfg primitive: constant source fill
__kernel void kconst_fill(__global float *out, const float value)
{
    out[get_global_id(0)] = value;
}
`,
		NumBufs: 1,
		Cost:    costConstFill,
		Fn: func(lo, hi int, bufs []ocl.View, scalars []float64) {
			out := bufs[0].Data
			v := float32(scalars[0])
			for i := lo; i < hi; i++ {
				out[i] = v
			}
		},
	}
}

// ForFilter returns a fresh standalone kernel for the named dataflow
// primitive, or an error for names with no standalone kernel (sources
// have no kernel; decompose and const have dedicated constructors but
// are also returned here for convenience).
func ForFilter(name string) (*ocl.Kernel, error) {
	switch name {
	case "add":
		return binary("add", "a[gid] + b[gid]", func(a, b float32) float32 { return a + b }), nil
	case "sub":
		return binary("sub", "a[gid] - b[gid]", func(a, b float32) float32 { return a - b }), nil
	case "mul":
		return binary("mul", "a[gid] * b[gid]", func(a, b float32) float32 { return a * b }), nil
	case "div":
		return binary("div", "a[gid] / b[gid]", func(a, b float32) float32 { return a / b }), nil
	case "min":
		return binary("min", "fmin(a[gid], b[gid])", func(a, b float32) float32 {
			return float32(math.Min(float64(a), float64(b)))
		}), nil
	case "max":
		return binary("max", "fmax(a[gid], b[gid])", func(a, b float32) float32 {
			return float32(math.Max(float64(a), float64(b)))
		}), nil
	case "sqrt":
		return unary("sqrt", "sqrt(a[gid])", func(a float32) float32 {
			return float32(math.Sqrt(float64(a)))
		}), nil
	case "neg":
		return unary("neg", "-a[gid]", func(a float32) float32 { return -a }), nil
	case "abs":
		return unary("abs", "fabs(a[gid])", func(a float32) float32 {
			return float32(math.Abs(float64(a)))
		}), nil
	case "gt":
		return binary("gt", "(a[gid] > b[gid]) ? 1.0f : 0.0f", func(a, b float32) float32 { return b2f(a > b) }), nil
	case "lt":
		return binary("lt", "(a[gid] < b[gid]) ? 1.0f : 0.0f", func(a, b float32) float32 { return b2f(a < b) }), nil
	case "ge":
		return binary("ge", "(a[gid] >= b[gid]) ? 1.0f : 0.0f", func(a, b float32) float32 { return b2f(a >= b) }), nil
	case "le":
		return binary("le", "(a[gid] <= b[gid]) ? 1.0f : 0.0f", func(a, b float32) float32 { return b2f(a <= b) }), nil
	case "eq":
		return binary("eq", "(a[gid] == b[gid]) ? 1.0f : 0.0f", func(a, b float32) float32 { return b2f(a == b) }), nil
	case "ne":
		return binary("ne", "(a[gid] != b[gid]) ? 1.0f : 0.0f", func(a, b float32) float32 { return b2f(a != b) }), nil
	case "exp":
		return unary("exp", "exp(a[gid])", func(a float32) float32 {
			return float32(math.Exp(float64(a)))
		}), nil
	case "log":
		return unary("log", "log(a[gid])", func(a float32) float32 {
			return float32(math.Log(float64(a)))
		}), nil
	case "sin":
		return unary("sin", "sin(a[gid])", func(a float32) float32 {
			return float32(math.Sin(float64(a)))
		}), nil
	case "cos":
		return unary("cos", "cos(a[gid])", func(a float32) float32 {
			return float32(math.Cos(float64(a)))
		}), nil
	case "pow":
		return binary("pow", "pow(a[gid], b[gid])", func(a, b float32) float32 {
			return float32(math.Pow(float64(a), float64(b)))
		}), nil
	case "select":
		return Select(), nil
	case "norm":
		return Norm(), nil
	case "decompose":
		return Decompose(), nil
	case "const":
		return ConstFill(), nil
	case "grad3d":
		return Grad3D(), nil
	case "grad3dx":
		return GradAxis(0), nil
	case "grad3dy":
		return GradAxis(1), nil
	case "grad3dz":
		return GradAxis(2), nil
	default:
		return nil, fmt.Errorf("kernels: no standalone kernel for filter %q", name)
	}
}

// b2f encodes a comparison result as the framework's 1.0/0.0 convention.
func b2f(b bool) float32 {
	if b {
		return 1
	}
	return 0
}

// Select builds the conditional-choice kernel select(cond, a, b):
// out = cond != 0 ? a : b. Buffers: cond, a, b, out.
func Select() *ocl.Kernel {
	return &ocl.Kernel{
		Name: "kselect",
		Source: `// dfg primitive: select (conditional choice)
__kernel void kselect(__global const float *cond,
                      __global const float *a,
                      __global const float *b,
                      __global float *out)
{
    int gid = get_global_id(0);
    out[gid] = (cond[gid] != 0.0f) ? a[gid] : b[gid];
}
`,
		NumBufs: 4,
		Cost:    ocl.Cost{Flops: 1, LoadBytes: 12, StoreBytes: 4},
		Fn: func(lo, hi int, bufs []ocl.View, _ []float64) {
			cond, a, b, out := bufs[0].Data, bufs[1].Data, bufs[2].Data, bufs[3].Data
			for i := lo; i < hi; i++ {
				if cond[i] != 0 {
					out[i] = a[i]
				} else {
					out[i] = b[i]
				}
			}
		},
	}
}

// Norm builds the vector-length kernel over a vector-typed value's
// leading three lanes (the paper's intro sketches norm(grad(b))).
// Buffers: in (vector-typed), out (scalar).
func Norm() *ocl.Kernel {
	return &ocl.Kernel{
		Name: "knorm",
		Source: `// dfg primitive: norm (vector length of the leading 3 lanes)
__kernel void knorm(__global const float4 *a, __global float *out)
{
    int gid = get_global_id(0);
    float4 v = a[gid];
    out[gid] = sqrt(v.s0*v.s0 + v.s1*v.s1 + v.s2*v.s2);
}
`,
		NumBufs: 2,
		Cost:    ocl.Cost{Flops: 6, LoadBytes: 16, StoreBytes: 4},
		Fn: func(lo, hi int, bufs []ocl.View, _ []float64) {
			in, out := bufs[0], bufs[1].Data
			w := in.Width
			for i := lo; i < hi; i++ {
				var s float64
				for c := 0; c < 3 && c < w; c++ {
					v := float64(in.Data[i*w+c])
					s += v * v
				}
				out[i] = float32(math.Sqrt(s))
			}
		},
	}
}

// ExprTemplate returns the OpenCL C expression template the fusion
// generator uses for a simple per-element primitive, with one %s per
// input. Complex primitives (grad3d) and non-computational nodes return
// ok = false — the generator handles those specially.
func ExprTemplate(filter string) (tmpl string, ok bool) {
	switch filter {
	case "add":
		return "(%s + %s)", true
	case "sub":
		return "(%s - %s)", true
	case "mul":
		return "(%s * %s)", true
	case "div":
		return "(%s / %s)", true
	case "min":
		return "fmin(%s, %s)", true
	case "max":
		return "fmax(%s, %s)", true
	case "sqrt":
		return "sqrt(%s)", true
	case "neg":
		return "(-%s)", true
	case "abs":
		return "fabs(%s)", true
	case "gt":
		return "((%s > %s) ? 1.0f : 0.0f)", true
	case "lt":
		return "((%s < %s) ? 1.0f : 0.0f)", true
	case "ge":
		return "((%s >= %s) ? 1.0f : 0.0f)", true
	case "le":
		return "((%s <= %s) ? 1.0f : 0.0f)", true
	case "eq":
		return "((%s == %s) ? 1.0f : 0.0f)", true
	case "ne":
		return "((%s != %s) ? 1.0f : 0.0f)", true
	case "select":
		return "((%s != 0.0f) ? %s : %s)", true
	case "exp":
		return "exp(%s)", true
	case "log":
		return "log(%s)", true
	case "sin":
		return "sin(%s)", true
	case "cos":
		return "cos(%s)", true
	case "pow":
		return "pow(%s, %s)", true
	default:
		return "", false
	}
}
