package kernels

import (
	"fmt"

	"dfg/internal/ocl"
)

// Grad3DFunction is the shared OpenCL C source function implementing the
// 3-D rectilinear mesh field gradient — the paper's example of a complex
// multi-line primitive ("requires over 50 lines of OpenCL source code").
// It is written once and included both by the standalone kgrad3d kernel
// (roundtrip/staged) and by generated fusion kernels, which call it
// directly against device global memory.
//
// The field f is cell-centered. x, y and z are problem-sized coordinate
// field arrays carrying each cell's center coordinates — the form a host
// application hands coordinate data to the framework (the paper's "3
// additional input field arrays"). Interior cells use a central
// difference across neighbouring cell centers; boundary cells use a
// one-sided difference; a degenerate (single-cell) axis has zero
// gradient.
const Grad3DFunction = `// dfg primitive: grad3d (3D rectilinear mesh field gradient)
//
// f is a cell-centered scalar field; x, y, z are per-cell center
// coordinate arrays; dims packs the cell extents (nx, ny, nz).
// Interior cells difference across neighbouring cell centers along each
// axis; boundary cells fall back to one-sided differences; a single-cell
// axis contributes zero. Returns (df/dx, df/dy, df/dz, 0) as a float4.
inline float dfg_axis_diff(__global const float *f,
                           __global const float *coord,
                           int idx, int p, int n, int stride)
{
    if (n == 1) {
        return 0.0f;
    }
    if (p == 0) {
        return (f[idx + stride] - f[idx])
             / (coord[idx + stride] - coord[idx]);
    }
    if (p == n - 1) {
        return (f[idx] - f[idx - stride])
             / (coord[idx] - coord[idx - stride]);
    }
    return (f[idx + stride] - f[idx - stride])
         / (coord[idx + stride] - coord[idx - stride]);
}

// dfg_grad3d decomposes the linear cell index into (i, j, k) and
// differences the field along each axis; the result packs the three
// partial derivatives into a float4 (the .s3 lane is unused padding).
inline float4 dfg_grad3d(__global const float *f,
                         __global const float *dims,
                         __global const float *x,
                         __global const float *y,
                         __global const float *z,
                         int idx)
{
    int nx = (int)dims[0];
    int ny = (int)dims[1];
    int nz = (int)dims[2];

    int i = idx % nx;
    int rest = idx / nx;
    int j = rest % ny;
    int k = rest / ny;

    float4 g;
    g.s0 = dfg_axis_diff(f, x, idx, i, nx, 1);
    g.s1 = dfg_axis_diff(f, y, idx, j, ny, nx);
    g.s2 = dfg_axis_diff(f, z, idx, k, nz, nx * ny);
    g.s3 = 0.0f;
    return g;
}
`

// grad3DKernelSrc wraps the shared function as a standalone kernel for
// the roundtrip and staged strategies.
const grad3DKernelSrc = Grad3DFunction + `
__kernel void kgrad3d(__global const float *f,
                      __global const float *dims,
                      __global const float *x,
                      __global const float *y,
                      __global const float *z,
                      __global float4 *out)
{
    int gid = get_global_id(0);
    out[gid] = dfg_grad3d(f, dims, x, y, z, gid);
}
`

// gradAxisDiff is the executable equivalent of dfg_axis_diff: coord is a
// per-cell center coordinate array varying along the axis with the given
// stride.
func gradAxisDiff(f, coord []float32, idx, p, n, stride int) float32 {
	switch {
	case n == 1:
		return 0
	case p == 0:
		return (f[idx+stride] - f[idx]) / (coord[idx+stride] - coord[idx])
	case p == n-1:
		return (f[idx] - f[idx-stride]) / (coord[idx] - coord[idx-stride])
	default:
		return (f[idx+stride] - f[idx-stride]) / (coord[idx+stride] - coord[idx-stride])
	}
}

// GradAt is the executable equivalent of dfg_grad3d: the gradient of the
// cell-centered field at linear cell idx. x, y and z are problem-sized
// per-cell center coordinate arrays. The fusion generator calls this per
// element against the source arrays in device global memory.
func GradAt(field, x, y, z []float32, nx, ny, nz, idx int) (gx, gy, gz float32) {
	i := idx % nx
	rest := idx / nx
	j := rest % ny
	k := rest / ny
	gx = gradAxisDiff(field, x, idx, i, nx, 1)
	gy = gradAxisDiff(field, y, idx, j, ny, nx)
	gz = gradAxisDiff(field, z, idx, k, nz, nx*ny)
	return
}

// Grad3D builds the standalone gradient kernel.
// Buffers: field, dims (nx, ny, nz as floats), x, y, z (per-cell center
// coordinates), out (width 4).
func Grad3D() *ocl.Kernel {
	return &ocl.Kernel{
		Name:    "kgrad3d",
		Source:  grad3DKernelSrc,
		NumBufs: 6,
		Cost:    costGrad3D,
		Fn: func(lo, hi int, bufs []ocl.View, _ []float64) {
			field := bufs[0].Data
			dims := bufs[1].Data
			x, y, z := bufs[2].Data, bufs[3].Data, bufs[4].Data
			out := bufs[5].Data
			nx, ny, nz := int(dims[0]), int(dims[1]), int(dims[2])
			for idx := lo; idx < hi; idx++ {
				gx, gy, gz := GradAt(field, x, y, z, nx, ny, nz, idx)
				out[4*idx+0] = gx
				out[4*idx+1] = gy
				out[4*idx+2] = gz
				out[4*idx+3] = 0
			}
		},
	}
}

// DimsArray packs mesh extents into the 4-float "dims" source array the
// gradient kernels read (the paper's grad3d(u, dims, x, y, z) argument).
func DimsArray(nx, ny, nz int) []float32 {
	return []float32{float32(nx), float32(ny), float32(nz), 0}
}

// Grad3DAxisFunction is the OpenCL C helper for the single-axis
// gradients grad3dx/y/z that the optimiser's decompose-forwarding pass
// creates. It calls dfg_axis_diff, so a program including it must also
// include Grad3DFunction (which defines that helper); the lane math is
// therefore identical to the corresponding component of dfg_grad3d.
const Grad3DAxisFunction = `// dfg primitive: grad3dx/y/z (single-axis mesh field gradient)
//
// One lane of dfg_grad3d: differences f along the chosen axis only,
// against that axis's cell-center coordinate array.
inline float dfg_grad3d_axis(__global const float *f,
                             __global const float *dims,
                             __global const float *coord,
                             int idx, int axis)
{
    int nx = (int)dims[0];
    int ny = (int)dims[1];
    int nz = (int)dims[2];

    int i = idx % nx;
    int rest = idx / nx;
    int j = rest % ny;
    int k = rest / ny;

    if (axis == 0) {
        return dfg_axis_diff(f, coord, idx, i, nx, 1);
    }
    if (axis == 1) {
        return dfg_axis_diff(f, coord, idx, j, ny, nx);
    }
    return dfg_axis_diff(f, coord, idx, k, nz, nx * ny);
}
`

// GradAxisAt is the executable equivalent of dfg_grad3d_axis: one
// component of the gradient at linear cell idx. It runs exactly the
// arithmetic of the matching lane of GradAt, so forwarding a decomposed
// gradient through it is bit-exact.
func GradAxisAt(field, x, y, z []float32, nx, ny, nz, idx, axis int) float32 {
	i := idx % nx
	rest := idx / nx
	j := rest % ny
	k := rest / ny
	switch axis {
	case 0:
		return gradAxisDiff(field, x, idx, i, nx, 1)
	case 1:
		return gradAxisDiff(field, y, idx, j, ny, nx)
	default:
		return gradAxisDiff(field, z, idx, k, nz, nx*ny)
	}
}

// GradAxisOf maps a single-axis gradient filter name to its axis index
// (ok = false for every other name).
func GradAxisOf(filter string) (axis int, ok bool) {
	switch filter {
	case "grad3dx":
		return 0, true
	case "grad3dy":
		return 1, true
	case "grad3dz":
		return 2, true
	default:
		return 0, false
	}
}

// costGradAxis models one axis of the gradient: two neighbour loads of
// the field and of one coordinate array, and a scalar store. (Compare
// costGrad3D, which covers all three axes and a float4 store.)
var costGradAxis = ocl.Cost{Flops: 5, LoadBytes: 16, StoreBytes: 4}

// GradAxisCost exposes the single-axis gradient's per-element cost to
// the fusion generator.
func GradAxisCost() ocl.Cost { return costGradAxis }

// GradAxis builds the standalone single-axis gradient kernel for axis
// 0, 1 or 2 (grad3dx, grad3dy, grad3dz). The buffer signature matches
// the node's inputs — field, dims, x, y, z, out — even though only one
// coordinate array is read, so the generic staged dispatch launches it
// like any other filter.
func GradAxis(axis int) *ocl.Kernel {
	name := "kgrad3d" + string(rune('x'+axis))
	src := Grad3DFunction + Grad3DAxisFunction + fmt.Sprintf(`
__kernel void %s(__global const float *f,
                 __global const float *dims,
                 __global const float *x,
                 __global const float *y,
                 __global const float *z,
                 __global float *out)
{
    int gid = get_global_id(0);
    out[gid] = dfg_grad3d_axis(f, dims, %s, gid, %d);
}
`, name, [3]string{"x", "y", "z"}[axis], axis)
	return &ocl.Kernel{
		Name:    name,
		Source:  src,
		NumBufs: 6,
		Cost:    costGradAxis,
		Fn: func(lo, hi int, bufs []ocl.View, _ []float64) {
			field := bufs[0].Data
			dims := bufs[1].Data
			x, y, z := bufs[2].Data, bufs[3].Data, bufs[4].Data
			out := bufs[5].Data
			nx, ny, nz := int(dims[0]), int(dims[1]), int(dims[2])
			for idx := lo; idx < hi; idx++ {
				out[idx] = GradAxisAt(field, x, y, z, nx, ny, nz, idx, axis)
			}
		},
	}
}
