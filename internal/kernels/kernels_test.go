package kernels

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"dfg/internal/dataflow"
	"dfg/internal/mesh"
	"dfg/internal/ocl"
)

func testEnv() *ocl.Env {
	return ocl.NewEnv(ocl.NewDevice(ocl.XeonX5660Spec(64)))
}

func close32(got, want, tol float64) bool { return math.Abs(got-want) <= tol }

func TestElementwiseKernels(t *testing.T) {
	a := []float32{1, -4, 9, 2.5, 0}
	b := []float32{2, 2, 3, -0.5, 1}
	cases := []struct {
		filter string
		inputs int
		want   func(a, b float32) float64
	}{
		{"add", 2, func(a, b float32) float64 { return float64(a) + float64(b) }},
		{"sub", 2, func(a, b float32) float64 { return float64(a) - float64(b) }},
		{"mul", 2, func(a, b float32) float64 { return float64(a) * float64(b) }},
		{"div", 2, func(a, b float32) float64 { return float64(a) / float64(b) }},
		{"min", 2, func(a, b float32) float64 { return math.Min(float64(a), float64(b)) }},
		{"max", 2, func(a, b float32) float64 { return math.Max(float64(a), float64(b)) }},
		{"sqrt", 1, func(a, _ float32) float64 { return math.Sqrt(math.Abs(float64(a))) }},
		{"neg", 1, func(a, _ float32) float64 { return -float64(a) }},
		{"abs", 1, func(a, _ float32) float64 { return math.Abs(float64(a)) }},
	}
	for _, tc := range cases {
		t.Run(tc.filter, func(t *testing.T) {
			env := testEnv()
			k, err := ForFilter(tc.filter)
			if err != nil {
				t.Fatal(err)
			}
			in := a
			if tc.filter == "sqrt" {
				in = []float32{1, 4, 9, 2.5, 0} // keep sqrt inputs non-negative
			}
			ba, _ := env.Upload("a", in, 1)
			out := env.Context().MustBuffer("out", len(in), 1)
			bufs := []*ocl.Buffer{ba, out}
			if tc.inputs == 2 {
				bb, _ := env.Upload("b", b, 1)
				bufs = []*ocl.Buffer{ba, bb, out}
			}
			if err := env.Run(k, len(in), bufs, nil); err != nil {
				t.Fatal(err)
			}
			got, _ := env.Download(out)
			for i := range got {
				want := tc.want(in[i], b[i])
				if !close32(float64(got[i]), want, 1e-6) {
					t.Fatalf("%s[%d] = %v want %v", tc.filter, i, got[i], want)
				}
			}
		})
	}
}

func TestForFilterErrors(t *testing.T) {
	if _, err := ForFilter("source"); err == nil {
		t.Error("source has no standalone kernel")
	}
	if _, err := ForFilter("bogus"); err == nil {
		t.Error("unknown filter must fail")
	}
}

func TestKernelSourcesWellFormed(t *testing.T) {
	// Every callable primitive ships real OpenCL C source with a kernel
	// entry point named after the filter.
	for _, name := range []string{"add", "sub", "mul", "div", "min", "max", "sqrt", "neg", "abs", "decompose", "const", "grad3d"} {
		k, err := ForFilter(name)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(k.Source, "__kernel void "+k.Name) {
			t.Errorf("%s: source missing kernel entry point %q:\n%s", name, k.Name, k.Source)
		}
		if !strings.Contains(k.Source, "get_global_id(0)") {
			t.Errorf("%s: source does not index the ND-range", name)
		}
		if k.Cost == (ocl.Cost{}) {
			t.Errorf("%s: kernel must declare a cost model", name)
		}
	}
}

func TestDecomposeKernel(t *testing.T) {
	env := testEnv()
	const n = 100
	vec := make([]float32, 4*n)
	for i := 0; i < n; i++ {
		for c := 0; c < 4; c++ {
			vec[4*i+c] = float32(10*i + c)
		}
	}
	in, err := env.Upload("vec", vec, 4)
	if err != nil {
		t.Fatal(err)
	}
	for comp := 0; comp < 4; comp++ {
		out := env.Context().MustBuffer("out", n, 1)
		if err := env.Run(Decompose(), n, []*ocl.Buffer{in, out}, []float64{float64(comp)}); err != nil {
			t.Fatal(err)
		}
		got, _ := env.Download(out)
		for i := 0; i < n; i++ {
			if got[i] != float32(10*i+comp) {
				t.Fatalf("decompose comp %d at %d: got %v want %v", comp, i, got[i], float32(10*i+comp))
			}
		}
		out.Release()
	}
}

func TestConstFillKernel(t *testing.T) {
	env := testEnv()
	const n = 64
	out := env.Context().MustBuffer("out", n, 1)
	if err := env.Run(ConstFill(), n, []*ocl.Buffer{out}, []float64{0.5}); err != nil {
		t.Fatal(err)
	}
	got, _ := env.Download(out)
	for i := range got {
		if got[i] != 0.5 {
			t.Fatalf("const fill at %d: %v", i, got[i])
		}
	}
}

func TestGrad3DKernelMatchesMeshGradient(t *testing.T) {
	// Cross-validates the kernel's inline-centers stencil against the
	// independently written mesh.Gradient3D on a non-uniform mesh.
	rng := rand.New(rand.NewSource(3))
	x := []float32{0, 0.3, 1.0, 1.2, 2.0, 2.9, 3.1}
	y := []float32{0, 0.5, 1.5, 2.0, 3.3}
	z := []float32{-2, -1, 0.5, 1}
	m, err := mesh.NewRectilinear(x, y, z)
	if err != nil {
		t.Fatal(err)
	}
	n := m.Cells()
	field := make([]float32, n)
	for i := range field {
		field[i] = rng.Float32()*4 - 2
	}
	want := mesh.Gradient3D(field, m)

	env := testEnv()
	bf, _ := env.Upload("f", field, 1)
	bd, _ := env.Upload("dims", DimsArray(m.Dims.NX, m.Dims.NY, m.Dims.NZ), 1)
	cx, cy, cz := m.CellCenterFields()
	bx, _ := env.Upload("x", cx, 1)
	by, _ := env.Upload("y", cy, 1)
	bz, _ := env.Upload("z", cz, 1)
	out := env.Context().MustBuffer("out", n, 4)
	if err := env.Run(Grad3D(), n, []*ocl.Buffer{bf, bd, bx, by, bz, out}, nil); err != nil {
		t.Fatal(err)
	}
	got, _ := env.Download(out)
	for i := 0; i < 4*n; i++ {
		if !close32(float64(got[i]), float64(want[i]), 1e-4) {
			t.Fatalf("gradient mismatch at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestGradAtDegenerateAxes(t *testing.T) {
	// 1x1x1 mesh: all gradient components must be zero.
	gx, gy, gz := GradAt([]float32{5}, []float32{0.5}, []float32{0.5}, []float32{0.5}, 1, 1, 1, 0)
	if gx != 0 || gy != 0 || gz != 0 {
		t.Fatalf("degenerate gradient must be zero: %v %v %v", gx, gy, gz)
	}
}

func TestDimsArray(t *testing.T) {
	d := DimsArray(3, 5, 7)
	if len(d) != 4 || d[0] != 3 || d[1] != 5 || d[2] != 7 || d[3] != 0 {
		t.Fatalf("dims array wrong: %v", d)
	}
}

func TestExprTemplateCoversElementwisePrimitives(t *testing.T) {
	// The fusion generator must have a template for every elementwise
	// primitive in the dataflow registry, and only those.
	for _, name := range dataflow.Filters() {
		fi, _ := dataflow.Lookup(name)
		tmpl, ok := ExprTemplate(name)
		if fi.Class == dataflow.ClassElementwise {
			if !ok {
				t.Errorf("elementwise filter %q has no expression template", name)
				continue
			}
			if strings.Count(tmpl, "%s") != fi.Arity {
				t.Errorf("template %q for %q must have %d operands", tmpl, name, fi.Arity)
			}
		} else if ok {
			t.Errorf("non-elementwise filter %q should not have a template", name)
		}
	}
}

func TestGrad3DSourceSharedWithKernel(t *testing.T) {
	// The standalone kernel source embeds the shared primitive function
	// verbatim — "written once and shared by all execution strategies".
	k := Grad3D()
	if !strings.Contains(k.Source, Grad3DFunction) {
		t.Fatal("kgrad3d source must embed the shared Grad3DFunction")
	}
	if c := strings.Count(Grad3DFunction, "\n"); c < 50 {
		t.Fatalf("the paper says grad3d needs over 50 lines of OpenCL source; got %d", c)
	}
}

func TestComparisonKernels(t *testing.T) {
	a := []float32{1, 2, 3, 4}
	b := []float32{2, 2, 2, 2}
	want := map[string][]float32{
		"gt": {0, 0, 1, 1},
		"lt": {1, 0, 0, 0},
		"ge": {0, 1, 1, 1},
		"le": {1, 1, 0, 0},
		"eq": {0, 1, 0, 0},
		"ne": {1, 0, 1, 1},
	}
	for name, expect := range want {
		env := testEnv()
		k, err := ForFilter(name)
		if err != nil {
			t.Fatal(err)
		}
		ba, _ := env.Upload("a", a, 1)
		bb, _ := env.Upload("b", b, 1)
		out := env.Context().MustBuffer("out", len(a), 1)
		if err := env.Run(k, len(a), []*ocl.Buffer{ba, bb, out}, nil); err != nil {
			t.Fatal(err)
		}
		got, _ := env.Download(out)
		for i := range expect {
			if got[i] != expect[i] {
				t.Fatalf("%s[%d] = %v want %v", name, i, got[i], expect[i])
			}
		}
	}
}

func TestSelectKernel(t *testing.T) {
	env := testEnv()
	cond := []float32{1, 0, 1, 0}
	a := []float32{10, 20, 30, 40}
	b := []float32{-1, -2, -3, -4}
	bc, _ := env.Upload("c", cond, 1)
	ba, _ := env.Upload("a", a, 1)
	bb, _ := env.Upload("b", b, 1)
	out := env.Context().MustBuffer("out", 4, 1)
	if err := env.Run(Select(), 4, []*ocl.Buffer{bc, ba, bb, out}, nil); err != nil {
		t.Fatal(err)
	}
	got, _ := env.Download(out)
	for i, want := range []float32{10, -2, 30, -4} {
		if got[i] != want {
			t.Fatalf("select[%d] = %v want %v", i, got[i], want)
		}
	}
}

func TestNormKernel(t *testing.T) {
	env := testEnv()
	vec := []float32{3, 4, 0, 0 /*|.|=5*/, 1, 2, 2, 9 /*|.|=3, s3 ignored*/}
	in, _ := env.Upload("v", vec, 4)
	out := env.Context().MustBuffer("out", 2, 1)
	if err := env.Run(Norm(), 2, []*ocl.Buffer{in, out}, nil); err != nil {
		t.Fatal(err)
	}
	got, _ := env.Download(out)
	if !close32(float64(got[0]), 5, 1e-6) || !close32(float64(got[1]), 3, 1e-6) {
		t.Fatalf("norm = %v, want [5 3] (s3 lane must be ignored)", got)
	}
}

func TestCostAccessors(t *testing.T) {
	for name, c := range map[string]ocl.Cost{
		"grad":      GradCost(),
		"binary":    BinaryCost(),
		"unary":     UnaryCost(),
		"decompose": DecomposeCost(),
		"constfill": ConstFillCost(),
	} {
		if c.StoreBytes <= 0 {
			t.Errorf("%s cost must store at least its output: %+v", name, c)
		}
	}
	if GradCost().Flops <= BinaryCost().Flops {
		t.Error("the gradient must cost more than an add")
	}
}
