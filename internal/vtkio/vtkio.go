// Package vtkio writes (and re-reads, for round-trip verification) VTK
// legacy files for rectilinear grids with cell-centered fields — the
// interchange format of the paper's host application stack (VisIt/VTK).
// Exporting a derived field as .vtk closes the loop of the paper's
// pipeline: the framework computes the field, the visualization tool
// renders it.
//
// The writer emits the classic ASCII "# vtk DataFile Version 3.0" layout
// with a RECTILINEAR_GRID structure, per-axis coordinate arrays and any
// number of scalar CELL_DATA fields. The reader accepts exactly what the
// writer produces (it exists for round-trip tests and for loading saved
// results back into the harness, not as a general VTK parser).
package vtkio

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"dfg/internal/mesh"
)

// Grid couples a mesh with named cell-centered scalar fields.
type Grid struct {
	Mesh   *mesh.Mesh
	Fields map[string][]float32
}

// Write emits the grid as a VTK legacy rectilinear-grid file.
func Write(w io.Writer, title string, g Grid) error {
	if g.Mesh == nil {
		return fmt.Errorf("vtkio: nil mesh")
	}
	if err := g.Mesh.Validate(); err != nil {
		return err
	}
	n := g.Mesh.Cells()
	names := make([]string, 0, len(g.Fields))
	for name, data := range g.Fields {
		if len(data) != n {
			return fmt.Errorf("vtkio: field %q has %d values for %d cells", name, len(data), n)
		}
		if strings.ContainsAny(name, " \t\n") {
			return fmt.Errorf("vtkio: field name %q must not contain whitespace", name)
		}
		names = append(names, name)
	}
	sort.Strings(names)

	bw := bufio.NewWriter(w)
	if title == "" {
		title = "dfg derived fields"
	}
	fmt.Fprintf(bw, "# vtk DataFile Version 3.0\n%s\nASCII\nDATASET RECTILINEAR_GRID\n", title)
	d := g.Mesh.Dims
	fmt.Fprintf(bw, "DIMENSIONS %d %d %d\n", d.NX+1, d.NY+1, d.NZ+1)
	writeCoords(bw, "X_COORDINATES", g.Mesh.X)
	writeCoords(bw, "Y_COORDINATES", g.Mesh.Y)
	writeCoords(bw, "Z_COORDINATES", g.Mesh.Z)

	fmt.Fprintf(bw, "CELL_DATA %d\n", n)
	for _, name := range names {
		fmt.Fprintf(bw, "SCALARS %s float 1\nLOOKUP_TABLE default\n", name)
		writeFloats(bw, g.Fields[name])
	}
	return bw.Flush()
}

// writeCoords emits one coordinate array section.
func writeCoords(w *bufio.Writer, label string, c []float32) {
	fmt.Fprintf(w, "%s %d float\n", label, len(c))
	writeFloats(w, c)
}

// writeFloats emits values eight per line, which keeps files diffable.
func writeFloats(w *bufio.Writer, vals []float32) {
	for i, v := range vals {
		if i > 0 {
			if i%8 == 0 {
				w.WriteByte('\n')
			} else {
				w.WriteByte(' ')
			}
		}
		w.WriteString(strconv.FormatFloat(float64(v), 'g', -1, 32))
	}
	if len(vals) > 0 {
		w.WriteByte('\n')
	}
}

// Read parses a file produced by Write.
func Read(r io.Reader) (Grid, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	tok := &tokenizer{sc: sc}

	var g Grid
	// Header: 2 comment/title lines, format, dataset.
	for i := 0; i < 2; i++ {
		if _, ok := tok.line(); !ok {
			return g, fmt.Errorf("vtkio: truncated header")
		}
	}
	if l, _ := tok.line(); strings.TrimSpace(l) != "ASCII" {
		return g, fmt.Errorf("vtkio: only ASCII files supported, got %q", l)
	}
	if l, _ := tok.line(); strings.TrimSpace(l) != "DATASET RECTILINEAR_GRID" {
		return g, fmt.Errorf("vtkio: only RECTILINEAR_GRID supported, got %q", l)
	}

	var px, py, pz int
	if l, ok := tok.line(); !ok || parseDims(l, &px, &py, &pz) != nil {
		return g, fmt.Errorf("vtkio: bad DIMENSIONS line %q", l)
	}
	x, err := tok.coords("X_COORDINATES", px)
	if err != nil {
		return g, err
	}
	y, err := tok.coords("Y_COORDINATES", py)
	if err != nil {
		return g, err
	}
	z, err := tok.coords("Z_COORDINATES", pz)
	if err != nil {
		return g, err
	}
	m, err := mesh.NewRectilinear(x, y, z)
	if err != nil {
		return g, err
	}
	g.Mesh = m
	g.Fields = make(map[string][]float32)

	l, ok := tok.line()
	if !ok {
		return g, nil // geometry only
	}
	var nCells int
	if _, err := fmt.Sscanf(strings.TrimSpace(l), "CELL_DATA %d", &nCells); err != nil {
		return g, fmt.Errorf("vtkio: bad CELL_DATA line %q", l)
	}
	if nCells != m.Cells() {
		return g, fmt.Errorf("vtkio: CELL_DATA %d does not match %d cells", nCells, m.Cells())
	}
	for {
		l, ok := tok.line()
		if !ok {
			return g, nil
		}
		fields := strings.Fields(l)
		if len(fields) < 2 || fields[0] != "SCALARS" {
			return g, fmt.Errorf("vtkio: expected SCALARS section, got %q", l)
		}
		name := fields[1]
		if l, ok := tok.line(); !ok || !strings.HasPrefix(strings.TrimSpace(l), "LOOKUP_TABLE") {
			return g, fmt.Errorf("vtkio: expected LOOKUP_TABLE after SCALARS %s", name)
		}
		vals, err := tok.floats(nCells)
		if err != nil {
			return g, fmt.Errorf("vtkio: field %q: %w", name, err)
		}
		g.Fields[name] = vals
	}
}

// parseDims parses "DIMENSIONS nx ny nz".
func parseDims(l string, px, py, pz *int) error {
	_, err := fmt.Sscanf(strings.TrimSpace(l), "DIMENSIONS %d %d %d", px, py, pz)
	return err
}

// tokenizer reads lines and float runs from the scanner.
type tokenizer struct {
	sc      *bufio.Scanner
	pending []string
}

// line returns the next non-empty line.
func (t *tokenizer) line() (string, bool) {
	for t.sc.Scan() {
		l := t.sc.Text()
		if strings.TrimSpace(l) != "" {
			return l, true
		}
	}
	return "", false
}

// coords reads one "<label> <n> float" section.
func (t *tokenizer) coords(label string, n int) ([]float32, error) {
	l, ok := t.line()
	if !ok {
		return nil, fmt.Errorf("vtkio: missing %s", label)
	}
	var got int
	if _, err := fmt.Sscanf(strings.TrimSpace(l), label+" %d float", &got); err != nil || got != n {
		return nil, fmt.Errorf("vtkio: bad %s header %q (want %d values)", label, l, n)
	}
	return t.floats(n)
}

// floats reads exactly n whitespace-separated float32 values.
func (t *tokenizer) floats(n int) ([]float32, error) {
	out := make([]float32, 0, n)
	for len(out) < n {
		if len(t.pending) == 0 {
			l, ok := t.line()
			if !ok {
				return nil, fmt.Errorf("need %d more values", n-len(out))
			}
			t.pending = strings.Fields(l)
		}
		for len(t.pending) > 0 && len(out) < n {
			v, err := strconv.ParseFloat(t.pending[0], 32)
			if err != nil {
				return nil, fmt.Errorf("bad value %q", t.pending[0])
			}
			t.pending = t.pending[1:]
			out = append(out, float32(v))
		}
	}
	return out, nil
}
