package vtkio

import (
	"bytes"
	"strings"
	"testing"

	"dfg/internal/mesh"
)

// FuzzRead drives the VTK reader with arbitrary bytes: it must reject or
// accept without panicking, and anything it accepts must round-trip
// through the writer.
func FuzzRead(f *testing.F) {
	// Seed with a real file and mutations of it.
	m := mesh.MustUniform(mesh.Dims{NX: 2, NY: 2, NZ: 2}, 1, 1, 1)
	var buf bytes.Buffer
	if err := Write(&buf, "seed", Grid{Mesh: m, Fields: map[string][]float32{"f": make([]float32, 8)}}); err != nil {
		f.Fatal(err)
	}
	good := buf.String()
	f.Add(good)
	f.Add(strings.Replace(good, "CELL_DATA 8", "CELL_DATA 99", 1))
	f.Add(strings.Replace(good, "ASCII", "BINARY", 1))
	f.Add("")
	f.Add("# vtk DataFile Version 3.0\nt\nASCII\nDATASET RECTILINEAR_GRID\nDIMENSIONS 2 2\n")
	f.Add(good[:len(good)/2])

	f.Fuzz(func(t *testing.T, input string) {
		g, err := Read(strings.NewReader(input))
		if err != nil {
			return
		}
		// Anything accepted must be writable again.
		var out bytes.Buffer
		if err := Write(&out, "refuzz", g); err != nil {
			t.Fatalf("accepted grid failed to write: %v", err)
		}
	})
}
