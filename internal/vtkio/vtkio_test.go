package vtkio

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"dfg/internal/mesh"
)

func testGrid(t testing.TB, seed int64) Grid {
	t.Helper()
	m, err := mesh.NewRectilinear(
		[]float32{0, 0.5, 1.25, 2},
		[]float32{-1, 0, 1},
		[]float32{0, 2, 3, 5, 8},
	)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	n := m.Cells()
	q := make([]float32, n)
	vm := make([]float32, n)
	for i := 0; i < n; i++ {
		q[i] = rng.Float32()*20 - 10
		vm[i] = rng.Float32()
	}
	return Grid{Mesh: m, Fields: map[string][]float32{"q_crit": q, "v_mag": vm}}
}

func TestWriteFormat(t *testing.T) {
	g := testGrid(t, 1)
	var buf bytes.Buffer
	if err := Write(&buf, "vortex detection", g); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{
		"# vtk DataFile Version 3.0",
		"vortex detection",
		"ASCII",
		"DATASET RECTILINEAR_GRID",
		"DIMENSIONS 4 3 5",
		"X_COORDINATES 4 float",
		"Z_COORDINATES 5 float",
		"CELL_DATA 24",
		"SCALARS q_crit float 1",
		"SCALARS v_mag float 1",
		"LOOKUP_TABLE default",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("VTK output missing %q", frag)
		}
	}
	// Fields emit in sorted order for determinism.
	if strings.Index(out, "q_crit") > strings.Index(out, "v_mag") {
		t.Error("fields must be written in sorted name order")
	}
}

func TestRoundTrip(t *testing.T) {
	g := testGrid(t, 2)
	var buf bytes.Buffer
	if err := Write(&buf, "", g); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Mesh.Dims != g.Mesh.Dims {
		t.Fatalf("dims %v != %v", back.Mesh.Dims, g.Mesh.Dims)
	}
	for i := range g.Mesh.X {
		if back.Mesh.X[i] != g.Mesh.X[i] {
			t.Fatalf("x[%d] %v != %v", i, back.Mesh.X[i], g.Mesh.X[i])
		}
	}
	if len(back.Fields) != 2 {
		t.Fatalf("want 2 fields, got %d", len(back.Fields))
	}
	for name, want := range g.Fields {
		got := back.Fields[name]
		if len(got) != len(want) {
			t.Fatalf("%s: %d values, want %d", name, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s[%d] = %v want %v (ASCII float32 must round-trip)", name, i, got[i], want[i])
			}
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := testGrid(t, seed)
		var buf bytes.Buffer
		if err := Write(&buf, "p", g); err != nil {
			return false
		}
		back, err := Read(&buf)
		if err != nil {
			return false
		}
		for name, want := range g.Fields {
			got := back.Fields[name]
			for i := range want {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteValidation(t *testing.T) {
	if err := Write(&bytes.Buffer{}, "", Grid{}); err == nil {
		t.Error("nil mesh must fail")
	}
	m := mesh.MustUniform(mesh.Dims{NX: 2, NY: 2, NZ: 2}, 1, 1, 1)
	if err := Write(&bytes.Buffer{}, "", Grid{Mesh: m, Fields: map[string][]float32{"f": make([]float32, 3)}}); err == nil {
		t.Error("short field must fail")
	}
	if err := Write(&bytes.Buffer{}, "", Grid{Mesh: m, Fields: map[string][]float32{"bad name": make([]float32, 8)}}); err == nil {
		t.Error("whitespace in field name must fail")
	}
}

func TestReadRejectsForeignFiles(t *testing.T) {
	cases := []string{
		"",
		"# vtk DataFile Version 3.0\nt\nBINARY\nDATASET RECTILINEAR_GRID\n",
		"# vtk DataFile Version 3.0\nt\nASCII\nDATASET STRUCTURED_POINTS\n",
		"# vtk DataFile Version 3.0\nt\nASCII\nDATASET RECTILINEAR_GRID\nDIMENSIONS x y z\n",
	}
	for i, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: malformed input must fail", i)
		}
	}
}

func TestGeometryOnlyFile(t *testing.T) {
	g := Grid{Mesh: mesh.MustUniform(mesh.Dims{NX: 2, NY: 2, NZ: 2}, 1, 1, 1)}
	var buf bytes.Buffer
	if err := Write(&buf, "", g); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Mesh.Dims != g.Mesh.Dims {
		t.Fatal("geometry-only round trip failed")
	}
}
