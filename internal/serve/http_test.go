package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestHTTPEndpoints drives a pool through the introspection surface:
// healthz, the Prometheus exposition (compile-cache counters, queue
// depth, per-strategy histograms), and the slow log.
func TestHTTPEndpoints(t *testing.T) {
	p, err := NewPool(Config{
		Workers:       2,
		Strategy:      "fusion",
		SlowThreshold: time.Nanosecond, // every request is "slow"
		SlowLog:       io.Discard,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	inputs := testInputs(2048)
	for i := 0; i < 6; i++ {
		if _, err := p.Submit(context.Background(), Request{
			Expr: "m = sqrt(u*u + v*v + w*w)", N: 2048, Inputs: inputs,
		}); err != nil {
			t.Fatal(err)
		}
	}

	code, body := get(t, srv, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz = %d: %s", code, body)
	}
	var health map[string]any
	if err := json.Unmarshal([]byte(body), &health); err != nil {
		t.Fatalf("healthz not JSON: %v: %s", err, body)
	}
	if health["status"] != "ok" || health["served"].(float64) != 6 {
		t.Fatalf("healthz = %v", health)
	}

	code, body = get(t, srv, "/metrics")
	if code != http.StatusOK || body == "" {
		t.Fatalf("/metrics = %d, %d bytes", code, len(body))
	}
	for _, want := range []string{
		"dfg_compile_cache_hits_total 5",
		"dfg_compile_cache_misses_total 1",
		"# TYPE dfg_queue_depth gauge",
		"dfg_queue_depth 0",
		`dfg_requests_total{outcome="served"} 6`,
		`dfg_eval_seconds_count{fingerprint=`,
		`strategy="fusion"`,
		"dfg_request_wait_seconds_count 6",
		`dfg_worker_utilization{worker="0"}`,
		"dfg_device_kernels_total 6",
		"dfg_compile_cache_entries 1",
		"dfg_plan_cache_hits_total 5",
		"dfg_plan_cache_misses_total 1",
		"dfg_plan_builds_total 1",
		"dfg_plan_cache_entries 1",
		"# TYPE dfg_arena_buffers_reused_total counter",
		"dfg_arena_buffers_allocated_total",
		"dfg_arena_upload_skips_total",
		"# TYPE dfg_arena_resident_bytes gauge",
		"dfg_arena_pooled_bytes",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}

	code, body = get(t, srv, "/slow?last=3")
	if code != http.StatusOK || !strings.Contains(body, "execute") {
		t.Fatalf("/slow = %d:\n%s", code, body)
	}
	if code, _ := get(t, srv, "/trace?last=bogus"); code != http.StatusBadRequest {
		t.Fatalf("bad ?last= accepted: %d", code)
	}
}

// chromeEvent is the slice of the trace-event fields the tests check.
type chromeEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	TS   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	PID  int     `json:"pid"`
	TID  int     `json:"tid"`
}

// TestTraceEndpointCoversWallTime is the service-level acceptance
// check: /trace?last=1 returns a span tree whose pipeline stages sum to
// within 5% of the request's wall time (root span duration).
func TestTraceEndpointCoversWallTime(t *testing.T) {
	p, err := NewPool(Config{Workers: 1, Strategy: "fusion"})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	const n = 1 << 18 // big enough that execution dwarfs inter-span gaps
	if _, err := p.Submit(context.Background(), Request{
		Expr: "m = sqrt(u*u + v*v + w*w)", N: n, Inputs: testInputs(n),
	}); err != nil {
		t.Fatal(err)
	}

	code, body := get(t, srv, "/trace?last=1")
	if code != http.StatusOK {
		t.Fatalf("/trace = %d", code)
	}
	var events []chromeEvent
	if err := json.Unmarshal([]byte(body), &events); err != nil {
		t.Fatalf("trace not JSON: %v", err)
	}

	var wall, stages float64
	stageNames := map[string]bool{"queue-wait": true, "compile": true, "bind": true, "execute": true}
	seen := map[string]bool{}
	for _, e := range events {
		if e.Ph != "X" {
			continue
		}
		if e.Cat == "request" {
			wall = e.Dur
		}
		if e.Cat == "stage" && stageNames[e.Name] {
			stages += e.Dur
			seen[e.Name] = true
		}
	}
	if wall <= 0 {
		t.Fatalf("no request event in trace:\n%s", body)
	}
	for _, name := range []string{"compile", "execute", "queue-wait"} {
		if !seen[name] {
			t.Fatalf("trace lacks stage %q:\n%s", name, body)
		}
	}
	if stages > wall {
		t.Fatalf("stages %vµs exceed wall %vµs", stages, wall)
	}
	if gap := wall - stages; gap > wall/20 {
		t.Fatalf("stages cover %vµs of %vµs wall (gap %vµs > 5%%)", stages, wall, gap)
	}
	// Device events ride along on their own tracks.
	var kernels int
	for _, e := range events {
		if e.Cat == "kernel" && e.Ph == "X" {
			kernels++
		}
	}
	if kernels == 0 {
		t.Fatalf("no kernel-track events in trace:\n%s", body)
	}
}

// TestShutdownFlushesFinalState: after Close, the endpoint still serves
// final metrics/traces, healthz flips to 503/closed, and Report renders
// the service summary.
func TestShutdownFlushesFinalState(t *testing.T) {
	p, err := NewPool(Config{Workers: 2, Strategy: "fusion"})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	inputs := testInputs(1024)
	for i := 0; i < 4; i++ {
		if _, err := p.Submit(context.Background(), Request{
			Expr: "m = u + v", N: 1024, Inputs: inputs,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	code, body := get(t, srv, "/healthz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, `"status":"closed"`) {
		t.Fatalf("/healthz after close = %d: %s", code, body)
	}
	uptimeFrozen := p.uptime()
	time.Sleep(10 * time.Millisecond)
	if p.uptime() != uptimeFrozen {
		t.Fatal("uptime must freeze at Close")
	}

	_, metricsBody := get(t, srv, "/metrics")
	if !strings.Contains(metricsBody, `dfg_requests_total{outcome="served"} 4`) {
		t.Fatalf("final metrics lost served count:\n%s", metricsBody)
	}
	_, traceBody := get(t, srv, "/trace?last=4")
	var events []chromeEvent
	if err := json.Unmarshal([]byte(traceBody), &events); err != nil || len(events) == 0 {
		t.Fatalf("final traces unavailable: %v (%d events)", err, len(events))
	}

	var report strings.Builder
	p.Report(&report)
	out := report.String()
	for _, want := range []string{"uptime:", "4 served", "shared compile cache:", "worker 0:", "aggregate device profile:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Report missing %q:\n%s", want, out)
		}
	}
}
