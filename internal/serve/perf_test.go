package serve

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"dfg"
	"dfg/internal/ocl"
	"dfg/internal/perfdb"
)

// perfReq is a small healthy request the perf tests reuse.
func perfReq() Request {
	n := 64
	xs := make([]float32, n)
	for i := range xs {
		xs[i] = float32(i)
	}
	return Request{Expr: "f = x*2 + 1", N: n, Inputs: map[string][]float32{"x": xs}}
}

// TestPerfRecordsEveryEvaluation: the pool's always-on recorder holds
// one record per served request, carrying identity, timings and — for a
// tiered request routed to the host VM — the resolved tier.
func TestPerfRecordsEveryEvaluation(t *testing.T) {
	pool, err := NewPool(Config{Workers: 2, Device: dfg.CPU, Strategy: "fusion"})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	const reqs = 6
	for i := 0; i < reqs; i++ {
		if _, err := pool.Submit(context.Background(), perfReq()); err != nil {
			t.Fatal(err)
		}
	}
	// A tiered request below the threshold must resolve to the VM tier.
	tiered := perfReq()
	tiered.Strategy = "tiered@4096"
	if _, err := pool.Submit(context.Background(), tiered); err != nil {
		t.Fatal(err)
	}

	rec := pool.PerfRecorder()
	if got := rec.Recorded(); got != reqs+1 {
		t.Fatalf("Recorded = %d, want %d", got, reqs+1)
	}
	snap := rec.Snapshot()
	var sawResolved bool
	for _, r := range snap {
		if r.Fingerprint == "" || r.Strategy == "" || r.Device == "" || r.Opt == "" {
			t.Fatalf("record missing identity: %+v", r)
		}
		if r.TotalNS <= 0 {
			t.Fatalf("record missing total time: %+v", r)
		}
		if r.TraceID == "" {
			t.Fatalf("record missing trace id (tracing is on by default): %+v", r)
		}
		if r.QueueWaitNS < 0 {
			t.Fatalf("negative queue wait: %+v", r)
		}
		if strings.HasPrefix(r.Strategy, "tiered@") && r.Resolved == "vm" {
			sawResolved = true
		}
	}
	if !sawResolved {
		t.Fatalf("no record resolved tiered -> vm; snapshot: %+v", snap)
	}
}

// TestFlushPerfConcurrentWithClose: FlushPerf racing a draining Close
// (and racing in-flight evaluations) must stay safe and both snapshots
// must parse. Run under -race in CI.
func TestFlushPerfConcurrentWithClose(t *testing.T) {
	dir := t.TempDir()
	pool, err := NewPool(Config{Workers: 2, Device: dfg.CPU, Strategy: "fusion", PerfDir: dir})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				pool.Submit(context.Background(), perfReq())
			}
		}()
	}
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if _, err := pool.FlushPerf(); err != nil {
					t.Errorf("concurrent FlushPerf: %v", err)
					return
				}
			}
		}
	}()
	time.Sleep(10 * time.Millisecond)
	if err := pool.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	close(stop)
	wg.Wait()

	files, err := filepath.Glob(filepath.Join(dir, "perfdb-*.jsonl"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no perfdb snapshots written (err=%v)", err)
	}
	// Every snapshot — including the mid-drain ones — must parse, and the
	// set must include Close's final flush covering all served requests.
	var maxRecs int
	for _, f := range files {
		meta, recs, err := perfdb.Load(f)
		if err != nil {
			t.Fatalf("load %s: %v", f, err)
		}
		if meta.Schema != perfdb.Schema {
			t.Fatalf("%s: schema %q", f, meta.Schema)
		}
		if len(recs) > maxRecs {
			maxRecs = len(recs)
		}
	}
	if served := pool.Stats().Served; int64(maxRecs) < served {
		t.Fatalf("final snapshot has %d records, want >= %d served", maxRecs, served)
	}
}

// TestFlightDumpOnBreakerTrip: a device loss rescued by the recovery
// ladder still trips the breaker, which must leave a parseable flight
// dump containing the tripping request's span tree. This is the
// acceptance gate for the postmortem path, and runs under -race in CI.
func TestFlightDumpOnBreakerTrip(t *testing.T) {
	dir := t.TempDir()
	var armed bool
	pool, err := NewPool(Config{
		Workers:         1,
		Device:          dfg.CPU,
		Strategy:        "fusion",
		PerfDir:         dir,
		BreakerCooldown: time.Hour, // keep the trip visible
		FaultPlanFor: func(worker int) *ocl.FaultPlan {
			if !armed {
				armed = true
				return ocl.NewFaultPlan(1).LoseDeviceAt(0)
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	// The device dies on the first kernel; the VM rung rescues the
	// request, the breaker trips, and the trip must dump the flight ring.
	if _, err := pool.Submit(context.Background(), perfReq()); err != nil {
		t.Fatalf("rescued request failed: %v", err)
	}
	if states := pool.BreakerStates(); states[0] != "open" {
		t.Fatalf("breaker = %q, want open", states[0])
	}

	files, err := filepath.Glob(filepath.Join(dir, "flight-*-breaker-trip.json"))
	if err != nil || len(files) != 1 {
		t.Fatalf("breaker-trip dumps = %v (err=%v), want exactly one", files, err)
	}
	d, err := perfdb.LoadFlight(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if d.Reason != "breaker-trip" || len(d.Entries) == 0 {
		t.Fatalf("dump: reason=%q entries=%d", d.Reason, len(d.Entries))
	}
	last := d.Entries[len(d.Entries)-1]
	if last.Span == nil || last.Span.Name != "request" {
		t.Fatalf("tripping request's span tree missing: %+v", last.Span)
	}
	// The rescue is visible in the tree: the ladder recorded a fallback
	// and the evaluation resolved to the VM rung.
	if last.Span.Find("fallback") == nil {
		t.Fatalf("span tree lacks the fallback rung:\n%+v", last.Span)
	}
	if len(d.Recent) == 0 {
		t.Fatal("dump carries no recent perf records")
	}
	if pool.FlightRecorder().Dumped() != 1 {
		t.Fatalf("Dumped = %d, want 1", pool.FlightRecorder().Dumped())
	}
}

// TestPerfHTTPSurface covers the new introspection endpoints: exemplars
// with resolvable trace IDs, /trace/{id} lookup in both formats, the
// trace_id on /slow, pprof gating, and the perf/runtime series on
// /metrics.
func TestPerfHTTPSurface(t *testing.T) {
	pool, err := NewPool(Config{
		Workers: 1, Device: dfg.CPU, Strategy: "fusion",
		SlowThreshold: time.Nanosecond, SlowLog: io.Discard,
		EnablePprof: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if _, err := pool.Submit(context.Background(), perfReq()); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(pool.Handler())
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: %d", code)
	}
	for _, name := range []string{"dfg_perf_records_total", "go_goroutines", "dfg_flight_dumps_total", `resolved="fusion"`} {
		if !strings.Contains(body, name) {
			t.Fatalf("/metrics missing %s", name)
		}
	}

	code, body = get("/exemplars")
	if code != http.StatusOK || !strings.Contains(body, "trace_id") {
		t.Fatalf("/exemplars: %d %q", code, body)
	}

	// Pull a live trace ID off the slow log and resolve it.
	code, body = get("/slow")
	if code != http.StatusOK || !strings.Contains(body, "trace_id=") {
		t.Fatalf("/slow: %d %q", code, body)
	}
	line := body[strings.Index(body, "trace_id=")+len("trace_id="):]
	id := strings.Fields(line)[0]
	code, body = get("/trace/" + id)
	if code != http.StatusOK || !strings.Contains(body, "trace "+id) {
		t.Fatalf("/trace/{id}: %d %q", code, body)
	}
	code, body = get("/trace/" + id + "?format=json")
	if code != http.StatusOK || !strings.Contains(body, `"name": "request"`) {
		t.Fatalf("/trace/{id}?format=json: %d %q", code, body)
	}
	if code, _ = get("/trace/nope"); code != http.StatusNotFound {
		t.Fatalf("/trace/nope: %d, want 404", code)
	}

	if code, _ = get("/debug/pprof/"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/ with EnablePprof: %d", code)
	}

	// pprof is off by default.
	plain, err := NewPool(Config{Workers: 1, Device: dfg.CPU, Strategy: "fusion"})
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	srv2 := httptest.NewServer(plain.Handler())
	defer srv2.Close()
	resp, err := http.Get(srv2.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/debug/pprof/ without EnablePprof: %d, want 404", resp.StatusCode)
	}
}
