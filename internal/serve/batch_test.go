package serve

import (
	"context"
	"errors"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dfg/internal/obs"
	"dfg/internal/ocl"
)

// batchExprs is an overlapping request mix: every expression shares the
// u*u + v*v + w*w subtree, and two members are textually identical.
var batchExprs = []string{
	"r = sqrt(u*u + v*v + w*w)",
	"r = u*u + v*v + w*w",
	"r = sqrt(u*u + v*v + w*w) + 2.0 * w",
	"r = sqrt(u*u + v*v + w*w)",
	"r = (u*u + v*v + w*w) * 0.5",
	"r = sqrt(u*u + v*v + w*w) - w",
}

// TestPoolBatchingDifferential is the serve-layer acceptance gate:
// overlapping requests submitted within one forming window merge into a
// batch, the results are bitwise identical to an unbatched pool, shared
// subtrees are eliminated, and the merged run dispatches strictly fewer
// kernels than per-request evaluation would.
func TestPoolBatchingDifferential(t *testing.T) {
	const n = 1024
	in := testInputs(n) // one shared binding: identity is part of the batch key

	solo := newTestPool(t, Config{Workers: 1})
	want := make([][]float32, len(batchExprs))
	for i, expr := range batchExprs {
		res, err := solo.Submit(context.Background(), Request{Expr: expr, N: n, Inputs: in})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res.Data
	}

	p := newTestPool(t, Config{Workers: 1, BatchWindow: 50 * time.Millisecond})
	chans := make([]<-chan Response, len(batchExprs))
	for i, expr := range batchExprs {
		chans[i] = p.EvalAsync(context.Background(), Request{Expr: expr, N: n, Inputs: in})
	}
	for i, ch := range chans {
		r := <-ch
		if r.Err != nil {
			t.Fatalf("member %d: %v", i, r.Err)
		}
		if len(r.Result.Data) != n {
			t.Fatalf("member %d: %d elements", i, len(r.Result.Data))
		}
		for j := range want[i] {
			if math.Float32bits(r.Result.Data[j]) != math.Float32bits(want[i][j]) {
				t.Fatalf("member %d diverges at element %d: batched %v vs solo %v",
					i, j, r.Result.Data[j], want[i][j])
			}
		}
	}

	st := p.Stats()
	if st.Served != int64(len(batchExprs)) {
		t.Fatalf("served = %d, want %d", st.Served, len(batchExprs))
	}
	if st.Batches == 0 {
		t.Fatal("no batch formed: requests within one window did not merge")
	}
	if st.BatchSplits != 0 {
		t.Fatalf("healthy batch split %d times", st.BatchSplits)
	}
	if st.BatchShared == 0 {
		t.Fatal("dfg_batch_cse_nodes_shared_total stayed zero for overlapping expressions")
	}
	// Solo fusion dispatches one kernel per request; the merged run must
	// beat that strictly.
	if st.Profile.Kernels >= int(st.Served) {
		t.Fatalf("aggregate kernels = %d for %d served: batching saved no launches",
			st.Profile.Kernels, st.Served)
	}
}

// TestPoolBatchOfOneStaysSolo: a lone request on a batching pool rides
// the ordinary solo path after its window — no batch job, no merged
// plan, same answer.
func TestPoolBatchOfOneStaysSolo(t *testing.T) {
	const n = 256
	in := testInputs(n)
	p := newTestPool(t, Config{Workers: 1, BatchWindow: time.Millisecond})
	res, err := p.Submit(context.Background(), Request{Expr: batchExprs[0], N: n, Inputs: in})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Data) != n {
		t.Fatalf("%d elements", len(res.Data))
	}
	st := p.Stats()
	if st.Batches != 0 {
		t.Fatalf("lone request executed as a batch (%d)", st.Batches)
	}
	if st.Served != 1 {
		t.Fatalf("served = %d", st.Served)
	}
}

// TestPoolBatchSplitsOnFault: a merged run that dies mid-batch degrades,
// never drops — the batch splits back to per-member solo evaluation on
// the rebuilt worker and every member still gets its answer.
func TestPoolBatchSplitsOnFault(t *testing.T) {
	const n = 512
	in := testInputs(n)
	var armed atomic.Bool
	armed.Store(true)
	p, err := NewPool(Config{
		Workers:     1,
		BatchWindow: 50 * time.Millisecond,
		FaultPlanFor: func(worker int) *ocl.FaultPlan {
			// First engine panics on its first kernel launch — which is the
			// merged batch run. The rebuilt engine is clean.
			if armed.CompareAndSwap(true, false) {
				return ocl.NewFaultPlan(1).PanicAt(ocl.FaultKernel, 0)
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	chans := make([]<-chan Response, len(batchExprs))
	for i, expr := range batchExprs {
		chans[i] = p.EvalAsync(context.Background(), Request{Expr: expr, N: n, Inputs: in})
	}
	for i, ch := range chans {
		r := <-ch
		if r.Err != nil {
			t.Fatalf("member %d after split: %v", i, r.Err)
		}
		if len(r.Result.Data) != n {
			t.Fatalf("member %d: %d elements", i, len(r.Result.Data))
		}
	}
	st := p.Stats()
	if st.BatchSplits == 0 {
		t.Fatal("faulted batch did not split")
	}
	if st.Restarts == 0 {
		t.Fatal("panicking worker was not restarted")
	}
	if st.Served != int64(len(batchExprs)) || st.Failed != 0 {
		t.Fatalf("served=%d failed=%d, want %d/0 — members dropped or failed", st.Served, st.Failed, len(batchExprs))
	}
}

// TestPoolBatchMetricsExposed: the batch metric family is registered and
// rendered in the Prometheus exposition, and forming wait is attributed
// separately from queue wait.
func TestPoolBatchMetricsExposed(t *testing.T) {
	const n = 128
	in := testInputs(n)
	p := newTestPool(t, Config{Workers: 1, BatchWindow: 20 * time.Millisecond})
	chans := make([]<-chan Response, 4)
	for i := range chans {
		chans[i] = p.EvalAsync(context.Background(), Request{Expr: batchExprs[i], N: n, Inputs: in})
	}
	for _, ch := range chans {
		if r := <-ch; r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	var buf strings.Builder
	if err := obs.WritePrometheus(&buf, p.Registry()); err != nil {
		t.Fatal(err)
	}
	exposition := buf.String()
	for _, metric := range []string{
		"dfg_batches_total",
		"dfg_batch_splits_total",
		"dfg_batch_cse_nodes_shared_total",
		"dfg_batch_forming_wait_seconds",
		"dfg_batch_size",
	} {
		if !strings.Contains(exposition, metric) {
			t.Errorf("exposition lacks %s", metric)
		}
	}
}

// TestPoolBatchFormingStress is the -race soak over the forming queue:
// concurrent clients submitting merge-keyed requests mixed with
// already-canceled contexts and instantly-expiring timeouts, with the
// pool closed mid-stream. The invariant is total accounting — every
// single EvalAsync channel delivers exactly one response (success or a
// typed error), whether its job was solo, mid-forming at Close, or a
// member of a batch in flight.
func TestPoolBatchFormingStress(t *testing.T) {
	const (
		n         = 256
		clients   = 8
		perClient = 25
	)
	// Two distinct bindings → two live batch keys at any moment.
	bindings := []map[string][]float32{testInputs(n), testInputs(n)}
	p, err := NewPool(Config{
		Workers:     4,
		QueueDepth:  64,
		BatchWindow: 200 * time.Microsecond,
		BatchMax:    8,
		TraceKeep:   -1,
	})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	start := make(chan struct{})
	responses := make(chan Response, clients*perClient)
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < perClient; i++ {
				req := Request{
					Expr:   batchExprs[(c+i)%len(batchExprs)],
					N:      n,
					Inputs: bindings[(c+i)%len(bindings)],
				}
				ctx := context.Background()
				switch {
				case i%5 == 3: // canceled before submit
					var cancel context.CancelFunc
					ctx, cancel = context.WithCancel(ctx)
					cancel()
				case i%7 == 4: // expires while forming or queued
					req.Timeout = time.Nanosecond
				}
				ch := p.EvalAsync(ctx, req)
				wg.Add(1)
				go func() {
					defer wg.Done()
					select {
					case r := <-ch:
						responses <- r
					case <-time.After(10 * time.Second):
						t.Error("response never delivered")
					}
				}()
			}
		}()
	}
	close(start)
	// Close mid-stream: in-flight and mid-forming requests must still be
	// answered; late submissions get ErrPoolClosed.
	time.Sleep(2 * time.Millisecond)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	close(responses)

	var served, failed int
	for r := range responses {
		if r.Err == nil {
			served++
			continue
		}
		failed++
		if !errors.Is(r.Err, ErrPoolClosed) && !errors.Is(r.Err, ErrQueueTimeout) &&
			!errors.Is(r.Err, context.Canceled) {
			t.Errorf("unexpected error class: %v", r.Err)
		}
	}
	if served+failed != clients*perClient {
		t.Fatalf("accounted %d of %d requests — responses dropped", served+failed, clients*perClient)
	}
	st := p.Stats()
	if st.Served != int64(served) {
		t.Fatalf("pool served=%d, clients observed %d", st.Served, served)
	}
}

// TestPoolBatchKeySeparation: requests differing in Opt or input
// identity never merge — each key forms its own batch (or rides solo).
func TestPoolBatchKeySeparation(t *testing.T) {
	const n = 128
	inA, inB := testInputs(n), testInputs(n)
	p := newTestPool(t, Config{Workers: 2, BatchWindow: 20 * time.Millisecond})
	var chans []<-chan Response
	// Same expressions, two different bindings, plus one per-request Opt
	// override: three distinct keys.
	for i := 0; i < 3; i++ {
		chans = append(chans,
			p.EvalAsync(context.Background(), Request{Expr: batchExprs[i], N: n, Inputs: inA}),
			p.EvalAsync(context.Background(), Request{Expr: batchExprs[i], N: n, Inputs: inB}),
			p.EvalAsync(context.Background(), Request{Expr: batchExprs[i], N: n, Inputs: inA, Opt: "paper"}),
		)
	}
	for i, ch := range chans {
		r := <-ch
		if r.Err != nil {
			t.Fatalf("request %d: %v", i, r.Err)
		}
	}
	st := p.Stats()
	if st.Served != 9 {
		t.Fatalf("served = %d, want 9", st.Served)
	}
	if st.Batches < 2 {
		t.Fatalf("batches = %d, want >= 2 (one per key with >1 member)", st.Batches)
	}
}
