package serve

import (
	"context"
	"math"
	"testing"

	"dfg"
)

// TestPoolScheduleConfig: a pool-level schedule runs every request on
// the scheduled fusion kernels, bitwise identical to a flat pool.
func TestPoolScheduleConfig(t *testing.T) {
	const n = 128
	in := testInputs(n)
	flat := newTestPool(t, Config{Workers: 2})
	sched := newTestPool(t, Config{Workers: 2, Schedule: "tile=16x16,reg=2,vec=4"})

	req := Request{Expr: dfg.VelocityMagnitudeExpr, N: n, Inputs: in}
	fres, err := flat.Submit(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	sres, err := sched.Submit(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fres.Data {
		if math.Float32bits(fres.Data[i]) != math.Float32bits(sres.Data[i]) {
			t.Fatalf("scheduled pool diverges at %d: %v vs %v", i, sres.Data[i], fres.Data[i])
		}
	}
}

// TestPoolScheduleConfigRejected: bad specs and non-fusion strategies
// fail at pool construction, not at first request.
func TestPoolScheduleConfigRejected(t *testing.T) {
	if _, err := NewPool(Config{Workers: 1, Schedule: "tile=3x3"}); err == nil {
		t.Fatal("out-of-range tile must fail NewPool")
	}
	if _, err := NewPool(Config{Workers: 1, Strategy: "vm", Schedule: "tiled"}); err == nil {
		t.Fatal("schedule on a non-fusion pool must fail NewPool")
	}
}

// TestPoolScheduleRequestOverride: per-request Schedule routes to a
// derived scheduled engine (and "flat" opts out of a pool schedule),
// with bitwise-identical results either way.
func TestPoolScheduleRequestOverride(t *testing.T) {
	const n = 96
	in := testInputs(n)
	p := newTestPool(t, Config{Workers: 1})

	base, err := p.Submit(context.Background(), Request{Expr: dfg.VelocityMagnitudeExpr, N: n, Inputs: in})
	if err != nil {
		t.Fatal(err)
	}
	over, err := p.Submit(context.Background(), Request{
		Expr: dfg.VelocityMagnitudeExpr, N: n, Inputs: in, Schedule: "vec=4",
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range base.Data {
		if math.Float32bits(base.Data[i]) != math.Float32bits(over.Data[i]) {
			t.Fatalf("schedule override diverges at %d", i)
		}
	}

	// Overriding on a scheduled pool: "flat" drops back to the paper kernel.
	sp := newTestPool(t, Config{Workers: 1, Schedule: "tiled"})
	fres, err := sp.Submit(context.Background(), Request{
		Expr: dfg.VelocityMagnitudeExpr, N: n, Inputs: in, Schedule: "flat",
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range base.Data {
		if math.Float32bits(base.Data[i]) != math.Float32bits(fres.Data[i]) {
			t.Fatalf("flat override diverges at %d", i)
		}
	}

	// A bad per-request spec surfaces as a request error, not a hang.
	if _, err := p.Submit(context.Background(), Request{
		Expr: dfg.VelocityMagnitudeExpr, N: n, Inputs: in, Schedule: "vec=3",
	}); err == nil {
		t.Fatal("bad request schedule must error")
	}
}
