// Package serve runs derived-field evaluation as a concurrent service:
// an EnginePool owns N engines — one per worker goroutine, mirroring the
// paper's one-framework-instance-per-MPI-task model — fronted by a
// single shared compile cache (internal/compile), so a hot expression
// compiles exactly once no matter how many workers evaluate it.
//
// Requests enter a bounded queue; Submit blocks for a slot (or until the
// request's deadline), EvalAsync returns a channel. Per-request timeouts
// cover queue wait: a request whose deadline passes while queued is
// failed without touching a device. Close drains the queue gracefully —
// every accepted request gets a response — and then stops the workers.
//
// Profiles from all workers are aggregated (ocl.Accumulator), giving the
// service-level view of device traffic that the per-run ocl.Profile
// gives a single engine.
package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"dfg"
	"dfg/internal/compile"
	"dfg/internal/obs"
	"dfg/internal/ocl"
	"dfg/internal/passes"
	"dfg/internal/perfdb"
)

// ErrPoolClosed is returned for requests submitted after Close.
var ErrPoolClosed = errors.New("serve: pool closed")

// ErrQueueTimeout wraps deadline errors for requests that expired before
// a worker picked them up.
var ErrQueueTimeout = errors.New("serve: request expired before execution")

// ErrWorkerPanic marks a response whose evaluation panicked on the
// device (an injected chaos panic or a genuine bug). The worker
// recovered, replaced its engine, and kept serving; the failed request
// gets this typed 5xx-style error instead of taking the process down.
var ErrWorkerPanic = errors.New("serve: worker panicked during evaluation")

// ErrWorkerUnavailable marks a request that could not be placed on any
// healthy worker: the breaker on the worker that drew it was open and
// rerouting was impossible (queue full, pool closing, or every device
// tripped).
var ErrWorkerUnavailable = errors.New("serve: no healthy worker available")

// Config sizes a pool.
type Config struct {
	// Workers is the number of engines (and goroutines). Default 4.
	Workers int
	// QueueDepth bounds the number of queued (not yet executing)
	// requests. Default 2*Workers.
	QueueDepth int
	// Device, Strategy and MemScale configure every worker's engine,
	// exactly as dfg.Config does. Each worker gets its own simulated
	// device (one queue, one profile), as the paper gives each instance
	// its own OpenCL context.
	Device   dfg.DeviceKind
	Strategy string
	MemScale int64
	// VMThreshold is the tier boundary when Strategy is "tiered":
	// requests below it run on the host bytecode VM, at or above on the
	// device. 0 means strategy.DefaultVMThreshold; ignored otherwise.
	VMThreshold int
	// Opt is the optimisation level worker engines compile at: "paper"
	// or "O2". Default "O2" — a service cares about launching fewer
	// kernels, not about reproducing the paper's exact event counts;
	// harnesses that need the paper semantics set "paper" (or drive
	// engines directly). Individual requests may override it per call
	// (Request.Opt).
	Opt string
	// DefaultTimeout applies to requests that don't set one. Zero means
	// no timeout.
	DefaultTimeout time.Duration
	// MaxCacheEntries bounds the shared compile cache. Zero keeps the
	// compile package default.
	MaxCacheEntries int

	// TraceKeep sizes the ring of recent request traces (the /trace
	// endpoint's window). Zero keeps obs.DefaultKeep; negative disables
	// request tracing entirely (metrics stay on).
	TraceKeep int
	// SlowThreshold, if positive, turns on the slow-request log: any
	// request whose end-to-end latency (queue wait + execution) reaches
	// the threshold has its full span tree written to SlowLog and
	// retained for the /slow endpoint.
	SlowThreshold time.Duration
	// SlowLog receives slow-request span trees. Defaults to os.Stderr
	// when SlowThreshold is set.
	SlowLog io.Writer

	// Recovery is the fault-recovery policy armed on every worker engine
	// (retry with backoff for transient faults, the degradation ladder
	// for capacity faults). Nil arms dfg.DefaultRetryPolicy; the seed is
	// perturbed per worker so retry jitter decorrelates across the pool.
	// Set NoRecovery to run engines fail-fast instead.
	Recovery   *dfg.RetryPolicy
	NoRecovery bool
	// BreakerThreshold is the consecutive device-fault failures that
	// open a worker's circuit breaker (default 5); a device-lost fault
	// trips it immediately regardless. BreakerCooldown is how long an
	// open breaker waits before letting one half-open health probe
	// through (default 50ms). ReplaceAfterProbes is the consecutive
	// failed probes after which the worker gives up on the device and
	// replaces it with a fresh one (default 3).
	BreakerThreshold   int
	BreakerCooldown    time.Duration
	ReplaceAfterProbes int
	// FaultPlanFor, when set, attaches a fault plan to each worker's
	// device context at construction (and again after every device
	// replacement) — the chaos-testing hook behind dfg-serve -chaos.
	FaultPlanFor func(worker int) *ocl.FaultPlan

	// PerfDir, when set, is the perf-database directory: Close (and
	// FlushPerf) write the pool's evaluation records there as
	// schema-versioned JSONL, and the flight recorder writes its
	// postmortem dumps there when a breaker trips or a worker panics.
	// Empty keeps the continuous-profiling recorder in memory only (its
	// ring is still live and inspectable) and disables flight dumps.
	PerfDir string
	// FlightKeep sizes the flight recorder's ring of recent requests
	// (0 means perfdb.DefaultFlightKeep); negative disables the flight
	// recorder entirely.
	FlightKeep int
	// TailPercent is the slowest-request percentile the tracer retains
	// beyond its recent ring (tail-based sampling). 0 means
	// obs.DefaultTailPercent; negative keeps only errored, degraded or
	// rerouted request traces.
	TailPercent float64
	// EnablePprof mounts net/http/pprof's handlers under /debug/pprof/
	// on the pool's HTTP Handler.
	EnablePprof bool
}

// Request is one evaluation: an expression program over named inputs.
type Request struct {
	// Expr is the expression program text.
	Expr string
	// N is the number of elements (the kernel ND-range).
	N int
	// Inputs binds source names to host arrays.
	Inputs map[string][]float32
	// Timeout, if positive, overrides the pool's DefaultTimeout.
	Timeout time.Duration
	// Opt, if non-empty, overrides the pool's optimisation level for
	// this request: "paper" or "O2". Both levels' compiled plans
	// coexist in the shared cache (the level is part of the cache key).
	Opt string
	// Strategy, if non-empty, overrides the pool's execution strategy
	// for this request — any name dfg accepts, including "vm" and
	// "tiered@N". Each strategy's plans occupy their own slots in the
	// shared cache, so overrides never evict the pool default's plans.
	Strategy string
}

// Response is the outcome of one request.
type Response struct {
	// Result is the derived field and its device profile (nil on error).
	Result *dfg.Result
	// Err is the failure, if any.
	Err error
	// Worker is the index of the engine that ran the request (-1 if it
	// never reached one).
	Worker int
	// Wait is the time spent queued; Run the time spent executing.
	Wait, Run time.Duration
}

// job carries a request through the queue.
type job struct {
	req      Request
	ctx      context.Context
	cancel   context.CancelFunc
	enqueued time.Time
	resp     chan Response
	// hops counts breaker reroutes, bounding how often a job may bounce
	// between tripped workers before failing ErrWorkerUnavailable.
	hops int
}

// Pool is a fixed set of worker engines behind one shared compile cache
// and one bounded request queue. All methods are safe for concurrent
// use.
type Pool struct {
	cfg   Config
	comp  *compile.Compiler
	queue chan *job
	done  chan struct{}

	// engines holds each worker's engine, for scrape-time aggregation of
	// the per-engine buffer-arena counters. engMu guards it: a worker
	// replaces its slot after a panic restart or a dead-device
	// replacement, and metric-scrape closures read it concurrently.
	engMu   sync.RWMutex
	engines []*dfg.Engine

	// breakers holds each worker's circuit breaker (fixed slice, the
	// breakers themselves are internally locked).
	breakers []*breaker

	sendMu  sync.RWMutex // guards closed against in-flight senders
	closed  bool
	senders sync.WaitGroup
	workers sync.WaitGroup

	served   atomic.Int64
	failed   atomic.Int64
	expired  atomic.Int64
	rejected atomic.Int64
	rerouted atomic.Int64 // jobs pushed back to the queue off a tripped worker
	restarts []atomic.Int64
	acc      ocl.Accumulator

	// Observability: the shared metrics registry, the request tracer
	// (nil when disabled), per-worker busy time for utilisation gauges,
	// and the request-latency histograms the workers feed.
	reg      *obs.Registry
	tracer   *obs.Tracer
	busy     []atomic.Int64 // per-worker cumulative execution ns
	waitHist *obs.Histogram
	runHist  *obs.Histogram

	// Continuous profiling: every worker engine deposits one EvalRecord
	// per evaluation into perf (a sharded ring shared by the whole
	// pool); flight keeps the postmortem ring of recent requests and
	// dumps it on breaker trips and worker panics. meta stamps both the
	// JSONL snapshots and the flight dumps with build/host identity.
	perf   *perfdb.Recorder
	flight *perfdb.FlightRecorder
	meta   perfdb.Meta

	start    time.Time
	closedAt atomic.Int64 // unix ns; 0 while the pool is open

	closeOnce sync.Once
	closeErr  error
}

// NewPool builds and starts a pool.
func NewPool(cfg Config) (*Pool, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 2 * cfg.Workers
	}
	if cfg.Opt == "" {
		cfg.Opt = "O2"
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = 5
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 50 * time.Millisecond
	}
	if cfg.ReplaceAfterProbes <= 0 {
		cfg.ReplaceAfterProbes = 3
	}
	comp := compile.NewCompiler()
	if cfg.MaxCacheEntries > 0 {
		comp.SetMaxEntries(cfg.MaxCacheEntries)
	}
	p := &Pool{
		cfg:      cfg,
		comp:     comp,
		queue:    make(chan *job, cfg.QueueDepth),
		done:     make(chan struct{}),
		reg:      obs.NewRegistry(),
		busy:     make([]atomic.Int64, cfg.Workers),
		restarts: make([]atomic.Int64, cfg.Workers),
		start:    time.Now(),
	}
	p.breakers = make([]*breaker, cfg.Workers)
	for i := range p.breakers {
		p.breakers[i] = newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown)
	}
	if cfg.TraceKeep >= 0 {
		p.tracer = obs.NewTracer(cfg.TraceKeep)
		p.tracer.SetTail(cfg.TailPercent)
	}
	p.perf = perfdb.NewRecorder(0)
	p.meta = perfdb.CollectMeta(cfg.Device.String())
	if cfg.FlightKeep >= 0 {
		p.flight = perfdb.NewFlightRecorder(cfg.PerfDir, cfg.FlightKeep, p.meta, p.perf)
	}
	if cfg.SlowThreshold > 0 && p.tracer != nil {
		logw := cfg.SlowLog
		if logw == nil {
			logw = os.Stderr
		}
		var logMu sync.Mutex
		threshold := cfg.SlowThreshold
		p.tracer.SetSlow(threshold, func(sp *obs.Span) {
			logMu.Lock()
			defer logMu.Unlock()
			fmt.Fprintf(logw, "serve: slow request: %v >= %v\n", sp.Duration(), threshold)
			sp.WriteText(logw)
		})
	}
	p.registerMetrics()
	for i := 0; i < cfg.Workers; i++ {
		eng, err := p.newEngine(i)
		if err != nil {
			return nil, err
		}
		p.engines = append(p.engines, eng)
	}
	for i := 0; i < cfg.Workers; i++ {
		p.workers.Add(1)
		go p.worker(i)
	}
	return p, nil
}

// newEngine builds one worker's engine on a fresh simulated device:
// used at pool construction and again whenever a worker replaces a dead
// or panicked device. Recovery (unless NoRecovery) is armed with a
// per-worker jitter seed, and FaultPlanFor (if set) re-attaches the
// worker's chaos schedule to the new context.
func (p *Pool) newEngine(worker int) (*dfg.Engine, error) {
	dev, err := dfg.NewDeviceFor(dfg.Config{Device: p.cfg.Device, MemScale: p.cfg.MemScale})
	if err != nil {
		return nil, err
	}
	eng, err := dfg.NewWith(dev, p.strategyName(), p.comp)
	if err != nil {
		return nil, err
	}
	eng, err = eng.WithOptLevel(p.cfg.Opt)
	if err != nil {
		return nil, err
	}
	// Workers pass their per-request span into EvalTraced, so the
	// engines get only the registry (per-fingerprint histograms).
	eng.Instrument(nil, p.reg)
	// Derived per-request variant engines are views of this one, so the
	// recorder pointer rides along into every WithOptLevel/WithStrategy
	// copy a worker makes.
	eng.SetPerfRecorder(p.perf)
	if !p.cfg.NoRecovery {
		pol := dfg.DefaultRetryPolicy()
		if p.cfg.Recovery != nil {
			cp := *p.cfg.Recovery
			pol = &cp
		}
		pol.Seed = pol.Seed*31 + int64(worker) + 1
		if err := eng.SetRecovery(pol); err != nil {
			return nil, err
		}
	}
	if p.cfg.FaultPlanFor != nil {
		eng.InjectFaults(p.cfg.FaultPlanFor(worker))
	}
	return eng, nil
}

// strategyName resolves the pool's configured strategy name, folding a
// non-zero VMThreshold into the "tiered@N" variant (as dfg.New does).
func (p *Pool) strategyName() string {
	if p.cfg.Strategy == "tiered" && p.cfg.VMThreshold > 0 {
		return fmt.Sprintf("tiered@%d", p.cfg.VMThreshold)
	}
	return p.cfg.Strategy
}

// engine returns worker i's current engine.
func (p *Pool) engine(i int) *dfg.Engine {
	p.engMu.RLock()
	defer p.engMu.RUnlock()
	return p.engines[i]
}

// uptime is the pool's lifetime, frozen at Close so post-shutdown
// scrapes and reports stay meaningful.
func (p *Pool) uptime() time.Duration {
	end := time.Now()
	if ns := p.closedAt.Load(); ns != 0 {
		end = time.Unix(0, ns)
	}
	return end.Sub(p.start)
}

// registerMetrics wires the pool's observable state into the registry.
// Counters whose source of truth already lives in pool or compiler
// atomics are exported as callback-backed series — evaluated at scrape
// time, so the hot path pays nothing for them.
func (p *Pool) registerMetrics() {
	r := p.reg
	outcomes := map[string]*atomic.Int64{
		"served": &p.served, "failed": &p.failed,
		"expired": &p.expired, "rejected": &p.rejected,
	}
	for name, src := range outcomes {
		src := src
		r.CounterFunc("dfg_requests_total", "Requests by outcome.",
			obs.Labels{"outcome": name}, func() float64 { return float64(src.Load()) })
	}
	r.GaugeFunc("dfg_queue_depth", "Requests waiting in the bounded queue.",
		nil, func() float64 { return float64(len(p.queue)) })
	r.GaugeFunc("dfg_queue_capacity", "Configured queue bound.",
		nil, func() float64 { return float64(p.cfg.QueueDepth) })
	r.GaugeFunc("dfg_workers", "Pool size (engines / worker goroutines).",
		nil, func() float64 { return float64(p.cfg.Workers) })
	r.GaugeFunc("dfg_uptime_seconds", "Time since the pool started (frozen at Close).",
		nil, func() float64 { return p.uptime().Seconds() })

	r.CounterFunc("dfg_plan_cache_hits_total", "Shared plan-cache hits.",
		nil, func() float64 { return float64(p.comp.Stats().PlanHits) })
	r.CounterFunc("dfg_plan_cache_misses_total", "Shared plan-cache misses.",
		nil, func() float64 { return float64(p.comp.Stats().PlanMisses) })
	r.CounterFunc("dfg_plan_builds_total", "Execution plans actually constructed (deduplicated misses).",
		nil, func() float64 { return float64(p.comp.Stats().PlanBuilds) })
	r.GaugeFunc("dfg_plan_cache_entries", "Cached execution plans.",
		nil, func() float64 { return float64(p.comp.Stats().PlanEntries) })

	// Buffer-arena counters, summed across every worker engine at scrape
	// time. Workers may replace their engine after a panic or device
	// loss, so the closures read the slice under engMu.
	arena := func(get func(ocl.ArenaStats) float64) func() float64 {
		return func() float64 {
			p.engMu.RLock()
			defer p.engMu.RUnlock()
			var sum float64
			for _, eng := range p.engines {
				sum += get(eng.ArenaStats())
			}
			return sum
		}
	}
	r.CounterFunc("dfg_arena_buffers_reused_total", "Device buffers served from arena free lists.",
		nil, arena(func(s ocl.ArenaStats) float64 { return float64(s.Reused) }))
	r.CounterFunc("dfg_arena_buffers_allocated_total", "Device buffers freshly allocated through arenas.",
		nil, arena(func(s ocl.ArenaStats) float64 { return float64(s.Allocated) }))
	r.CounterFunc("dfg_arena_uploads_total", "Resident-source uploads that moved data.",
		nil, arena(func(s ocl.ArenaStats) float64 { return float64(s.Uploads) }))
	r.CounterFunc("dfg_arena_upload_skips_total", "Resident-source uploads skipped (content unchanged).",
		nil, arena(func(s ocl.ArenaStats) float64 { return float64(s.UploadsSkipped) }))
	r.GaugeFunc("dfg_arena_resident_bytes", "Device memory pinned by resident source buffers.",
		nil, arena(func(s ocl.ArenaStats) float64 { return float64(s.ResidentBytes) }))
	r.GaugeFunc("dfg_arena_pooled_bytes", "Device memory idle in arena free lists.",
		nil, arena(func(s ocl.ArenaStats) float64 { return float64(s.PooledBytes) }))
	r.CounterFunc("dfg_arena_evictions_total", "Arena buffers evicted under device memory pressure.",
		nil, arena(func(s ocl.ArenaStats) float64 { return float64(s.Evictions) }))

	// Fault-tolerance series: circuit-breaker positions, engine rebuilds
	// (panic recoveries and dead-device replacements), and jobs rerouted
	// off tripped workers. dfg_retries_total and dfg_fallback_total are
	// written by the engines' recovery loops into this same registry.
	r.CounterFunc("dfg_requests_rerouted_total", "Jobs requeued off a tripped worker's device.",
		nil, func() float64 { return float64(p.rerouted.Load()) })
	for i := range p.breakers {
		i := i
		labels := obs.Labels{"worker": strconv.Itoa(i)}
		r.GaugeFunc("dfg_breaker_state", "Circuit-breaker position (0 closed, 1 half-open, 2 open).",
			labels, func() float64 { return float64(p.breakers[i].State()) })
		r.CounterFunc("dfg_breaker_trips_total", "Times the worker's breaker opened.",
			labels, func() float64 { return float64(p.breakers[i].Trips()) })
		r.CounterFunc("dfg_worker_restarts_total", "Engine rebuilds after a panic or dead device.",
			labels, func() float64 { return float64(p.restarts[i].Load()) })
	}

	r.CounterFunc("dfg_compile_cache_hits_total", "Shared compile-cache hits.",
		nil, func() float64 { return float64(p.comp.Stats().Hits) })
	r.CounterFunc("dfg_compile_cache_misses_total", "Shared compile-cache misses.",
		nil, func() float64 { return float64(p.comp.Stats().Misses) })
	r.CounterFunc("dfg_compile_builds_total", "Networks actually built (deduplicated misses).",
		nil, func() float64 { return float64(p.comp.Stats().Compiles) })
	r.GaugeFunc("dfg_compile_inflight", "Builds running right now (singleflight leaders).",
		nil, func() float64 { return float64(p.comp.Stats().Inflight) })
	r.GaugeFunc("dfg_compile_cache_entries", "Cached compiled networks.",
		nil, func() float64 { return float64(p.comp.Stats().Entries) })

	for i := range p.busy {
		i := i
		labels := obs.Labels{"worker": strconv.Itoa(i)}
		r.CounterFunc("dfg_worker_busy_seconds_total", "Cumulative execution time per worker.",
			labels, func() float64 { return time.Duration(p.busy[i].Load()).Seconds() })
		r.GaugeFunc("dfg_worker_utilization", "Fraction of pool uptime the worker spent executing.",
			labels, func() float64 {
				up := p.uptime().Seconds()
				if up <= 0 {
					return 0
				}
				return time.Duration(p.busy[i].Load()).Seconds() / up
			})
	}

	deviceCounters := []struct {
		name, help string
		get        func(ocl.Profile) float64
	}{
		{"dfg_device_writes_total", "Host-to-device transfers across all workers.",
			func(pr ocl.Profile) float64 { return float64(pr.Writes) }},
		{"dfg_device_reads_total", "Device-to-host transfers across all workers.",
			func(pr ocl.Profile) float64 { return float64(pr.Reads) }},
		{"dfg_device_kernels_total", "Kernel launches across all workers.",
			func(pr ocl.Profile) float64 { return float64(pr.Kernels) }},
		{"dfg_device_write_bytes_total", "Bytes moved host-to-device.",
			func(pr ocl.Profile) float64 { return float64(pr.WriteBytes) }},
		{"dfg_device_read_bytes_total", "Bytes moved device-to-host.",
			func(pr ocl.Profile) float64 { return float64(pr.ReadBytes) }},
		{"dfg_device_write_seconds_total", "Modeled host-to-device transfer time.",
			func(pr ocl.Profile) float64 { return pr.WriteTime.Seconds() }},
		{"dfg_device_read_seconds_total", "Modeled device-to-host transfer time.",
			func(pr ocl.Profile) float64 { return pr.ReadTime.Seconds() }},
		{"dfg_device_kernel_seconds_total", "Modeled kernel execution time.",
			func(pr ocl.Profile) float64 { return pr.KernelTime.Seconds() }},
	}
	for _, dc := range deviceCounters {
		get := dc.get
		r.CounterFunc(dc.name, dc.help, nil, func() float64 {
			prof, _, _ := p.acc.Snapshot()
			return get(prof)
		})
	}
	r.GaugeFunc("dfg_peak_device_bytes", "Largest single-run device-memory high-water mark.",
		nil, func() float64 {
			_, _, peak := p.acc.Snapshot()
			return float64(peak)
		})

	// Per-pass optimiser counters, read at scrape time from the shared
	// compiler's aggregates (every worker compiles through one compiler,
	// so the totals are pool-wide).
	for _, pass := range passes.Names() {
		pass := pass
		labels := obs.Labels{"pass": pass}
		r.CounterFunc("dfg_pass_runs_total", "Optimisation pass executions.",
			labels, func() float64 { return float64(p.comp.PassStat(pass).Runs) })
		r.CounterFunc("dfg_pass_nodes_removed_total", "Dataflow nodes removed per optimisation pass.",
			labels, func() float64 { return float64(p.comp.PassStat(pass).NodesRemoved) })
		r.CounterFunc("dfg_pass_seconds", "Cumulative time spent in each optimisation pass.",
			labels, func() float64 { return p.comp.PassStat(pass).Seconds })
	}

	// Continuous-profiling and flight-recorder health, plus the Go
	// runtime's own gauges (goroutines, heap, GC pauses) so the scrape
	// covers the process serving the pool, not just the pool.
	r.CounterFunc("dfg_perf_records_total", "Evaluation records deposited in the perf recorder.",
		nil, func() float64 { return float64(p.perf.Recorded()) })
	r.CounterFunc("dfg_perf_records_dropped_total", "Perf records overwritten in the ring before a flush.",
		nil, func() float64 { return float64(p.perf.Dropped()) })
	r.CounterFunc("dfg_flight_dumps_total", "Flight-recorder postmortem dumps written.",
		nil, func() float64 { return float64(p.flight.Dumped()) })
	obs.RegisterRuntimeMetrics(r)

	p.waitHist = r.Histogram("dfg_request_wait_seconds", "Time requests spent queued.", nil)
	p.runHist = r.Histogram("dfg_request_run_seconds", "Time requests spent executing.", nil)
}

// Registry exposes the pool's metrics registry — the /metrics endpoint's
// source, also usable for embedding the pool behind an existing scrape
// surface.
func (p *Pool) Registry() *obs.Registry { return p.reg }

// Tracer exposes the pool's request tracer (nil when tracing is
// disabled via TraceKeep < 0).
func (p *Pool) Tracer() *obs.Tracer { return p.tracer }

// PerfRecorder exposes the pool's continuous-profiling recorder (always
// non-nil): every worker evaluation deposits one perfdb.EvalRecord here.
func (p *Pool) PerfRecorder() *perfdb.Recorder { return p.perf }

// FlightRecorder exposes the pool's flight recorder (nil when disabled
// via FlightKeep < 0). Embedders may call Dump on it directly — e.g. a
// failed external soak wanting the postmortem artifact.
func (p *Pool) FlightRecorder() *perfdb.FlightRecorder { return p.flight }

// FlushPerf writes the perf recorder's current contents to Config.PerfDir
// as one schema-versioned JSONL snapshot and returns its path. It is safe
// to call at any time — including concurrently with a draining Close —
// and a pool with no PerfDir returns ("", nil) without touching disk.
func (p *Pool) FlushPerf() (string, error) {
	if p.cfg.PerfDir == "" {
		return "", nil
	}
	return perfdb.WriteFile(p.cfg.PerfDir, p.meta, p.perf.Snapshot())
}

// maxPreparedPerWorker bounds each worker's cache of open prepared-plan
// handles (and with it the device memory its arena keeps resident).
const maxPreparedPerWorker = 64

// worker drains the queue until it is closed, running each job on its
// private engine. Closing the queue (not a signal channel) is what ends
// the loop, so every job accepted before Close is still served.
//
// Each executed job records a "request" trace rooted at enqueue time:
// an explicit "queue-wait" child covering the time spent in the bounded
// queue, then the engine's pipeline spans (compile/plan/bind/execute
// with device events, plus any retry/fallback spans from the engine's
// recovery loop) — so a request's stages account for its full
// end-to-end latency, and the slow-request threshold applies to what
// the client actually waited.
//
// Requests run through prepared plans: the worker keeps a bounded cache
// of open dfg.Prepared handles keyed by expression fingerprint, so a
// hot expression's device buffers recycle through the engine's arena
// and its unchanged sources stay device-resident across requests.
// Fingerprints incorporate the referenced definitions, so a Define
// invalidates exactly the prepared handles it affects (they age out of
// the cache); when the worker exits it closes every handle, draining
// the engine's arena.
//
// The worker survives its device: evaluations are panic-shielded (an
// injected chaos panic becomes a typed ErrWorkerPanic response and the
// engine is rebuilt on a fresh device), and a circuit breaker tracks
// device faults — while it is open the worker reroutes jobs back onto
// the queue for healthy peers, after the cooldown it heals the device
// and lets one probe through, and enough failed probes replace the
// device outright.
func (p *Pool) worker(id int) {
	defer p.workers.Done()
	eng := p.engine(id)
	br := p.breakers[id]
	prepared := make(map[string]*dfg.Prepared)
	byVariant := make(map[string]*dfg.Engine)
	closeAll := func() {
		for _, pr := range prepared {
			pr.Close()
		}
		prepared = make(map[string]*dfg.Prepared)
	}
	defer func() { closeAll() }()
	// restart discards the (possibly poisoned) engine and its prepared
	// handles, builds a replacement on a fresh device, and publishes it
	// for the metric scrapers.
	restart := func() {
		closeAll()
		fresh, err := p.newEngine(id)
		if err != nil {
			// Device construction is deterministic; failing here means the
			// pool config itself is bad, which NewPool would have caught.
			// Keep limping on the old engine rather than killing the worker.
			fmt.Fprintf(os.Stderr, "serve: worker %d: engine rebuild failed: %v\n", id, err)
			return
		}
		eng = fresh
		byVariant = make(map[string]*dfg.Engine)
		p.engMu.Lock()
		p.engines[id] = fresh
		p.engMu.Unlock()
		br.reset()
		p.restarts[id].Add(1)
	}
	for j := range p.queue {
		pickup := time.Now()
		wait := pickup.Sub(j.enqueued)
		resp := Response{Worker: id, Wait: wait}
		// Record queue wait for every dequeued job, including ones that
		// expired while queued — otherwise the histogram only sees
		// survivors and under overload (exactly when wait matters) its
		// quantiles are biased toward short waits.
		p.waitHist.Observe(wait)
		if err := j.ctx.Err(); err != nil {
			// Expired (or canceled) while queued: fail fast, don't touch
			// the device.
			p.expired.Add(1)
			resp.Err = fmt.Errorf("%w: %v", ErrQueueTimeout, err)
		} else if ok, probe := br.allow(pickup); !ok {
			// Tripped device, still cooling: push the job back for a
			// healthy peer. Holding the job briefly first (longer each
			// hop) parks this worker while its peers sit blocked on the
			// queue, so the requeued job hands off to one of them instead
			// of bouncing straight back here. If it cannot be requeued
			// (queue full, pool closing, or the job already bounced across
			// the whole pool), fail it with the typed unavailability
			// error.
			hold := time.Duration(j.hops+1) * 200 * time.Microsecond
			if hold > 2*time.Millisecond {
				hold = 2 * time.Millisecond
			}
			time.Sleep(hold)
			if p.reroute(j) {
				p.rerouted.Add(1)
				continue
			}
			p.failed.Add(1)
			resp.Err = fmt.Errorf("%w: worker %d breaker open", ErrWorkerUnavailable, id)
		} else {
			if probe {
				// Half-open health probe: heal a latched device loss first,
				// simulating the driver reset the cooldown stood in for.
				eng.Heal()
			}
			root := p.tracer.Start("request")
			if root != nil {
				root.Start = j.enqueued // the trace covers queue wait too
				root.SetAttr("worker", strconv.Itoa(id))
				root.Event("queue-wait", "", j.enqueued, pickup)
				if probe {
					root.SetAttr("breaker", "probe")
				}
				if j.hops > 0 {
					// Tail retention keeps every rerouted request's trace.
					root.SetAttr("rerouted", strconv.Itoa(j.hops))
				}
			}
			res, err := p.runShielded(id, eng, byVariant, prepared, root, wait, j)
			run := time.Since(pickup)
			if root != nil {
				if err != nil {
					root.SetAttr("error", err.Error())
				}
				root.Finish()
			}
			// File the request into the flight ring before any breaker
			// bookkeeping, so a dump triggered by this very request
			// includes its own span tree.
			if p.flight != nil {
				fe := perfdb.FlightEntry{
					UnixNS: pickup.UnixNano(), Worker: id,
					Expr: j.req.Expr, N: j.req.N,
					TraceID: root.ID(), DurNS: int64(run), Span: root,
				}
				if err != nil {
					fe.Err = err.Error()
				}
				p.flight.Note(fe)
			}
			p.busy[id].Add(int64(run))
			p.runHist.Observe(run)
			resp.Run = run
			resp.Result, resp.Err = res, err
			if err != nil {
				p.failed.Add(1)
			} else {
				p.served.Add(1)
				p.acc.Add(res.Profile, res.PeakDeviceBytes)
			}
			switch {
			case errors.Is(err, ErrWorkerPanic):
				// The device (or a kernel on it) panicked; the engine state
				// is suspect. Dump the flight ring, replace the engine, and
				// keep serving.
				p.flight.Dump("worker-panic")
				restart()
			case err == nil:
				if eng.DeviceLost() {
					// The request was rescued by the recovery ladder's
					// host-VM rung, but the device underneath is still lost:
					// trip the breaker anyway so the cooldown/probe machinery
					// heals (or replaces) it instead of every request limping
					// through the VM forever.
					if br.failure(pickup, true) {
						p.flight.Dump("breaker-trip")
					}
					if br.failedProbes() >= p.cfg.ReplaceAfterProbes {
						restart()
					}
				} else {
					br.success()
				}
			default:
				p.noteFault(id, br, err, pickup, restart)
			}
		}
		j.cancel()
		j.resp <- resp
	}
}

// noteFault feeds an evaluation error to the worker's breaker. Only
// device faults count: a lost device trips the breaker immediately,
// transient or unexplained device errors count toward the consecutive
// threshold. Errors that are not device faults (bad expressions,
// capacity exhaustion after the ladder ran out) say nothing about
// device health and leave the breaker alone. Once enough half-open
// probes have failed in a row, the device is declared dead and
// replaced.
func (p *Pool) noteFault(id int, br *breaker, err error, now time.Time, restart func()) {
	var fe *ocl.FaultError
	if !errors.As(err, &fe) {
		return
	}
	var opened bool
	switch ocl.Classify(err) {
	case ocl.ClassDeviceLost:
		opened = br.failure(now, true)
	case ocl.ClassTransient, ocl.ClassPermanent:
		opened = br.failure(now, false)
	default:
		return
	}
	if opened {
		// The failure that opens a breaker is exactly the postmortem
		// moment: dump the flight ring while the failing request's span
		// tree is still in it.
		p.flight.Dump("breaker-trip")
	}
	if br.failedProbes() >= p.cfg.ReplaceAfterProbes {
		restart()
	}
}

// reroute pushes a job a tripped worker drew back onto the queue for a
// healthy peer, without blocking (a blocking send from a consumer can
// deadlock the pool). It refuses once the job has bounced more than
// twice around the pool, and during shutdown (jobs already accepted
// must resolve now, not re-enter a closing queue).
func (p *Pool) reroute(j *job) bool {
	if j.hops >= 4*p.cfg.Workers+4 {
		return false
	}
	p.sendMu.RLock()
	defer p.sendMu.RUnlock()
	if p.closed {
		return false
	}
	j.hops++
	select {
	case p.queue <- j:
		return true
	default:
		j.hops--
		return false
	}
}

// runShielded is evalPrepared behind a panic shield: an injected chaos
// panic (or a genuine bug) in the evaluation becomes a typed
// ErrWorkerPanic error instead of crashing the worker goroutine and
// deadlocking every queued client. Strategy cleanup runs during the
// unwind (buffer releases are deferred), so the engine's arena still
// drains; the caller replaces the engine anyway.
func (p *Pool) runShielded(id int, eng *dfg.Engine, byVariant map[string]*dfg.Engine,
	cache map[string]*dfg.Prepared, root *obs.Span, wait time.Duration, j *job) (res *dfg.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res = nil
			err = fmt.Errorf("%w: worker %d: %v", ErrWorkerPanic, id, r)
		}
	}()
	return evalPrepared(j.ctx, eng, byVariant, cache, root, wait, j.req)
}

// evalPrepared runs one request through the worker's prepared-plan
// cache. A request overriding Opt or Strategy is routed to the worker's
// derived engine for that (level, strategy) pair (memoized in
// byVariant); fingerprints incorporate the level, so every variant's
// handles coexist in one cache (derived views share the worker's device
// environment and arena, preserving the single-goroutine discipline —
// only this worker touches any of them). Preparing
// records the compile and plan spans under root (both are cache hits
// for a hot expression, so every request trace keeps the full stage
// set); a handle already cached under the same fingerprint wins, and
// the fresh one — which shares the cached plan anyway — is closed. The
// cache is bounded by closing an arbitrary old handle; the plan it
// wrapped stays in the shared compiler cache, so re-preparing is a map
// lookup.
func evalPrepared(ctx context.Context, eng *dfg.Engine, byVariant map[string]*dfg.Engine, cache map[string]*dfg.Prepared, root *obs.Span, wait time.Duration, req Request) (*dfg.Result, error) {
	variant := req.Opt + "|" + req.Strategy
	if variant != "|" {
		if cached, ok := byVariant[variant]; ok {
			eng = cached
		} else {
			d := eng
			var err error
			if req.Opt != "" {
				if d, err = d.WithOptLevel(req.Opt); err != nil {
					return nil, err
				}
			}
			if d, err = d.WithStrategy(req.Strategy); err != nil {
				return nil, err
			}
			byVariant[variant] = d
			eng = d
		}
	}
	// Stamp the measured queue wait on the engine that will actually run
	// (variant views carry their own pending slot), so the evaluation's
	// perf record carries it.
	eng.NoteQueueWait(wait)
	pr, err := eng.PrepareTraced(root, req.Expr)
	if err != nil {
		return nil, err
	}
	// Fingerprints cover the expression, its definitions and the opt
	// level — not the strategy — so the handle cache keys on the variant
	// too: a Strategy override must never reuse another strategy's plan.
	key := variant + "\x00" + pr.Fingerprint()
	if cached, ok := cache[key]; ok {
		pr.Close()
		pr = cached
	} else {
		if len(cache) >= maxPreparedPerWorker {
			for fp, old := range cache {
				old.Close()
				delete(cache, fp)
				break
			}
		}
		cache[key] = pr
	}
	// Thread the request's deadline into execution: a request that times
	// out mid-plan stops at the next kernel-launch boundary instead of
	// finishing work nobody is waiting for.
	return pr.EvalTracedCtx(ctx, root, req.N, req.Inputs)
}

// EvalAsync submits a request and returns a buffered channel that will
// receive exactly one Response. The request's deadline (Timeout, the
// pool default, or ctx — whichever ends first) covers queue wait; once a
// worker starts executing, the evaluation runs to completion.
func (p *Pool) EvalAsync(ctx context.Context, req Request) <-chan Response {
	resp := make(chan Response, 1)
	if ctx == nil {
		ctx = context.Background()
	}
	timeout := req.Timeout
	if timeout <= 0 {
		timeout = p.cfg.DefaultTimeout
	}
	var cancel context.CancelFunc
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, timeout)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}

	// Register as a sender under the read lock so Close can wait for
	// every in-flight enqueue before closing the queue channel.
	p.sendMu.RLock()
	if p.closed {
		p.sendMu.RUnlock()
		cancel()
		p.rejected.Add(1)
		resp <- Response{Worker: -1, Err: ErrPoolClosed}
		return resp
	}
	p.senders.Add(1)
	p.sendMu.RUnlock()

	j := &job{req: req, ctx: ctx, cancel: cancel, enqueued: time.Now(), resp: resp}
	go func() {
		defer p.senders.Done()
		select {
		case p.queue <- j:
			// A worker owns the job now (possibly after Close: jobs that
			// made it into the queue are drained gracefully).
		case <-ctx.Done():
			cancel()
			p.rejected.Add(1)
			resp <- Response{Worker: -1, Err: fmt.Errorf("%w: queue full: %v", ErrQueueTimeout, ctx.Err())}
		case <-p.done:
			cancel()
			p.rejected.Add(1)
			resp <- Response{Worker: -1, Err: ErrPoolClosed}
		}
	}()
	return resp
}

// Submit is the synchronous form of EvalAsync.
func (p *Pool) Submit(ctx context.Context, req Request) (*dfg.Result, error) {
	r := <-p.EvalAsync(ctx, req)
	return r.Result, r.Err
}

// LiveBuffers sums the unreleased device buffers across every worker's
// current device, including buffers pooled or resident in the engines'
// arenas. After Close (which drains every arena) it must be zero; the
// chaos soak treats anything else as a leak.
func (p *Pool) LiveBuffers() int {
	p.engMu.RLock()
	defer p.engMu.RUnlock()
	var n int
	for _, eng := range p.engines {
		n += eng.LiveBuffers()
	}
	return n
}

// BreakerStates reports each worker's circuit-breaker position.
func (p *Pool) BreakerStates() []string {
	states := make([]string, len(p.breakers))
	for i, b := range p.breakers {
		states[i] = b.State().String()
	}
	return states
}

// Define registers (or replaces) a named expression definition in the
// shared compiler. Every worker sees it; cached networks that reference
// the name are invalidated (and only those — cache keys fingerprint the
// definitions an expression uses). Evaluations already in flight finish
// against whichever definition snapshot they compiled with.
func (p *Pool) Define(name, text string) error {
	return p.comp.Define(name, text)
}

// Definitions lists the shared definition names, sorted.
func (p *Pool) Definitions() []string { return p.comp.Definitions() }

// Close stops accepting requests, waits for queued work to drain, and
// stops the workers. Every request accepted before Close receives a
// response; requests submitted after it fail with ErrPoolClosed. Close
// is idempotent.
//
// Shutdown flushes observability state rather than dropping it: the
// uptime clock freezes (so utilisation gauges stop decaying), and the
// metrics registry, aggregate device profile and trace rings all remain
// readable — Stats, Registry, Tracer and Report keep working on a
// closed pool, and an HTTP introspection endpoint can keep serving
// final state after the workers are gone.
func (p *Pool) Close() error {
	p.closeOnce.Do(func() {
		p.sendMu.Lock()
		p.closed = true
		p.sendMu.Unlock()
		close(p.done)    // unblocks senders stuck on a full queue
		p.senders.Wait() // every in-flight enqueue has resolved
		close(p.queue)   // workers drain the remainder and exit
		p.workers.Wait()
		p.closedAt.Store(time.Now().UnixNano()) // freeze uptime for final metrics
		if p.cfg.PerfDir != "" {
			// Persist the perf database after the last worker finishes, so
			// the snapshot covers every served request.
			if _, err := p.FlushPerf(); err != nil {
				p.closeErr = fmt.Errorf("serve: perf flush: %w", err)
			}
		}
	})
	return p.closeErr
}

// Report writes the pool's service-level summary — request outcomes,
// wait/run latency quantiles, shared-cache effectiveness, per-worker
// utilisation, and the aggregate device profile — in aligned text. It
// reads the same state /metrics exposes and works before or after
// Close; cmd/dfg-serve prints it on graceful shutdown so the final
// metrics state outlives the load generator.
func (p *Pool) Report(w io.Writer) {
	st := p.Stats()
	up := p.uptime()
	fmt.Fprintf(w, "%-28s %v\n", "uptime:", up.Round(time.Millisecond))
	fmt.Fprintf(w, "%-28s %d served, %d failed, %d expired, %d rejected\n",
		"requests:", st.Served, st.Failed, st.Expired, st.Rejected)
	if st.Rerouted > 0 || st.Restarts > 0 {
		fmt.Fprintf(w, "%-28s %d rerouted, %d engine rebuilds, breakers %v\n",
			"fault tolerance:", st.Rerouted, st.Restarts, p.BreakerStates())
	}
	if n := p.runHist.Count(); n > 0 {
		fmt.Fprintf(w, "%-28s p50=%v p90=%v p99=%v\n", "run latency:",
			p.runHist.Quantile(0.5).Round(time.Microsecond),
			p.runHist.Quantile(0.9).Round(time.Microsecond),
			p.runHist.Quantile(0.99).Round(time.Microsecond))
		fmt.Fprintf(w, "%-28s p50=%v p90=%v p99=%v\n", "queue wait:",
			p.waitHist.Quantile(0.5).Round(time.Microsecond),
			p.waitHist.Quantile(0.9).Round(time.Microsecond),
			p.waitHist.Quantile(0.99).Round(time.Microsecond))
	}
	fmt.Fprintf(w, "%-28s %d builds, %d hits, %d misses, %d entries\n",
		"shared compile cache:", st.Compiles, st.CacheHits, st.CacheMisses, st.CacheEntries)
	fmt.Fprintf(w, "%-28s %d builds, %d hits, %d misses, %d entries\n",
		"shared plan cache:", st.PlanBuilds, st.PlanHits, st.PlanMisses, st.PlanEntries)
	for i := range p.busy {
		busy := time.Duration(p.busy[i].Load())
		util := 0.0
		if up > 0 {
			util = busy.Seconds() / up.Seconds()
		}
		fmt.Fprintf(w, "%-28s busy %v (%.0f%% utilisation)\n",
			fmt.Sprintf("worker %d:", i), busy.Round(time.Millisecond), 100*util)
	}
	fmt.Fprintf(w, "%-28s %s\n", "aggregate device profile:", st.Profile.String())
	fmt.Fprintf(w, "%-28s %d bytes\n", "peak device memory (1 run):", st.PeakDeviceBytes)
	if slow := p.tracer.Slow(0); len(slow) > 0 {
		fmt.Fprintf(w, "%-28s %d (slowest %v)\n", "slow requests:",
			len(slow), slowest(slow).Round(time.Microsecond))
	}
}

// slowest returns the longest duration among the traces.
func slowest(spans []*obs.Span) time.Duration {
	var max time.Duration
	for _, sp := range spans {
		if d := sp.Duration(); d > max {
			max = d
		}
	}
	return max
}

// Stats is a point-in-time snapshot of pool activity.
type Stats struct {
	// Workers is the pool size.
	Workers int
	// Served counts successful evaluations; Failed, evaluation errors;
	// Expired, requests that timed out in the queue; Rejected, requests
	// that never entered the queue (full-queue timeout or closed pool).
	Served, Failed, Expired, Rejected int64
	// Rerouted counts jobs pushed back onto the queue off a tripped
	// worker; Restarts, engine rebuilds across all workers (panic
	// recoveries plus dead-device replacements).
	Rerouted, Restarts int64
	// Compiles, CacheHits and CacheMisses describe the shared compile
	// cache; CacheEntries is its current size.
	Compiles, CacheHits, CacheMisses int64
	CacheEntries                     int
	// PlanBuilds, PlanHits and PlanMisses describe the shared
	// execution-plan cache; PlanEntries is its current size.
	PlanBuilds, PlanHits, PlanMisses int64
	PlanEntries                      int
	// Profile is the aggregate device profile across all successful
	// runs on all workers; PeakDeviceBytes the largest single-run
	// device-memory high-water mark.
	Profile         ocl.Profile
	PeakDeviceBytes int64
}

// Stats returns current counters.
func (p *Pool) Stats() Stats {
	cs := p.comp.Stats()
	prof, _, peak := p.acc.Snapshot()
	var restarts int64
	for i := range p.restarts {
		restarts += p.restarts[i].Load()
	}
	return Stats{
		Workers:         p.cfg.Workers,
		Served:          p.served.Load(),
		Failed:          p.failed.Load(),
		Expired:         p.expired.Load(),
		Rejected:        p.rejected.Load(),
		Rerouted:        p.rerouted.Load(),
		Restarts:        restarts,
		Compiles:        cs.Compiles,
		CacheHits:       cs.Hits,
		CacheMisses:     cs.Misses,
		CacheEntries:    cs.Entries,
		PlanBuilds:      cs.PlanBuilds,
		PlanHits:        cs.PlanHits,
		PlanMisses:      cs.PlanMisses,
		PlanEntries:     cs.PlanEntries,
		Profile:         prof,
		PeakDeviceBytes: peak,
	}
}
