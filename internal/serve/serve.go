// Package serve runs derived-field evaluation as a concurrent service:
// an EnginePool owns N engines — one per worker goroutine, mirroring the
// paper's one-framework-instance-per-MPI-task model — fronted by a
// single shared compile cache (internal/compile), so a hot expression
// compiles exactly once no matter how many workers evaluate it.
//
// Requests enter a bounded queue; Submit blocks for a slot (or until the
// request's deadline), EvalAsync returns a channel. Per-request timeouts
// cover queue wait: a request whose deadline passes while queued is
// failed without touching a device. Close drains the queue gracefully —
// every accepted request gets a response — and then stops the workers.
//
// Profiles from all workers are aggregated (ocl.Accumulator), giving the
// service-level view of device traffic that the per-run ocl.Profile
// gives a single engine.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dfg"
	"dfg/internal/compile"
	"dfg/internal/ocl"
)

// ErrPoolClosed is returned for requests submitted after Close.
var ErrPoolClosed = errors.New("serve: pool closed")

// ErrQueueTimeout wraps deadline errors for requests that expired before
// a worker picked them up.
var ErrQueueTimeout = errors.New("serve: request expired before execution")

// Config sizes a pool.
type Config struct {
	// Workers is the number of engines (and goroutines). Default 4.
	Workers int
	// QueueDepth bounds the number of queued (not yet executing)
	// requests. Default 2*Workers.
	QueueDepth int
	// Device, Strategy and MemScale configure every worker's engine,
	// exactly as dfg.Config does. Each worker gets its own simulated
	// device (one queue, one profile), as the paper gives each instance
	// its own OpenCL context.
	Device   dfg.DeviceKind
	Strategy string
	MemScale int64
	// DefaultTimeout applies to requests that don't set one. Zero means
	// no timeout.
	DefaultTimeout time.Duration
	// MaxCacheEntries bounds the shared compile cache. Zero keeps the
	// compile package default.
	MaxCacheEntries int
}

// Request is one evaluation: an expression program over named inputs.
type Request struct {
	// Expr is the expression program text.
	Expr string
	// N is the number of elements (the kernel ND-range).
	N int
	// Inputs binds source names to host arrays.
	Inputs map[string][]float32
	// Timeout, if positive, overrides the pool's DefaultTimeout.
	Timeout time.Duration
}

// Response is the outcome of one request.
type Response struct {
	// Result is the derived field and its device profile (nil on error).
	Result *dfg.Result
	// Err is the failure, if any.
	Err error
	// Worker is the index of the engine that ran the request (-1 if it
	// never reached one).
	Worker int
	// Wait is the time spent queued; Run the time spent executing.
	Wait, Run time.Duration
}

// job carries a request through the queue.
type job struct {
	req      Request
	ctx      context.Context
	cancel   context.CancelFunc
	enqueued time.Time
	resp     chan Response
}

// Pool is a fixed set of worker engines behind one shared compile cache
// and one bounded request queue. All methods are safe for concurrent
// use.
type Pool struct {
	cfg   Config
	comp  *compile.Compiler
	queue chan *job
	done  chan struct{}

	sendMu  sync.RWMutex // guards closed against in-flight senders
	closed  bool
	senders sync.WaitGroup
	workers sync.WaitGroup

	served   atomic.Int64
	failed   atomic.Int64
	expired  atomic.Int64
	rejected atomic.Int64
	acc      ocl.Accumulator

	closeOnce sync.Once
	closeErr  error
}

// NewPool builds and starts a pool.
func NewPool(cfg Config) (*Pool, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 2 * cfg.Workers
	}
	comp := compile.NewCompiler()
	if cfg.MaxCacheEntries > 0 {
		comp.SetMaxEntries(cfg.MaxCacheEntries)
	}
	p := &Pool{
		cfg:   cfg,
		comp:  comp,
		queue: make(chan *job, cfg.QueueDepth),
		done:  make(chan struct{}),
	}
	for i := 0; i < cfg.Workers; i++ {
		dev, err := dfg.NewDeviceFor(dfg.Config{Device: cfg.Device, MemScale: cfg.MemScale})
		if err != nil {
			return nil, err
		}
		eng, err := dfg.NewWith(dev, cfg.Strategy, comp)
		if err != nil {
			return nil, err
		}
		p.workers.Add(1)
		go p.worker(i, eng)
	}
	return p, nil
}

// worker drains the queue until it is closed, running each job on its
// private engine. Closing the queue (not a signal channel) is what ends
// the loop, so every job accepted before Close is still served.
func (p *Pool) worker(id int, eng *dfg.Engine) {
	defer p.workers.Done()
	for j := range p.queue {
		resp := Response{Worker: id, Wait: time.Since(j.enqueued)}
		if err := j.ctx.Err(); err != nil {
			// Expired (or canceled) while queued: fail fast, don't touch
			// the device.
			p.expired.Add(1)
			resp.Err = fmt.Errorf("%w: %v", ErrQueueTimeout, err)
		} else {
			start := time.Now()
			res, err := eng.Eval(j.req.Expr, j.req.N, j.req.Inputs)
			resp.Run = time.Since(start)
			resp.Result, resp.Err = res, err
			if err != nil {
				p.failed.Add(1)
			} else {
				p.served.Add(1)
				p.acc.Add(res.Profile, res.PeakDeviceBytes)
			}
		}
		j.cancel()
		j.resp <- resp
	}
}

// EvalAsync submits a request and returns a buffered channel that will
// receive exactly one Response. The request's deadline (Timeout, the
// pool default, or ctx — whichever ends first) covers queue wait; once a
// worker starts executing, the evaluation runs to completion.
func (p *Pool) EvalAsync(ctx context.Context, req Request) <-chan Response {
	resp := make(chan Response, 1)
	if ctx == nil {
		ctx = context.Background()
	}
	timeout := req.Timeout
	if timeout <= 0 {
		timeout = p.cfg.DefaultTimeout
	}
	var cancel context.CancelFunc
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, timeout)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}

	// Register as a sender under the read lock so Close can wait for
	// every in-flight enqueue before closing the queue channel.
	p.sendMu.RLock()
	if p.closed {
		p.sendMu.RUnlock()
		cancel()
		p.rejected.Add(1)
		resp <- Response{Worker: -1, Err: ErrPoolClosed}
		return resp
	}
	p.senders.Add(1)
	p.sendMu.RUnlock()

	j := &job{req: req, ctx: ctx, cancel: cancel, enqueued: time.Now(), resp: resp}
	go func() {
		defer p.senders.Done()
		select {
		case p.queue <- j:
			// A worker owns the job now (possibly after Close: jobs that
			// made it into the queue are drained gracefully).
		case <-ctx.Done():
			cancel()
			p.rejected.Add(1)
			resp <- Response{Worker: -1, Err: fmt.Errorf("%w: queue full: %v", ErrQueueTimeout, ctx.Err())}
		case <-p.done:
			cancel()
			p.rejected.Add(1)
			resp <- Response{Worker: -1, Err: ErrPoolClosed}
		}
	}()
	return resp
}

// Submit is the synchronous form of EvalAsync.
func (p *Pool) Submit(ctx context.Context, req Request) (*dfg.Result, error) {
	r := <-p.EvalAsync(ctx, req)
	return r.Result, r.Err
}

// Define registers (or replaces) a named expression definition in the
// shared compiler. Every worker sees it; cached networks that reference
// the name are invalidated (and only those — cache keys fingerprint the
// definitions an expression uses). Evaluations already in flight finish
// against whichever definition snapshot they compiled with.
func (p *Pool) Define(name, text string) error {
	return p.comp.Define(name, text)
}

// Definitions lists the shared definition names, sorted.
func (p *Pool) Definitions() []string { return p.comp.Definitions() }

// Close stops accepting requests, waits for queued work to drain, and
// stops the workers. Every request accepted before Close receives a
// response; requests submitted after it fail with ErrPoolClosed. Close
// is idempotent.
func (p *Pool) Close() error {
	p.closeOnce.Do(func() {
		p.sendMu.Lock()
		p.closed = true
		p.sendMu.Unlock()
		close(p.done)    // unblocks senders stuck on a full queue
		p.senders.Wait() // every in-flight enqueue has resolved
		close(p.queue)   // workers drain the remainder and exit
		p.workers.Wait()
	})
	return p.closeErr
}

// Stats is a point-in-time snapshot of pool activity.
type Stats struct {
	// Workers is the pool size.
	Workers int
	// Served counts successful evaluations; Failed, evaluation errors;
	// Expired, requests that timed out in the queue; Rejected, requests
	// that never entered the queue (full-queue timeout or closed pool).
	Served, Failed, Expired, Rejected int64
	// Compiles, CacheHits and CacheMisses describe the shared compile
	// cache; CacheEntries is its current size.
	Compiles, CacheHits, CacheMisses int64
	CacheEntries                     int
	// Profile is the aggregate device profile across all successful
	// runs on all workers; PeakDeviceBytes the largest single-run
	// device-memory high-water mark.
	Profile         ocl.Profile
	PeakDeviceBytes int64
}

// Stats returns current counters.
func (p *Pool) Stats() Stats {
	cs := p.comp.Stats()
	prof, _, peak := p.acc.Snapshot()
	return Stats{
		Workers:         p.cfg.Workers,
		Served:          p.served.Load(),
		Failed:          p.failed.Load(),
		Expired:         p.expired.Load(),
		Rejected:        p.rejected.Load(),
		Compiles:        cs.Compiles,
		CacheHits:       cs.Hits,
		CacheMisses:     cs.Misses,
		CacheEntries:    cs.Entries,
		Profile:         prof,
		PeakDeviceBytes: peak,
	}
}
