// Package serve runs derived-field evaluation as a concurrent service:
// an EnginePool owns N engines — one per worker goroutine, mirroring the
// paper's one-framework-instance-per-MPI-task model — fronted by a
// single shared compile cache (internal/compile), so a hot expression
// compiles exactly once no matter how many workers evaluate it.
//
// Requests enter a bounded queue; Submit blocks for a slot (or until the
// request's deadline), EvalAsync returns a channel. Per-request timeouts
// cover queue wait: a request whose deadline passes while queued is
// failed without touching a device. Close drains the queue gracefully —
// every accepted request gets a response — and then stops the workers.
//
// With Config.BatchWindow set, a batch-forming scheduler sits in front
// of the queue: requests landing within the window that share a batch
// key (element count, opt/strategy variant, input arrays) merge into one
// cross-expression super-network, evaluated in a single run whose root
// outputs fan back out to every member — subtrees shared between member
// expressions execute once. A batch of one takes the unmodified solo
// path, and a failed merged run degrades to per-member solo evaluation
// (recovery ladder included), so batching never drops a request.
//
// Profiles from all workers are aggregated (ocl.Accumulator), giving the
// service-level view of device traffic that the per-run ocl.Profile
// gives a single engine.
package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dfg"
	"dfg/internal/compile"
	"dfg/internal/obs"
	"dfg/internal/ocl"
	"dfg/internal/passes"
	"dfg/internal/perfdb"
)

// ErrPoolClosed is returned for requests submitted after Close.
var ErrPoolClosed = errors.New("serve: pool closed")

// ErrQueueTimeout wraps deadline errors for requests that expired before
// a worker picked them up.
var ErrQueueTimeout = errors.New("serve: request expired before execution")

// ErrWorkerPanic marks a response whose evaluation panicked on the
// device (an injected chaos panic or a genuine bug). The worker
// recovered, replaced its engine, and kept serving; the failed request
// gets this typed 5xx-style error instead of taking the process down.
var ErrWorkerPanic = errors.New("serve: worker panicked during evaluation")

// ErrWorkerUnavailable marks a request that could not be placed on any
// healthy worker: the breaker on the worker that drew it was open and
// rerouting was impossible (queue full, pool closing, or every device
// tripped).
var ErrWorkerUnavailable = errors.New("serve: no healthy worker available")

// Config sizes a pool.
type Config struct {
	// Workers is the number of engines (and goroutines). Default 4.
	Workers int
	// QueueDepth bounds the number of queued (not yet executing)
	// requests. Default 2*Workers.
	QueueDepth int
	// Device, Strategy and MemScale configure every worker's engine,
	// exactly as dfg.Config does. Each worker gets its own simulated
	// device (one queue, one profile), as the paper gives each instance
	// its own OpenCL context.
	Device   dfg.DeviceKind
	Strategy string
	MemScale int64
	// VMThreshold is the tier boundary when Strategy is "tiered":
	// requests below it run on the host bytecode VM, at or above on the
	// device. 0 means strategy.DefaultVMThreshold; ignored otherwise.
	VMThreshold int
	// Schedule selects a schedule transformation for the fusion
	// strategy's generated kernels (a spec like "tile=16x16,reg=2,vec=4"
	// or the shorthands "tiled"/"flat"), exactly as dfg.Config.Schedule
	// does. Requires Strategy "" or "fusion". NewPool canonicalises and
	// validates it; schedule-tagged plans occupy their own slots in the
	// shared cache.
	Schedule string
	// Opt is the optimisation level worker engines compile at: "paper"
	// or "O2". Default "O2" — a service cares about launching fewer
	// kernels, not about reproducing the paper's exact event counts;
	// harnesses that need the paper semantics set "paper" (or drive
	// engines directly). Individual requests may override it per call
	// (Request.Opt).
	Opt string
	// DefaultTimeout applies to requests that don't set one. Zero means
	// no timeout.
	DefaultTimeout time.Duration
	// MaxCacheEntries bounds the shared compile cache. Zero keeps the
	// compile package default.
	MaxCacheEntries int

	// BatchWindow, when positive, turns on the batch-forming scheduler:
	// instead of dispatching every request to a worker individually, the
	// pool holds each incoming request for up to this long, merging
	// requests that share a batch key (same element count, optimisation
	// level, strategy and input arrays) into one cross-expression
	// super-network evaluated in a single run — subtrees shared between
	// member expressions execute once. Zero (the default) disables
	// batching; the per-request path is untouched.
	BatchWindow time.Duration
	// BatchMax caps the members of one forming batch; a batch that fills
	// up flushes immediately instead of waiting out the window. Default
	// 16. Ignored unless BatchWindow is set.
	BatchMax int

	// TraceKeep sizes the ring of recent request traces (the /trace
	// endpoint's window). Zero keeps obs.DefaultKeep; negative disables
	// request tracing entirely (metrics stay on).
	TraceKeep int
	// SlowThreshold, if positive, turns on the slow-request log: any
	// request whose end-to-end latency (queue wait + execution) reaches
	// the threshold has its full span tree written to SlowLog and
	// retained for the /slow endpoint.
	SlowThreshold time.Duration
	// SlowLog receives slow-request span trees. Defaults to os.Stderr
	// when SlowThreshold is set.
	SlowLog io.Writer

	// Recovery is the fault-recovery policy armed on every worker engine
	// (retry with backoff for transient faults, the degradation ladder
	// for capacity faults). Nil arms dfg.DefaultRetryPolicy; the seed is
	// perturbed per worker so retry jitter decorrelates across the pool.
	// Set NoRecovery to run engines fail-fast instead.
	Recovery   *dfg.RetryPolicy
	NoRecovery bool
	// BreakerThreshold is the consecutive device-fault failures that
	// open a worker's circuit breaker (default 5); a device-lost fault
	// trips it immediately regardless. BreakerCooldown is how long an
	// open breaker waits before letting one half-open health probe
	// through (default 50ms). ReplaceAfterProbes is the consecutive
	// failed probes after which the worker gives up on the device and
	// replaces it with a fresh one (default 3).
	BreakerThreshold   int
	BreakerCooldown    time.Duration
	ReplaceAfterProbes int
	// FaultPlanFor, when set, attaches a fault plan to each worker's
	// device context at construction (and again after every device
	// replacement) — the chaos-testing hook behind dfg-serve -chaos.
	FaultPlanFor func(worker int) *ocl.FaultPlan

	// PerfDir, when set, is the perf-database directory: Close (and
	// FlushPerf) write the pool's evaluation records there as
	// schema-versioned JSONL, and the flight recorder writes its
	// postmortem dumps there when a breaker trips or a worker panics.
	// Empty keeps the continuous-profiling recorder in memory only (its
	// ring is still live and inspectable) and disables flight dumps.
	PerfDir string
	// FlightKeep sizes the flight recorder's ring of recent requests
	// (0 means perfdb.DefaultFlightKeep); negative disables the flight
	// recorder entirely.
	FlightKeep int
	// TailPercent is the slowest-request percentile the tracer retains
	// beyond its recent ring (tail-based sampling). 0 means
	// obs.DefaultTailPercent; negative keeps only errored, degraded or
	// rerouted request traces.
	TailPercent float64
	// EnablePprof mounts net/http/pprof's handlers under /debug/pprof/
	// on the pool's HTTP Handler.
	EnablePprof bool
}

// Request is one evaluation: an expression program over named inputs.
type Request struct {
	// Expr is the expression program text.
	Expr string
	// N is the number of elements (the kernel ND-range).
	N int
	// Inputs binds source names to host arrays.
	Inputs map[string][]float32
	// Timeout, if positive, overrides the pool's DefaultTimeout.
	Timeout time.Duration
	// Opt, if non-empty, overrides the pool's optimisation level for
	// this request: "paper" or "O2". Both levels' compiled plans
	// coexist in the shared cache (the level is part of the cache key).
	Opt string
	// Strategy, if non-empty, overrides the pool's execution strategy
	// for this request — any name dfg accepts, including "vm" and
	// "tiered@N". Each strategy's plans occupy their own slots in the
	// shared cache, so overrides never evict the pool default's plans.
	Strategy string
	// Schedule, if non-empty, overrides the pool's kernel schedule for
	// this request ("tile=16x16,reg=2,vec=4", "tiled", "flat", ...).
	// The effective strategy must be fusion. Schedule-tagged plans
	// occupy their own cache slots, so a scheduled request never aliases
	// the flat kernel's plan — and "flat" opts a request out of a
	// pool-level schedule.
	Schedule string
}

// Response is the outcome of one request.
type Response struct {
	// Result is the derived field and its device profile (nil on error).
	Result *dfg.Result
	// Err is the failure, if any.
	Err error
	// Worker is the index of the engine that ran the request (-1 if it
	// never reached one).
	Worker int
	// Wait is the time spent queued; Run the time spent executing.
	Wait, Run time.Duration
}

// job carries a request through the queue.
type job struct {
	req      Request
	ctx      context.Context
	cancel   context.CancelFunc
	enqueued time.Time
	resp     chan Response
	// hops counts breaker reroutes, bounding how often a job may bounce
	// between tripped workers before failing ErrWorkerUnavailable.
	hops int
	// formed is when the batch former flushed the job out of its forming
	// window (zero for jobs that never passed through the former). Queue
	// wait is measured from it, so time deliberately spent forming is
	// not misattributed to queue congestion.
	formed time.Time
	// batch, when non-nil, makes this a merged batch job: the member
	// jobs (each carrying its own context and response channel) evaluate
	// together as one super-network. The carrier's req, ctx and resp are
	// unused.
	batch []*job
}

// Pool is a fixed set of worker engines behind one shared compile cache
// and one bounded request queue. All methods are safe for concurrent
// use.
type Pool struct {
	cfg   Config
	comp  *compile.Compiler
	queue chan *job
	done  chan struct{}

	// engines holds each worker's engine, for scrape-time aggregation of
	// the per-engine buffer-arena counters. engMu guards it: a worker
	// replaces its slot after a panic restart or a dead-device
	// replacement, and metric-scrape closures read it concurrently.
	engMu   sync.RWMutex
	engines []*dfg.Engine

	// breakers holds each worker's circuit breaker (fixed slice, the
	// breakers themselves are internally locked).
	breakers []*breaker

	sendMu  sync.RWMutex // guards closed against in-flight senders
	closed  bool
	senders sync.WaitGroup
	workers sync.WaitGroup

	// Batch former: when BatchWindow is set, requests wait here (keyed
	// by batch key) for up to the window before dispatching — several
	// compatible requests as one merged batch job, a lone one as an
	// ordinary solo job. formMu guards the map; lock order is sendMu
	// before formMu.
	formMu  sync.Mutex
	forming map[string]*formingBatch

	batches     atomic.Int64 // merged batch jobs executed
	batchSplits atomic.Int64 // batches degraded to solo member evaluations
	batchShared atomic.Int64 // network nodes cross-expression CSE eliminated

	served   atomic.Int64
	failed   atomic.Int64
	expired  atomic.Int64
	rejected atomic.Int64
	rerouted atomic.Int64 // jobs pushed back to the queue off a tripped worker
	restarts []atomic.Int64
	acc      ocl.Accumulator

	// Observability: the shared metrics registry, the request tracer
	// (nil when disabled), per-worker busy time for utilisation gauges,
	// and the request-latency histograms the workers feed.
	reg           *obs.Registry
	tracer        *obs.Tracer
	busy          []atomic.Int64 // per-worker cumulative execution ns
	waitHist      *obs.Histogram
	runHist       *obs.Histogram
	formingHist   *obs.Histogram // time spent in the batch forming window
	batchSizeHist *obs.Histogram // members per executed batch, encoded as µs

	// Continuous profiling: every worker engine deposits one EvalRecord
	// per evaluation into perf (a sharded ring shared by the whole
	// pool); flight keeps the postmortem ring of recent requests and
	// dumps it on breaker trips and worker panics. meta stamps both the
	// JSONL snapshots and the flight dumps with build/host identity.
	perf   *perfdb.Recorder
	flight *perfdb.FlightRecorder
	meta   perfdb.Meta

	start    time.Time
	closedAt atomic.Int64 // unix ns; 0 while the pool is open

	closeOnce sync.Once
	closeErr  error
}

// NewPool builds and starts a pool.
func NewPool(cfg Config) (*Pool, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 2 * cfg.Workers
	}
	if cfg.Opt == "" {
		cfg.Opt = "O2"
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = 5
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 50 * time.Millisecond
	}
	if cfg.ReplaceAfterProbes <= 0 {
		cfg.ReplaceAfterProbes = 3
	}
	if cfg.BatchMax <= 0 {
		cfg.BatchMax = 16
	}
	// Canonicalise the pool schedule up front: a bad spec (or a schedule
	// on a non-fusion strategy) fails here, before any worker starts.
	spec, err := passes.ParseScheduleSpec(cfg.Schedule)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	if !spec.IsFlat() && cfg.Strategy != "" && cfg.Strategy != "fusion" {
		return nil, fmt.Errorf("serve: schedule %q requires the fusion strategy, not %q", cfg.Schedule, cfg.Strategy)
	}
	if spec.IsFlat() {
		cfg.Schedule = ""
	} else {
		cfg.Schedule = spec.CacheTag()
	}
	comp := compile.NewCompiler()
	if cfg.MaxCacheEntries > 0 {
		comp.SetMaxEntries(cfg.MaxCacheEntries)
	}
	p := &Pool{
		cfg:      cfg,
		comp:     comp,
		queue:    make(chan *job, cfg.QueueDepth),
		done:     make(chan struct{}),
		forming:  make(map[string]*formingBatch),
		reg:      obs.NewRegistry(),
		busy:     make([]atomic.Int64, cfg.Workers),
		restarts: make([]atomic.Int64, cfg.Workers),
		start:    time.Now(),
	}
	p.breakers = make([]*breaker, cfg.Workers)
	for i := range p.breakers {
		p.breakers[i] = newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown)
	}
	if cfg.TraceKeep >= 0 {
		p.tracer = obs.NewTracer(cfg.TraceKeep)
		p.tracer.SetTail(cfg.TailPercent)
	}
	p.perf = perfdb.NewRecorder(0)
	p.meta = perfdb.CollectMeta(cfg.Device.String())
	if cfg.FlightKeep >= 0 {
		p.flight = perfdb.NewFlightRecorder(cfg.PerfDir, cfg.FlightKeep, p.meta, p.perf)
	}
	if cfg.SlowThreshold > 0 && p.tracer != nil {
		logw := cfg.SlowLog
		if logw == nil {
			logw = os.Stderr
		}
		var logMu sync.Mutex
		threshold := cfg.SlowThreshold
		p.tracer.SetSlow(threshold, func(sp *obs.Span) {
			logMu.Lock()
			defer logMu.Unlock()
			fmt.Fprintf(logw, "serve: slow request: %v >= %v\n", sp.Duration(), threshold)
			sp.WriteText(logw)
		})
	}
	p.registerMetrics()
	for i := 0; i < cfg.Workers; i++ {
		eng, err := p.newEngine(i)
		if err != nil {
			return nil, err
		}
		p.engines = append(p.engines, eng)
	}
	for i := 0; i < cfg.Workers; i++ {
		p.workers.Add(1)
		go p.worker(i)
	}
	return p, nil
}

// newEngine builds one worker's engine on a fresh simulated device:
// used at pool construction and again whenever a worker replaces a dead
// or panicked device. Recovery (unless NoRecovery) is armed with a
// per-worker jitter seed, and FaultPlanFor (if set) re-attaches the
// worker's chaos schedule to the new context.
func (p *Pool) newEngine(worker int) (*dfg.Engine, error) {
	dev, err := dfg.NewDeviceFor(dfg.Config{Device: p.cfg.Device, MemScale: p.cfg.MemScale})
	if err != nil {
		return nil, err
	}
	eng, err := dfg.NewWith(dev, p.strategyName(), p.comp)
	if err != nil {
		return nil, err
	}
	eng, err = eng.WithOptLevel(p.cfg.Opt)
	if err != nil {
		return nil, err
	}
	// Workers pass their per-request span into EvalTraced, so the
	// engines get only the registry (per-fingerprint histograms).
	eng.Instrument(nil, p.reg)
	// Derived per-request variant engines are views of this one, so the
	// recorder pointer rides along into every WithOptLevel/WithStrategy
	// copy a worker makes.
	eng.SetPerfRecorder(p.perf)
	if !p.cfg.NoRecovery {
		pol := dfg.DefaultRetryPolicy()
		if p.cfg.Recovery != nil {
			cp := *p.cfg.Recovery
			pol = &cp
		}
		pol.Seed = pol.Seed*31 + int64(worker) + 1
		if err := eng.SetRecovery(pol); err != nil {
			return nil, err
		}
	}
	if p.cfg.FaultPlanFor != nil {
		eng.InjectFaults(p.cfg.FaultPlanFor(worker))
	}
	return eng, nil
}

// strategyName resolves the pool's configured strategy name, folding a
// non-zero VMThreshold into the "tiered@N" variant (as dfg.New does)
// and a configured schedule into the "fusion+<spec>" variant. NewPool
// already validated and canonicalised the schedule.
func (p *Pool) strategyName() string {
	if p.cfg.Strategy == "tiered" && p.cfg.VMThreshold > 0 {
		return fmt.Sprintf("tiered@%d", p.cfg.VMThreshold)
	}
	if p.cfg.Schedule != "" {
		return "fusion+" + p.cfg.Schedule
	}
	return p.cfg.Strategy
}

// engine returns worker i's current engine.
func (p *Pool) engine(i int) *dfg.Engine {
	p.engMu.RLock()
	defer p.engMu.RUnlock()
	return p.engines[i]
}

// uptime is the pool's lifetime, frozen at Close so post-shutdown
// scrapes and reports stay meaningful.
func (p *Pool) uptime() time.Duration {
	end := time.Now()
	if ns := p.closedAt.Load(); ns != 0 {
		end = time.Unix(0, ns)
	}
	return end.Sub(p.start)
}

// registerMetrics wires the pool's observable state into the registry.
// Counters whose source of truth already lives in pool or compiler
// atomics are exported as callback-backed series — evaluated at scrape
// time, so the hot path pays nothing for them.
func (p *Pool) registerMetrics() {
	r := p.reg
	outcomes := map[string]*atomic.Int64{
		"served": &p.served, "failed": &p.failed,
		"expired": &p.expired, "rejected": &p.rejected,
	}
	for name, src := range outcomes {
		src := src
		r.CounterFunc("dfg_requests_total", "Requests by outcome.",
			obs.Labels{"outcome": name}, func() float64 { return float64(src.Load()) })
	}
	r.GaugeFunc("dfg_queue_depth", "Requests waiting in the bounded queue.",
		nil, func() float64 { return float64(len(p.queue)) })
	r.GaugeFunc("dfg_queue_capacity", "Configured queue bound.",
		nil, func() float64 { return float64(p.cfg.QueueDepth) })
	r.GaugeFunc("dfg_workers", "Pool size (engines / worker goroutines).",
		nil, func() float64 { return float64(p.cfg.Workers) })
	r.GaugeFunc("dfg_uptime_seconds", "Time since the pool started (frozen at Close).",
		nil, func() float64 { return p.uptime().Seconds() })

	r.CounterFunc("dfg_plan_cache_hits_total", "Shared plan-cache hits.",
		nil, func() float64 { return float64(p.comp.Stats().PlanHits) })
	r.CounterFunc("dfg_plan_cache_misses_total", "Shared plan-cache misses.",
		nil, func() float64 { return float64(p.comp.Stats().PlanMisses) })
	r.CounterFunc("dfg_plan_builds_total", "Execution plans actually constructed (deduplicated misses).",
		nil, func() float64 { return float64(p.comp.Stats().PlanBuilds) })
	r.GaugeFunc("dfg_plan_cache_entries", "Cached execution plans.",
		nil, func() float64 { return float64(p.comp.Stats().PlanEntries) })

	// Buffer-arena counters, summed across every worker engine at scrape
	// time. Workers may replace their engine after a panic or device
	// loss, so the closures read the slice under engMu.
	arena := func(get func(ocl.ArenaStats) float64) func() float64 {
		return func() float64 {
			p.engMu.RLock()
			defer p.engMu.RUnlock()
			var sum float64
			for _, eng := range p.engines {
				sum += get(eng.ArenaStats())
			}
			return sum
		}
	}
	r.CounterFunc("dfg_arena_buffers_reused_total", "Device buffers served from arena free lists.",
		nil, arena(func(s ocl.ArenaStats) float64 { return float64(s.Reused) }))
	r.CounterFunc("dfg_arena_buffers_allocated_total", "Device buffers freshly allocated through arenas.",
		nil, arena(func(s ocl.ArenaStats) float64 { return float64(s.Allocated) }))
	r.CounterFunc("dfg_arena_uploads_total", "Resident-source uploads that moved data.",
		nil, arena(func(s ocl.ArenaStats) float64 { return float64(s.Uploads) }))
	r.CounterFunc("dfg_arena_upload_skips_total", "Resident-source uploads skipped (content unchanged).",
		nil, arena(func(s ocl.ArenaStats) float64 { return float64(s.UploadsSkipped) }))
	r.GaugeFunc("dfg_arena_resident_bytes", "Device memory pinned by resident source buffers.",
		nil, arena(func(s ocl.ArenaStats) float64 { return float64(s.ResidentBytes) }))
	r.GaugeFunc("dfg_arena_pooled_bytes", "Device memory idle in arena free lists.",
		nil, arena(func(s ocl.ArenaStats) float64 { return float64(s.PooledBytes) }))
	r.CounterFunc("dfg_arena_evictions_total", "Arena buffers evicted under device memory pressure.",
		nil, arena(func(s ocl.ArenaStats) float64 { return float64(s.Evictions) }))

	// Fault-tolerance series: circuit-breaker positions, engine rebuilds
	// (panic recoveries and dead-device replacements), and jobs rerouted
	// off tripped workers. dfg_retries_total and dfg_fallback_total are
	// written by the engines' recovery loops into this same registry.
	r.CounterFunc("dfg_requests_rerouted_total", "Jobs requeued off a tripped worker's device.",
		nil, func() float64 { return float64(p.rerouted.Load()) })
	for i := range p.breakers {
		i := i
		labels := obs.Labels{"worker": strconv.Itoa(i)}
		r.GaugeFunc("dfg_breaker_state", "Circuit-breaker position (0 closed, 1 half-open, 2 open).",
			labels, func() float64 { return float64(p.breakers[i].State()) })
		r.CounterFunc("dfg_breaker_trips_total", "Times the worker's breaker opened.",
			labels, func() float64 { return float64(p.breakers[i].Trips()) })
		r.CounterFunc("dfg_worker_restarts_total", "Engine rebuilds after a panic or dead device.",
			labels, func() float64 { return float64(p.restarts[i].Load()) })
	}

	r.CounterFunc("dfg_compile_cache_hits_total", "Shared compile-cache hits.",
		nil, func() float64 { return float64(p.comp.Stats().Hits) })
	r.CounterFunc("dfg_compile_cache_misses_total", "Shared compile-cache misses.",
		nil, func() float64 { return float64(p.comp.Stats().Misses) })
	r.CounterFunc("dfg_compile_builds_total", "Networks actually built (deduplicated misses).",
		nil, func() float64 { return float64(p.comp.Stats().Compiles) })
	r.GaugeFunc("dfg_compile_inflight", "Builds running right now (singleflight leaders).",
		nil, func() float64 { return float64(p.comp.Stats().Inflight) })
	r.GaugeFunc("dfg_compile_cache_entries", "Cached compiled networks.",
		nil, func() float64 { return float64(p.comp.Stats().Entries) })

	for i := range p.busy {
		i := i
		labels := obs.Labels{"worker": strconv.Itoa(i)}
		r.CounterFunc("dfg_worker_busy_seconds_total", "Cumulative execution time per worker.",
			labels, func() float64 { return time.Duration(p.busy[i].Load()).Seconds() })
		r.GaugeFunc("dfg_worker_utilization", "Fraction of pool uptime the worker spent executing.",
			labels, func() float64 {
				up := p.uptime().Seconds()
				if up <= 0 {
					return 0
				}
				return time.Duration(p.busy[i].Load()).Seconds() / up
			})
	}

	deviceCounters := []struct {
		name, help string
		get        func(ocl.Profile) float64
	}{
		{"dfg_device_writes_total", "Host-to-device transfers across all workers.",
			func(pr ocl.Profile) float64 { return float64(pr.Writes) }},
		{"dfg_device_reads_total", "Device-to-host transfers across all workers.",
			func(pr ocl.Profile) float64 { return float64(pr.Reads) }},
		{"dfg_device_kernels_total", "Kernel launches across all workers.",
			func(pr ocl.Profile) float64 { return float64(pr.Kernels) }},
		{"dfg_device_write_bytes_total", "Bytes moved host-to-device.",
			func(pr ocl.Profile) float64 { return float64(pr.WriteBytes) }},
		{"dfg_device_read_bytes_total", "Bytes moved device-to-host.",
			func(pr ocl.Profile) float64 { return float64(pr.ReadBytes) }},
		{"dfg_device_write_seconds_total", "Modeled host-to-device transfer time.",
			func(pr ocl.Profile) float64 { return pr.WriteTime.Seconds() }},
		{"dfg_device_read_seconds_total", "Modeled device-to-host transfer time.",
			func(pr ocl.Profile) float64 { return pr.ReadTime.Seconds() }},
		{"dfg_device_kernel_seconds_total", "Modeled kernel execution time.",
			func(pr ocl.Profile) float64 { return pr.KernelTime.Seconds() }},
	}
	for _, dc := range deviceCounters {
		get := dc.get
		r.CounterFunc(dc.name, dc.help, nil, func() float64 {
			prof, _, _ := p.acc.Snapshot()
			return get(prof)
		})
	}
	r.GaugeFunc("dfg_peak_device_bytes", "Largest single-run device-memory high-water mark.",
		nil, func() float64 {
			_, _, peak := p.acc.Snapshot()
			return float64(peak)
		})

	// Per-pass optimiser counters, read at scrape time from the shared
	// compiler's aggregates (every worker compiles through one compiler,
	// so the totals are pool-wide).
	for _, pass := range passes.Names() {
		pass := pass
		labels := obs.Labels{"pass": pass}
		r.CounterFunc("dfg_pass_runs_total", "Optimisation pass executions.",
			labels, func() float64 { return float64(p.comp.PassStat(pass).Runs) })
		r.CounterFunc("dfg_pass_nodes_removed_total", "Dataflow nodes removed per optimisation pass.",
			labels, func() float64 { return float64(p.comp.PassStat(pass).NodesRemoved) })
		r.CounterFunc("dfg_pass_seconds", "Cumulative time spent in each optimisation pass.",
			labels, func() float64 { return p.comp.PassStat(pass).Seconds })
	}

	// Continuous-profiling and flight-recorder health, plus the Go
	// runtime's own gauges (goroutines, heap, GC pauses) so the scrape
	// covers the process serving the pool, not just the pool.
	r.CounterFunc("dfg_perf_records_total", "Evaluation records deposited in the perf recorder.",
		nil, func() float64 { return float64(p.perf.Recorded()) })
	r.CounterFunc("dfg_perf_records_dropped_total", "Perf records overwritten in the ring before a flush.",
		nil, func() float64 { return float64(p.perf.Dropped()) })
	r.CounterFunc("dfg_flight_dumps_total", "Flight-recorder postmortem dumps written.",
		nil, func() float64 { return float64(p.flight.Dumped()) })
	obs.RegisterRuntimeMetrics(r)

	// Batch-forming scheduler series. The size histogram reuses the
	// log-bucketed duration histogram by encoding a batch of n members
	// as n microseconds, so its quantiles read back as member counts in
	// µs units.
	r.CounterFunc("dfg_batches_total", "Merged batch jobs executed.",
		nil, func() float64 { return float64(p.batches.Load()) })
	r.CounterFunc("dfg_batch_splits_total", "Batches degraded to per-member solo evaluation after a merged run failed.",
		nil, func() float64 { return float64(p.batchSplits.Load()) })
	r.CounterFunc("dfg_batch_cse_nodes_shared_total", "Dataflow nodes cross-expression CSE eliminated across executed batches.",
		nil, func() float64 { return float64(p.batchShared.Load()) })
	p.formingHist = r.Histogram("dfg_batch_forming_wait_seconds", "Time requests spent in the batch forming window.", nil)
	p.batchSizeHist = r.Histogram("dfg_batch_size", "Members per executed batch (encoded as microseconds).", nil)

	p.waitHist = r.Histogram("dfg_request_wait_seconds", "Time requests spent queued (excluding the batch forming window).", nil)
	p.runHist = r.Histogram("dfg_request_run_seconds", "Time requests spent executing.", nil)
}

// Registry exposes the pool's metrics registry — the /metrics endpoint's
// source, also usable for embedding the pool behind an existing scrape
// surface.
func (p *Pool) Registry() *obs.Registry { return p.reg }

// Tracer exposes the pool's request tracer (nil when tracing is
// disabled via TraceKeep < 0).
func (p *Pool) Tracer() *obs.Tracer { return p.tracer }

// PerfRecorder exposes the pool's continuous-profiling recorder (always
// non-nil): every worker evaluation deposits one perfdb.EvalRecord here.
func (p *Pool) PerfRecorder() *perfdb.Recorder { return p.perf }

// FlightRecorder exposes the pool's flight recorder (nil when disabled
// via FlightKeep < 0). Embedders may call Dump on it directly — e.g. a
// failed external soak wanting the postmortem artifact.
func (p *Pool) FlightRecorder() *perfdb.FlightRecorder { return p.flight }

// FlushPerf writes the perf recorder's current contents to Config.PerfDir
// as one schema-versioned JSONL snapshot and returns its path. It is safe
// to call at any time — including concurrently with a draining Close —
// and a pool with no PerfDir returns ("", nil) without touching disk.
func (p *Pool) FlushPerf() (string, error) {
	if p.cfg.PerfDir == "" {
		return "", nil
	}
	return perfdb.WriteFile(p.cfg.PerfDir, p.meta, p.perf.Snapshot())
}

// maxPreparedPerWorker bounds each worker's cache of open prepared-plan
// handles (and with it the device memory its arena keeps resident).
const maxPreparedPerWorker = 64

// worker drains the queue until it is closed, running each job on its
// private engine. Closing the queue (not a signal channel) is what ends
// the loop, so every job accepted before Close is still served. Solo
// jobs run through runJob; merged batch jobs (the batch former's
// output) through runBatch, which fans one super-network evaluation
// back out to every member's response channel.
//
// Each executed job records a "request" trace rooted at enqueue time:
// an explicit "queue-wait" child covering the time spent in the bounded
// queue, then the engine's pipeline spans (compile/plan/bind/execute
// with device events, plus any retry/fallback spans from the engine's
// recovery loop) — so a request's stages account for its full
// end-to-end latency, and the slow-request threshold applies to what
// the client actually waited.
//
// Requests run through prepared plans: the worker keeps a bounded cache
// of open dfg.Prepared handles keyed by expression fingerprint, so a
// hot expression's device buffers recycle through the engine's arena
// and its unchanged sources stay device-resident across requests.
// Fingerprints incorporate the referenced definitions, so a Define
// invalidates exactly the prepared handles it affects (they age out of
// the cache); when the worker exits it closes every handle, draining
// the engine's arena.
//
// The worker survives its device: evaluations are panic-shielded (an
// injected chaos panic becomes a typed ErrWorkerPanic response and the
// engine is rebuilt on a fresh device), and a circuit breaker tracks
// device faults — while it is open the worker reroutes jobs back onto
// the queue for healthy peers, after the cooldown it heals the device
// and lets one probe through, and enough failed probes replace the
// device outright.
func (p *Pool) worker(id int) {
	defer p.workers.Done()
	ws := &workerState{
		id:        id,
		eng:       p.engine(id),
		br:        p.breakers[id],
		prepared:  make(map[string]*dfg.Prepared),
		batches:   make(map[string]*dfg.PreparedBatch),
		byVariant: make(map[string]*dfg.Engine),
	}
	defer ws.closeAll()
	for j := range p.queue {
		if j.batch != nil {
			p.runBatch(ws, j)
			continue
		}
		p.runJob(ws, j)
	}
}

// workerState is one worker goroutine's private state: its engine (and
// the variant views derived from it), its circuit breaker, and its
// bounded caches of open prepared handles — solo and batch. Only the
// owning worker touches any of it.
type workerState struct {
	id        int
	eng       *dfg.Engine
	br        *breaker
	prepared  map[string]*dfg.Prepared
	batches   map[string]*dfg.PreparedBatch
	byVariant map[string]*dfg.Engine
}

// closeAll closes every open prepared handle, draining the engine's
// buffer arena.
func (ws *workerState) closeAll() {
	for _, pr := range ws.prepared {
		pr.Close()
	}
	ws.prepared = make(map[string]*dfg.Prepared)
	for _, pb := range ws.batches {
		pb.Close()
	}
	ws.batches = make(map[string]*dfg.PreparedBatch)
}

// restartWorker discards the worker's (possibly poisoned) engine and its
// prepared handles, builds a replacement on a fresh device, and
// publishes it for the metric scrapers.
func (p *Pool) restartWorker(ws *workerState) {
	ws.closeAll()
	fresh, err := p.newEngine(ws.id)
	if err != nil {
		// Device construction is deterministic; failing here means the
		// pool config itself is bad, which NewPool would have caught.
		// Keep limping on the old engine rather than killing the worker.
		fmt.Fprintf(os.Stderr, "serve: worker %d: engine rebuild failed: %v\n", ws.id, err)
		return
	}
	ws.eng = fresh
	ws.byVariant = make(map[string]*dfg.Engine)
	p.engMu.Lock()
	p.engines[ws.id] = fresh
	p.engMu.Unlock()
	ws.br.reset()
	p.restarts[ws.id].Add(1)
}

// runJob runs one solo job: queue-wait accounting, the expired-in-queue
// fast fail and the breaker gate, then execution via execJob.
func (p *Pool) runJob(ws *workerState, j *job) {
	pickup := time.Now()
	wait := pickup.Sub(j.enqueued) // what the client has waited so far
	qwait := wait                  // the queue's share of it
	if !j.formed.IsZero() {
		qwait = pickup.Sub(j.formed)
	}
	// Record queue wait for every dequeued job, including ones that
	// expired while queued — otherwise the histogram only sees
	// survivors and under overload (exactly when wait matters) its
	// quantiles are biased toward short waits. A job that passed through
	// the batch former measures from its flush stamp: the forming window
	// was spent deliberately, and is observed separately at flush.
	p.waitHist.Observe(qwait)
	if err := j.ctx.Err(); err != nil {
		// Expired (or canceled) while queued: fail fast, don't touch
		// the device.
		p.expired.Add(1)
		j.cancel()
		j.resp <- Response{Worker: ws.id, Wait: wait, Err: fmt.Errorf("%w: %v", ErrQueueTimeout, err)}
		return
	}
	ok, probe := ws.br.allow(pickup)
	if !ok {
		// Tripped device, still cooling: push the job back for a
		// healthy peer. Holding the job briefly first (longer each
		// hop) parks this worker while its peers sit blocked on the
		// queue, so the requeued job hands off to one of them instead
		// of bouncing straight back here. If it cannot be requeued
		// (queue full, pool closing, or the job already bounced across
		// the whole pool), fail it with the typed unavailability
		// error.
		hold := time.Duration(j.hops+1) * 200 * time.Microsecond
		if hold > 2*time.Millisecond {
			hold = 2 * time.Millisecond
		}
		time.Sleep(hold)
		if p.reroute(j) {
			p.rerouted.Add(1)
			return
		}
		p.failed.Add(1)
		j.cancel()
		j.resp <- Response{Worker: ws.id, Wait: wait, Err: fmt.Errorf("%w: worker %d breaker open", ErrWorkerUnavailable, ws.id)}
		return
	}
	p.execJob(ws, j, pickup, qwait, probe)
}

// execJob executes one solo job on the worker's engine — the request
// trace, the panic shield, flight filing, outcome counters and breaker
// bookkeeping — and delivers the response. It is also the landing path
// for batch members degraded to solo execution after a merged run
// failed.
func (p *Pool) execJob(ws *workerState, j *job, pickup time.Time, qwait time.Duration, probe bool) {
	if probe {
		// Half-open health probe: heal a latched device loss first,
		// simulating the driver reset the cooldown stood in for.
		ws.eng.Heal()
	}
	resp := Response{Worker: ws.id, Wait: pickup.Sub(j.enqueued)}
	root := p.tracer.Start("request")
	if root != nil {
		root.Start = j.enqueued // the trace covers queue (and forming) wait too
		root.SetAttr("worker", strconv.Itoa(ws.id))
		if !j.formed.IsZero() {
			root.Event("batch-forming", "", j.enqueued, j.formed)
			root.Event("queue-wait", "", j.formed, pickup)
		} else {
			root.Event("queue-wait", "", j.enqueued, pickup)
		}
		if probe {
			root.SetAttr("breaker", "probe")
		}
		if j.hops > 0 {
			// Tail retention keeps every rerouted request's trace.
			root.SetAttr("rerouted", strconv.Itoa(j.hops))
		}
	}
	res, err := p.runShielded(ws, root, qwait, j)
	run := time.Since(pickup)
	if root != nil {
		if err != nil {
			root.SetAttr("error", err.Error())
		}
		root.Finish()
	}
	// File the request into the flight ring before any breaker
	// bookkeeping, so a dump triggered by this very request
	// includes its own span tree.
	if p.flight != nil {
		fe := perfdb.FlightEntry{
			UnixNS: pickup.UnixNano(), Worker: ws.id,
			Expr: j.req.Expr, N: j.req.N,
			TraceID: root.ID(), DurNS: int64(run), Span: root,
		}
		if err != nil {
			fe.Err = err.Error()
		}
		p.flight.Note(fe)
	}
	p.busy[ws.id].Add(int64(run))
	p.runHist.Observe(run)
	resp.Run = run
	resp.Result, resp.Err = res, err
	if err != nil {
		p.failed.Add(1)
	} else {
		p.served.Add(1)
		p.acc.Add(res.Profile, res.PeakDeviceBytes)
	}
	switch {
	case errors.Is(err, ErrWorkerPanic):
		// The device (or a kernel on it) panicked; the engine state
		// is suspect. Dump the flight ring, replace the engine, and
		// keep serving.
		p.flight.Dump("worker-panic")
		p.restartWorker(ws)
	case err == nil:
		if ws.eng.DeviceLost() {
			// The request was rescued by the recovery ladder's
			// host-VM rung, but the device underneath is still lost:
			// trip the breaker anyway so the cooldown/probe machinery
			// heals (or replaces) it instead of every request limping
			// through the VM forever.
			if ws.br.failure(pickup, true) {
				p.flight.Dump("breaker-trip")
			}
			if ws.br.failedProbes() >= p.cfg.ReplaceAfterProbes {
				p.restartWorker(ws)
			}
		} else {
			ws.br.success()
		}
	default:
		p.noteFault(ws, err, pickup)
	}
	j.cancel()
	j.resp <- resp
}

// noteFault feeds an evaluation error to the worker's breaker. Only
// device faults count: a lost device trips the breaker immediately,
// transient or unexplained device errors count toward the consecutive
// threshold. Errors that are not device faults (bad expressions,
// capacity exhaustion after the ladder ran out) say nothing about
// device health and leave the breaker alone. Once enough half-open
// probes have failed in a row, the device is declared dead and
// replaced.
func (p *Pool) noteFault(ws *workerState, err error, now time.Time) {
	var fe *ocl.FaultError
	if !errors.As(err, &fe) {
		return
	}
	var opened bool
	switch ocl.Classify(err) {
	case ocl.ClassDeviceLost:
		opened = ws.br.failure(now, true)
	case ocl.ClassTransient, ocl.ClassPermanent:
		opened = ws.br.failure(now, false)
	default:
		return
	}
	if opened {
		// The failure that opens a breaker is exactly the postmortem
		// moment: dump the flight ring while the failing request's span
		// tree is still in it.
		p.flight.Dump("breaker-trip")
	}
	if ws.br.failedProbes() >= p.cfg.ReplaceAfterProbes {
		p.restartWorker(ws)
	}
}

// reroute pushes a job a tripped worker drew back onto the queue for a
// healthy peer, without blocking (a blocking send from a consumer can
// deadlock the pool). It refuses once the job has bounced more than
// twice around the pool, and during shutdown (jobs already accepted
// must resolve now, not re-enter a closing queue).
func (p *Pool) reroute(j *job) bool {
	if j.hops >= 4*p.cfg.Workers+4 {
		return false
	}
	p.sendMu.RLock()
	defer p.sendMu.RUnlock()
	if p.closed {
		return false
	}
	j.hops++
	select {
	case p.queue <- j:
		return true
	default:
		j.hops--
		return false
	}
}

// runShielded is evalPrepared behind a panic shield: an injected chaos
// panic (or a genuine bug) in the evaluation becomes a typed
// ErrWorkerPanic error instead of crashing the worker goroutine and
// deadlocking every queued client. Strategy cleanup runs during the
// unwind (buffer releases are deferred), so the engine's arena still
// drains; the caller replaces the engine anyway.
func (p *Pool) runShielded(ws *workerState, root *obs.Span, qwait time.Duration, j *job) (res *dfg.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res = nil
			err = fmt.Errorf("%w: worker %d: %v", ErrWorkerPanic, ws.id, r)
		}
	}()
	return evalPrepared(j.ctx, ws, root, qwait, j.req)
}

// resolveVariant routes a request overriding Opt, Strategy or Schedule
// to the worker's derived engine for that (level, strategy, schedule)
// triple, memoized in byVariant. Derived views share the worker's device environment and
// arena, preserving the single-goroutine discipline — only this worker
// touches any of them.
func resolveVariant(ws *workerState, req Request) (*dfg.Engine, string, error) {
	variant := req.Opt + "|" + req.Strategy + "|" + req.Schedule
	eng := ws.eng
	if variant != "||" {
		if cached, ok := ws.byVariant[variant]; ok {
			eng = cached
		} else {
			d := eng
			var err error
			if req.Opt != "" {
				if d, err = d.WithOptLevel(req.Opt); err != nil {
					return nil, "", err
				}
			}
			if d, err = d.WithStrategy(req.Strategy); err != nil {
				return nil, "", err
			}
			if req.Schedule != "" {
				if d, err = d.WithSchedule(req.Schedule); err != nil {
					return nil, "", err
				}
			}
			ws.byVariant[variant] = d
			eng = d
		}
	}
	return eng, variant, nil
}

// evalPrepared runs one request through the worker's prepared-plan
// cache. A request overriding Opt or Strategy is routed to the worker's
// derived engine for that pair (resolveVariant); fingerprints
// incorporate the level, so every variant's handles coexist in one
// cache. Preparing records the compile and plan spans under root (both
// are cache hits for a hot expression, so every request trace keeps the
// full stage set); a handle already cached under the same fingerprint
// wins, and the fresh one — which shares the cached plan anyway — is
// closed. The cache is bounded by closing an arbitrary old handle; the
// plan it wrapped stays in the shared compiler cache, so re-preparing
// is a map lookup.
func evalPrepared(ctx context.Context, ws *workerState, root *obs.Span, qwait time.Duration, req Request) (*dfg.Result, error) {
	eng, variant, err := resolveVariant(ws, req)
	if err != nil {
		return nil, err
	}
	// Stamp the measured queue wait on the engine that will actually run
	// (variant views carry their own pending slot), so the evaluation's
	// perf record carries it. The batch former's window is excluded —
	// qwait is the post-flush queue share only.
	eng.NoteQueueWait(qwait)
	pr, err := eng.PrepareTraced(root, req.Expr)
	if err != nil {
		return nil, err
	}
	// Fingerprints cover the expression, its definitions and the opt
	// level — not the strategy — so the handle cache keys on the variant
	// too: a Strategy override must never reuse another strategy's plan.
	key := variant + "\x00" + pr.Fingerprint()
	if cached, ok := ws.prepared[key]; ok {
		pr.Close()
		pr = cached
	} else {
		if len(ws.prepared) >= maxPreparedPerWorker {
			for fp, old := range ws.prepared {
				old.Close()
				delete(ws.prepared, fp)
				break
			}
		}
		ws.prepared[key] = pr
	}
	// Thread the request's deadline into execution: a request that times
	// out mid-plan stops at the next kernel-launch boundary instead of
	// finishing work nobody is waiting for.
	return pr.EvalTracedCtx(ctx, root, req.N, req.Inputs)
}

// evalPreparedBatch runs a flushed member set through the worker's
// prepared-batch cache — the batch analogue of evalPrepared. The
// variant engine is resolved the same way (members share Opt and
// Strategy; both are part of the batch key), and handles are cached
// with the same bound, so a recurring batch shape reuses its merged
// plan and device-resident sources. The cache key is the ordered
// member list, NOT the batch fingerprint: the fingerprint digests the
// sorted de-duplicated members, but a prepared batch demuxes results
// positionally over the exact text sequence it was prepared with, so
// two flushes sharing a fingerprint with different member order or
// duplicate multiplicity must not share a handle. req carries the
// batch's shared shape (N, inputs, variant); texts the member
// expressions.
func evalPreparedBatch(ws *workerState, root *obs.Span, qwait time.Duration, texts []string, req Request) (*dfg.BatchResult, error) {
	eng, variant, err := resolveVariant(ws, req)
	if err != nil {
		return nil, err
	}
	eng.NoteQueueWait(qwait)
	key := variant + "\x00" + strings.Join(texts, "\x01")
	pb, ok := ws.batches[key]
	if !ok {
		pb, err = eng.PrepareBatchTraced(root, texts)
		if err != nil {
			return nil, err
		}
		if len(ws.batches) >= maxPreparedPerWorker {
			for k, old := range ws.batches {
				old.Close()
				delete(ws.batches, k)
				break
			}
		}
		ws.batches[key] = pb
	}
	return pb.EvalTracedCtx(nil, root, req.N, req.Inputs)
}

// runBatchShielded is evalPreparedBatch behind the same panic shield as
// runShielded.
func (p *Pool) runBatchShielded(ws *workerState, root *obs.Span, qwait time.Duration,
	texts []string, req Request) (res *dfg.BatchResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			res = nil
			err = fmt.Errorf("%w: worker %d: %v", ErrWorkerPanic, ws.id, r)
		}
	}()
	return evalPreparedBatch(ws, root, qwait, texts, req)
}

// runBatch runs one merged batch job: member expiry triage, the breaker
// gate (batch granularity — an open breaker reroutes the whole batch to
// a healthy peer), per-member compile-error isolation, then one merged
// super-network evaluation whose root outputs fan back out to every
// member's response. Any failure of the merged run degrades the batch
// instead of failing it: the members re-run individually through the
// ordinary solo path — recovery ladder included, which the merged run
// bypasses (the ladder re-plans from expression text, which a merged
// super-network does not have) — so a faulting member never costs the
// others their response.
func (p *Pool) runBatch(ws *workerState, bj *job) {
	pickup := time.Now()
	qwait := pickup.Sub(bj.enqueued) // members share the batch's queue wait
	live := make([]*job, 0, len(bj.batch))
	for _, m := range bj.batch {
		p.waitHist.Observe(qwait)
		if err := m.ctx.Err(); err != nil {
			// A member that expired while the batch queued fails alone;
			// the rest of the batch still runs.
			p.expired.Add(1)
			m.cancel()
			m.resp <- Response{Worker: ws.id, Wait: pickup.Sub(m.enqueued), Err: fmt.Errorf("%w: %v", ErrQueueTimeout, err)}
			continue
		}
		live = append(live, m)
	}
	if len(live) == 0 {
		return
	}
	bj.batch = live
	ok, probe := ws.br.allow(pickup)
	if !ok {
		hold := time.Duration(bj.hops+1) * 200 * time.Microsecond
		if hold > 2*time.Millisecond {
			hold = 2 * time.Millisecond
		}
		time.Sleep(hold)
		if p.reroute(bj) {
			p.rerouted.Add(1)
			return
		}
		for _, m := range live {
			p.failed.Add(1)
			m.cancel()
			m.resp <- Response{Worker: ws.id, Wait: pickup.Sub(m.enqueued), Err: fmt.Errorf("%w: worker %d breaker open", ErrWorkerUnavailable, ws.id)}
		}
		return
	}
	if probe {
		ws.eng.Heal()
	}

	// The batch trace: one root spanning the whole merged run, each
	// member's request a child under it (with its forming wait), the
	// engine's compile/merge/plan/execute spans below — /trace shows the
	// batch as one tree.
	root := p.tracer.Start("batch")
	if root != nil {
		root.Start = bj.enqueued
		root.SetAttr("worker", strconv.Itoa(ws.id))
		root.Event("queue-wait", "", bj.enqueued, pickup)
		if bj.hops > 0 {
			root.SetAttr("rerouted", strconv.Itoa(bj.hops))
		}
	}
	memberSpan := func(m *job) *obs.Span {
		ms := root.Child("member")
		if ms != nil {
			ms.Start = m.enqueued
			ms.SetAttr("expr", m.req.Expr)
			ms.Event("batch-forming", "", m.enqueued, m.formed)
		}
		return ms
	}

	// Per-member compile isolation: a member that does not compile gets
	// its own error response and is dropped before the merge — the
	// shared cache makes the batch's re-compile of the survivors free.
	lvl, lvlErr := passes.ParseLevel(p.memberOpt(live[0].req))
	survivors := live[:0]
	for _, m := range live {
		err := lvlErr
		if err == nil {
			_, _, err = p.comp.CompileTracedAt(m.req.Expr, lvl, root)
		}
		if err != nil {
			if ms := memberSpan(m); ms != nil {
				ms.SetAttr("error", err.Error())
				ms.Finish()
			}
			p.failed.Add(1)
			m.cancel()
			m.resp <- Response{Worker: ws.id, Wait: pickup.Sub(m.enqueued), Err: err}
			continue
		}
		survivors = append(survivors, m)
	}
	if len(survivors) == 0 {
		if root != nil {
			root.Finish()
		}
		return
	}
	if root != nil {
		root.SetAttr("batch", strconv.Itoa(len(survivors)))
	}
	spans := make([]*obs.Span, len(survivors))
	texts := make([]string, len(survivors))
	for i, m := range survivors {
		spans[i] = memberSpan(m)
		texts[i] = m.req.Expr
	}
	req0 := survivors[0].req
	bres, err := p.runBatchShielded(ws, root, qwait, texts, req0)
	run := time.Since(pickup)
	for _, ms := range spans {
		if ms != nil {
			ms.Finish()
		}
	}
	if err == nil {
		if root != nil {
			root.SetAttr("shared", strconv.Itoa(bres.Shared))
			root.Finish()
		}
		p.batches.Add(1)
		p.batchSizeHist.Observe(time.Duration(len(survivors)) * time.Microsecond)
		p.batchShared.Add(int64(bres.Shared))
		if p.flight != nil {
			p.flight.Note(perfdb.FlightEntry{
				UnixNS: pickup.UnixNano(), Worker: ws.id,
				Expr: fmt.Sprintf("batch[%d]: %s", len(survivors), req0.Expr),
				N:    req0.N, TraceID: root.ID(), DurNS: int64(run), Span: root,
			})
		}
		p.busy[ws.id].Add(int64(run))
		res0 := bres.Results[0]
		p.acc.Add(res0.Profile, res0.PeakDeviceBytes)
		ws.br.success()
		for i, m := range survivors {
			p.served.Add(1)
			p.runHist.Observe(run)
			m.cancel()
			m.resp <- Response{Result: bres.Results[i], Worker: ws.id, Wait: pickup.Sub(m.enqueued), Run: run}
		}
		return
	}
	// The merged run failed: a panic, a device fault, or a merge/plan
	// error. Degrade, never drop — every member re-runs through the solo
	// path with the recovery ladder armed, so a member-specific fault
	// costs only that member its response.
	if root != nil {
		root.SetAttr("error", err.Error())
		root.SetAttr("degraded", "split-to-solo")
		root.Finish()
	}
	p.batchSplits.Add(1)
	if errors.Is(err, ErrWorkerPanic) {
		p.flight.Dump("worker-panic")
		p.restartWorker(ws)
	} else {
		p.noteFault(ws, err, pickup)
	}
	for _, m := range survivors {
		p.execJob(ws, m, time.Now(), 0, false)
	}
}

// memberOpt is the optimisation level a request compiles at — its own
// override or the pool default.
func (p *Pool) memberOpt(req Request) string {
	if req.Opt != "" {
		return req.Opt
	}
	return p.cfg.Opt
}

// EvalAsync submits a request and returns a buffered channel that will
// receive exactly one Response. The request's deadline (Timeout, the
// pool default, or ctx — whichever ends first) covers queue wait; once a
// worker starts executing, the evaluation runs to completion.
func (p *Pool) EvalAsync(ctx context.Context, req Request) <-chan Response {
	resp := make(chan Response, 1)
	if ctx == nil {
		ctx = context.Background()
	}
	timeout := req.Timeout
	if timeout <= 0 {
		timeout = p.cfg.DefaultTimeout
	}
	var cancel context.CancelFunc
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, timeout)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}

	// Register as a sender under the read lock so Close can wait for
	// every in-flight enqueue before closing the queue channel.
	p.sendMu.RLock()
	if p.closed {
		p.sendMu.RUnlock()
		cancel()
		p.rejected.Add(1)
		resp <- Response{Worker: -1, Err: ErrPoolClosed}
		return resp
	}
	j := &job{req: req, ctx: ctx, cancel: cancel, enqueued: time.Now(), resp: resp}
	if p.cfg.BatchWindow > 0 {
		// Batch-forming path: the job joins its forming batch under the
		// same read lock, so Close's final sweep is guaranteed to see it.
		// If this join filled the batch, flush it now (form already took
		// the sender slot); the dispatch goroutine keeps EvalAsync
		// non-blocking when the queue is full.
		flush := p.form(j)
		p.sendMu.RUnlock()
		if flush != nil {
			go p.dispatch(flush)
		}
		return resp
	}
	p.senders.Add(1)
	p.sendMu.RUnlock()

	go func() {
		defer p.senders.Done()
		select {
		case p.queue <- j:
			// A worker owns the job now (possibly after Close: jobs that
			// made it into the queue are drained gracefully).
		case <-ctx.Done():
			cancel()
			p.rejected.Add(1)
			resp <- Response{Worker: -1, Err: fmt.Errorf("%w: queue full: %v", ErrQueueTimeout, ctx.Err())}
		case <-p.done:
			cancel()
			p.rejected.Add(1)
			resp <- Response{Worker: -1, Err: ErrPoolClosed}
		}
	}()
	return resp
}

// formingBatch is one in-progress batch accumulating members until its
// window timer fires or it fills to BatchMax.
type formingBatch struct {
	key     string
	members []*job
	timer   *time.Timer
	flushed bool
}

// batchKey groups requests that may merge into one batch: same element
// count, same Opt/Strategy/Schedule variant, and the same input binding — name
// for name, the same backing arrays (identity, not content: %v of a
// slice's address and length). A merged super-network executes against
// one binding, so requests carrying different input sets never merge.
func batchKey(req Request) string {
	names := make([]string, 0, len(req.Inputs))
	for name := range req.Inputs {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	fmt.Fprintf(&b, "%d|%s|%s|%s", req.N, req.Opt, req.Strategy, req.Schedule)
	for _, name := range names {
		s := req.Inputs[name]
		fmt.Fprintf(&b, "|%s@%p+%d", name, s, len(s))
	}
	return b.String()
}

// form adds a job to its forming batch, creating the batch (and its
// window timer) on first touch. Called under sendMu.RLock so every
// formed member is visible to Close's final sweep. Returns the member
// set to dispatch when this join filled the batch to BatchMax — the
// sender slot is already taken for the caller — and nil otherwise.
func (p *Pool) form(j *job) []*job {
	key := batchKey(j.req)
	p.formMu.Lock()
	defer p.formMu.Unlock()
	g, ok := p.forming[key]
	if !ok {
		g = &formingBatch{key: key}
		p.forming[key] = g
		g.timer = time.AfterFunc(p.cfg.BatchWindow, func() { p.flushTimer(g) })
	}
	g.members = append(g.members, j)
	if len(g.members) >= p.cfg.BatchMax {
		g.flushed = true
		g.timer.Stop()
		delete(p.forming, key)
		p.senders.Add(1)
		return g.members
	}
	return nil
}

// flushTimer is the forming-window expiry path. When the pool is
// closing, the batch is left in the map for Close's final sweep (which
// dispatches straight into the still-open queue); otherwise the batch
// is claimed and dispatched like a filled one.
func (p *Pool) flushTimer(g *formingBatch) {
	p.sendMu.RLock()
	if p.closed {
		p.sendMu.RUnlock()
		return
	}
	p.formMu.Lock()
	if g.flushed {
		p.formMu.Unlock()
		p.sendMu.RUnlock()
		return
	}
	g.flushed = true
	delete(p.forming, g.key)
	members := g.members
	p.formMu.Unlock()
	p.senders.Add(1)
	p.sendMu.RUnlock()
	p.dispatch(members)
}

// dispatch moves a flushed member set into the queue: a lone member
// goes in as an ordinary solo job (the batch-of-one fast path — it
// never pays the merge machinery), several as one batch job. Forming
// wait (enqueue to flush) is observed here; the members' queue wait
// restarts at the flush stamp. The caller holds a sender slot.
func (p *Pool) dispatch(members []*job) {
	defer p.senders.Done()
	flush := time.Now()
	for _, m := range members {
		p.formingHist.Observe(flush.Sub(m.enqueued))
		m.formed = flush
	}
	j := members[0]
	if len(members) > 1 {
		j = &job{enqueued: flush, formed: flush, batch: members}
	}
	select {
	case p.queue <- j:
		// A worker owns the batch now (possibly after Close: jobs that
		// made it into the queue are drained gracefully).
	case <-p.done:
		for _, m := range members {
			m.cancel()
			p.rejected.Add(1)
			m.resp <- Response{Worker: -1, Err: ErrPoolClosed}
		}
	}
}

// flushAllForming dispatches every still-forming batch straight into
// the queue. Called by Close after closed is set and every in-flight
// sender has resolved: window timers that fire from here on see closed
// and leave their batches for this sweep, and the queue is still open
// with the workers draining it, so the plain sends complete.
func (p *Pool) flushAllForming() {
	p.formMu.Lock()
	groups := make([]*formingBatch, 0, len(p.forming))
	for _, g := range p.forming {
		g.flushed = true
		g.timer.Stop()
		groups = append(groups, g)
	}
	p.forming = make(map[string]*formingBatch)
	p.formMu.Unlock()
	for _, g := range groups {
		flush := time.Now()
		for _, m := range g.members {
			p.formingHist.Observe(flush.Sub(m.enqueued))
			m.formed = flush
		}
		j := g.members[0]
		if len(g.members) > 1 {
			j = &job{enqueued: flush, formed: flush, batch: g.members}
		}
		p.queue <- j
	}
}

// Submit is the synchronous form of EvalAsync.
func (p *Pool) Submit(ctx context.Context, req Request) (*dfg.Result, error) {
	r := <-p.EvalAsync(ctx, req)
	return r.Result, r.Err
}

// LiveBuffers sums the unreleased device buffers across every worker's
// current device, including buffers pooled or resident in the engines'
// arenas. After Close (which drains every arena) it must be zero; the
// chaos soak treats anything else as a leak.
func (p *Pool) LiveBuffers() int {
	p.engMu.RLock()
	defer p.engMu.RUnlock()
	var n int
	for _, eng := range p.engines {
		n += eng.LiveBuffers()
	}
	return n
}

// BreakerStates reports each worker's circuit-breaker position.
func (p *Pool) BreakerStates() []string {
	states := make([]string, len(p.breakers))
	for i, b := range p.breakers {
		states[i] = b.State().String()
	}
	return states
}

// Define registers (or replaces) a named expression definition in the
// shared compiler. Every worker sees it; cached networks that reference
// the name are invalidated (and only those — cache keys fingerprint the
// definitions an expression uses). Evaluations already in flight finish
// against whichever definition snapshot they compiled with.
func (p *Pool) Define(name, text string) error {
	return p.comp.Define(name, text)
}

// Definitions lists the shared definition names, sorted.
func (p *Pool) Definitions() []string { return p.comp.Definitions() }

// Close stops accepting requests, waits for queued work to drain, and
// stops the workers. Every request accepted before Close receives a
// response; requests submitted after it fail with ErrPoolClosed. Close
// is idempotent.
//
// Shutdown flushes observability state rather than dropping it: the
// uptime clock freezes (so utilisation gauges stop decaying), and the
// metrics registry, aggregate device profile and trace rings all remain
// readable — Stats, Registry, Tracer and Report keep working on a
// closed pool, and an HTTP introspection endpoint can keep serving
// final state after the workers are gone.
func (p *Pool) Close() error {
	p.closeOnce.Do(func() {
		p.sendMu.Lock()
		p.closed = true
		p.sendMu.Unlock()
		close(p.done)       // unblocks senders stuck on a full queue
		p.senders.Wait()    // every in-flight enqueue has resolved
		p.flushAllForming() // still-forming batches drain into the open queue
		close(p.queue)      // workers drain the remainder and exit
		p.workers.Wait()
		p.closedAt.Store(time.Now().UnixNano()) // freeze uptime for final metrics
		if p.cfg.PerfDir != "" {
			// Persist the perf database after the last worker finishes, so
			// the snapshot covers every served request.
			if _, err := p.FlushPerf(); err != nil {
				p.closeErr = fmt.Errorf("serve: perf flush: %w", err)
			}
		}
	})
	return p.closeErr
}

// Report writes the pool's service-level summary — request outcomes,
// wait/run latency quantiles, shared-cache effectiveness, per-worker
// utilisation, and the aggregate device profile — in aligned text. It
// reads the same state /metrics exposes and works before or after
// Close; cmd/dfg-serve prints it on graceful shutdown so the final
// metrics state outlives the load generator.
func (p *Pool) Report(w io.Writer) {
	st := p.Stats()
	up := p.uptime()
	fmt.Fprintf(w, "%-28s %v\n", "uptime:", up.Round(time.Millisecond))
	fmt.Fprintf(w, "%-28s %d served, %d failed, %d expired, %d rejected\n",
		"requests:", st.Served, st.Failed, st.Expired, st.Rejected)
	if st.Rerouted > 0 || st.Restarts > 0 {
		fmt.Fprintf(w, "%-28s %d rerouted, %d engine rebuilds, breakers %v\n",
			"fault tolerance:", st.Rerouted, st.Restarts, p.BreakerStates())
	}
	if st.Batches > 0 || st.BatchSplits > 0 {
		fmt.Fprintf(w, "%-28s %d executed (p50 size %d), %d split to solo, %d CSE-shared nodes\n",
			"batches:", st.Batches, p.batchSizeHist.Quantile(0.5).Microseconds(),
			st.BatchSplits, st.BatchShared)
		fmt.Fprintf(w, "%-28s p50=%v p90=%v p99=%v\n", "forming wait:",
			p.formingHist.Quantile(0.5).Round(time.Microsecond),
			p.formingHist.Quantile(0.9).Round(time.Microsecond),
			p.formingHist.Quantile(0.99).Round(time.Microsecond))
	}
	if n := p.runHist.Count(); n > 0 {
		fmt.Fprintf(w, "%-28s p50=%v p90=%v p99=%v\n", "run latency:",
			p.runHist.Quantile(0.5).Round(time.Microsecond),
			p.runHist.Quantile(0.9).Round(time.Microsecond),
			p.runHist.Quantile(0.99).Round(time.Microsecond))
		fmt.Fprintf(w, "%-28s p50=%v p90=%v p99=%v\n", "queue wait:",
			p.waitHist.Quantile(0.5).Round(time.Microsecond),
			p.waitHist.Quantile(0.9).Round(time.Microsecond),
			p.waitHist.Quantile(0.99).Round(time.Microsecond))
	}
	fmt.Fprintf(w, "%-28s %d builds, %d hits, %d misses, %d entries\n",
		"shared compile cache:", st.Compiles, st.CacheHits, st.CacheMisses, st.CacheEntries)
	fmt.Fprintf(w, "%-28s %d builds, %d hits, %d misses, %d entries\n",
		"shared plan cache:", st.PlanBuilds, st.PlanHits, st.PlanMisses, st.PlanEntries)
	for i := range p.busy {
		busy := time.Duration(p.busy[i].Load())
		util := 0.0
		if up > 0 {
			util = busy.Seconds() / up.Seconds()
		}
		fmt.Fprintf(w, "%-28s busy %v (%.0f%% utilisation)\n",
			fmt.Sprintf("worker %d:", i), busy.Round(time.Millisecond), 100*util)
	}
	fmt.Fprintf(w, "%-28s %s\n", "aggregate device profile:", st.Profile.String())
	fmt.Fprintf(w, "%-28s %d bytes\n", "peak device memory (1 run):", st.PeakDeviceBytes)
	if slow := p.tracer.Slow(0); len(slow) > 0 {
		fmt.Fprintf(w, "%-28s %d (slowest %v)\n", "slow requests:",
			len(slow), slowest(slow).Round(time.Microsecond))
	}
}

// slowest returns the longest duration among the traces.
func slowest(spans []*obs.Span) time.Duration {
	var max time.Duration
	for _, sp := range spans {
		if d := sp.Duration(); d > max {
			max = d
		}
	}
	return max
}

// Stats is a point-in-time snapshot of pool activity.
type Stats struct {
	// Workers is the pool size.
	Workers int
	// Served counts successful evaluations; Failed, evaluation errors;
	// Expired, requests that timed out in the queue; Rejected, requests
	// that never entered the queue (full-queue timeout or closed pool).
	Served, Failed, Expired, Rejected int64
	// Rerouted counts jobs pushed back onto the queue off a tripped
	// worker; Restarts, engine rebuilds across all workers (panic
	// recoveries plus dead-device replacements).
	Rerouted, Restarts int64
	// Batches counts merged batch jobs executed; BatchSplits, batches
	// degraded to per-member solo evaluation after a merged run failed;
	// BatchShared, the dataflow nodes cross-expression CSE eliminated
	// across executed batches (work members would have duplicated solo).
	Batches, BatchSplits, BatchShared int64
	// Compiles, CacheHits and CacheMisses describe the shared compile
	// cache; CacheEntries is its current size.
	Compiles, CacheHits, CacheMisses int64
	CacheEntries                     int
	// PlanBuilds, PlanHits and PlanMisses describe the shared
	// execution-plan cache; PlanEntries is its current size.
	PlanBuilds, PlanHits, PlanMisses int64
	PlanEntries                      int
	// Profile is the aggregate device profile across all successful
	// runs on all workers; PeakDeviceBytes the largest single-run
	// device-memory high-water mark.
	Profile         ocl.Profile
	PeakDeviceBytes int64
}

// Stats returns current counters.
func (p *Pool) Stats() Stats {
	cs := p.comp.Stats()
	prof, _, peak := p.acc.Snapshot()
	var restarts int64
	for i := range p.restarts {
		restarts += p.restarts[i].Load()
	}
	return Stats{
		Workers:         p.cfg.Workers,
		Served:          p.served.Load(),
		Failed:          p.failed.Load(),
		Expired:         p.expired.Load(),
		Rejected:        p.rejected.Load(),
		Rerouted:        p.rerouted.Load(),
		Restarts:        restarts,
		Batches:         p.batches.Load(),
		BatchSplits:     p.batchSplits.Load(),
		BatchShared:     p.batchShared.Load(),
		Compiles:        cs.Compiles,
		CacheHits:       cs.Hits,
		CacheMisses:     cs.Misses,
		CacheEntries:    cs.Entries,
		PlanBuilds:      cs.PlanBuilds,
		PlanHits:        cs.PlanHits,
		PlanMisses:      cs.PlanMisses,
		PlanEntries:     cs.PlanEntries,
		Profile:         prof,
		PeakDeviceBytes: peak,
	}
}
