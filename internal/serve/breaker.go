package serve

import (
	"sync"
	"time"
)

// breakerState is a circuit breaker's position. The numeric values are
// exported as the dfg_breaker_state gauge, so they are part of the
// metrics contract: 0 closed (healthy), 1 half-open (probing), 2 open
// (tripped, cooling down).
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerHalfOpen
	breakerOpen
)

// String names the state for reports and span attributes.
func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerHalfOpen:
		return "half-open"
	case breakerOpen:
		return "open"
	}
	return "unknown"
}

// breaker is a per-worker (per-device) circuit breaker. While closed,
// jobs run normally and consecutive device-fault failures are counted;
// at the threshold — or immediately on a device-lost fault — the
// breaker opens and the worker reroutes its jobs back onto the queue
// for healthy peers. After the cooldown the next job becomes a
// half-open health probe: success recloses the breaker, failure reopens
// it and counts a failed probe, and enough failed probes tell the
// worker to replace its device outright.
//
// Only the owning worker goroutine transitions the breaker; the mutex
// exists so metric scrapes and reports can read a consistent state from
// other goroutines.
type breaker struct {
	mu        sync.Mutex
	state     breakerState
	threshold int           // consecutive failures that open the breaker
	cooldown  time.Duration // open -> half-open delay
	fails     int           // consecutive device-fault failures while closed
	probes    int           // consecutive failed half-open probes
	openedAt  time.Time
	trips     int64 // total closed/half-open -> open transitions
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// allow reports whether the owning worker may run a job now. probe is
// true when the run is the half-open health probe after a cooldown —
// the caller heals the device before probing.
func (b *breaker) allow(now time.Time) (ok, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		if now.Sub(b.openedAt) >= b.cooldown {
			b.state = breakerHalfOpen
			return true, true
		}
		return false, false
	case breakerHalfOpen:
		// Single-goroutine owner: at most one probe is ever in flight.
		return true, true
	}
	return true, false
}

// success records a healthy run, reclosing the breaker from any state.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = breakerClosed
	b.fails = 0
	b.probes = 0
}

// failure records a device-fault failure. trip forces the breaker open
// regardless of the consecutive-failure count (device lost). It returns
// true when this failure opened the breaker.
func (b *breaker) failure(now time.Time, trip bool) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerHalfOpen {
		// The health probe itself failed.
		b.probes++
		b.state = breakerOpen
		b.openedAt = now
		b.trips++
		return true
	}
	b.fails++
	if trip || b.fails >= b.threshold {
		b.state = breakerOpen
		b.openedAt = now
		b.trips++
		b.fails = 0
		return true
	}
	return false
}

// failedProbes returns the consecutive failed half-open probes since
// the breaker last closed; the worker replaces its device when this
// reaches the pool's ReplaceAfterProbes.
func (b *breaker) failedProbes() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.probes
}

// reset returns the breaker to closed with clean counters — called
// after the worker replaces its device.
func (b *breaker) reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = breakerClosed
	b.fails = 0
	b.probes = 0
}

// State returns the current position (for the dfg_breaker_state gauge).
func (b *breaker) State() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Trips returns the total number of times the breaker has opened.
func (b *breaker) Trips() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}
