package serve

// This file is the service's HTTP introspection surface: a handler
// exposing the pool's live state — Prometheus metrics, health, recent
// request traces in Chrome-trace form, and the slow-request log —
// without touching the evaluation hot path (every endpoint reads
// counters, callback gauges, or immutable published span trees).

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"dfg/internal/metrics"
	"dfg/internal/obs"
	"dfg/internal/perfdb"
)

// Handler returns the pool's introspection endpoint:
//
//	GET /healthz        liveness + basic counts (JSON); 503 once closed
//	GET /metrics        Prometheus text exposition (version 0.0.4)
//	GET /trace?last=N   the last N request traces as Chrome-trace JSON
//	                    (open in Perfetto / chrome://tracing); default 16
//	GET /trace/{id}     one retained trace by trace ID — the exemplar
//	                    links on /exemplars and the IDs on /slow resolve
//	                    here (text, or ?format=json for the span tree)
//	GET /slow?last=N    the last N slow-request span trees as text
//	GET /exemplars      per-histogram exemplar trace links (JSON)
//	GET /debug/pprof/*  Go's profiling handlers (Config.EnablePprof)
//
// The handler stays valid after Close — it then serves the pool's final,
// frozen state, so an operator can still pull metrics and traces from a
// drained service.
func (p *Pool) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", p.handleHealthz)
	mux.HandleFunc("/metrics", p.handleMetrics)
	mux.HandleFunc("/trace", p.handleTrace)
	mux.HandleFunc("/trace/", p.handleTraceByID)
	mux.HandleFunc("/slow", p.handleSlow)
	mux.HandleFunc("/exemplars", p.handleExemplars)
	if p.cfg.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// handleHealthz reports liveness. A closed pool answers 503 so load
// balancers drain it, but still includes the final counters.
func (p *Pool) handleHealthz(w http.ResponseWriter, r *http.Request) {
	p.sendMu.RLock()
	closed := p.closed
	p.sendMu.RUnlock()
	st := p.Stats()
	status, code := "ok", http.StatusOK
	if closed {
		status, code = "closed", http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	fmt.Fprintf(w, `{"status":%q,"workers":%d,"uptime_seconds":%.3f,"served":%d,"failed":%d,"expired":%d,"rejected":%d,"queue_depth":%d}`+"\n",
		status, st.Workers, p.uptime().Seconds(), st.Served, st.Failed, st.Expired, st.Rejected, len(p.queue))
}

// handleMetrics writes the Prometheus exposition.
func (p *Pool) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := obs.WritePrometheus(w, p.reg); err != nil {
		// Headers are gone; all we can do is drop the connection.
		return
	}
}

// lastParam parses ?last=N with a default and a sanity cap.
func lastParam(r *http.Request, def int) int {
	n := def
	if s := r.URL.Query().Get("last"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 1 {
			return -1
		}
		n = v
	}
	return n
}

// handleTrace serves recent request traces as Chrome-trace JSON.
func (p *Pool) handleTrace(w http.ResponseWriter, r *http.Request) {
	if p.tracer == nil {
		http.Error(w, "tracing disabled (TraceKeep < 0)", http.StatusNotFound)
		return
	}
	n := lastParam(r, 16)
	if n < 0 {
		http.Error(w, "bad ?last= value", http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = metrics.WriteSpanTraces(w, p.tracer.Last(n))
}

// handleTraceByID serves one retained trace — /trace/{id} — resolving
// the trace IDs that exemplars, /slow lines, perf-database records and
// flight-recorder entries carry. Text by default; ?format=json returns
// the span tree in the flight-dump SpanDump shape.
func (p *Pool) handleTraceByID(w http.ResponseWriter, r *http.Request) {
	if p.tracer == nil {
		http.Error(w, "tracing disabled (TraceKeep < 0)", http.StatusNotFound)
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/trace/")
	if id == "" {
		http.Error(w, "missing trace id", http.StatusBadRequest)
		return
	}
	sp := p.tracer.ByID(id)
	if sp == nil {
		http.Error(w, "trace "+id+" not retained (aged out or never existed)", http.StatusNotFound)
		return
	}
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(perfdb.DumpSpan(sp))
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "trace %s (%v)\n", id, sp.Duration())
	sp.WriteText(w)
}

// handleExemplars serves the histogram exemplars as JSON: each series'
// most recent and slowest observation with its trace ID, resolvable via
// /trace/{id}. This is the out-of-band stand-in for Prometheus
// exemplars, which the 0.0.4 text format cannot carry inline.
func (p *Pool) handleExemplars(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	ex := p.reg.Exemplars()
	if ex == nil {
		ex = []obs.SeriesExemplars{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(ex)
}

// handleSlow renders the retained slow-request span trees as text.
func (p *Pool) handleSlow(w http.ResponseWriter, r *http.Request) {
	if p.tracer == nil {
		http.Error(w, "tracing disabled (TraceKeep < 0)", http.StatusNotFound)
		return
	}
	n := lastParam(r, 16)
	if n < 0 {
		http.Error(w, "bad ?last= value", http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	slow := p.tracer.Slow(n)
	if len(slow) == 0 {
		fmt.Fprintln(w, "no slow requests recorded")
		return
	}
	for _, sp := range slow {
		fmt.Fprintf(w, "--- %v (threshold %v) trace_id=%s\n", sp.Duration(), p.cfg.SlowThreshold, sp.ID())
		sp.WriteText(w)
	}
}

// ListenAndServe starts the introspection endpoint on addr and returns
// the bound address (useful with ":0") plus a shutdown func. It is a
// convenience for cmd/dfg-serve; embedders can mount Handler anywhere.
func (p *Pool) ListenAndServe(addr string) (string, func() error, error) {
	srv := &http.Server{Handler: p.Handler(), ReadHeaderTimeout: 5 * time.Second}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), srv.Close, nil
}
