package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"dfg"
	"dfg/internal/obs"
)

// testInputs returns u/v/w arrays of n elements with deterministic
// contents (u[i] = i+1, so every element is nonzero).
func testInputs(n int) map[string][]float32 {
	u := make([]float32, n)
	v := make([]float32, n)
	w := make([]float32, n)
	for i := 0; i < n; i++ {
		u[i] = float32(i + 1)
		v[i] = float32(i%7) - 3
		w[i] = 0.5 * float32(i%5)
	}
	return map[string][]float32{"u": u, "v": v, "w": w}
}

func newTestPool(t testing.TB, cfg Config) *Pool {
	t.Helper()
	p, err := NewPool(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func TestPoolEvalBasic(t *testing.T) {
	p := newTestPool(t, Config{Workers: 2})
	const n = 64
	res, err := p.Submit(context.Background(), Request{
		Expr: "r = sqrt(u*u + v*v + w*w)", N: n, Inputs: testInputs(n),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Data) != n || res.Width != 1 {
		t.Fatalf("result shape %d x %d", len(res.Data), res.Width)
	}
	in := testInputs(n)
	for i := 0; i < n; i++ {
		want := math.Sqrt(float64(in["u"][i]*in["u"][i] + in["v"][i]*in["v"][i] + in["w"][i]*in["w"][i]))
		if math.Abs(float64(res.Data[i])-want) > 1e-5 {
			t.Fatalf("r[%d] = %v, want %v", i, res.Data[i], want)
		}
	}
}

// TestPoolCompilesHotExpressionOnce is the shared-cache acceptance test:
// a repeated expression submitted from many goroutines across ≥8 workers
// compiles exactly once (the compile-count counter, asserted).
func TestPoolCompilesHotExpressionOnce(t *testing.T) {
	p := newTestPool(t, Config{Workers: 8})
	const n, clients, perClient = 256, 16, 8
	in := testInputs(n)

	var wg sync.WaitGroup
	start := make(chan struct{})
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < perClient; i++ {
				res, err := p.Submit(context.Background(), Request{
					Expr: "r = sqrt(u*u + v*v + w*w)", N: n, Inputs: in,
				})
				if err != nil {
					t.Error(err)
					return
				}
				if len(res.Data) != n || math.IsNaN(float64(res.Data[0])) {
					t.Errorf("bad result: len %d", len(res.Data))
					return
				}
			}
		}()
	}
	close(start)
	wg.Wait()

	st := p.Stats()
	if st.Compiles != 1 {
		t.Fatalf("hot expression compiled %d times across %d workers, want exactly 1", st.Compiles, st.Workers)
	}
	if st.Served != clients*perClient {
		t.Fatalf("served = %d, want %d", st.Served, clients*perClient)
	}
	if st.Profile.Kernels == 0 || st.Profile.Writes == 0 {
		t.Fatalf("aggregate profile empty: %+v", st.Profile)
	}
	// Fusion runs one kernel per evaluation: the aggregate must show one
	// kernel dispatch per served request.
	if st.Profile.Kernels != int(st.Served) {
		t.Fatalf("aggregate kernels = %d, want %d (one fused kernel per run)", st.Profile.Kernels, st.Served)
	}
}

// TestPoolStressDefineEval is the satellite concurrency stress test: M
// goroutines × K expressions, mixing Define redefinitions with Eval of
// expressions referencing the redefined name, under -race. Every result
// must be wholly consistent with ONE definition version — a torn cache
// read (half old coefficient, half new) fails element-wise.
func TestPoolStressDefineEval(t *testing.T) {
	p := newTestPool(t, Config{Workers: 8, QueueDepth: 64})
	if err := p.Define("d", "u * 2"); err != nil {
		t.Fatal(err)
	}

	const n = 128
	const clients = 10
	const perClient = 30
	const redefines = 40
	in := testInputs(n)
	u := in["u"]
	coeffs := []float32{2, 10} // the two definition versions

	var wg sync.WaitGroup
	start := make(chan struct{})

	// Definer: flips d between u*2 and u*10.
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		for i := 0; i < redefines; i++ {
			body := "u * 2"
			if i%2 == 1 {
				body = "u * 10"
			}
			if err := p.Define("d", body); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	// Evaluators: K distinct expressions, all referencing d.
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < perClient; i++ {
				k := (c + i) % 5 // K=5 distinct expressions
				res, err := p.Submit(context.Background(), Request{
					Expr: fmt.Sprintf("r = d + %d", k), N: n, Inputs: in,
				})
				if err != nil {
					t.Error(err)
					return
				}
				// Recover the coefficient from element 0 and require the
				// whole array to be consistent with it.
				got := (res.Data[0] - float32(k)) / u[0]
				var coeff float32
				for _, cand := range coeffs {
					if got == cand {
						coeff = cand
					}
				}
				if coeff == 0 {
					t.Errorf("expr k=%d: coefficient %v is neither version", k, got)
					return
				}
				for j := 0; j < n; j++ {
					want := coeff*u[j] + float32(k)
					if res.Data[j] != want {
						t.Errorf("torn result: expr k=%d element %d = %v, want %v (coeff %v)",
							k, j, res.Data[j], want, coeff)
						return
					}
				}
			}
		}()
	}
	close(start)
	wg.Wait()

	st := p.Stats()
	if st.Served != clients*perClient {
		t.Fatalf("served = %d, want %d", st.Served, clients*perClient)
	}
	// 5 distinct expressions × at most 2 live definition versions, plus
	// possible recompiles as the definition flips back and forth: the
	// compile count must stay far below the request count (the cache is
	// doing its job) and at least 5 (each expression compiled).
	if st.Compiles < 5 {
		t.Fatalf("compiles = %d, want >= 5 distinct", st.Compiles)
	}
	if st.Compiles >= int64(clients*perClient) {
		t.Fatalf("compiles = %d for %d requests: cache not shared", st.Compiles, clients*perClient)
	}
}

// TestPoolRedefinitionInvalidatesExactly: pool-level check that
// redefining a name recompiles only the expressions that use it.
func TestPoolRedefinitionInvalidatesExactly(t *testing.T) {
	p := newTestPool(t, Config{Workers: 2})
	if err := p.Define("scale", "u * 2"); err != nil {
		t.Fatal(err)
	}
	const n = 32
	in := testInputs(n)
	eval := func(expr string) {
		t.Helper()
		if _, err := p.Submit(context.Background(), Request{Expr: expr, N: n, Inputs: in}); err != nil {
			t.Fatal(err)
		}
	}
	eval("r = scale + 1") // uses the definition
	eval("r = u + v")     // does not
	if got := p.Stats().Compiles; got != 2 {
		t.Fatalf("initial compiles = %d, want 2", got)
	}
	if err := p.Define("scale", "u * 3"); err != nil {
		t.Fatal(err)
	}
	eval("r = scale + 1")
	eval("r = u + v")
	if got := p.Stats().Compiles; got != 3 {
		t.Fatalf("after redefinition compiles = %d, want 3 (only the dependent expression recompiles)", got)
	}
	// The recompiled expression reflects the new body.
	res, err := p.Submit(context.Background(), Request{Expr: "r = scale + 1", N: n, Inputs: in})
	if err != nil {
		t.Fatal(err)
	}
	if want := in["u"][4]*3 + 1; res.Data[4] != want {
		t.Fatalf("redefinition not visible: got %v want %v", res.Data[4], want)
	}
}

func TestPoolRequestTimeout(t *testing.T) {
	p := newTestPool(t, Config{Workers: 1, QueueDepth: 1})
	// A context that is already done must fail (either rejected at the
	// queue or expired before execution), never run.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := p.Submit(ctx, Request{Expr: "r = u", N: 8, Inputs: testInputs(8)})
	if err == nil {
		t.Fatal("canceled request must fail")
	}
	if !errors.Is(err, ErrQueueTimeout) && !errors.Is(err, context.Canceled) {
		t.Fatalf("unexpected error: %v", err)
	}
	if p.Stats().Served != 0 {
		t.Fatal("canceled request must not execute")
	}
	// A generous timeout still succeeds.
	if _, err := p.Submit(context.Background(), Request{
		Expr: "r = u", N: 8, Inputs: testInputs(8), Timeout: 10 * time.Second,
	}); err != nil {
		t.Fatal(err)
	}
}

func TestPoolBadRequestsSurfaceErrors(t *testing.T) {
	p := newTestPool(t, Config{Workers: 2})
	if _, err := p.Submit(context.Background(), Request{Expr: "r = $", N: 8, Inputs: testInputs(8)}); err == nil {
		t.Error("unparseable expression must fail")
	}
	if _, err := p.Submit(context.Background(), Request{Expr: "r = q", N: 8, Inputs: testInputs(8)}); err == nil {
		t.Error("missing source binding must fail")
	}
	st := p.Stats()
	if st.Failed != 2 || st.Served != 0 {
		t.Fatalf("stats = %+v, want 2 failed", st)
	}
}

// TestPoolGracefulShutdown: every request accepted before Close gets a
// response; requests after Close are rejected; Close is idempotent.
func TestPoolGracefulShutdown(t *testing.T) {
	p := newTestPool(t, Config{Workers: 4, QueueDepth: 32})
	const n = 2048
	in := testInputs(n)

	var chans []<-chan Response
	for i := 0; i < 24; i++ {
		chans = append(chans, p.EvalAsync(context.Background(), Request{
			Expr: "r = sqrt(u*u + v*v) + w", N: n, Inputs: in,
		}))
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	delivered := 0
	for _, ch := range chans {
		select {
		case r := <-ch:
			delivered++
			if r.Err != nil && !errors.Is(r.Err, ErrPoolClosed) {
				t.Fatalf("unexpected shutdown error: %v", r.Err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("response never delivered after Close")
		}
	}
	if delivered != len(chans) {
		t.Fatalf("delivered %d of %d responses", delivered, len(chans))
	}

	if _, err := p.Submit(context.Background(), Request{Expr: "r = u", N: 8, Inputs: testInputs(8)}); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("post-Close submit: %v, want ErrPoolClosed", err)
	}
	if err := p.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

func TestPoolDefinitionsListed(t *testing.T) {
	p := newTestPool(t, Config{Workers: 1})
	if err := p.Define("a", "u+1"); err != nil {
		t.Fatal(err)
	}
	if err := p.Define("b", "a*2"); err != nil {
		t.Fatal(err)
	}
	got := p.Definitions()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("definitions = %v", got)
	}
}

// BenchmarkPoolEval drives the pool at full concurrency with one hot
// expression — the serving scenario the shared compile cache exists for.
// The reported compiles/op metric collapsing toward zero is the cache
// at work (TestPoolCompilesHotExpressionOnce asserts the exact count).
func BenchmarkPoolEval(b *testing.B) {
	p := newTestPool(b, Config{Workers: 8, QueueDepth: 64})
	const n = 4096
	in := testInputs(n)
	req := Request{Expr: "r = sqrt(u*u + v*v + w*w)", N: n, Inputs: in}

	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := p.Submit(context.Background(), req); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.StopTimer()
	st := p.Stats()
	b.ReportMetric(float64(st.Compiles)/float64(b.N), "compiles/op")
	b.ReportMetric(float64(st.Served), "served")
}

// TestPoolOptLevels covers the optimisation-level surface of the
// service: the pool defaults to O2, per-request Opt overrides route to
// a Paper-level engine view, both levels return identical data for the
// paper expressions, a bad level fails the request (not the pool), and
// the per-pass counters land in the metrics registry.
func TestPoolOptLevels(t *testing.T) {
	p := newTestPool(t, Config{Workers: 2})
	const n = 64
	expr := "r = u*1 + 0*v + sqrt(w*w)"

	o2, err := p.Submit(context.Background(), Request{Expr: expr, N: n, Inputs: testInputs(n)})
	if err != nil {
		t.Fatal(err)
	}
	paper, err := p.Submit(context.Background(), Request{Expr: expr, N: n, Inputs: testInputs(n), Opt: "paper"})
	if err != nil {
		t.Fatal(err)
	}
	for i := range paper.Data {
		if paper.Data[i] != o2.Data[i] {
			t.Fatalf("element %d: paper %v vs O2 %v", i, paper.Data[i], o2.Data[i])
		}
	}

	if _, err := p.Submit(context.Background(), Request{Expr: expr, N: n, Inputs: testInputs(n), Opt: "O3"}); err == nil {
		t.Fatal("bad opt level must fail the request")
	}
	// The pool survives a bad-level request.
	if _, err := p.Submit(context.Background(), Request{Expr: expr, N: n, Inputs: testInputs(n)}); err != nil {
		t.Fatalf("pool broken after bad opt level: %v", err)
	}

	// Both levels' compiles ran, so the shared pass aggregates must show
	// the Paper passes with at least two runs and the O2-only passes
	// with at least one, all surfaced through the registry.
	var buf strings.Builder
	if err := obs.WritePrometheus(&buf, p.Registry()); err != nil {
		t.Fatal(err)
	}
	exposition := buf.String()
	for _, pass := range []string{"constpool", "cse", "algebraic", "decompose-forward", "dce"} {
		probe := fmt.Sprintf(`dfg_pass_runs_total{pass=%q}`, pass)
		if !strings.Contains(exposition, probe) {
			t.Errorf("exposition lacks %s", probe)
		}
	}
	if got := p.comp.PassStat("cse").Runs; got < 2 {
		t.Errorf("cse pass ran %d times, want >= 2 (one per level)", got)
	}
	if got := p.comp.PassStat("dce").Runs; got < 1 {
		t.Errorf("dce pass ran %d times, want >= 1 (O2 compile)", got)
	}
	if p.comp.PassStat("cse").Seconds <= 0 {
		t.Error("cse pass seconds not accumulated")
	}
}

// TestPoolPaperLevelConfig pins that a pool can opt back into the exact
// paper front end pool-wide.
func TestPoolPaperLevelConfig(t *testing.T) {
	p := newTestPool(t, Config{Workers: 1, Opt: "paper"})
	const n = 16
	if _, err := p.Submit(context.Background(), Request{Expr: "r = u + v", N: n, Inputs: testInputs(n)}); err != nil {
		t.Fatal(err)
	}
	if got := p.comp.PassStat("dce").Runs; got != 0 {
		t.Errorf("paper-level pool ran dce %d times, want 0", got)
	}
}

// usedVM reports whether a response came from the host VM tier (no
// device events of any kind).
func usedVM(res *dfg.Result) bool {
	return res.Profile.Kernels == 0 && res.Profile.Writes == 0 && res.Profile.Reads == 0
}

// TestPoolStrategyOverride: a per-request Strategy wins over the pool
// default, both directions — "vm" on a fusion pool runs with zero
// device traffic, and a device strategy on a tiered pool bypasses the
// tier routing — with identical results throughout.
func TestPoolStrategyOverride(t *testing.T) {
	p := newTestPool(t, Config{Workers: 1, Strategy: "fusion"})
	const n = 64
	expr := "r = sqrt(u*u + v*v + w*w)"

	base, err := p.Submit(context.Background(), Request{Expr: expr, N: n, Inputs: testInputs(n)})
	if err != nil {
		t.Fatal(err)
	}
	if usedVM(base) {
		t.Fatalf("fusion pool default ran on the vm: %+v", base.Profile)
	}
	vm, err := p.Submit(context.Background(), Request{Expr: expr, N: n, Inputs: testInputs(n), Strategy: "vm"})
	if err != nil {
		t.Fatal(err)
	}
	if !usedVM(vm) {
		t.Fatalf("Strategy=vm request still touched the device: %+v", vm.Profile)
	}
	for i := range base.Data {
		if math.Float32bits(base.Data[i]) != math.Float32bits(vm.Data[i]) {
			t.Fatalf("element %d: vm %v vs fusion %v", i, vm.Data[i], base.Data[i])
		}
	}
	// Unknown strategy fails the request, not the pool.
	if _, err := p.Submit(context.Background(), Request{Expr: expr, N: n, Inputs: testInputs(n), Strategy: "warp"}); err == nil {
		t.Fatal("bad strategy must fail the request")
	}
	if _, err := p.Submit(context.Background(), Request{Expr: expr, N: n, Inputs: testInputs(n)}); err != nil {
		t.Fatalf("pool broken after bad strategy: %v", err)
	}
}

// TestPoolTieredConfig: a tiered pool routes a below-threshold request
// to the VM and an at-threshold request to the device, and a
// per-request device-strategy override beats the tier routing.
func TestPoolTieredConfig(t *testing.T) {
	const th = 128
	p := newTestPool(t, Config{Workers: 1, Strategy: "tiered", VMThreshold: th})
	expr := "r = sqrt(u*u + v*v + w*w)"

	small, err := p.Submit(context.Background(), Request{Expr: expr, N: th - 1, Inputs: testInputs(th - 1)})
	if err != nil {
		t.Fatal(err)
	}
	if !usedVM(small) {
		t.Fatalf("below-threshold request missed the vm tier: %+v", small.Profile)
	}
	large, err := p.Submit(context.Background(), Request{Expr: expr, N: th, Inputs: testInputs(th)})
	if err != nil {
		t.Fatal(err)
	}
	if usedVM(large) {
		t.Fatalf("at-threshold request ran on the vm: %+v", large.Profile)
	}
	forced, err := p.Submit(context.Background(), Request{Expr: expr, N: th - 1, Inputs: testInputs(th - 1), Strategy: "fusion"})
	if err != nil {
		t.Fatal(err)
	}
	if usedVM(forced) {
		t.Fatalf("Strategy=fusion override still routed to the vm: %+v", forced.Profile)
	}
	for i := range small.Data {
		if math.Float32bits(small.Data[i]) != math.Float32bits(forced.Data[i]) {
			t.Fatalf("element %d: vm tier %v vs forced fusion %v", i, small.Data[i], forced.Data[i])
		}
	}
}
