package serve

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"dfg"
	"dfg/internal/ocl"
)

// chaosReq is a small healthy request the chaos tests reuse.
func chaosReq() Request {
	n := 64
	xs := make([]float32, n)
	for i := range xs {
		xs[i] = float32(i)
	}
	return Request{Expr: "f = x*2 + 1", N: n, Inputs: map[string][]float32{"x": xs}}
}

// TestWorkerPanicRecovery proves an injected device panic neither kills
// the worker nor wedges the pool: the panicking request gets a typed
// ErrWorkerPanic response, the worker rebuilds its engine on a fresh
// device, and every subsequent request is served normally.
func TestWorkerPanicRecovery(t *testing.T) {
	var armed atomic.Bool
	armed.Store(true)
	pool, err := NewPool(Config{
		Workers:   1,
		Device:    dfg.CPU,
		Strategy:  "fusion",
		TraceKeep: -1,
		FaultPlanFor: func(worker int) *ocl.FaultPlan {
			// Only the first engine gets the bomb; the rebuilt one is clean.
			if armed.CompareAndSwap(true, false) {
				return ocl.NewFaultPlan(1).PanicAt(ocl.FaultKernel, 0)
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	_, err = pool.Submit(context.Background(), chaosReq())
	if !errors.Is(err, ErrWorkerPanic) {
		t.Fatalf("panicking request: got %v, want ErrWorkerPanic", err)
	}
	for i := 0; i < 5; i++ {
		if _, err := pool.Submit(context.Background(), chaosReq()); err != nil {
			t.Fatalf("request %d after restart: %v", i, err)
		}
	}
	st := pool.Stats()
	if st.Restarts != 1 {
		t.Fatalf("restarts = %d, want 1", st.Restarts)
	}
	if st.Served != 5 || st.Failed != 1 {
		t.Fatalf("served=%d failed=%d, want 5/1", st.Served, st.Failed)
	}
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}
	if n := pool.LiveBuffers(); n != 0 {
		t.Fatalf("live buffers after close = %d, want 0", n)
	}
}

// TestBreakerTripsAndProbeHeals walks a single worker's breaker through
// its full cycle: a device-lost fault is rescued by the recovery
// ladder's host-VM rung (the request still succeeds, with zero device
// traffic) but trips the breaker anyway, requests during the cooldown
// fail typed ErrWorkerUnavailable (a one-worker pool has nowhere to
// reroute), and after the cooldown the half-open probe heals the device
// and recloses the breaker.
func TestBreakerTripsAndProbeHeals(t *testing.T) {
	cooldown := 50 * time.Millisecond
	var armed atomic.Bool
	armed.Store(true)
	pool, err := NewPool(Config{
		Workers:         1,
		Device:          dfg.CPU,
		Strategy:        "fusion",
		TraceKeep:       -1,
		BreakerCooldown: cooldown,
		FaultPlanFor: func(worker int) *ocl.FaultPlan {
			if armed.CompareAndSwap(true, false) {
				// One-shot device loss on the first kernel launch.
				return ocl.NewFaultPlan(1).LoseDeviceAt(0)
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	res, err := pool.Submit(context.Background(), chaosReq())
	if err != nil {
		t.Fatalf("first request: %v (the vm rung should have rescued the lost device)", err)
	}
	if res.Profile.Kernels != 0 || res.Profile.Writes != 0 || res.Profile.Reads != 0 {
		t.Fatalf("rescued request touched the lost device: %+v", res.Profile)
	}
	if states := pool.BreakerStates(); states[0] != "open" {
		t.Fatalf("breaker after device loss = %q, want open (vm rescue must still trip it)", states[0])
	}
	// Still cooling: nothing to reroute to, so the typed 5xx surfaces.
	if _, err := pool.Submit(context.Background(), chaosReq()); !errors.Is(err, ErrWorkerUnavailable) {
		t.Fatalf("request during cooldown: got %v, want ErrWorkerUnavailable", err)
	}
	if st := pool.Stats(); st.Rerouted == 0 {
		t.Fatalf("rerouted = 0, want the cooled-down job to have bounced at least once")
	}

	time.Sleep(cooldown + 20*time.Millisecond)
	// The half-open probe heals the latched loss; the one-shot fault rule
	// is spent, so the probe succeeds and recloses the breaker.
	if _, err := pool.Submit(context.Background(), chaosReq()); err != nil {
		t.Fatalf("probe request: %v", err)
	}
	if states := pool.BreakerStates(); states[0] != "closed" {
		t.Fatalf("breaker after successful probe = %q, want closed", states[0])
	}
	if st := pool.Stats(); st.Restarts != 0 {
		t.Fatalf("restarts = %d, want 0 (probe healed, no replacement)", st.Restarts)
	}
}

// TestDeviceReplacedAfterFailedProbes proves a device that stays dead
// through repeated heal-and-probe cycles is eventually replaced: the
// worker rebuilds its engine on a fresh device, the fault plan is
// re-requested (now clean), and service resumes.
func TestDeviceReplacedAfterFailedProbes(t *testing.T) {
	cooldown := 5 * time.Millisecond
	var builds atomic.Int64
	pool, err := NewPool(Config{
		Workers:            1,
		Device:             dfg.CPU,
		Strategy:           "fusion",
		TraceKeep:          -1,
		BreakerCooldown:    cooldown,
		ReplaceAfterProbes: 2,
		FaultPlanFor: func(worker int) *ocl.FaultPlan {
			if builds.Add(1) == 1 {
				// The first device loses itself on every kernel launch:
				// healing never sticks.
				return ocl.NewFaultPlan(1).Add(ocl.FaultRule{
					Op: ocl.FaultKernel, Nth: 0, Times: 1 << 30, Effect: ocl.EffectDeviceLost,
				})
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	deadline := time.Now().Add(5 * time.Second)
	for pool.Stats().Restarts == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("device never replaced; stats %+v, breakers %v", pool.Stats(), pool.BreakerStates())
		}
		pool.Submit(context.Background(), chaosReq())
		time.Sleep(cooldown * 2)
	}
	if got := builds.Load(); got < 2 {
		t.Fatalf("fault plan requested %d times, want >= 2 (replacement re-arms chaos)", got)
	}
	// The replacement device is clean; service resumes.
	if _, err := pool.Submit(context.Background(), chaosReq()); err != nil {
		t.Fatalf("request after replacement: %v", err)
	}
	if states := pool.BreakerStates(); states[0] != "closed" {
		t.Fatalf("breaker after replacement = %q, want closed", states[0])
	}
}

// TestRerouteOffTrippedDevice runs a two-worker pool where one device
// dies permanently: every request still succeeds because jobs drawn by
// the tripped worker bounce back onto the queue for the healthy one.
func TestRerouteOffTrippedDevice(t *testing.T) {
	pool, err := NewPool(Config{
		Workers:   2,
		Device:    dfg.CPU,
		Strategy:  "fusion",
		TraceKeep: -1,
		// A long cooldown keeps worker 0 tripped for the whole test.
		BreakerCooldown: time.Hour,
		FaultPlanFor: func(worker int) *ocl.FaultPlan {
			if worker == 0 {
				return ocl.NewFaultPlan(1).Add(ocl.FaultRule{
					Op: ocl.FaultKernel, Nth: 0, Times: 1 << 30, Effect: ocl.EffectDeviceLost,
				})
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	failed := 0
	for i := 0; i < 40; i++ {
		if _, err := pool.Submit(context.Background(), chaosReq()); err != nil {
			if !errors.Is(err, ocl.ErrDeviceLost) {
				t.Fatalf("request %d: unexpected error %v", i, err)
			}
			failed++
		}
	}
	// Worker 0 kills at most one request (the one that trips the
	// breaker); everything after reroutes to worker 1.
	if failed > 1 {
		t.Fatalf("%d requests failed, want at most 1 (the breaker-tripping one)", failed)
	}
	st := pool.Stats()
	if st.Served < 39 {
		t.Fatalf("served = %d, want >= 39", st.Served)
	}
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}
	if n := pool.LiveBuffers(); n != 0 {
		t.Fatalf("live buffers after close = %d, want 0", n)
	}
}
