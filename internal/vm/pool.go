package vm

import (
	"math/bits"
	"sync"
)

// The scratch pool recycles the VM's host working storage — the register
// slab and materialized-node arrays — across runs, the host-side
// counterpart of the device buffer arena: a warm Prepared.Eval on the vm
// strategy performs zero scratch allocations. Slices are bucketed by
// power-of-two capacity under a mutex; counters are deterministic
// (unlike sync.Pool, nothing is dropped behind the program's back), so
// the warm-vs-cold gates in metrics.RunRepeat and the allocation tests
// can assert exact numbers.
type scratchPool struct {
	mu     sync.Mutex
	free   map[int][][]float32 // pow2 capacity -> free slices
	allocs int64
	reuses int64
}

var pool = scratchPool{free: make(map[int][][]float32)}

// PoolStats are the scratch pool's monotonic counters.
type PoolStats struct {
	// Allocs counts slices freshly allocated because no pooled slice of
	// the right bucket was free.
	Allocs int64
	// Reuses counts requests served from the pool.
	Reuses int64
}

// Stats snapshots the scratch pool counters.
func Stats() PoolStats {
	pool.mu.Lock()
	defer pool.mu.Unlock()
	return PoolStats{Allocs: pool.allocs, Reuses: pool.reuses}
}

// DrainPool empties the free lists (counters are kept), releasing all
// pooled scratch to the garbage collector. Tests drain before a cold-run
// measurement so "cold" deterministically means "allocates".
func DrainPool() {
	pool.mu.Lock()
	defer pool.mu.Unlock()
	pool.free = make(map[int][][]float32)
}

// bucketFor rounds a size up to the pool's power-of-two bucket.
func bucketFor(size int) int {
	if size <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(size-1))
}

// getScratch returns a slice of exactly size float32s backed by pooled
// storage. Contents are unspecified: every compiled program writes each
// register lane and scratch element before reading it (the differential
// harness would catch any stale read as a divergence from the fused
// kernel, whose storage is freshly zeroed).
func getScratch(size int) []float32 {
	b := bucketFor(size)
	pool.mu.Lock()
	if list := pool.free[b]; len(list) > 0 {
		s := list[len(list)-1]
		pool.free[b] = list[:len(list)-1]
		pool.reuses++
		pool.mu.Unlock()
		return s[:size]
	}
	pool.allocs++
	pool.mu.Unlock()
	return make([]float32, b)[:size]
}

// putScratch returns a slice obtained from getScratch to its bucket.
func putScratch(s []float32) {
	b := cap(s)
	if b == 0 || b&(b-1) != 0 {
		return // not pool-originated; drop
	}
	pool.mu.Lock()
	pool.free[b] = append(pool.free[b], s[:0])
	pool.mu.Unlock()
}
