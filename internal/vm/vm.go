// Package vm compiles a sealed dataflow network into a compact bytecode
// program executed entirely on the host — the tier below the device
// strategies. At small mesh sizes the paper's Table II orderings are
// dominated by kernel-launch and transfer overhead, so the fastest
// "device" for a tiny request is no device at all: the VM evaluates the
// same fused, pass-split instruction plan the dynamic kernel generator
// (internal/codegen) produces, but over pooled host float32 scratch with
// zero uploads, zero launches and zero downloads.
//
// The compiler deliberately mirrors the kernel generator stage for
// stage — same pass assignment and materialization set (the paper's
// Figure 2 barrier rule), same buffer argument order, same on-demand
// operand loads per pass, same instruction emission order — so the
// executed operation sequence per element is identical and the output is
// bitwise equal to the fusion strategy's. The differential and fuzz
// harnesses in internal/strategy enforce that at zero ULP across the
// expression grammar; the planner only routes to the VM because that
// evidence exists.
//
// The one place the VM improves on the generator is register allocation:
// where codegen gives every live node its own register slot (device
// registers are the device's problem), the VM remaps each pass's virtual
// registers onto a minimal slot set with last-use liveness, so the
// pooled register slab stays small for large fused expressions.
package vm

import (
	"fmt"
	"strconv"

	"dfg/internal/dataflow"
	"dfg/internal/kernels"
)

// opcode identifies one bytecode operation. The set matches the kernel
// generator's executable plan one for one.
type opcode uint8

const (
	opLoad opcode = iota // dst <- buf[gid] (width from instr.width)
	opConst
	opAdd
	opSub
	opMul
	opDiv
	opMin
	opMax
	opSqrt
	opNeg
	opAbs
	opExp
	opLog
	opSin
	opCos
	opPow
	opGt
	opLt
	opGe
	opLe
	opEq
	opNe
	opSelect
	opNorm
	opDecomp
	opGrad
	opGradAxis // single-axis gradient (instr.comp selects the axis)
	opStore    // buf[gid] <- a (width from instr.width)

	opCount
)

// instr is one bytecode instruction. Register operands are slot indices
// into the pooled register slab (four float32 lanes per slot; scalars
// use lane 0); buf indexes the program's buffer table. The narrow field
// types keep an instruction at 28 bytes, so whole programs stay
// cache-resident next to the register slab.
type instr struct {
	op    opcode
	width uint8  // element width for load/store
	comp  uint8  // decompose component / gradient axis
	dst   uint16 // destination slot
	a     uint16 // slot operands
	b     uint16
	c     uint16
	buf   uint16    // buffer index for load/store
	val   float32   // constant value
	gbufs [5]uint16 // stencils: field, dims, x, y, z buffer indices
}

// BufKind classifies one entry of a program's buffer table.
type BufKind int

const (
	// BufSource is a host-provided input array, read in place — the VM
	// never copies or uploads it.
	BufSource BufKind = iota
	// BufScratch is a materialized intermediate (problem-sized), drawn
	// from the package scratch pool for the duration of one Run.
	BufScratch
	// BufOut is the result array, freshly allocated per Run and handed
	// to the caller.
	BufOut
)

// BufferSpec describes one buffer of a compiled program, in binding
// order. The order matches the kernel generator's argument plan: live
// sources in network declaration order, then scratch in topological
// order, then the output.
type BufferSpec struct {
	Kind  BufKind
	Name  string // source name or scratch label
	Width int    // element width in float32 components

	// Length requirement for one Run over n elements: needPerN*n
	// float32s, and at least needFixed regardless of n. Per-element
	// loads and stencil field/coordinate reads need problem-sized
	// arrays; the dims descriptor only ever has its first three
	// elements read, matching what the device kernels require.
	needPerN  int
	needFixed int
}

// Program is a compiled bytecode program: per-pass instruction slices
// over a shared buffer table and a register slot count. Programs are
// immutable and safe to share across goroutines; all per-run state lives
// inside Run.
//
// A multi-root super-network compiles to one program with several BufOut
// entries, in the network's Roots() order; Run returns the primary root
// and RunAll returns every root's array.
type Program struct {
	// OutWidth is the primary output's element width (roots[0]).
	OutWidth int
	// OutWidths holds every root's element width, in Roots() order.
	OutWidths []int

	buffers []BufferSpec
	passes  [][]instr
	slots   int // pooled register slots (max over passes after remapping)
}

// NumOuts returns the number of output arrays (roots) the program
// produces — 1 except for merged super-networks.
func (p *Program) NumOuts() int { return len(p.OutWidths) }

// NumPasses returns the pass count (1 unless a stencil consumes a
// computed value, exactly as in the fused kernel).
func (p *Program) NumPasses() int { return len(p.passes) }

// Slots returns the register slot count after liveness remapping.
func (p *Program) Slots() int { return p.slots }

// NumInstrs returns the total instruction count across passes.
func (p *Program) NumInstrs() int {
	total := 0
	for _, pass := range p.passes {
		total += len(pass)
	}
	return total
}

// Buffers returns the program's buffer table (a copy).
func (p *Program) Buffers() []BufferSpec { return append([]BufferSpec(nil), p.buffers...) }

// scratchName labels the scratch buffer of a materialized node, matching
// the kernel generator's labels.
func scratchName(id string) string { return "scratch_" + id }

// outName and outKey mirror the kernel generator's output naming: a
// single root keeps "out"/"__out__", super-network roots are numbered.
func (c *compiler) outName(i int) string {
	if len(c.roots) == 1 {
		return "out"
	}
	return "out" + strconv.Itoa(i)
}

func (c *compiler) outKey(i int) string {
	if len(c.roots) == 1 {
		return "__out__"
	}
	return "__out" + strconv.Itoa(i) + "__"
}

// compiler holds the compilation state for one network.
type compiler struct {
	net   *dataflow.Network
	order []*dataflow.Node
	byID  map[string]*dataflow.Node
	roots []*dataflow.Node

	pass        map[string]int // node ID -> pass index
	numPasses   int
	materialize map[string]bool // node IDs needing problem-sized scratch

	buffers []BufferSpec
	bufIdx  map[string]int // source name / scratch label -> buffer index

	vreg     map[string]int // node ID -> virtual register (pre-remap)
	numVRegs int
}

// Compile translates a validated network with a designated output into a
// bytecode program.
func Compile(net *dataflow.Network) (*Program, error) {
	if err := net.Validate(); err != nil {
		return nil, err
	}
	order, err := net.TopoOrder()
	if err != nil {
		return nil, err
	}
	c := &compiler{
		net:    net,
		order:  order,
		byID:   make(map[string]*dataflow.Node, len(order)),
		pass:   make(map[string]int),
		bufIdx: make(map[string]int),
		vreg:   make(map[string]int),
	}
	for _, n := range order {
		c.byID[n.ID] = n
	}
	for _, r := range net.Roots() {
		c.roots = append(c.roots, c.byID[r])
	}
	if err := c.assignPasses(); err != nil {
		return nil, err
	}
	c.planBuffers()
	for _, n := range c.order {
		if _, ok := c.vreg[n.ID]; !ok {
			c.vreg[n.ID] = c.numVRegs
			c.numVRegs++
		}
	}
	if c.numVRegs > 1<<16-1 || len(c.buffers) > 1<<16-1 {
		return nil, fmt.Errorf("vm: program too large (%d registers, %d buffers)", c.numVRegs, len(c.buffers))
	}

	passNodes := make([][]*dataflow.Node, c.numPasses)
	for _, n := range c.order {
		passNodes[c.pass[n.ID]] = append(passNodes[c.pass[n.ID]], n)
	}
	widths := make([]int, len(c.roots))
	for i, r := range c.roots {
		widths[i] = r.Width
	}
	prog := &Program{OutWidth: widths[0], OutWidths: widths, buffers: c.buffers}
	for p := 0; p < c.numPasses; p++ {
		plan, err := c.emitPass(p, passNodes[p])
		if err != nil {
			return nil, err
		}
		plan, slots := allocateSlots(plan)
		if slots > prog.slots {
			prog.slots = slots
		}
		prog.passes = append(prog.passes, plan)
	}
	prog.computeNeeds()
	return prog, nil
}

// computeNeeds derives each buffer's length requirement from how the
// program accesses it.
func (p *Program) computeNeeds() {
	perN := func(b uint16, m int) {
		if p.buffers[b].needPerN < m {
			p.buffers[b].needPerN = m
		}
	}
	for _, pass := range p.passes {
		for _, in := range pass {
			switch in.op {
			case opLoad, opStore:
				perN(in.buf, int(in.width))
			case opGrad, opGradAxis:
				perN(in.gbufs[0], 1) // field, read at neighbour indices < n
				if p.buffers[in.gbufs[1]].needFixed < 3 {
					p.buffers[in.gbufs[1]].needFixed = 3 // dims: nx, ny, nz
				}
				for _, b := range in.gbufs[2:] {
					perN(b, 1) // coordinate arrays, indexed per element
				}
			}
		}
	}
}

// assignPasses computes each node's pass and the materialization set —
// the same rule the kernel generator applies: a stencil whose field
// input is computed runs at least one pass after that input, and any
// value consumed in a later pass than it is computed in must be
// materialized to problem-sized scratch.
func (c *compiler) assignPasses() error {
	c.materialize = make(map[string]bool)
	for _, n := range c.order {
		p := 0
		for _, in := range n.Inputs {
			if ip := c.pass[in]; ip > p {
				p = ip
			}
		}
		if n.Info().Class == dataflow.ClassStencil {
			field := c.byID[n.Inputs[0]]
			for _, in := range n.Inputs[1:] {
				if c.byID[in].Filter != "source" {
					return fmt.Errorf("vm: %s input %q must be a source array (dims/coords cannot be computed)", n.Filter, in)
				}
			}
			if field.Filter != "source" {
				c.materialize[field.ID] = true
				if fp := c.pass[field.ID]; fp+1 > p {
					p = fp + 1
				}
			}
		}
		c.pass[n.ID] = p
	}
	for _, n := range c.order {
		for _, in := range n.Inputs {
			src := c.byID[in]
			if src.Filter == "source" || src.Filter == "const" {
				continue // sources are globally readable; constants are immediates
			}
			if c.pass[in] < c.pass[n.ID] {
				c.materialize[in] = true
			}
		}
	}
	c.numPasses = 0
	for _, r := range c.roots {
		if p := c.pass[r.ID] + 1; p > c.numPasses {
			c.numPasses = p
		}
	}
	// A root computed before the final pass is consumed by the final
	// store, so it must be materialized like any cross-pass value.
	for _, r := range c.roots {
		if r.Filter == "source" || r.Filter == "const" {
			continue
		}
		if c.pass[r.ID] < c.numPasses-1 {
			c.materialize[r.ID] = true
		}
	}
	return nil
}

// planBuffers fixes the buffer table in the kernel generator's argument
// order: live sources in network declaration order, then scratch in
// topological order, then the output.
func (c *compiler) planBuffers() {
	live := make(map[string]bool, len(c.order))
	for _, n := range c.order {
		live[n.ID] = true
	}
	for _, s := range c.net.Sources() {
		if live[s.ID] {
			c.bufIdx[s.ID] = len(c.buffers)
			c.buffers = append(c.buffers, BufferSpec{Kind: BufSource, Name: s.ID, Width: s.Width})
		}
	}
	for _, n := range c.order {
		if c.materialize[n.ID] {
			label := scratchName(n.ID)
			c.bufIdx[label] = len(c.buffers)
			c.buffers = append(c.buffers, BufferSpec{Kind: BufScratch, Name: label, Width: n.Width})
		}
	}
	for i, r := range c.roots {
		c.bufIdx[c.outKey(i)] = len(c.buffers)
		c.buffers = append(c.buffers, BufferSpec{Kind: BufOut, Name: c.outName(i), Width: r.Width})
	}
}

// emitPass produces one pass's instruction plan over virtual registers,
// in the kernel generator's emission order: operands load on demand the
// first time a pass touches them, stencils read buffers directly,
// materialized values store to scratch as soon as they are computed, and
// the final pass ends with the output store.
func (c *compiler) emitPass(p int, nodes []*dataflow.Node) ([]instr, error) {
	var plan []instr
	loaded := make(map[string]bool) // node IDs already in registers this pass

	operand := func(id string) uint16 {
		n := c.byID[id]
		r := uint16(c.vreg[id])
		switch {
		case n.Filter == "const":
			if !loaded[id] {
				plan = append(plan, instr{op: opConst, dst: r, val: float32(n.Value)})
				loaded[id] = true
			}
		case n.Filter == "source":
			if !loaded[id] {
				plan = append(plan, instr{op: opLoad, dst: r, buf: uint16(c.bufIdx[id]), width: 1})
				loaded[id] = true
			}
		case c.pass[id] < p:
			// Computed in an earlier pass: read back from scratch.
			if !loaded[id] {
				plan = append(plan, instr{op: opLoad, dst: r, buf: uint16(c.bufIdx[scratchName(id)]), width: uint8(n.Width)})
				loaded[id] = true
			}
		}
		return r
	}

	for _, n := range nodes {
		if n.Filter == "source" || n.Filter == "const" {
			continue // realized on demand by operand()
		}
		r := uint16(c.vreg[n.ID])
		switch n.Filter {
		case "grad3d", "grad3dx", "grad3dy", "grad3dz":
			field := c.byID[n.Inputs[0]]
			fieldArg := field.ID
			if field.Filter != "source" {
				fieldArg = scratchName(field.ID)
			}
			var gb [5]uint16
			gb[0] = uint16(c.bufIdx[fieldArg])
			for i, in := range n.Inputs[1:] {
				gb[i+1] = uint16(c.bufIdx[in])
			}
			if axis, ok := kernels.GradAxisOf(n.Filter); ok {
				plan = append(plan, instr{op: opGradAxis, dst: r, comp: uint8(axis), gbufs: gb})
			} else {
				plan = append(plan, instr{op: opGrad, dst: r, gbufs: gb})
			}
		case "decompose":
			a := operand(n.Inputs[0])
			plan = append(plan, instr{op: opDecomp, dst: r, a: a, comp: uint8(n.Comp)})
		case "norm":
			a := operand(n.Inputs[0])
			plan = append(plan, instr{op: opNorm, dst: r, a: a})
		default:
			op, ok := opForFilter(n.Filter)
			if !ok {
				return nil, fmt.Errorf("vm: no bytecode rule for filter %q", n.Filter)
			}
			in := instr{op: op, dst: r, a: operand(n.Inputs[0])}
			if len(n.Inputs) > 1 {
				in.b = operand(n.Inputs[1])
			}
			if len(n.Inputs) > 2 {
				in.c = operand(n.Inputs[2])
			}
			plan = append(plan, in)
		}

		if c.materialize[n.ID] {
			plan = append(plan, instr{op: opStore, a: r, buf: uint16(c.bufIdx[scratchName(n.ID)]), width: uint8(n.Width)})
		}
	}

	if p == c.numPasses-1 {
		for i, root := range c.roots {
			a := operand(root.ID)
			plan = append(plan, instr{op: opStore, a: a, buf: uint16(c.bufIdx[c.outKey(i)]), width: uint8(root.Width)})
		}
	}
	return plan, nil
}

// readSlots appends an instruction's register read operands to dst.
// Loads, constants and stencils read no registers.
func readSlots(in instr, dst []uint16) []uint16 {
	switch in.op {
	case opLoad, opConst, opGrad, opGradAxis:
		return dst
	case opAdd, opSub, opMul, opDiv, opMin, opMax, opPow,
		opGt, opLt, opGe, opLe, opEq, opNe:
		return append(dst, in.a, in.b)
	case opSelect:
		return append(dst, in.a, in.b, in.c)
	case opStore:
		return append(dst, in.a)
	default: // unary, norm, decompose
		return append(dst, in.a)
	}
}

// writesDst reports whether the opcode writes a destination register.
func writesDst(op opcode) bool { return op != opStore }

// allocateSlots remaps one pass's virtual registers onto a minimal slot
// set: a forward scan frees each register's slot at its last read, and
// destinations reuse freed slots. A destination may alias a just-freed
// operand slot — every handler reads its operand element before writing
// the destination element, so in-place execution is safe (and keeps the
// hot slots cache-resident). Cross-pass values never appear here: they
// travel through scratch buffers, exactly as in the fused kernel.
func allocateSlots(plan []instr) ([]instr, int) {
	lastRead := make(map[uint16]int, len(plan))
	var reads []uint16
	for i, in := range plan {
		reads = readSlots(in, reads[:0])
		for _, r := range reads {
			lastRead[r] = i
		}
	}

	slotOf := make(map[uint16]uint16, len(plan))
	var free []uint16
	next := uint16(0)
	out := make([]instr, len(plan))
	for i, in := range plan {
		reads = readSlots(in, reads[:0])
		switch in.op {
		case opSelect:
			in.a, in.b, in.c = slotOf[in.a], slotOf[in.b], slotOf[in.c]
		case opLoad, opConst, opGrad, opGradAxis:
			// no register reads
		case opAdd, opSub, opMul, opDiv, opMin, opMax, opPow,
			opGt, opLt, opGe, opLe, opEq, opNe:
			in.a, in.b = slotOf[in.a], slotOf[in.b]
		default:
			in.a = slotOf[in.a]
		}
		for _, r := range reads {
			if lastRead[r] == i {
				if s, ok := slotOf[r]; ok {
					free = append(free, s)
					delete(slotOf, r)
				}
			}
		}
		if writesDst(in.op) {
			var s uint16
			if len(free) > 0 {
				s, free = free[len(free)-1], free[:len(free)-1]
			} else {
				s = next
				next++
			}
			slotOf[in.dst] = s
			in.dst = s
		}
		out[i] = in
	}
	return out, int(next)
}

// opForFilter maps an elementwise filter name to its opcode — the same
// dispatch the kernel table (kernels.ForFilter) and the generator's
// fusion rules use, shared here so the three stay in lockstep.
func opForFilter(filter string) (opcode, bool) {
	op, ok := elementwiseOps[filter]
	return op, ok
}

// elementwiseOps is the filter-to-opcode table the compiler and the
// handler generator share.
var elementwiseOps = map[string]opcode{
	"add": opAdd, "sub": opSub, "mul": opMul, "div": opDiv,
	"min": opMin, "max": opMax,
	"sqrt": opSqrt, "neg": opNeg, "abs": opAbs,
	"exp": opExp, "log": opLog, "sin": opSin, "cos": opCos,
	"pow": opPow,
	"gt":  opGt, "lt": opLt, "ge": opGe, "le": opLe, "eq": opEq, "ne": opNe,
	"select": opSelect,
}
