package vm

import (
	"errors"
	"fmt"
	"testing"

	"dfg/internal/expr"
	"dfg/internal/kernels"
	"dfg/internal/mesh"
	"dfg/internal/rtsim"
	"dfg/internal/vortex"
)

// meshSources builds a SourceFn over a generated turbulence field.
func meshSources(t testing.TB, d mesh.Dims) (SourceFn, int) {
	t.Helper()
	m := mesh.MustUniform(d, 1, 1, 1)
	f := rtsim.Generate(m, rtsim.Options{Seed: 3})
	x, y, z := m.CellCenterFields()
	src := map[string][]float32{
		"u": f.U, "v": f.V, "w": f.W,
		"dims": kernels.DimsArray(d.NX, d.NY, d.NZ),
		"x":    x, "y": y, "z": z,
	}
	return func(name string) ([]float32, error) {
		data, ok := src[name]
		if !ok {
			return nil, fmt.Errorf("no binding for %q", name)
		}
		return data, nil
	}, m.Cells()
}

func compileText(t testing.TB, text string) *Program {
	t.Helper()
	net, err := expr.Compile(text)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Compile(net)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// TestSlotReuseBoundsRegisterSlab: the liveness remapper must need
// strictly fewer slots than one-register-per-node for the Q-criterion
// network (which has dozens of live nodes but short chains), bounding
// the pooled slab for large fused expressions.
func TestSlotReuseBoundsRegisterSlab(t *testing.T) {
	net, err := expr.Compile(vortex.QCritExpr)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Compile(net)
	if err != nil {
		t.Fatal(err)
	}
	order, err := net.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	liveNodes := len(order)
	if prog.Slots() >= liveNodes {
		t.Fatalf("remapper used %d slots for %d live nodes — no reuse happened", prog.Slots(), liveNodes)
	}
	if prog.Slots() < 2 {
		t.Fatalf("suspiciously few slots (%d)", prog.Slots())
	}
	// The Q-criterion network has a stencil over sources only: one pass,
	// like the fused kernel.
	if prog.NumPasses() != 1 {
		t.Fatalf("Q-criterion compiled to %d passes, want 1", prog.NumPasses())
	}
}

// TestPassSplitOnComputedStencil mirrors the fused kernel's Figure 2
// rule: a gradient of a computed field forces a second pass and a
// materialized scratch buffer.
func TestPassSplitOnComputedStencil(t *testing.T) {
	prog := compileText(t, "s = u*u\nr = norm(grad3d(s, dims, x, y, z))")
	if prog.NumPasses() != 2 {
		t.Fatalf("computed-field stencil compiled to %d passes, want 2", prog.NumPasses())
	}
	scratch := 0
	for _, b := range prog.Buffers() {
		if b.Kind == BufScratch {
			scratch++
		}
	}
	if scratch != 1 {
		t.Fatalf("%d scratch buffers, want 1", scratch)
	}
}

// TestRunBasics checks output shape, the missing-source error path and
// the short-source error path.
func TestRunBasics(t *testing.T) {
	prog := compileText(t, vortex.QCritExpr)
	src, n := meshSources(t, mesh.Dims{NX: 6, NY: 5, NZ: 4})
	out, err := prog.Run(n, src, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != n*prog.OutWidth {
		t.Fatalf("output %d floats, want %d", len(out), n*prog.OutWidth)
	}
	if _, err := prog.Run(0, src, nil); err == nil {
		t.Fatal("n=0 must fail")
	}
	if _, err := prog.Run(n, func(string) ([]float32, error) {
		return nil, errors.New("nope")
	}, nil); err == nil {
		t.Fatal("source resolution failure must surface")
	}
	short := func(name string) ([]float32, error) {
		data, err := src(name)
		if err != nil || name != "u" {
			return data, err
		}
		return data[:2], nil
	}
	if _, err := prog.Run(n, short, nil); err == nil {
		t.Fatal("short source must fail")
	}
}

// TestDimsNeedsOnlyHeader: the dims descriptor is a fixed small array,
// never problem-sized — the VM must accept it exactly as the device
// kernels do.
func TestDimsNeedsOnlyHeader(t *testing.T) {
	prog := compileText(t, vortex.VortMagExpr)
	src, n := meshSources(t, mesh.Dims{NX: 4, NY: 4, NZ: 4})
	if _, err := prog.Run(n, src, nil); err != nil {
		t.Fatalf("4-element dims rejected: %v", err)
	}
}

// TestScratchPoolDeterminism: after a drain, the first run allocates
// and subsequent runs are served entirely from the pool — the property
// the warm-path gates in metrics.RunRepeat build on.
func TestScratchPoolDeterminism(t *testing.T) {
	prog := compileText(t, vortex.QCritExpr)
	src, n := meshSources(t, mesh.Dims{NX: 8, NY: 8, NZ: 8})
	DrainPool()
	s0 := Stats()
	if _, err := prog.Run(n, src, nil); err != nil {
		t.Fatal(err)
	}
	s1 := Stats()
	if s1.Allocs == s0.Allocs {
		t.Fatal("cold run after drain allocated nothing")
	}
	for i := 0; i < 5; i++ {
		if _, err := prog.Run(n, src, nil); err != nil {
			t.Fatal(err)
		}
	}
	s2 := Stats()
	if s2.Allocs != s1.Allocs {
		t.Fatalf("warm runs allocated %d fresh scratch slices, want 0", s2.Allocs-s1.Allocs)
	}
	if s2.Reuses == s1.Reuses {
		t.Fatal("warm runs reused nothing from the pool")
	}
}

// TestBucketFor pins the pool's bucket rounding.
func TestBucketFor(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 255: 256, 256: 256, 257: 512}
	for in, want := range cases {
		if got := bucketFor(in); got != want {
			t.Errorf("bucketFor(%d) = %d, want %d", in, got, want)
		}
	}
}
