package vm

import (
	"fmt"
	"math"

	"dfg/internal/kernels"
)

// blockSize matches the kernel generator's blocked executor: 256
// float32 lanes x 4 components = 4 KiB per register slot, so a handful
// of live slots stay in L1. Block boundaries cannot affect results —
// every instruction is element-independent within a pass, and the only
// cross-element operation (the gradient stencil) reads source or
// already-materialized arrays, never the block registers.
const blockSize = 256

// SourceFn resolves a bound source array by name. The returned slice is
// read in place — the VM performs no copies of source data.
type SourceFn func(name string) ([]float32, error)

// Run executes the program over n elements, resolving sources through
// src, and returns a freshly allocated output array of n*OutWidth
// float32s (the primary root of a multi-root program). canceled, when
// non-nil, is checked between passes (the VM's analogue of the device
// strategies' between-launch cancellation points). Register and scratch
// storage is drawn from the package scratch pool and returned before Run
// exits, so warm evaluations allocate nothing beyond the output
// array(s).
func (p *Program) Run(n int, src SourceFn, canceled func() error) ([]float32, error) {
	outs, err := p.RunAll(n, src, canceled)
	if err != nil {
		return nil, err
	}
	return outs[0], nil
}

// RunAll is Run returning every root's output array, in the compiled
// network's Roots() order — one entry for ordinary programs, one per
// member for merged super-networks. All roots are produced by the same
// single sweep over the mesh: shared subtrees execute once.
func (p *Program) RunAll(n int, src SourceFn, canceled func() error) ([][]float32, error) {
	if n <= 0 {
		return nil, fmt.Errorf("vm: global work size must be positive, got %d", n)
	}
	views := make([][]float32, len(p.buffers))
	outs := make([][]float32, 0, len(p.OutWidths))
	for i, spec := range p.buffers {
		switch spec.Kind {
		case BufSource:
			data, err := src(spec.Name)
			if err != nil {
				return nil, err
			}
			need := n * spec.needPerN
			if need < spec.needFixed {
				need = spec.needFixed
			}
			if len(data) < need {
				return nil, fmt.Errorf("vm: source %q holds %d float32s, need %d", spec.Name, len(data), need)
			}
			views[i] = data
		case BufScratch:
			s := getScratch(n * spec.Width)
			defer putScratch(s)
			views[i] = s
		case BufOut:
			out := make([]float32, n*spec.Width)
			outs = append(outs, out)
			views[i] = out
		}
	}
	regs := getScratch(p.slots * 4 * blockSize)
	defer putScratch(regs)

	for pi, pass := range p.passes {
		if pi > 0 && canceled != nil {
			if err := canceled(); err != nil {
				return nil, err
			}
		}
		runPass(pass, regs, views, n)
	}
	return outs, nil
}

// runPass executes one pass's instructions over the full range in
// register-sized blocks; each pass boundary is the VM's equivalent of
// the fused kernel's device-wide barrier.
func runPass(pass []instr, regs []float32, views [][]float32, total int) {
	for base := 0; base < total; base += blockSize {
		n := total - base
		if n > blockSize {
			n = blockSize
		}
		for i := range pass {
			in := &pass[i]
			handlers[in.op](in, regs, views, base, n)
		}
	}
}

// lane returns one lane of a register slot for the current block.
func lane(regs []float32, s uint16, l int) []float32 {
	off := (int(s)*4 + l) * blockSize
	return regs[off : off+blockSize]
}

// handler executes one instruction over elements [base, base+n) of the
// current block.
type handler func(in *instr, regs []float32, views [][]float32, base, n int)

// handlers is the opcode-indexed dispatch table. Entries are generated
// at init from the same filter table the compiler maps opcodes with
// (elementwiseOps mirrors kernels.ForFilter), each specialized to its
// operand shape: binary slot-to-slot loops, float64 round-trip unary
// maps, comparison encodes, and the buffer-reading stencil ops.
//
// Exact-parity note: min and max use the fused executor's comparison
// form (`if b < a`), not kernels' math.Min/math.Max — the two differ in
// which operand they return for NaN and signed-zero inputs, and the VM
// must be bitwise identical to the fusion strategy.
var handlers [opCount]handler

// binOp builds a handler for a slot-to-slot arithmetic loop.
func binOp(f func(dst, a, b []float32, n int)) handler {
	return func(in *instr, regs []float32, _ [][]float32, _, n int) {
		f(lane(regs, in.dst, 0), lane(regs, in.a, 0), lane(regs, in.b, 0), n)
	}
}

// mapOp builds a handler applying a float64 math function per element —
// the same round-trip the fused executor's blockMap performs.
func mapOp(f func(float64) float64) handler {
	return func(in *instr, regs []float32, _ [][]float32, _, n int) {
		dst, a := lane(regs, in.dst, 0), lane(regs, in.a, 0)
		for e := 0; e < n; e++ {
			dst[e] = float32(f(float64(a[e])))
		}
	}
}

// cmpOp builds a handler encoding a comparison as 1.0/0.0.
func cmpOp(f func(a, b float32) bool) handler {
	return func(in *instr, regs []float32, _ [][]float32, _, n int) {
		dst, a, b := lane(regs, in.dst, 0), lane(regs, in.a, 0), lane(regs, in.b, 0)
		for e := 0; e < n; e++ {
			if f(a[e], b[e]) {
				dst[e] = 1
			} else {
				dst[e] = 0
			}
		}
	}
}

func init() {
	handlers[opLoad] = func(in *instr, regs []float32, views [][]float32, base, n int) {
		w := int(in.width)
		if w == 1 {
			copy(lane(regs, in.dst, 0)[:n], views[in.buf][base:base+n])
			return
		}
		data := views[in.buf]
		for c := 0; c < w; c++ {
			dst := lane(regs, in.dst, c)
			for e := 0; e < n; e++ {
				dst[e] = data[(base+e)*w+c]
			}
		}
	}
	handlers[opConst] = func(in *instr, regs []float32, _ [][]float32, _, n int) {
		dst := lane(regs, in.dst, 0)
		for e := 0; e < n; e++ {
			dst[e] = in.val
		}
	}
	handlers[opAdd] = binOp(func(dst, a, b []float32, n int) {
		for e := 0; e < n; e++ {
			dst[e] = a[e] + b[e]
		}
	})
	handlers[opSub] = binOp(func(dst, a, b []float32, n int) {
		for e := 0; e < n; e++ {
			dst[e] = a[e] - b[e]
		}
	})
	handlers[opMul] = binOp(func(dst, a, b []float32, n int) {
		for e := 0; e < n; e++ {
			dst[e] = a[e] * b[e]
		}
	})
	handlers[opDiv] = binOp(func(dst, a, b []float32, n int) {
		for e := 0; e < n; e++ {
			dst[e] = a[e] / b[e]
		}
	})
	handlers[opMin] = binOp(func(dst, a, b []float32, n int) {
		for e := 0; e < n; e++ {
			if b[e] < a[e] {
				dst[e] = b[e]
			} else {
				dst[e] = a[e]
			}
		}
	})
	handlers[opMax] = binOp(func(dst, a, b []float32, n int) {
		for e := 0; e < n; e++ {
			if b[e] > a[e] {
				dst[e] = b[e]
			} else {
				dst[e] = a[e]
			}
		}
	})
	handlers[opSqrt] = func(in *instr, regs []float32, _ [][]float32, _, n int) {
		dst, a := lane(regs, in.dst, 0), lane(regs, in.a, 0)
		for e := 0; e < n; e++ {
			dst[e] = float32(math.Sqrt(float64(a[e])))
		}
	}
	handlers[opNeg] = func(in *instr, regs []float32, _ [][]float32, _, n int) {
		dst, a := lane(regs, in.dst, 0), lane(regs, in.a, 0)
		for e := 0; e < n; e++ {
			dst[e] = -a[e]
		}
	}
	handlers[opAbs] = func(in *instr, regs []float32, _ [][]float32, _, n int) {
		dst, a := lane(regs, in.dst, 0), lane(regs, in.a, 0)
		for e := 0; e < n; e++ {
			v := a[e]
			if v < 0 {
				v = -v
			}
			dst[e] = v
		}
	}
	handlers[opExp] = mapOp(math.Exp)
	handlers[opLog] = mapOp(math.Log)
	handlers[opSin] = mapOp(math.Sin)
	handlers[opCos] = mapOp(math.Cos)
	handlers[opPow] = binOp(func(dst, a, b []float32, n int) {
		for e := 0; e < n; e++ {
			dst[e] = float32(math.Pow(float64(a[e]), float64(b[e])))
		}
	})
	handlers[opGt] = cmpOp(func(a, b float32) bool { return a > b })
	handlers[opLt] = cmpOp(func(a, b float32) bool { return a < b })
	handlers[opGe] = cmpOp(func(a, b float32) bool { return a >= b })
	handlers[opLe] = cmpOp(func(a, b float32) bool { return a <= b })
	handlers[opEq] = cmpOp(func(a, b float32) bool { return a == b })
	handlers[opNe] = cmpOp(func(a, b float32) bool { return a != b })
	handlers[opSelect] = func(in *instr, regs []float32, _ [][]float32, _, n int) {
		dst, c, a, b := lane(regs, in.dst, 0), lane(regs, in.a, 0), lane(regs, in.b, 0), lane(regs, in.c, 0)
		for e := 0; e < n; e++ {
			if c[e] != 0 {
				dst[e] = a[e]
			} else {
				dst[e] = b[e]
			}
		}
	}
	handlers[opNorm] = func(in *instr, regs []float32, _ [][]float32, _, n int) {
		dst := lane(regs, in.dst, 0)
		x, y, z := lane(regs, in.a, 0), lane(regs, in.a, 1), lane(regs, in.a, 2)
		for e := 0; e < n; e++ {
			dst[e] = float32(math.Sqrt(float64(x[e])*float64(x[e]) +
				float64(y[e])*float64(y[e]) + float64(z[e])*float64(z[e])))
		}
	}
	handlers[opDecomp] = func(in *instr, regs []float32, _ [][]float32, _, n int) {
		copy(lane(regs, in.dst, 0)[:n], lane(regs, in.a, int(in.comp))[:n])
	}
	handlers[opGrad] = func(in *instr, regs []float32, views [][]float32, base, n int) {
		field := views[in.gbufs[0]]
		dims := views[in.gbufs[1]]
		x := views[in.gbufs[2]]
		y := views[in.gbufs[3]]
		z := views[in.gbufs[4]]
		nx, ny, nz := int(dims[0]), int(dims[1]), int(dims[2])
		gx, gy, gz := lane(regs, in.dst, 0), lane(regs, in.dst, 1), lane(regs, in.dst, 2)
		pad := lane(regs, in.dst, 3)
		for e := 0; e < n; e++ {
			gx[e], gy[e], gz[e] = kernels.GradAt(field, x, y, z, nx, ny, nz, base+e)
			pad[e] = 0
		}
	}
	handlers[opGradAxis] = func(in *instr, regs []float32, views [][]float32, base, n int) {
		field := views[in.gbufs[0]]
		dims := views[in.gbufs[1]]
		x := views[in.gbufs[2]]
		y := views[in.gbufs[3]]
		z := views[in.gbufs[4]]
		nx, ny, nz := int(dims[0]), int(dims[1]), int(dims[2])
		dst := lane(regs, in.dst, 0)
		for e := 0; e < n; e++ {
			dst[e] = kernels.GradAxisAt(field, x, y, z, nx, ny, nz, base+e, int(in.comp))
		}
	}
	handlers[opStore] = func(in *instr, regs []float32, views [][]float32, base, n int) {
		w := int(in.width)
		if w == 1 {
			copy(views[in.buf][base:base+n], lane(regs, in.a, 0)[:n])
			return
		}
		data := views[in.buf]
		for c := 0; c < w; c++ {
			src := lane(regs, in.a, c)
			for e := 0; e < n; e++ {
				data[(base+e)*w+c] = src[e]
			}
		}
	}
}
