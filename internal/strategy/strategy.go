// Package strategy implements the paper's three execution strategies —
// roundtrip, staged and fusion — over a common dataflow network and the
// shared primitive library. Each strategy controls data movement and
// kernel composition differently:
//
//   - roundtrip dispatches one kernel per primitive and bounces every
//     intermediate result through host memory (most transfers, least
//     device memory);
//   - staged dispatches one kernel per primitive but keeps intermediates
//     in device global memory, reference-counting them so buffers free
//     as soon as they drain (fewest transfers, most device memory);
//   - fusion generates a single kernel for the whole network with
//     intermediates in registers (fewest kernel launches; device memory
//     equal to inputs + output, plus scratch only when a stencil
//     consumes a computed value).
//
// The strategies reproduce the paper's Table II event counts exactly;
// see the package tests.
package strategy

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"dfg/internal/dataflow"
	"dfg/internal/ocl"
	"dfg/internal/passes"
)

// Source is one host-provided input array (a NumPy array in the original
// system): raw float32 data with an element width.
type Source struct {
	Data  []float32
	Width int
}

// Elems returns the number of elements in the source.
func (s Source) Elems() int {
	w := s.Width
	if w < 1 {
		w = 1
	}
	return len(s.Data) / w
}

// Bindings maps the network's source names to host arrays and fixes the
// global work size (one work item per mesh cell).
type Bindings struct {
	// N is the number of cells — the ND-range of every kernel.
	N int
	// Sources binds each source node name to its host array.
	Sources map[string]Source
	// Ctx, when non-nil, is checked between kernel launches so a
	// canceled or timed-out request stops mid-plan instead of running to
	// completion. The partial run's buffers are released as on any other
	// error path.
	Ctx context.Context
}

// canceled returns the binding context's error, if a context is
// attached and already done. Strategies call this between kernel
// launches.
func (b Bindings) canceled() error {
	if b.Ctx == nil {
		return nil
	}
	return b.Ctx.Err()
}

// source resolves a bound source by name.
func (b Bindings) source(name string) (Source, error) {
	s, ok := b.Sources[name]
	if !ok {
		return Source{}, fmt.Errorf("strategy: no binding for source %q", name)
	}
	if len(s.Data) == 0 {
		return Source{}, fmt.Errorf("strategy: empty binding for source %q", name)
	}
	if s.Width < 1 {
		s.Width = 1
	}
	return s, nil
}

// Result is the derived field produced by an execution, along with the
// device-event profile and the global-memory high-water mark of the run.
type Result struct {
	// Data is the output array (Width components per element).
	Data  []float32
	Width int
	// Profile aggregates the run's device events (Table II counts and
	// Figure 5 modeled times).
	Profile ocl.Profile
	// PeakBytes is the device global-memory high-water mark (Figure 6).
	PeakBytes int64
	// Events is the raw event log in enqueue order.
	Events []ocl.Event
	// Resolved names the strategy that actually executed when the plan
	// routes internally — the tiered plan sets it to the chosen tier
	// ("vm", "fusion", ...). Empty means the plan's own strategy ran,
	// so observers should fall back to the plan label.
	Resolved string
	// Roots holds every sink's output when the executed network is a
	// multi-root super-network (a merged batch), in the network's
	// Roots() order; Data/Width then mirror Roots[0]. Nil for ordinary
	// single-root executions.
	Roots []Field
}

// Field is one root's output array of a multi-root execution.
type Field struct {
	Data  []float32
	Width int
}

// Strategy executes a dataflow network on a device environment.
type Strategy interface {
	// Name returns the strategy's name as used in the paper.
	Name() string
	// Plan precomputes the strategy's reusable execution plan for the
	// network on the given device class: topological order, kernel
	// sequence or fused program, and the refcount schedule. The plan is
	// immutable and shareable; repeated executions bind and run it
	// without re-planning.
	Plan(net *dataflow.Network, dev *ocl.Device) (Plan, error)
	// Execute runs the network's output computation — Plan followed by
	// Plan.Execute. The environment's profile and peak-memory
	// accounting are reset at entry, so the Result captures exactly
	// this run. All device buffers the strategy allocates are released
	// before it returns, success or failure (with an arena attached,
	// "released" means recycled into the pool).
	Execute(env *ocl.Env, net *dataflow.Network, bind Bindings) (*Result, error)
}

// Variant is implemented by strategies whose configuration changes the
// plans they produce. PlanVariant returns a cache-key-safe name that
// distinguishes the configuration (e.g. "streaming@16" for a 16-tile
// streaming strategy), so differently configured plans never collide in
// the shared plan cache.
type Variant interface {
	PlanVariant() string
}

// PlanCacheName returns the name a strategy's plans cache under: the
// variant name when the strategy declares one, else the plain name.
func PlanCacheName(s Strategy) string {
	if v, ok := s.(Variant); ok {
		return v.PlanVariant()
	}
	return s.Name()
}

// ForName returns the named strategy: the paper's "roundtrip", "staged"
// or "fusion", the future-work "streaming", the host-bytecode "vm", or
// the tiered model "tiered" (optionally "tiered@N" with an explicit
// cell-count threshold).
func ForName(name string) (Strategy, error) {
	switch name {
	case "roundtrip":
		return Roundtrip{}, nil
	case "staged":
		return Staged{}, nil
	case "fusion":
		return Fusion{}, nil
	case "streaming":
		return Streaming{}, nil
	case "vm":
		return VM{}, nil
	case "tiered":
		return Tiered{}, nil
	default:
		if rest, ok := strings.CutPrefix(name, "tiered@"); ok {
			th, err := strconv.Atoi(rest)
			if err != nil || th < 1 {
				return nil, fmt.Errorf("strategy: bad tiered threshold in %q (want tiered@N with N >= 1)", name)
			}
			return Tiered{Threshold: th}, nil
		}
		if rest, ok := strings.CutPrefix(name, "fusion+"); ok {
			spec, err := passes.ParseScheduleSpec(rest)
			if err != nil {
				return nil, fmt.Errorf("strategy: bad schedule in %q: %w", name, err)
			}
			return Fusion{Sched: spec}, nil
		}
		return nil, fmt.Errorf("strategy: unknown strategy %q (want roundtrip, staged, fusion[+schedule], streaming, vm or tiered[@N])", name)
	}
}

// Names lists the paper's three strategies in the paper's order.
func Names() []string { return []string{"roundtrip", "staged", "fusion"} }

// ExtendedNames adds the strategies this reproduction grew beyond the
// paper: the future-work streaming strategy and the host bytecode VM.
func ExtendedNames() []string { return append(Names(), "streaming", "vm") }

// finish collects the run's profile into the result.
func finish(env *ocl.Env, data []float32, width int) *Result {
	return &Result{
		Data:      data,
		Width:     width,
		Profile:   env.Profile(),
		PeakBytes: env.PeakBytes(),
		Events:    env.Queue().Events(),
	}
}

// releaseAll releases every buffer in the map (idempotent).
func releaseAll(bufs map[string]*ocl.Buffer) {
	for _, b := range bufs {
		if b != nil {
			b.Release()
		}
	}
}
