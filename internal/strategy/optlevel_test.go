package strategy

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dfg/internal/dataflow"
	"dfg/internal/expr"
	"dfg/internal/mesh"
	"dfg/internal/passes"
	"dfg/internal/rtsim"
	"dfg/internal/vortex"
)

// Optimisation-level differential harness: the O2 pipeline must be
// observationally identical to the Paper pipeline — same float32 bits
// element for element — under every strategy, because each O2 rewrite
// (constant folding through the kernels' own Fn, identity elimination,
// commuted CSE over bitwise-commutative ops, gradient-axis forwarding)
// preserves the exact operation sequence per element. The only licensed
// divergence is where the Paper result is non-finite: dropping an
// `0 * x` product assumes finite math, so elements whose Paper value is
// Inf or NaN are excluded from the comparison.

// compileAt compiles a program at an explicit optimisation level with
// the pipeline's invariant verification on.
func compileAt(t *testing.T, text string, lvl passes.Level) *dataflow.Network {
	t.Helper()
	net, _, err := expr.CompileWithPipeline(text, nil, passes.ForLevel(lvl), passes.RunOptions{Verify: true})
	if err != nil {
		t.Fatalf("compile at %v: %v\n%s", lvl, err, text)
	}
	return net
}

// optExecutors returns the three paper strategies plus the future-work
// streaming strategy — the four execution paths O2 networks must match
// Paper networks on.
func optExecutors(t *testing.T) map[string]Strategy {
	t.Helper()
	out := map[string]Strategy{}
	for _, name := range Names() {
		s, err := ForName(name)
		if err != nil {
			t.Fatal(err)
		}
		out[name] = s
	}
	out["streaming"] = Streaming{Tiles: 2}
	return out
}

// checkOptLevelProgram executes one program at both levels under every
// strategy and reports the first divergence.
func checkOptLevelProgram(t *testing.T, text string, bind Bindings) {
	t.Helper()
	paper := compileAt(t, text, passes.LevelPaper)
	o2 := compileAt(t, text, passes.LevelO2)
	for name, s := range optExecutors(t) {
		pres, err := s.Execute(cpuEnv(), paper, bind)
		if err != nil {
			t.Fatalf("%s at paper level: %v\n%s", name, err, text)
		}
		ores, err := s.Execute(cpuEnv(), o2, bind)
		if err != nil {
			t.Fatalf("%s at O2: %v\n%s", name, err, text)
		}
		if len(ores.Data) != len(pres.Data) || ores.Width != pres.Width {
			t.Fatalf("%s: O2 shape %dx%d vs paper %dx%d\n%s",
				name, len(ores.Data), ores.Width, len(pres.Data), pres.Width, text)
		}
		for i := range pres.Data {
			if math.IsInf(float64(pres.Data[i]), 0) || math.IsNaN(float64(pres.Data[i])) {
				continue // finite-math rewrites need not match on non-finite elements
			}
			if d := ulpDiff(pres.Data[i], ores.Data[i]); d != 0 {
				t.Fatalf("%s: O2 diverges from paper at element %d: %v vs %v (%d ULP)\nprogram:\n%s",
					name, i, pres.Data[i], ores.Data[i], d, text)
			}
		}
	}
}

// optLevelBindings builds the standard small-mesh bindings the
// opt-level comparisons run on.
func optLevelBindings(seed int64) Bindings {
	m := mesh.MustUniform(mesh.Dims{NX: 6, NY: 5, NZ: 4}, 0.5, 0.4, 0.25)
	f := rtsim.Generate(m, rtsim.Options{Seed: seed})
	bind, err := BindMesh(m, map[string][]float32{"u": f.U, "v": f.V, "w": f.W})
	if err != nil {
		panic(err)
	}
	return bind
}

// TestOptLevelDifferential is the property test: random programs (the
// same generator the cross-strategy harness uses, whose constants land
// on the identity values 0 and 1 often enough to exercise every O2
// rewrite) plus the three paper expressions, all strategies, zero-ULP
// agreement between levels. Seeds are drawn by testing/quick so the
// program space is resampled, not replayed, every run.
func TestOptLevelDifferential(t *testing.T) {
	bind := optLevelBindings(11)
	for _, e := range vortex.Expressions() {
		checkOptLevelProgram(t, e.Text, bind)
	}
	check := func(seed int64) bool {
		text := randProgram(rand.New(rand.NewSource(seed)), []string{"u", "v", "w"})
		checkOptLevelProgram(t, text, bind) // Fatals on divergence
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// FuzzOptLevelDifferential is the fuzz surface over program text: any
// program both pipelines accept must evaluate identically. `go test`
// runs the seed corpus (the paper expressions and an identity-heavy
// program); `go test -fuzz=OptLevel` explores further.
func FuzzOptLevelDifferential(f *testing.F) {
	for _, e := range vortex.Expressions() {
		f.Add(e.Text)
	}
	f.Add("s = u*1 + 0\nr = (1+2)*s + 0*v")
	f.Fuzz(func(t *testing.T, text string) {
		paper, _, err := expr.CompileWithPipeline(text, nil, passes.Paper, passes.RunOptions{Verify: true})
		if err != nil {
			t.Skip() // not a well-formed program
		}
		o2, _, err := expr.CompileWithPipeline(text, nil, passes.O2, passes.RunOptions{Verify: true})
		if err != nil {
			t.Fatalf("paper accepted but O2 rejected: %v\n%s", err, text)
		}
		bind := optLevelBindings(5)
		for _, name := range []string{"f", "dims", "x", "y", "z"} {
			if _, ok := bind.Sources[name]; !ok {
				bind.Sources[name] = bind.Sources["u"]
			}
		}
		for name, s := range optExecutors(t) {
			pres, perr := s.Execute(cpuEnv(), paper, bind)
			ores, oerr := s.Execute(cpuEnv(), o2, bind)
			if (perr != nil) != (oerr != nil) {
				t.Fatalf("%s: paper err %v vs O2 err %v\n%s", name, perr, oerr, text)
			}
			if perr != nil {
				continue // both reject (e.g. unbound sources) — agreed
			}
			for i := range pres.Data {
				if math.IsInf(float64(pres.Data[i]), 0) || math.IsNaN(float64(pres.Data[i])) {
					continue
				}
				if ulpDiff(pres.Data[i], ores.Data[i]) != 0 {
					t.Fatalf("%s: element %d: %v vs %v\n%s", name, i, pres.Data[i], ores.Data[i], text)
				}
			}
		}
	})
}

// TestTableIIUnchangedAtPaperLevel is the reproduction guard for the
// pass pipeline: the default (Paper) compile path must keep producing
// the paper's exact Table II device-event counts, and the O2 pipeline's
// smaller counts are pinned too, so a regression in either direction —
// the reproduction drifting, or the optimiser silently losing a rewrite
// — fails loudly.
func TestTableIIUnchangedAtPaperLevel(t *testing.T) {
	paperWant := map[string]map[string][3]int{
		"VelMag":  {"roundtrip": {11, 6, 6}, "staged": {3, 1, 6}, "fusion": {3, 1, 1}},
		"VortMag": {"roundtrip": {32, 12, 12}, "staged": {7, 1, 18}, "fusion": {7, 1, 1}},
		"Q-Crit":  {"roundtrip": {123, 57, 57}, "staged": {7, 1, 67}, "fusion": {7, 1, 1}},
	}
	// O2 Q-criterion: gradient-axis forwarding replaces the 3 wide
	// grad3d kernels and 9 decomposes with 9 single-axis stencils, and
	// commuted CSE merges the symmetric strain/rotation products:
	// staged drops from 67 to 55 kernel launches. Roundtrip also
	// launches fewer kernels (54 vs 57) but uploads more, because every
	// single-axis stencil bounces all five of its inputs through the
	// host while a shared decompose source bounced only one.
	o2QCrit := map[string][3]int{
		"roundtrip": {135, 54, 54},
		"staged":    {7, 1, 55},
		"fusion":    {7, 1, 1},
	}

	m := mesh.MustUniform(mesh.Dims{NX: 8, NY: 8, NZ: 8}, 1, 1, 1)
	f := rtsim.Generate(m, rtsim.Options{Seed: 1})
	bind, err := BindMesh(m, map[string][]float32{"u": f.U, "v": f.V, "w": f.W})
	if err != nil {
		t.Fatal(err)
	}

	for _, e := range vortex.Expressions() {
		net, err := expr.Compile(e.Text) // the default path IS the Paper pipeline
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		for _, sname := range Names() {
			s, _ := ForName(sname)
			res, err := s.Execute(cpuEnv(), net, bind)
			if err != nil {
				t.Fatalf("%s/%s: %v", e.Name, sname, err)
			}
			w := paperWant[e.Name][sname]
			p := res.Profile
			if p.Writes != w[0] || p.Reads != w[1] || p.Kernels != w[2] {
				t.Errorf("%s/%s at paper level: Dev-W/Dev-R/K-Exe = %d/%d/%d, Table II says %d/%d/%d",
					e.Name, sname, p.Writes, p.Reads, p.Kernels, w[0], w[1], w[2])
			}
		}
	}

	o2 := compileAt(t, vortex.QCritExpr, passes.LevelO2)
	for _, sname := range Names() {
		s, _ := ForName(sname)
		res, err := s.Execute(cpuEnv(), o2, bind)
		if err != nil {
			t.Fatalf("Q-Crit/%s at O2: %v", sname, err)
		}
		w := o2QCrit[sname]
		p := res.Profile
		if p.Writes != w[0] || p.Reads != w[1] || p.Kernels != w[2] {
			t.Errorf("Q-Crit/%s at O2: Dev-W/Dev-R/K-Exe = %d/%d/%d, want %d/%d/%d",
				sname, p.Writes, p.Reads, p.Kernels, w[0], w[1], w[2])
		}
		if sname == "staged" && p.Kernels >= 67 {
			t.Errorf("O2 staged Q-Crit launches %d kernels, must be strictly below the paper's 67", p.Kernels)
		}
	}
}
