package strategy

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"dfg/internal/expr"
	"dfg/internal/mesh"
	"dfg/internal/ocl"
	"dfg/internal/passes"
	"dfg/internal/rtsim"
	"dfg/internal/vortex"
)

// qcritSetup compiles Q-criterion and binds RT data on a mesh.
func qcritSetup(t testing.TB, d mesh.Dims) (Bindings, *mesh.Mesh) {
	t.Helper()
	m := mesh.MustUniform(d, 1.0/float32(d.NX), 1.0/float32(d.NY), 1.0/float32(d.NZ))
	f := rtsim.Generate(m, rtsim.Options{Seed: 17})
	bind, err := BindMesh(m, map[string][]float32{"u": f.U, "v": f.V, "w": f.W})
	if err != nil {
		t.Fatal(err)
	}
	return bind, m
}

func TestStreamingMatchesFusionBitwise(t *testing.T) {
	bind, _ := qcritSetup(t, mesh.Dims{NX: 12, NY: 10, NZ: 16})
	net, err := expr.Compile(vortex.QCritExpr)
	if err != nil {
		t.Fatal(err)
	}
	want, err := (Fusion{}).Execute(cpuEnv(), net, bind)
	if err != nil {
		t.Fatal(err)
	}
	for _, tiles := range []int{1, 2, 3, 4, 7, 16, 100} {
		res, err := (Streaming{Tiles: tiles}).Execute(cpuEnv(), net, bind)
		if err != nil {
			t.Fatalf("tiles=%d: %v", tiles, err)
		}
		for i := range want.Data {
			if res.Data[i] != want.Data[i] {
				t.Fatalf("tiles=%d: cell %d differs: %v vs %v (halo exchange broken?)",
					tiles, i, res.Data[i], want.Data[i])
			}
		}
	}
}

func TestStreamingProfileAndMemory(t *testing.T) {
	bind, _ := qcritSetup(t, mesh.Dims{NX: 16, NY: 16, NZ: 32})
	net, _ := expr.Compile(vortex.QCritExpr)

	fuEnv := cpuEnv()
	fu, err := (Fusion{}).Execute(fuEnv, net, bind)
	if err != nil {
		t.Fatal(err)
	}
	stEnv := cpuEnv()
	st, err := (Streaming{Tiles: 4}).Execute(stEnv, net, bind)
	if err != nil {
		t.Fatal(err)
	}
	if st.Profile.Kernels != 4 {
		t.Fatalf("streaming with 4 tiles should dispatch 4 kernels, got %d", st.Profile.Kernels)
	}
	if st.Profile.Reads != 4 {
		t.Fatalf("streaming reads one slab per tile, got %d", st.Profile.Reads)
	}
	if st.PeakBytes >= fu.PeakBytes {
		t.Fatalf("streaming peak (%d) must undercut fusion peak (%d)", st.PeakBytes, fu.PeakBytes)
	}
	// Streaming re-uploads halos: strictly more transfer bytes.
	if st.Profile.WriteBytes <= fu.Profile.WriteBytes {
		t.Fatalf("streaming must upload halo overlap: %d vs %d", st.Profile.WriteBytes, fu.Profile.WriteBytes)
	}
	if stEnv.Context().LiveBuffers() != 0 {
		t.Fatal("streaming leaked buffers")
	}
}

// TestStreamingRunsWhereFusionFails is the point of the strategy: a
// data set whose fused working set exceeds device memory completes by
// streaming.
func TestStreamingRunsWhereFusionFails(t *testing.T) {
	bind, _ := qcritSetup(t, mesh.Dims{NX: 24, NY: 24, NZ: 64})
	net, _ := expr.Compile(vortex.QCritExpr)

	// Device sized below fusion's inputs+output working set.
	spec := ocl.TeslaM2050Spec(1)
	spec.GlobalMemSize = 9 * int64(bind.N) // < 7 scalar arrays * 4 B
	spec.MaxAllocSize = spec.GlobalMemSize
	dev := ocl.NewDevice(spec)

	if _, err := (Fusion{}).Execute(ocl.NewEnv(dev), net, bind); !errors.Is(err, ocl.ErrOutOfDeviceMemory) {
		t.Fatalf("fusion should run out of device memory, got %v", err)
	}
	res, err := (Streaming{Tiles: 8}).Execute(ocl.NewEnv(dev), net, bind)
	if err != nil {
		t.Fatalf("streaming should fit tile by tile: %v", err)
	}
	want, err := (Fusion{}).Execute(cpuEnv(), net, bind)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Data {
		if res.Data[i] != want.Data[i] {
			t.Fatalf("streamed result differs at %d", i)
		}
	}
}

func TestStreamingFlatElementwise(t *testing.T) {
	// Without stencils, streaming tiles the flat array (no dims needed).
	nw := buildVelMag(t)
	bind, _, _, _ := velMagBindings(rand.New(rand.NewSource(5)), 10000)
	res, err := (Streaming{Tiles: 3}).Execute(cpuEnv(), nw, bind)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := (Fusion{}).Execute(cpuEnv(), nw, bind)
	for i := range want.Data {
		if res.Data[i] != want.Data[i] {
			t.Fatalf("flat streaming differs at %d", i)
		}
	}
	if res.Profile.Kernels != 3 {
		t.Fatalf("want 3 tile kernels, got %d", res.Profile.Kernels)
	}
}

func TestStreamingRequiresDimsForStencils(t *testing.T) {
	bind, _ := qcritSetup(t, mesh.Dims{NX: 8, NY: 8, NZ: 8})
	delete(bind.Sources, "dims")
	net, _ := expr.Compile(vortex.QCritExpr)
	if _, err := (Streaming{}).Execute(cpuEnv(), net, bind); err == nil {
		t.Fatal("stencil streaming without dims must fail")
	}
}

func TestStreamingBadDims(t *testing.T) {
	bind, _ := qcritSetup(t, mesh.Dims{NX: 8, NY: 8, NZ: 8})
	bind.Sources["dims"] = Source{Data: []float32{3, 3, 3, 0}, Width: 1} // 27 != 512
	net, _ := expr.Compile(vortex.QCritExpr)
	if _, err := (Streaming{}).Execute(cpuEnv(), net, bind); err == nil {
		t.Fatal("inconsistent dims must fail")
	}
}

func TestForNameStreaming(t *testing.T) {
	s, err := ForName("streaming")
	if err != nil || s.Name() != "streaming" {
		t.Fatalf("ForName(streaming): %v %v", s, err)
	}
	names := ExtendedNames()
	if len(names) != 5 || names[3] != "streaming" || names[4] != "vm" {
		t.Fatalf("extended names: %v", names)
	}
}

func TestMultiDeviceMatchesFusion(t *testing.T) {
	bind, _ := qcritSetup(t, mesh.Dims{NX: 12, NY: 12, NZ: 20})
	net, _ := expr.Compile(vortex.QCritExpr)
	want, err := (Fusion{}).Execute(cpuEnv(), net, bind)
	if err != nil {
		t.Fatal(err)
	}

	// Two GPUs of one Edge node.
	envs := []*ocl.Env{
		ocl.NewEnv(ocl.NewDevice(ocl.TeslaM2050Spec(64))),
		ocl.NewEnv(ocl.NewDevice(ocl.TeslaM2050Spec(64))),
	}
	res, err := ExecuteMultiDevice(envs, net, bind)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Data {
		if res.Data[i] != want.Data[i] {
			t.Fatalf("multi-device result differs at %d: %v vs %v", i, res.Data[i], want.Data[i])
		}
	}
	// Each device ran exactly one fused kernel over its slab.
	for i, env := range envs {
		if p := env.Profile(); p.Kernels != 1 {
			t.Fatalf("device %d dispatched %d kernels, want 1", i, p.Kernels)
		}
		if env.Context().LiveBuffers() != 0 {
			t.Fatalf("device %d leaked buffers", i)
		}
	}
	// Each device holds roughly half the data: peak under fusion's.
	single, _ := (Fusion{}).Execute(cpuEnv(), net, bind)
	if res.PeakBytes >= single.PeakBytes {
		t.Fatalf("per-device peak %d should undercut single-device %d", res.PeakBytes, single.PeakBytes)
	}
}

func TestMultiDeviceValidation(t *testing.T) {
	bind, _ := qcritSetup(t, mesh.Dims{NX: 8, NY: 8, NZ: 8})
	net, _ := expr.Compile(vortex.QCritExpr)
	if _, err := ExecuteMultiDevice(nil, net, bind); err == nil {
		t.Fatal("zero devices must fail")
	}
	envs := []*ocl.Env{cpuEnv()}
	if _, err := ExecuteMultiDevice(envs, net, Bindings{N: 0}); err == nil {
		t.Fatal("bad bindings must fail")
	}
}

func TestStagedKeepIntermediatesAblation(t *testing.T) {
	bind, _ := qcritSetup(t, mesh.Dims{NX: 12, NY: 12, NZ: 12})
	net, _ := expr.Compile(vortex.QCritExpr)

	eager, err := (Staged{}).Execute(cpuEnv(), net, bind)
	if err != nil {
		t.Fatal(err)
	}
	env := cpuEnv()
	hoard, err := (Staged{KeepIntermediates: true}).Execute(env, net, bind)
	if err != nil {
		t.Fatal(err)
	}
	// Identical numerics, strictly worse memory.
	for i := range eager.Data {
		if eager.Data[i] != hoard.Data[i] {
			t.Fatalf("ablation changed results at %d", i)
		}
	}
	if hoard.PeakBytes <= eager.PeakBytes {
		t.Fatalf("without refcount frees the peak must grow: %d vs %d", hoard.PeakBytes, eager.PeakBytes)
	}
	if env.Context().LiveBuffers() != 0 {
		t.Fatal("ablation run must still clean up at exit")
	}
}

func TestFusionProgramCache(t *testing.T) {
	net, err := expr.Compile(vortex.VelMagExpr)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := fusionProgram(net, passes.ScheduleSpec{})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := fusionProgram(net, passes.ScheduleSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("repeated executions of one network must reuse the generated program")
	}
	// A different network gets its own program.
	net2, _ := expr.Compile(vortex.VelMagExpr)
	p3, err := fusionProgram(net2, passes.ScheduleSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if p3 == p1 {
		t.Fatal("distinct networks must not share cache entries")
	}
}

// TestStreamingPropertyRandomGeometry: streaming equals fusion bitwise
// for random mesh shapes, tile counts and seeds.
func TestStreamingPropertyRandomGeometry(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := mesh.Dims{NX: 2 + rng.Intn(9), NY: 2 + rng.Intn(9), NZ: 1 + rng.Intn(24)}
		m := mesh.MustUniform(d, 0.1, 0.1, 0.1)
		fld := rtsim.Generate(m, rtsim.Options{Seed: seed})
		bind, err := BindMesh(m, map[string][]float32{"u": fld.U, "v": fld.V, "w": fld.W})
		if err != nil {
			return false
		}
		net, err := expr.Compile(vortex.VortMagExpr)
		if err != nil {
			return false
		}
		want, err := (Fusion{}).Execute(cpuEnv(), net, bind)
		if err != nil {
			return false
		}
		tiles := 1 + rng.Intn(d.NZ+3) // may exceed NZ: clamps
		got, err := (Streaming{Tiles: tiles}).Execute(cpuEnv(), net, bind)
		if err != nil {
			t.Logf("seed %d dims %v tiles %d: %v", seed, d, tiles, err)
			return false
		}
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Logf("seed %d dims %v tiles %d: cell %d differs", seed, d, tiles, i)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
