package strategy

import (
	"fmt"
	"testing"

	"dfg/internal/expr"
	"dfg/internal/mesh"
	"dfg/internal/ocl"
	"dfg/internal/vortex"
)

// FuzzFaultPlanNoLeak drives every strategy through arbitrary seeded
// fault schedules and asserts the no-leak invariant: whatever faults
// fire — typed errors on any operation, injected panics mid-plan,
// whole-device loss — after the execution resolves and the arena
// drains, the context holds zero live buffers and zero used bytes.
//
// The fuzz input decodes to a FaultPlan: each 3-byte chunk becomes one
// rule (operation stream, deterministic 0-based index, effect), and the
// seed additionally arms a probabilistic any-operation rule so long
// executions keep faulting past the decoded schedule.
func FuzzFaultPlanNoLeak(f *testing.F) {
	f.Add(int64(1), []byte{0, 0, 0})           // first alloc errors
	f.Add(int64(2), []byte{3, 2, 0})           // third kernel errors
	f.Add(int64(3), []byte{3, 1, 1})           // second kernel loses the device
	f.Add(int64(4), []byte{1, 0, 2})           // first write panics
	f.Add(int64(5), []byte{2, 4, 0, 0, 1, 1})  // read error + alloc device-loss
	f.Add(int64(6), []byte{4, 3, 2, 3, 0, 0})  // any-op panic + kernel error
	f.Add(int64(7), []byte{})                  // probabilistic-only schedule
	f.Add(int64(8), []byte{0, 9, 0, 0, 10, 0}) // deep alloc sweep
	f.Fuzz(func(t *testing.T, seed int64, schedule []byte) {
		bind, _ := qcritSetup(t, mesh.Dims{NX: 6, NY: 6, NZ: 8})
		net, err := expr.Compile(vortex.QCritExpr)
		if err != nil {
			t.Fatal(err)
		}
		for _, sname := range ExtendedNames() {
			s, _ := ForName(sname)
			env := pooledEnv()
			ctx := env.Context()
			// Each strategy replays the same schedule from the start: the
			// plan's per-stream counters are part of FaultPlan state, so a
			// fresh copy keeps runs independent and deterministic.
			ctx.SetFaultPlan(decodeFaultPlan(seed, schedule))

			execute := func() (err error) {
				defer func() {
					if r := recover(); r != nil {
						err = fmt.Errorf("panic: %v", r)
					}
				}()
				p, err := s.Plan(net, env.Device())
				if err != nil {
					return err
				}
				_, err = p.Execute(env, bind)
				return err
			}
			// Run a few times so warm-path reuse and resident sources are
			// also exercised under the schedule; errors (including injected
			// panics) are expected and ignored — only leaks fail the fuzz.
			for i := 0; i < 3; i++ {
				_ = execute()
				ctx.Heal() // a lost device must not mask a leak check
			}
			ctx.Pool().Drain()
			if live, used := ctx.LiveBuffers(), ctx.Used(); live != 0 || used != 0 {
				t.Fatalf("%s: leak under schedule seed=%d %v: %d live buffers, %d bytes used",
					sname, seed, schedule, live, used)
			}
		}
	})
}

// decodeFaultPlan turns fuzz bytes into a fault schedule: chunks of
// (op, nth, effect) plus one seeded low-probability any-operation error
// rule.
func decodeFaultPlan(seed int64, schedule []byte) *ocl.FaultPlan {
	p := ocl.NewFaultPlan(seed)
	for i := 0; i+2 < len(schedule); i += 3 {
		op := ocl.FaultOp(schedule[i] % 5) // alloc, write, read, kernel, any
		nth := int(schedule[i+1] % 24)
		effect := ocl.FaultEffect(schedule[i+2] % 3)
		p.Add(ocl.FaultRule{Op: op, Nth: nth, Effect: effect})
	}
	p.Add(ocl.FaultRule{Op: ocl.FaultAny, Nth: -1, Prob: 0.02, Times: -1})
	return p
}
