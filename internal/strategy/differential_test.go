package strategy

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"dfg/internal/expr"
	"dfg/internal/kernels"
	"dfg/internal/mesh"
)

// Cross-strategy differential harness: generate random well-formed
// expression programs (reusing the internal/expr AST builders), compile
// each once, execute it under roundtrip, staged and fusion on identical
// inputs, and require element-wise agreement within 1 ULP. The three
// strategies compute the same dataflow network through entirely
// different data-movement and kernel-composition paths, so any
// divergence beyond float reassociation is a real bug. This harness is
// what locks the strategies' observable behavior together while the
// engine/cache layers around them are restructured.

// diffOps and diffCalls are the primitive surface the generator draws
// from — all three operand classes: elementwise binaries, comparisons
// feeding select, and unary/transcendental calls.
var (
	diffOps   = []string{"+", "-", "*", "/"}
	diffCmps  = []string{">", "<", ">=", "<=", "==", "!="}
	diffCalls = []string{"sqrt", "abs", "exp", "sin", "cos", "log"}
)

// randExpr builds a random expression tree over the named scalar sources
// using the expr package's AST node types.
func randExpr(rng *rand.Rand, depth int, sources []string) expr.Node {
	if depth <= 0 {
		if rng.Intn(3) == 0 {
			return &expr.Num{Value: float64(rng.Intn(17)) / 4}
		}
		return &expr.Ref{Name: sources[rng.Intn(len(sources))]}
	}
	switch rng.Intn(10) {
	case 0:
		return &expr.Unary{Op: "-", X: randExpr(rng, depth-1, sources)}
	case 1:
		fun := diffCalls[rng.Intn(len(diffCalls))]
		arg := randExpr(rng, depth-1, sources)
		if fun == "sqrt" || fun == "log" {
			// Keep domains positive so NaN patterns stay trivial.
			arg = &expr.Call{Fun: "abs", Args: []expr.Node{arg}}
		}
		return &expr.Call{Fun: fun, Args: []expr.Node{arg}}
	case 2:
		return &expr.Call{Fun: []string{"min", "max", "pow"}[rng.Intn(3)], Args: []expr.Node{
			randExpr(rng, depth-1, sources),
			&expr.Num{Value: float64(rng.Intn(3) + 1)},
		}}
	case 3:
		// Conditional: comparisons produce 0/1, select picks per element.
		return &expr.If{
			Cond: &expr.Binary{
				Op: diffCmps[rng.Intn(len(diffCmps))],
				L:  randExpr(rng, depth-1, sources),
				R:  randExpr(rng, depth-1, sources),
			},
			Then: randExpr(rng, depth-1, sources),
			Else: randExpr(rng, depth-1, sources),
		}
	case 4:
		// Gradient chain: stencil + decompose, the primitives with the
		// most divergent per-strategy handling (host bounce vs device
		// intermediate vs fused scratch pass).
		return &expr.Index{
			Base: &expr.Call{Fun: "grad3d", Args: []expr.Node{
				&expr.Ref{Name: sources[rng.Intn(len(sources))]},
				&expr.Ref{Name: "dims"}, &expr.Ref{Name: "x"}, &expr.Ref{Name: "y"}, &expr.Ref{Name: "z"},
			}},
			Comp: rng.Intn(3),
		}
	case 5:
		return &expr.Call{Fun: "norm", Args: []expr.Node{
			&expr.Call{Fun: "grad3d", Args: []expr.Node{
				&expr.Ref{Name: sources[rng.Intn(len(sources))]},
				&expr.Ref{Name: "dims"}, &expr.Ref{Name: "x"}, &expr.Ref{Name: "y"}, &expr.Ref{Name: "z"},
			}},
		}}
	default:
		return &expr.Binary{
			Op: diffOps[rng.Intn(len(diffOps))],
			L:  randExpr(rng, depth-1, sources),
			R:  randExpr(rng, depth-1, sources),
		}
	}
}

// randProgram renders a 1–3 statement program where later statements may
// reference earlier assignments.
func randProgram(rng *rand.Rand, sources []string) string {
	p := &expr.Program{}
	avail := append([]string{}, sources...)
	stmts := 1 + rng.Intn(3)
	for i := 0; i < stmts; i++ {
		name := fmt.Sprintf("s%d", i)
		p.Stmts = append(p.Stmts, &expr.Stmt{Name: name, X: randExpr(rng, 2+rng.Intn(2), avail)})
		avail = append(avail, name)
	}
	return p.String()
}

// ulpDiff returns the distance in float32 representation steps, treating
// equal bit patterns (and NaN vs NaN, same-signed Inf) as 0.
func ulpDiff(a, b float32) uint32 {
	if a == b {
		return 0
	}
	an, bn := math.IsNaN(float64(a)), math.IsNaN(float64(b))
	if an || bn {
		if an && bn {
			return 0
		}
		return math.MaxUint32
	}
	ab, bb := math.Float32bits(a), math.Float32bits(b)
	// Map to a monotone ordering of the float line.
	order := func(u uint32) int64 {
		if u&0x8000_0000 != 0 {
			return -int64(u & 0x7fff_ffff)
		}
		return int64(u)
	}
	d := order(ab) - order(bb)
	if d < 0 {
		d = -d
	}
	if d > math.MaxUint32 {
		return math.MaxUint32
	}
	return uint32(d)
}

// TestDifferentialRandomExpressions is the property harness: ~50 random
// programs, three strategies, element-wise agreement within 1 ULP (the
// documented tolerance for fusion's float reassociation).
func TestDifferentialRandomExpressions(t *testing.T) {
	m := mesh.MustUniform(mesh.Dims{NX: 6, NY: 5, NZ: 4}, 0.5, 0.4, 0.25)
	n := m.Cells()
	rng := rand.New(rand.NewSource(20260805))
	fields := map[string][]float32{}
	for _, name := range []string{"u", "v", "w"} {
		f := make([]float32, n)
		for i := range f {
			f[i] = rng.Float32()*4 - 2
		}
		fields[name] = f
	}
	x, y, z := m.CellCenterFields()
	bind := Bindings{N: n, Sources: map[string]Source{
		"dims": {Data: kernels.DimsArray(m.Dims.NX, m.Dims.NY, m.Dims.NZ), Width: 1},
		"x":    {Data: x, Width: 1},
		"y":    {Data: y, Width: 1},
		"z":    {Data: z, Width: 1},
	}}
	for name, data := range fields {
		bind.Sources[name] = Source{Data: data, Width: 1}
	}

	const trials = 50
	const maxULP = 1
	compiled := 0
	for trial := 0; trial < trials; trial++ {
		text := randProgram(rand.New(rand.NewSource(int64(trial))), []string{"u", "v", "w"})
		net, err := expr.Compile(text)
		if err != nil {
			t.Fatalf("trial %d: generated program failed to compile: %v\n%s", trial, err, text)
		}
		compiled++

		results := make(map[string][]float32, len(Names()))
		for _, name := range Names() {
			s, err := ForName(name)
			if err != nil {
				t.Fatal(err)
			}
			env := cpuEnv()
			res, err := s.Execute(env, net, bind)
			if err != nil {
				t.Fatalf("trial %d %s: %v\n%s", trial, name, err, text)
			}
			if len(res.Data) != n*res.Width {
				t.Fatalf("trial %d %s: shape %d x %d for n=%d", trial, name, len(res.Data), res.Width, n)
			}
			if env.Context().LiveBuffers() != 0 {
				t.Fatalf("trial %d %s: leaked %d buffers", trial, name, env.Context().LiveBuffers())
			}
			results[name] = res.Data
		}

		ref := results["roundtrip"]
		for _, name := range []string{"staged", "fusion"} {
			got := results[name]
			if len(got) != len(ref) {
				t.Fatalf("trial %d: %s width differs from roundtrip", trial, name)
			}
			for i := range ref {
				if d := ulpDiff(ref[i], got[i]); d > maxULP {
					t.Fatalf("trial %d: roundtrip and %s disagree at element %d: %v vs %v (%d ULP)\nprogram:\n%s",
						trial, name, i, ref[i], got[i], d, text)
				}
			}
		}

		// The host VM holds a stronger bound than the device strategies'
		// shared 1-ULP tolerance: it executes the fused kernel's exact
		// instruction plan, so it must match fusion at zero ULP on every
		// element, non-finite included.
		env := cpuEnv()
		vres, err := VM{}.Execute(env, net, bind)
		if err != nil {
			t.Fatalf("trial %d vm: %v\n%s", trial, err, text)
		}
		if vres.Profile.Kernels != 0 || vres.Profile.Writes != 0 || vres.Profile.Reads != 0 {
			t.Fatalf("trial %d vm: device events %+v, want none", trial, vres.Profile)
		}
		if env.Context().LiveBuffers() != 0 {
			t.Fatalf("trial %d vm: leaked %d buffers", trial, env.Context().LiveBuffers())
		}
		fref := results["fusion"]
		if len(vres.Data) != len(fref) {
			t.Fatalf("trial %d: vm shape %d differs from fusion %d", trial, len(vres.Data), len(fref))
		}
		for i := range fref {
			if d := ulpDiff(fref[i], vres.Data[i]); d != 0 {
				t.Fatalf("trial %d: vm diverges from fusion at element %d: %v vs %v (%d ULP)\nprogram:\n%s",
					trial, i, fref[i], vres.Data[i], d, text)
			}
		}
	}
	if compiled != trials {
		t.Fatalf("generator produced %d/%d compilable programs", compiled, trials)
	}
}

// TestDifferentialWithDefinitions runs the same three-way comparison
// through the definition-expansion path, ensuring expanded programs
// behave identically under every strategy too.
func TestDifferentialWithDefinitions(t *testing.T) {
	defs := map[string]string{
		"vmag2": "u*u + v*v + w*w",
		"speed": "sqrt(vmag2)",
	}
	exprs := []string{
		"r = speed + 1",
		"r = vmag2 / (speed + 0.5)",
		"r = if (speed > 2) then (vmag2) else (-vmag2)",
	}
	const n = 600
	rng := rand.New(rand.NewSource(7))
	bind, _, _, _ := velMagBindings(rng, n)
	for _, text := range exprs {
		net, err := expr.CompileWithDefinitions(text, defs)
		if err != nil {
			t.Fatalf("%s: %v", text, err)
		}
		var ref []float32
		for _, name := range Names() {
			s, _ := ForName(name)
			res, err := s.Execute(cpuEnv(), net, bind)
			if err != nil {
				t.Fatalf("%s under %s: %v", text, name, err)
			}
			if ref == nil {
				ref = res.Data
				continue
			}
			for i := range ref {
				if d := ulpDiff(ref[i], res.Data[i]); d > 1 {
					t.Fatalf("%s: %s diverges at %d: %v vs %v", text, name, i, ref[i], res.Data[i])
				}
			}
		}
	}
}

// TestUlpDiff sanity-checks the comparison metric itself.
func TestUlpDiff(t *testing.T) {
	if ulpDiff(1, 1) != 0 {
		t.Error("equal values")
	}
	if ulpDiff(float32(math.NaN()), float32(math.NaN())) != 0 {
		t.Error("NaN vs NaN must count as agreement")
	}
	if ulpDiff(1, float32(math.NaN())) != math.MaxUint32 {
		t.Error("NaN vs number must be maximal")
	}
	one := float32(1)
	next := math.Float32frombits(math.Float32bits(one) + 1)
	if ulpDiff(one, next) != 1 {
		t.Errorf("adjacent floats must be 1 ULP apart, got %d", ulpDiff(one, next))
	}
	if ulpDiff(-0, 0) != 0 {
		t.Error("signed zeros are equal")
	}
	if d := ulpDiff(-1e-38, 1e-38); d < 2 {
		t.Errorf("sign-crossing distance must span both sides, got %d", d)
	}
}
