package strategy

import (
	"math"
	"math/rand"
	"testing"

	"dfg/internal/expr"
	"dfg/internal/mesh"
	"dfg/internal/rtsim"
	"dfg/internal/vortex"
)

// TestExtensionExpressionsAgree validates the extension expressions
// (enstrophy, divergence, helicity) under every strategy against their
// golden implementations on RT data.
func TestExtensionExpressionsAgree(t *testing.T) {
	m := mesh.MustUniform(mesh.Dims{NX: 14, NY: 12, NZ: 10}, 1.0/14, 1.0/12, 1.0/10)
	f := rtsim.Generate(m, rtsim.Options{Seed: 23})
	bind, err := BindMesh(m, map[string][]float32{"u": f.U, "v": f.V, "w": f.W})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		text string
		want []float32
		tol  float64
	}{
		{"enstrophy", vortex.EnstrophyExpr, vortex.Enstrophy(f.U, f.V, f.W, m), 2e-2},
		{"divergence", vortex.DivergenceExpr, vortex.Divergence(f.U, f.V, f.W, m), 1e-3},
		{"helicity", vortex.HelicityExpr, vortex.Helicity(f.U, f.V, f.W, m), 1e-2},
	}
	for _, tc := range cases {
		net, err := expr.Compile(tc.text)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		for _, sname := range ExtendedNames() {
			s, _ := ForName(sname)
			res, err := s.Execute(cpuEnv(), net, bind)
			if err != nil {
				t.Fatalf("%s/%s: %v", tc.name, sname, err)
			}
			for i := range tc.want {
				if d := math.Abs(float64(res.Data[i] - tc.want[i])); d > tc.tol {
					t.Fatalf("%s/%s: cell %d: %v vs golden %v", tc.name, sname, i, res.Data[i], tc.want[i])
				}
			}
		}
	}
}

// TestDivergenceOfTaylorGreenNearZero is a physics check: the
// Taylor–Green component of the synthetic field is divergence-free, so
// with plumes and shear switched off, the measured divergence of the
// interior must be small relative to the velocity gradients.
func TestDivergenceOfTaylorGreenNearZero(t *testing.T) {
	m := mesh.MustUniform(mesh.Dims{NX: 32, NY: 32, NZ: 32}, 1.0/32, 1.0/32, 1.0/32)
	f := rtsim.Generate(m, rtsim.Options{
		Seed: 3, PlumeStrength: 1e-9, ShearStrength: 1e-9, VortexStrength: 1,
	})
	div := vortex.Divergence(f.U, f.V, f.W, m)
	vort := vortex.VorticityMagnitude(f.U, f.V, f.W, m)

	// Compare interior magnitudes (the stencil is second order inside,
	// first order at the boundary).
	d := m.Dims
	var maxDiv, maxVort float64
	for k := 2; k < d.NZ-2; k++ {
		for j := 2; j < d.NY-2; j++ {
			for i := 2; i < d.NX-2; i++ {
				idx := d.Index(i, j, k)
				if a := math.Abs(float64(div[idx])); a > maxDiv {
					maxDiv = a
				}
				if a := math.Abs(float64(vort[idx])); a > maxVort {
					maxVort = a
				}
			}
		}
	}
	if maxVort < 1 {
		t.Fatalf("Taylor-Green field should have O(2pi) vorticity, got %v", maxVort)
	}
	if maxDiv > 0.05*maxVort {
		t.Fatalf("interior divergence %v should be tiny next to vorticity %v", maxDiv, maxVort)
	}
}

// TestTranscendentalPrimitives validates exp/log/sin/cos/pow across all
// strategies against direct math computation.
func TestTranscendentalPrimitives(t *testing.T) {
	const n = 500
	rng := rand.New(rand.NewSource(77))
	u := make([]float32, n)
	v := make([]float32, n)
	for i := 0; i < n; i++ {
		u[i] = rng.Float32()*2 + 0.1 // positive for log
		v[i] = rng.Float32() * 3
	}
	bind := Bindings{N: n, Sources: map[string]Source{
		"u": {Data: u, Width: 1},
		"v": {Data: v, Width: 1},
	}}
	net, err := expr.Compile("a = exp(sin(u)) + log(u) * cos(v)\nb = pow(u, v)\nout = a + b")
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, n)
	for i := 0; i < n; i++ {
		fu, fv := float64(u[i]), float64(v[i])
		a := float32(math.Exp(float64(float32(math.Sin(fu))))) +
			float32(math.Log(fu))*float32(math.Cos(fv))
		b := float32(math.Pow(fu, fv))
		want[i] = float64(a + b)
	}
	for _, sname := range ExtendedNames() {
		s, _ := ForName(sname)
		res, err := s.Execute(cpuEnv(), net, bind)
		if err != nil {
			t.Fatalf("%s: %v", sname, err)
		}
		for i := 0; i < n; i++ {
			if d := math.Abs(float64(res.Data[i]) - want[i]); d > 1e-3*(1+math.Abs(want[i])) {
				t.Fatalf("%s: cell %d: %v vs %v", sname, i, res.Data[i], want[i])
			}
		}
	}
}
