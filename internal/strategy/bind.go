package strategy

import (
	"fmt"
	"sync"
	"sync/atomic"

	"dfg/internal/kernels"
	"dfg/internal/mesh"
)

// meshDerived caches the arrays BindMesh derives from a mesh: the dims
// array and the three problem-sized cell-center coordinate fields.
type meshDerived struct {
	dims, x, y, z []float32
}

// meshDerivedCache memoizes derived coordinate arrays per *mesh.Mesh,
// so repeated evaluations over one mesh (the in-situ pattern: one mesh,
// many timesteps) stop paying O(cells) setup per call. Meshes must not
// be mutated after their first BindMesh — the same immutability
// contract sealed networks already carry.
//
// The cache is keyed by pointer identity and bounded: a host juggling
// more than meshCacheLimit live meshes wholesale-resets it (derived
// arrays are recomputable; a reset only costs the next call's setup).
var (
	meshDerivedCache sync.Map // *mesh.Mesh -> *meshDerived
	meshCacheSize    atomic.Int64
)

const meshCacheLimit = 64

// derivedFor returns the mesh's memoized derived arrays, computing them
// on first use.
func derivedFor(m *mesh.Mesh) *meshDerived {
	if v, ok := meshDerivedCache.Load(m); ok {
		return v.(*meshDerived)
	}
	x, y, z := m.CellCenterFields()
	d := &meshDerived{
		dims: kernels.DimsArray(m.Dims.NX, m.Dims.NY, m.Dims.NZ),
		x:    x, y: y, z: z,
	}
	if _, loaded := meshDerivedCache.LoadOrStore(m, d); !loaded {
		if meshCacheSize.Add(1) > meshCacheLimit {
			meshDerivedCache.Range(func(k, _ any) bool {
				meshDerivedCache.Delete(k)
				return true
			})
			meshCacheSize.Store(0)
			meshDerivedCache.Store(m, d)
			meshCacheSize.Add(1)
		}
	}
	return d
}

// BindMesh builds the bindings for an expression over cell-centered
// fields on a mesh: the caller's field arrays plus the mesh-derived
// sources the gradient primitive consumes — dims and the per-cell
// center coordinate arrays x, y, z. This mirrors what the host
// application (VisIt, in the paper) hands the framework for each
// sub-grid. Caller-provided entries win on name collisions.
//
// The derived arrays are memoized per mesh (see meshDerivedCache), so
// repeated binds over one mesh share the same backing arrays — which
// also lets arena-backed executions recognize them as unchanged and
// keep them device-resident.
func BindMesh(m *mesh.Mesh, fields map[string][]float32) (Bindings, error) {
	if err := m.Validate(); err != nil {
		return Bindings{}, err
	}
	n := m.Cells()
	d := derivedFor(m)
	b := Bindings{
		N: n,
		Sources: map[string]Source{
			"dims": {Data: d.dims, Width: 1},
			"x":    {Data: d.x, Width: 1},
			"y":    {Data: d.y, Width: 1},
			"z":    {Data: d.z, Width: 1},
		},
	}
	for name, data := range fields {
		if len(data) != n {
			return Bindings{}, fmt.Errorf("strategy: field %q has %d values for a %d-cell mesh", name, len(data), n)
		}
		b.Sources[name] = Source{Data: data, Width: 1}
	}
	return b, nil
}
