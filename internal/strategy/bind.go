package strategy

import (
	"fmt"

	"dfg/internal/kernels"
	"dfg/internal/mesh"
)

// BindMesh builds the bindings for an expression over cell-centered
// fields on a mesh: the caller's field arrays plus the mesh-derived
// sources the gradient primitive consumes — dims and the per-cell
// center coordinate arrays x, y, z. This mirrors what the host
// application (VisIt, in the paper) hands the framework for each
// sub-grid. Caller-provided entries win on name collisions.
func BindMesh(m *mesh.Mesh, fields map[string][]float32) (Bindings, error) {
	if err := m.Validate(); err != nil {
		return Bindings{}, err
	}
	n := m.Cells()
	x, y, z := m.CellCenterFields()
	b := Bindings{
		N: n,
		Sources: map[string]Source{
			"dims": {Data: kernels.DimsArray(m.Dims.NX, m.Dims.NY, m.Dims.NZ), Width: 1},
			"x":    {Data: x, Width: 1},
			"y":    {Data: y, Width: 1},
			"z":    {Data: z, Width: 1},
		},
	}
	for name, data := range fields {
		if len(data) != n {
			return Bindings{}, fmt.Errorf("strategy: field %q has %d values for a %d-cell mesh", name, len(data), n)
		}
		b.Sources[name] = Source{Data: data, Width: 1}
	}
	return b, nil
}
