package strategy

import (
	"fmt"

	"dfg/internal/dataflow"
	"dfg/internal/ocl"
)

// DefaultVMThreshold is the tiered strategy's default cutover: requests
// strictly below this many cells run on the host VM, the rest on the
// device strategy. It matches the simulated device's inline-execution
// grain — at or below it a kernel launch runs single-goroutine anyway,
// so the device adds transfer and event overhead without adding
// parallelism.
const DefaultVMThreshold = 4096

// Tiered is the tiered execution model: each execution picks the host
// VM for small requests (N strictly below Threshold) and the configured
// Device strategy otherwise. The choice is per-binding and made inside
// one immutable plan, so a prepared expression serves any mesh size and
// the decision is stable across repeated Prepare calls by construction
// (both tiers' plans come from the shared caches).
type Tiered struct {
	// Threshold is the cell-count cutover; 0 means DefaultVMThreshold.
	Threshold int
	// Device is the at-or-above-threshold strategy; nil means Fusion.
	Device Strategy
}

// Name returns "tiered".
func (Tiered) Name() string { return "tiered" }

// threshold returns the configured cutover with the default applied.
func (t Tiered) threshold() int {
	if t.Threshold < 1 {
		return DefaultVMThreshold
	}
	return t.Threshold
}

// device returns the configured device strategy with the default
// applied.
func (t Tiered) device() Strategy {
	if t.Device == nil {
		return Fusion{}
	}
	return t.Device
}

// PlanVariant distinguishes tiered configurations in the plan cache:
// "tiered@N" with the default fusion device tier, "tiered@N+name"
// otherwise.
func (t Tiered) PlanVariant() string {
	if _, isFusion := t.device().(Fusion); isFusion {
		return fmt.Sprintf("tiered@%d", t.threshold())
	}
	return fmt.Sprintf("tiered@%d+%s", t.threshold(), PlanCacheName(t.device()))
}

// tieredPlan pins both tiers' plans; Execute picks per binding.
type tieredPlan struct {
	planBase
	threshold int
	vm        Plan
	dev       Plan
}

// Plan plans both tiers (each through its own cache path).
func (t Tiered) Plan(net *dataflow.Network, dev *ocl.Device) (Plan, error) {
	base, err := newPlanBase("tiered", net)
	if err != nil {
		return nil, err
	}
	vmPlan, err := VM{}.Plan(net, dev)
	if err != nil {
		return nil, err
	}
	devPlan, err := t.device().Plan(net, dev)
	if err != nil {
		return nil, err
	}
	return &tieredPlan{planBase: base, threshold: t.threshold(), vm: vmPlan, dev: devPlan}, nil
}

// Execute routes the binding to its tier.
func (s Tiered) Execute(env *ocl.Env, net *dataflow.Network, bind Bindings) (*Result, error) {
	return executeViaPlan(s, env, net, bind)
}

// Execute routes the binding to its tier: VM strictly below the
// threshold, the device strategy at or above it. The result's Resolved
// field names the tier that ran, so metrics and the perf database can
// attribute the evaluation to the real execution path instead of the
// opaque "tiered" label.
func (p *tieredPlan) Execute(env *ocl.Env, bind Bindings) (*Result, error) {
	tier := p.dev
	if bind.N > 0 && bind.N < p.threshold {
		tier = p.vm
	}
	res, err := tier.Execute(env, bind)
	if err == nil && res.Resolved == "" {
		res.Resolved = tier.Strategy()
	}
	return res, err
}
