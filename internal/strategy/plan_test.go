package strategy

import (
	"sync"
	"testing"

	"dfg/internal/expr"
	"dfg/internal/mesh"
	"dfg/internal/ocl"
	"dfg/internal/vortex"
)

// pooledEnv builds a CPU environment with its context's buffer arena
// attached — the prepared warm path the engine uses.
func pooledEnv() *ocl.Env {
	env := cpuEnv()
	env.SetPool(env.Context().Pool())
	return env
}

// sameFloats compares two slices bitwise (by value; the test data has
// no NaNs).
func sameFloats(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestPlanWarmPathZeroAllocations: for every strategy, a plan executed
// repeatedly on an arena-backed environment allocates device buffers
// only on the cold run — warm runs recycle everything from the pool —
// and every warm output is bitwise identical to the cold one. The
// resident-source strategies (staged, fusion, streaming) additionally
// record zero host-to-device transfers warm, since their unchanged
// sources stay device-resident.
func TestPlanWarmPathZeroAllocations(t *testing.T) {
	bind, _ := qcritSetup(t, mesh.Dims{NX: 10, NY: 10, NZ: 12})
	net, err := expr.Compile(vortex.QCritExpr)
	if err != nil {
		t.Fatal(err)
	}
	for _, sname := range ExtendedNames() {
		s, _ := ForName(sname)
		env := pooledEnv()
		plan, err := s.Plan(net, env.Device())
		if err != nil {
			t.Fatalf("%s: Plan: %v", sname, err)
		}
		if got := plan.Strategy(); got != sname {
			t.Fatalf("plan.Strategy() = %q, want %q", got, sname)
		}
		if env.Context().Allocations() != 0 {
			t.Fatalf("%s: planning touched device memory (%d allocations)",
				sname, env.Context().Allocations())
		}

		cold, err := plan.Execute(env, bind)
		if err != nil {
			t.Fatalf("%s: cold execute: %v", sname, err)
		}
		coldAllocs := env.Context().Allocations()
		if sname == "vm" {
			// The host VM's defining property is the inverse: even the cold
			// run allocates no device memory.
			if coldAllocs != 0 {
				t.Fatalf("vm: cold run made %d device allocations, want 0", coldAllocs)
			}
		} else if coldAllocs == 0 {
			t.Fatalf("%s: cold run allocated nothing", sname)
		}

		for i := 0; i < 3; i++ {
			warm, err := plan.Execute(env, bind)
			if err != nil {
				t.Fatalf("%s: warm execute %d: %v", sname, i, err)
			}
			if !sameFloats(cold.Data, warm.Data) {
				t.Fatalf("%s: warm run %d diverged from cold output", sname, i)
			}
			if sname != "roundtrip" && warm.Profile.Writes != 0 {
				t.Fatalf("%s: warm run %d uploaded %d buffers, want 0 (sources should be resident)",
					sname, i, warm.Profile.Writes)
			}
		}
		if got := env.Context().Allocations(); got != coldAllocs {
			t.Fatalf("%s: warm runs allocated %d fresh device buffers", sname, got-coldAllocs)
		}
	}
}

// TestArenaNoStaleData: recycled arena buffers must never leak one
// execution's data into the next. Evaluating input set B on an arena
// warmed by input set A must match a fresh, unpooled evaluation of B
// exactly.
func TestArenaNoStaleData(t *testing.T) {
	d := mesh.Dims{NX: 10, NY: 10, NZ: 12}
	bindA, m := qcritSetup(t, d)

	// Second input set: perturb the velocity fields.
	fieldsB := map[string][]float32{}
	for _, name := range []string{"u", "v", "w"} {
		src := bindA.Sources[name].Data
		mod := make([]float32, len(src))
		for i, v := range src {
			mod[i] = v*1.5 + 0.25
		}
		fieldsB[name] = mod
	}
	bindB, err := BindMesh(m, fieldsB)
	if err != nil {
		t.Fatal(err)
	}

	net, err := expr.Compile(vortex.QCritExpr)
	if err != nil {
		t.Fatal(err)
	}
	for _, sname := range ExtendedNames() {
		s, _ := ForName(sname)

		// Reference: fresh unpooled environment evaluates B alone.
		ref := cpuEnv()
		want, err := s.Execute(ref, net, bindB)
		if err != nil {
			t.Fatalf("%s: reference run: %v", sname, err)
		}

		// Pooled environment warmed on A, then evaluating B.
		env := pooledEnv()
		plan, err := s.Plan(net, env.Device())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := plan.Execute(env, bindA); err != nil {
			t.Fatalf("%s: warmup on A: %v", sname, err)
		}
		got, err := plan.Execute(env, bindB)
		if err != nil {
			t.Fatalf("%s: pooled run on B: %v", sname, err)
		}
		if !sameFloats(want.Data, got.Data) {
			t.Fatalf("%s: pooled evaluation of changed inputs diverged from a fresh environment (stale arena data?)", sname)
		}
	}
}

// TestArenaDrainRestoresBaseline: pooled and resident buffers keep the
// context's live-buffer count elevated between executions (that is the
// point of the pool); Drain must return it — and the used-byte
// accounting — to zero.
func TestArenaDrainRestoresBaseline(t *testing.T) {
	bind, _ := qcritSetup(t, mesh.Dims{NX: 8, NY: 8, NZ: 8})
	net, err := expr.Compile(vortex.QCritExpr)
	if err != nil {
		t.Fatal(err)
	}
	for _, sname := range ExtendedNames() {
		s, _ := ForName(sname)
		env := pooledEnv()
		plan, err := s.Plan(net, env.Device())
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2; i++ {
			if _, err := plan.Execute(env, bind); err != nil {
				t.Fatalf("%s: execute %d: %v", sname, i, err)
			}
		}
		if sname == "vm" {
			// The host VM allocates no device buffers at all — its pooling
			// happens in host scratch (internal/vm), asserted by the vm
			// package's own tests and the warm-path gates.
			if live := env.Context().LiveBuffers(); live != 0 {
				t.Fatalf("vm: %d device buffers live, want 0 by construction", live)
			}
			continue
		}
		if env.Context().LiveBuffers() == 0 {
			t.Fatalf("%s: expected pooled buffers to stay live between executions", sname)
		}
		env.Pool().Drain()
		if live := env.Context().LiveBuffers(); live != 0 {
			t.Fatalf("%s: %d buffers still live after Drain", sname, live)
		}
		if used := env.Context().Used(); used != 0 {
			t.Fatalf("%s: %d bytes still allocated after Drain", sname, used)
		}
	}
}

// TestPlanSharedAcrossGoroutines: a single plan is immutable and may be
// executed concurrently by many environments (the serve pool shares
// plans through the compiler cache). Run under -race in CI.
func TestPlanSharedAcrossGoroutines(t *testing.T) {
	bind, _ := qcritSetup(t, mesh.Dims{NX: 8, NY: 8, NZ: 10})
	net, err := expr.Compile(vortex.QCritExpr)
	if err != nil {
		t.Fatal(err)
	}
	for _, sname := range ExtendedNames() {
		s, _ := ForName(sname)
		ref := cpuEnv()
		want, err := s.Execute(ref, net, bind)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := s.Plan(net, cpuEnv().Device())
		if err != nil {
			t.Fatal(err)
		}

		const workers = 4
		var wg sync.WaitGroup
		errs := make([]error, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				env := pooledEnv()
				for i := 0; i < 3; i++ {
					res, err := plan.Execute(env, bind)
					if err != nil {
						errs[w] = err
						return
					}
					if !sameFloats(want.Data, res.Data) {
						errs[w] = errDiverged
						return
					}
				}
			}(w)
		}
		wg.Wait()
		for w, err := range errs {
			if err != nil {
				t.Fatalf("%s: worker %d: %v", sname, w, err)
			}
		}
	}
}

// errDiverged marks a concurrent execution whose output differed from
// the single-threaded reference.
var errDiverged = &divergedError{}

type divergedError struct{}

func (*divergedError) Error() string { return "concurrent execution diverged from reference output" }
