package strategy

import (
	"fmt"
	"sync"

	"dfg/internal/codegen"
	"dfg/internal/dataflow"
	"dfg/internal/ocl"
	"dfg/internal/passes"
)

// progCache memoizes generated programs per (network, schedule), so
// pipelines that re-execute the same expression every time step (the
// host-application pattern) pay for kernel generation once per schedule
// variant. Networks must not be mutated after their first execution —
// the expression front end never does.
var progCache sync.Map // progKey -> *codegen.Program

type progKey struct {
	net *dataflow.Network
	tag string // canonical ScheduleSpec string; "flat" for the flat body
}

// fusionProgram returns the network's fused program under the given
// schedule, generating it on first use.
func fusionProgram(net *dataflow.Network, spec passes.ScheduleSpec) (*codegen.Program, error) {
	key := progKey{net: net, tag: spec.String()}
	if p, ok := progCache.Load(key); ok {
		return p.(*codegen.Program), nil
	}
	var (
		prog *codegen.Program
		err  error
	)
	if spec.IsFlat() {
		prog, err = codegen.Fuse(net, "expr")
	} else {
		var sched *passes.Schedule
		if sched, err = passes.ComputeSchedule(net, spec); err == nil {
			prog, err = codegen.FuseScheduled(net, "expr", sched)
		}
	}
	if err != nil {
		return nil, err
	}
	actual, _ := progCache.LoadOrStore(key, prog)
	return actual.(*codegen.Program), nil
}

// Fusion is the paper's fastest execution strategy: the dynamic kernel
// generator (internal/codegen) fuses the entire network into a single
// generated OpenCL kernel. Intermediate results live in device
// registers, constants are compiled into the kernel source, decompose
// becomes vector component selection, and the gradient primitive reads
// its source arrays directly from global memory. One upload per distinct
// source, one kernel dispatch, one download — the Table II row
// (Dev-W = sources, Dev-R = 1, K-Exe = 1) for every expression.
//
// When a stencil consumes a computed value the generator splits the
// fused kernel into barrier-separated passes with a global scratch
// array; this remains a single dispatch but costs one extra
// problem-sized buffer (the paper's Figure 2 fusion column).
//
// With a buffer arena attached, warm executions of an unchanged source
// set reduce to the kernel dispatch and the one download: sources stay
// device-resident and the output/scratch buffers recycle from the pool.
//
// Sched selects a schedule transformation for the generated kernel
// (tiling with local-memory staging, register blocking, vectorized
// loads, temporal blocking). The zero spec keeps the flat paper kernel;
// every scheduled variant is bitwise identical to it — only the emitted
// source and the modeled memory traffic change.
type Fusion struct {
	Sched passes.ScheduleSpec
}

// Name returns "fusion".
func (Fusion) Name() string { return "fusion" }

// PlanVariant distinguishes scheduled fusion variants in plan-cache
// keys: the flat schedule keeps the bare strategy name (so existing
// cache keys are unchanged), every other spec appends its canonical
// tag. Same fingerprint + different schedule therefore never alias.
func (s Fusion) PlanVariant() string {
	if s.Sched.IsFlat() {
		return "fusion"
	}
	return "fusion+" + s.Sched.CacheTag()
}

// fusionPlan holds the fused program — kernel generation is the
// planning step.
type fusionPlan struct {
	planBase
	prog *codegen.Program
}

// Plan generates (or reuses) the network's fused kernel program.
func (s Fusion) Plan(net *dataflow.Network, _ *ocl.Device) (Plan, error) {
	base, err := newPlanBase("fusion", net)
	if err != nil {
		return nil, err
	}
	prog, err := fusionProgram(net, s.Sched)
	if err != nil {
		return nil, err
	}
	return &fusionPlan{planBase: base, prog: prog}, nil
}

// Execute generates and runs the fused kernel.
func (s Fusion) Execute(env *ocl.Env, net *dataflow.Network, bind Bindings) (*Result, error) {
	return executeViaPlan(s, env, net, bind)
}

// Execute runs the fused kernel.
func (p *fusionPlan) Execute(env *ocl.Env, bind Bindings) (*Result, error) {
	// Generation happened at plan time, on the host; every event from
	// here on is device activity.
	if err := beginRun(env, bind); err != nil {
		return nil, err
	}
	n := bind.N
	prog := p.prog

	bufs := make([]*ocl.Buffer, len(prog.Args))
	named := make(map[string]*ocl.Buffer, len(prog.Args))
	defer releaseAll(named)

	var outBufs []*ocl.Buffer // one per root, in Roots() order
	for i, a := range prog.Args {
		switch a.Kind {
		case codegen.ArgSource:
			src, err := bind.source(a.Name)
			if err != nil {
				return nil, err
			}
			b, _, err := env.UploadResident(a.Name, a.Name, src.Data, src.Width)
			if err != nil {
				return nil, fmt.Errorf("fusion: source %q: %w", a.Name, err)
			}
			bufs[i], named[a.Name] = b, b
		case codegen.ArgScratch:
			b, err := env.NewBuffer(a.Name, n, a.Width)
			if err != nil {
				return nil, fmt.Errorf("fusion: scratch %q: %w", a.Name, err)
			}
			bufs[i], named[a.Name] = b, b
		case codegen.ArgOut:
			b, err := env.NewBuffer(a.Name, n, a.Width)
			if err != nil {
				return nil, fmt.Errorf("fusion: output: %w", err)
			}
			outBufs = append(outBufs, b)
			bufs[i], named[a.Name] = b, b
		}
	}

	if err := env.Run(prog.Kernel, n, bufs, nil); err != nil {
		return nil, fmt.Errorf("fusion: %w", err)
	}
	fields := make([]Field, 0, len(outBufs))
	for i, b := range outBufs {
		data, err := env.Download(b)
		if err != nil {
			return nil, err
		}
		fields = append(fields, Field{Data: data, Width: prog.OutWidths[i]})
	}
	res := finish(env, fields[0].Data, fields[0].Width)
	if len(fields) > 1 {
		res.Roots = fields
	}
	return res, nil
}

// GeneratedSource returns the fused OpenCL C source for a network
// without executing it — the inspection hook behind cmd/dfg-fuse.
func GeneratedSource(net *dataflow.Network, name string) (string, error) {
	prog, err := codegen.Fuse(net, name)
	if err != nil {
		return "", err
	}
	return prog.Source, nil
}

// GeneratedSourceScheduled is GeneratedSource for a scheduled variant:
// it lowers the spec against the network and emits the tiled /
// vectorized / temporally blocked source (dfg-fuse -schedule).
func GeneratedSourceScheduled(net *dataflow.Network, name string, spec passes.ScheduleSpec) (string, error) {
	if spec.IsFlat() {
		return GeneratedSource(net, name)
	}
	sched, err := passes.ComputeSchedule(net, spec)
	if err != nil {
		return "", err
	}
	prog, err := codegen.FuseScheduled(net, name, sched)
	if err != nil {
		return "", err
	}
	return prog.Source, nil
}
