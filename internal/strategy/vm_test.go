package strategy

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"dfg/internal/expr"
	"dfg/internal/mesh"
	"dfg/internal/passes"
	"dfg/internal/vortex"
)

// VM differential harness. The host bytecode VM claims bitwise identity
// with the fusion strategy's generated kernel — the evidence that lets
// the tiered planner route small requests to it. These tests pin the
// claim at zero ULP against Paper-level fusion across the paper
// expressions, random programs, mesh sizes and optimisation levels.
// Non-finite reference elements are excluded only when comparing across
// optimisation levels (the O2 finite-math licence, as in the opt-level
// harness); at a fixed level the VM must match fusion on every element.

// checkVMAgainstFusion executes one network under both evaluators and
// requires zero-ULP agreement everywhere.
func checkVMAgainstFusion(t *testing.T, text string, lvl passes.Level, bind Bindings) {
	t.Helper()
	net := compileAt(t, text, lvl)
	fres, err := Fusion{}.Execute(cpuEnv(), net, bind)
	if err != nil {
		t.Fatalf("fusion at %v: %v\n%s", lvl, err, text)
	}
	vres, err := VM{}.Execute(cpuEnv(), net, bind)
	if err != nil {
		t.Fatalf("vm at %v: %v\n%s", lvl, err, text)
	}
	if len(vres.Data) != len(fres.Data) || vres.Width != fres.Width {
		t.Fatalf("vm shape %dx%d vs fusion %dx%d at %v\n%s",
			len(vres.Data), vres.Width, len(fres.Data), fres.Width, lvl, text)
	}
	for i := range fres.Data {
		if d := ulpDiff(fres.Data[i], vres.Data[i]); d != 0 {
			t.Fatalf("vm diverges from fusion at %v, element %d: %v vs %v (%d ULP)\nprogram:\n%s",
				lvl, i, fres.Data[i], vres.Data[i], d, text)
		}
	}
}

// TestVMMatchesFusionAcrossLevelsAndSizes sweeps the paper expressions
// and random programs over multiple mesh sizes (crossing the block-size
// boundary) at both optimisation levels.
func TestVMMatchesFusionAcrossLevelsAndSizes(t *testing.T) {
	for _, dims := range []mesh.Dims{
		{NX: 3, NY: 2, NZ: 2},  // smaller than one register block
		{NX: 8, NY: 8, NZ: 8},  // the headline small-mesh tier
		{NX: 13, NY: 9, NZ: 7}, // odd sizes straddling block boundaries
	} {
		bind, _ := qcritSetup(t, dims)
		for _, lvl := range []passes.Level{passes.LevelPaper, passes.LevelO2} {
			for _, e := range vortex.Expressions() {
				checkVMAgainstFusion(t, e.Text, lvl, bind)
			}
			rng := rand.New(rand.NewSource(int64(dims.NX)*1000 + int64(lvl)))
			for trial := 0; trial < 10; trial++ {
				checkVMAgainstFusion(t, randProgram(rng, []string{"u", "v", "w"}), lvl, bind)
			}
		}
	}
}

// TestVMO2MatchesPaperFusion is the cross-level leg: the VM running an
// O2-optimised network must still agree with Paper-level fusion wherever
// the Paper result is finite — the same licence the O2 pipeline itself
// holds.
func TestVMO2MatchesPaperFusion(t *testing.T) {
	bind := optLevelBindings(23)
	rng := rand.New(rand.NewSource(29))
	progs := []string{vortex.VelMagExpr, vortex.VortMagExpr, vortex.QCritExpr}
	for trial := 0; trial < 15; trial++ {
		progs = append(progs, randProgram(rng, []string{"u", "v", "w"}))
	}
	for _, text := range progs {
		paper := compileAt(t, text, passes.LevelPaper)
		o2 := compileAt(t, text, passes.LevelO2)
		fres, err := Fusion{}.Execute(cpuEnv(), paper, bind)
		if err != nil {
			t.Fatalf("paper fusion: %v\n%s", err, text)
		}
		vres, err := VM{}.Execute(cpuEnv(), o2, bind)
		if err != nil {
			t.Fatalf("O2 vm: %v\n%s", err, text)
		}
		for i := range fres.Data {
			if math.IsInf(float64(fres.Data[i]), 0) || math.IsNaN(float64(fres.Data[i])) {
				continue // finite-math rewrites need not match on non-finite elements
			}
			if d := ulpDiff(fres.Data[i], vres.Data[i]); d != 0 {
				t.Fatalf("O2 vm diverges from paper fusion at element %d: %v vs %v (%d ULP)\nprogram:\n%s",
					i, fres.Data[i], vres.Data[i], d, text)
			}
		}
	}
}

// FuzzVMDifferential is the fuzz surface over program text: any program
// the Paper pipeline accepts must evaluate identically on the VM and on
// fusion — zero ULP at the same level, and zero ULP on finite Paper
// elements for the O2-compiled VM run. This is the harness the vm-smoke
// CI job drives.
func FuzzVMDifferential(f *testing.F) {
	for _, e := range vortex.Expressions() {
		f.Add(e.Text)
	}
	f.Add("s = min(u, v) + max(w, 0.5)\nr = if (s >= 0) then (sqrt(s)) else (-s)")
	f.Add("g = grad3d(u, dims, x, y, z)\nr = norm(g) * g[1]")
	f.Fuzz(func(t *testing.T, text string) {
		paper, _, err := expr.CompileWithPipeline(text, nil, passes.Paper, passes.RunOptions{Verify: true})
		if err != nil {
			t.Skip() // not a well-formed program
		}
		o2, _, err := expr.CompileWithPipeline(text, nil, passes.O2, passes.RunOptions{Verify: true})
		if err != nil {
			t.Fatalf("paper accepted but O2 rejected: %v\n%s", err, text)
		}
		bind := optLevelBindings(5)
		for _, name := range []string{"f", "dims", "x", "y", "z"} {
			if _, ok := bind.Sources[name]; !ok {
				bind.Sources[name] = bind.Sources["u"]
			}
		}
		fres, ferr := Fusion{}.Execute(cpuEnv(), paper, bind)
		vres, verr := VM{}.Execute(cpuEnv(), paper, bind)
		if (ferr != nil) != (verr != nil) {
			t.Fatalf("fusion err %v vs vm err %v\n%s", ferr, verr, text)
		}
		if ferr != nil {
			return // both reject (e.g. unbound sources) — agreed
		}
		for i := range fres.Data {
			if ulpDiff(fres.Data[i], vres.Data[i]) != 0 {
				t.Fatalf("vm diverges at element %d: %v vs %v\n%s", i, fres.Data[i], vres.Data[i], text)
			}
		}
		ores, oerr := VM{}.Execute(cpuEnv(), o2, bind)
		if oerr != nil {
			t.Fatalf("paper vm ran but O2 vm failed: %v\n%s", oerr, text)
		}
		for i := range fres.Data {
			if math.IsInf(float64(fres.Data[i]), 0) || math.IsNaN(float64(fres.Data[i])) {
				continue
			}
			if ulpDiff(fres.Data[i], ores.Data[i]) != 0 {
				t.Fatalf("O2 vm diverges at element %d: %v vs %v\n%s", i, fres.Data[i], ores.Data[i], text)
			}
		}
	})
}

// usedVM reports whether a Result came from the host VM tier: a VM run
// touches the device for nothing, so its profile carries no events.
func usedVM(r *Result) bool {
	return r.Profile.Kernels == 0 && r.Profile.Writes == 0 && r.Profile.Reads == 0
}

// TestTieredThresholdProperty is the tier-selection property: for mesh
// sizes bracketing the threshold, the plan routes strictly-below
// requests to the VM and at-or-above requests to the device strategy —
// and re-planning the same network picks identically.
func TestTieredThresholdProperty(t *testing.T) {
	net, err := expr.Compile(vortex.VelMagExpr)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	for _, th := range []int{2, 64, 1000, DefaultVMThreshold} {
		s := Tiered{Threshold: th}
		env := cpuEnv()
		plan, err := s.Plan(net, env.Device())
		if err != nil {
			t.Fatal(err)
		}
		replan, err := s.Plan(net, env.Device())
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range []int{th - 1, th, th + 1, 1, 2 * th} {
			if n < 1 {
				continue
			}
			bind, _, _, _ := velMagBindings(rng, n)
			res, err := plan.Execute(env, bind)
			if err != nil {
				t.Fatalf("tiered@%d n=%d: %v", th, n, err)
			}
			wantVM := n < th
			if usedVM(res) != wantVM {
				t.Fatalf("tiered@%d n=%d: usedVM=%v, want %v (profile %+v)",
					th, n, usedVM(res), wantVM, res.Profile)
			}
			res2, err := replan.Execute(env, bind)
			if err != nil {
				t.Fatalf("tiered@%d n=%d replan: %v", th, n, err)
			}
			if usedVM(res2) != wantVM {
				t.Fatalf("tiered@%d n=%d: re-planned choice flipped", th, n)
			}
			for i := range res.Data {
				if ulpDiff(res.Data[i], res2.Data[i]) != 0 {
					t.Fatalf("tiered@%d n=%d: re-planned result differs at %d", th, n, i)
				}
			}
		}
		if env.Context().LiveBuffers() != 0 {
			t.Fatalf("tiered@%d leaked %d buffers", th, env.Context().LiveBuffers())
		}
	}
}

// TestTieredDefaultsAndNames pins the tiered/vm naming surface: ForName
// round-trips, the plan-cache variant encodes the threshold, and the
// default threshold applies when none is set.
func TestTieredDefaultsAndNames(t *testing.T) {
	s, err := ForName("vm")
	if err != nil || s.Name() != "vm" {
		t.Fatalf("ForName(vm) = %v, %v", s, err)
	}
	s, err = ForName("tiered")
	if err != nil || s.Name() != "tiered" {
		t.Fatalf("ForName(tiered) = %v, %v", s, err)
	}
	if got := PlanCacheName(s); got != "tiered@4096" {
		t.Fatalf("default tiered variant = %q, want tiered@4096", got)
	}
	s, err = ForName("tiered@128")
	if err != nil {
		t.Fatal(err)
	}
	if got := PlanCacheName(s); got != "tiered@128" {
		t.Fatalf("tiered@128 variant = %q", got)
	}
	if _, err := ForName("tiered@zero"); err == nil {
		t.Fatal("tiered@zero must be rejected")
	}
	if _, err := ForName("tiered@0"); err == nil {
		t.Fatal("tiered@0 must be rejected")
	}
	names := ExtendedNames()
	if names[len(names)-1] != "vm" {
		t.Fatalf("ExtendedNames must include vm, got %v", names)
	}
	if v := (Tiered{Threshold: 7, Device: Streaming{Tiles: 8}}); PlanCacheName(v) != "tiered@7+streaming@8" {
		t.Fatalf("composed variant = %q", PlanCacheName(v))
	}
}

// TestVMCancellation mirrors the device strategies' between-launch
// cancellation: a pre-canceled context stops the VM before it runs.
func TestVMCancellation(t *testing.T) {
	net, err := expr.Compile(vortex.QCritExpr)
	if err != nil {
		t.Fatal(err)
	}
	bind, _ := qcritSetup(t, mesh.Dims{NX: 4, NY: 4, NZ: 4})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	bind.Ctx = ctx
	if _, err := (VM{}.Execute(cpuEnv(), net, bind)); err == nil {
		t.Fatal("canceled context must stop the vm run")
	}
}
