package strategy

import (
	"fmt"
	"sync"

	"dfg/internal/codegen"
	"dfg/internal/dataflow"
	"dfg/internal/ocl"
	"dfg/internal/passes"
)

// ExecuteMultiDevice is the other strategy the paper's future-work
// section proposes: using multiple target devices on a single node (the
// Edge nodes carry two M2050s). The mesh splits into one Z slab per
// device — haloed like streaming tiles so stencils stay exact — and the
// fused kernel runs on all devices concurrently. It is PlanMultiDevice
// followed by MultiPlan.Execute.
//
// The returned Result aggregates every device's profile; PeakBytes is
// the maximum over devices (each device holds only its slab).
func ExecuteMultiDevice(envs []*ocl.Env, net *dataflow.Network, bind Bindings) (*Result, error) {
	p, err := PlanMultiDevice(net)
	if err != nil {
		return nil, err
	}
	return p.Execute(envs, bind)
}

// MultiPlan is the reusable multi-device execution plan: the fused
// program plus the network's topological order (for halo detection).
// Like single-device plans it is immutable and shareable; the slab
// split depends on how many environments Execute receives.
type MultiPlan struct {
	planBase
	prog *codegen.Program
}

// PlanMultiDevice precomputes the multi-device plan for the network.
func PlanMultiDevice(net *dataflow.Network) (*MultiPlan, error) {
	base, err := newPlanBase("multidevice", net)
	if err != nil {
		return nil, err
	}
	prog, err := fusionProgram(net, passes.ScheduleSpec{})
	if err != nil {
		return nil, err
	}
	return &MultiPlan{planBase: base, prog: prog}, nil
}

// Execute runs the plan's fused kernel concurrently, one Z slab per
// environment. Environments with an arena attached keep their slab's
// source windows device-resident across executions.
func (p *MultiPlan) Execute(envs []*ocl.Env, bind Bindings) (*Result, error) {
	if len(envs) == 0 {
		return nil, fmt.Errorf("strategy: multi-device execution needs at least one device")
	}
	geom, err := tileGeometry(p.order, bind)
	if err != nil {
		return nil, err
	}
	for _, env := range envs {
		if err := beginRun(env, bind); err != nil {
			return nil, err
		}
	}
	prog := p.prog
	tiles := tilePlan(geom, len(envs))

	outs := make([][]float32, len(prog.OutWidths))
	for i, w := range prog.OutWidths {
		outs[i] = make([]float32, bind.N*w)
	}
	errs := make([]error, len(tiles))
	var wg sync.WaitGroup
	for i, tr := range tiles {
		wg.Add(1)
		go func(i int, tr tileRange) {
			defer wg.Done()
			errs[i] = runTileOn(envs[i], prog, bind, tr, outs)
		}(i, tr)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("strategy: device %d: %w", i, err)
		}
	}

	res := &Result{Data: outs[0], Width: prog.OutWidth}
	if len(outs) > 1 {
		for i, out := range outs {
			res.Roots = append(res.Roots, Field{Data: out, Width: prog.OutWidths[i]})
		}
	}
	for _, env := range envs {
		res.Profile = res.Profile.Add(env.Profile())
		if p := env.PeakBytes(); p > res.PeakBytes {
			res.PeakBytes = p
		}
		res.Events = append(res.Events, env.Queue().Events()...)
	}
	return res, nil
}

// tileGeom captures the mesh shape and stencil halo for tiling.
type tileGeom struct {
	nx, ny, nz int
	halo       int
	n          int
}

// tileGeometry derives the tiling geometry from the network and
// bindings: stencil networks tile the dims-described mesh with a 1-cell
// halo; pure element-wise networks tile the flat array.
func tileGeometry(order []*dataflow.Node, bind Bindings) (tileGeom, error) {
	g := tileGeom{nx: 1, ny: 1, nz: bind.N, n: bind.N}
	for _, n := range order {
		if n.Info().Class == dataflow.ClassStencil {
			g.halo = 1
		}
	}
	if dims, ok := bind.Sources["dims"]; ok && len(dims.Data) >= 3 {
		g.nx, g.ny, g.nz = int(dims.Data[0]), int(dims.Data[1]), int(dims.Data[2])
		if g.nx*g.ny*g.nz != bind.N {
			return g, fmt.Errorf("strategy: dims %dx%dx%d do not cover %d cells", g.nx, g.ny, g.nz, bind.N)
		}
	} else if g.halo > 0 {
		return g, fmt.Errorf("strategy: stencil network needs a dims binding to tile")
	}
	return g, nil
}

// tilePlan splits the Z axis into count haloed slabs.
func tilePlan(g tileGeom, count int) []tileRange {
	if count > g.nz {
		count = g.nz
	}
	slab := g.nx * g.ny
	out := make([]tileRange, 0, count)
	for t := 0; t < count; t++ {
		zLo := g.nz * t / count
		zHi := g.nz * (t + 1) / count
		gLo := zLo - g.halo
		if gLo < 0 {
			gLo = 0
		}
		gHi := zHi + g.halo
		if gHi > g.nz {
			gHi = g.nz
		}
		out = append(out, tileRange{
			gLo: gLo * slab, tileN: (gHi - gLo) * slab,
			nx: g.nx, ny: g.ny, nzTile: gHi - gLo,
			intLo: (zLo - gLo) * slab, intN: (zHi - zLo) * slab,
			globalIntLo: zLo * slab,
		})
	}
	return out
}

// outOff returns the tile's interior offset in the global output array.
func (tr tileRange) outOff(width int) int { return tr.globalIntLo * width }
