package strategy

import (
	"fmt"

	"dfg/internal/dataflow"
	"dfg/internal/ocl"
)

// Roundtrip is the paper's baseline execution strategy: one kernel
// dispatch per derived-field primitive, with every kernel's inputs
// uploaded fresh from host memory and its result transferred straight
// back. Intermediates live on the host, so the device only ever holds
// one kernel's working set — the least device memory of the three
// strategies, at the cost of maximal bus traffic.
//
// Per the original implementation's accounting (Table II):
//   - every buffer argument of every kernel is a host-to-device write,
//     duplicates included (u*u uploads u twice);
//   - constants are host-filled problem-sized arrays, uploaded at each
//     use like any other input;
//   - decompose runs on the host (intermediates are host-resident
//     anyway), dispatching no kernel and moving no extra data.
//
// With a buffer arena attached the re-uploads keep their Dev-W events
// (that is the strategy's defining traffic pattern) but draw their
// buffers from the pool, so repeated and warm executions allocate no
// fresh device memory.
type Roundtrip struct{}

// Name returns "roundtrip".
func (Roundtrip) Name() string { return "roundtrip" }

// roundtripPlan precomputes the topological order and the kernel for
// each distinct device-dispatched filter.
type roundtripPlan struct {
	planBase
	kernels map[string]*ocl.Kernel
}

// roundtripHostSide marks the filters roundtrip handles without a
// kernel dispatch.
func roundtripHostSide(filter string) bool {
	return filter == "const" || filter == "decompose"
}

// Plan precomputes the roundtrip execution plan for the network.
func (Roundtrip) Plan(net *dataflow.Network, _ *ocl.Device) (Plan, error) {
	base, err := newPlanBase("roundtrip", net)
	if err != nil {
		return nil, err
	}
	ks, err := planKernels(base.order, roundtripHostSide)
	if err != nil {
		return nil, err
	}
	return &roundtripPlan{planBase: base, kernels: ks}, nil
}

// Execute runs the network with per-primitive host round trips.
func (s Roundtrip) Execute(env *ocl.Env, net *dataflow.Network, bind Bindings) (*Result, error) {
	return executeViaPlan(s, env, net, bind)
}

// Execute runs the plan with per-primitive host round trips.
func (p *roundtripPlan) Execute(env *ocl.Env, bind Bindings) (*Result, error) {
	if err := beginRun(env, bind); err != nil {
		return nil, err
	}
	n := bind.N

	// host holds every value as a host array: sources, constants and all
	// computed intermediates.
	host := make(map[string]Source, len(p.order))

	for _, node := range p.order {
		if err := bind.canceled(); err != nil {
			return nil, err
		}
		switch node.Filter {
		case "source":
			src, err := bind.source(node.ID)
			if err != nil {
				return nil, err
			}
			host[node.ID] = src

		case "const":
			// A problem-sized constant array, filled on the host.
			data := make([]float32, n)
			v := float32(node.Value)
			for i := range data {
				data[i] = v
			}
			host[node.ID] = Source{Data: data, Width: 1}

		case "decompose":
			in := host[node.Inputs[0]]
			out := make([]float32, n)
			w := in.Width
			for i := 0; i < n; i++ {
				out[i] = in.Data[i*w+node.Comp]
			}
			host[node.ID] = Source{Data: out, Width: 1}

		default:
			res, err := roundtripKernel(env, p.kernels[node.Filter], node, host, n)
			if err != nil {
				return nil, err
			}
			host[node.ID] = res
		}
	}

	out, ok := host[p.net.Output()]
	if !ok {
		return nil, fmt.Errorf("roundtrip: output %q was never computed", p.net.Output())
	}
	res := finish(env, out.Data, out.Width)
	if p.net.MultiRoot() {
		for _, r := range p.net.Roots() {
			h, ok := host[r]
			if !ok {
				return nil, fmt.Errorf("roundtrip: root %q was never computed", r)
			}
			res.Roots = append(res.Roots, Field{Data: h.Data, Width: h.Width})
		}
	}
	return res, nil
}

// roundtripKernel uploads the node's inputs, runs one kernel, reads the
// result back and releases everything (recycling into the arena when
// one is attached).
func roundtripKernel(env *ocl.Env, k *ocl.Kernel, node *dataflow.Node, host map[string]Source, n int) (res Source, err error) {
	bufs := make([]*ocl.Buffer, 0, len(node.Inputs)+1)
	defer func() {
		for _, b := range bufs {
			b.Release()
		}
	}()

	for _, in := range node.Inputs {
		src, ok := host[in]
		if !ok {
			return Source{}, fmt.Errorf("roundtrip: node %q: input %q not yet computed", node.ID, in)
		}
		b, err := env.Upload(in, src.Data, src.Width)
		if err != nil {
			return Source{}, fmt.Errorf("roundtrip: node %q: %w", node.ID, err)
		}
		bufs = append(bufs, b)
	}

	outBuf, err := env.NewBuffer(node.ID, n, node.Width)
	if err != nil {
		return Source{}, fmt.Errorf("roundtrip: node %q: %w", node.ID, err)
	}
	bufs = append(bufs, outBuf)

	if err := env.Run(k, n, bufs, nil); err != nil {
		return Source{}, fmt.Errorf("roundtrip: node %q: %w", node.ID, err)
	}
	data, err := env.Download(outBuf)
	if err != nil {
		return Source{}, fmt.Errorf("roundtrip: node %q: %w", node.ID, err)
	}
	return Source{Data: data, Width: node.Width}, nil
}
