package strategy

import (
	"fmt"

	"dfg/internal/dataflow"
	"dfg/internal/kernels"
	"dfg/internal/ocl"
)

// A Plan is a strategy's reusable execution plan for one sealed
// network: everything derivable from the network and device class alone
// — topological order, the kernel sequence or fused program, the
// refcount schedule — is computed once at planning time, so repeated
// executions pay only for binding and device work. Plans are immutable
// and safe to share across engines and goroutines; all per-call state
// (bindings, device buffers) lives inside Execute.
//
// The lifecycle is compile -> Plan -> Bind -> Execute: internal/compile
// caches plans keyed by (expression fingerprint, strategy, device
// class), dfg.Engine.Prepare pins one plan and binds it per call, and a
// strategy's classic one-shot Execute is now exactly Plan followed by
// Plan.Execute, so the cold path runs the same code.
type Plan interface {
	// Strategy names the strategy that produced the plan.
	Strategy() string
	// Network returns the planned (sealed) network.
	Network() *dataflow.Network
	// Execute runs the plan against bound sources on an environment.
	// If the environment has a buffer arena attached (ocl.Env.SetPool)
	// the plan's buffers are drawn from the pool and unchanged sources
	// stay device-resident (staged/fusion/streaming skip their
	// re-upload); otherwise behavior — events, allocations, memory
	// high-water mark — is identical to the strategy's one-shot
	// Execute.
	Execute(env *ocl.Env, bind Bindings) (*Result, error)
}

// planBase carries what every plan precomputes.
type planBase struct {
	name  string
	net   *dataflow.Network
	order []*dataflow.Node
}

// Strategy names the planning strategy.
func (p *planBase) Strategy() string { return p.name }

// Network returns the planned network.
func (p *planBase) Network() *dataflow.Network { return p.net }

// newPlanBase validates the network and fixes its topological order —
// the planning work every strategy shares.
func newPlanBase(name string, net *dataflow.Network) (planBase, error) {
	if err := net.Validate(); err != nil {
		return planBase{}, err
	}
	order, err := net.TopoOrder()
	if err != nil {
		return planBase{}, err
	}
	return planBase{name: name, net: net, order: order}, nil
}

// beginRun validates per-call preconditions and resets the
// environment's profiling state, so the Result captures exactly this
// run.
func beginRun(env *ocl.Env, bind Bindings) error {
	if bind.N <= 0 {
		return fmt.Errorf("strategy: global work size must be positive, got %d", bind.N)
	}
	if err := bind.canceled(); err != nil {
		return err
	}
	env.Reset()
	return nil
}

// planKernels resolves each distinct device-dispatched filter's kernel
// once. hostSide filters (handled without a kernel by the strategy) are
// skipped.
func planKernels(order []*dataflow.Node, hostSide func(filter string) bool) (map[string]*ocl.Kernel, error) {
	ks := make(map[string]*ocl.Kernel)
	for _, node := range order {
		if node.Filter == "source" || hostSide(node.Filter) || ks[node.Filter] != nil {
			continue
		}
		k, err := kernels.ForFilter(node.Filter)
		if err != nil {
			return nil, err
		}
		ks[node.Filter] = k
	}
	return ks, nil
}

// executeViaPlan is the shared one-shot path: plan, then execute. Every
// strategy's classic Execute routes through it, so the Table II
// counting tests and the differential harness exercise the
// Plan/Bind/Execute pipeline on every run.
func executeViaPlan(s Strategy, env *ocl.Env, net *dataflow.Network, bind Bindings) (*Result, error) {
	p, err := s.Plan(net, env.Device())
	if err != nil {
		return nil, err
	}
	return p.Execute(env, bind)
}
