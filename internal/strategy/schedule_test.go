package strategy

import (
	"testing"

	"dfg/internal/expr"
	"dfg/internal/passes"
	"dfg/internal/vortex"
)

// scheduleSpecs are the spec strings the differential harnesses sweep:
// each enables a different transformation subset, so tiling, register
// blocking, vectorization and temporal blocking are all exercised both
// alone and combined.
var scheduleSpecs = []string{
	"tile=16x16",
	"vec=4",
	"reg=2",
	"tile=16x16,reg=2,vec=4",
	"tile=8x8,temporal",
	"tile=16x16,reg=2,vec=4,temporal",
}

// mustSchedFusion builds the scheduled fusion strategy for a spec string.
func mustSchedFusion(t testing.TB, spec string) Fusion {
	t.Helper()
	s, err := passes.ParseScheduleSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	return Fusion{Sched: s}
}

// FuzzScheduleDifferential is the schedule layer's bitwise contract,
// fuzzed over program text: any program the Paper pipeline accepts must
// evaluate identically — zero ULP — under every scheduled fusion
// variant and the flat paper kernel. This is the harness the
// schedule-smoke CI job drives.
func FuzzScheduleDifferential(f *testing.F) {
	for _, e := range vortex.Expressions() {
		f.Add(e.Text)
	}
	f.Add(vortex.GradMagExpr)
	f.Add("g = grad3d(u*u, dims, x, y, z)\nr = g[0] + norm(g)")
	f.Add("a = sqrt(u*u + v*v)\nr = min(a, abs(w))")
	f.Fuzz(func(t *testing.T, text string) {
		net, _, err := expr.CompileWithPipeline(text, nil, passes.Paper, passes.RunOptions{Verify: true})
		if err != nil {
			t.Skip() // not a well-formed program
		}
		bind := optLevelBindings(5)
		for _, name := range []string{"f", "dims", "x", "y", "z"} {
			if _, ok := bind.Sources[name]; !ok {
				bind.Sources[name] = bind.Sources["u"]
			}
		}
		flat, ferr := Fusion{}.Execute(cpuEnv(), net, bind)
		for _, spec := range scheduleSpecs {
			sres, serr := mustSchedFusion(t, spec).Execute(cpuEnv(), net, bind)
			if (ferr != nil) != (serr != nil) {
				t.Fatalf("flat err %v vs %q err %v\n%s", ferr, spec, serr, text)
			}
			if ferr != nil {
				continue // both reject — agreed
			}
			if len(sres.Data) != len(flat.Data) {
				t.Fatalf("%q output length %d vs flat %d\n%s", spec, len(sres.Data), len(flat.Data), text)
			}
			for i := range flat.Data {
				if ulpDiff(flat.Data[i], sres.Data[i]) != 0 {
					t.Fatalf("schedule %q diverges at element %d: %v vs %v\n%s",
						spec, i, sres.Data[i], flat.Data[i], text)
				}
			}
		}
	})
}

// TestScheduledMatchesAllStrategies is the deterministic cross-strategy
// check: for the paper expressions plus the two-pass gradient
// magnitude, every scheduled fusion variant agrees zero-ULP with all
// six execution strategies (roundtrip, staged, fusion, streaming, vm,
// tiered).
func TestScheduledMatchesAllStrategies(t *testing.T) {
	exprs := append(vortex.Expressions(),
		struct{ Name, Text string }{"GradMag", vortex.GradMagExpr})
	strategies := append(ExtendedNames(), "tiered")
	for _, e := range exprs {
		net, err := expr.Compile(e.Text)
		if err != nil {
			t.Fatal(err)
		}
		bind := optLevelBindings(17)
		ref, err := Fusion{}.Execute(cpuEnv(), net, bind)
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		for _, sname := range strategies {
			s, err := ForName(sname)
			if err != nil {
				t.Fatal(err)
			}
			res, err := s.Execute(cpuEnv(), net, bind)
			if err != nil {
				t.Fatalf("%s/%s: %v", e.Name, sname, err)
			}
			for i := range ref.Data {
				if ulpDiff(ref.Data[i], res.Data[i]) != 0 {
					t.Fatalf("%s: %s diverges from fusion at %d", e.Name, sname, i)
				}
			}
		}
		for _, spec := range scheduleSpecs {
			res, err := mustSchedFusion(t, spec).Execute(cpuEnv(), net, bind)
			if err != nil {
				t.Fatalf("%s/%q: %v", e.Name, spec, err)
			}
			for i := range ref.Data {
				if ulpDiff(ref.Data[i], res.Data[i]) != 0 {
					t.Fatalf("%s: schedule %q diverges at %d: %v vs %v",
						e.Name, spec, i, res.Data[i], ref.Data[i])
				}
			}
		}
	}
}

// TestScheduledForName: the "fusion+<spec>" strategy-name form round-
// trips through ForName and PlanVariant, and bad specs are rejected.
func TestScheduledForName(t *testing.T) {
	s, err := ForName("fusion+tile=16x16,reg=2,vec=4")
	if err != nil {
		t.Fatal(err)
	}
	f, ok := s.(Fusion)
	if !ok || f.Sched.IsFlat() {
		t.Fatalf("ForName gave %#v", s)
	}
	if f.Name() != "fusion" {
		t.Fatalf("scheduled fusion keeps the paper strategy name, got %q", f.Name())
	}
	if got := PlanCacheName(f); got != "fusion+tile=16x16,reg=2,vec=4" {
		t.Fatalf("PlanCacheName = %q", got)
	}
	if got := PlanCacheName(Fusion{}); got != "fusion" {
		t.Fatalf("flat fusion PlanCacheName = %q (must keep historical key)", got)
	}
	if _, err := ForName("fusion+tile=3x3"); err == nil {
		t.Fatal("out-of-range tile must be rejected")
	}
	if _, err := ForName("fusion+bogus"); err == nil {
		t.Fatal("unknown schedule term must be rejected")
	}
	// "fusion+flat" canonicalises to the flat strategy.
	s2, err := ForName("fusion+flat")
	if err != nil {
		t.Fatal(err)
	}
	if got := PlanCacheName(s2); got != "fusion" {
		t.Fatalf("fusion+flat PlanCacheName = %q", got)
	}
}

// TestScheduledProgramCached: the program cache keys on (network,
// schedule): the same network under two specs yields two programs; the
// same spec twice yields the identical cached pointer.
func TestScheduledProgramCached(t *testing.T) {
	net, err := expr.Compile(vortex.QCritExpr)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := passes.ParseScheduleSpec("tile=16x16,reg=2,vec=4")
	if err != nil {
		t.Fatal(err)
	}
	a, err := fusionProgram(net, spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := fusionProgram(net, spec)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("same (network, schedule) must hit the program cache")
	}
	flat, err := fusionProgram(net, passes.ScheduleSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if flat == a {
		t.Fatal("flat and scheduled programs must not alias")
	}
	if flat.Schedule != "" || a.Schedule != "tile=16x16,reg=2,vec=4" {
		t.Fatalf("schedule tags: flat=%q sched=%q", flat.Schedule, a.Schedule)
	}
}
