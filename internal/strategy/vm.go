package strategy

import (
	"fmt"
	"sync"

	"dfg/internal/dataflow"
	"dfg/internal/ocl"
	"dfg/internal/vm"
)

// vmProgCache memoizes compiled bytecode programs per sealed network,
// the same way progCache memoizes fused kernels: repeated executions of
// one expression pay for bytecode compilation once.
var vmProgCache sync.Map // *dataflow.Network -> *vm.Program

// vmProgram returns the network's bytecode program, compiling it on
// first use.
func vmProgram(net *dataflow.Network) (*vm.Program, error) {
	if p, ok := vmProgCache.Load(net); ok {
		return p.(*vm.Program), nil
	}
	prog, err := vm.Compile(net)
	if err != nil {
		return nil, err
	}
	actual, _ := vmProgCache.LoadOrStore(net, prog)
	return actual.(*vm.Program), nil
}

// VM executes the network as a host bytecode program (internal/vm) with
// zero device traffic: no uploads, no kernel launches, no downloads, no
// device buffers. It evaluates the exact instruction plan the fusion
// strategy's generated kernel runs — the differential harness pins the
// two at zero ULP — so it is the profitable tier for meshes small enough
// that launch and transfer overhead dominates, and the terminal rung of
// the degradation ladder: having no device dependency at all, it
// survives a lost device by construction.
//
// A VM run's Result consequently carries an empty device profile
// (Writes = Reads = Kernels = 0), no events and a zero memory high-water
// mark; tests use that signature to detect which tier served a request.
type VM struct{}

// Name returns "vm".
func (VM) Name() string { return "vm" }

// vmPlan holds the compiled bytecode — compilation is the planning step.
type vmPlan struct {
	planBase
	prog *vm.Program
}

// Plan compiles (or reuses) the network's bytecode program. The device
// class is ignored: the plan never touches the device.
func (VM) Plan(net *dataflow.Network, _ *ocl.Device) (Plan, error) {
	base, err := newPlanBase("vm", net)
	if err != nil {
		return nil, err
	}
	prog, err := vmProgram(net)
	if err != nil {
		return nil, err
	}
	return &vmPlan{planBase: base, prog: prog}, nil
}

// Execute compiles and runs the bytecode program.
func (s VM) Execute(env *ocl.Env, net *dataflow.Network, bind Bindings) (*Result, error) {
	return executeViaPlan(s, env, net, bind)
}

// Execute runs the bytecode program on the host. The environment is
// reset as on any other strategy so the (empty) profile captures exactly
// this run.
func (p *vmPlan) Execute(env *ocl.Env, bind Bindings) (*Result, error) {
	if err := beginRun(env, bind); err != nil {
		return nil, err
	}
	src := func(name string) ([]float32, error) {
		s, err := bind.source(name)
		if err != nil {
			return nil, err
		}
		return s.Data, nil
	}
	outs, err := p.prog.RunAll(bind.N, src, bind.canceled)
	if err != nil {
		return nil, fmt.Errorf("vm: %w", err)
	}
	res := finish(env, outs[0], p.prog.OutWidth)
	if len(outs) > 1 {
		for i, out := range outs {
			res.Roots = append(res.Roots, Field{Data: out, Width: p.prog.OutWidths[i]})
		}
	}
	return res, nil
}
