package strategy

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"dfg/internal/dataflow"
	"dfg/internal/kernels"
	"dfg/internal/mesh"
	"dfg/internal/ocl"
	"dfg/internal/vortex"
)

func cpuEnv() *ocl.Env {
	return ocl.NewEnv(ocl.NewDevice(ocl.XeonX5660Spec(64)))
}

// buildVelMag: v_mag = sqrt(u*u + v*v + w*w).
func buildVelMag(t testing.TB) *dataflow.Network {
	t.Helper()
	nw := dataflow.NewNetwork()
	for _, s := range []string{"u", "v", "w"} {
		nw.AddSource(s)
	}
	uu, _ := nw.AddFilter("mul", "u", "u")
	vv, _ := nw.AddFilter("mul", "v", "v")
	ww, _ := nw.AddFilter("mul", "w", "w")
	s1, _ := nw.AddFilter("add", uu, vv)
	s2, _ := nw.AddFilter("add", s1, ww)
	out, _ := nw.AddFilter("sqrt", s2)
	if err := nw.SetOutput(out); err != nil {
		t.Fatal(err)
	}
	return nw
}

// buildGradMag: |grad(f)| via grad3d + decompose, exercising stencil,
// decompose and a constant (out = 0.5 * sqrt(gx^2+gy^2+gz^2) * 2).
func buildGradExpr(t testing.TB) *dataflow.Network {
	t.Helper()
	nw := dataflow.NewNetwork()
	for _, s := range []string{"f", "dims", "x", "y", "z"} {
		nw.AddSource(s)
	}
	g, err := nw.AddFilter("grad3d", "f", "dims", "x", "y", "z")
	if err != nil {
		t.Fatal(err)
	}
	gx, _ := nw.AddDecompose(g, 0)
	gy, _ := nw.AddDecompose(g, 1)
	gz, _ := nw.AddDecompose(g, 2)
	xx, _ := nw.AddFilter("mul", gx, gx)
	yy, _ := nw.AddFilter("mul", gy, gy)
	zz, _ := nw.AddFilter("mul", gz, gz)
	s1, _ := nw.AddFilter("add", xx, yy)
	s2, _ := nw.AddFilter("add", s1, zz)
	rt, _ := nw.AddFilter("sqrt", s2)
	half := nw.AddConst(0.5)
	two := nw.AddConst(2.0)
	hm, _ := nw.AddFilter("mul", half, rt)
	out, _ := nw.AddFilter("mul", two, hm)
	if err := nw.SetOutput(out); err != nil {
		t.Fatal(err)
	}
	return nw
}

func velMagBindings(rng *rand.Rand, n int) (Bindings, []float32, []float32, []float32) {
	mk := func() []float32 {
		f := make([]float32, n)
		for i := range f {
			f[i] = rng.Float32()*4 - 2
		}
		return f
	}
	u, v, w := mk(), mk(), mk()
	return Bindings{
		N: n,
		Sources: map[string]Source{
			"u": {Data: u, Width: 1},
			"v": {Data: v, Width: 1},
			"w": {Data: w, Width: 1},
		},
	}, u, v, w
}

func gradBindings(m *mesh.Mesh, f []float32) Bindings {
	x, y, z := m.CellCenterFields()
	return Bindings{
		N: m.Cells(),
		Sources: map[string]Source{
			"f":    {Data: f, Width: 1},
			"dims": {Data: kernels.DimsArray(m.Dims.NX, m.Dims.NY, m.Dims.NZ), Width: 1},
			"x":    {Data: x, Width: 1},
			"y":    {Data: y, Width: 1},
			"z":    {Data: z, Width: 1},
		},
	}
}

func TestAllStrategiesAgreeOnVelMag(t *testing.T) {
	nw := buildVelMag(t)
	rng := rand.New(rand.NewSource(1))
	const n = 20000
	bind, u, v, w := velMagBindings(rng, n)
	want := vortex.VelocityMagnitude(u, v, w)

	for _, name := range Names() {
		s, err := ForName(name)
		if err != nil {
			t.Fatal(err)
		}
		env := cpuEnv()
		res, err := s.Execute(env, nw, bind)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Width != 1 || len(res.Data) != n {
			t.Fatalf("%s: result shape %d x %d", name, len(res.Data), res.Width)
		}
		for i := 0; i < n; i++ {
			if math.Abs(float64(res.Data[i]-want[i])) > 1e-5 {
				t.Fatalf("%s: velmag[%d] = %v want %v", name, i, res.Data[i], want[i])
			}
		}
		if env.Context().LiveBuffers() != 0 {
			t.Fatalf("%s: leaked %d device buffers", name, env.Context().LiveBuffers())
		}
	}
}

func TestAllStrategiesAgreeOnGradientExpression(t *testing.T) {
	m := mesh.MustUniform(mesh.Dims{NX: 12, NY: 8, NZ: 6}, 0.5, 0.25, 0.75)
	rng := rand.New(rand.NewSource(2))
	f := make([]float32, m.Cells())
	for i := range f {
		f[i] = rng.Float32()
	}
	nw := buildGradExpr(t)
	bind := gradBindings(m, f)

	grad := mesh.Gradient3D(f, m)
	want := make([]float32, m.Cells())
	for i := range want {
		gx, gy, gz := float64(grad[4*i]), float64(grad[4*i+1]), float64(grad[4*i+2])
		want[i] = float32(math.Sqrt(gx*gx + gy*gy + gz*gz))
	}

	for _, name := range Names() {
		s, _ := ForName(name)
		env := cpuEnv()
		res, err := s.Execute(env, nw, bind)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i := range want {
			if math.Abs(float64(res.Data[i]-want[i])) > 1e-4 {
				t.Fatalf("%s: |grad|[%d] = %v want %v", name, i, res.Data[i], want[i])
			}
		}
		if env.Context().LiveBuffers() != 0 {
			t.Fatalf("%s: leaked buffers", name)
		}
	}
}

// TestTableIIVelMagRow pins the paper's Table II velocity-magnitude
// counts exactly: roundtrip 11/6/6, staged 3/1/6, fusion 3/1/1.
func TestTableIIVelMagRow(t *testing.T) {
	nw := buildVelMag(t)
	rng := rand.New(rand.NewSource(3))
	bind, _, _, _ := velMagBindings(rng, 1000)

	want := map[string][3]int{
		"roundtrip": {11, 6, 6},
		"staged":    {3, 1, 6},
		"fusion":    {3, 1, 1},
	}
	for name, counts := range want {
		s, _ := ForName(name)
		res, err := s.Execute(cpuEnv(), nw, bind)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		p := res.Profile
		if p.Writes != counts[0] || p.Reads != counts[1] || p.Kernels != counts[2] {
			t.Errorf("%s: Dev-W/Dev-R/K-Exe = %d/%d/%d, Table II says %d/%d/%d",
				name, p.Writes, p.Reads, p.Kernels, counts[0], counts[1], counts[2])
		}
	}
}

// TestVelMagMemoryShape pins Figure 2/6 behaviour for velocity
// magnitude: roundtrip peaks at 3 problem-sized arrays (inputs+output of
// one mul), staged and fusion at 4 (all inputs + output).
func TestVelMagMemoryShape(t *testing.T) {
	nw := buildVelMag(t)
	rng := rand.New(rand.NewSource(4))
	const n = 10000
	bind, _, _, _ := velMagBindings(rng, n)
	arr := int64(n * 4)

	peaks := map[string]int64{}
	for _, name := range Names() {
		s, _ := ForName(name)
		res, err := s.Execute(cpuEnv(), nw, bind)
		if err != nil {
			t.Fatal(err)
		}
		peaks[name] = res.PeakBytes
	}
	if peaks["roundtrip"] != 3*arr {
		t.Errorf("roundtrip velmag peak = %d, want 3 arrays (%d)", peaks["roundtrip"], 3*arr)
	}
	if peaks["fusion"] != 4*arr {
		t.Errorf("fusion velmag peak = %d, want 4 arrays (%d)", peaks["fusion"], 4*arr)
	}
	if peaks["staged"] != 4*arr {
		t.Errorf("staged velmag peak = %d, want 4 arrays (%d)", peaks["staged"], 4*arr)
	}
	if !(peaks["roundtrip"] < peaks["staged"]) {
		t.Error("roundtrip must use the least memory for velmag (paper Fig. 6)")
	}
}

// TestGradientMemoryShape pins the Figure 6 ordering for
// gradient-based expressions: staged holds whole chains of
// intermediates (largest peak), roundtrip peaks at the gradient
// kernel's working set, fusion at inputs + output only.
func TestGradientMemoryShape(t *testing.T) {
	m := mesh.MustUniform(mesh.Dims{NX: 16, NY: 16, NZ: 8}, 1, 1, 1)
	f := make([]float32, m.Cells())
	for i := range f {
		f[i] = float32(i % 17)
	}
	nw := buildGradExpr(t)
	bind := gradBindings(m, f)
	n := int64(m.Cells() * 4)

	peaks := map[string]int64{}
	for _, name := range Names() {
		s, _ := ForName(name)
		res, err := s.Execute(cpuEnv(), nw, bind)
		if err != nil {
			t.Fatal(err)
		}
		peaks[name] = res.PeakBytes
	}
	// roundtrip peak: grad kernel holds f + dims + x + y + z + float4 out
	// = 4N + 4 small + 4N... f,x,y,z = 4 arrays + out 4N = 8 arrays + dims.
	wantRT := 8*n + 16
	if peaks["roundtrip"] != wantRT {
		t.Errorf("roundtrip peak = %d, want %d (grad kernel working set)", peaks["roundtrip"], wantRT)
	}
	// fusion peak: sources f,x,y,z (4N) + dims + out (N) = 5 arrays + dims.
	wantFU := 5*n + 16
	if peaks["fusion"] != wantFU {
		t.Errorf("fusion peak = %d, want %d (inputs + output)", peaks["fusion"], wantFU)
	}
	if !(peaks["staged"] > peaks["roundtrip"] && peaks["roundtrip"] > peaks["fusion"]) {
		t.Errorf("memory ordering must be staged > roundtrip > fusion, got %v", peaks)
	}
}

// TestStagedFailsOnSmallGPU reproduces the paper's failed GPU test
// cases: on a device too small for staged's intermediates, Execute
// returns an out-of-memory error, releases everything, and the same
// network still runs under roundtrip (the least constrained strategy).
func TestStagedFailsOnSmallGPU(t *testing.T) {
	m := mesh.MustUniform(mesh.Dims{NX: 32, NY: 32, NZ: 16}, 1, 1, 1)
	f := make([]float32, m.Cells())
	nw := buildGradExpr(t)
	bind := gradBindings(m, f)

	// Size the device between roundtrip's peak (8 arrays) and staged's.
	arr := int64(m.Cells() * 4)
	spec := ocl.TeslaM2050Spec(1)
	spec.GlobalMemSize = 9 * arr
	spec.MaxAllocSize = 9 * arr
	dev := ocl.NewDevice(spec)

	env := ocl.NewEnv(dev)
	_, err := (Staged{}).Execute(env, nw, bind)
	if !errors.Is(err, ocl.ErrOutOfDeviceMemory) {
		t.Fatalf("staged on small GPU: want ErrOutOfDeviceMemory, got %v", err)
	}
	if env.Context().LiveBuffers() != 0 {
		t.Fatalf("failed staged run leaked %d buffers", env.Context().LiveBuffers())
	}

	env2 := ocl.NewEnv(dev)
	if _, err := (Roundtrip{}).Execute(env2, nw, bind); err != nil {
		t.Fatalf("roundtrip must fit where staged fails: %v", err)
	}
}

func TestForName(t *testing.T) {
	for _, name := range Names() {
		s, err := ForName(name)
		if err != nil || s.Name() != name {
			t.Fatalf("ForName(%q) = %v, %v", name, s, err)
		}
	}
	if _, err := ForName("warp"); err == nil {
		t.Fatal("unknown strategy must fail")
	}
}

func TestExecuteValidation(t *testing.T) {
	nw := buildVelMag(t)
	rng := rand.New(rand.NewSource(5))
	bind, _, _, _ := velMagBindings(rng, 100)

	for _, name := range Names() {
		s, _ := ForName(name)
		// Zero work size.
		if _, err := s.Execute(cpuEnv(), nw, Bindings{N: 0, Sources: bind.Sources}); err == nil {
			t.Errorf("%s: zero N must fail", name)
		}
		// Missing source binding.
		bad := Bindings{N: 100, Sources: map[string]Source{"u": bind.Sources["u"]}}
		if _, err := s.Execute(cpuEnv(), nw, bad); err == nil {
			t.Errorf("%s: missing binding must fail", name)
		}
		// Network without output.
		empty := dataflow.NewNetwork()
		empty.AddSource("u")
		if _, err := s.Execute(cpuEnv(), empty, bind); err == nil {
			t.Errorf("%s: network without output must fail", name)
		}
	}
}

func TestResultIncludesEventLog(t *testing.T) {
	nw := buildVelMag(t)
	rng := rand.New(rand.NewSource(6))
	bind, _, _, _ := velMagBindings(rng, 256)
	res, err := (Fusion{}).Execute(cpuEnv(), nw, bind)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Events) != res.Profile.Events() {
		t.Fatalf("event log (%d) and profile (%d) disagree", len(res.Events), res.Profile.Events())
	}
	// Fusion event order: 3 writes, 1 kernel, 1 read.
	kinds := []ocl.EventKind{ocl.WriteEvent, ocl.WriteEvent, ocl.WriteEvent, ocl.KernelEvent, ocl.ReadEvent}
	for i, e := range res.Events {
		if e.Kind != kinds[i] {
			t.Fatalf("event %d kind %v, want %v", i, e.Kind, kinds[i])
		}
	}
}

func TestGeneratedSource(t *testing.T) {
	nw := buildVelMag(t)
	src, err := GeneratedSource(nw, "vm")
	if err != nil {
		t.Fatal(err)
	}
	if len(src) == 0 {
		t.Fatal("empty generated source")
	}
	if _, err := GeneratedSource(dataflow.NewNetwork(), "bad"); err == nil {
		t.Fatal("network without output must fail")
	}
}

// TestStrategiesAgreeOnRandomNetworks is the core cross-strategy
// property test: on randomly composed elementwise networks, the three
// strategies produce identical float32 results.
func TestStrategiesAgreeOnRandomNetworks(t *testing.T) {
	elementwise := []string{"add", "sub", "mul", "min", "max"}
	for trial := 0; trial < 25; trial++ {
		rng := rand.New(rand.NewSource(int64(100 + trial)))
		nw := dataflow.NewNetwork()
		ids := []string{}
		for i := 0; i < 3; i++ {
			id, _ := nw.AddSource(string(rune('a' + i)))
			ids = append(ids, id)
		}
		for i := 0; i < 3+rng.Intn(20); i++ {
			switch rng.Intn(5) {
			case 0:
				ids = append(ids, nw.AddConst(float64(rng.Intn(5))-2))
			case 1:
				id, _ := nw.AddFilter("abs", ids[rng.Intn(len(ids))])
				ids = append(ids, id)
			default:
				op := elementwise[rng.Intn(len(elementwise))]
				id, _ := nw.AddFilter(op, ids[rng.Intn(len(ids))], ids[rng.Intn(len(ids))])
				ids = append(ids, id)
			}
		}
		nw.SetOutput(ids[len(ids)-1])
		nw.EliminateCommonSubexpressions()

		const n = 500
		bind, _, _, _ := velMagBindings(rng, n)
		bind.Sources = map[string]Source{
			"a": bind.Sources["u"], "b": bind.Sources["v"], "c": bind.Sources["w"],
		}

		var ref []float32
		for _, name := range Names() {
			s, _ := ForName(name)
			res, err := s.Execute(cpuEnv(), nw, bind)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, name, err)
			}
			if ref == nil {
				ref = res.Data
				continue
			}
			for i := range ref {
				if res.Data[i] != ref[i] && !(math.IsNaN(float64(res.Data[i])) && math.IsNaN(float64(ref[i]))) {
					t.Fatalf("trial %d %s: result[%d] = %v differs from %v", trial, name, i, res.Data[i], ref[i])
				}
			}
		}
	}
}
