package strategy

import (
	"errors"
	"testing"

	"dfg/internal/expr"
	"dfg/internal/mesh"
	"dfg/internal/ocl"
	"dfg/internal/vortex"
)

// TestAllocFailureAtEveryPoint sweeps an injected allocation failure
// across every allocation a strategy performs during a Q-criterion run:
// wherever the device fails, the strategy must surface
// ErrOutOfDeviceMemory (never panic, never succeed spuriously) and
// release every buffer it allocated.
func TestAllocFailureAtEveryPoint(t *testing.T) {
	bind, _ := qcritSetup(t, mesh.Dims{NX: 8, NY: 8, NZ: 8})
	net, err := expr.Compile(vortex.QCritExpr)
	if err != nil {
		t.Fatal(err)
	}

	for _, sname := range ExtendedNames() {
		s, _ := ForName(sname)

		// Count a clean run's allocations first.
		clean := cpuEnv()
		if _, err := s.Execute(clean, net, bind); err != nil {
			t.Fatalf("%s: clean run failed: %v", sname, err)
		}
		total := clean.Context().Allocations()
		if sname == "vm" {
			// The host VM performs no device allocations, so there is
			// nothing to fault: an armed failure must never fire.
			if total != 0 {
				t.Fatalf("vm: run made %d device allocations, want 0", total)
			}
			env := cpuEnv()
			env.Context().InjectAllocFailure(0)
			if _, err := s.Execute(env, net, bind); err != nil {
				t.Fatalf("vm: run failed under armed alloc fault: %v", err)
			}
			continue
		}
		if total == 0 {
			t.Fatalf("%s: no allocations to fault", sname)
		}

		for k := 0; k < total; k++ {
			env := cpuEnv()
			env.Context().InjectAllocFailure(k)
			_, err := s.Execute(env, net, bind)
			if !errors.Is(err, ocl.ErrOutOfDeviceMemory) {
				t.Fatalf("%s: fault at allocation %d/%d: want ErrOutOfDeviceMemory, got %v",
					sname, k, total, err)
			}
			if live := env.Context().LiveBuffers(); live != 0 {
				t.Fatalf("%s: fault at allocation %d/%d leaked %d buffers", sname, k, total, live)
			}
			if used := env.Context().Used(); used != 0 {
				t.Fatalf("%s: fault at allocation %d/%d left %d bytes allocated", sname, k, total, used)
			}
		}

		// After all that, an unfaulted run still works (no poisoned state).
		env := cpuEnv()
		if _, err := s.Execute(env, net, bind); err != nil {
			t.Fatalf("%s: post-fault clean run failed: %v", sname, err)
		}
	}
}

// TestAllocFailurePooledSweep sweeps injected allocation failures
// through the prepared path — plan, bind, execute on an arena-backed
// environment — for every strategy. Planning must touch no device
// memory; wherever execution fails, the typed *ocl.AllocError must
// surface, and draining the arena must release every buffer the run
// (and the pool) held. Finally, a warm run with a fault armed on the
// very next allocation must still succeed, because warm executions
// allocate nothing.
func TestAllocFailurePooledSweep(t *testing.T) {
	bind, _ := qcritSetup(t, mesh.Dims{NX: 8, NY: 8, NZ: 8})
	net, err := expr.Compile(vortex.QCritExpr)
	if err != nil {
		t.Fatal(err)
	}

	for _, sname := range ExtendedNames() {
		s, _ := ForName(sname)

		// Plan phase: planning is host-side only, so an armed fault must
		// not fire and no device memory may move.
		{
			env := pooledEnv()
			env.Context().InjectAllocFailure(0)
			if _, err := s.Plan(net, env.Device()); err != nil {
				t.Fatalf("%s: Plan failed under armed fault: %v", sname, err)
			}
			if env.Context().Allocations() != 0 {
				t.Fatalf("%s: Plan allocated device memory", sname)
			}
		}

		// Count a clean pooled cold run's allocations.
		clean := pooledEnv()
		cleanPlan, err := s.Plan(net, clean.Device())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cleanPlan.Execute(clean, bind); err != nil {
			t.Fatalf("%s: clean pooled run failed: %v", sname, err)
		}
		total := clean.Context().Allocations()
		if sname != "vm" && total == 0 {
			t.Fatalf("%s: no allocations to fault", sname)
		}
		// (For vm, total is 0 by construction: the sweep below is empty
		// and the warm phase doubles as the armed-fault-never-fires
		// check.)

		// Execute phase: sweep the fault across every cold allocation.
		for k := 0; k < total; k++ {
			env := pooledEnv()
			plan, err := s.Plan(net, env.Device())
			if err != nil {
				t.Fatal(err)
			}
			env.Context().InjectAllocFailure(k)
			_, err = plan.Execute(env, bind)
			var ae *ocl.AllocError
			if !errors.As(err, &ae) {
				t.Fatalf("%s: pooled fault at allocation %d/%d: want *ocl.AllocError, got %v",
					sname, k, total, err)
			}
			if !errors.Is(err, ocl.ErrOutOfDeviceMemory) {
				t.Fatalf("%s: pooled fault at allocation %d/%d: error does not wrap ErrOutOfDeviceMemory: %v",
					sname, k, total, err)
			}
			// A failed pooled run may leave recycled buffers idle in the
			// arena — that is the pool working as designed — but draining
			// it must release everything.
			env.Pool().Drain()
			if live := env.Context().LiveBuffers(); live != 0 {
				t.Fatalf("%s: pooled fault at allocation %d/%d leaked %d buffers after Drain",
					sname, k, total, live)
			}
			if used := env.Context().Used(); used != 0 {
				t.Fatalf("%s: pooled fault at allocation %d/%d left %d bytes after Drain",
					sname, k, total, used)
			}
		}

		// Warm phase: after a clean cold run, arm a fault on the next
		// allocation. The warm run draws everything from the arena, so
		// the fault never fires.
		clean.Context().InjectAllocFailure(0)
		if _, err := cleanPlan.Execute(clean, bind); err != nil {
			t.Fatalf("%s: warm run under armed fault failed (allocated fresh memory?): %v", sname, err)
		}
	}
}

// TestMultiDeviceFaultInjection: a failure on one of the two devices
// fails the whole multi-device execution and both devices end clean.
func TestMultiDeviceFaultInjection(t *testing.T) {
	bind, _ := qcritSetup(t, mesh.Dims{NX: 8, NY: 8, NZ: 12})
	net, _ := expr.Compile(vortex.QCritExpr)
	for faulted := 0; faulted < 2; faulted++ {
		envs := []*ocl.Env{
			ocl.NewEnv(ocl.NewDevice(ocl.TeslaM2050Spec(64))),
			ocl.NewEnv(ocl.NewDevice(ocl.TeslaM2050Spec(64))),
		}
		envs[faulted].Context().InjectAllocFailure(2)
		_, err := ExecuteMultiDevice(envs, net, bind)
		if !errors.Is(err, ocl.ErrOutOfDeviceMemory) {
			t.Fatalf("fault on device %d: want ErrOutOfDeviceMemory, got %v", faulted, err)
		}
		for i, env := range envs {
			if env.Context().LiveBuffers() != 0 {
				t.Fatalf("fault on device %d: device %d leaked buffers", faulted, i)
			}
		}
	}
}
