package strategy

import (
	"errors"
	"testing"

	"dfg/internal/expr"
	"dfg/internal/mesh"
	"dfg/internal/ocl"
	"dfg/internal/vortex"
)

// TestAllocFailureAtEveryPoint sweeps an injected allocation failure
// across every allocation a strategy performs during a Q-criterion run:
// wherever the device fails, the strategy must surface
// ErrOutOfDeviceMemory (never panic, never succeed spuriously) and
// release every buffer it allocated.
func TestAllocFailureAtEveryPoint(t *testing.T) {
	bind, _ := qcritSetup(t, mesh.Dims{NX: 8, NY: 8, NZ: 8})
	net, err := expr.Compile(vortex.QCritExpr)
	if err != nil {
		t.Fatal(err)
	}

	for _, sname := range ExtendedNames() {
		s, _ := ForName(sname)

		// Count a clean run's allocations first.
		clean := cpuEnv()
		if _, err := s.Execute(clean, net, bind); err != nil {
			t.Fatalf("%s: clean run failed: %v", sname, err)
		}
		total := clean.Context().Allocations()
		if total == 0 {
			t.Fatalf("%s: no allocations to fault", sname)
		}

		for k := 0; k < total; k++ {
			env := cpuEnv()
			env.Context().InjectAllocFailure(k)
			_, err := s.Execute(env, net, bind)
			if !errors.Is(err, ocl.ErrOutOfDeviceMemory) {
				t.Fatalf("%s: fault at allocation %d/%d: want ErrOutOfDeviceMemory, got %v",
					sname, k, total, err)
			}
			if live := env.Context().LiveBuffers(); live != 0 {
				t.Fatalf("%s: fault at allocation %d/%d leaked %d buffers", sname, k, total, live)
			}
			if used := env.Context().Used(); used != 0 {
				t.Fatalf("%s: fault at allocation %d/%d left %d bytes allocated", sname, k, total, used)
			}
		}

		// After all that, an unfaulted run still works (no poisoned state).
		env := cpuEnv()
		if _, err := s.Execute(env, net, bind); err != nil {
			t.Fatalf("%s: post-fault clean run failed: %v", sname, err)
		}
	}
}

// TestMultiDeviceFaultInjection: a failure on one of the two devices
// fails the whole multi-device execution and both devices end clean.
func TestMultiDeviceFaultInjection(t *testing.T) {
	bind, _ := qcritSetup(t, mesh.Dims{NX: 8, NY: 8, NZ: 12})
	net, _ := expr.Compile(vortex.QCritExpr)
	for faulted := 0; faulted < 2; faulted++ {
		envs := []*ocl.Env{
			ocl.NewEnv(ocl.NewDevice(ocl.TeslaM2050Spec(64))),
			ocl.NewEnv(ocl.NewDevice(ocl.TeslaM2050Spec(64))),
		}
		envs[faulted].Context().InjectAllocFailure(2)
		_, err := ExecuteMultiDevice(envs, net, bind)
		if !errors.Is(err, ocl.ErrOutOfDeviceMemory) {
			t.Fatalf("fault on device %d: want ErrOutOfDeviceMemory, got %v", faulted, err)
		}
		for i, env := range envs {
			if env.Context().LiveBuffers() != 0 {
				t.Fatalf("fault on device %d: device %d leaked buffers", faulted, i)
			}
		}
	}
}
