package strategy

import (
	"context"
	"errors"
	"testing"

	"dfg/internal/expr"
	"dfg/internal/mesh"
	"dfg/internal/vortex"
)

// TestCanceledContextStopsMidPlan verifies every strategy observes
// Bindings.Ctx between kernel launches: an already-canceled context
// stops the run before it completes, the error is the context's, and
// the partial run leaks no device buffers.
func TestCanceledContextStopsMidPlan(t *testing.T) {
	bind, _ := qcritSetup(t, mesh.Dims{NX: 8, NY: 8, NZ: 12})
	net, err := expr.Compile(vortex.QCritExpr)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	bind.Ctx = ctx

	for _, s := range []Strategy{Roundtrip{}, Staged{}, Fusion{}, Streaming{Tiles: 4}} {
		env := cpuEnv()
		res, err := s.Execute(env, net, bind)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: got (%v, %v), want context.Canceled", s.Name(), res, err)
		}
		if live := env.Context().LiveBuffers(); live != 0 {
			t.Fatalf("%s: canceled run leaked %d buffers", s.Name(), live)
		}
	}
}

// TestCancelMidExecution cancels from inside a kernel body, so per-node
// strategies stop at the next launch boundary instead of running the
// plan to completion.
func TestCancelMidExecution(t *testing.T) {
	bind, _ := qcritSetup(t, mesh.Dims{NX: 8, NY: 8, NZ: 12})
	net, err := expr.Compile(vortex.QCritExpr)
	if err != nil {
		t.Fatal(err)
	}

	for _, s := range []Strategy{Roundtrip{}, Staged{}, Streaming{Tiles: 8}} {
		ctx, cancel := context.WithCancel(context.Background())
		b := bind
		b.Ctx = ctx
		env := cpuEnv()
		// Cancel as soon as the queue records its first kernel launch, so
		// the strategy is mid-plan when it next checks the context.
		done := make(chan struct{})
		go func() {
			defer close(done)
			for {
				select {
				case <-ctx.Done():
					return
				default:
				}
				if env.Queue().Profile().Kernels > 0 {
					cancel()
					return
				}
			}
		}()
		res, err := s.Execute(env, net, b)
		cancel()
		<-done
		if err == nil {
			// The run may legitimately win the race and finish; accept but
			// require a complete result.
			if res == nil || len(res.Data) == 0 {
				t.Fatalf("%s: nil error but empty result", s.Name())
			}
		} else if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: got %v, want context.Canceled", s.Name(), err)
		}
		if live := env.Context().LiveBuffers(); live != 0 {
			t.Fatalf("%s: canceled run leaked %d buffers", s.Name(), live)
		}
	}
}

// TestPlanVariantKeysDiffer pins the Variant contract: differently
// configured streaming strategies must cache under different names,
// while unconfigured strategies keep their plain names.
func TestPlanVariantKeysDiffer(t *testing.T) {
	if got := PlanCacheName(Streaming{Tiles: 8}); got != "streaming@8" {
		t.Fatalf("PlanCacheName(Streaming{8}) = %q", got)
	}
	if got := PlanCacheName(Streaming{}); got != "streaming@4" {
		t.Fatalf("PlanCacheName(Streaming{}) = %q (default tiles must normalise to 4)", got)
	}
	if got := PlanCacheName(Fusion{}); got != "fusion" {
		t.Fatalf("PlanCacheName(Fusion{}) = %q", got)
	}
	a := PlanCacheName(Streaming{Tiles: 4})
	b := PlanCacheName(Streaming{Tiles: 16})
	if a == b {
		t.Fatalf("tile variants collide: %q", a)
	}
}
