package strategy

import (
	"math"
	"strings"
	"testing"

	"dfg/internal/expr"
	"dfg/internal/mesh"
	"dfg/internal/rtsim"
)

// IntroExpr is the paper's introduction example, written in this
// framework's expression language (the paper shows VisIt-flavoured
// syntax; grad becomes the explicit grad3d primitive):
//
//	a = if (norm(grad(b)) > 5) then (c * c) else (-c * c)
const IntroExpr = `a = if (norm(grad3d(b,dims,x,y,z)) > 5) then (c * c) else (-c * c)`

// TestIntroductionExample runs the paper's opening example end to end
// under every strategy and checks it against a direct host computation.
func TestIntroductionExample(t *testing.T) {
	m := mesh.MustUniform(mesh.Dims{NX: 16, NY: 12, NZ: 10}, 1.0/16, 1.0/12, 1.0/10)
	f := rtsim.Generate(m, rtsim.Options{Seed: 31})
	bind, err := BindMesh(m, map[string][]float32{"b": f.U, "c": f.V})
	if err != nil {
		t.Fatal(err)
	}

	// Host golden: both branches everywhere, gradient-norm condition.
	grad := mesh.Gradient3D(f.U, m)
	want := make([]float32, m.Cells())
	taken := 0
	for i := range want {
		gx, gy, gz := float64(grad[4*i]), float64(grad[4*i+1]), float64(grad[4*i+2])
		cc := f.V[i] * f.V[i]
		if float32(math.Sqrt(gx*gx+gy*gy+gz*gz)) > 5 {
			want[i] = cc
			taken++
		} else {
			want[i] = -cc
		}
	}
	// The condition must actually split the domain, or the test is weak.
	if taken == 0 || taken == len(want) {
		t.Fatalf("intro example condition is degenerate: %d of %d cells", taken, len(want))
	}

	net, err := expr.Compile(IntroExpr)
	if err != nil {
		t.Fatal(err)
	}
	for _, sname := range ExtendedNames() {
		s, _ := ForName(sname)
		res, err := s.Execute(cpuEnv(), net, bind)
		if err != nil {
			t.Fatalf("%s: %v", sname, err)
		}
		for i := range want {
			if d := math.Abs(float64(res.Data[i] - want[i])); d > 1e-4 {
				t.Fatalf("%s: cell %d: %v vs golden %v", sname, i, res.Data[i], want[i])
			}
		}
	}
}

// TestIntroExampleFusedSource checks the generated kernel uses the
// ternary select and the inline norm rather than extra buffers.
func TestIntroExampleFusedSource(t *testing.T) {
	net, err := expr.Compile(IntroExpr)
	if err != nil {
		t.Fatal(err)
	}
	src, err := GeneratedSource(net, "intro")
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"? 1.0f : 0.0f", "!= 0.0f) ?", "sqrt(", "5.0f"} {
		if !strings.Contains(src, frag) {
			t.Fatalf("fused intro source missing %q:\n%s", frag, src)
		}
	}
}
