package strategy

import (
	"math"
	"testing"

	"dfg/internal/expr"
	"dfg/internal/mesh"
	"dfg/internal/rtsim"
	"dfg/internal/vortex"
)

// TestTableIIExactCounts is the paper's Table II, reproduced verbatim:
// host-to-device transfers (Dev-W), device-to-host transfers (Dev-R) and
// kernel executions (K-Exe) for the three vortex-detection expressions
// under the three execution strategies, from the parsed expression text.
func TestTableIIExactCounts(t *testing.T) {
	want := map[string]map[string][3]int{
		"VelMag": {
			"roundtrip": {11, 6, 6},
			"staged":    {3, 1, 6},
			"fusion":    {3, 1, 1},
		},
		"VortMag": {
			"roundtrip": {32, 12, 12},
			"staged":    {7, 1, 18},
			"fusion":    {7, 1, 1},
		},
		"Q-Crit": {
			"roundtrip": {123, 57, 57},
			"staged":    {7, 1, 67},
			"fusion":    {7, 1, 1},
		},
	}

	m := mesh.MustUniform(mesh.Dims{NX: 8, NY: 8, NZ: 8}, 1, 1, 1)
	f := rtsim.Generate(m, rtsim.Options{Seed: 1})
	bind, err := BindMesh(m, map[string][]float32{"u": f.U, "v": f.V, "w": f.W})
	if err != nil {
		t.Fatal(err)
	}

	for _, e := range vortex.Expressions() {
		net, err := expr.Compile(e.Text)
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		for _, sname := range Names() {
			s, _ := ForName(sname)
			res, err := s.Execute(cpuEnv(), net, bind)
			if err != nil {
				t.Fatalf("%s/%s: %v", e.Name, sname, err)
			}
			w := want[e.Name][sname]
			p := res.Profile
			if p.Writes != w[0] || p.Reads != w[1] || p.Kernels != w[2] {
				t.Errorf("%s/%s: Dev-W/Dev-R/K-Exe = %d/%d/%d, Table II says %d/%d/%d",
					e.Name, sname, p.Writes, p.Reads, p.Kernels, w[0], w[1], w[2])
			}
		}
	}
}

// TestPaperExpressionsNumericallyAgree validates every strategy's output
// for every paper expression against the independent golden
// implementations, on synthetic RT data.
func TestPaperExpressionsNumericallyAgree(t *testing.T) {
	m := mesh.MustUniform(mesh.Dims{NX: 16, NY: 12, NZ: 10}, 1.0/16, 1.0/12, 1.0/10)
	f := rtsim.Generate(m, rtsim.Options{Seed: 7})
	bind, err := BindMesh(m, map[string][]float32{"u": f.U, "v": f.V, "w": f.W})
	if err != nil {
		t.Fatal(err)
	}

	golden := map[string][]float32{
		"VelMag":  vortex.VelocityMagnitude(f.U, f.V, f.W),
		"VortMag": vortex.VorticityMagnitude(f.U, f.V, f.W, m),
		"Q-Crit":  vortex.QCriterion(f.U, f.V, f.W, m),
	}
	// Tolerances: gradient-heavy float32 chains accumulate a few ulps;
	// values are O(1)-O(30) on this mesh.
	tol := map[string]float64{"VelMag": 1e-5, "VortMag": 5e-4, "Q-Crit": 5e-2}

	for _, e := range vortex.Expressions() {
		net, err := expr.Compile(e.Text)
		if err != nil {
			t.Fatal(err)
		}
		want := golden[e.Name]
		for _, sname := range Names() {
			s, _ := ForName(sname)
			res, err := s.Execute(cpuEnv(), net, bind)
			if err != nil {
				t.Fatalf("%s/%s: %v", e.Name, sname, err)
			}
			for i := range want {
				if d := math.Abs(float64(res.Data[i] - want[i])); d > tol[e.Name] {
					t.Fatalf("%s/%s: cell %d: %v vs golden %v (|d|=%g)",
						e.Name, sname, i, res.Data[i], want[i], d)
				}
			}
		}
	}
}

// TestStrategiesBitwiseAgree checks the three strategies agree with each
// other exactly (same float32 operations in the same order per element)
// for the paper expressions.
func TestStrategiesBitwiseAgree(t *testing.T) {
	m := mesh.MustUniform(mesh.Dims{NX: 10, NY: 10, NZ: 8}, 0.1, 0.1, 0.125)
	f := rtsim.Generate(m, rtsim.Options{Seed: 3})
	bind, err := BindMesh(m, map[string][]float32{"u": f.U, "v": f.V, "w": f.W})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range vortex.Expressions() {
		net, _ := expr.Compile(e.Text)
		var ref []float32
		for _, sname := range Names() {
			s, _ := ForName(sname)
			res, err := s.Execute(cpuEnv(), net, bind)
			if err != nil {
				t.Fatalf("%s/%s: %v", e.Name, sname, err)
			}
			if ref == nil {
				ref = res.Data
				continue
			}
			for i := range ref {
				if res.Data[i] != ref[i] {
					t.Fatalf("%s/%s: cell %d differs bitwise: %v vs %v", e.Name, sname, i, res.Data[i], ref[i])
				}
			}
		}
	}
}

func TestBindMeshValidation(t *testing.T) {
	m := mesh.MustUniform(mesh.Dims{NX: 4, NY: 4, NZ: 4}, 1, 1, 1)
	if _, err := BindMesh(m, map[string][]float32{"u": make([]float32, 3)}); err == nil {
		t.Fatal("short field must fail")
	}
	b, err := BindMesh(m, map[string][]float32{"u": make([]float32, 64)})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"u", "dims", "x", "y", "z"} {
		if _, ok := b.Sources[name]; !ok {
			t.Fatalf("binding missing %q", name)
		}
	}
	if b.N != 64 || len(b.Sources["x"].Data) != 64 || len(b.Sources["dims"].Data) != 4 {
		t.Fatalf("binding shapes wrong: %+v", b)
	}
}
