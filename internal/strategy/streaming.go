package strategy

import (
	"fmt"

	"dfg/internal/codegen"
	"dfg/internal/dataflow"
	"dfg/internal/kernels"
	"dfg/internal/ocl"
	"dfg/internal/passes"
)

// Streaming is the execution strategy the paper's future-work section
// proposes ("we plan to investigate the runtime performance of our
// execution strategies in a streaming context"): the mesh is tiled into
// Z slabs, and the fused kernel runs tile by tile, so only a tile's
// working set occupies device memory at a time. Data sets that exceed
// device memory under fusion — the paper's failed GPU cases — complete
// under streaming, at the price of one kernel dispatch per tile and
// re-uploading each tile's halo.
//
// Tiles carrying stencil primitives (grad3d) are grown by one halo layer
// of cells on each Z face (clipped at the domain boundary), so gradients
// are exact everywhere and streaming's output is bitwise identical to
// fusion's.
//
// With a buffer arena attached, each tile's source windows become
// device-resident (keyed by source name and window offset), so warm
// executions over unchanged data skip every tile upload.
type Streaming struct {
	// Tiles is the number of Z slabs (default 4).
	Tiles int
}

// Name returns "streaming".
func (Streaming) Name() string { return "streaming" }

// PlanVariant distinguishes plan-cache entries by slab count, so a
// degradation ladder escalating tile counts never gets a stale plan
// back from the shared cache.
func (s Streaming) PlanVariant() string {
	t := s.Tiles
	if t < 1 {
		t = 4
	}
	return fmt.Sprintf("streaming@%d", t)
}

// streamingPlan holds the fused program plus the slab count; tile
// geometry depends on the bound dims, so it is computed per execution.
type streamingPlan struct {
	planBase
	prog  *codegen.Program
	tiles int
}

// Plan generates the fused program and fixes the slab count.
func (s Streaming) Plan(net *dataflow.Network, _ *ocl.Device) (Plan, error) {
	base, err := newPlanBase("streaming", net)
	if err != nil {
		return nil, err
	}
	prog, err := fusionProgram(net, passes.ScheduleSpec{})
	if err != nil {
		return nil, err
	}
	tiles := s.Tiles
	if tiles < 1 {
		tiles = 4
	}
	return &streamingPlan{planBase: base, prog: prog, tiles: tiles}, nil
}

// Execute runs the fused kernel slab by slab.
func (s Streaming) Execute(env *ocl.Env, net *dataflow.Network, bind Bindings) (*Result, error) {
	return executeViaPlan(s, env, net, bind)
}

// Execute runs the plan's fused kernel slab by slab.
func (p *streamingPlan) Execute(env *ocl.Env, bind Bindings) (*Result, error) {
	geom, err := tileGeometry(p.order, bind)
	if err != nil {
		return nil, err
	}
	if err := beginRun(env, bind); err != nil {
		return nil, err
	}

	outs := make([][]float32, len(p.prog.OutWidths))
	for i, w := range p.prog.OutWidths {
		outs[i] = make([]float32, bind.N*w)
	}
	for t, tr := range tilePlan(geom, p.tiles) {
		if err := bind.canceled(); err != nil {
			return nil, err
		}
		if err := runTileOn(env, p.prog, bind, tr, outs); err != nil {
			return nil, fmt.Errorf("streaming: tile %d: %w", t, err)
		}
	}
	res := finish(env, outs[0], p.prog.OutWidth)
	if len(outs) > 1 {
		for i, out := range outs {
			res.Roots = append(res.Roots, Field{Data: out, Width: p.prog.OutWidths[i]})
		}
	}
	return res, nil
}

// tileRange describes one haloed Z slab in global element coordinates.
type tileRange struct {
	gLo         int // first global element of the haloed tile
	tileN       int // elements in the haloed tile
	nx, ny      int
	nzTile      int // Z extent of the haloed tile
	intLo       int // first interior element within the tile
	intN        int // interior elements
	globalIntLo int // first global element of the interior
}

// runTileOn uploads the tile's source windows, launches the fused kernel
// on the environment and copies the interior of each output (one per
// root) into the matching global result array. Source windows go through
// the resident path keyed by (name, window offset), so with an arena
// attached an unchanged window skips its upload.
func runTileOn(env *ocl.Env, prog *codegen.Program, bind Bindings, tr tileRange, outs [][]float32) error {
	if err := bind.canceled(); err != nil {
		return err
	}
	bufs := make([]*ocl.Buffer, len(prog.Args))
	defer func() {
		for _, b := range bufs {
			if b != nil {
				b.Release()
			}
		}
	}()

	var outBufs []*ocl.Buffer // one per root, in Roots() order
	for i, a := range prog.Args {
		switch a.Kind {
		case codegen.ArgSource:
			src, err := bind.source(a.Name)
			if err != nil {
				return err
			}
			data := src.Data
			switch {
			case a.Name == "dims":
				// The tile is its own sub-mesh along Z.
				data = kernels.DimsArray(tr.nx, tr.ny, tr.nzTile)
			case src.Elems() == bind.N:
				// Problem-sized array: upload the tile's window.
				data = src.Data[tr.gLo*src.Width : (tr.gLo+tr.tileN)*src.Width]
			}
			key := fmt.Sprintf("%s@z%d+%d", a.Name, tr.gLo, tr.tileN)
			b, _, err := env.UploadResident(key, a.Name, data, src.Width)
			if err != nil {
				return err
			}
			bufs[i] = b
		case codegen.ArgScratch:
			b, err := env.NewBuffer(a.Name, tr.tileN, a.Width)
			if err != nil {
				return err
			}
			bufs[i] = b
		case codegen.ArgOut:
			b, err := env.NewBuffer(a.Name, tr.tileN, a.Width)
			if err != nil {
				return err
			}
			outBufs = append(outBufs, b)
			bufs[i] = b
		}
	}

	if err := env.Run(prog.Kernel, tr.tileN, bufs, nil); err != nil {
		return err
	}
	for oi, b := range outBufs {
		tileOut, err := env.Download(b)
		if err != nil {
			return err
		}
		w := prog.OutWidths[oi]
		outOff := tr.outOff(w)
		copy(outs[oi][outOff:outOff+tr.intN*w], tileOut[tr.intLo*w:(tr.intLo+tr.intN)*w])
	}
	return nil
}
