package strategy

import (
	"fmt"

	"dfg/internal/dataflow"
	"dfg/internal/ocl"
)

// Staged is the paper's middle execution strategy: one kernel dispatch
// per primitive, like roundtrip, but intermediate results stay in device
// global memory between kernel invocations — no host round trips. Each
// distinct source array is uploaded once up front and the final result
// is read back once. Consequences, matching Table II and Figure 6:
//
//   - decompose must run as a device kernel (the vector-typed value it
//     selects from lives on the device), adding kernel dispatches that
//     roundtrip avoids;
//   - constants are realized by a device fill kernel, with no
//     host-to-device transfer;
//   - device buffers are reference counted against the network's
//     consumer counts and released the moment they drain, yet staged
//     still has the largest memory high-water mark of the three
//     strategies, because whole chains of intermediates overlap.
//
// With a buffer arena attached, sources become device-resident: an
// unchanged source skips its upload entirely on warm executions, and
// intermediates recycle through the pool instead of churning fresh
// allocations.
type Staged struct {
	// KeepIntermediates disables the reference-count-driven buffer
	// releases — an ablation of the dataflow module's refcounting
	// design, showing how much device memory the eager frees save.
	KeepIntermediates bool
}

// Name returns "staged".
func (Staged) Name() string { return "staged" }

// stagedPlan precomputes the topological order, the kernel for every
// distinct filter, and the refcount schedule (consumer counts per node,
// plus one for the sink).
type stagedPlan struct {
	planBase
	keep    bool
	kernels map[string]*ocl.Kernel
	// refs is the immutable refcount template; Execute works on a copy.
	refs map[string]int
}

// Plan precomputes the staged execution plan for the network.
func (s Staged) Plan(net *dataflow.Network, _ *ocl.Device) (Plan, error) {
	base, err := newPlanBase("staged", net)
	if err != nil {
		return nil, err
	}
	ks, err := planKernels(base.order, func(string) bool { return false })
	if err != nil {
		return nil, err
	}
	refs := make(map[string]int, len(base.order))
	for _, node := range base.order {
		for _, in := range node.Inputs {
			refs[in]++
		}
	}
	for _, r := range net.Roots() {
		refs[r]++ // one sink reference per root
	}
	return &stagedPlan{planBase: base, keep: s.KeepIntermediates, kernels: ks, refs: refs}, nil
}

// Execute runs the network with device-resident intermediates.
func (s Staged) Execute(env *ocl.Env, net *dataflow.Network, bind Bindings) (*Result, error) {
	return executeViaPlan(s, env, net, bind)
}

// Execute runs the plan with device-resident intermediates.
func (p *stagedPlan) Execute(env *ocl.Env, bind Bindings) (*Result, error) {
	if err := beginRun(env, bind); err != nil {
		return nil, err
	}
	n := bind.N

	bufs := make(map[string]*ocl.Buffer, len(p.order))
	defer releaseAll(bufs)
	// Per-run copy of the plan's refcount schedule, so buffers release
	// the moment they drain.
	refs := make(map[string]int, len(p.refs))
	for id, c := range p.refs {
		refs[id] = c
	}

	// Upload every live source once, in network declaration order.
	// Sources go through the resident path: with an arena attached, an
	// unchanged source is already on the device and skips its upload.
	for _, node := range p.order {
		if node.Filter != "source" {
			continue
		}
		src, err := bind.source(node.ID)
		if err != nil {
			return nil, err
		}
		b, _, err := env.UploadResident(node.ID, node.ID, src.Data, src.Width)
		if err != nil {
			return nil, fmt.Errorf("staged: source %q: %w", node.ID, err)
		}
		bufs[node.ID] = b
	}

	// release drains one reference from a node's buffer. Resident
	// source buffers ignore the Release (the arena owns them).
	release := func(id string) {
		refs[id]--
		if refs[id] <= 0 && !p.keep {
			if b := bufs[id]; b != nil {
				b.Release()
				delete(bufs, id)
			}
		}
	}

	for _, node := range p.order {
		if err := bind.canceled(); err != nil {
			return nil, err
		}
		if node.Filter == "source" {
			continue
		}
		k := p.kernels[node.Filter]

		out, err := env.NewBuffer(node.ID, n, node.Width)
		if err != nil {
			return nil, fmt.Errorf("staged: node %q: %w", node.ID, err)
		}
		bufs[node.ID] = out

		var (
			args    []*ocl.Buffer
			scalars []float64
		)
		switch node.Filter {
		case "const":
			args = []*ocl.Buffer{out}
			scalars = []float64{node.Value}
		case "decompose":
			args = []*ocl.Buffer{bufs[node.Inputs[0]], out}
			scalars = []float64{float64(node.Comp)}
		default:
			args = make([]*ocl.Buffer, 0, len(node.Inputs)+1)
			for _, in := range node.Inputs {
				b, ok := bufs[in]
				if !ok {
					return nil, fmt.Errorf("staged: node %q: input %q already released (refcount bug)", node.ID, in)
				}
				args = append(args, b)
			}
			args = append(args, out)
		}

		if err := env.Run(k, n, args, scalars); err != nil {
			return nil, fmt.Errorf("staged: node %q: %w", node.ID, err)
		}

		// Drain one reference per input connection.
		for _, in := range node.Inputs {
			release(in)
		}
	}

	// Download every root (one for ordinary networks), releasing each
	// sink reference only after its download so shared roots survive.
	fields := make([]Field, 0, 1)
	for _, rid := range p.net.Roots() {
		outBuf, ok := bufs[rid]
		if !ok {
			return nil, fmt.Errorf("staged: output %q was not retained (refcount bug)", rid)
		}
		data, err := env.Download(outBuf)
		if err != nil {
			return nil, err
		}
		fields = append(fields, Field{Data: data, Width: p.net.NodeByID(rid).Width})
		release(rid) // the sink's reference
	}
	res := finish(env, fields[0].Data, fields[0].Width)
	if p.net.MultiRoot() {
		res.Roots = fields
	}
	return res, nil
}
