package par

import (
	"math"
	"strings"
	"testing"

	"dfg"
	"dfg/internal/mesh"
)

// TestDistributedQCriterionSeamFree is the Figure 7 property: the
// Q-criterion assembled from ghost-grown blocks processed by many ranks
// equals the single-grid computation everywhere — including sub-grid
// boundaries, which are only correct because of the ghost exchange.
func TestDistributedQCriterionSeamFree(t *testing.T) {
	cfg := Config{
		Domain:      mesh.Dims{NX: 24, NY: 18, NZ: 12},
		Parts:       [3]int{3, 3, 2},
		Ranks:       4,
		GPUsPerNode: 2,
		Ghost:       1,
		Seed:        9,
		MemScale:    64,
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	golden, _, err := GoldenField(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Output) != len(golden) {
		t.Fatalf("output size %d != %d", len(rep.Output), len(golden))
	}
	for i := range golden {
		if d := math.Abs(float64(rep.Output[i] - golden[i])); d > 1e-4 {
			x, y, z := cfg.Domain.Coords(i)
			t.Fatalf("seam at cell (%d,%d,%d): distributed %v vs golden %v", x, y, z, rep.Output[i], golden[i])
		}
	}
}

// TestGhostExchangeIsRequired double-checks the test above is meaningful:
// without ghost layers, block-boundary gradients are wrong and the
// assembled field disagrees with the golden one.
func TestGhostExchangeIsRequired(t *testing.T) {
	cfg := Config{
		Domain:   mesh.Dims{NX: 16, NY: 16, NZ: 8},
		Parts:    [3]int{2, 2, 1},
		Ranks:    2,
		Ghost:    0, // no ghost data
		Seed:     9,
		MemScale: 64,
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	golden, _, err := GoldenField(cfg)
	if err != nil {
		t.Fatal(err)
	}
	diffs := 0
	for i := range golden {
		if math.Abs(float64(rep.Output[i]-golden[i])) > 1e-4 {
			diffs++
		}
	}
	if diffs == 0 {
		t.Fatal("running without ghost data should corrupt block boundaries; the seam test would be vacuous")
	}
}

// TestPaperRunStructure reproduces the structure of the paper's
// distributed run at reduced cell counts: 3072 sub-grids (16 x 16 x 12
// layout), 256 MPI tasks on 128 nodes with 2 GPUs each, 12 blocks per
// GPU.
func TestPaperRunStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("structure test spawns 256 engines")
	}
	cfg := Config{
		Domain:      mesh.Dims{NX: 32, NY: 32, NZ: 24},
		Parts:       [3]int{16, 16, 12},
		Ranks:       256,
		GPUsPerNode: 2,
		Ghost:       1,
		Seed:        1,
		MemScale:    1 << 20,
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Blocks != 3072 {
		t.Fatalf("want 3072 blocks, got %d", rep.Blocks)
	}
	if len(rep.Ranks) != 256 {
		t.Fatalf("want 256 ranks, got %d", len(rep.Ranks))
	}
	maxNode := 0
	for _, r := range rep.Ranks {
		if r.Blocks != 12 {
			t.Fatalf("rank %d processed %d blocks, want 12 (3072/256)", r.Rank, r.Blocks)
		}
		if r.Node > maxNode {
			maxNode = r.Node
		}
		// Fusion on each block: 7 uploads, 1 kernel, 1 read per block.
		if r.Profile.Kernels != 12 {
			t.Fatalf("rank %d kernel count %d, want 12 (one fused kernel per block)", r.Rank, r.Profile.Kernels)
		}
	}
	if maxNode != 127 {
		t.Fatalf("want 128 nodes (0..127), got max node %d", maxNode)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{Domain: mesh.Dims{NX: 8, NY: 8, NZ: 8}, Parts: [3]int{2, 2, 2}, Ranks: 0}); err == nil {
		t.Fatal("zero ranks must fail")
	}
	if _, err := Run(Config{Domain: mesh.Dims{NX: 8, NY: 8, NZ: 8}, Parts: [3]int{99, 1, 1}, Ranks: 1}); err == nil {
		t.Fatal("bad decomposition must fail")
	}
	// Expression errors surface.
	if _, err := Run(Config{
		Domain: mesh.Dims{NX: 8, NY: 8, NZ: 8}, Parts: [3]int{2, 2, 2},
		Ranks: 2, Expression: "a = nosuch(u)", Seed: 1,
	}); err == nil {
		t.Fatal("bad expression must fail")
	}
}

func TestRanksOutnumberBlocks(t *testing.T) {
	// More ranks than blocks: the extra ranks simply process nothing.
	cfg := Config{
		Domain: mesh.Dims{NX: 8, NY: 8, NZ: 8},
		Parts:  [3]int{2, 1, 1},
		Ranks:  5,
		Ghost:  1,
		Seed:   2,
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, r := range rep.Ranks {
		total += r.Blocks
	}
	if total != 2 {
		t.Fatalf("blocks processed %d, want 2", total)
	}
}

func TestVelocityMagnitudeDistributed(t *testing.T) {
	// An expression without gradients works with zero ghost layers.
	cfg := Config{
		Domain:     mesh.Dims{NX: 12, NY: 12, NZ: 6},
		Parts:      [3]int{2, 2, 1},
		Ranks:      3,
		Ghost:      0,
		Expression: dfg.VelocityMagnitudeExpr,
		Seed:       4,
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	golden, _, err := GoldenField(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range golden {
		if rep.Output[i] != golden[i] {
			t.Fatalf("velmag distributed mismatch at %d", i)
		}
	}
}

func TestDistributedWithStreamingBlocks(t *testing.T) {
	// The distributed runner composes with the future-work streaming
	// strategy: each rank streams its blocks tile by tile, and the
	// assembled result still matches the single-grid computation.
	cfg := Config{
		Domain:   mesh.Dims{NX: 16, NY: 12, NZ: 12},
		Parts:    [3]int{2, 2, 2},
		Ranks:    3,
		Ghost:    1,
		Strategy: "streaming",
		Seed:     6,
		MemScale: 64,
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	golden, _, err := GoldenField(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range golden {
		if math.Abs(float64(rep.Output[i]-golden[i])) > 1e-4 {
			t.Fatalf("streaming distributed mismatch at %d", i)
		}
	}
}

func TestReportTableAndImbalance(t *testing.T) {
	cfg := Config{
		Domain: mesh.Dims{NX: 12, NY: 12, NZ: 8},
		Parts:  [3]int{2, 2, 2},
		Ranks:  4,
		Ghost:  1,
		Seed:   2,
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tbl := rep.Table()
	if len(tbl.Rows) != 4 {
		t.Fatalf("want 4 rank rows, got %d", len(tbl.Rows))
	}
	txt := tbl.Text()
	for _, frag := range []string{"Rank", "Blocks", "Device Time", "NVIDIA Tesla M2050"} {
		if !strings.Contains(txt, frag) {
			t.Errorf("rank table missing %q", frag)
		}
	}
	// Equal blocks per rank: imbalance near 1.
	if im := rep.Imbalance(); im < 1 || im > 1.05 {
		t.Fatalf("round-robin equal blocks should balance: imbalance %v", im)
	}
	// Empty report: defined behaviour.
	if (&Report{}).Imbalance() != 1 {
		t.Fatal("empty report imbalance should be 1")
	}
}
